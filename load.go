package symbol

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"symbol/internal/emu"
	"symbol/internal/exec"
	"symbol/internal/parse"
	"symbol/internal/snapshot"
)

// LoadOption configures Load.
type LoadOption func(*loadConfig)

type loadConfig struct {
	opts       Options
	goal       string
	cacheDir   string
	noFallback bool
}

// WithCompileOptions sets the compile options for source inputs. Snapshot
// inputs ignore it: a snapshot records the options it was compiled with,
// and those win (they shaped the code being loaded).
func WithCompileOptions(opts Options) LoadOption {
	return func(c *loadConfig) { c.opts = opts }
}

// WithGoal compiles src as a knowledge base posed one query: the goal
// becomes the body of a synthetic main/0 clause that, on success, writes
// one "Var = value" line per named goal variable (or "yes" when the goal
// has none). Prolog failure surfaces as Result.Succeeded == false, not as
// an error; RunContext gives the first solution and Engine.Query streams
// them all. Any main/0 clauses the knowledge base itself defines are
// dropped first — the posed goal is the query, and must not be shadowed by
// the program's own entry point. The goal may be written with or without
// the "?-" prefix and the final ".".
//
// WithGoal applies only to Prolog source inputs. Combining it with a
// snapshot input is an error: a query snapshot already has its goal baked
// in at build time (see Program.Goal).
func WithGoal(goal string) LoadOption {
	return func(c *loadConfig) { c.goal = goal }
}

// WithSnapshotCache makes Load keep a content-addressed snapshot cache for
// source inputs under dir (created if missing). The key hashes the source,
// the goal, the compile options and the snapshot format version, so any
// input change misses cleanly. A hit skips parse/compile/predecode
// entirely; corrupt or stale cache files are ignored and overwritten. The
// cache is best-effort: I/O failures fall back to a normal compile.
func WithSnapshotCache(dir string) LoadOption {
	return func(c *loadConfig) { c.cacheDir = dir }
}

// WithoutRecompileFallback disables the version-skew fallback: by default,
// loading a snapshot written by a different format version recompiles from
// the source embedded in the snapshot. With this option Load instead
// returns the *SnapshotVersionError, for callers that must never pay
// compile latency (for example a serving tier that would rather reject
// than stall).
func WithoutRecompileFallback() LoadOption {
	return func(c *loadConfig) { c.noFallback = true }
}

// Load is the single compile/load entry point: it accepts either Prolog
// source text or a binary snapshot (distinguished by the snapshot magic,
// see IsSnapshot) and returns a runnable Program.
//
//   - Source input is parsed and compiled, honoring WithCompileOptions and
//     WithGoal; WithSnapshotCache adds a content-addressed snapshot cache
//     so repeated loads of the same source skip compilation.
//   - Snapshot input is decoded and validated in one pass — no parsing, no
//     compilation, no predecoding — and fails with typed errors:
//     *SnapshotFormatError or *SnapshotChecksumError for corruption,
//     *SnapshotVersionError for a format-version mismatch. Version skew
//     falls back to recompiling the snapshot's embedded source unless
//     WithoutRecompileFallback is set.
//
// Snapshots are produced by Program.Snapshot / Program.WriteSnapshot, or
// offline with symbolc -o.
func Load(ctx context.Context, src []byte, opts ...LoadOption) (_ *Program, err error) {
	defer guard(&err)
	cfg := loadConfig{opts: DefaultOptions()}
	for _, f := range opts {
		f(&cfg)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if snapshot.Sniff(src) {
		if cfg.goal != "" {
			return nil, fmt.Errorf("symbol: WithGoal does not apply to snapshot inputs (the goal is baked in at snapshot build time)")
		}
		return loadSnapshot(src, cfg)
	}
	return loadSource(string(src), cfg)
}

// IsSnapshot reports whether data begins with the snapshot magic, i.e.
// whether Load would treat it as a binary snapshot rather than source.
func IsSnapshot(data []byte) bool { return snapshot.Sniff(data) }

// loadSnapshot decodes a snapshot container into a Program, recompiling
// from the embedded source on version skew (unless disabled).
func loadSnapshot(data []byte, cfg loadConfig) (*Program, error) {
	img, err := snapshot.Decode(data)
	if err != nil {
		var vErr *snapshot.VersionError
		if errors.As(err, &vErr) && vErr.Source != "" && !cfg.noFallback {
			// The snapshot's recorded compile options win over
			// WithCompileOptions, matching the load-success path.
			opts := Options{ArithChecks: vErr.Arith, MaxSteps: vErr.MaxSteps}
			goal := ""
			if vErr.Kind == snapshot.KindQuery {
				goal = vErr.Goal
			}
			return compileText(vErr.Source, opts, goal)
		}
		return nil, err
	}
	return programFromImage(img), nil
}

// programFromImage wraps a decoded snapshot image as a Program, installing
// the predecoded exec streams and the embedded profile so later RunContext
// and ScheduleWith calls skip that work too.
func programFromImage(img *snapshot.Image) *Program {
	p := &Program{
		opts:      Options{ArithChecks: img.Arith, MaxSteps: img.MaxSteps},
		icp:       img.Prog,
		undefined: img.Undefined,
		src:       img.Source,
		goal:      img.Goal,
	}
	if img.Exec != nil {
		p.icp.ExecCache(func() any { return img.Exec })
	}
	if img.ProfExpect != nil {
		p.profOnce.Do(func() {
			p.profile = &emu.Profile{Expect: img.ProfExpect, Taken: img.ProfTaken}
		})
		p.profBuilt.Store(true)
	}
	return p
}

// loadSource compiles Prolog source, going through the snapshot cache when
// one is configured.
func loadSource(src string, cfg loadConfig) (*Program, error) {
	var cachePath string
	if cfg.cacheDir != "" {
		cachePath = filepath.Join(cfg.cacheDir, cacheKey(src, cfg)+".sym")
		if data, err := os.ReadFile(cachePath); err == nil {
			if img, err := snapshot.Decode(data); err == nil {
				return programFromImage(img), nil
			}
			// Corrupt or version-skewed cache entry: recompile below and
			// overwrite it. The key includes the format version, so skew
			// here means a truncated write, not a format upgrade.
		}
	}
	p, err := compileText(src, cfg.opts, cfg.goal)
	if err != nil {
		return nil, err
	}
	if cachePath != "" {
		writeCacheFile(cfg.cacheDir, cachePath, p.Snapshot())
	}
	return p, nil
}

// compileText is the source-input back half of Load: parse (plain or as a
// knowledge base + goal) and compile.
func compileText(src string, opts Options, goal string) (*Program, error) {
	if goal == "" {
		clauses, err := parse.All(src)
		if err != nil {
			return nil, fmt.Errorf("symbol: %w", err)
		}
		return compileClauses(clauses, opts, src, "")
	}
	clauses, norm, err := queryClauses(src, goal)
	if err != nil {
		return nil, err
	}
	return compileClauses(clauses, opts, src, norm)
}

// cacheKey derives the content address of a compile: source, goal, options
// and format version all feed the hash, so the cache never has to be
// invalidated by hand.
func cacheKey(src string, cfg loadConfig) string {
	h := sha256.New()
	fmt.Fprintf(h, "symsnap\x00v%d\x00arith=%t\x00maxsteps=%d\x00goal=%s\x00",
		snapshot.Version, cfg.opts.ArithChecks, cfg.opts.MaxSteps, cfg.goal)
	io.WriteString(h, src)
	return hex.EncodeToString(h.Sum(nil))
}

// writeCacheFile writes data to path atomically (tmp + rename), creating
// dir if needed. Best-effort: errors are swallowed, the cache is an
// optimization.
func writeCacheFile(dir, path string, data []byte) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(dir, ".sym-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
	}
}

// Snapshot serializes the program as a versioned binary snapshot: the ICI
// code and atom table, the predecoded execution streams, the source text
// (fuel for the version-skew recompile fallback) and — if Profile has
// already been computed — the execution profile, so a scheduling consumer
// of the snapshot skips the profiling run as well. Load accepts the result
// directly; symbolserve preloads directories of them at boot.
func (p *Program) Snapshot() []byte {
	img := &snapshot.Image{
		Kind:      snapshot.KindProgram,
		Source:    p.src,
		Goal:      p.goal,
		Arith:     p.opts.ArithChecks,
		MaxSteps:  p.opts.MaxSteps,
		Undefined: p.undefined,
		Prog:      p.icp,
		Exec:      exec.Of(p.icp),
	}
	if p.goal != "" {
		img.Kind = snapshot.KindQuery
	}
	if p.profBuilt.Load() {
		img.ProfExpect = p.profile.Expect
		img.ProfTaken = p.profile.Taken
	}
	return snapshot.Encode(img)
}

// WriteSnapshot writes Snapshot() to w, returning the byte count written.
func (p *Program) WriteSnapshot(w io.Writer) (int64, error) {
	n, err := w.Write(p.Snapshot())
	return int64(n), err
}

// Snapshot error types, re-exported so callers can match them without
// importing an internal package.
var (
	// ErrNotSnapshot is returned by SnapshotInfo when data does not start
	// with the snapshot magic. (Load never returns it: non-snapshot input
	// is treated as Prolog source.)
	ErrNotSnapshot = snapshot.ErrNotSnapshot
)

type (
	// SnapshotFormatError reports a structurally invalid snapshot: a
	// malformed section, an out-of-range operand, a truncated payload.
	SnapshotFormatError = snapshot.FormatError
	// SnapshotChecksumError reports a section whose checksum does not
	// match its payload (bit rot, torn write).
	SnapshotChecksumError = snapshot.ChecksumError
	// SnapshotVersionError reports a snapshot written by a different
	// format version. Load recovers from it automatically when the
	// snapshot embeds its source (see WithoutRecompileFallback).
	SnapshotVersionError = snapshot.VersionError
)

// SnapshotSection is one section's size in a snapshot container.
type SnapshotSection struct {
	Name  string
	Bytes int
}

// SnapshotDetails summarizes a snapshot container without decoding its
// payloads: format version and per-section sizes. It works on
// version-skewed snapshots (tooling must be able to describe what it
// cannot load).
type SnapshotDetails struct {
	Version  uint32
	Sections []SnapshotSection
}

// SnapshotInfo summarizes snapshot bytes (see SnapshotDetails). It returns
// ErrNotSnapshot when data is not a snapshot container.
func SnapshotInfo(data []byte) (*SnapshotDetails, error) {
	info, err := snapshot.ReadInfo(data)
	if err != nil {
		return nil, err
	}
	d := &SnapshotDetails{Version: info.Version}
	for _, s := range info.Sections {
		d.Sections = append(d.Sections, SnapshotSection{Name: s.Name, Bytes: s.Len})
	}
	return d, nil
}
