package symbol

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// Whole-program fuzz: generate random stratified Prolog programs (facts, a
// layer of rules with random control features, an all-solutions driver) and
// check that trace-scheduled VLIW execution is observably identical to
// sequential emulation. Stratification guarantees termination; the
// failure-driven driver makes every solution (and therefore the whole
// backtracking behaviour) observable.

type progGen struct {
	rng *rand.Rand
	b   strings.Builder
}

func (g *progGen) constant() string {
	if g.rng.Intn(2) == 0 {
		return fmt.Sprint(g.rng.Intn(6))
	}
	return []string{"a", "b", "c"}[g.rng.Intn(3)]
}

// facts emits the base relation f0/2.
func (g *progGen) facts() {
	n := 3 + g.rng.Intn(5)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&g.b, "f0(%s, %s).\n", g.constant(), g.constant())
	}
}

// rule emits one clause of f1/2 built from f0 with random extras.
func (g *progGen) rule(i int) {
	var body []string
	body = append(body, "f0(X, Z)")
	switch g.rng.Intn(5) {
	case 0:
		body = append(body, "f0(Z, Y)")
	case 1:
		body = append(body, "Y = Z")
	case 2:
		body = append(body, fmt.Sprintf("\\+ f0(Z, %s)", g.constant()))
		body = append(body, "Y = Z")
	case 3:
		body = append(body, fmt.Sprintf("( f0(Z, Y) -> true ; Y = %s )", g.constant()))
	default:
		body = append(body, "integer(Z) -> Y is Z+1 ; Y = Z")
		body = []string{"f0(X, Z)", fmt.Sprintf("( %s )", strings.Join(body[1:], ", "))}
	}
	if g.rng.Intn(3) == 0 {
		body = append(body, "!")
	}
	fmt.Fprintf(&g.b, "f1(X, Y) :- %s.\n", strings.Join(body, ", "))
}

// generate builds a full program whose main enumerates all f1 solutions.
func (g *progGen) generate() string {
	g.b.Reset()
	g.facts()
	rules := 1 + g.rng.Intn(3)
	for i := 0; i < rules; i++ {
		g.rule(i)
	}
	// A second layer exercising calls into f1 and list building.
	g.b.WriteString(`
collect(X, L) :- f1(X, Y), L = [X, Y].
main :- collect(X, L), write(L), nl, fail.
main :- write(end), nl.
`)
	return g.b.String()
}

func TestFuzzSeqVsVLIW(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	gen := &progGen{rng: rng}
	cases := 40
	if testing.Short() {
		cases = 10
	}
	for i := 0; i < cases; i++ {
		src := gen.generate()
		prog, err := Compile(src)
		if err != nil {
			t.Fatalf("case %d: compile: %v\n%s", i, err, src)
		}
		seq, err := prog.Run()
		if err != nil {
			t.Fatalf("case %d: run: %v\n%s", i, err, src)
		}
		for _, u := range []int{1, 3} {
			sched, err := prog.Schedule(DefaultMachine(u), ScheduleOptions{})
			if err != nil {
				t.Fatalf("case %d/%du: schedule: %v\n%s", i, u, err, src)
			}
			sim, err := sched.Simulate()
			if err != nil {
				t.Fatalf("case %d/%du: simulate: %v\n%s", i, u, err, src)
			}
			if sim.Output != seq.Output || sim.Succeeded != seq.Succeeded {
				t.Fatalf("case %d/%du: diverged\nseq:  %q\nvliw: %q\nprogram:\n%s",
					i, u, seq.Output, sim.Output, src)
			}
		}
	}
}

// TestFuzzBasicBlocksMode runs a smaller fuzz round with trace scheduling
// disabled (catches emission bugs specific to single-block traces).
func TestFuzzBasicBlocksMode(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	gen := &progGen{rng: rng}
	for i := 0; i < 10; i++ {
		src := gen.generate()
		prog, err := Compile(src)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		seq, err := prog.Run()
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		sched, err := prog.Schedule(BAMMachine(), ScheduleOptions{BasicBlocksOnly: true})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		sim, err := sched.Simulate()
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if sim.Output != seq.Output {
			t.Fatalf("case %d diverged\n%s", i, src)
		}
	}
}
