package symbol

import "testing"

// The embedded library links in predicates the program calls but does not
// define; user definitions always shadow it.

func TestLibraryBasics(t *testing.T) {
	out := run(t, `
main :- append([1,2], [3], L), write(L), nl,
        member(2, L),
        reverse(L, R), write(R), nl,
        length(L, N), write(N), nl,
        last(L, E), write(E), nl,
        nth0(1, L, X1), write(X1), nl,
        nth1(1, L, X2), write(X2), nl.
`)
	if out != "[1,2,3]\n[3,2,1]\n3\n3\n2\n1\n" {
		t.Fatalf("got %q", out)
	}
}

func TestLibraryArithmeticLists(t *testing.T) {
	out := run(t, `
main :- sum_list([1,2,3,4], S), write(S), nl,
        max_list([3,9,2], Mx), write(Mx), nl,
        min_list([3,9,2], Mn), write(Mn), nl,
        numlist(1, 5, L), write(L), nl,
        msort([4,1,3,1,2], Sorted), write(Sorted), nl.
`)
	if out != "10\n9\n2\n[1,2,3,4,5]\n[1,1,2,3,4]\n" {
		t.Fatalf("got %q", out)
	}
}

func TestLibraryBetweenBacktracks(t *testing.T) {
	out := run(t, `
main :- between(1, 4, X), write(X), fail.
main :- nl.
`)
	if out != "1234\n" {
		t.Fatalf("got %q", out)
	}
}

func TestLibraryMaplistAndForall(t *testing.T) {
	out := run(t, `
double(X, Y) :- Y is 2*X.
pos(X) :- X > 0.
main :- maplist(double, [1,2,3], Ys), write(Ys), nl,
        maplist(pos, [1,2]),
        forall(member(X, [2,4,6]), 0 =:= X mod 2),
        write(ok), nl.
`)
	if out != "[2,4,6]\nok\n" {
		t.Fatalf("got %q", out)
	}
	expectFail(t, `
pos(X) :- X > 0.
main :- maplist(pos, [1,-2]).
`)
}

func TestUserDefinitionShadowsLibrary(t *testing.T) {
	out := run(t, `
append(user_version).
main :- append(X), write(X), nl.
`)
	// append/1 is the user's own predicate; append/3 stays library.
	if out != "user_version\n" {
		t.Fatalf("got %q", out)
	}
	out = run(t, `
member(X, _) :- X = shadowed.
main :- member(M, [1,2]), write(M), nl.
`)
	if out != "shadowed\n" {
		t.Fatalf("user member/2 must shadow the library: %q", out)
	}
}

func TestLibraryPredicatesNotUndefined(t *testing.T) {
	prog, err := Compile(`main :- between(1, 3, X), X > 1, write(X), nl.`)
	if err != nil {
		t.Fatal(err)
	}
	if u := prog.Undefined(); len(u) != 0 {
		t.Fatalf("library predicates reported undefined: %v", u)
	}
}
