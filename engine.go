package symbol

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"symbol/internal/emu"
	"symbol/internal/ic"
	"symbol/internal/vliw"
)

// Engine is a goroutine-safe query engine over one compiled Program. It
// answers many queries concurrently by recycling machine state (the
// multi-megaword simulated memory image, the register file and the VLIW
// ready array) through a sync.Pool: each run grabs a zeroed ic.State,
// executes, resets it in O(words actually written), and returns it to the
// pool. This replaces the allocate-per-run baseline of Program.Run, whose
// fresh ~19M-word memory image per query collapses throughput under GC
// pressure exactly where the paper's memory-operation analysis (~32% of the
// dynamic mix) says the hot path lives.
//
// All methods are safe for concurrent use. Per-run RunOptions keep their
// full fault and budget semantics: shrunken areas, step/cycle budgets and
// deadlines behave identically to Program.RunWith / Scheduled.SimulateWith.
type Engine struct {
	prog *Program
	conf MachineConfig
	sops ScheduleOptions
	pool sync.Pool // *ic.State

	schedOnce sync.Once
	sched     *Scheduled
	schedErr  error
}

// NewEngine returns an engine over p that simulates, when asked, on the
// paper's default 3-unit machine.
func NewEngine(p *Program) *Engine {
	return NewEngineConfig(p, DefaultMachine(3), ScheduleOptions{})
}

// NewEngineConfig returns an engine whose Simulate path schedules p for
// conf under sopts. Scheduling (and the profiling run it needs) happens
// lazily on the first Simulate call.
func NewEngineConfig(p *Program, conf MachineConfig, sopts ScheduleOptions) *Engine {
	e := &Engine{prog: p, conf: conf, sops: sopts}
	e.pool.New = func() any { return ic.NewState() }
	return e
}

// Program returns the compiled program the engine serves.
func (e *Engine) Program() *Program { return e.prog }

// acquire takes a zeroed machine state from the pool.
func (e *Engine) acquire() *ic.State { return e.pool.Get().(*ic.State) }

// release resets st (O(dirty) — only the pages the run wrote) and returns
// it to the pool for the next query.
func (e *Engine) release(st *ic.State) {
	st.Reset()
	e.pool.Put(st)
}

// interruptOf exposes a context's cancellation signal to the executors
// (nil for contexts that can never be cancelled, keeping the hot loop's
// poll free).
func interruptOf(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// deadlineOf merges a context deadline into the per-run deadline, taking
// the earlier of the two.
func deadlineOf(ctx context.Context, opts RunOptions) RunOptions {
	if ctx == nil {
		return opts
	}
	if d, ok := ctx.Deadline(); ok && (opts.Deadline.IsZero() || d.Before(opts.Deadline)) {
		opts.Deadline = d
	}
	return opts
}

// Run answers one query on the sequential emulator using pooled machine
// state. Cancelling ctx aborts the run with ErrCanceled; a ctx deadline
// tightens opts.Deadline.
func (e *Engine) Run(ctx context.Context, opts RunOptions) (_ *Result, err error) {
	defer guard(&err)
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = deadlineOf(ctx, opts)
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = e.prog.opts.MaxSteps
	}
	st := e.acquire()
	// On a guarded panic the state's dirty set may be incomplete, so the
	// state is dropped (not recycled) rather than risk leaking a word into
	// the next query; errors are normal returns and recycle fine.
	clean := false
	defer func() {
		if clean {
			e.release(st)
		}
	}()
	res, err := emu.Run(e.prog.icp, emu.Options{
		MaxSteps:  maxSteps,
		Layout:    opts.layout(),
		Deadline:  opts.Deadline,
		Interrupt: interruptOf(ctx),
		State:     st,
		NoFuse:    opts.NoFuse,
	})
	clean = true
	if err != nil {
		return nil, err
	}
	return &Result{Succeeded: res.Status == 0, Output: res.Output, Steps: res.Steps}, nil
}

// Scheduled returns the engine's lazily compacted program (scheduling it on
// first use), so callers can inspect the code the Simulate path runs.
func (e *Engine) Scheduled() (*Scheduled, error) {
	e.schedOnce.Do(func() {
		e.sched, e.schedErr = e.prog.Schedule(e.conf, e.sops)
	})
	return e.sched, e.schedErr
}

// Simulate answers one query on the cycle-level VLIW simulator using pooled
// machine state, scheduling the program on first use. Cancelling ctx aborts
// the run with ErrCanceled.
func (e *Engine) Simulate(ctx context.Context, opts RunOptions) (_ *SimResult, err error) {
	defer guard(&err)
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	sched, err := e.Scheduled()
	if err != nil {
		return nil, err
	}
	opts = deadlineOf(ctx, opts)
	st := e.acquire()
	clean := false
	defer func() {
		if clean {
			e.release(st)
		}
	}()
	r, err := vliw.Sim(sched.vprog, vliw.SimOptions{
		MaxCycles: opts.MaxCycles,
		Layout:    opts.layout(),
		Deadline:  opts.Deadline,
		Interrupt: interruptOf(ctx),
		State:     st,
	})
	clean = true
	if err != nil {
		return nil, err
	}
	return &SimResult{
		Succeeded: r.Status == 0,
		Output:    r.Output,
		Cycles:    r.Cycles,
		Words:     r.Words,
		Ops:       r.Ops,
		Bubble:    r.Bubble,
	}, nil
}

// BatchResult is one outcome of Engine.RunAll: the run's Result, or the
// typed error that ended it. Exactly one of the fields is non-nil.
type BatchResult struct {
	Result *Result
	Err    error
}

// RunAll answers runs[i] for every i, fanning the batch out across
// min(GOMAXPROCS, len(runs)) workers that share the engine's state pool.
// Each run keeps its own RunOptions semantics (budgets, deadlines, area
// sizes, typed faults). Cancelling ctx aborts in-flight runs with
// ErrCanceled and marks unstarted ones the same way; the returned slice
// always has len(runs) entries, index-aligned with the input.
func (e *Engine) RunAll(ctx context.Context, runs []RunOptions) []BatchResult {
	out := make([]BatchResult, len(runs))
	if len(runs) == 0 {
		return out
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(runs) {
		workers = len(runs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(runs) {
					return
				}
				if ctx != nil && ctx.Err() != nil {
					out[i] = BatchResult{Err: ErrCanceled}
					continue
				}
				res, err := e.Run(ctx, runs[i])
				out[i] = BatchResult{Result: res, Err: err}
			}
		}()
	}
	wg.Wait()
	return out
}

// RunN answers the same query n times under opts — the batched load shape
// of a benchmark or a warm-up — and reports the outcomes like RunAll.
func (e *Engine) RunN(ctx context.Context, n int, opts RunOptions) []BatchResult {
	runs := make([]RunOptions, n)
	for i := range runs {
		runs[i] = opts
	}
	return e.RunAll(ctx, runs)
}
