package symbol

import (
	"context"
	"expvar"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"symbol/internal/emu"
	"symbol/internal/exec"
	"symbol/internal/fault"
	"symbol/internal/ic"
	"symbol/internal/obs"
	"symbol/internal/vliw"
)

// Engine is a goroutine-safe query engine over one compiled Program. It
// answers many queries concurrently by recycling machine state (the
// multi-megaword simulated memory image, the register file and the VLIW
// ready array) through a sync.Pool: each run grabs a zeroed ic.State,
// executes, resets it in O(words actually written), and returns it to the
// pool. This replaces the allocate-per-run baseline of Program.Run, whose
// fresh ~19M-word memory image per query collapses throughput under GC
// pressure exactly where the paper's memory-operation analysis (~32% of the
// dynamic mix) says the hot path lives.
//
// All methods are safe for concurrent use. Per-run RunOptions keep their
// full fault and budget semantics: shrunken areas, step/cycle budgets and
// deadlines behave identically to Program.RunWith / Scheduled.SimulateWith.
type Engine struct {
	prog *Program
	conf MachineConfig
	sops ScheduleOptions
	pool sync.Pool // *ic.State
	met  obs.Metrics

	// states counts machine states ever allocated for the pool (pool
	// misses). It only grows — sync.Pool may drop states under GC pressure
	// without telling us — so Footprint reads it as a deliberate
	// overestimate: the safe direction for a cache evicting by bytes.
	states atomic.Int64

	schedOnce sync.Once
	sched     *Scheduled
	schedErr  error
}

// NewEngine returns an engine over p that simulates, when asked, on the
// paper's default 3-unit machine.
func NewEngine(p *Program) *Engine {
	return NewEngineConfig(p, DefaultMachine(3), ScheduleOptions{})
}

// NewEngineConfig returns an engine whose Simulate path schedules p for
// conf under sopts. Scheduling (and the profiling run it needs) happens
// lazily on the first Simulate call.
func NewEngineConfig(p *Program, conf MachineConfig, sopts ScheduleOptions) *Engine {
	e := &Engine{prog: p, conf: conf, sops: sopts}
	e.pool.New = func() any {
		e.met.RecordPoolMiss()
		e.states.Add(1)
		return ic.NewState()
	}
	return e
}

// Footprint estimates the engine's resident bytes: every machine state ever
// allocated for the pool (the dominant term — one state is the full
// simulated memory image) plus the compiled code and, once a run has built
// them, the predecoded and threaded execution streams. It is intentionally
// an upper bound — sync.Pool may have released states to the GC — because
// its consumer is budget-based cache eviction, where overestimating evicts
// early and underestimating blows the budget.
func (e *Engine) Footprint() int64 {
	n := e.states.Load() * ic.StateBytes()
	n += int64(len(e.prog.icp.Code)) * 64 // ic.Inst stream + symbol tables, nominal
	if img := e.prog.icp.ExecCached(); img != nil {
		if xp, ok := img.(*exec.Program); ok {
			n += xp.SizeBytes()
		}
	}
	return n
}

// Program returns the compiled program the engine serves.
func (e *Engine) Program() *Program { return e.prog }

// acquire takes a zeroed machine state from the pool. Misses (fresh
// allocations) are counted by the pool's New hook.
func (e *Engine) acquire() *ic.State {
	e.met.RecordPoolGet()
	return e.pool.Get().(*ic.State)
}

// release resets st (O(dirty) — only the pages the run wrote) and returns
// it to the pool for the next query.
func (e *Engine) release(st *ic.State) {
	e.met.RecordReset(st.DirtyPages())
	st.Reset()
	e.pool.Put(st)
}

// interruptOf exposes a context's cancellation signal to the executors
// (nil for contexts that can never be cancelled, keeping the hot loop's
// poll free).
func interruptOf(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// deadlineOf merges a context deadline into the per-run deadline, taking
// the earlier of the two.
func deadlineOf(ctx context.Context, opts RunOptions) RunOptions {
	if ctx == nil {
		return opts
	}
	if d, ok := ctx.Deadline(); ok && (opts.Deadline.IsZero() || d.Before(opts.Deadline)) {
		opts.Deadline = d
	}
	return opts
}

// Run answers one query on the sequential emulator using pooled machine
// state. Cancelling ctx aborts the run with ErrCanceled; a ctx deadline
// tightens opts.Deadline.
func (e *Engine) Run(ctx context.Context, opts RunOptions) (_ *Result, err error) {
	defer guard(&err)
	if err := opts.Validate(); err != nil {
		e.met.RecordRejected()
		return nil, err
	}
	opts = deadlineOf(ctx, opts)
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = e.prog.opts.MaxSteps
	}
	e.met.RecordStart()
	start := time.Now()
	// Every RecordStart must be balanced or the in-flight gauge drifts; the
	// settled flag covers the guarded-panic exit, which reaches neither the
	// RecordFailed nor the RecordDone call below.
	settled := false
	defer func() {
		if !settled {
			e.met.RecordFailed(fault.None, time.Since(start))
		}
	}()
	st := e.acquire()
	// On a guarded panic the state's dirty set may be incomplete, so the
	// state is dropped (not recycled) rather than risk leaking a word into
	// the next query; errors are normal returns and recycle fine.
	clean := false
	defer func() {
		if clean {
			e.release(st)
		}
	}()
	var trace *obs.Trace
	if opts.TraceEvents > 0 {
		trace = obs.NewTrace(opts.TraceEvents)
	}
	legacy, noFuse, threaded := opts.emuMode()
	res, err := emu.Run(e.prog.icp, emu.Options{
		MaxSteps:  maxSteps,
		Layout:    opts.layout(),
		Deadline:  opts.Deadline,
		Interrupt: interruptOf(ctx),
		State:     st,
		Legacy:    legacy,
		NoFuse:    noFuse,
		Threaded:  threaded,
		Events:    trace,
	})
	clean = true
	if err != nil {
		settled = true
		e.met.RecordFailed(fault.KindOf(err), time.Since(start))
		return nil, err
	}
	r := &Result{Succeeded: res.Status == 0, Output: res.Output, Steps: res.Steps, Stats: res.Stats}
	if trace != nil {
		r.Events = trace.Events()
		r.EventsDropped = trace.Dropped()
	}
	settled = true
	e.met.RecordDone(&r.Stats, r.Succeeded)
	return r, nil
}

// RunContext answers one query configured by functional options — the
// variadic companion to Run.
func (e *Engine) RunContext(ctx context.Context, opts ...RunOption) (*Result, error) {
	return e.Run(ctx, buildRunOptions(opts))
}

// Query starts the query on the sequential emulator and returns a
// Solutions stream over all of its answers instead of just the first: the
// machine suspends at each solution and backtracks on demand when the
// caller asks for the next one. The stream holds one pooled state and one
// in-flight metrics slot until it finishes or is Closed; budgets
// (MaxSteps, Deadline, ctx cancellation) span the whole stream. Query
// itself does not execute anything — the first Next does — so a returned
// stream must always be Closed, even if never iterated.
func (e *Engine) Query(ctx context.Context, opts RunOptions) (_ *Solutions, err error) {
	defer guard(&err)
	if err := opts.Validate(); err != nil {
		e.met.RecordRejected()
		return nil, err
	}
	opts = deadlineOf(ctx, opts)
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = e.prog.opts.MaxSteps
	}
	e.met.RecordStart()
	// Balance RecordStart if anything below panics (guard converts it to an
	// error return); the acquired state is dropped, not recycled.
	ok := false
	defer func() {
		if !ok {
			e.met.RecordFailed(fault.None, 0)
		}
	}()
	st := e.acquire()
	var trace *obs.Trace
	if opts.TraceEvents > 0 {
		trace = obs.NewTrace(opts.TraceEvents)
	}
	legacy, noFuse, threaded := opts.emuMode()
	m := emu.New(e.prog.icp, emu.Options{
		MaxSteps:  maxSteps,
		Layout:    opts.layout(),
		Deadline:  opts.Deadline,
		Interrupt: interruptOf(ctx),
		State:     st,
		Legacy:    legacy,
		NoFuse:    noFuse,
		Threaded:  threaded,
		Events:    trace,
	})
	ok = true
	return &Solutions{eng: e, m: m, st: st, trace: trace, baseDeadline: opts.Deadline}, nil
}

// QueryContext starts a solution stream configured by functional options —
// the variadic companion to Query.
func (e *Engine) QueryContext(ctx context.Context, opts ...RunOption) (*Solutions, error) {
	return e.Query(ctx, buildRunOptions(opts))
}

// Scheduled returns the engine's lazily compacted program (scheduling it on
// first use), so callers can inspect the code the Simulate path runs.
func (e *Engine) Scheduled() (*Scheduled, error) {
	e.schedOnce.Do(func() {
		e.sched, e.schedErr = e.prog.ScheduleWith(e.conf, WithScheduleOptions(e.sops))
	})
	return e.sched, e.schedErr
}

// Simulate answers one query on the cycle-level VLIW simulator using pooled
// machine state, scheduling the program on first use. Cancelling ctx aborts
// the run with ErrCanceled.
func (e *Engine) Simulate(ctx context.Context, opts RunOptions) (_ *SimResult, err error) {
	defer guard(&err)
	if err := opts.Validate(); err != nil {
		e.met.RecordRejected()
		return nil, err
	}
	sched, err := e.Scheduled()
	if err != nil {
		return nil, err
	}
	opts = deadlineOf(ctx, opts)
	e.met.RecordStart()
	start := time.Now()
	settled := false
	defer func() {
		if !settled {
			e.met.RecordFailed(fault.None, time.Since(start))
		}
	}()
	st := e.acquire()
	clean := false
	defer func() {
		if clean {
			e.release(st)
		}
	}()
	var trace *obs.Trace
	if opts.TraceEvents > 0 {
		trace = obs.NewTrace(opts.TraceEvents)
	}
	r, err := vliw.Sim(sched.vprog, vliw.SimOptions{
		MaxCycles: opts.MaxCycles,
		Layout:    opts.layout(),
		Deadline:  opts.Deadline,
		Interrupt: interruptOf(ctx),
		State:     st,
		Events:    trace,
	})
	clean = true
	if err != nil {
		settled = true
		e.met.RecordFailed(fault.KindOf(err), time.Since(start))
		return nil, err
	}
	sr := &SimResult{
		Succeeded: r.Status == 0,
		Output:    r.Output,
		Cycles:    r.Cycles,
		Words:     r.Words,
		Ops:       r.Ops,
		Bubble:    r.Bubble,
		Stats:     r.Stats,
	}
	if trace != nil {
		sr.Events = trace.Events()
		sr.EventsDropped = trace.Dropped()
	}
	settled = true
	e.met.RecordDone(&sr.Stats, sr.Succeeded)
	return sr, nil
}

// SimulateContext answers one query on the VLIW simulator configured by
// functional options — the variadic companion to Simulate.
func (e *Engine) SimulateContext(ctx context.Context, opts ...RunOption) (*SimResult, error) {
	return e.Simulate(ctx, buildRunOptions(opts))
}

// Metrics snapshots the engine-wide aggregate counters: queries by outcome,
// fault breakdown, pool behaviour, and the Add-sum of every completed run's
// Stats (Totals), plus latency and step histograms. Recording is lock-free;
// snapshotting is safe at any time from any goroutine.
func (e *Engine) Metrics() MetricsSnapshot { return e.met.Snapshot() }

// WriteMetrics renders the current metrics snapshot in the Prometheus text
// exposition format, for mounting on any HTTP mux:
//
//	http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
//	    eng.WriteMetrics(w)
//	})
func (e *Engine) WriteMetrics(w io.Writer) error {
	_, err := e.met.Snapshot().WriteTo(w)
	return err
}

// expvarOwners tracks which engine registered each expvar name, so
// PublishExpvar can be idempotent (expvar itself has no unregister and
// panics on re-registration).
var (
	expvarMu     sync.Mutex
	expvarOwners = map[string]*Engine{}
)

// ErrExpvarTaken reports a PublishExpvar name conflict: the name is already
// registered, either by a different engine or by something else in the
// process (expvar has no unregister, so the conflict is permanent).
type ErrExpvarTaken struct{ Name string }

func (e *ErrExpvarTaken) Error() string {
	return fmt.Sprintf("symbol: expvar name %q already registered", e.Name)
}

// PublishExpvar registers the engine's metrics snapshot as an expvar
// variable under name, so it appears as JSON on the standard /debug/vars
// endpoint. It is idempotent: publishing the same engine under the same
// name again is a no-op. A name already held by a different engine — or by
// any other expvar in the process — returns *ErrExpvarTaken instead of
// panicking, so a duplicate name can never take the process down.
func (e *Engine) PublishExpvar(name string) error {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if owner, ok := expvarOwners[name]; ok {
		if owner == e {
			return nil
		}
		return &ErrExpvarTaken{Name: name}
	}
	if expvar.Get(name) != nil {
		return &ErrExpvarTaken{Name: name}
	}
	expvar.Publish(name, expvar.Func(func() any { return e.met.Snapshot() }))
	expvarOwners[name] = e
	return nil
}

// Pressure reads a cheap point-in-time load signal (a few atomic loads, no
// histogram copying): how many runs are executing right now, how many have
// ever started, and how often the state pool had to allocate. Admission
// controllers can poll it on every request without measurable cost.
func (e *Engine) Pressure() Pressure { return e.met.Pressure() }

// WaitIdle blocks until the engine has no runs in flight, polling the
// in-flight gauge, or until ctx is done (returning its error). It is the
// drain primitive: after the caller stops submitting work and cancels
// outstanding run contexts, WaitIdle reports when the last executor has
// actually exited, so metrics are final and the process can exit without
// abandoning a run mid-flight.
func (e *Engine) WaitIdle(ctx context.Context) error {
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		if e.met.Pressure().InFlight == 0 {
			return nil
		}
		if ctx == nil {
			<-tick.C
			continue
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// BatchResult is one outcome of Engine.RunAll: the run's Result, or the
// typed error that ended it. Exactly one of the fields is non-nil.
type BatchResult struct {
	Result *Result
	Err    error
}

// BatchRun is one entry of an Engine.RunBatch fan-out: the run's options
// plus an optional per-run context. A nil Ctx means the run is bounded only
// by the batch context; a non-nil Ctx cancels this run alone (the run
// aborts when either context is done). The serving layer's request
// coalescer uses per-run contexts to keep each coalesced class of requests
// individually cancellable — a client abandoning its class must not drag
// down siblings that still want their answer.
type BatchRun struct {
	Ctx  context.Context
	Opts RunOptions
}

// RunAll answers runs[i] for every i, fanning the batch out across
// min(GOMAXPROCS, len(runs)) workers that share the engine's state pool.
// Each run keeps its own RunOptions semantics (budgets, deadlines, area
// sizes, typed faults). Cancelling ctx aborts in-flight runs with
// ErrCanceled and marks unstarted ones the same way; the returned slice
// always has len(runs) entries, index-aligned with the input.
func (e *Engine) RunAll(ctx context.Context, runs []RunOptions) []BatchResult {
	batch := make([]BatchRun, len(runs))
	for i, o := range runs {
		batch[i] = BatchRun{Opts: o}
	}
	return e.RunBatch(ctx, batch)
}

// RunBatch is the batch entry point RunAll is built on: it answers every
// entry, fanning out across min(GOMAXPROCS, len(batch)) workers that share
// the engine's state pool, with per-entry contexts honoured alongside the
// batch context. Because the engine is deterministic — the same program on
// a fresh state under the same budgets computes the same answer — a caller
// may execute one entry per *distinct* budget class and share the result
// across every request that posed it; that coalescing contract is what the
// serving layer's batcher relies on, and it is only sound because each run
// starts from a zeroed pooled state.
//
// The returned slice always has len(batch) entries, index-aligned with the
// input. Cancelling ctx aborts every run; cancelling an entry's own Ctx
// aborts just that entry, either way as typed ErrCanceled.
func (e *Engine) RunBatch(ctx context.Context, batch []BatchRun) []BatchResult {
	out := make([]BatchResult, len(batch))
	if len(batch) == 0 {
		return out
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(batch) {
		workers = len(batch)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(batch) {
					return
				}
				runCtx := batch[i].Ctx
				if runCtx == nil {
					runCtx = ctx
				} else if ctx != nil {
					// The run must stop when either context is done. Derive
					// a child of the entry's context and chain the batch
					// context's cancellation into it.
					var cancel context.CancelFunc
					runCtx, cancel = context.WithCancel(runCtx)
					stop := context.AfterFunc(ctx, cancel)
					res, err := e.runBatchOne(runCtx, batch[i].Opts)
					stop()
					cancel()
					out[i] = BatchResult{Result: res, Err: err}
					continue
				}
				res, err := e.runBatchOne(runCtx, batch[i].Opts)
				out[i] = BatchResult{Result: res, Err: err}
			}
		}()
	}
	wg.Wait()
	return out
}

// runBatchOne runs one batch entry, short-circuiting runs whose context is
// already dead so a cancelled batch drains in O(len) without touching the
// pool.
func (e *Engine) runBatchOne(ctx context.Context, opts RunOptions) (*Result, error) {
	if ctx != nil && ctx.Err() != nil {
		return nil, ErrCanceled
	}
	return e.Run(ctx, opts)
}

// RunN answers the same query n times under opts — the batched load shape
// of a benchmark or a warm-up — and reports the outcomes like RunAll.
func (e *Engine) RunN(ctx context.Context, n int, opts RunOptions) []BatchResult {
	runs := make([]RunOptions, n)
	for i := range runs {
		runs[i] = opts
	}
	return e.RunAll(ctx, runs)
}
