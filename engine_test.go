package symbol

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

const engineSrc = `
len([], 0).
len([_|T], N) :- len(T, M), N is M+1.
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
mk(0, []).
mk(N, [N|T]) :- N > 0, M is N - 1, mk(M, T).
main :- mk(60, L), nrev(L, R), len(R, N), write(N), nl.
`

// TestProfileConcurrent is the regression test for the Program.Profile data
// race: before the sync.Once fix, concurrent first calls both wrote
// p.profile unsynchronized and this test failed under -race.
func TestProfileConcurrent(t *testing.T) {
	prog, err := Compile(engineSrc)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	profiles := make([]interface{}, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func(i int) {
			defer wg.Done()
			p, err := prog.Profile()
			if err != nil {
				t.Errorf("Profile: %v", err)
				return
			}
			profiles[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if profiles[i] != profiles[0] {
			t.Fatalf("Profile returned distinct instances: %p vs %p", profiles[i], profiles[0])
		}
	}
}

// TestRunOptionsValidate covers the negative-size bugfix: invalid options
// must surface as a typed *OptionError from every public entry point,
// before they can reach ic.Layout.
func TestRunOptionsValidate(t *testing.T) {
	prog, err := Compile(engineSrc)
	if err != nil {
		t.Fatal(err)
	}
	bad := []RunOptions{
		{HeapWords: -1},
		{EnvWords: -2},
		{CPWords: -3},
		{TrailWords: -4},
		{PDLWords: -5},
		{MaxSteps: -6},
		{MaxCycles: -7},
	}
	sched, err := prog.Schedule(DefaultMachine(3), ScheduleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(prog)
	for _, opts := range bad {
		var oe *OptionError
		if _, err := prog.RunWith(opts); !errors.As(err, &oe) {
			t.Errorf("RunWith(%+v): got %v, want *OptionError", opts, err)
		}
		if _, err := sched.SimulateWith(opts); !errors.As(err, &oe) {
			t.Errorf("SimulateWith(%+v): got %v, want *OptionError", opts, err)
		}
		if _, err := eng.Run(context.Background(), opts); !errors.As(err, &oe) {
			t.Errorf("Engine.Run(%+v): got %v, want *OptionError", opts, err)
		}
		if _, err := eng.Simulate(context.Background(), opts); !errors.As(err, &oe) {
			t.Errorf("Engine.Simulate(%+v): got %v, want *OptionError", opts, err)
		}
	}
	if err := (RunOptions{}).Validate(); err != nil {
		t.Errorf("zero options: %v", err)
	}
}

// engineStressCases are the mixed per-run option sets of the concurrent
// stress test: a normal run, two different shrunken layouts that fault
// typed, and a tight step budget.
func engineStressCases() []RunOptions {
	return []RunOptions{
		{},                    // plain run
		{HeapWords: 4096},     // heap overflow under a shrunken heap
		{EnvWords: 512},       // env overflow under a shrunken stack
		{MaxSteps: 1000},      // step-budget fault
		{HeapWords: 1 << 20},  // large enough to succeed
		{TrailWords: 2 << 20}, // clamped to default, succeeds
	}
}

// TestEngineConcurrentStress runs N goroutines x M mixed queries against
// one Engine and asserts every outcome is identical to a serial
// allocate-per-run execution of the same options: same success, same
// output, same typed fault kind.
func TestEngineConcurrentStress(t *testing.T) {
	prog, err := Compile(engineSrc)
	if err != nil {
		t.Fatal(err)
	}
	cases := engineStressCases()

	// Serial ground truth, one fresh machine per case.
	type outcome struct {
		res *Result
		err error
	}
	want := make([]outcome, len(cases))
	for i, opts := range cases {
		res, err := prog.RunWith(opts)
		want[i] = outcome{res, err}
	}

	eng := NewEngine(prog)
	const rounds = 8
	runs := make([]RunOptions, 0, rounds*len(cases))
	for r := 0; r < rounds; r++ {
		runs = append(runs, cases...)
	}
	got := eng.RunAll(context.Background(), runs)
	if len(got) != len(runs) {
		t.Fatalf("RunAll returned %d outcomes for %d runs", len(got), len(runs))
	}
	for i, g := range got {
		w := want[i%len(cases)]
		if (g.Err == nil) != (w.err == nil) {
			t.Fatalf("run %d (%+v): err=%v, serial err=%v", i, runs[i], g.Err, w.err)
		}
		if g.Err != nil {
			if !errors.Is(g.Err, errors.Unwrap(w.err)) && g.Err.Error() != w.err.Error() {
				t.Fatalf("run %d (%+v): err=%v, serial err=%v", i, runs[i], g.Err, w.err)
			}
			continue
		}
		if g.Result.Succeeded != w.res.Succeeded || g.Result.Output != w.res.Output {
			t.Fatalf("run %d (%+v): got (%v, %q), serial (%v, %q)",
				i, runs[i], g.Result.Succeeded, g.Result.Output, w.res.Succeeded, w.res.Output)
		}
		if g.Result.Steps != w.res.Steps {
			t.Fatalf("run %d (%+v): steps %d, serial %d — pooled state leaked between runs",
				i, runs[i], g.Result.Steps, w.res.Steps)
		}
	}
}

// TestEngineSimulatePooled checks the pooled VLIW path against the
// allocate-per-run Scheduled.Simulate, including repeat runs on the same
// recycled state.
func TestEngineSimulatePooled(t *testing.T) {
	prog, err := Compile(engineSrc)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := prog.Schedule(DefaultMachine(3), ScheduleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := sched.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(prog)
	for i := 0; i < 3; i++ {
		got, err := eng.Simulate(context.Background(), RunOptions{})
		if err != nil {
			t.Fatalf("Simulate #%d: %v", i, err)
		}
		if got.Succeeded != want.Succeeded || got.Output != want.Output || got.Cycles != want.Cycles {
			t.Fatalf("Simulate #%d: got %v, want %v", i, got, want)
		}
	}
}

// TestEngineCatchConcurrent mixes runs whose resource faults are caught by
// catch/3 — the ball area is written and must be invisible to the next run
// on the recycled state.
func TestEngineCatchConcurrent(t *testing.T) {
	src := `
build(0, []).
build(N, [N|T]) :- N > 0, M is N - 1, build(M, T).
main :- catch(build(3000, _L), resource_error(A), (write(caught(A)), nl)).
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	caught, err := prog.RunWith(RunOptions{HeapWords: 4096})
	if err != nil {
		t.Fatalf("serial caught run: %v", err)
	}
	if !strings.Contains(caught.Output, "caught(heap)") {
		t.Fatalf("serial caught run output %q", caught.Output)
	}
	plain, err := prog.RunWith(RunOptions{})
	if err != nil {
		t.Fatalf("serial plain run: %v", err)
	}

	eng := NewEngine(prog)
	runs := make([]RunOptions, 40)
	for i := range runs {
		if i%2 == 0 {
			runs[i] = RunOptions{HeapWords: 4096}
		}
	}
	for i, g := range eng.RunAll(context.Background(), runs) {
		if g.Err != nil {
			t.Fatalf("run %d: %v", i, g.Err)
		}
		want := plain
		if i%2 == 0 {
			want = caught
		}
		if g.Result.Output != want.Output {
			t.Fatalf("run %d: output %q, want %q", i, g.Result.Output, want.Output)
		}
	}
}

// TestEngineRunAllocs asserts the point of the pool: steady-state pooled
// runs allocate far less than the allocate-per-run baseline (which makes a
// fresh ~19M-word memory image and rescans the code for every query).
func TestEngineRunAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector; allocation counts are not meaningful")
	}
	prog, err := Compile(engineSrc)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(prog)
	ctx := context.Background()
	// Warm the pool so the measurement sees the steady state.
	if _, err := eng.Run(ctx, RunOptions{}); err != nil {
		t.Fatal(err)
	}

	baseline := testing.AllocsPerRun(5, func() {
		if _, err := prog.Run(); err != nil {
			t.Fatal(err)
		}
	})
	pooled := testing.AllocsPerRun(5, func() {
		if _, err := eng.Run(ctx, RunOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("allocs/query: baseline=%.0f pooled=%.0f", baseline, pooled)
	if pooled >= baseline/2 {
		t.Fatalf("pooled path allocates %.0f objects/run, want < half of baseline %.0f", pooled, baseline)
	}
	if pooled > 64 {
		t.Fatalf("pooled path allocates %.0f objects/run, want a small constant", pooled)
	}
}

// TestEngineCancel covers ctx cancellation: an already-cancelled context
// aborts every run with the typed ErrCanceled sentinel.
func TestEngineCancel(t *testing.T) {
	prog, err := Compile(engineSrc)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(prog)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i, g := range eng.RunN(ctx, 4, RunOptions{}) {
		if !errors.Is(g.Err, ErrCanceled) {
			t.Fatalf("run %d: err=%v, want ErrCanceled", i, g.Err)
		}
	}
}

// TestEngineCtxDeadline checks that a context deadline is merged into the
// run options and surfaces as the deadline fault.
func TestEngineCtxDeadline(t *testing.T) {
	src := `
loop :- loop.
main :- loop.
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(prog)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = eng.Run(ctx, RunOptions{})
	if !errors.Is(err, ErrDeadline) && !errors.Is(err, ErrCanceled) {
		t.Fatalf("err=%v, want deadline or canceled fault", err)
	}
}

// TestRunBatchPerEntryCancel: a batch entry's own context cancels that
// entry alone; siblings in the same RunBatch still get their answers.
func TestRunBatchPerEntryCancel(t *testing.T) {
	prog, err := Compile(engineSrc)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(prog)
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	batch := []BatchRun{
		{Ctx: dead, Opts: RunOptions{}},
		{Opts: RunOptions{}},
		{Ctx: context.Background(), Opts: RunOptions{}},
	}
	out := eng.RunBatch(context.Background(), batch)
	if !errors.Is(out[0].Err, ErrCanceled) {
		t.Errorf("entry 0: err=%v, want ErrCanceled", out[0].Err)
	}
	for i := 1; i < len(out); i++ {
		if out[i].Err != nil || out[i].Result == nil || !out[i].Result.Succeeded {
			t.Errorf("entry %d: res=%+v err=%v, want success", i, out[i].Result, out[i].Err)
		}
	}
}

// TestEngineFootprint: a never-run engine's footprint is code-only; the
// first run faults in a pooled machine state, which dominates the
// estimate, and the figure never decreases across runs.
func TestEngineFootprint(t *testing.T) {
	prog, err := Compile(engineSrc)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(prog)
	cold := eng.Footprint()
	if cold <= 0 {
		t.Fatalf("cold footprint = %d, want > 0 (code bytes)", cold)
	}
	if _, err := eng.Run(context.Background(), RunOptions{}); err != nil {
		t.Fatal(err)
	}
	warm := eng.Footprint()
	if warm <= cold {
		t.Fatalf("warm footprint = %d, want > cold %d (a pooled state was allocated)", warm, cold)
	}
	if _, err := eng.Run(context.Background(), RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if again := eng.Footprint(); again < warm {
		t.Fatalf("footprint decreased %d -> %d; the estimate must be monotone", warm, again)
	}
}
