package symbol

import "testing"

// Regression: last-call optimization reused an environment frame that a
// live inner choice point still referenced (fixed by the EB barrier; see
// the Allocate/Try expansion). queens(2) must fail, queens(4) must find a
// valid placement.
func TestEnvBarrierQueens(t *testing.T) {
	const defs = `
place([], Qs, Qs).
place(Unplaced, Safe, Qs) :-
    selectq(Q, Unplaced, Rest),
    \+ attack(Q, Safe),
    place(Rest, [Q|Safe], Qs).
attack(X, Xs) :- attack3(X, 1, Xs).
attack3(X, N, [Y|_]) :- X =:= Y+N.
attack3(X, N, [Y|_]) :- X =:= Y-N.
attack3(X, N, [_|Ys]) :- N1 is N+1, attack3(X, N1, Ys).
selectq(X, [X|T], T).
selectq(X, [H|T], [H|R]) :- selectq(X, T, R).
`
	out := run(t, `main :- place([1,2,3,4], [], Qs), write(Qs), nl.`+defs)
	if out != "[3,1,4,2]\n" && out != "[2,4,1,3]\n" {
		t.Fatalf("invalid 4-queens placement %q", out)
	}
	expectFail(t, `main :- place([1,2], [], Qs), write(Qs), nl.`+defs)
}

// Regression companion: negation-as-failure inside a backtracking loop.
func TestNegationInsideBacktrackingLoop(t *testing.T) {
	out := run(t, `
main :- sel(Q, [1,2,3], R), \+ bad(Q), write(Q), write(R), nl.
bad(1).
bad(2).
sel(X, [X|T], T).
sel(X, [H|T], [H|R]) :- sel(X, T, R).
`)
	if out != "3[1,2]\n" {
		t.Fatalf("got %q", out)
	}
}
