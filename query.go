package symbol

import (
	"fmt"
	"strings"

	"symbol/internal/parse"
	"symbol/internal/term"
)

// CompileQuery compiles a knowledge base together with one goal into a
// runnable Program: the goal becomes the body of a synthetic main/0 clause
// that, on success, writes one "Var = value" line per named goal variable
// (or "yes" when the goal has none). It is the serving-layer counterpart of
// typing the goal at the cmd/prolog top level: the returned Program answers
// the goal against the knowledge base, and Prolog failure surfaces as
// Result.Succeeded == false, not as an error. Run gives the first solution;
// Engine.Query streams them all — the binding write-out sits after the goal
// in the synthetic clause body, so every backtracked solution re-renders
// its own bindings into that segment's Output.
//
// The goal may be written with or without the "?-" prefix and the final
// ".". Any main/0 clauses the knowledge base itself defines are dropped
// first — the posed goal is the query, and must not be shadowed by the
// program's own entry point (run that directly via Compile instead).
func CompileQuery(kbSrc, goal string) (_ *Program, err error) {
	defer guard(&err)
	parsed, err := parse.All(kbSrc)
	if err != nil {
		return nil, fmt.Errorf("symbol: knowledge base: %w", err)
	}
	clauses := parsed[:0]
	for _, cl := range parsed {
		if !definesMain(cl) {
			clauses = append(clauses, cl)
		}
	}
	goal = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(goal), "?-"))
	if goal == "" {
		return nil, fmt.Errorf("symbol: empty query")
	}
	// Normalize the terminating "." through the parser, not by looking at
	// the final byte: a goal can end in a quoted atom ('it ends here.') or a
	// trailing % comment whose "." is not a terminator, and a terminated
	// goal can be followed by a comment. Parse as written first; if that
	// fails, retry with a terminator appended on its own line (the newline
	// closes any open % comment). Only if both fail is the goal malformed,
	// and the as-written error is the one that describes what the user
	// typed.
	goals, perr := parse.All(goal)
	if perr != nil {
		if g2, err2 := parse.All(goal + "\n."); err2 == nil {
			goals, perr = g2, nil
		}
	}
	if perr != nil {
		return nil, fmt.Errorf("symbol: query: %w", perr)
	}
	if len(goals) != 1 {
		return nil, fmt.Errorf("symbol: expected exactly one query, got %d", len(goals))
	}

	// Named query variables, in first-occurrence order.
	var named []*term.Var
	for _, v := range term.Vars(goals[0], nil) {
		if v.Name != "" && !strings.HasPrefix(v.Name, "_") {
			named = append(named, v)
		}
	}

	// main :- Goal, write('X = '), write(X), nl, ...  (or write(yes), nl).
	body := goals[0]
	if len(named) == 0 {
		body = term.Comma(body, term.Comma(
			&term.Compound{Functor: "write", Args: []term.Term{term.Atom("yes")}},
			term.Atom("nl")))
	} else {
		for _, v := range named {
			body = term.Comma(body, term.Comma(
				&term.Compound{Functor: "write", Args: []term.Term{term.Atom(v.Name + " = ")}},
				term.Comma(
					&term.Compound{Functor: "write", Args: []term.Term{v}},
					term.Atom("nl"))))
		}
	}
	clauses = append(clauses, &term.Compound{
		Functor: ":-",
		Args:    []term.Term{term.Atom("main"), body},
	})
	return compileClauses(clauses, DefaultOptions())
}

// definesMain reports whether a clause defines main/0 (as a fact or a
// rule), so CompileQuery can replace the knowledge base's entry point with
// the posed goal.
func definesMain(cl term.Term) bool {
	head := cl
	if c, ok := cl.(*term.Compound); ok && c.Functor == ":-" && len(c.Args) == 2 {
		head = c.Args[0]
	}
	a, ok := head.(term.Atom)
	return ok && a == "main"
}
