package symbol

import (
	"fmt"
	"strings"

	"symbol/internal/parse"
	"symbol/internal/term"
)

// queryClauses is the compile-side half of query handling: it parses the
// knowledge base, drops any main/0 clauses it defines (the posed goal is
// the query, and must not be shadowed by the program's own entry point),
// and appends a synthetic main/0 clause whose body runs the goal and, on
// success, writes one "Var = value" line per named goal variable (or "yes"
// when the goal has none). It returns the clauses ready for compileClauses
// together with the normalized goal text (the "?-" prefix stripped), which
// the Program records for snapshots.
//
// The goal may be written with or without the "?-" prefix and the final
// ".".
func queryClauses(kbSrc, goal string) ([]term.Term, string, error) {
	parsed, err := parse.All(kbSrc)
	if err != nil {
		return nil, "", fmt.Errorf("symbol: knowledge base: %w", err)
	}
	clauses := parsed[:0]
	for _, cl := range parsed {
		if !definesMain(cl) {
			clauses = append(clauses, cl)
		}
	}
	goal = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(goal), "?-"))
	if goal == "" {
		return nil, "", fmt.Errorf("symbol: empty query")
	}
	// Normalize the terminating "." through the parser, not by looking at
	// the final byte: a goal can end in a quoted atom ('it ends here.') or a
	// trailing % comment whose "." is not a terminator, and a terminated
	// goal can be followed by a comment. Parse as written first; if that
	// fails, retry with a terminator appended on its own line (the newline
	// closes any open % comment). Only if both fail is the goal malformed,
	// and the as-written error is the one that describes what the user
	// typed.
	goals, perr := parse.All(goal)
	if perr != nil {
		if g2, err2 := parse.All(goal + "\n."); err2 == nil {
			goals, perr = g2, nil
		}
	}
	if perr != nil {
		return nil, "", fmt.Errorf("symbol: query: %w", perr)
	}
	if len(goals) != 1 {
		return nil, "", fmt.Errorf("symbol: expected exactly one query, got %d", len(goals))
	}

	// Named query variables, in first-occurrence order.
	var named []*term.Var
	for _, v := range term.Vars(goals[0], nil) {
		if v.Name != "" && !strings.HasPrefix(v.Name, "_") {
			named = append(named, v)
		}
	}

	// main :- Goal, write('X = '), write(X), nl, ...  (or write(yes), nl).
	body := goals[0]
	if len(named) == 0 {
		body = term.Comma(body, term.Comma(
			&term.Compound{Functor: "write", Args: []term.Term{term.Atom("yes")}},
			term.Atom("nl")))
	} else {
		for _, v := range named {
			body = term.Comma(body, term.Comma(
				&term.Compound{Functor: "write", Args: []term.Term{term.Atom(v.Name + " = ")}},
				term.Comma(
					&term.Compound{Functor: "write", Args: []term.Term{v}},
					term.Atom("nl"))))
		}
	}
	clauses = append(clauses, &term.Compound{
		Functor: ":-",
		Args:    []term.Term{term.Atom("main"), body},
	})
	return clauses, goal, nil
}

// definesMain reports whether a clause defines main/0 (as a fact or a
// rule), so query programs can replace the knowledge base's entry point
// with the posed goal.
func definesMain(cl term.Term) bool {
	head := cl
	if c, ok := cl.(*term.Compound); ok && c.Functor == ":-" && len(c.Args) == 2 {
		head = c.Args[0]
	}
	a, ok := head.(term.Atom)
	return ok && a == "main"
}
