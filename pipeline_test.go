package symbol

import (
	"strings"
	"testing"
)

// run compiles and executes src, expecting success, and returns the output.
func run(t *testing.T, src string) string {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := prog.Run()
	if err != nil {
		t.Fatalf("run: %v\nBAM:\n%s", err, prog.BAMListing())
	}
	if !res.Succeeded {
		t.Fatalf("program failed (no solution); output so far: %q", res.Output)
	}
	return res.Output
}

// expectFail compiles and executes src, expecting main/0 to fail.
func expectFail(t *testing.T, src string) {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := prog.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Succeeded {
		t.Fatalf("program unexpectedly succeeded, output %q", res.Output)
	}
}

func TestFacts(t *testing.T) {
	out := run(t, `
p(a).
main :- p(a), write(yes), nl.
`)
	if out != "yes\n" {
		t.Fatalf("output %q", out)
	}
}

func TestFactFailure(t *testing.T) {
	expectFail(t, `
p(a).
main :- p(b).
`)
}

func TestUnifyBindsVariable(t *testing.T) {
	out := run(t, `
p(hello).
main :- p(X), write(X), nl.
`)
	if out != "hello\n" {
		t.Fatalf("output %q", out)
	}
}

func TestBacktrackingThroughFacts(t *testing.T) {
	out := run(t, `
p(a). p(b). p(c).
main :- p(X), X = b, write(X), nl.
`)
	if out != "b\n" {
		t.Fatalf("output %q", out)
	}
}

func TestArithmetic(t *testing.T) {
	out := run(t, `
main :- X is 3*4+2, write(X), nl,
        Y is X // 2, write(Y), nl,
        Z is X mod 5, write(Z), nl,
        W is -X, write(W), nl.
`)
	if out != "14\n7\n4\n-14\n" {
		t.Fatalf("output %q", out)
	}
}

func TestComparison(t *testing.T) {
	run(t, `main :- 1 < 2, 2 =< 2, 3 > 1, 3 >= 3, 4 =:= 4, 4 =\= 5.`)
	expectFail(t, `main :- 2 < 1.`)
	expectFail(t, `main :- 1 =:= 2.`)
}

func TestListUnification(t *testing.T) {
	out := run(t, `
main :- X = [1,2,3], X = [H|T], write(H), nl, write(T), nl.
`)
	if out != "1\n[2,3]\n" {
		t.Fatalf("output %q", out)
	}
}

func TestAppend(t *testing.T) {
	out := run(t, `
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
main :- app([1,2], [3,4], X), write(X), nl.
`)
	if out != "[1,2,3,4]\n" {
		t.Fatalf("output %q", out)
	}
}

func TestAppendBackward(t *testing.T) {
	// Run append in the splitting direction: requires real backtracking.
	out := run(t, `
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
main :- app(X, Y, [1,2,3]), X = [1], write(Y), nl.
`)
	if out != "[2,3]\n" {
		t.Fatalf("output %q", out)
	}
}

func TestNrev(t *testing.T) {
	out := run(t, `
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
main :- nrev([1,2,3,4,5], R), write(R), nl.
`)
	if out != "[5,4,3,2,1]\n" {
		t.Fatalf("output %q", out)
	}
}

func TestCut(t *testing.T) {
	out := run(t, `
max(X, Y, X) :- X >= Y, !.
max(_, Y, Y).
main :- max(3, 7, M), write(M), nl, max(9, 2, N), write(N), nl.
`)
	if out != "7\n9\n" {
		t.Fatalf("output %q", out)
	}
}

func TestDeepCutAfterCall(t *testing.T) {
	out := run(t, `
p(1). p(2). p(3).
q(X) :- p(X), X > 1, !, write(X), nl.
main :- q(_).
`)
	if out != "2\n" {
		t.Fatalf("output %q", out)
	}
}

func TestCutBarrierRestoresOuterAlternatives(t *testing.T) {
	out := run(t, `
p(1). p(2).
q(X) :- p(X), !.
main :- q(X), X = 2, write(second), nl.
main :- write(first_main_failed), nl.
`)
	// q commits to X=1; X=2 fails; outer main alternatives remain.
	if out != "first_main_failed\n" {
		t.Fatalf("output %q", out)
	}
}

func TestIfThenElse(t *testing.T) {
	out := run(t, `
classify(X, small) :- (X < 10 -> true ; fail).
classify(X, big) :- X >= 10.
test(X) :- (X < 10 -> write(small) ; write(big)), nl.
main :- test(5), test(15).
`)
	if out != "small\nbig\n" {
		t.Fatalf("output %q", out)
	}
}

func TestDisjunction(t *testing.T) {
	out := run(t, `
main :- (fail ; write(right)), nl.
`)
	if out != "right\n" {
		t.Fatalf("output %q", out)
	}
}

func TestNegationAsFailure(t *testing.T) {
	run(t, `
p(a).
main :- \+ p(b).
`)
	expectFail(t, `
p(a).
main :- \+ p(a).
`)
}

func TestNegationUndoesBindings(t *testing.T) {
	out := run(t, `
p(a).
main :- \+ (p(X), X = b), write(ok), nl.
`)
	if out != "ok\n" {
		t.Fatalf("output %q", out)
	}
}

func TestStructures(t *testing.T) {
	out := run(t, `
area(rect(W, H), A) :- A is W*H.
area(square(S), A) :- A is S*S.
main :- area(rect(3, 4), A1), write(A1), nl,
        area(square(5), A2), write(A2), nl.
`)
	if out != "12\n25\n" {
		t.Fatalf("output %q", out)
	}
}

func TestNestedStructUnify(t *testing.T) {
	out := run(t, `
main :- X = f(g(1), h(Y, [a|Z])), X = f(G, h(2, [a,b])),
        write(G), nl, write(Y), nl, write(Z), nl.
`)
	if out != "g(1)\n2\n[b]\n" {
		t.Fatalf("output %q", out)
	}
}

func TestFirstArgIndexingDeterminism(t *testing.T) {
	// With distinct atom selectors, calls must not leave choice points:
	// observable through cut-free determinism (second clause never runs).
	out := run(t, `
color(red, 1). color(green, 2). color(blue, 3).
main :- color(green, X), write(X), nl.
`)
	if out != "2\n" {
		t.Fatalf("output %q", out)
	}
}

func TestStructEqAndTypeTests(t *testing.T) {
	run(t, `
main :- X = f(1), Y = f(1), X == Y,
        Z = f(2), \+ X == Z, X \== Z,
        atom(foo), integer(42), \+ atom(42),
        var(_), nonvar(foo), atomic(foo), atomic(7), \+ atomic(f(x)).
`)
}

func TestRecursionDepth(t *testing.T) {
	out := run(t, `
count(0) :- !.
count(N) :- M is N-1, count(M).
main :- count(10000), write(done), nl.
`)
	if out != "done\n" {
		t.Fatalf("output %q", out)
	}
}

func TestPermanentVariablesAcrossCalls(t *testing.T) {
	out := run(t, `
id(X, X).
main :- id(A, 1), id(B, 2), id(C, 3), Z is A+B+C, write(Z), nl.
`)
	if out != "6\n" {
		t.Fatalf("output %q", out)
	}
}

func TestLastCallOptimizationDeepRecursion(t *testing.T) {
	// 200000 tail-recursive calls must not exhaust the environment stack.
	out := run(t, `
loop(0).
loop(N) :- M is N-1, loop(M).
main :- loop(200000), write(ok), nl.
`)
	if out != "ok\n" {
		t.Fatalf("output %q", out)
	}
}

func TestWriteNestedTerms(t *testing.T) {
	out := run(t, `
main :- write(f(g(h(1,2)), [a,[b],c|d])), nl, write([]), nl.
`)
	if out != "f(g(h(1,2)),[a,[b],c|d])\n[]\n" {
		t.Fatalf("output %q", out)
	}
}

func TestUndefinedPredicateFails(t *testing.T) {
	prog, err := Compile(`main :- nosuchpred(1).`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if len(prog.Undefined()) != 1 {
		t.Fatalf("expected one undefined predicate, got %v", prog.Undefined())
	}
	res, err := prog.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded {
		t.Fatal("call to undefined predicate must fail")
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		`p(a).`,                 // no main/0
		`main :- X is foo + 1.`, // bad arithmetic
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("expected compile error for %q", src)
		}
	}
}

func TestListingsNonEmpty(t *testing.T) {
	prog, err := Compile(`main :- write(hi), nl.`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.BAMListing(), "procedure main/0") {
		t.Error("BAM listing missing procedure header")
	}
	if !strings.Contains(prog.ICListing(), "jsr") {
		t.Error("IC listing missing call instruction")
	}
	if prog.CodeSize() == 0 {
		t.Error("empty IC program")
	}
}
