module symbol

go 1.23
