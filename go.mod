module symbol

go 1.22
