package symbol

import (
	"symbol/internal/ic"
	"symbol/internal/stats"
)

// InstructionMix is the dynamic instruction-class distribution of a run
// (the paper's Figure 2 analysis), as fractions of all executed operations.
type InstructionMix struct {
	ALU     float64
	Memory  float64
	Move    float64
	Control float64
	Sys     float64
	Total   int64 // dynamic operation count
}

// BranchReport summarizes dynamic branch behaviour (§4.4).
type BranchReport struct {
	// AvgFaultyPrediction is the execution-weighted average P_fp: the
	// probability that following each branch's majority direction is
	// wrong. Low values mean trace scheduling picks good traces.
	AvgFaultyPrediction float64
	// AvgTaken is the mean taken probability.
	AvgTaken float64
	// DynBranches counts executed conditional branches.
	DynBranches int64
	// StaticBranches counts distinct executed conditional branches.
	StaticBranches int
	// BackwardTaken / ForwardTaken report the 90/50-rule check.
	BackwardTaken float64
	ForwardTaken  float64
	// Histogram is the P_fp distribution over [0, 0.5] in 20 bins, each
	// entry an execution-weighted share (Figure 4).
	Histogram []float64
}

// Analysis bundles the code analyses of one program.
type Analysis struct {
	Mix      InstructionMix
	Branches BranchReport
	// AmdahlLimit is the shared-memory speed-up asymptote implied by the
	// measured memory fraction: 1 / memoryFraction (§4.2, "about 3").
	AmdahlLimit float64
}

// Analyze profiles the program (if needed) and computes the paper's §4 code
// analyses for it.
func (p *Program) Analyze() (*Analysis, error) {
	prof, err := p.Profile()
	if err != nil {
		return nil, err
	}
	m := stats.ComputeMix(p.icp, prof)
	bs := stats.ComputeBranchStats(p.icp, prof, 20)
	back, fwd := stats.NinetyFifty(p.icp, prof)
	mem := m.Fraction(ic.ClassMemory)
	limit := 0.0
	if mem > 0 {
		limit = 1 / mem
	}
	return &Analysis{
		Mix: InstructionMix{
			ALU:     m.Fraction(ic.ClassALU),
			Memory:  mem,
			Move:    m.Fraction(ic.ClassMove),
			Control: m.Fraction(ic.ClassControl),
			Sys:     m.Fraction(ic.ClassSys),
			Total:   m.Total,
		},
		Branches: BranchReport{
			AvgFaultyPrediction: bs.AvgPfp,
			AvgTaken:            bs.AvgTaken,
			DynBranches:         bs.Executions,
			StaticBranches:      bs.StaticBranches,
			BackwardTaken:       back,
			ForwardTaken:        fwd,
			Histogram:           bs.Histogram,
		},
		AmdahlLimit: limit,
	}, nil
}
