package symbol

import "testing"

func TestArgBuiltin(t *testing.T) {
	out := run(t, `
main :- T = f(a, b, c),
        arg(1, T, A1), write(A1), nl,
        arg(3, T, A3), write(A3), nl,
        L = [x, y], arg(1, L, H), write(H), nl, arg(2, L, Tl), write(Tl), nl.
`)
	if out != "a\nc\nx\n[y]\n" {
		t.Fatalf("got %q", out)
	}
	expectFail(t, `main :- arg(4, f(a,b,c), _).`)
	expectFail(t, `main :- arg(0, f(a,b,c), _).`)
	expectFail(t, `main :- arg(1, atom, _).`)
}

func TestFunctorAnalysis(t *testing.T) {
	out := run(t, `
main :- functor(f(a,b), F, N), write(F/N), nl,
        functor([1|_], F2, N2), write(F2/N2), nl,
        functor(hello, F3, N3), write(F3/N3), nl,
        functor(42, F4, N4), write(F4/N4), nl.
`)
	if out != "f/2\n. /2\nhello/0\n42/0\n" {
		t.Fatalf("got %q", out)
	}
	expectFail(t, `main :- functor(f(a), g, _).`)
	expectFail(t, `main :- functor(f(a), _, 2).`)
}

func TestFunctorConstruction(t *testing.T) {
	out := run(t, `
main :- functor(T, foo, 3), write(T), nl,
        T = foo(1, X, _), X = 2, write(T), nl,
        functor(A, bar, 0), write(A), nl.
`)
	// Fresh arguments print as _<addr>; check shape via the bound run.
	if len(out) == 0 {
		t.Fatal("no output")
	}
	lines := out
	if want := "foo("; lines[:4] != want {
		t.Fatalf("got %q", out)
	}
	expectFail(t, `main :- functor(_, _, 1).`)
	expectFail(t, `main :- functor(_, f(x), 2).`)
}

func TestFunctorRoundTrip(t *testing.T) {
	out := run(t, `
copy_shape(In, Out) :- functor(In, F, N), functor(Out, F, N).
main :- copy_shape(point(1,2,3), S), functor(S, F, N), write(F), write(N), nl,
        S = point(A, B, C), A = 9, B = 8, C = 7, write(S), nl.
`)
	if out != "point3\npoint(9,8,7)\n" {
		t.Fatalf("got %q", out)
	}
}

func TestUnivDecompose(t *testing.T) {
	out := run(t, `
main :- f(1, g(2), [3]) =.. L, write(L), nl,
        [a, b] =.. L2, write(L2), nl,
        hello =.. L3, write(L3), nl,
        42 =.. L4, write(L4), nl.
`)
	if out != "[f,1,g(2),[3]]\n[.,a,[b]]\n[hello]\n[42]\n" {
		t.Fatalf("got %q", out)
	}
}

func TestUnivConstruct(t *testing.T) {
	out := run(t, `
main :- T =.. [point, 1, 2], write(T), nl,
        A =.. [foo], write(A), nl,
        N =.. [99], write(N), nl,
        L =.. ['.', h, [t]], write(L), nl.
`)
	if out != "point(1,2)\nfoo\n99\n[h,t]\n" {
		t.Fatalf("got %q", out)
	}
	expectFail(t, `main :- _ =.. [f|_].`)     // improper list
	expectFail(t, `main :- _ =.. [f(x), 1].`) // non-atom functor
	expectFail(t, `main :- _ =.. nonlist.`)
}

func TestUnivRoundTrip(t *testing.T) {
	out := run(t, `
main :- T = tree(l, 7, r), T =.. L, U =.. L,
        ( T == U -> write(same) ; write(different) ), nl.
`)
	if out != "same\n" {
		t.Fatalf("got %q", out)
	}
}
