package symbol

import (
	"testing"

	"symbol/internal/benchprog"
)

// The central correctness property of the whole back end (DESIGN.md §4):
// the trace-scheduled VLIW program must be executable and produce the same
// observable results as the sequential IntCode emulation, on every machine
// configuration, for every benchmark.

func checkEquivalence(t *testing.T, name, src string, opts ScheduleOptions, units []int) {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("%s: compile: %v", name, err)
	}
	seq, err := prog.Run()
	if err != nil {
		t.Fatalf("%s: sequential run: %v", name, err)
	}
	for _, u := range units {
		conf := DefaultMachine(u)
		sched, err := prog.Schedule(conf, opts)
		if err != nil {
			t.Fatalf("%s/%d-unit: schedule: %v", name, u, err)
		}
		res, err := sched.Simulate()
		if err != nil {
			t.Fatalf("%s/%d-unit: simulate: %v", name, u, err)
		}
		if res.Succeeded != seq.Succeeded || res.Output != seq.Output {
			t.Fatalf("%s/%d-unit: VLIW result diverged:\nseq: ok=%v %q\nvliw: ok=%v %q",
				name, u, seq.Succeeded, seq.Output, res.Succeeded, res.Output)
		}
	}
}

var microPrograms = map[string]string{
	"append": `
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
main :- app([1,2,3], [4], X), write(X), nl.
`,
	"backtrack": `
p(1). p(2). p(3).
main :- p(X), X > 2, write(X), nl.
`,
	"cutfail": `
max(X, Y, X) :- X >= Y, !.
max(_, Y, Y).
main :- max(3, 7, M), max(M, 2, N), write(N), nl.
`,
	"negation": `
p(a).
main :- \+ p(b), write(ok), nl.
`,
	"arith": `
f(0, 1) :- !.
f(N, R) :- M is N-1, f(M, S), R is S*N.
main :- f(10, R), write(R), nl.
`,
	"structs": `
main :- X = f(g(1), [a,b|T]), X = f(G, L), T = [c],
        write(G), write(L), nl.
`,
	"fails": `
p(1).
main :- p(2), write(never), nl.
`,
	"deepwrite": `
main :- mk(6, T), write(T), nl.
mk(0, leaf) :- !.
mk(N, node(L, N, R)) :- M is N-1, mk(M, L), mk(M, R).
`,
}

func TestVLIWEquivalenceMicro(t *testing.T) {
	for name, src := range microPrograms {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			checkEquivalence(t, name, src, ScheduleOptions{}, []int{1, 2, 3, 5})
		})
	}
}

func TestVLIWEquivalenceBasicBlocksOnly(t *testing.T) {
	for name, src := range microPrograms {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			checkEquivalence(t, name, src, ScheduleOptions{BasicBlocksOnly: true}, []int{1, 3})
		})
	}
}

func TestVLIWEquivalenceBenchmarks(t *testing.T) {
	for _, b := range benchprog.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			if b.Heavy && testing.Short() {
				t.Skip("heavy benchmark skipped in short mode")
			}
			checkEquivalence(t, b.Name, b.Source, ScheduleOptions{}, []int{1, 3})
		})
	}
}

// Speedups must be sane: parallel cycles never exceed sequential cycles by
// more than the bubble overhead, and more units never hurt much.
func TestSpeedupSanity(t *testing.T) {
	prog, err := Compile(benchMust(t, "qsort"))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := prog.SeqCycles()
	if err != nil {
		t.Fatal(err)
	}
	var prev int64
	for _, u := range []int{1, 2, 3, 4, 5} {
		sched, err := prog.Schedule(DefaultMachine(u), ScheduleOptions{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sched.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		su := Speedup(seq, res.Cycles)
		t.Logf("%d units: %d cycles, speedup %.2f", u, res.Cycles, su)
		if su < 1.0 {
			t.Errorf("%d units slower than sequential (%.2f)", u, su)
		}
		if prev != 0 && res.Cycles > prev+prev/10 {
			t.Errorf("%d units much slower than %d units (%d vs %d cycles)", u, u-1, res.Cycles, prev)
		}
		prev = res.Cycles
	}
}

func benchMust(t *testing.T, name string) string {
	t.Helper()
	b, err := benchprog.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return b.Source
}
