package symbol

import (
	"context"
	"errors"
	"testing"
)

// TestParseDispatch pins the flag-facing surface: every mode name round-trips
// through ParseDispatch/String, "" and "auto" both mean Auto, and an unknown
// name is a descriptive error.
func TestParseDispatch(t *testing.T) {
	for _, want := range []Dispatch{
		DispatchLegacy, DispatchNoFuse, DispatchFused, DispatchThreaded,
	} {
		got, err := ParseDispatch(want.String())
		if err != nil || got != want {
			t.Errorf("ParseDispatch(%q) = %v, %v", want.String(), got, err)
		}
	}
	for _, s := range []string{"", "auto"} {
		got, err := ParseDispatch(s)
		if err != nil || got != DispatchAuto {
			t.Errorf("ParseDispatch(%q) = %v, %v, want Auto", s, got, err)
		}
	}
	if _, err := ParseDispatch("warp"); err == nil {
		t.Error("ParseDispatch of unknown mode succeeded")
	}
}

// TestDispatchConflict: combining the deprecated NoFuse boolean with a
// contradicting Dispatch is rejected with the typed conflict error, while
// the redundant (NoFuse + DispatchNoFuse) and alias (NoFuse alone) spellings
// stay valid.
func TestDispatchConflict(t *testing.T) {
	err := (RunOptions{NoFuse: true, Dispatch: DispatchThreaded}).Validate()
	var ce *DispatchConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("Validate = %v, want DispatchConflictError", err)
	}
	if ce.Dispatch != DispatchThreaded {
		t.Errorf("conflict names %v, want threaded", ce.Dispatch)
	}
	if err := (RunOptions{NoFuse: true, Dispatch: DispatchNoFuse}).Validate(); err != nil {
		t.Errorf("redundant NoFuse+DispatchNoFuse rejected: %v", err)
	}
	if err := (RunOptions{NoFuse: true}).Validate(); err != nil {
		t.Errorf("deprecated NoFuse alias rejected: %v", err)
	}
	// The conflict is surfaced through the run entry points too, not just
	// explicit Validate calls.
	prog, cerr := CompileQuery(streamKB, "app(X, Y, [1])")
	if cerr != nil {
		t.Fatal(cerr)
	}
	if _, err := prog.RunWith(RunOptions{NoFuse: true, Dispatch: DispatchFused}); !errors.As(err, &ce) {
		t.Fatalf("RunWith = %v, want DispatchConflictError", err)
	}
}

// TestWithDispatchRuns: each functional-option mode actually executes and
// agrees on the answer, and the deprecated WithNoFuse still resolves to the
// unfused core.
func TestWithDispatchRuns(t *testing.T) {
	prog, err := CompileQuery(streamKB, "app(X, Y, [1,2])")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := prog.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []Dispatch{
		DispatchAuto, DispatchLegacy, DispatchNoFuse, DispatchFused, DispatchThreaded,
	} {
		res, err := prog.RunContext(context.Background(), WithDispatch(d))
		if err != nil {
			t.Errorf("%v: %v", d, err)
			continue
		}
		if res.Output != ref.Output || res.Steps != ref.Steps {
			t.Errorf("%v: output %q steps %d, want %q / %d",
				d, res.Output, res.Steps, ref.Output, ref.Steps)
		}
	}
	res, err := prog.RunContext(context.Background(), WithNoFuse())
	if err != nil || res.Output != ref.Output {
		t.Errorf("WithNoFuse: %v, %+v", err, res)
	}
}
