package symbol

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"symbol/internal/fault"
	"symbol/internal/faultsim"
)

// runBoth executes src on the sequential emulator and the scheduled VLIW
// simulator under the same resource options, returning both errors.
func runBoth(t *testing.T, src string, opts RunOptions) (seqErr, simErr error) {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	_, seqErr = prog.RunWith(opts)
	sched, err := prog.Schedule(DefaultMachine(3), ScheduleOptions{})
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	_, simErr = sched.SimulateWith(opts)
	return seqErr, simErr
}

// TestFaultKinds drives each memory area into its configured limit on both
// executors and checks the typed sentinel. The programs are the faultsim
// corpus entries whose stressed area is known.
func TestFaultKinds(t *testing.T) {
	cases := []struct {
		name string
		src  string
		opts RunOptions
		want error
	}{
		{
			name: "heap overflow",
			src: `
build(0, []).
build(N, [N|T]) :- N > 0, M is N - 1, build(M, T).
main :- build(3000, L), L = [_|_].
`,
			opts: RunOptions{HeapWords: 4096},
			want: ErrHeapOverflow,
		},
		{
			name: "env overflow",
			src: `
sum(0, 0).
sum(N, S) :- N > 0, M is N - 1, sum(M, T), S is T + 1.
main :- sum(3000, S), S > 0.
`,
			opts: RunOptions{EnvWords: 1024},
			want: ErrEnvOverflow,
		},
		{
			name: "cp overflow",
			src: `
alt(_).
alt(_) :- fail.
spine(0).
spine(N) :- N > 0, alt(N), M is N - 1, spine(M).
main :- spine(2500).
`,
			opts: RunOptions{CPWords: 1024},
			want: ErrCPOverflow,
		},
		{
			name: "trail overflow",
			src: `
bind([]).
bind([X|T]) :- X = a, bind(T).
mk(0, []).
mk(N, [_|T]) :- N > 0, M is N - 1, mk(M, T).
flip(_).
flip(_) :- fail.
main :- mk(1500, L), flip(x), bind(L).
`,
			opts: RunOptions{TrailWords: 512},
			want: ErrTrailOverflow,
		},
		{
			name: "pdl overflow",
			src: `
mk(0, leaf).
mk(N, t(L, N)) :- N > 0, M is N - 1, mk(M, L).
main :- mk(200, A), mk(200, B), A = B.
`,
			opts: RunOptions{PDLWords: 64},
			want: ErrPDLOverflow,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seqErr, simErr := runBoth(t, tc.src, tc.opts)
			if !errors.Is(seqErr, tc.want) {
				t.Errorf("sequential: got %v, want %v", seqErr, tc.want)
			}
			if !errors.Is(simErr, tc.want) {
				t.Errorf("vliw: got %v, want %v", simErr, tc.want)
			}
		})
	}
}

// TestFaultZeroDivide: an uncaught zero divisor is the typed arithmetic
// fault on the sequential emulator; with catch/3 it is recoverable on both
// executors (which also exercises the VLIW SysFault redirect path).
func TestFaultZeroDivide(t *testing.T) {
	prog, err := Compile(`main :- X is 1 // 0, X > 0.`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if _, err := prog.Run(); !errors.Is(err, ErrZeroDivide) {
		t.Errorf("sequential uncaught: got %v, want %v", err, ErrZeroDivide)
	}

	src := `main :- catch((X is 1 // 0, write(X)), zero_divisor, (write(caught), nl)).`
	caught, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := caught.Run()
	if err != nil || !res.Succeeded || res.Output != "caught\n" {
		t.Fatalf("sequential catch: res=%+v err=%v", res, err)
	}
	sched, err := caught.Schedule(DefaultMachine(3), ScheduleOptions{})
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	sim, err := sched.Simulate()
	if err != nil || !sim.Succeeded || sim.Output != "caught\n" {
		t.Fatalf("vliw catch: res=%+v err=%v", sim, err)
	}
}

// TestFaultBudgets exhausts the step and cycle budgets on a terminating
// program and checks the typed (uncatchable) budget faults.
func TestFaultBudgets(t *testing.T) {
	src := `
count(0).
count(N) :- N > 0, M is N - 1, count(M).
main :- count(100000).
`
	seqErr, simErr := runBoth(t, src, RunOptions{MaxSteps: 500, MaxCycles: 500})
	if !errors.Is(seqErr, ErrStepLimit) {
		t.Errorf("sequential: got %v, want %v", seqErr, ErrStepLimit)
	}
	if !errors.Is(simErr, ErrCycleLimit) {
		t.Errorf("vliw: got %v, want %v", simErr, ErrCycleLimit)
	}
}

// TestFaultDeadline: a wall-clock deadline in the past trips immediately on
// both executors.
func TestFaultDeadline(t *testing.T) {
	src := `
count(0).
count(N) :- N > 0, M is N - 1, count(M).
main :- count(100000).
`
	opts := RunOptions{Deadline: time.Now().Add(-time.Second)}
	seqErr, simErr := runBoth(t, src, opts)
	if !errors.Is(seqErr, ErrDeadline) {
		t.Errorf("sequential: got %v, want %v", seqErr, ErrDeadline)
	}
	if !errors.Is(simErr, ErrDeadline) {
		t.Errorf("vliw: got %v, want %v", simErr, ErrDeadline)
	}
}

// TestFaultUncaughtThrow checks the typed sentinel for a ball no catch/3
// frame wants.
func TestFaultUncaughtThrow(t *testing.T) {
	prog, err := Compile(`main :- throw(unhandled(42)).`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if _, err := prog.Run(); !errors.Is(err, ErrUncaughtThrow) {
		t.Errorf("got %v, want %v", err, ErrUncaughtThrow)
	}
}

// TestFaultCatchRoundTrip is the acceptance scenario: a program that
// catches resource_error(heap) under a shrunken heap completes with the
// recovery answer, identically on both executors.
func TestFaultCatchRoundTrip(t *testing.T) {
	src := `
build(0, []).
build(N, [N|T]) :- N > 0, M is N - 1, build(M, T).
main :- catch((build(3000, L), L = [_|_], write(full), nl),
              resource_error(heap),
              (write(recovered), nl)).
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}

	// Default layout: the build fits and the goal path answers "full".
	res, err := prog.Run()
	if err != nil || !res.Succeeded || res.Output != "full\n" {
		t.Fatalf("sequential default: res=%+v err=%v", res, err)
	}

	// Shrunken heap: the overflow converts to resource_error(heap), the
	// stack unwinds to the catch frame, and the recovery goal answers.
	opts := RunOptions{HeapWords: 4096}
	res, err = prog.RunWith(opts)
	if err != nil || !res.Succeeded || res.Output != "recovered\n" {
		t.Fatalf("sequential shrunken: res=%+v err=%v", res, err)
	}

	sched, err := prog.Schedule(DefaultMachine(3), ScheduleOptions{})
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	sim, err := sched.Simulate()
	if err != nil || !sim.Succeeded || sim.Output != "full\n" {
		t.Fatalf("vliw default: res=%+v err=%v", sim, err)
	}
	sim, err = sched.SimulateWith(opts)
	if err != nil || !sim.Succeeded || sim.Output != "recovered\n" {
		t.Fatalf("vliw shrunken: res=%+v err=%v", sim, err)
	}
}

// TestFaultDifferential is the randomized injection harness: every corpus
// program is run under random resource configurations through both
// executors, which must agree on the outcome — same success and output, or
// the same fault kind (step and cycle budgets count as the same logical
// budget fault). The seed is fixed for reproducibility.
func TestFaultDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const trials = 8
	for _, p := range faultsim.Programs() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			u, err := faultsim.Compile(p.Src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}

			// Fault-free baseline.
			seq, par, err := u.Differential(faultsim.Opts{})
			if err != nil {
				t.Fatalf("schedule: %v", err)
			}
			if seq.Kind != fault.None || !seq.Succeeded {
				t.Fatalf("baseline sequential run not clean: %+v", seq)
			}
			if !faultsim.Agree(seq, par) {
				t.Fatalf("baseline disagreement: seq=%+v vliw=%+v", seq, par)
			}

			for i := 0; i < trials; i++ {
				opts := randomOpts(rng)
				seq, par, err := u.Differential(opts)
				if err != nil {
					t.Fatalf("trial %d schedule: %v", i, err)
				}
				if !faultsim.Agree(seq, par) {
					t.Errorf("trial %d opts=%+v:\n  sequential: kind=%v ok=%v err=%v\n  vliw:       kind=%v ok=%v err=%v",
						i, opts, seq.Kind, seq.Succeeded, seq.Err, par.Kind, par.Succeeded, par.Err)
				}
			}
		})
	}
}

// randomOpts injects either shrunken memory areas or a tight budget — never
// both, so the expected fault kind is well defined across executors (a tiny
// step budget could otherwise race a tiny area on one path only).
func randomOpts(rng *rand.Rand) faultsim.Opts {
	var o faultsim.Opts
	// The sequential dispatch mode is orthogonal to the injected resources;
	// rotating it here runs the injection matrix over all four cores.
	switch rng.Intn(4) {
	case 0:
		o.Legacy = true
	case 1:
		o.NoFuse = true
	case 2:
		o.Threaded = true
	}
	if rng.Intn(4) == 0 {
		// Budget injection: far below any corpus program's cost on either
		// executor, so both must trip their meter.
		b := 100 + rng.Int63n(400)
		o.MaxSteps, o.MaxCycles = b, b
		return o
	}
	shrink := func(def int64) int64 {
		switch rng.Intn(3) {
		case 0:
			return 0 // default size
		case 1:
			return def / 2
		default:
			// Small but above the red-zone floor every program needs to
			// start up (query construction, first frames).
			return 512 + rng.Int63n(4096)
		}
	}
	o.Layout.HeapWords = shrink(1 << 14)
	o.Layout.EnvWords = shrink(1 << 13)
	o.Layout.CPWords = shrink(1 << 13)
	o.Layout.TrailWords = shrink(1 << 12)
	o.Layout.PDLWords = shrink(1 << 10)
	return o
}

// FuzzFaultTinyLimits feeds random area sizes and budgets through the
// public API for every corpus program: whatever the configuration, the API
// must return (possibly a typed fault error), never panic.
func FuzzFaultTinyLimits(f *testing.F) {
	progs := faultsim.Programs()
	f.Add(int64(1), uint16(64), uint16(64), uint16(64), uint16(64), uint16(16), int64(0))
	f.Add(int64(2), uint16(1), uint16(1), uint16(1), uint16(1), uint16(1), int64(50))
	f.Add(int64(3), uint16(4096), uint16(512), uint16(512), uint16(256), uint16(64), int64(100000))
	compiled := make([]*Program, len(progs))
	for i, p := range progs {
		prog, err := Compile(p.Src)
		if err != nil {
			f.Fatalf("%s: compile: %v", p.Name, err)
		}
		compiled[i] = prog
	}
	f.Fuzz(func(t *testing.T, pick int64, heap, env, cp, trail, pdl uint16, steps int64) {
		prog := compiled[int(uint64(pick)%uint64(len(compiled)))]
		opts := RunOptions{
			MaxSteps:   steps,
			HeapWords:  int64(heap),
			EnvWords:   int64(env),
			CPWords:    int64(cp),
			TrailWords: int64(trail),
			PDLWords:   int64(pdl),
		}
		if _, err := prog.RunWith(opts); err != nil {
			// Must be a classified fault, not an untyped internal error.
			var fp *fault.Fault
			if !errors.As(err, &fp) {
				t.Fatalf("untyped error escaped the fault model: %v", err)
			}
		}
	})
}
