package symbol

// This file collects the package's deprecated entry points. They are all
// thin forwarding wrappers around the current API — Load for compilation,
// RunContext for execution, ScheduleWith for compaction — kept so existing
// callers keep compiling and behaving identically. New code should not use
// anything in this file.

import "context"

// Compile parses and compiles src (which must define main/0) with default
// options.
//
// Deprecated: use Load, the single compile/load entry point. Compile
// remains as a thin wrapper and behaves identically to
// Load(context.Background(), []byte(src)).
func Compile(src string) (*Program, error) {
	return CompileWith(src, DefaultOptions())
}

// CompileWith parses and compiles src with explicit options.
//
// Deprecated: use Load with WithCompileOptions. CompileWith remains as a
// thin wrapper and behaves identically.
func CompileWith(src string, opts Options) (*Program, error) {
	return Load(context.Background(), []byte(src), WithCompileOptions(opts))
}

// CompileQuery compiles a knowledge base together with one goal into a
// runnable Program (see WithGoal for the synthetic main/0 semantics and
// binding write-out).
//
// Deprecated: use Load with WithGoal. CompileQuery remains as a thin
// wrapper and behaves identically.
func CompileQuery(kbSrc, goal string) (*Program, error) {
	return Load(context.Background(), []byte(kbSrc), WithGoal(goal))
}

// Run executes the program sequentially and returns its observable result.
//
// Deprecated: use RunContext, which adds cancellation and functional
// options. Run remains as a thin wrapper and behaves identically.
func (p *Program) Run() (*Result, error) {
	return p.RunWith(RunOptions{})
}

// RunWith executes the program sequentially under explicit resource bounds.
// Resource faults surface as typed errors (errors.Is against ErrHeapOverflow
// and friends) unless the program catches them with catch/3.
//
// Deprecated: use RunContext, which adds cancellation and functional
// options. RunWith remains as a thin wrapper and behaves identically.
func (p *Program) RunWith(opts RunOptions) (*Result, error) {
	return p.RunContext(context.Background(), WithOptions(opts))
}

// Schedule profiles the program (if needed) and compacts it for conf.
//
// Deprecated: use ScheduleWith, which takes functional options instead of a
// bare option struct. Schedule remains and behaves identically.
func (p *Program) Schedule(conf MachineConfig, opts ScheduleOptions) (*Scheduled, error) {
	return p.ScheduleWith(conf, WithScheduleOptions(opts))
}

// WithNoFuse disables superinstruction fusion for the run.
//
// Deprecated: use WithDispatch(DispatchNoFuse).
func WithNoFuse() RunOption { return func(o *RunOptions) { o.NoFuse = true } }
