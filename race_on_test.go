//go:build race

package symbol

// raceEnabled reports whether the race detector is compiled in. Under it,
// sync.Pool intentionally drops items at random to surface races, so
// allocation-count assertions about pooling are not meaningful.
const raceEnabled = true
