package symbol

import "testing"

// The whole pipeline must be deterministic: compiling and scheduling the
// same source twice yields identical code and identical cycle counts
// (important for reproducible experiment tables).
func TestPipelineDeterminism(t *testing.T) {
	src := benchMust(t, "serialise")
	var listings [2]string
	var cycles [2]int64
	for i := 0; i < 2; i++ {
		prog, err := Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		sched, err := prog.Schedule(DefaultMachine(3), ScheduleOptions{})
		if err != nil {
			t.Fatal(err)
		}
		listings[i] = sched.Listing()
		sim, err := sched.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		cycles[i] = sim.Cycles
	}
	if listings[0] != listings[1] {
		t.Error("schedules differ between identical compilations")
	}
	if cycles[0] != cycles[1] {
		t.Errorf("cycle counts differ: %d vs %d", cycles[0], cycles[1])
	}
}

// Scheduling twice from one compiled program must also be stable (the
// profile is cached; compaction must not mutate shared state).
func TestScheduleIsRepeatable(t *testing.T) {
	prog, err := Compile(benchMust(t, "qsort"))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := prog.Schedule(DefaultMachine(2), ScheduleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := prog.Schedule(DefaultMachine(2), ScheduleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Listing() != s2.Listing() {
		t.Error("re-scheduling produced different code")
	}
	r1, err := s1.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s2.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.Output != r2.Output {
		t.Error("simulation not repeatable")
	}
}
