package symbol

import "testing"

func TestMetaCallCompound(t *testing.T) {
	out := run(t, `
p(1). p(2).
double(X, Y) :- Y is 2*X.
main :- G = double(21, R), call(G), write(R), nl.
`)
	if out != "42\n" {
		t.Fatalf("got %q", out)
	}
}

func TestMetaCallAtom(t *testing.T) {
	out := run(t, `
hello :- write(hi), nl.
main :- G = hello, call(G).
`)
	if out != "hi\n" {
		t.Fatalf("got %q", out)
	}
}

func TestMetaCallBacktracks(t *testing.T) {
	out := run(t, `
p(1). p(2). p(3).
main :- call(p(X)), X > 2, write(X), nl.
`)
	if out != "3\n" {
		t.Fatalf("got %q", out)
	}
}

func TestVariableGoal(t *testing.T) {
	out := run(t, `
q(ok).
main :- G = q(V), G, write(V), nl.
`)
	if out != "ok\n" {
		t.Fatalf("got %q", out)
	}
}

func TestMetaCallMaplist(t *testing.T) {
	out := run(t, `
maplist(_, []).
maplist(P, [X|Xs]) :- P =.. L0, app(L0, [X], L1), G =.. L1, call(G), maplist(P, Xs).
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
even(X) :- 0 =:= X mod 2.
main :- maplist(even, [2,4,6]), write(all_even), nl.
`)
	if out != "all_even\n" {
		t.Fatalf("got %q", out)
	}
	expectFail(t, `
maplist(_, []).
maplist(P, [X|Xs]) :- P =.. L0, app(L0, [X], L1), G =.. L1, call(G), maplist(P, Xs).
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
even(X) :- 0 =:= X mod 2.
main :- maplist(even, [2,3,6]).
`)
}

func TestMetaCallUnknownGoalFails(t *testing.T) {
	expectFail(t, `
p(1).
main :- G = nosuch(1), call(G).
`)
	expectFail(t, `main :- X = 42, call(X).`)
}
