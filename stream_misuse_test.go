package symbol

import (
	"context"
	"testing"
	"time"
)

// Misuse tests for the Solutions protocol: every call outside the happy
// Next/Result/Err order must be a defined no-op or a typed error — never a
// panic, and never a double release of the pooled state.

// TestSolutionsAccessorsBeforeNext: Result, Err and More are callable on a
// stream whose first Next has not run. Result is nil (no solution yet), Err
// is nil (nothing terminated the stream), and closing the unstarted stream
// settles the metrics exactly once and recycles the state.
func TestSolutionsAccessorsBeforeNext(t *testing.T) {
	prog, err := CompileQuery(streamKB, "app(X, Y, [1,2,3])")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(prog)
	sols, err := eng.Query(context.Background(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r := sols.Result(); r != nil {
		t.Fatalf("Result before first Next = %+v, want nil", r)
	}
	if err := sols.Err(); err != nil {
		t.Fatalf("Err before first Next = %v, want nil", err)
	}
	if err := sols.Close(); err != nil {
		t.Fatalf("Close of unstarted stream: %v", err)
	}
	m := eng.Metrics()
	if m.InFlight != 0 || m.Started != 1 || m.Succeeded != 0 {
		t.Fatalf("metrics inflight=%d started=%d succeeded=%d after unstarted Close, want 0/1/0",
			m.InFlight, m.Started, m.Succeeded)
	}
	// The recycled state must still serve a full run.
	res, err := eng.Run(context.Background(), RunOptions{})
	if err != nil || !res.Succeeded {
		t.Fatalf("run after unstarted Close: %v, %+v", err, res)
	}
}

// TestSolutionsNextAfterClose: once closed, Next stays false forever,
// Result stays nil, and Err keeps returning the stream's terminal error
// (nil here). Repeated Close calls return the same answer and settle the
// metrics only once.
func TestSolutionsNextAfterClose(t *testing.T) {
	prog, err := CompileQuery(streamKB, "app(X, Y, [1,2,3])")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(prog)
	sols, err := eng.Query(context.Background(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sols.Next() {
		t.Fatalf("first Next: %v", sols.Err())
	}
	if err := sols.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for i := 0; i < 3; i++ {
		if sols.Next() {
			t.Fatalf("Next %d after Close returned true", i)
		}
		if r := sols.Result(); r != nil {
			t.Fatalf("Result after Close = %+v, want nil", r)
		}
		if err := sols.Err(); err != nil {
			t.Fatalf("Err after Close = %v, want nil", err)
		}
		if err := sols.Close(); err != nil {
			t.Fatalf("Close %d: %v", i+2, err)
		}
	}
	m := eng.Metrics()
	if m.Started != 1 || m.Succeeded != 1 || m.InFlight != 0 {
		t.Fatalf("metrics started=%d succeeded=%d inflight=%d after repeated Close, want 1/1/0",
			m.Started, m.Succeeded, m.InFlight)
	}
}

// TestSolutionsDoubleCloseSingleRelease guards the pool against a double
// Put: after hammering Close on one stream, two concurrently drained
// streams must each see a private machine state (distinct, correct
// 4-solution streams; -race would flag a shared state), and the engine
// must settle every run exactly once.
func TestSolutionsDoubleCloseSingleRelease(t *testing.T) {
	prog, err := CompileQuery(streamKB, "app(X, Y, [1,2,3])")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(prog)
	sols, err := eng.Query(context.Background(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sols.Next() {
		t.Fatalf("Next: %v", sols.Err())
	}
	for i := 0; i < 4; i++ {
		if err := sols.Close(); err != nil {
			t.Fatalf("Close %d: %v", i+1, err)
		}
	}
	// If Close had returned the state more than once, the pool could hand
	// the same *ic.State to both of these streams.
	done := make(chan int, 2)
	for g := 0; g < 2; g++ {
		go func() {
			s, err := eng.Query(context.Background(), RunOptions{})
			if err != nil {
				done <- -1
				return
			}
			defer s.Close()
			n := 0
			for s.Next() {
				n++
			}
			if s.Err() != nil {
				n = -1
			}
			done <- n
		}()
	}
	for g := 0; g < 2; g++ {
		if n := <-done; n != 4 {
			t.Fatalf("concurrent stream after double Close got %d solutions, want 4", n)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := eng.WaitIdle(ctx); err != nil {
		t.Fatalf("WaitIdle: %v", err)
	}
	m := eng.Metrics()
	if m.Started != 3 || m.InFlight != 0 {
		t.Fatalf("metrics started=%d inflight=%d, want 3/0", m.Started, m.InFlight)
	}
}

// TestSolutionsErrAfterFaultStable: after a stream dies on a typed fault,
// Err and Close keep returning that same error on every call, and Next
// stays false — the terminal error is sticky, not one-shot.
func TestSolutionsErrAfterFaultStable(t *testing.T) {
	prog, err := CompileQuery(streamKB, "app(X, Y, [1,2,3])")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(prog)
	sols, err := eng.Query(context.Background(), RunOptions{MaxSteps: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sols.Close()
	if sols.Next() {
		t.Fatal("Next succeeded under a 1-step budget")
	}
	first := sols.Err()
	if first == nil {
		t.Fatal("no terminal error under a 1-step budget")
	}
	for i := 0; i < 3; i++ {
		if sols.Next() {
			t.Fatalf("Next %d true after fault", i)
		}
		if err := sols.Err(); err != first {
			t.Fatalf("Err changed across calls: %v then %v", first, err)
		}
		if err := sols.Close(); err != first {
			t.Fatalf("Close returned %v, want the terminal error %v", err, first)
		}
	}
	m := eng.Metrics()
	var faulted int64
	for _, n := range m.Faults {
		faulted += n
	}
	if m.InFlight != 0 || faulted != 1 {
		t.Fatalf("metrics inflight=%d faulted=%d after fault, want 0/1", m.InFlight, faulted)
	}
}
