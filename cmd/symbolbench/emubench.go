package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"symbol"
	"symbol/internal/benchprog"
	"symbol/internal/emu"
	"symbol/internal/exec"
	"symbol/internal/ic"
	"symbol/internal/obs"
)

// The -emubench mode measures sequential emulator throughput in ICI
// steps/second — the architecture-level unit the paper's dynamic statistics
// are expressed in, and the one quantity the predecoded/fused execution
// core is supposed to improve without changing. Each run executes one
// benchmark to completion under an execution mode:
//
//	legacy   — the original reference interpreter (the pre-fusion baseline)
//	nofuse   — the predecoded stream with superinstruction fusion disabled
//	fused    — the predecoded stream with fusion (the default hot path)
//	threaded — the closure-threaded core with operand pre-resolution
//
// Output is benchstat-compatible (one Benchmark line per run, value pairs
// "ns/op" and "steps/s"), and -benchjson captures the same numbers as JSON
// so baselines can be committed and diffed. -smoke exits nonzero if fused
// throughput falls below the unfused stream on the same invocation (fusion
// removes dispatches and can only win, so losing to nofuse means the fused
// loop regressed), or if threaded throughput falls below the configured
// floor multiple of fused (threaded removes the remaining central-switch
// overhead, so it must clear fused by a margin).

// emuModeOpts maps a mode name to the emulator options selecting it.
var emuModeOpts = map[string]emu.Options{
	"legacy":   {Legacy: true},
	"nofuse":   {NoFuse: true},
	"fused":    {},
	"threaded": {Threaded: true},
}

// emuBenchRun is one timed execution.
type emuBenchRun struct {
	Steps       int64   `json:"steps"`
	NS          int64   `json:"ns"`
	StepsPerSec float64 `json:"steps_per_sec"`
}

// emuBenchResult aggregates the runs of one benchmark × mode. The static
// stream sizes are properties of the program, not of the measured mode, so
// every record carries all of them (a record must be self-describing once
// it lands in a committed baseline file).
type emuBenchResult struct {
	Bench    string `json:"bench"`
	Mode     string `json:"mode"`
	PlainOps int    `json:"static_icis"`
	FusedOps int    `json:"static_fused_ops"`
	// ThreadedOps counts the closures of the threaded core — one per fused
	// op, since the threaded stream is built over the fused one.
	ThreadedOps int           `json:"static_threaded_ops"`
	Runs        []emuBenchRun `json:"runs"`
	BestSPS     float64       `json:"best_steps_per_sec"`
	MeanSPS     float64       `json:"mean_steps_per_sec"`
	GoVersion   string        `json:"go,omitempty"`
}

// benchEmuSteps runs the steps-throughput benchmark. modes is a comma list
// or "all"; results are printed benchstat-style and optionally written as
// JSON. With smoke set, the nofuse, fused and threaded modes are always
// measured and the run fails if fused throughput is below nofuse or
// threaded is below threadedFloor times fused. statsPath, when
// non-empty, dumps one execution's full symbol.Stats per mode as JSON.
// comparePath, when non-empty, names a committed baseline JSON (an earlier
// -benchjson file) and the run fails if any measured mode's best steps/s
// falls more than tolerance percent below the baseline's — the CI guard
// that keeps the always-on stats counters within their overhead budget.
func benchEmuSteps(name, modes string, runs int, jsonPath string, smoke bool, threadedFloor float64, statsPath, comparePath string, tolerance float64) error {
	b, err := benchprog.Get(name)
	if err != nil {
		return err
	}
	prog, err := symbol.Compile(b.Source)
	if err != nil {
		return err
	}
	xp := exec.Of(prog.IC())

	want := []string{}
	if smoke {
		want = []string{"nofuse", "fused", "threaded"}
	} else if modes == "all" {
		want = []string{"legacy", "nofuse", "fused", "threaded"}
	} else {
		for _, m := range strings.Split(modes, ",") {
			want = append(want, strings.TrimSpace(m))
		}
	}

	results := make([]emuBenchResult, 0, len(want))
	modeStats := map[string]obs.Stats{}
	for _, mode := range want {
		base, ok := emuModeOpts[mode]
		if !ok {
			return fmt.Errorf("unknown emulation mode %q (legacy, nofuse, fused, threaded)", mode)
		}
		r := emuBenchResult{
			Bench: name, Mode: mode,
			PlainOps: xp.Stats.PlainOps, FusedOps: xp.Stats.FusedOps,
			ThreadedOps: xp.Stats.FusedOps,
		}
		// One machine state is recycled across every execution (exactly what
		// the pooled engine does), so the timings measure interpretation, not
		// the multi-megaword state allocation. Each timed run repeats the
		// query until it has accumulated enough wall time to be stable.
		st := ic.NewState()
		opts := base
		opts.State = st
		for i := 0; i < runs; i++ {
			var steps, iters int64
			start := time.Now()
			for {
				res, err := emu.Run(prog.IC(), opts)
				if err != nil {
					return fmt.Errorf("%s/%s: %w", name, mode, err)
				}
				if res.Status != 0 || res.Output != b.Expect {
					return fmt.Errorf("%s/%s: wrong answer (status=%d output=%q)", name, mode, res.Status, res.Output)
				}
				st.Reset()
				modeStats[mode] = res.Stats
				steps += res.Steps
				iters++
				if time.Since(start) >= 100*time.Millisecond {
					break
				}
			}
			ns := time.Since(start).Nanoseconds()
			sps := float64(steps) / (float64(ns) / 1e9)
			r.Runs = append(r.Runs, emuBenchRun{Steps: steps, NS: ns, StepsPerSec: sps})
			r.MeanSPS += sps
			if sps > r.BestSPS {
				r.BestSPS = sps
			}
			fmt.Printf("BenchmarkEmuSteps/%s/%s \t%8d\t%12d ns/op\t%14.0f steps/s\n",
				name, mode, iters, ns/iters, sps)
		}
		r.MeanSPS /= float64(len(r.Runs))
		results = append(results, r)
	}

	for _, r := range results {
		fmt.Printf("# %s/%s: best %.2f Msteps/s, mean %.2f Msteps/s over %d runs (%d static ICIs, %d fused ops)\n",
			r.Bench, r.Mode, r.BestSPS/1e6, r.MeanSPS/1e6, len(r.Runs), r.PlainOps, r.FusedOps)
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("# wrote %s\n", jsonPath)
	}

	if statsPath != "" {
		data, err := json.MarshalIndent(modeStats, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(statsPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("# wrote %s\n", statsPath)
	}

	if comparePath != "" {
		if err := compareBaseline(results, comparePath, tolerance); err != nil {
			return err
		}
	}

	if smoke {
		best := map[string]float64{}
		for _, r := range results {
			best[r.Mode] = r.BestSPS
		}
		if best["fused"] < best["nofuse"] {
			return fmt.Errorf("smoke: fused %.2f Msteps/s < nofuse %.2f Msteps/s — fusion regressed",
				best["fused"]/1e6, best["nofuse"]/1e6)
		}
		fmt.Printf("# smoke ok: fused %.2f Msteps/s >= nofuse %.2f Msteps/s\n",
			best["fused"]/1e6, best["nofuse"]/1e6)
		if floor := best["fused"] * threadedFloor; best["threaded"] < floor {
			return fmt.Errorf("smoke: threaded %.2f Msteps/s < %.2fx fused (%.2f Msteps/s) — threaded dispatch regressed",
				best["threaded"]/1e6, threadedFloor, floor/1e6)
		}
		fmt.Printf("# smoke ok: threaded %.2f Msteps/s >= %.2fx fused %.2f Msteps/s\n",
			best["threaded"]/1e6, threadedFloor, best["fused"]/1e6)
	}
	return nil
}

// compareBaseline checks every measured mode against a committed -benchjson
// baseline, failing if best steps/s dropped more than tolerance percent.
// Modes absent from the baseline are reported but not failed, so a new mode
// can land before its baseline is regenerated.
func compareBaseline(results []emuBenchResult, path string, tolerance float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var baseline []emuBenchResult
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	base := map[string]float64{}
	for _, r := range baseline {
		base[r.Bench+"/"+r.Mode] = r.BestSPS
	}
	for _, r := range results {
		key := r.Bench + "/" + r.Mode
		want, ok := base[key]
		if !ok {
			fmt.Printf("# compare: %s not in %s, skipping\n", key, path)
			continue
		}
		floor := want * (1 - tolerance/100)
		if r.BestSPS < floor {
			return fmt.Errorf("compare: %s best %.2f Msteps/s is more than %.1f%% below baseline %.2f Msteps/s (%s)",
				key, r.BestSPS/1e6, tolerance, want/1e6, path)
		}
		fmt.Printf("# compare ok: %s best %.2f Msteps/s vs baseline %.2f Msteps/s (floor %.2f at -tolerance %.1f)\n",
			key, r.BestSPS/1e6, want/1e6, floor/1e6, tolerance)
	}
	return nil
}

// withProfiles wraps fn with optional CPU and allocation profiling.
func withProfiles(cpuPath, memPath string, fn func() error) error {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	err := fn()
	if memPath != "" {
		f, merr := os.Create(memPath)
		if merr != nil {
			if err == nil {
				err = merr
			}
			return err
		}
		defer f.Close()
		if merr := pprof.Lookup("allocs").WriteTo(f, 0); merr != nil && err == nil {
			err = merr
		}
	}
	return err
}
