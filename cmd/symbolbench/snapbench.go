package main

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"symbol"
	"symbol/internal/benchprog"
	"symbol/internal/exec"
)

// The -snapbench mode quantifies what the binary snapshot format buys: how
// much bigger a snapshot is than the source it replaces (raw and gzipped,
// with a per-section breakdown), and how much faster a cold start gets when
// the compiler pipeline is replaced by a single validated read. The numbers
// land in a committed JSON baseline (BENCH_snapshot.json) that CI gates on:
// the median cold-start speedup across the corpus must clear an absolute
// floor, and no benchmark's speedup may fall more than a tolerance below
// the committed baseline.

// snapSection is one section's size inside a snapshot container.
type snapSection struct {
	Name  string `json:"name"`
	Bytes int    `json:"bytes"`
}

// snapBenchResult is the committed record for one benchmark.
type snapBenchResult struct {
	Bench         string        `json:"bench"`
	SourceBytes   int           `json:"source_bytes"`
	SourceGzBytes int           `json:"source_gz_bytes"`
	SnapBytes     int           `json:"snapshot_bytes"`
	SnapGzBytes   int           `json:"snapshot_gz_bytes"`
	Sections      []snapSection `json:"sections"`
	CompileMS     float64       `json:"compile_ms"` // median of timed compiles
	LoadMS        float64       `json:"load_ms"`    // median of timed snapshot loads
	Speedup       float64       `json:"speedup"`    // CompileMS / LoadMS
}

// snapBenchFile is the JSON layout of BENCH_snapshot.json.
type snapBenchFile struct {
	GoVersion     string            `json:"go"`
	MedianSpeedup float64           `json:"median_speedup"`
	Results       []snapBenchResult `json:"results"`
}

// gzBytes returns the gzip-compressed size of b at the default level.
func gzBytes(b []byte) int {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(b) //nolint:errcheck // bytes.Buffer cannot fail
	zw.Close()  //nolint:errcheck
	return buf.Len()
}

// medianOf returns the median of a non-empty sample (averaging the middle
// pair for even sizes).
func medianOf(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// timedMS runs f reps times and returns the per-run medians in
// milliseconds. The first (warm-up) run is measured like the rest: both the
// compile and the load path are cold-start costs, so excluding warm-up
// would flatter neither side consistently.
func timedMS(reps int, f func() error) ([]float64, error) {
	out := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return nil, err
		}
		out = append(out, float64(time.Since(start))/float64(time.Millisecond))
	}
	return out, nil
}

// benchSnapshots measures every corpus benchmark and writes jsonPath when
// non-empty. comparePath names a committed baseline: the run fails if any
// benchmark's speedup falls more than tolerance percent below its baseline
// figure. speedupFloor is the absolute gate on the median speedup.
func benchSnapshots(reps int, jsonPath, comparePath string, tolerance, speedupFloor float64) error {
	ctx := context.Background()
	file := snapBenchFile{GoVersion: runtime.Version()}
	var speedups []float64

	for _, b := range benchprog.All() {
		src := []byte(b.Source)
		prog, err := symbol.Load(ctx, src)
		if err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}
		snap := prog.Snapshot()
		info, err := symbol.SnapshotInfo(snap)
		if err != nil {
			return fmt.Errorf("%s: inspecting snapshot: %w", b.Name, err)
		}

		// Both paths are timed to the same finish line: an executable
		// predecoded stream. The compile path builds it lazily on first
		// run, so exec.Of is forced here; the snapshot path decodes it as
		// part of the load.
		compiles, err := timedMS(reps, func() error {
			p, err := symbol.Load(ctx, src)
			if err == nil {
				exec.Of(p.IC())
			}
			return err
		})
		if err != nil {
			return fmt.Errorf("%s: timing compile: %w", b.Name, err)
		}
		loads, err := timedMS(reps, func() error {
			p, err := symbol.Load(ctx, snap)
			if err == nil {
				exec.Of(p.IC())
			}
			return err
		})
		if err != nil {
			return fmt.Errorf("%s: timing load: %w", b.Name, err)
		}

		r := snapBenchResult{
			Bench:         b.Name,
			SourceBytes:   len(src),
			SourceGzBytes: gzBytes(src),
			SnapBytes:     len(snap),
			SnapGzBytes:   gzBytes(snap),
			CompileMS:     medianOf(compiles),
			LoadMS:        medianOf(loads),
		}
		for _, s := range info.Sections {
			r.Sections = append(r.Sections, snapSection{Name: s.Name, Bytes: s.Bytes})
		}
		r.Speedup = r.CompileMS / r.LoadMS
		speedups = append(speedups, r.Speedup)
		file.Results = append(file.Results, r)

		fmt.Printf("%-16s src %6d B (%5d gz)  snap %6d B (%5d gz)  compile %8.3f ms  load %8.3f ms  speedup %6.1fx\n",
			b.Name, r.SourceBytes, r.SourceGzBytes, r.SnapBytes, r.SnapGzBytes, r.CompileMS, r.LoadMS, r.Speedup)
		for _, s := range r.Sections {
			fmt.Printf("    %-8s %7d bytes\n", s.Name, s.Bytes)
		}
	}
	file.MedianSpeedup = medianOf(speedups)
	fmt.Printf("median cold-start speedup: %.1fx over %d benchmarks\n", file.MedianSpeedup, len(file.Results))

	if jsonPath != "" {
		data, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}

	if speedupFloor > 0 && file.MedianSpeedup < speedupFloor {
		return fmt.Errorf("median cold-start speedup %.1fx is below the %.1fx floor", file.MedianSpeedup, speedupFloor)
	}
	if comparePath != "" {
		if err := compareSnapBaseline(file, comparePath, tolerance); err != nil {
			return err
		}
	}
	return nil
}

// compareSnapBaseline fails if any measured speedup fell more than
// tolerance percent below the committed baseline's figure for the same
// benchmark. Benchmarks present on only one side are reported but not
// fatal, so the corpus can grow without invalidating the baseline.
func compareSnapBaseline(got snapBenchFile, path string, tolerance float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base snapBenchFile
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	baseBy := map[string]snapBenchResult{}
	for _, r := range base.Results {
		baseBy[r.Bench] = r
	}
	var failures []string
	for _, r := range got.Results {
		b, ok := baseBy[r.Bench]
		if !ok {
			fmt.Printf("note: %s not in baseline %s\n", r.Bench, path)
			continue
		}
		floor := b.Speedup * (1 - tolerance/100)
		if r.Speedup < floor {
			failures = append(failures,
				fmt.Sprintf("%s: speedup %.1fx is %.1f%% below baseline %.1fx (floor %.1fx)",
					r.Bench, r.Speedup, (1-r.Speedup/b.Speedup)*100, b.Speedup, floor))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "snapbench:", f)
		}
		return fmt.Errorf("%d benchmark(s) regressed vs %s beyond %.0f%% tolerance", len(failures), path, tolerance)
	}
	fmt.Printf("all %d benchmarks within %.0f%% of %s\n", len(got.Results), tolerance, path)
	return nil
}
