// Command symbolbench regenerates the paper's tables and figures from live
// runs of the reproduction pipeline, and benchmarks the concurrent query
// engine against the allocate-per-run baseline.
//
// Usage:
//
//	symbolbench                 # everything
//	symbolbench -exp table3     # one experiment
//	symbolbench -exp fig2,fig3  # a comma-separated subset
//	symbolbench -parallel 4     # pooled-engine throughput vs baseline
//	symbolbench -parallel 4 -bench queens_8 -runs 64
//	symbolbench -emubench       # emulator steps/sec: legacy vs nofuse vs fused vs threaded
//	symbolbench -emubench -dispatch legacy -benchjson BENCH_baseline.json
//	symbolbench -emubench -statsjson stats.json   # per-mode execution stats
//	symbolbench -emubench -dispatch fused -compare BENCH_fused.json -tolerance 5
//	symbolbench -smoke          # fail if fused lost to nofuse or threaded missed its floor over fused
//	symbolbench -emubench -cpuprofile cpu.out -memprofile mem.out
//
// Experiments: fig2, fig3, table1, table2 (includes fig4), table3
// (includes fig6), table4, table5.
//
// With -parallel N the command switches to engine-benchmark mode: it
// compiles one benchmark program (-bench, default queens_8), runs it -runs
// times serially with a fresh machine per query (today's Program.Run
// path), then -runs times through a shared symbol.Engine driven by N
// workers recycling pooled machine state, and reports queries/sec and
// allocs/query for both paths.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"symbol"
	"symbol/internal/benchprog"
	"symbol/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiments to run (comma separated): fig2,fig3,table1,table2,fig4,table3,fig6,table4,table5,all")
	parallel := flag.Int("parallel", 0, "engine-benchmark mode: drive a pooled symbol.Engine with this many workers (0 = run the paper experiments)")
	benchName := flag.String("bench", "queens_8", "benchmark program for -parallel and -emubench modes")
	runs := flag.Int("runs", 32, "queries per path in -parallel mode")
	emubench := flag.Bool("emubench", false, "emulator-throughput mode: measure ICI steps/sec on -bench under -dispatch")
	dispatch := flag.String("dispatch", "", "execution modes for -emubench (comma separated): legacy, nofuse, fused, threaded, all")
	emumode := flag.String("emumode", "", "deprecated alias for -dispatch")
	emuruns := flag.Int("emuruns", 5, "timed runs per mode in -emubench mode")
	benchJSON := flag.String("benchjson", "", "write -emubench results as JSON to this file")
	statsJSON := flag.String("statsjson", "", "with -emubench: write one execution's full Stats per mode as JSON to this file")
	compare := flag.String("compare", "", "with -emubench: committed -benchjson baseline; fail if best steps/s drops below it by more than -tolerance")
	tolerance := flag.Float64("tolerance", 5, "allowed throughput drop vs -compare baseline, in percent")
	smoke := flag.Bool("smoke", false, "with -emubench: measure nofuse, fused and threaded; fail if fusion lost throughput or threaded missed -threadedfloor")
	snapbench := flag.Bool("snapbench", false, "snapshot mode: measure snapshot sizes and cold-start load vs compile across the corpus")
	snapReps := flag.Int("snapreps", 9, "timed repetitions per path in -snapbench mode")
	speedupFloor := flag.Float64("speedupfloor", 0, "with -snapbench: minimum median cold-start speedup (0 disables the gate)")
	threadedFloor := flag.Float64("threadedfloor", 1.15, "with -smoke: minimum threaded/fused steps/s ratio")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile at exit to this file")
	flag.Parse()

	// -emumode is the pre-consolidation spelling of -dispatch; honour it as
	// an alias but refuse contradictory values.
	modes := *dispatch
	if *emumode != "" {
		if modes != "" && modes != *emumode {
			fmt.Fprintf(os.Stderr, "symbolbench: conflicting flags: -emumode %s with -dispatch %s (drop the deprecated -emumode)\n", *emumode, modes)
			os.Exit(1)
		}
		modes = *emumode
	}
	if modes == "" {
		modes = "all"
	}

	if *snapbench {
		if err := benchSnapshots(*snapReps, *benchJSON, *compare, *tolerance, *speedupFloor); err != nil {
			fmt.Fprintln(os.Stderr, "symbolbench:", err)
			os.Exit(1)
		}
		return
	}

	if *emubench || *smoke {
		err := withProfiles(*cpuprofile, *memprofile, func() error {
			return benchEmuSteps(*benchName, modes, *emuruns, *benchJSON, *smoke, *threadedFloor, *statsJSON, *compare, *tolerance)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "symbolbench:", err)
			os.Exit(1)
		}
		return
	}

	if *parallel > 0 {
		err := withProfiles(*cpuprofile, *memprofile, func() error {
			return benchEngine(*benchName, *parallel, *runs)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "symbolbench:", err)
			os.Exit(1)
		}
		return
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	sel := func(names ...string) bool {
		if all {
			return true
		}
		for _, n := range names {
			if want[n] {
				return true
			}
		}
		return false
	}

	r := experiments.NewRunner()
	suite := experiments.SuiteNames()
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "symbolbench:", err)
		os.Exit(1)
	}

	if sel("fig2") {
		f2, err := r.Figure2Mix(experiments.Table2Names())
		if err != nil {
			die(err)
		}
		fmt.Println(f2.Render())
	}
	if sel("fig3") {
		f3, err := r.Figure3Amdahl(experiments.Table2Names())
		if err != nil {
			die(err)
		}
		fmt.Println(f3.Render())
	}
	if sel("table1") {
		t1, err := r.Table1Compaction(suite)
		if err != nil {
			die(err)
		}
		fmt.Println(t1.Render())
	}
	if sel("table2", "fig4") {
		t2, err := r.Table2Branches(experiments.Table2Names())
		if err != nil {
			die(err)
		}
		fmt.Println(t2.Render())
	}
	if sel("table3", "fig6") {
		t3, err := r.Table3Sweep(suite, []int{1, 2, 3, 4, 5})
		if err != nil {
			die(err)
		}
		fmt.Println(t3.Render())
		fmt.Println(t3.RenderFigure6())
	}
	if sel("table4") {
		t4, err := r.Table4Absolute(suite)
		if err != nil {
			die(err)
		}
		fmt.Println(t4.Render())
	}
	if sel("table5") {
		t5, err := r.Table5Relative(suite)
		if err != nil {
			die(err)
		}
		fmt.Println(t5.Render())
	}
}

// measure runs fn, returning wall time and the per-process malloc count
// and allocated bytes it incurred. The deltas are process-global, which is
// exactly the quantity that matters for GC pressure under concurrent load.
func measure(fn func() error) (time.Duration, uint64, uint64, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := fn()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return elapsed, after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc, err
}

// benchEngine compares the allocate-per-run baseline with the pooled
// concurrent engine on one benchmark program.
func benchEngine(name string, workers, runs int) error {
	b, err := benchprog.Get(name)
	if err != nil {
		return err
	}
	prog, err := symbol.Compile(b.Source)
	if err != nil {
		return err
	}
	check := func(res *symbol.Result, err error) error {
		if err != nil {
			return err
		}
		if !res.Succeeded || res.Output != b.Expect {
			return fmt.Errorf("%s: wrong answer (ok=%v output=%q)", name, res.Succeeded, res.Output)
		}
		return nil
	}

	// Warm-up: page in the code path and validate the answer once per path.
	if err := check(prog.Run()); err != nil {
		return err
	}
	eng := symbol.NewEngine(prog)
	ctx := context.Background()
	if err := check(eng.Run(ctx, symbol.RunOptions{})); err != nil {
		return err
	}

	// Baseline: today's serial allocate-per-run path.
	baseT, baseAllocs, baseBytes, err := measure(func() error {
		for i := 0; i < runs; i++ {
			if err := check(prog.Run()); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Pooled engine driven by `workers` goroutines sharing the state pool.
	poolT, poolAllocs, poolBytes, err := measure(func() error {
		var next atomic.Int64
		var firstErr atomic.Value
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for int(next.Add(1)) <= runs {
					if err := check(eng.Run(ctx, symbol.RunOptions{})); err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
				}
			}()
		}
		wg.Wait()
		if err, ok := firstErr.Load().(error); ok {
			return err
		}
		return nil
	})
	if err != nil {
		return err
	}

	qps := func(d time.Duration) float64 { return float64(runs) / d.Seconds() }
	baseQPS, poolQPS := qps(baseT), qps(poolT)
	n := uint64(runs)
	fmt.Printf("engine benchmark: %s, %d queries\n", name, runs)
	fmt.Printf("  serial baseline (fresh state/run): %8.2f queries/s  %6d allocs/query  %11d bytes/query\n",
		baseQPS, baseAllocs/n, baseBytes/n)
	fmt.Printf("  pooled engine   (%2d workers):      %8.2f queries/s  %6d allocs/query  %11d bytes/query\n",
		workers, poolQPS, poolAllocs/n, poolBytes/n)
	fmt.Printf("  speedup: %.2fx queries/s, %.1fx fewer allocs/query, %.1fx fewer bytes/query\n",
		poolQPS/baseQPS,
		float64(baseAllocs)/float64(max(poolAllocs, 1)),
		float64(baseBytes)/float64(max(poolBytes, 1)))
	m := eng.Metrics()
	fmt.Printf("  engine metrics: %d started, %d succeeded, pool %d gets / %d misses, %d pages reset, %d Msteps total\n",
		m.Started, m.Succeeded, m.PoolGets, m.PoolMisses, m.DirtyPagesReset, m.Totals.Steps/1e6)
	return nil
}
