// Command symbolbench regenerates the paper's tables and figures from live
// runs of the reproduction pipeline.
//
// Usage:
//
//	symbolbench                 # everything
//	symbolbench -exp table3     # one experiment
//	symbolbench -exp fig2,fig3  # a comma-separated subset
//
// Experiments: fig2, fig3, table1, table2 (includes fig4), table3
// (includes fig6), table4, table5.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"symbol/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiments to run (comma separated): fig2,fig3,table1,table2,fig4,table3,fig6,table4,table5,all")
	flag.Parse()

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	sel := func(names ...string) bool {
		if all {
			return true
		}
		for _, n := range names {
			if want[n] {
				return true
			}
		}
		return false
	}

	r := experiments.NewRunner()
	suite := experiments.SuiteNames()
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "symbolbench:", err)
		os.Exit(1)
	}

	if sel("fig2") {
		f2, err := r.Figure2Mix(experiments.Table2Names())
		if err != nil {
			die(err)
		}
		fmt.Println(f2.Render())
	}
	if sel("fig3") {
		f3, err := r.Figure3Amdahl(experiments.Table2Names())
		if err != nil {
			die(err)
		}
		fmt.Println(f3.Render())
	}
	if sel("table1") {
		t1, err := r.Table1Compaction(suite)
		if err != nil {
			die(err)
		}
		fmt.Println(t1.Render())
	}
	if sel("table2", "fig4") {
		t2, err := r.Table2Branches(experiments.Table2Names())
		if err != nil {
			die(err)
		}
		fmt.Println(t2.Render())
	}
	if sel("table3", "fig6") {
		t3, err := r.Table3Sweep(suite, []int{1, 2, 3, 4, 5})
		if err != nil {
			die(err)
		}
		fmt.Println(t3.Render())
		fmt.Println(t3.RenderFigure6())
	}
	if sel("table4") {
		t4, err := r.Table4Absolute(suite)
		if err != nil {
			die(err)
		}
		fmt.Println(t4.Render())
	}
	if sel("table5") {
		t5, err := r.Table5Relative(suite)
		if err != nil {
			die(err)
		}
		fmt.Println(t5.Render())
	}
}
