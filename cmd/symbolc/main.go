// Command symbolc is the SYMBOL compiler driver: it compiles a Prolog
// source file (which must define main/0), prints the requested
// intermediate representations, and can emit a versioned binary snapshot
// for instant loading by symbol.Load / symbolserve.
//
// Usage:
//
//	symbolc [-bam] [-ic] [-vliw] [-units n] [-bb] [-o prog.sym] [-profile] file.pl
//
// With -vliw the program is profiled (one sequential run) and compacted for
// an n-unit machine before listing. With -o the compiled program (ICI code,
// atom table, predecoded execution streams, embedded source) is written as
// a snapshot; add -profile to run the profiler once and embed the execution
// profile so scheduling consumers skip the profiling run too.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"symbol"
)

func main() {
	bam := flag.Bool("bam", false, "print the BAM code produced by the front end")
	icl := flag.Bool("ic", false, "print the Intermediate Code")
	vl := flag.Bool("vliw", false, "profile, compact and print the VLIW schedule")
	units := flag.Int("units", 3, "number of units for -vliw")
	bb := flag.Bool("bb", false, "basic-block compaction only (with -vliw)")
	out := flag.String("o", "", "write a binary snapshot to `file` (conventionally .sym)")
	prof := flag.Bool("profile", false, "embed the execution profile in the -o snapshot (runs the program once)")
	flag.Usage = func() {
		fmt.Fprintln(flag.CommandLine.Output(),
			"usage: symbolc [-bam] [-ic] [-vliw] [-units n] [-bb] [-o prog.sym] [-profile] file.pl")
		flag.PrintDefaults()
	}
	flag.Parse()

	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "symbolc:", err)
		os.Exit(1)
	}
	prog, err := symbol.Load(context.Background(), src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "symbolc:", err)
		os.Exit(1)
	}
	if u := prog.Undefined(); len(u) > 0 {
		fmt.Fprintf(os.Stderr, "symbolc: warning: undefined predicates: %v\n", u)
	}
	if *out != "" {
		if *prof {
			if _, err := prog.Profile(); err != nil {
				fmt.Fprintln(os.Stderr, "symbolc: profile:", err)
				os.Exit(1)
			}
		}
		data := prog.Snapshot()
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "symbolc:", err)
			os.Exit(1)
		}
		info, err := symbol.SnapshotInfo(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "symbolc:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d bytes (format v%d)\n", *out, len(data), info.Version)
		for _, s := range info.Sections {
			fmt.Printf("  %-8s %7d bytes\n", s.Name, s.Bytes)
		}
		if !*bam && !*icl && !*vl {
			return
		}
	}
	if !*bam && !*icl && !*vl {
		*icl = true
	}
	if *bam {
		fmt.Println("; BAM code")
		fmt.Println(prog.BAMListing())
	}
	if *icl {
		fmt.Printf("; Intermediate Code (%d ICIs)\n", prog.CodeSize())
		fmt.Println(prog.ICListing())
	}
	if *vl {
		sched, err := prog.ScheduleWith(symbol.DefaultMachine(*units),
			symbol.WithScheduleOptions(symbol.ScheduleOptions{BasicBlocksOnly: *bb}))
		if err != nil {
			fmt.Fprintln(os.Stderr, "symbolc:", err)
			os.Exit(1)
		}
		fmt.Printf("; VLIW schedule: %d words, %d ops, avg compaction unit %.2f ops\n",
			sched.Words(), sched.Ops(), sched.AvgTraceLen())
		fmt.Println(sched.Listing())
	}
}
