// Command symbolc is the SYMBOL compiler driver: it compiles a Prolog
// source file (which must define main/0) and prints the requested
// intermediate representations.
//
// Usage:
//
//	symbolc [-bam] [-ic] [-vliw] [-units n] file.pl
//
// With -vliw the program is profiled (one sequential run) and compacted for
// an n-unit machine before listing.
package main

import (
	"flag"
	"fmt"
	"os"

	"symbol"
)

func main() {
	bam := flag.Bool("bam", false, "print the BAM code produced by the front end")
	icl := flag.Bool("ic", false, "print the Intermediate Code")
	vl := flag.Bool("vliw", false, "profile, compact and print the VLIW schedule")
	units := flag.Int("units", 3, "number of units for -vliw")
	bb := flag.Bool("bb", false, "basic-block compaction only (with -vliw)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: symbolc [-bam] [-ic] [-vliw] [-units n] file.pl")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "symbolc:", err)
		os.Exit(1)
	}
	prog, err := symbol.Compile(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "symbolc:", err)
		os.Exit(1)
	}
	if u := prog.Undefined(); len(u) > 0 {
		fmt.Fprintf(os.Stderr, "symbolc: warning: undefined predicates: %v\n", u)
	}
	if !*bam && !*icl && !*vl {
		*icl = true
	}
	if *bam {
		fmt.Println("; BAM code")
		fmt.Println(prog.BAMListing())
	}
	if *icl {
		fmt.Printf("; Intermediate Code (%d ICIs)\n", prog.CodeSize())
		fmt.Println(prog.ICListing())
	}
	if *vl {
		sched, err := prog.Schedule(symbol.DefaultMachine(*units),
			symbol.ScheduleOptions{BasicBlocksOnly: *bb})
		if err != nil {
			fmt.Fprintln(os.Stderr, "symbolc:", err)
			os.Exit(1)
		}
		fmt.Printf("; VLIW schedule: %d words, %d ops, avg compaction unit %.2f ops\n",
			sched.Words(), sched.Ops(), sched.AvgTraceLen())
		fmt.Println(sched.Listing())
	}
}
