// Command symbolsim runs a Prolog program (a file, or a named benchmark
// from the embedded Aquarius-style suite) through the whole SYMBOL
// pipeline: sequential emulation, profile-guided trace compaction, and
// cycle-level VLIW simulation at several machine widths.
//
// Usage:
//
//	symbolsim file.pl
//	symbolsim -bench qsort
//	symbolsim -bench qsort -units 1,2,3,4,5
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"symbol"
	"symbol/internal/benchprog"
)

func main() {
	bench := flag.String("bench", "", "run a named embedded benchmark instead of a file")
	list := flag.Bool("list", false, "list embedded benchmarks")
	unitsFlag := flag.String("units", "1,2,3,5", "comma-separated unit counts to simulate")
	maxSteps := flag.Int64("maxsteps", 0, "resource budget: sequential ICI steps and VLIW cycles (0 = default limits)")
	timeout := flag.Duration("timeout", 0, "abort each run after this wall-clock duration (0 = none)")
	flag.Parse()

	runOpts := func() symbol.RunOptions {
		o := symbol.RunOptions{MaxSteps: *maxSteps, MaxCycles: *maxSteps}
		if *timeout > 0 {
			o.Deadline = time.Now().Add(*timeout)
		}
		return o
	}

	if *list {
		for _, n := range benchprog.Names() {
			fmt.Println(n)
		}
		return
	}

	var src, name string
	switch {
	case *bench != "":
		b, err := benchprog.Get(*bench)
		if err != nil {
			fmt.Fprintln(os.Stderr, "symbolsim:", err)
			os.Exit(1)
		}
		src, name = b.Source, b.Name
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "symbolsim:", err)
			os.Exit(1)
		}
		src, name = string(data), flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "usage: symbolsim [-units 1,2,3] (file.pl | -bench name | -list)")
		os.Exit(2)
	}

	var units []int
	for _, s := range strings.Split(*unitsFlag, ",") {
		u, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || u < 1 {
			fmt.Fprintf(os.Stderr, "symbolsim: bad unit count %q\n", s)
			os.Exit(2)
		}
		units = append(units, u)
	}

	prog, err := symbol.Compile(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "symbolsim:", err)
		os.Exit(1)
	}
	res, err := prog.RunWith(runOpts())
	if err != nil {
		fmt.Fprintln(os.Stderr, "symbolsim:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: sequential run: success=%v, %d ICIs executed\n", name, res.Succeeded, res.Steps)
	if res.Output != "" {
		fmt.Printf("output:\n%s", res.Output)
	}
	seq, err := prog.SeqCycles()
	if err != nil {
		fmt.Fprintln(os.Stderr, "symbolsim:", err)
		os.Exit(1)
	}
	fmt.Printf("\n%-14s %12s %10s %10s\n", "machine", "cycles", "speedup", "bubbles")
	fmt.Printf("%-14s %12d %10s %10s\n", "sequential", seq, "1.00", "-")

	show := func(label string, conf symbol.MachineConfig, opts symbol.ScheduleOptions) {
		sched, err := prog.Schedule(conf, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "symbolsim:", err)
			os.Exit(1)
		}
		sim, err := sched.SimulateWith(runOpts())
		if err != nil {
			fmt.Fprintln(os.Stderr, "symbolsim:", err)
			os.Exit(1)
		}
		if sim.Output != res.Output || sim.Succeeded != res.Succeeded {
			fmt.Fprintf(os.Stderr, "symbolsim: %s: VLIW run diverged from sequential!\n", label)
			os.Exit(1)
		}
		fmt.Printf("%-14s %12d %10.2f %10d\n", label, sim.Cycles,
			symbol.Speedup(seq, sim.Cycles), sim.Bubble)
	}
	show("BAM-like", symbol.BAMMachine(), symbol.ScheduleOptions{BasicBlocksOnly: true})
	for _, u := range units {
		show(fmt.Sprintf("%d-unit VLIW", u), symbol.DefaultMachine(u), symbol.ScheduleOptions{})
	}
}
