// Command prolog is an interactive top level for the SYMBOL system: it
// consults a program file and answers queries by compiling each query
// together with the program and running it on the IntCode emulator.
//
// Usage:
//
//	prolog program.pl            # interactive: type queries, 'halt.' quits
//	prolog -q 'app(X,Y,[1,2]).' program.pl
//	prolog -all -q 'app(X,Y,[1,2]).' program.pl
//
// Queries may be written with or without the '?-' prefix. The first
// solution is printed by default; -all prints every solution via a
// failure-driven loop inside the program; -solutions N streams up to N
// solutions (N < 0 for all) by suspending the machine at each one and
// resuming it on demand — no failure-driven loop, so the machine stops
// as soon as enough solutions are printed.
//
// -dispatch selects the execution core (legacy interpreter, plain
// predecoded stream, fused superinstruction stream, or the
// closure-threaded core); all four produce identical answers, steps, and
// faults. The old -nofuse boolean remains as a deprecated alias for
// -dispatch nofuse and may not contradict an explicit -dispatch.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"symbol"
	"symbol/internal/compile"
	"symbol/internal/emu"
	"symbol/internal/expand"
	"symbol/internal/ic"
	"symbol/internal/obs"
	"symbol/internal/parse"
	"symbol/internal/rename"
	"symbol/internal/term"
)

var (
	maxSteps = flag.Int64("maxsteps", 0, "abort a query after this many ICI steps (0 = default limit)")
	timeout  = flag.Duration("timeout", 0, "abort a query after this wall-clock duration (0 = none)")
	dispatch = flag.String("dispatch", "", "execution core: legacy, nofuse, fused or threaded (default fused)")
	noFuse   = flag.Bool("nofuse", false, "deprecated alias for -dispatch nofuse")
	stats    = flag.Bool("stats", false, "print per-query execution stats (op-class mix, memory high-water marks)")
	events   = flag.Int("events", 0, "trace the query's last N executor milestone events to stderr")
	nsol     = flag.Int("solutions", 0, "stream up to N solutions via suspend/resume (negative = all, 0 = off)")

	// Resolved from -dispatch/-nofuse once at startup.
	runLegacy, runNoFuse, runThreaded bool
)

// resolveDispatch maps the -dispatch enum and the deprecated -nofuse alias
// to the emulator's mode booleans, rejecting contradictory spellings the
// same way symbol.RunOptions.Validate does.
func resolveDispatch() error {
	d, err := symbol.ParseDispatch(*dispatch)
	if err != nil {
		return err
	}
	if *noFuse {
		if d != symbol.DispatchAuto && d != symbol.DispatchNoFuse {
			return fmt.Errorf("conflicting flags: -nofuse with -dispatch %s (drop the deprecated -nofuse)", d)
		}
		d = symbol.DispatchNoFuse
	}
	switch d {
	case symbol.DispatchLegacy:
		runLegacy = true
	case symbol.DispatchNoFuse:
		runNoFuse = true
	case symbol.DispatchThreaded:
		runThreaded = true
	}
	return nil
}

func main() {
	query := flag.String("q", "", "run one query and exit")
	all := flag.Bool("all", false, "print all solutions instead of the first")
	flag.Parse()
	if err := resolveDispatch(); err != nil {
		fmt.Fprintln(os.Stderr, "prolog:", err)
		os.Exit(1)
	}

	var program []term.Term
	for _, f := range flag.Args() {
		data, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "prolog:", err)
			os.Exit(1)
		}
		clauses, err := parse.All(string(data))
		if err != nil {
			fmt.Fprintf(os.Stderr, "prolog: %s: %v\n", f, err)
			os.Exit(1)
		}
		program = append(program, clauses...)
	}

	if *query != "" {
		if err := ask(program, *query, *all); err != nil {
			fmt.Fprintln(os.Stderr, "prolog:", err)
			os.Exit(1)
		}
		return
	}

	sc := bufio.NewScanner(os.Stdin)
	fmt.Println("SYMBOL Prolog — type queries ending in '.', 'halt.' to quit")
	for {
		fmt.Print("?- ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "halt." || line == "halt" {
			return
		}
		if err := ask(program, line, *all); err != nil {
			fmt.Println("error:", err)
		}
	}
}

// ask compiles program + query into a synthetic main/0 that prints the
// query variables' bindings, and runs it.
func ask(program []term.Term, query string, all bool) error {
	query = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(query), "?-"))
	if !strings.HasSuffix(query, ".") {
		query += "."
	}
	goals, err := parse.All(query)
	if err != nil {
		return err
	}
	if len(goals) != 1 {
		return fmt.Errorf("expected exactly one query")
	}
	goal := goals[0]

	// Named query variables, in first-occurrence order.
	var named []*term.Var
	for _, v := range term.Vars(goal, nil) {
		if v.Name != "" && v.Name != "_" && !strings.HasPrefix(v.Name, "_") {
			named = append(named, v)
		}
	}

	// Streaming overrides the failure-driven loop: the emulator suspends
	// at each solution instead, so the program needs no loop of its own.
	stream := *nsol != 0
	if stream {
		all = false
	}

	// Body: goal, then for each variable  write('X = '), write(X), nl.
	body := goal
	if len(named) == 0 {
		body = term.Comma(body, writeLine(term.Atom("yes")))
	} else {
		for _, v := range named {
			body = term.Comma(body, bindingWriter(v))
		}
	}
	if all {
		// Failure-driven loop over all solutions; separate them.
		body = term.Comma(body,
			term.Comma(&term.Compound{Functor: "write", Args: []term.Term{term.Atom(";")}},
				term.Comma(term.Atom("nl"), term.Atom("fail"))))
	}

	head := term.Atom("main")
	clauses := append([]term.Term{}, program...)
	clauses = append(clauses, &term.Compound{Functor: ":-", Args: []term.Term{head, body}})
	if all {
		clauses = append(clauses, head) // main. — succeed after the loop
	}

	c := compile.New(compile.DefaultOptions())
	if err := c.AddProgram(clauses); err != nil {
		return err
	}
	unit, err := c.Compile()
	if err != nil {
		return err
	}
	if u := c.Undefined(); len(u) > 0 {
		fmt.Fprintf(os.Stderr, "warning: undefined predicates: %v\n", u)
	}
	prog, err := expand.Translate(unit, c.Atoms())
	if err != nil {
		return err
	}
	prog = rename.Fold(prog)
	var deadline time.Time
	if *timeout > 0 {
		deadline = time.Now().Add(*timeout)
	}
	var trace *obs.Trace
	if *events > 0 {
		trace = obs.NewTrace(*events)
	}
	opts := emu.Options{
		MaxSteps: *maxSteps,
		Deadline: deadline,
		Legacy:   runLegacy,
		NoFuse:   runNoFuse,
		Threaded: runThreaded,
		Events:   trace,
	}
	if stream {
		return askStream(prog, opts, trace, *nsol)
	}
	res, err := emu.Run(prog, opts)
	if trace != nil {
		// The trace survives faulting runs, so dump it before bailing.
		printEvents(trace, prog)
	}
	if err != nil {
		return err
	}
	if *stats {
		fmt.Fprint(os.Stderr, res.Stats.String())
	}
	out := res.Output
	if all {
		out = strings.TrimSuffix(out, ";\n")
	}
	if res.Status != 0 || strings.TrimSpace(out) == "" && len(named) > 0 {
		fmt.Println("no")
		return nil
	}
	fmt.Print(out)
	return nil
}

// askStream runs the query on a suspendable machine, printing each
// solution as the machine reaches it and resuming — backtracking into the
// program — until limit solutions have been printed (limit < 0 for all)
// or the solution space is exhausted. The step budget and deadline span
// the whole stream, and the final stats are cumulative across segments.
func askStream(prog *ic.Program, opts emu.Options, trace *obs.Trace, limit int) error {
	m := emu.New(prog, opts)
	n := 0
	res, err := m.Run()
	for {
		if trace != nil {
			printEvents(trace, prog)
		}
		if err != nil {
			return err
		}
		if res.Status != 0 {
			break
		}
		if n > 0 {
			fmt.Println(";")
		}
		n++
		fmt.Print(res.Output)
		if limit > 0 && n >= limit {
			break
		}
		if !m.More() {
			break
		}
		res, err = m.Resume()
	}
	if *stats {
		st := m.Stats()
		fmt.Fprint(os.Stderr, st.String())
	}
	if n == 0 {
		fmt.Println("no")
	}
	return nil
}

// printEvents dumps the traced milestones to stderr, labeling pcs with the
// program's listing labels where they land on one.
func printEvents(trace *obs.Trace, prog *ic.Program) {
	if d := trace.Dropped(); d > 0 {
		fmt.Fprintf(os.Stderr, "events: %d recorded, oldest %d dropped\n", trace.Total(), d)
	}
	for _, e := range trace.Events() {
		fmt.Fprint(os.Stderr, e.String())
		if name, ok := prog.Names[int(e.PC)]; ok {
			fmt.Fprintf(os.Stderr, "  ; %s", name)
		}
		switch e.Kind {
		case obs.EvCall, obs.EvExec:
			if name, ok := prog.Names[int(e.Arg)]; ok {
				fmt.Fprintf(os.Stderr, "  -> %s", name)
			}
		}
		fmt.Fprintln(os.Stderr)
	}
}

// bindingWriter builds  write('X = '), write(X), nl.
func bindingWriter(v *term.Var) term.Term {
	return term.Comma(
		&term.Compound{Functor: "write", Args: []term.Term{term.Atom(v.Name + " = ")}},
		term.Comma(
			&term.Compound{Functor: "write", Args: []term.Term{v}},
			term.Atom("nl")))
}

// writeLine builds  write(what), nl.
func writeLine(what term.Term) term.Term {
	return term.Comma(
		&term.Compound{Functor: "write", Args: []term.Term{what}},
		term.Atom("nl"))
}
