// Command symbolserve is the fault-tolerant HTTP front end over the SYMBOL
// engine: it preloads knowledge bases (files and/or the embedded benchmark
// suite) and serves their queries through internal/serve — admission
// control, load shedding, per-tenant budgets, typed fault mapping, and
// graceful drain on SIGINT/SIGTERM.
//
// Usage:
//
//	symbolserve -addr :8080 -bench            # serve the embedded suite
//	symbolserve -addr :8080 kb1.pl kb2.sym    # serve Prolog files and/or snapshots
//	symbolserve -snapshot-dir ./snaps         # preload a directory of .sym snapshots
//	symbolserve -bench -tenants tenants.json  # named budget envelopes
//
// Snapshot files (symbolc -o) load in one validated read — no parsing, no
// compilation — so a server fronting many KBs is ready in milliseconds;
// per-file load times are logged at boot. Query-kind snapshots in
// -snapshot-dir pre-warm the compiled-query cache instead of becoming KBs.
//
// Endpoints:
//
//	GET  /healthz           liveness (503 while draining)
//	GET  /readyz            readiness (503 while draining or overloaded)
//	GET  /metrics           Prometheus text (engine + server families)
//	GET  /kbs               loaded knowledge bases, JSON
//	GET  /run/{kb}          run the KB's own main/0
//	GET  /query/{kb}?q=...  answer an arbitrary goal (or POST the goal)
//	GET  /debug/vars        expvar JSON
//
// Adding limit=N to /query streams up to N solutions per page; a response
// with more solutions left carries an opaque cursor, and
// /query/{kb}?cursor=... resumes the suspended stream where it left off.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"symbol"
	"symbol/internal/benchprog"
	"symbol/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "symbolserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		bench       = flag.Bool("bench", false, "serve the embedded benchmark suite as knowledge bases")
		maxInFlight = flag.Int("max-inflight", 0, "concurrently executing queries (0 = GOMAXPROCS)")
		maxQueue    = flag.Int("max-queue", 0, "admission queue depth (0 = 4x max-inflight)")
		queueWait   = flag.Duration("queue-timeout", 0, "max admission wait (0 = 1s)")
		reqTimeout  = flag.Duration("timeout", 0, "default per-query wall budget (0 = 5s)")
		drain       = flag.Duration("drain-timeout", 0, "graceful-drain deadline on shutdown (0 = 10s)")
		shedP99     = flag.Duration("shed-p99", 0, "shed while windowed p99 exceeds this (0 = off)")
		maxSteps    = flag.Int64("max-steps", 0, "default per-query step budget (0 = engine default)")
		tenantsPath = flag.String("tenants", "", "JSON file of named tenant budget envelopes")
		cursorTTL   = flag.Duration("cursor-ttl", 0, "idle lifetime of a paginated query's resume cursor (0 = 30s)")
		negTTL      = flag.Duration("neg-cache-ttl", 0, "how long a failed query compile stays cached (0 = 5s)")
		dispatch    = flag.String("dispatch", "", "execution core for every query: legacy, nofuse, fused, threaded (default auto)")
		batchWindow = flag.Duration("batch-window", 0, "request-coalescing window (0 = 2ms)")
		maxBatch    = flag.Int("max-batch", 0, "max requests per coalesced batch (0 = max-inflight)")
		noBatch     = flag.Bool("no-batch", false, "disable request coalescing")
		cacheBudget = flag.Int64("cache-budget-mb", 0, "query-engine cache budget in MiB of estimated resident bytes (0 = 2048)")
		snapDir     = flag.String("snapshot-dir", "", "directory of .sym snapshots preloaded at boot (program snapshots become KBs, query snapshots pre-warm the query cache)")
	)
	flag.Parse()

	disp, err := symbol.ParseDispatch(*dispatch)
	if err != nil {
		return err
	}
	cfg := serve.Config{
		MaxInFlight:      *maxInFlight,
		MaxQueue:         *maxQueue,
		QueueTimeout:     *queueWait,
		RequestTimeout:   *reqTimeout,
		DrainTimeout:     *drain,
		ShedP99:          *shedP99,
		CursorTTL:        *cursorTTL,
		NegCacheTTL:      *negTTL,
		Dispatch:         disp,
		BatchWindow:      *batchWindow,
		MaxBatch:         *maxBatch,
		DisableBatching:  *noBatch,
		CacheBudgetBytes: *cacheBudget << 20,
		SnapshotDir:      *snapDir,
		DefaultTenant:    serve.Tenant{MaxSteps: *maxSteps},
		Logf:             log.Printf,
	}
	if *tenantsPath != "" {
		data, err := os.ReadFile(*tenantsPath)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &cfg.Tenants); err != nil {
			return fmt.Errorf("tenants %s: %w", *tenantsPath, err)
		}
	}

	var kbs []serve.KB
	if *bench {
		for _, b := range benchprog.All() {
			kbs = append(kbs, serve.KB{Name: b.Name, Source: b.Source})
		}
	}
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		if symbol.IsSnapshot(src) {
			kbs = append(kbs, serve.KB{Name: name, Snapshot: src})
		} else {
			kbs = append(kbs, serve.KB{Name: name, Source: string(src)})
		}
	}
	if len(kbs) == 0 && *snapDir == "" {
		return errors.New("no knowledge bases: pass -bench, Prolog/.sym files, and/or -snapshot-dir")
	}

	s, err := serve.New(cfg, kbs...)
	if err != nil {
		return err
	}
	s.PublishExpvar("symbolserve")
	log.Printf("symbolserve: %d knowledge bases loaded, listening on %s", len(s.KBNames()), *addr)

	httpSrv := &http.Server{Addr: *addr, Handler: s}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("symbolserve: %v — draining", sig)
	}

	// Shed new work first, then close the listener, then wind down
	// in-flight queries: hard-cancelled stragglers still get responses
	// before the HTTP server finishes its own shutdown.
	s.BeginDrain()
	deadline := cfg.DrainTimeout
	if deadline <= 0 {
		deadline = 10 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	drainErr := s.Drain(ctx)
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("symbolserve: http shutdown: %v", err)
	}
	if drainErr != nil {
		return drainErr
	}
	log.Printf("symbolserve: drained cleanly")
	return nil
}
