// Command symbolload drives load at a symbolserve instance and reports a
// latency/shed profile: queries per second, p50/p99/p999, status classes,
// and the shed rate. It doubles as the CI smoke harness (-min-qps /
// -max-5xx turn the report into assertions) and as a chaos generator
// (-chaos mixes in slow queries, budget-exhausting queries, and client
// disconnects to exercise the server's failure paths).
//
// Usage:
//
//	symbolload -self -d 5s -c 8                  # in-process server, embedded suite
//	symbolload -url http://host:8080 -kb qsort   # remote server
//	symbolload -self -chaos -json                # failure-path mix, JSON report
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"symbol/internal/benchprog"
	"symbol/internal/serve"
)

// Report is the JSON shape of a load run (committed as BENCH_serve.json).
type Report struct {
	Target     string         `json:"target"`
	KB         string         `json:"kb"`
	Mode       string         `json:"mode"`
	Chaos      bool           `json:"chaos"`
	Workers    int            `json:"workers"`
	DurationS  float64        `json:"duration_s"`
	Requests   int            `json:"requests"`
	QPS        float64        `json:"qps"`
	P50MS      float64        `json:"p50_ms"`
	P99MS      float64        `json:"p99_ms"`
	P999MS     float64        `json:"p999_ms"`
	Statuses   map[string]int `json:"statuses"`
	Proven     int            `json:"proven"`      // 200s whose goal succeeded
	NoSolution int            `json:"no_solution"` // 200s that answered a clean "no"
	Sheds      int            `json:"sheds"`
	ShedRate   float64        `json:"shed_rate"`
	ShedReason map[string]int `json:"shed_reasons,omitempty"`
	Faults     map[string]int `json:"faults,omitempty"`
	Disconnect int            `json:"client_disconnects,omitempty"`
	Errors     int            `json:"transport_errors"`
	FiveXX     int            `json:"non_shed_5xx"`
}

type sample struct {
	status     int
	ok         bool // the goal was proven (200 with ok=true)
	latency    time.Duration
	shedReason string
	faultName  string
	transport  bool // transport-level failure (includes chaos disconnects)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "symbolload:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		url      = flag.String("url", "", "target symbolserve base URL")
		self     = flag.Bool("self", false, "serve the embedded suite in-process and load that")
		kb       = flag.String("kb", "", "knowledge base to query (default: first runnable)")
		mode     = flag.String("mode", "run", "request mode: run (KB's main/0) or query (posted goal)")
		goal     = flag.String("goal", "", "goal for -mode query (required with that mode)")
		workers  = flag.Int("c", 8, "concurrent workers")
		duration = flag.Duration("d", 5*time.Second, "load duration")
		chaos    = flag.Bool("chaos", false, "mix in slow queries, budget bombs, and client disconnects")
		jsonOut  = flag.Bool("json", false, "emit the report as JSON")
		minQPS   = flag.Float64("min-qps", 0, "fail unless achieved QPS is at least this")
		max5xx   = flag.Int("max-5xx", -1, "fail if non-shed 5xx responses exceed this (-1 = no assertion)")
	)
	flag.Parse()

	base := *url
	if *self {
		var kbs []serve.KB
		for _, b := range benchprog.All() {
			kbs = append(kbs, serve.KB{Name: b.Name, Source: b.Source})
		}
		s, err := serve.New(serve.Config{}, kbs...)
		if err != nil {
			return err
		}
		ts := httptest.NewServer(s)
		defer ts.Close()
		defer s.Close()
		base = ts.URL
	}
	if base == "" {
		return fmt.Errorf("no target: pass -url or -self")
	}
	base = strings.TrimRight(base, "/")
	if *kb == "" {
		name, err := firstRunnableKB(base)
		if err != nil {
			return err
		}
		*kb = name
	}
	if *mode != "run" && *mode != "query" {
		return fmt.Errorf("unknown -mode %q", *mode)
	}
	if *mode == "query" && *goal == "" {
		return fmt.Errorf("-mode query needs -goal (a goal against the kb's own predicates)")
	}

	samples := fire(base, *kb, *mode, *goal, *workers, *duration, *chaos)
	rep := summarize(samples, base, *kb, *mode, *chaos, *workers, *duration)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		printReport(rep)
	}

	if *minQPS > 0 && rep.QPS < *minQPS {
		return fmt.Errorf("assertion failed: qps %.1f < min-qps %.1f", rep.QPS, *minQPS)
	}
	if *max5xx >= 0 && rep.FiveXX > *max5xx {
		return fmt.Errorf("assertion failed: %d non-shed 5xx responses > max-5xx %d", rep.FiveXX, *max5xx)
	}
	return nil
}

// firstRunnableKB asks the target's /kbs listing for a KB with a main/0.
func firstRunnableKB(base string) (string, error) {
	r, err := http.Get(base + "/kbs")
	if err != nil {
		return "", err
	}
	defer r.Body.Close()
	var kbs []struct {
		Name     string `json:"name"`
		Runnable bool   `json:"runnable"`
	}
	if err := json.NewDecoder(r.Body).Decode(&kbs); err != nil {
		return "", fmt.Errorf("decoding /kbs: %w", err)
	}
	for _, k := range kbs {
		if k.Runnable {
			return k.Name, nil
		}
	}
	return "", fmt.Errorf("target serves no runnable kb")
}

// fire runs the worker pool for the configured duration and collects one
// sample per request.
func fire(base, kb, mode, goal string, workers int, duration time.Duration, chaos bool) []sample {
	deadline := time.Now().Add(duration)
	var mu sync.Mutex
	var samples []sample
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var local []sample
			for time.Now().Before(deadline) {
				local = append(local, oneRequest(base, kb, mode, goal, chaos, rng))
			}
			mu.Lock()
			samples = append(samples, local...)
			mu.Unlock()
		}(int64(w) + 1)
	}
	wg.Wait()
	return samples
}

// oneRequest issues a single load request. In chaos mode roughly a third
// of the traffic exercises a failure path: a budget bomb (1-step budget,
// typed 422), a slow query (1ms wall budget, typed 504), or a client
// disconnect (context cancelled mid-flight, server records client_gone).
func oneRequest(base, kb, mode, goal string, chaos bool, rng *rand.Rand) sample {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var req *http.Request
	if mode == "query" {
		req, _ = http.NewRequestWithContext(ctx, "POST", base+"/query/"+kb, strings.NewReader(goal))
	} else {
		req, _ = http.NewRequestWithContext(ctx, "GET", base+"/run/"+kb, nil)
	}

	disconnect := false
	if chaos {
		switch rng.Intn(9) {
		case 0: // budget bomb: exhaust the step budget immediately
			req.Header.Set(serve.HeaderMaxSteps, "1")
		case 1: // slow query: a wall budget almost nothing finishes inside
			req.Header.Set(serve.HeaderTimeout, "100us")
		case 2: // client disconnect mid-flight
			disconnect = true
			go func() {
				time.Sleep(time.Duration(rng.Intn(2000)) * time.Microsecond)
				cancel()
			}()
		}
	}

	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	lat := time.Since(start)
	if err != nil {
		return sample{latency: lat, transport: !disconnect}
	}
	defer resp.Body.Close()
	var body struct {
		OK    bool   `json:"ok"`
		Fault string `json:"fault"`
	}
	raw, _ := io.ReadAll(resp.Body)
	json.Unmarshal(raw, &body)
	return sample{
		status:     resp.StatusCode,
		ok:         body.OK,
		latency:    lat,
		shedReason: resp.Header.Get(serve.ShedReasonHeader),
		faultName:  body.Fault,
	}
}

func summarize(samples []sample, base, kb, mode string, chaos bool, workers int, duration time.Duration) Report {
	rep := Report{
		Target:     base,
		KB:         kb,
		Mode:       mode,
		Chaos:      chaos,
		Workers:    workers,
		DurationS:  duration.Seconds(),
		Requests:   len(samples),
		Statuses:   map[string]int{},
		ShedReason: map[string]int{},
		Faults:     map[string]int{},
	}
	var lats []time.Duration
	for _, s := range samples {
		if s.transport {
			rep.Errors++
			continue
		}
		if s.status == 0 {
			rep.Disconnect++
			continue
		}
		rep.Statuses[fmt.Sprintf("%d", s.status)]++
		lats = append(lats, s.latency)
		if s.status == 200 {
			if s.ok {
				rep.Proven++
			} else {
				rep.NoSolution++
			}
		}
		if s.shedReason != "" {
			rep.Sheds++
			rep.ShedReason[s.shedReason]++
		} else if s.status >= 500 {
			rep.FiveXX++
		}
		if s.faultName != "" {
			rep.Faults[s.faultName]++
		}
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		q := func(p float64) float64 {
			i := int(p * float64(len(lats)-1))
			return float64(lats[i]) / float64(time.Millisecond)
		}
		rep.P50MS, rep.P99MS, rep.P999MS = q(0.50), q(0.99), q(0.999)
	}
	if duration > 0 {
		rep.QPS = float64(len(samples)) / duration.Seconds()
	}
	if answered := len(lats); answered > 0 {
		rep.ShedRate = float64(rep.Sheds) / float64(answered)
	}
	return rep
}

func printReport(r Report) {
	fmt.Printf("target     %s  kb=%s mode=%s chaos=%v\n", r.Target, r.KB, r.Mode, r.Chaos)
	fmt.Printf("load       %d workers x %.1fs\n", r.Workers, r.DurationS)
	fmt.Printf("requests   %d (%.1f q/s)\n", r.Requests, r.QPS)
	fmt.Printf("latency    p50 %.2fms  p99 %.2fms  p999 %.2fms\n", r.P50MS, r.P99MS, r.P999MS)
	var keys []string
	for k := range r.Statuses {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Printf("statuses  ")
	for _, k := range keys {
		fmt.Printf(" %s:%d", k, r.Statuses[k])
	}
	fmt.Println()
	fmt.Printf("answers    %d proven, %d no-solution\n", r.Proven, r.NoSolution)
	fmt.Printf("sheds      %d (rate %.3f) %v\n", r.Sheds, r.ShedRate, r.ShedReason)
	if len(r.Faults) > 0 {
		fmt.Printf("faults     %v\n", r.Faults)
	}
	if r.Disconnect > 0 || r.Errors > 0 {
		fmt.Printf("aborted    %d client disconnects, %d transport errors\n", r.Disconnect, r.Errors)
	}
	fmt.Printf("non-shed 5xx %d\n", r.FiveXX)
}
