// Command symbolload drives load at a symbolserve instance and reports a
// latency/shed profile: queries per second, p50/p99/p999, status classes,
// the shed rate, and qps_at_p99 — throughput discounted when the p99
// latency exceeds its target, the serving figure of merit the CI trend
// gate tracks. It doubles as the CI smoke harness (-min-qps / -max-5xx /
// -min-speedup / -compare turn the report into assertions) and as a chaos
// generator (-chaos mixes in slow queries, budget-exhausting queries, and
// client disconnects to exercise the server's failure paths).
//
// Usage:
//
//	symbolload -self -d 5s -c 8                  # in-process server, embedded suite
//	symbolload -url http://host:8080 -kb qsort   # remote server
//	symbolload -self -chaos -json                # failure-path mix, JSON report
//	symbolload -self -ab -warmup 1s -c 8         # unbatched vs batched A/B
//
// With -ab the harness serves the suite twice in one process — first with
// request coalescing disabled, then enabled — under identical load, and
// reports both profiles plus the batching speedup. Because both phases run
// on the same machine seconds apart, the speedup is robust to host noise
// in a way absolute qps floors are not.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"symbol"
	"symbol/internal/benchprog"
	"symbol/internal/serve"
)

// Report is the JSON shape of a load run (committed as BENCH_serve.json).
// QPSAtP99 is qps scaled by min(1, p99_target/p99): pure throughput while
// the p99 meets its target, discounted in proportion once it does not — so
// a change cannot buy throughput by letting tail latency collapse. The
// Unbatched* fields and BatchSpeedup are present only for -ab runs; the
// speedup is the ratio of the two phases' QPSAtP99.
type Report struct {
	Target      string         `json:"target"`
	KB          string         `json:"kb"`
	Mode        string         `json:"mode"`
	Dispatch    string         `json:"dispatch,omitempty"`
	Chaos       bool           `json:"chaos"`
	Workers     int            `json:"workers"`
	WarmupS     float64        `json:"warmup_s,omitempty"`
	DurationS   float64        `json:"duration_s"`
	Requests    int            `json:"requests"`
	QPS         float64        `json:"qps"`
	P50MS       float64        `json:"p50_ms"`
	P99MS       float64        `json:"p99_ms"`
	P999MS      float64        `json:"p999_ms"`
	P99TargetMS float64        `json:"p99_target_ms,omitempty"`
	QPSAtP99    float64        `json:"qps_at_p99,omitempty"`
	Statuses    map[string]int `json:"statuses"`
	Proven      int            `json:"proven"`      // 200s whose goal succeeded
	NoSolution  int            `json:"no_solution"` // 200s that answered a clean "no"
	Sheds       int            `json:"sheds"`
	ShedRate    float64        `json:"shed_rate"`
	ShedReason  map[string]int `json:"shed_reasons,omitempty"`
	Faults      map[string]int `json:"faults,omitempty"`
	Disconnect  int            `json:"client_disconnects,omitempty"`
	Errors      int            `json:"transport_errors"`
	FiveXX      int            `json:"non_shed_5xx"`

	UnbatchedQPS      float64 `json:"unbatched_qps,omitempty"`
	UnbatchedP99MS    float64 `json:"unbatched_p99_ms,omitempty"`
	UnbatchedQPSAtP99 float64 `json:"unbatched_qps_at_p99,omitempty"`
	BatchSpeedup      float64 `json:"batch_speedup,omitempty"`
}

type sample struct {
	status     int
	ok         bool // the goal was proven (200 with ok=true)
	latency    time.Duration
	shedReason string
	faultName  string
	transport  bool // transport-level failure (includes chaos disconnects)
}

// loadSpec is everything one measured phase needs.
type loadSpec struct {
	kb       string
	mode     string
	goal     string
	workers  int
	warmup   time.Duration
	duration time.Duration
	chaos    bool
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "symbolload:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		url        = flag.String("url", "", "target symbolserve base URL")
		self       = flag.Bool("self", false, "serve the embedded suite in-process and load that")
		kb         = flag.String("kb", "", "knowledge base to query (default: first runnable)")
		mode       = flag.String("mode", "run", "request mode: run (KB's main/0) or query (posted goal)")
		goal       = flag.String("goal", "", "goal for -mode query (required with that mode)")
		workers    = flag.Int("c", 8, "concurrent workers")
		warmup     = flag.Duration("warmup", 0, "warm the target before measuring; warmup requests are excluded from the report")
		duration   = flag.Duration("d", 5*time.Second, "measured load duration")
		dispatchF  = flag.String("dispatch", "", "execution core for the -self server: legacy, nofuse, fused, threaded (default auto)")
		ab         = flag.Bool("ab", false, "A/B: run the load twice in-process (-self), unbatched then batched, and report the speedup")
		chaos      = flag.Bool("chaos", false, "mix in slow queries, budget bombs, and client disconnects")
		jsonOut    = flag.Bool("json", false, "emit the report as JSON")
		p99Target  = flag.Duration("p99-target", 50*time.Millisecond, "p99 target for the qps_at_p99 figure of merit")
		minQPS     = flag.Float64("min-qps", 0, "fail unless achieved QPS is at least this")
		max5xx     = flag.Int("max-5xx", -1, "fail if non-shed 5xx responses exceed this (-1 = no assertion)")
		minSpeedup = flag.Float64("min-speedup", 0, "with -ab: fail unless batched qps_at_p99 is at least this multiple of unbatched")
		compare    = flag.String("compare", "", "committed report JSON to trend-gate qps_at_p99 against")
		tolerance  = flag.Float64("tolerance", 30, "with -compare: allowed qps_at_p99 regression, percent")
	)
	flag.Parse()

	disp, err := symbol.ParseDispatch(*dispatchF)
	if err != nil {
		return err
	}
	if *mode != "run" && *mode != "query" {
		return fmt.Errorf("unknown -mode %q", *mode)
	}
	if *mode == "query" && *goal == "" {
		return fmt.Errorf("-mode query needs -goal (a goal against the kb's own predicates)")
	}
	if *ab && !*self {
		return fmt.Errorf("-ab compares two in-process server configurations: pass -self")
	}
	if *dispatchF != "" && !*self {
		return fmt.Errorf("-dispatch configures the in-process server: pass -self (a remote server picks its own core)")
	}

	spec := loadSpec{
		kb: *kb, mode: *mode, goal: *goal,
		workers: *workers, warmup: *warmup, duration: *duration, chaos: *chaos,
	}

	var rep Report
	if *ab {
		unbatched, err := phase(disp, false, &spec)
		if err != nil {
			return fmt.Errorf("unbatched phase: %w", err)
		}
		batched, err := phase(disp, true, &spec)
		if err != nil {
			return fmt.Errorf("batched phase: %w", err)
		}
		finishReport(&unbatched, *p99Target)
		finishReport(&batched, *p99Target)
		rep = batched
		rep.UnbatchedQPS = unbatched.QPS
		rep.UnbatchedP99MS = unbatched.P99MS
		rep.UnbatchedQPSAtP99 = unbatched.QPSAtP99
		if unbatched.QPSAtP99 > 0 {
			rep.BatchSpeedup = batched.QPSAtP99 / unbatched.QPSAtP99
		}
	} else if *self {
		rep, err = phase(disp, true, &spec)
		if err != nil {
			return err
		}
		finishReport(&rep, *p99Target)
	} else {
		if *url == "" {
			return fmt.Errorf("no target: pass -url or -self")
		}
		base := strings.TrimRight(*url, "/")
		if err := resolveKB(base, &spec); err != nil {
			return err
		}
		samples := fire(base, &spec)
		rep = summarize(samples, base, &spec)
		finishReport(&rep, *p99Target)
	}
	rep.Dispatch = *dispatchF

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		printReport(rep)
	}

	if *minQPS > 0 && rep.QPS < *minQPS {
		return fmt.Errorf("assertion failed: qps %.1f < min-qps %.1f", rep.QPS, *minQPS)
	}
	if *max5xx >= 0 && rep.FiveXX > *max5xx {
		return fmt.Errorf("assertion failed: %d non-shed 5xx responses > max-5xx %d", rep.FiveXX, *max5xx)
	}
	if *minSpeedup > 0 {
		if !*ab {
			return fmt.Errorf("-min-speedup needs -ab")
		}
		if rep.BatchSpeedup < *minSpeedup {
			return fmt.Errorf("assertion failed: batch speedup %.2fx < min-speedup %.2fx (batched %.1f vs unbatched %.1f qps_at_p99)",
				rep.BatchSpeedup, *minSpeedup, rep.QPSAtP99, rep.UnbatchedQPSAtP99)
		}
	}
	if *compare != "" {
		if err := trendGate(*compare, *tolerance, rep); err != nil {
			return err
		}
	}
	return nil
}

// phase serves the embedded suite in-process — MaxInFlight at least the
// worker count, so a coalescing window can gather every concurrent request
// into one batch — and runs the configured load against it.
func phase(disp symbol.Dispatch, batched bool, spec *loadSpec) (Report, error) {
	inFlight := spec.workers
	if g := runtime.GOMAXPROCS(0); g > inFlight {
		inFlight = g
	}
	var kbs []serve.KB
	for _, b := range benchprog.All() {
		kbs = append(kbs, serve.KB{Name: b.Name, Source: b.Source})
	}
	s, err := serve.New(serve.Config{
		MaxInFlight:     inFlight,
		Dispatch:        disp,
		DisableBatching: !batched,
	}, kbs...)
	if err != nil {
		return Report{}, err
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Close()
	if err := resolveKB(ts.URL, spec); err != nil {
		return Report{}, err
	}
	samples := fire(ts.URL, spec)
	rep := summarize(samples, ts.URL, spec)
	if !batched {
		rep.Target += " (unbatched)"
	}
	return rep, nil
}

// finishReport derives the qps_at_p99 figure of merit: throughput taken at
// face value while the p99 meets its target, discounted proportionally
// once it exceeds it.
func finishReport(rep *Report, p99Target time.Duration) {
	rep.P99TargetMS = float64(p99Target) / float64(time.Millisecond)
	rep.QPSAtP99 = rep.QPS
	if rep.P99MS > rep.P99TargetMS && rep.P99MS > 0 {
		rep.QPSAtP99 = rep.QPS * rep.P99TargetMS / rep.P99MS
	}
}

// trendGate asserts the run's qps_at_p99 against a committed report's,
// within a noise tolerance. The committed figure is the floor of record:
// a regression past the tolerance fails CI; improvements pass silently
// (refresh the committed file to raise the floor).
func trendGate(path string, tolerancePct float64, rep Report) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("trend gate: %w", err)
	}
	var committed Report
	if err := json.Unmarshal(data, &committed); err != nil {
		return fmt.Errorf("trend gate: %s: %w", path, err)
	}
	if committed.QPSAtP99 <= 0 {
		return fmt.Errorf("trend gate: %s has no qps_at_p99 figure; regenerate it with this harness", path)
	}
	floor := committed.QPSAtP99 * (1 - tolerancePct/100)
	if rep.QPSAtP99 < floor {
		return fmt.Errorf("trend gate failed: qps_at_p99 %.1f < floor %.1f (committed %.1f - %.0f%% tolerance)",
			rep.QPSAtP99, floor, committed.QPSAtP99, tolerancePct)
	}
	return nil
}

// resolveKB fills spec.kb from the target's /kbs listing when unset.
func resolveKB(base string, spec *loadSpec) error {
	if spec.kb != "" {
		return nil
	}
	name, err := firstRunnableKB(base)
	if err != nil {
		return err
	}
	spec.kb = name
	return nil
}

// firstRunnableKB asks the target's /kbs listing for a KB with a main/0.
func firstRunnableKB(base string) (string, error) {
	r, err := http.Get(base + "/kbs")
	if err != nil {
		return "", err
	}
	defer r.Body.Close()
	var kbs []struct {
		Name     string `json:"name"`
		Runnable bool   `json:"runnable"`
	}
	if err := json.NewDecoder(r.Body).Decode(&kbs); err != nil {
		return "", fmt.Errorf("decoding /kbs: %w", err)
	}
	for _, k := range kbs {
		if k.Runnable {
			return k.Name, nil
		}
	}
	return "", fmt.Errorf("target serves no runnable kb")
}

// fire runs the worker pool and collects one sample per measured request.
// Requests issued during the warmup window are driven identically but
// discarded: they exist to populate the engine caches and state pools, and
// their cold-path latencies must not pollute the percentiles.
func fire(base string, spec *loadSpec) []sample {
	warmupEnd := time.Now().Add(spec.warmup)
	deadline := warmupEnd.Add(spec.duration)
	var mu sync.Mutex
	var samples []sample
	var wg sync.WaitGroup
	for w := 0; w < spec.workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var local []sample
			for time.Now().Before(deadline) {
				s := oneRequest(base, spec.kb, spec.mode, spec.goal, spec.chaos, rng)
				if time.Now().After(warmupEnd) {
					local = append(local, s)
				}
			}
			mu.Lock()
			samples = append(samples, local...)
			mu.Unlock()
		}(int64(w) + 1)
	}
	wg.Wait()
	return samples
}

// oneRequest issues a single load request. In chaos mode roughly a third
// of the traffic exercises a failure path: a budget bomb (1-step budget,
// typed 422), a slow query (1ms wall budget, typed 504), or a client
// disconnect (context cancelled mid-flight, server records client_gone).
func oneRequest(base, kb, mode, goal string, chaos bool, rng *rand.Rand) sample {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var req *http.Request
	if mode == "query" {
		req, _ = http.NewRequestWithContext(ctx, "POST", base+"/query/"+kb, strings.NewReader(goal))
	} else {
		req, _ = http.NewRequestWithContext(ctx, "GET", base+"/run/"+kb, nil)
	}

	disconnect := false
	if chaos {
		switch rng.Intn(9) {
		case 0: // budget bomb: exhaust the step budget immediately
			req.Header.Set(serve.HeaderMaxSteps, "1")
		case 1: // slow query: a wall budget almost nothing finishes inside
			req.Header.Set(serve.HeaderTimeout, "100us")
		case 2: // client disconnect mid-flight
			disconnect = true
			go func() {
				time.Sleep(time.Duration(rng.Intn(2000)) * time.Microsecond)
				cancel()
			}()
		}
	}

	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	lat := time.Since(start)
	if err != nil {
		return sample{latency: lat, transport: !disconnect}
	}
	defer resp.Body.Close()
	var body struct {
		OK    bool   `json:"ok"`
		Fault string `json:"fault"`
	}
	raw, _ := io.ReadAll(resp.Body)
	json.Unmarshal(raw, &body)
	return sample{
		status:     resp.StatusCode,
		ok:         body.OK,
		latency:    lat,
		shedReason: resp.Header.Get(serve.ShedReasonHeader),
		faultName:  body.Fault,
	}
}

func summarize(samples []sample, base string, spec *loadSpec) Report {
	rep := Report{
		Target:     base,
		KB:         spec.kb,
		Mode:       spec.mode,
		Chaos:      spec.chaos,
		Workers:    spec.workers,
		WarmupS:    spec.warmup.Seconds(),
		DurationS:  spec.duration.Seconds(),
		Requests:   len(samples),
		Statuses:   map[string]int{},
		ShedReason: map[string]int{},
		Faults:     map[string]int{},
	}
	var lats []time.Duration
	for _, s := range samples {
		if s.transport {
			rep.Errors++
			continue
		}
		if s.status == 0 {
			rep.Disconnect++
			continue
		}
		rep.Statuses[fmt.Sprintf("%d", s.status)]++
		lats = append(lats, s.latency)
		if s.status == 200 {
			if s.ok {
				rep.Proven++
			} else {
				rep.NoSolution++
			}
		}
		if s.shedReason != "" {
			rep.Sheds++
			rep.ShedReason[s.shedReason]++
		} else if s.status >= 500 {
			rep.FiveXX++
		}
		if s.faultName != "" {
			rep.Faults[s.faultName]++
		}
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		q := func(p float64) float64 {
			i := int(p * float64(len(lats)-1))
			return float64(lats[i]) / float64(time.Millisecond)
		}
		rep.P50MS, rep.P99MS, rep.P999MS = q(0.50), q(0.99), q(0.999)
	}
	if spec.duration > 0 {
		rep.QPS = float64(len(samples)) / spec.duration.Seconds()
	}
	if answered := len(lats); answered > 0 {
		rep.ShedRate = float64(rep.Sheds) / float64(answered)
	}
	return rep
}

func printReport(r Report) {
	fmt.Printf("target     %s  kb=%s mode=%s chaos=%v\n", r.Target, r.KB, r.Mode, r.Chaos)
	fmt.Printf("load       %d workers x %.1fs (warmup %.1fs)\n", r.Workers, r.DurationS, r.WarmupS)
	fmt.Printf("requests   %d (%.1f q/s)\n", r.Requests, r.QPS)
	fmt.Printf("latency    p50 %.2fms  p99 %.2fms  p999 %.2fms\n", r.P50MS, r.P99MS, r.P999MS)
	if r.QPSAtP99 > 0 {
		fmt.Printf("merit      qps_at_p99 %.1f (target p99 %.0fms)\n", r.QPSAtP99, r.P99TargetMS)
	}
	var keys []string
	for k := range r.Statuses {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Printf("statuses  ")
	for _, k := range keys {
		fmt.Printf(" %s:%d", k, r.Statuses[k])
	}
	fmt.Println()
	fmt.Printf("answers    %d proven, %d no-solution\n", r.Proven, r.NoSolution)
	fmt.Printf("sheds      %d (rate %.3f) %v\n", r.Sheds, r.ShedRate, r.ShedReason)
	if len(r.Faults) > 0 {
		fmt.Printf("faults     %v\n", r.Faults)
	}
	if r.Disconnect > 0 || r.Errors > 0 {
		fmt.Printf("aborted    %d client disconnects, %d transport errors\n", r.Disconnect, r.Errors)
	}
	fmt.Printf("non-shed 5xx %d\n", r.FiveXX)
	if r.BatchSpeedup > 0 {
		fmt.Printf("batching   %.2fx qps_at_p99 vs unbatched (%.1f vs %.1f; p99 %.2fms vs %.2fms)\n",
			r.BatchSpeedup, r.QPSAtP99, r.UnbatchedQPSAtP99, r.P99MS, r.UnbatchedP99MS)
	}
}
