package symbol

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// End-to-end property tests: random inputs are run through the whole
// pipeline (compile → emulate, plus VLIW equivalence on a subset) and
// checked against Go reference implementations.

func listLiteral(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprint(x)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

func TestPropertyQsortMatchesGoSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const prelude = `
qsort([], R, R).
qsort([X|L], R, R0) :-
    partition(L, X, L1, L2),
    qsort(L2, R1, R0),
    qsort(L1, R, [X|R1]).
partition([], _, [], []).
partition([X|L], Y, [X|L1], L2) :- X =< Y, !, partition(L, Y, L1, L2).
partition([X|L], Y, L1, [X|L2]) :- partition(L, Y, L1, L2).
`
	for i := 0; i < 12; i++ {
		n := rng.Intn(30)
		xs := make([]int, n)
		for j := range xs {
			xs[j] = rng.Intn(200) - 100
		}
		src := prelude + fmt.Sprintf("main :- qsort(%s, S, []), write(S), nl.\n", listLiteral(xs))
		prog, err := Compile(src)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		res, err := prog.Run()
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		want := append([]int(nil), xs...)
		sort.Ints(want)
		if got := strings.TrimSpace(res.Output); got != listLiteral(want) {
			t.Fatalf("case %d: sorted %v to %q", i, xs, got)
		}
		// Spot-check VLIW equivalence on a few cases.
		if i%4 == 0 {
			sched, err := prog.Schedule(DefaultMachine(3), ScheduleOptions{})
			if err != nil {
				t.Fatal(err)
			}
			sim, err := sched.Simulate()
			if err != nil {
				t.Fatal(err)
			}
			if sim.Output != res.Output {
				t.Fatalf("case %d: VLIW diverged", i)
			}
		}
	}
}

// randTerm builds a random ground Prolog term as source text.
func randTerm(rng *rand.Rand, depth int) string {
	if depth == 0 || rng.Intn(3) == 0 {
		switch rng.Intn(3) {
		case 0:
			return fmt.Sprint(rng.Intn(20) - 10)
		case 1:
			return []string{"a", "b", "c", "foo"}[rng.Intn(4)]
		default:
			return "[]"
		}
	}
	switch rng.Intn(3) {
	case 0:
		return fmt.Sprintf("f(%s,%s)", randTerm(rng, depth-1), randTerm(rng, depth-1))
	case 1:
		return fmt.Sprintf("g(%s)", randTerm(rng, depth-1))
	default:
		return fmt.Sprintf("[%s|%s]", randTerm(rng, depth-1), randTerm(rng, depth-1))
	}
}

func TestPropertyGroundUnification(t *testing.T) {
	// For ground terms, =/2 succeeds exactly when the source texts denote
	// the same term; unification is symmetric; == agrees with =.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 30; i++ {
		t1 := randTerm(rng, 3)
		var t2 string
		if rng.Intn(2) == 0 {
			t2 = t1
		} else {
			t2 = randTerm(rng, 3)
		}
		same := t1 == t2
		src := fmt.Sprintf(`
main :- ( %s = %s  -> write(u1) ; write(n1) ),
        ( %s = %s  -> write(u2) ; write(n2) ),
        ( %s == %s -> write(e1) ; write(d1) ), nl.
`, t1, t2, t2, t1, t1, t2)
		prog, err := Compile(src)
		if err != nil {
			t.Fatalf("case %d (%s = %s): %v", i, t1, t2, err)
		}
		res, err := prog.Run()
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		want := "n1n2d1\n"
		if same {
			want = "u1u2e1\n"
		}
		if res.Output != want {
			t.Fatalf("case %d: %s vs %s → %q, want %q", i, t1, t2, res.Output, want)
		}
	}
}

func TestPropertyUnivFunctorAgree(t *testing.T) {
	// For random ground compounds: T =.. L, rebuild from L, compare with
	// ==; functor/arg must agree with the decomposition.
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 20; i++ {
		tm := fmt.Sprintf("h(%s,%s,%s)", randTerm(rng, 2), randTerm(rng, 2), randTerm(rng, 2))
		src := fmt.Sprintf(`
main :- T = %s,
        T =.. L, U =.. L,
        ( T == U -> write(rt_ok) ; write(rt_bad) ),
        functor(T, F, N),
        ( L = [F|_] -> write(f_ok) ; write(f_bad) ),
        arg(1, T, A1), T =.. [_, A1x|_],
        ( A1 == A1x -> write(a_ok) ; write(a_bad) ),
        N =:= 3, nl.
`, tm)
		prog, err := Compile(src)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		res, err := prog.Run()
		if err != nil {
			t.Fatalf("case %d (%s): %v", i, tm, err)
		}
		if res.Output != "rt_okf_oka_ok\n" {
			t.Fatalf("case %d (%s): %q", i, tm, res.Output)
		}
	}
}

func TestPropertyWriteReadStable(t *testing.T) {
	// write/1 output of a ground term, substituted back into a program,
	// must be == to the original (printer/reader agreement end to end).
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 20; i++ {
		tm := randTerm(rng, 3)
		p1, err := Compile(fmt.Sprintf("main :- write(%s), nl.", tm))
		if err != nil {
			t.Fatal(err)
		}
		r1, err := p1.Run()
		if err != nil {
			t.Fatal(err)
		}
		printed := strings.TrimSpace(r1.Output)
		p2, err := Compile(fmt.Sprintf("main :- ( %s == %s -> write(ok) ; write(bad) ), nl.", tm, printed))
		if err != nil {
			t.Fatalf("case %d: reparse %q: %v", i, printed, err)
		}
		r2, err := p2.Run()
		if err != nil {
			t.Fatal(err)
		}
		if r2.Output != "ok\n" {
			t.Fatalf("case %d: %q reprinted as %q", i, tm, printed)
		}
	}
}
