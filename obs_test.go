package symbol

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"

	"symbol/internal/benchprog"
	"symbol/internal/emu"
	"symbol/internal/ic"
	"symbol/internal/stats"
)

// classCounts projects a Stats into the ic.Class-indexed layout of the
// legacy profile analysis, for direct comparison with stats.ComputeMix.
func classCounts(s *Stats) [ic.NumClasses]int64 {
	var out [ic.NumClasses]int64
	out[ic.ClassMemory] = s.MemOps
	out[ic.ClassALU] = s.ALUOps
	out[ic.ClassMove] = s.MoveOps
	out[ic.ClassControl] = s.ControlOps
	out[ic.ClassSys] = s.SysOps
	return out
}

// TestStatsParity checks the central accounting claim of the observability
// layer: the op-class breakdown the predecoded loops derive from per-opcode
// dispatch counters equals, exactly, the breakdown the profile analysis
// (stats.ComputeMix over Expect) derives for the same execution — on every
// benchmark program, in every execution mode (fused, unfused, legacy,
// profiled). It also pins the counters the classes are built from:
// class-sum == Steps, and choice-point/trail-undo counts agree across
// modes.
func TestStatsParity(t *testing.T) {
	for _, b := range benchprog.All() {
		if b.Heavy && testing.Short() {
			continue
		}
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := Compile(b.Source)
			if err != nil {
				t.Fatal(err)
			}

			// Oracle: a profiled run's Expect vector, classified statically.
			profRes, err := emu.Run(prog.icp, emu.Options{Profile: true})
			if err != nil {
				t.Fatal(err)
			}
			oracle := stats.ComputeMix(prog.icp, profRes.Profile)

			// The reference interpreter counts choice points and trail undos
			// from instruction marks directly; the predecoded loops count
			// them from the remapped opcodes. They must agree.
			ref, err := emu.Run(prog.icp, emu.Options{Legacy: true})
			if err != nil {
				t.Fatal(err)
			}

			modes := map[string]emu.Options{
				"fused":    {},
				"nofuse":   {NoFuse: true},
				"legacy":   {Legacy: true},
				"profiled": {Profile: true},
				"threaded": {Threaded: true},
			}
			for name, opts := range modes {
				res, err := emu.Run(prog.icp, opts)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				s := res.Stats
				got := classCounts(&s)
				if got != oracle.Counts {
					t.Errorf("%s: class counts %v != profile-derived %v", name, got, oracle.Counts)
				}
				if s.Steps != oracle.Total {
					t.Errorf("%s: steps %d != profile total %d", name, s.Steps, oracle.Total)
				}
				if sum := s.MemOps + s.ALUOps + s.MoveOps + s.ControlOps + s.SysOps; sum != s.Steps {
					t.Errorf("%s: class sum %d != steps %d", name, sum, s.Steps)
				}
				if s.ChoicePoints != ref.Stats.ChoicePoints || s.TrailUndos != ref.Stats.TrailUndos {
					t.Errorf("%s: cp=%d undo=%d, legacy cp=%d undo=%d",
						name, s.ChoicePoints, s.TrailUndos, ref.Stats.ChoicePoints, ref.Stats.TrailUndos)
				}
			}
		})
	}
}

// TestEngineMetricsTotals drives an engine from many goroutines and checks
// the exact-aggregation contract: Metrics().Totals equals the Add-sum of
// every per-run Stats the engine returned, and the outcome counters balance.
// Under `go test -race` this also exercises the lock-free recording paths.
func TestEngineMetricsTotals(t *testing.T) {
	prog, err := Compile(`
		nrev([], []).
		nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
		app([], Y, Y).
		app([H|T], Y, [H|Z]) :- app(T, Y, Z).
		main :- nrev([1,2,3,4,5,6,7,8,9,10], R), write(R), nl.
	`)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(prog)
	const workers, perWorker = 8, 16

	var mu sync.Mutex
	var want Stats
	var okRuns, failRuns int64

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				opts := RunOptions{}
				if w == 0 && i%4 == 3 {
					opts.MaxSteps = 10 // force ErrStepLimit on some runs
				}
				res, err := eng.Run(context.Background(), opts)
				mu.Lock()
				if err != nil {
					if !errors.Is(err, ErrStepLimit) {
						t.Errorf("unexpected error: %v", err)
					}
					failRuns++
				} else {
					want.Add(&res.Stats)
					okRuns++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	m := eng.Metrics()
	if m.Totals != want {
		t.Errorf("Metrics().Totals = %+v\nwant Add-sum     %+v", m.Totals, want)
	}
	if m.Started != okRuns+failRuns {
		t.Errorf("started=%d, want %d", m.Started, okRuns+failRuns)
	}
	if m.Succeeded != okRuns {
		t.Errorf("succeeded=%d, want %d", m.Succeeded, okRuns)
	}
	var failed int64
	for _, n := range m.Faults {
		failed += n
	}
	if failed != failRuns {
		t.Errorf("failed=%d (%v), want %d", failed, m.Faults, failRuns)
	}
	if m.InFlight != 0 {
		t.Errorf("in_flight=%d after quiescence", m.InFlight)
	}
	if m.PoolGets != m.Started || m.PoolMisses > m.PoolGets || m.PoolMisses == 0 {
		t.Errorf("pool gets=%d misses=%d started=%d", m.PoolGets, m.PoolMisses, m.Started)
	}
	var runsSeen int64
	for _, c := range m.StepsPerRun.Counts {
		runsSeen += c
	}
	if runsSeen != okRuns {
		t.Errorf("steps histogram holds %d runs, want %d", runsSeen, okRuns)
	}

	// Rejected runs are counted without touching started/in-flight.
	if _, err := eng.Run(context.Background(), RunOptions{MaxSteps: -1}); err == nil {
		t.Fatal("negative MaxSteps accepted")
	}
	m = eng.Metrics()
	if m.Rejected != 1 || m.Started != okRuns+failRuns {
		t.Errorf("rejected=%d started=%d after invalid options", m.Rejected, m.Started)
	}
}

// TestMetricsExposition checks the two export formats: the snapshot
// marshals to JSON (the expvar shape) and WriteTo emits Prometheus text
// with the expected series.
func TestMetricsExposition(t *testing.T) {
	prog, err := Compile(`main :- write(hi), nl.`)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(prog)
	if _, err := eng.Run(context.Background(), RunOptions{}); err != nil {
		t.Fatal(err)
	}

	data, err := json.Marshal(eng.Metrics())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"started":1`)) {
		t.Errorf("snapshot JSON missing started counter: %s", data)
	}

	var buf bytes.Buffer
	if err := eng.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, series := range []string{
		"symbol_queries_started_total 1",
		"symbol_queries_succeeded_total 1",
		"symbol_queries_in_flight 0",
		"symbol_pool_gets_total 1",
		"symbol_steps_total ",
		"symbol_run_latency_seconds_bucket{le=\"+Inf\"} 1",
		"symbol_run_steps_count 1",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("Prometheus text missing %q:\n%s", series, text)
		}
	}

	eng.PublishExpvar("symbol_test_engine_" + t.Name())
}

// TestRunContextAPI exercises the context-first entry points and the
// functional options built on them.
func TestRunContextAPI(t *testing.T) {
	prog, err := Compile(`
		color(red). color(green). color(blue).
		main :- color(C), C = blue, write(C), nl.
	`)
	if err != nil {
		t.Fatal(err)
	}

	res, err := prog.RunContext(context.Background(), WithTrace(64), WithHeapWords(1<<16))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded || res.Output != "blue\n" {
		t.Fatalf("ok=%v output=%q", res.Succeeded, res.Output)
	}
	if res.Stats.Steps == 0 || res.Stats.Steps != res.Steps {
		t.Errorf("stats steps=%d result steps=%d", res.Stats.Steps, res.Steps)
	}
	if res.ChoicePoints == 0 {
		t.Errorf("backtracking program created no choice points: %+v", res.Stats)
	}
	if len(res.Events) == 0 {
		t.Fatal("WithTrace(64) produced no events")
	}
	var pushes, halts int
	for _, e := range res.Events {
		switch e.Kind {
		case EvChoicePush:
			pushes++
		case EvHalt:
			halts++
		}
	}
	if pushes == 0 || halts != 1 {
		t.Errorf("events: %d cp_push, %d halt, want >0 and 1", pushes, halts)
	}
	if got := res.String(); !strings.Contains(got, "memory") || !strings.Contains(got, "ok=true") {
		t.Errorf("Result.String() = %q, want mix table", got)
	}

	// WithMaxSteps surfaces the usual typed fault.
	if _, err := prog.RunContext(context.Background(), WithMaxSteps(3)); !errors.Is(err, ErrStepLimit) {
		t.Errorf("WithMaxSteps(3): err=%v, want ErrStepLimit", err)
	}

	// A cancelled context aborts the run (polled every CheckInterval steps,
	// so use a program that cannot finish on its own).
	spin, err := Compile(`loop :- loop. main :- loop.`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := spin.RunContext(ctx); !errors.Is(err, ErrCanceled) {
		t.Errorf("cancelled ctx: err=%v, want ErrCanceled", err)
	}

	// Tracing must not perturb the numbers the fast path reports.
	plain, err := prog.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if classCounts(&plain.Stats) != classCounts(&res.Stats) || plain.Steps != res.Steps {
		t.Errorf("traced run diverged: %+v vs %+v", res.Stats, plain.Stats)
	}
}

// TestSimulateContextStats checks that the VLIW path carries the same Stats
// record: cycles populated, classes summing to issued ops, and the mix
// table rendering through SimResult.String.
func TestSimulateContextStats(t *testing.T) {
	prog, err := Compile(`
		app([], Y, Y).
		app([H|T], Y, [H|Z]) :- app(T, Y, Z).
		main :- app([1,2,3], [4], R), write(R), nl.
	`)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := prog.SimulateContext(context.Background(), WithTrace(32))
	if err != nil {
		t.Fatal(err)
	}
	if !sim.Succeeded {
		t.Fatalf("simulation failed: %+v", sim)
	}
	if sim.Stats.Cycles != sim.Cycles || sim.Cycles == 0 {
		t.Errorf("stats cycles=%d result cycles=%d", sim.Stats.Cycles, sim.Cycles)
	}
	if sim.Stats.Steps != sim.Ops {
		t.Errorf("stats steps=%d != issued ops %d", sim.Stats.Steps, sim.Ops)
	}
	if sum := sim.MemOps + sim.ALUOps + sim.MoveOps + sim.ControlOps + sim.SysOps; sum != sim.Stats.Steps {
		t.Errorf("class sum %d != steps %d", sum, sim.Stats.Steps)
	}
	if len(sim.Events) == 0 {
		t.Error("WithTrace(32) produced no VLIW events")
	}
	if got := sim.String(); !strings.Contains(got, "memory") {
		t.Errorf("SimResult.String() = %q, want mix table", got)
	}
}

// TestScheduleWithOptions checks the functional-option scheduling entry
// point against the struct form it wraps.
func TestScheduleWithOptions(t *testing.T) {
	prog, err := Compile(`
		app([], Y, Y).
		app([H|T], Y, [H|Z]) :- app(T, Y, Z).
		main :- app([1,2], [3], R), write(R), nl.
	`)
	if err != nil {
		t.Fatal(err)
	}
	a, err := prog.ScheduleWith(DefaultMachine(3), WithBasicBlocksOnly())
	if err != nil {
		t.Fatal(err)
	}
	b, err := prog.Schedule(DefaultMachine(3), ScheduleOptions{BasicBlocksOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Words() != b.Words() || a.Ops() != b.Ops() {
		t.Errorf("ScheduleWith: %d words/%d ops, Schedule: %d words/%d ops",
			a.Words(), a.Ops(), b.Words(), b.Ops())
	}
}
