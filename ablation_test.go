package symbol

import (
	"testing"

	"symbol/internal/benchprog"
)

// Ablation configurations must all preserve program semantics; their only
// legitimate effect is on cycle counts.

func TestAblationRegionDisambiguation(t *testing.T) {
	src := benchMust(t, "qsort")
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := prog.Run()
	if err != nil {
		t.Fatal(err)
	}
	base := DefaultMachine(3)
	oracle := DefaultMachine(3)
	oracle.DisambiguateRegions = true

	var cycles [2]int64
	for i, conf := range []MachineConfig{base, oracle} {
		sched, err := prog.Schedule(conf, ScheduleOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sim, err := sched.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		if sim.Output != seq.Output {
			t.Fatalf("config %d diverged", i)
		}
		cycles[i] = sim.Cycles
	}
	t.Logf("qsort 3-unit: conservative %d cycles, region-oracle %d cycles (%.1f%% gain)",
		cycles[0], cycles[1], 100*(1-float64(cycles[1])/float64(cycles[0])))
	if cycles[1] > cycles[0] {
		t.Error("an oracle disambiguator cannot make the schedule worse")
	}
}

func TestAblationTailDuplication(t *testing.T) {
	src := benchMust(t, "serialise")
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := prog.Run()
	if err != nil {
		t.Fatal(err)
	}
	var lens [2]float64
	var cycles [2]int64
	for i, opts := range []ScheduleOptions{{}, {NoTailDuplication: true}} {
		sched, err := prog.Schedule(DefaultMachine(3), opts)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := sched.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		if sim.Output != seq.Output {
			t.Fatalf("opts %d diverged", i)
		}
		lens[i] = sched.AvgTraceLen()
		cycles[i] = sim.Cycles
	}
	t.Logf("with dup: len %.1f, %d cycles; without: len %.1f, %d cycles",
		lens[0], cycles[0], lens[1], cycles[1])
	if lens[0] <= lens[1] {
		t.Error("tail duplication must lengthen the average trace")
	}
	if cycles[0] > cycles[1] {
		t.Error("tail duplication must not slow the hot path down")
	}
}

func TestAblationArithChecks(t *testing.T) {
	b, err := benchprog.Get("tak")
	if err != nil {
		t.Fatal(err)
	}
	checked, err := CompileWith(b.Source, Options{ArithChecks: true})
	if err != nil {
		t.Fatal(err)
	}
	unchecked, err := CompileWith(b.Source, Options{ArithChecks: false})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := checked.Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := unchecked.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Output != r2.Output || !r1.Succeeded || !r2.Succeeded {
		t.Fatal("arith-check ablation changed the answer")
	}
	if r2.Steps >= r1.Steps {
		t.Errorf("mode-analysis model must execute fewer ICIs: %d vs %d", r2.Steps, r1.Steps)
	}
	t.Logf("tak: %d ICIs with checks, %d without (perfect mode analysis)", r1.Steps, r2.Steps)
}

func TestAblationTraceThreshold(t *testing.T) {
	// Raising the probability threshold shortens traces but must keep
	// correctness.
	src := benchMust(t, "queens_8")
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := prog.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, max := range []int{1, 2, 4} {
		sched, err := prog.Schedule(DefaultMachine(3), ScheduleOptions{MaxTraceBlocks: max})
		if err != nil {
			t.Fatal(err)
		}
		sim, err := sched.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		if sim.Output != seq.Output {
			t.Fatalf("MaxTraceBlocks=%d diverged", max)
		}
	}
}

func TestAblationSplitFormats(t *testing.T) {
	// The prototype's two instruction formats (§5.1) reduce parallelism
	// but never change semantics.
	src := benchMust(t, "serialise")
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := prog.Run()
	if err != nil {
		t.Fatal(err)
	}
	unified := DefaultMachine(3)
	split := DefaultMachine(3)
	split.SplitFormats = true
	var cycles [2]int64
	for i, conf := range []MachineConfig{unified, split} {
		sched, err := prog.Schedule(conf, ScheduleOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := sched.VLIW().Validate(); err != nil {
			t.Fatal(err)
		}
		sim, err := sched.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		if sim.Output != seq.Output {
			t.Fatalf("config %d diverged", i)
		}
		cycles[i] = sim.Cycles
	}
	t.Logf("serialise 3-unit: unified %d cycles, split formats %d cycles (+%.1f%%)",
		cycles[0], cycles[1], 100*(float64(cycles[1])/float64(cycles[0])-1))
	if cycles[1] < cycles[0] {
		t.Error("a format restriction cannot speed the machine up")
	}
}
