package symbol

import (
	"context"
	"errors"
	"testing"
	"time"

	"symbol/internal/benchprog"
)

const streamKB = `
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
`

// streamAll drains a fresh stream of goal against kb under opts, returning
// the per-solution results. Fatal on compile or stream errors.
func streamAll(t *testing.T, kb, goal string, opts ...RunOption) []*Result {
	t.Helper()
	prog, err := CompileQuery(kb, goal)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(prog)
	sols, err := eng.QueryContext(context.Background(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer sols.Close()
	var out []*Result
	for sols.Next() {
		out = append(out, sols.Result())
	}
	if err := sols.Err(); err != nil {
		t.Fatalf("stream error after %d solutions: %v", len(out), err)
	}
	return out
}

// TestQueryStreamsSolutions is the basic streaming contract: every solution
// of a nondeterministic goal arrives exactly once, in backtracking order,
// with per-solution Output and cumulative Steps.
func TestQueryStreamsSolutions(t *testing.T) {
	sols := streamAll(t, streamKB, "app(X, Y, [1,2,3])")
	want := []string{
		"X = []\nY = [1,2,3]\n",
		"X = [1]\nY = [2,3]\n",
		"X = [1,2]\nY = [3]\n",
		"X = [1,2,3]\nY = []\n",
	}
	if len(sols) != len(want) {
		t.Fatalf("got %d solutions, want %d", len(sols), len(want))
	}
	prev := int64(0)
	for i, r := range sols {
		if r.Output != want[i] {
			t.Errorf("solution %d output %q, want %q", i, r.Output, want[i])
		}
		if !r.Succeeded {
			t.Errorf("solution %d not marked succeeded", i)
		}
		if r.Steps <= prev {
			t.Errorf("solution %d steps %d not cumulative (prev %d)", i, r.Steps, prev)
		}
		prev = r.Steps
	}
}

// TestQueryStreamDifferential is the acceptance differential: the full
// 92-solution 8-queens stream must be identical — count, per-solution
// Output, per-solution cumulative Steps — across all four dispatch modes
// (fused, closure-threaded, plain predecoded, legacy interpreter).
func TestQueryStreamDifferential(t *testing.T) {
	b, err := benchprog.Get("queens_8")
	if err != nil {
		t.Fatal(err)
	}
	modes := []struct {
		name string
		opts []RunOption
	}{
		{"fused", nil},
		{"threaded", []RunOption{WithDispatch(DispatchThreaded)}},
		{"nofuse", []RunOption{WithDispatch(DispatchNoFuse)}},
		{"legacy", []RunOption{WithTrace(4)}},
	}
	var ref []*Result
	for _, m := range modes {
		sols := streamAll(t, b.Source, "queens(8, Qs)", m.opts...)
		if len(sols) != 92 {
			t.Fatalf("%s: got %d solutions, want 92", m.name, len(sols))
		}
		if ref == nil {
			ref = sols
			continue
		}
		for i := range sols {
			if sols[i].Output != ref[i].Output {
				t.Fatalf("%s: solution %d output %q, fused %q",
					m.name, i, sols[i].Output, ref[i].Output)
			}
			if sols[i].Steps != ref[i].Steps {
				t.Fatalf("%s: solution %d steps %d, fused %d",
					m.name, i, sols[i].Steps, ref[i].Steps)
			}
		}
	}
}

// TestQueryFirstSolutionMatchesRun pins the streaming API to the one-shot
// API: the first streamed solution is byte- and step-identical to
// Engine.Run of the same program.
func TestQueryFirstSolutionMatchesRun(t *testing.T) {
	prog, err := CompileQuery(streamKB, "app(X, Y, [1,2,3])")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(prog)
	one, err := eng.Run(context.Background(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sols, err := eng.Query(context.Background(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sols.Close()
	if !sols.Next() {
		t.Fatalf("no first solution: %v", sols.Err())
	}
	r := sols.Result()
	if r.Output != one.Output || r.Steps != one.Steps {
		t.Fatalf("first streamed solution (%q, %d steps) != Run (%q, %d steps)",
			r.Output, r.Steps, one.Output, one.Steps)
	}
}

// TestSolutionsCloseReleasesState covers cheap abandonment: closing a
// stream mid-way settles the engine's metrics exactly once, frees the
// in-flight slot, and recycles the pooled state for later runs.
func TestSolutionsCloseReleasesState(t *testing.T) {
	prog, err := CompileQuery(streamKB, "app(X, Y, [1,2,3])")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(prog)
	sols, err := eng.Query(context.Background(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sols.Next() || !sols.Next() {
		t.Fatalf("expected two solutions before Close: %v", sols.Err())
	}
	if m := eng.Metrics(); m.InFlight != 1 {
		t.Fatalf("suspended stream holds %d in-flight slots, want 1", m.InFlight)
	}
	if err := sols.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Idempotent, and Next after Close stays false.
	if err := sols.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if sols.Next() || sols.More() {
		t.Fatal("Next/More true after Close")
	}
	m := eng.Metrics()
	if m.InFlight != 0 {
		t.Fatalf("in-flight %d after Close, want 0", m.InFlight)
	}
	if m.Started != 1 || m.Succeeded != 1 {
		t.Fatalf("stream settled as started=%d succeeded=%d, want 1/1", m.Started, m.Succeeded)
	}
	// WaitIdle must not see a phantom run, and the pool must still work.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := eng.WaitIdle(ctx); err != nil {
		t.Fatalf("WaitIdle after Close: %v", err)
	}
	res, err := eng.Run(context.Background(), RunOptions{})
	if err != nil || !res.Succeeded {
		t.Fatalf("run on recycled state: %v, %+v", err, res)
	}
}

// TestSolutionsAbandonStress abandons many streams at different depths
// under -race: pooled state recycling must stay consistent and the engine
// must end fully idle with exact metrics.
func TestSolutionsAbandonStress(t *testing.T) {
	prog, err := CompileQuery(streamKB, "app(X, Y, [1,2,3,4,5])")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(prog)
	const streams = 24
	done := make(chan error, streams)
	for i := 0; i < streams; i++ {
		go func(depth int) {
			sols, err := eng.Query(context.Background(), RunOptions{})
			if err != nil {
				done <- err
				return
			}
			for j := 0; j <= depth%6 && sols.Next(); j++ {
			}
			done <- sols.Close()
		}(i)
	}
	for i := 0; i < streams; i++ {
		if err := <-done; err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
	}
	m := eng.Metrics()
	if m.InFlight != 0 {
		t.Fatalf("in-flight %d after all streams closed, want 0", m.InFlight)
	}
	if m.Started != streams {
		t.Fatalf("started %d, want %d", m.Started, streams)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := eng.WaitIdle(ctx); err != nil {
		t.Fatalf("WaitIdle: %v", err)
	}
}

// TestSolutionsMaxStepsSpansResumes: the step budget is a property of the
// whole stream, not of each segment — a budget generous enough for the
// first solutions must still abort the stream once the cumulative count
// crosses it.
func TestSolutionsMaxStepsSpansResumes(t *testing.T) {
	prog, err := CompileQuery(streamKB, "app(X, Y, [1,2,3,4,5,6,7,8])")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(prog)

	// Measure the unconstrained stream to pick a budget that lands
	// strictly between the first solution and exhaustion.
	free, err := eng.Query(context.Background(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var stepsAt []int64
	for free.Next() {
		stepsAt = append(stepsAt, free.Result().Steps)
	}
	free.Close()
	if len(stepsAt) < 3 {
		t.Fatalf("want >= 3 solutions, got %d", len(stepsAt))
	}
	budget := stepsAt[len(stepsAt)-2]

	sols, err := eng.Query(context.Background(), RunOptions{MaxSteps: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer sols.Close()
	n := 0
	for sols.Next() {
		n++
	}
	if err := sols.Err(); !errors.Is(err, ErrStepLimit) {
		t.Fatalf("after %d solutions err=%v, want ErrStepLimit", n, err)
	}
	if n == 0 || n >= len(stepsAt) {
		t.Fatalf("budget %d yielded %d solutions, want 1..%d", budget, n, len(stepsAt)-1)
	}
	if m := eng.Metrics(); m.InFlight != 0 {
		t.Fatalf("in-flight %d after stream fault, want 0", m.InFlight)
	}
}

// TestSolutionsCancelBetweenSolutions: a context cancelled while the
// stream is suspended aborts the next resume as the typed canceled fault
// and settles the stream.
func TestSolutionsCancelBetweenSolutions(t *testing.T) {
	prog, err := CompileQuery(streamKB, "app(X, Y, [1,2,3])")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(prog)
	ctx, cancel := context.WithCancel(context.Background())
	sols, err := eng.Query(ctx, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sols.Close()
	if !sols.Next() {
		t.Fatalf("first solution: %v", sols.Err())
	}
	cancel()
	if sols.Next() {
		t.Fatal("Next succeeded after cancel")
	}
	if err := sols.Err(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err=%v, want ErrCanceled", err)
	}
	if m := eng.Metrics(); m.InFlight != 0 {
		t.Fatalf("in-flight %d after cancel, want 0", m.InFlight)
	}
}

// TestSolutionsAttachRebinds: a stream parked past one context's lifetime
// keeps working when re-attached to a live context — the embedding pattern
// behind paginated serving.
func TestSolutionsAttachRebinds(t *testing.T) {
	prog, err := CompileQuery(streamKB, "app(X, Y, [1,2,3])")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(prog)
	sols, err := eng.Query(context.Background(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sols.Close()

	page1, cancel1 := context.WithCancel(context.Background())
	sols.Attach(page1)
	if !sols.Next() {
		t.Fatalf("page 1: %v", sols.Err())
	}
	cancel1() // the old page's context dying must not poison the stream

	page2, cancel2 := context.WithTimeout(context.Background(), time.Minute)
	defer cancel2()
	sols.Attach(page2)
	n := 1
	for sols.Next() {
		n++
	}
	if err := sols.Err(); err != nil {
		t.Fatalf("page 2: %v", err)
	}
	if n != 4 {
		t.Fatalf("got %d solutions across pages, want 4", n)
	}
}

// TestSolutionsNoSolution: a goal with no answers yields an empty stream
// with nil Err, and settles as a no-solution run.
func TestSolutionsNoSolution(t *testing.T) {
	prog, err := CompileQuery(streamKB, "app([9], _, [1,2])")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(prog)
	sols, err := eng.Query(context.Background(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sols.Close()
	if sols.Next() {
		t.Fatalf("unexpected solution %+v", sols.Result())
	}
	if err := sols.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	m := eng.Metrics()
	if m.Started != 1 || m.Succeeded != 0 || m.NoSolution != 1 || m.InFlight != 0 {
		t.Fatalf("metrics started=%d succeeded=%d nosolution=%d inflight=%d, want 1/0/1/0",
			m.Started, m.Succeeded, m.NoSolution, m.InFlight)
	}
}

// TestSolutionsAllIterator exercises the range-over-func adapter,
// including early break (which must Close the stream).
func TestSolutionsAllIterator(t *testing.T) {
	prog, err := CompileQuery(streamKB, "app(X, Y, [1,2,3])")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(prog)
	sols, err := eng.Query(context.Background(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for r := range sols.All() {
		if r.Output == "" {
			t.Error("empty solution output")
		}
		n++
		if n == 2 {
			break
		}
	}
	if n != 2 {
		t.Fatalf("iterated %d solutions, want 2", n)
	}
	if sols.Next() {
		t.Fatal("stream not closed after breaking out of All")
	}
	if m := eng.Metrics(); m.InFlight != 0 || m.Succeeded != 1 {
		t.Fatalf("metrics inflight=%d succeeded=%d after All break, want 0/1", m.InFlight, m.Succeeded)
	}
}

// TestSolutionsStatsCumulative: the stats attached to each solution and
// the settled totals cover the whole stream — Wall counts execution only,
// so a long suspension between Next calls must not inflate it.
func TestSolutionsStatsCumulative(t *testing.T) {
	prog, err := CompileQuery(streamKB, "app(X, Y, [1,2,3])")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(prog)
	sols, err := eng.Query(context.Background(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sols.Close()
	if !sols.Next() {
		t.Fatalf("first solution: %v", sols.Err())
	}
	w1 := sols.Result().Stats.Wall
	time.Sleep(30 * time.Millisecond) // suspended: must not be billed
	if !sols.Next() {
		t.Fatalf("second solution: %v", sols.Err())
	}
	r := sols.Result()
	if r.Stats.Wall < w1 {
		t.Fatalf("wall went backwards across resume: %v -> %v", w1, r.Stats.Wall)
	}
	if r.Stats.Wall > w1+20*time.Millisecond {
		t.Fatalf("wall %v includes suspension time (first segment %v)", r.Stats.Wall, w1)
	}
	sum := r.Stats.MemOps + r.Stats.ALUOps + r.Stats.MoveOps + r.Stats.ControlOps + r.Stats.SysOps
	if sum != r.Steps {
		t.Fatalf("op-class counts sum to %d, cumulative steps %d", sum, r.Steps)
	}
}
