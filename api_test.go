package symbol

import (
	"strings"
	"testing"
)

const apiSrc = `
len([], 0).
len([_|T], N) :- len(T, M), N is M+1.
main :- len([a,b,c,d], N), write(N), nl.
`

func TestSeqCyclesConsistency(t *testing.T) {
	prog, err := Compile(apiSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Run()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := prog.SeqCycles()
	if err != nil {
		t.Fatal(err)
	}
	// Every ICI costs 1 or 2 cycles sequentially.
	if seq < res.Steps || seq > 2*res.Steps {
		t.Errorf("seq cycles %d out of [steps, 2*steps] = [%d, %d]", seq, res.Steps, 2*res.Steps)
	}
	// Cached: second call returns the same value.
	seq2, err := prog.SeqCycles()
	if err != nil || seq2 != seq {
		t.Error("SeqCycles must be deterministic")
	}
}

func TestAnalyzeFields(t *testing.T) {
	prog, err := Compile(apiSrc)
	if err != nil {
		t.Fatal(err)
	}
	a, err := prog.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	sum := a.Mix.ALU + a.Mix.Memory + a.Mix.Move + a.Mix.Control + a.Mix.Sys
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("mix fractions sum to %f", sum)
	}
	if a.Mix.Total <= 0 {
		t.Error("empty mix")
	}
	if a.AmdahlLimit <= 1 {
		t.Errorf("Amdahl limit %f", a.AmdahlLimit)
	}
	if a.Branches.DynBranches <= 0 || a.Branches.StaticBranches <= 0 {
		t.Error("branch report empty")
	}
	if len(a.Branches.Histogram) != 20 {
		t.Errorf("histogram bins %d", len(a.Branches.Histogram))
	}
	if a.Branches.AvgFaultyPrediction < 0 || a.Branches.AvgFaultyPrediction > 0.5 {
		t.Errorf("P_fp %f out of range", a.Branches.AvgFaultyPrediction)
	}
}

func TestScheduledAccessors(t *testing.T) {
	prog, err := Compile(apiSrc)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := prog.Schedule(DefaultMachine(2), ScheduleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sched.Words() <= 0 || sched.Ops() <= 0 {
		t.Error("empty schedule")
	}
	if sched.Ops() < sched.Words() {
		t.Error("more words than ops on a 2-unit machine?")
	}
	if sched.AvgTraceLen() <= 0 {
		t.Error("trace stats missing")
	}
	if !strings.Contains(sched.Listing(), "trace") {
		t.Error("listing missing trace markers")
	}
	if sched.VLIW() == nil {
		t.Error("VLIW accessor nil")
	}
	sim, err := sched.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if sim.String() == "" || !sim.Succeeded {
		t.Error("sim result broken")
	}
	if sim.Words+sim.Bubble > sim.Cycles {
		t.Errorf("cycle accounting: words %d + bubbles %d > cycles %d",
			sim.Words, sim.Bubble, sim.Cycles)
	}
}

func TestMachineConstructors(t *testing.T) {
	if DefaultMachine(3).Units != 3 {
		t.Error("DefaultMachine")
	}
	if UnboundedMachine().Units < 1000 {
		t.Error("UnboundedMachine")
	}
	if BAMMachine().Units != 1 || BAMMachine().BranchBubble != 0 {
		t.Error("BAMMachine")
	}
	prog, _ := Compile(apiSrc)
	if _, err := prog.Schedule(MachineConfig{}, ScheduleOptions{}); err == nil {
		t.Error("zero config must be rejected")
	}
}

func TestSpeedupHelper(t *testing.T) {
	if Speedup(100, 50) != 2.0 {
		t.Error("speedup math")
	}
	if Speedup(100, 0) != 0 {
		t.Error("division by zero guard")
	}
}

func TestOptionsMaxSteps(t *testing.T) {
	prog, err := CompileWith(`
loop :- loop.
main :- loop.
`, Options{ArithChecks: true, MaxSteps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Run(); err == nil {
		t.Error("step limit must abort the infinite loop")
	}
}

func TestDefaultOptionsValues(t *testing.T) {
	o := DefaultOptions()
	if !o.ArithChecks {
		t.Error("arith checks default on")
	}
}
