package symbol

import (
	"context"
	"fmt"
	"iter"
	"sync"
	"time"

	"symbol/internal/emu"
	"symbol/internal/fault"
	"symbol/internal/ic"
	"symbol/internal/obs"
)

// Solutions streams the answers of one query, one solution per Next call,
// in the style of database/sql.Rows:
//
//	sols, err := eng.QueryContext(ctx)
//	if err != nil { ... }
//	defer sols.Close()
//	for sols.Next() {
//	    fmt.Print(sols.Result().Output)
//	}
//	if err := sols.Err(); err != nil { ... }
//
// Between Next calls the machine is suspended at the last solution — the
// pooled state (heap, choice-point stack, trail) stays live, and the next
// Next backtracks into the next untried alternative. Close abandons a
// stream mid-way in O(dirty pages): the state is reset and returned to the
// engine's pool without running the query to exhaustion.
//
// The engine's metrics count the whole stream as one run: it occupies one
// in-flight slot from Query until the stream finishes (exhaustion, error,
// or Close), and settles exactly once — as succeeded if at least one
// solution was produced. Step and deadline budgets span the whole stream:
// MaxSteps bounds the cumulative step count across all solutions, and the
// Wall recorded on settle counts only execution time, not time spent
// suspended between Next calls.
//
// A Solutions is safe for concurrent use, but Next/Result/Err form the
// usual iteration protocol and are meant to be driven by one consumer;
// Close may be called from any goroutine (e.g. a timeout sweeper) at any
// time between Next calls.
type Solutions struct {
	mu           sync.Mutex
	eng          *Engine
	m            *emu.Machine
	st           *ic.State
	trace        *obs.Trace
	baseDeadline time.Time

	cur      *Result
	err      error
	sawSol   bool
	started  bool // first segment has run
	closed   bool
	finished bool // terminal: metrics settled, state disposed
	poisoned bool // a guarded panic left the state unsafe to recycle
}

// Next advances to the next solution. It reports false when the stream is
// over: no more solutions, an error (check Err), or the stream was closed.
// The first call runs the query from the start; later calls backtrack.
func (s *Solutions) Next() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.finished {
		return false
	}
	var (
		res *emu.Result
		err error
	)
	func() {
		defer func() {
			if r := recover(); r != nil {
				s.poisoned = true
				err = fmt.Errorf("symbol: internal error: %v", r)
			}
		}()
		if !s.started {
			s.started = true
			res, err = s.m.Run()
		} else {
			res, err = s.m.Resume()
		}
	}()
	if err != nil {
		s.cur = nil
		s.err = err
		s.finish(func() { s.eng.met.RecordFailed(fault.KindOf(err), s.m.Elapsed()) })
		return false
	}
	if res.Status != 0 {
		// Exhausted: the final segment's stats are the cumulative record of
		// the whole stream, including the last (fruitless) backtrack.
		s.cur = nil
		st := res.Stats
		s.finish(func() { s.eng.met.RecordDone(&st, s.sawSol) })
		return false
	}
	r := &Result{Succeeded: true, Output: res.Output, Steps: res.Steps, Stats: res.Stats}
	if s.trace != nil {
		r.Events = s.trace.Events()
		r.EventsDropped = s.trace.Dropped()
	}
	s.cur = r
	s.sawSol = true
	return true
}

// Result returns the solution produced by the last successful Next: its
// Output holds only this solution's text, while Steps and Stats are
// cumulative across the stream so far. It returns nil when Next has not
// produced a solution.
func (s *Solutions) Result() *Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur
}

// Err returns the error that terminated the stream, if any. Exhaustion
// (Next returning false because there are no more solutions) is not an
// error.
func (s *Solutions) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// More reports whether the machine is suspended at a solution, i.e. the
// stream has not finished and a further Next may yield another answer (it
// may still come back empty-handed — More does not look ahead).
func (s *Solutions) More() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.closed && !s.finished && s.m.More()
}

// Attach rebinds the stream's cancellation and deadline to ctx for
// subsequent Next calls, merging any ctx deadline with the per-run
// Deadline the stream was created with. It lets an embedder that parks a
// suspended stream (e.g. a paginated server) give each resumption its own
// request-scoped abort conditions. A nil ctx detaches: no cancellation,
// only the original deadline. Attach does not interrupt a Next already in
// progress on another goroutine.
func (s *Solutions) Attach(ctx context.Context) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.finished {
		return
	}
	s.m.SetInterrupt(interruptOf(ctx))
	d := s.baseDeadline
	if ctx != nil {
		if cd, ok := ctx.Deadline(); ok && (d.IsZero() || cd.Before(d)) {
			d = cd
		}
	}
	s.m.SetDeadline(d)
}

// Close ends the stream. If it has not already finished, the engine's
// metrics are settled (the stream counts as succeeded if it produced at
// least one solution, and its cumulative stats so far are recorded) and
// the machine state is reset and returned to the pool. Close is
// idempotent and returns the stream's terminal error, like Err.
func (s *Solutions) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.err
	}
	s.closed = true
	s.cur = nil
	if !s.finished {
		st := s.m.Stats()
		s.finish(func() { s.eng.met.RecordDone(&st, s.sawSol) })
	}
	return s.err
}

// finish settles the stream exactly once: record the terminal metrics
// outcome (balancing the RecordStart made by Query) and dispose of the
// pooled state — recycled normally, dropped if a panic may have left its
// dirty set incomplete.
func (s *Solutions) finish(record func()) {
	if s.finished {
		return
	}
	s.finished = true
	record()
	if !s.poisoned {
		s.eng.release(s.st)
	}
}

// All adapts the stream to a range-over-func iterator. The stream is
// closed when the loop ends, however it ends; check Err afterwards to
// distinguish exhaustion from an error:
//
//	for r := range sols.All() {
//	    fmt.Print(r.Output)
//	}
//	if err := sols.Err(); err != nil { ... }
func (s *Solutions) All() iter.Seq[*Result] {
	return func(yield func(*Result) bool) {
		defer s.Close()
		for s.Next() {
			if !yield(s.Result()) {
				return
			}
		}
	}
}
