// Package symbol is the public API of the SYMBOL system, a from-scratch
// reproduction of "Instruction-level Parallelism in Prolog: Analysis and
// Architectural Support" (De Gloria & Faraboschi, ISCA 1992).
//
// The pipeline mirrors the paper's evaluation system (Figure 1):
//
//	Prolog source → BAM code → Intermediate Code (ICI)
//	             → sequential emulation (answers + profile)
//	             → global compaction (trace scheduling)
//	             → VLIW simulation (cycles per configuration)
//
// Quick start:
//
//	prog, err := symbol.Compile(src)
//	res, err := prog.Run()                        // sequential answers
//	prof, err := prog.Profile()                   // Expect / Probability
//	sched, err := prog.Schedule(symbol.MachineConfig{Units: 3})
//	cycles, err := sched.Simulate()               // measured VLIW cycles
package symbol

import (
	"fmt"
	"sync"
	"time"

	"symbol/internal/bam"
	"symbol/internal/compile"
	"symbol/internal/emu"
	"symbol/internal/expand"
	"symbol/internal/fault"
	"symbol/internal/ic"
	"symbol/internal/parse"
	"symbol/internal/rename"
)

// Typed fault sentinels, re-exported so callers can classify failures with
// errors.Is without importing internal packages. Both the sequential
// emulator and the VLIW simulator report these kinds.
var (
	ErrHeapOverflow  = fault.ErrHeapOverflow
	ErrEnvOverflow   = fault.ErrEnvOverflow
	ErrCPOverflow    = fault.ErrCPOverflow
	ErrTrailOverflow = fault.ErrTrailOverflow
	ErrPDLOverflow   = fault.ErrPDLOverflow
	ErrStepLimit     = fault.ErrStepLimit
	ErrCycleLimit    = fault.ErrCycleLimit
	ErrDeadline      = fault.ErrDeadline
	ErrZeroDivide    = fault.ErrZeroDivide
	ErrInvalidMemory = fault.ErrInvalidMemory
	ErrUncaughtThrow = fault.ErrUncaughtThrow
	ErrCanceled      = fault.ErrCanceled
)

// guard converts an escaped panic into an error at the API boundary, so no
// malformed program or internal bug can crash an embedding process.
func guard(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("symbol: internal panic: %v", r)
	}
}

// RunOptions bound one execution (sequential or simulated): resource
// budgets, a wall-clock deadline, and per-area memory sizes in words. Zero
// fields mean the defaults; area sizes are clamped to the compile-time
// maximums. Overflowing a shrunken area raises a typed fault that Prolog
// code can intercept with catch/3 as resource_error(Area).
type RunOptions struct {
	MaxSteps   int64     // sequential ICI budget (0 = default)
	MaxCycles  int64     // VLIW cycle budget (0 = default)
	Deadline   time.Time // wall-clock bound (zero = none)
	HeapWords  int64
	EnvWords   int64
	CPWords    int64
	TrailWords int64
	PDLWords   int64
	// NoFuse disables superinstruction fusion in the sequential emulator,
	// running the plain predecoded stream instead. Observable behaviour is
	// identical either way; the switch exists for benchmarking the fusion
	// layer and for pinning down a miscompare to it.
	NoFuse bool
}

// OptionError reports a RunOptions field holding a nonsensical value (for
// example a negative area size or budget). It is returned before any
// machine state is touched, so an invalid request can never fault or panic
// deep inside an executor.
type OptionError struct {
	Field string // the offending RunOptions field name
	Value int64
}

func (e *OptionError) Error() string {
	return fmt.Sprintf("symbol: invalid RunOptions.%s: %d", e.Field, e.Value)
}

// Validate checks the options. Zero values are always valid (they mean the
// defaults); negative budgets and negative area sizes are rejected with a
// *OptionError. Oversized areas are not an error — ic.Layout clamps them to
// the compile-time maximums.
func (o RunOptions) Validate() error {
	for _, f := range []struct {
		name string
		v    int64
	}{
		{"MaxSteps", o.MaxSteps},
		{"MaxCycles", o.MaxCycles},
		{"HeapWords", o.HeapWords},
		{"EnvWords", o.EnvWords},
		{"CPWords", o.CPWords},
		{"TrailWords", o.TrailWords},
		{"PDLWords", o.PDLWords},
	} {
		if f.v < 0 {
			return &OptionError{Field: f.name, Value: f.v}
		}
	}
	return nil
}

func (o RunOptions) layout() ic.Layout {
	return ic.Layout{
		HeapWords:  o.HeapWords,
		EnvWords:   o.EnvWords,
		CPWords:    o.CPWords,
		TrailWords: o.TrailWords,
		PDLWords:   o.PDLWords,
	}
}

func expandUnit(unit *bam.Unit, c *compile.Compiler) (*ic.Program, error) {
	prog, err := expand.Translate(unit, c.Atoms())
	if err != nil {
		return nil, err
	}
	return rename.Fold(prog), nil
}

// Options configure compilation.
type Options struct {
	// ArithChecks controls runtime tag checking on arithmetic (default on).
	ArithChecks bool
	// MaxSteps bounds sequential emulation (0 = default limit).
	MaxSteps int64
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options {
	return Options{ArithChecks: true}
}

// Program is a compiled Prolog program ready for emulation and scheduling.
// It is immutable after CompileWith and safe to share across goroutines:
// the only lazily computed piece of state, the execution profile, is built
// under a sync.Once.
type Program struct {
	opts      Options
	bam       *bam.Unit
	icp       *ic.Program
	undefined []string

	profOnce sync.Once
	profile  *emu.Profile
	profErr  error
}

// Compile parses and compiles src (which must define main/0) with default
// options.
func Compile(src string) (*Program, error) {
	return CompileWith(src, DefaultOptions())
}

// CompileWith parses and compiles src with explicit options.
func CompileWith(src string, opts Options) (_ *Program, err error) {
	defer guard(&err)
	clauses, err := parse.All(src)
	if err != nil {
		return nil, fmt.Errorf("symbol: %w", err)
	}
	c := compile.New(compile.Options{ArithChecks: opts.ArithChecks})
	if err := c.AddProgram(clauses); err != nil {
		return nil, fmt.Errorf("symbol: %w", err)
	}
	unit, err := c.Compile()
	if err != nil {
		return nil, fmt.Errorf("symbol: %w", err)
	}
	prog, err := expandUnit(unit, c)
	if err != nil {
		return nil, fmt.Errorf("symbol: %w", err)
	}
	var undef []string
	for _, pi := range c.Undefined() {
		undef = append(undef, pi.String())
	}
	return &Program{opts: opts, bam: unit, icp: prog, undefined: undef}, nil
}

// Undefined lists predicates that are called but never defined (calls to
// them fail at run time).
func (p *Program) Undefined() []string { return p.undefined }

// BAMListing returns the BAM assembly produced by the front end.
func (p *Program) BAMListing() string { return p.bam.Listing() }

// ICListing returns the Intermediate Code disassembly.
func (p *Program) ICListing() string { return p.icp.Listing() }

// IC exposes the Intermediate Code program.
func (p *Program) IC() *ic.Program { return p.icp }

// CodeSize returns the number of static ICIs.
func (p *Program) CodeSize() int { return len(p.icp.Code) }

// Run executes the program sequentially and returns its observable result.
func (p *Program) Run() (*Result, error) {
	return p.RunWith(RunOptions{})
}

// RunWith executes the program sequentially under explicit resource bounds.
// Resource faults surface as typed errors (errors.Is against ErrHeapOverflow
// and friends) unless the program catches them with catch/3.
func (p *Program) RunWith(opts RunOptions) (_ *Result, err error) {
	defer guard(&err)
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = p.opts.MaxSteps
	}
	res, err := emu.Run(p.icp, emu.Options{
		MaxSteps: maxSteps,
		Layout:   opts.layout(),
		Deadline: opts.Deadline,
		NoFuse:   opts.NoFuse,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Succeeded: res.Status == 0, Output: res.Output, Steps: res.Steps}, nil
}

// Result is the observable outcome of a program run.
type Result struct {
	// Succeeded reports whether main/0 found a solution.
	Succeeded bool
	// Output is the text written by write/1 and nl/0.
	Output string
	// Steps is the dynamic ICI count.
	Steps int64
}

// Profile runs the sequential emulator with statistics collection and
// caches the result (used by the trace scheduler and the analyses). It
// always runs under the default memory layout: the profile must describe
// the program's normal behaviour, not a fault-injected run.
//
// The profiling run happens exactly once per Program, under a sync.Once, so
// concurrent callers are safe and all observe the same cached profile (or
// the same error).
func (p *Program) Profile() (*emu.Profile, error) {
	p.profOnce.Do(func() {
		defer guard(&p.profErr)
		res, err := emu.Run(p.icp, emu.Options{MaxSteps: p.opts.MaxSteps, Profile: true})
		if err != nil {
			p.profErr = err
			return
		}
		p.profile = res.Profile
	})
	return p.profile, p.profErr
}
