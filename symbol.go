// Package symbol is the public API of the SYMBOL system, a from-scratch
// reproduction of "Instruction-level Parallelism in Prolog: Analysis and
// Architectural Support" (De Gloria & Faraboschi, ISCA 1992).
//
// The pipeline mirrors the paper's evaluation system (Figure 1):
//
//	Prolog source → BAM code → Intermediate Code (ICI)
//	             → sequential emulation (answers + profile)
//	             → global compaction (trace scheduling)
//	             → VLIW simulation (cycles per configuration)
//
// Quick start:
//
//	prog, err := symbol.Load(ctx, src)            // Prolog source or snapshot
//	res, err := prog.RunContext(ctx)              // sequential answers
//	fmt.Print(res.Stats)                          // paper-style op-class mix
//	prof, err := prog.Profile()                   // Expect / Probability
//	sched, err := prog.ScheduleWith(symbol.DefaultMachine(3))
//	sim, err := prog.SimulateContext(ctx)         // measured VLIW cycles
//
// Load is the single compile/load entry point: it accepts Prolog source or
// a binary snapshot (sniffed by magic header), compiles queries against a
// knowledge base via WithGoal, and skips compilation entirely through
// WithSnapshotCache. Programs round-trip through prog.Snapshot() and
// symbolc -o prog.sym. The older Compile/CompileQuery/Run generations
// survive as thin deprecated wrappers in deprecated.go.
//
// Runs accept functional options:
//
//	res, err := prog.RunContext(ctx,
//	    symbol.WithMaxSteps(1e6),
//	    symbol.WithHeapWords(64<<10),
//	    symbol.WithTrace(256))                    // keep last 256 events
//
// For serving many queries, build an Engine (pooled machine state,
// engine-wide metrics):
//
//	eng := symbol.NewEngine(prog)
//	res, err := eng.Run(ctx, symbol.RunOptions{})
//	eng.WriteMetrics(os.Stdout)                   // Prometheus text format
package symbol

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"symbol/internal/bam"
	"symbol/internal/compile"
	"symbol/internal/emu"
	"symbol/internal/expand"
	"symbol/internal/fault"
	"symbol/internal/ic"
	"symbol/internal/obs"
	"symbol/internal/rename"
	"symbol/internal/term"
)

// Stats is the per-run execution record attached to every Result and
// SimResult: dynamic operation-class mix in original-ICI units (comparable
// to the paper's Table 2), memory high-water marks, choice-point and trail
// activity, fault counts, and wall time. See the internal/obs package for
// field semantics.
type Stats = obs.Stats

// Event is one traced executor milestone; EventKind enumerates the kinds.
// Events are collected only when a run opts in via WithTrace /
// RunOptions.TraceEvents.
type (
	Event     = obs.Event
	EventKind = obs.EventKind
)

// Event kinds, re-exported from the observability layer.
const (
	EvCall       = obs.EvCall
	EvExec       = obs.EvExec
	EvReturn     = obs.EvReturn
	EvFail       = obs.EvFail
	EvChoicePush = obs.EvChoicePush
	EvChoicePop  = obs.EvChoicePop
	EvCatch      = obs.EvCatch
	EvThrow      = obs.EvThrow
	EvFault      = obs.EvFault
	EvHalt       = obs.EvHalt
)

// MetricsSnapshot is a point-in-time copy of an Engine's aggregate metrics,
// JSON-serializable and renderable as Prometheus text via WriteTo.
type MetricsSnapshot = obs.Snapshot

// Pressure is the cheap load signal returned by Engine.Pressure, for
// admission-control decisions on every request.
type Pressure = obs.Pressure

// Typed fault sentinels, re-exported so callers can classify failures with
// errors.Is without importing internal packages. Both the sequential
// emulator and the VLIW simulator report these kinds.
var (
	ErrHeapOverflow  = fault.ErrHeapOverflow
	ErrEnvOverflow   = fault.ErrEnvOverflow
	ErrCPOverflow    = fault.ErrCPOverflow
	ErrTrailOverflow = fault.ErrTrailOverflow
	ErrPDLOverflow   = fault.ErrPDLOverflow
	ErrStepLimit     = fault.ErrStepLimit
	ErrCycleLimit    = fault.ErrCycleLimit
	ErrDeadline      = fault.ErrDeadline
	ErrZeroDivide    = fault.ErrZeroDivide
	ErrInvalidMemory = fault.ErrInvalidMemory
	ErrUncaughtThrow = fault.ErrUncaughtThrow
	ErrCanceled      = fault.ErrCanceled
)

// guard converts an escaped panic into an error at the API boundary, so no
// malformed program or internal bug can crash an embedding process.
func guard(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("symbol: internal panic: %v", r)
	}
}

// Dispatch selects the sequential emulator's execution core. The modes are
// observationally identical — same output, Steps, stats, fault points and
// suspend/resume behaviour, enforced differentially — and differ only in
// throughput; see the README's dispatch-mode table for measurements.
type Dispatch uint8

const (
	// DispatchAuto uses the default core. Auto tracks whatever the best
	// general-purpose core is rather than pinning one; today it selects
	// the fused switch loop (threaded is opt-in while it soaks).
	DispatchAuto Dispatch = iota
	// DispatchLegacy is the original non-predecoded reference interpreter,
	// the semantic baseline (and the only core that supports tracing).
	DispatchLegacy
	// DispatchNoFuse runs the plain predecoded stream, one internal op per
	// ICI, with superinstruction fusion disabled.
	DispatchNoFuse
	// DispatchFused runs the fused predecoded stream (superinstructions).
	DispatchFused
	// DispatchThreaded runs the closure-threaded core: the fused stream
	// compiled to per-op closures with operands pre-resolved at build time,
	// chained to their successors with no central dispatch switch.
	DispatchThreaded
)

// String returns the flag-compatible name of the mode.
func (d Dispatch) String() string {
	switch d {
	case DispatchAuto:
		return "auto"
	case DispatchLegacy:
		return "legacy"
	case DispatchNoFuse:
		return "nofuse"
	case DispatchFused:
		return "fused"
	case DispatchThreaded:
		return "threaded"
	}
	return fmt.Sprintf("Dispatch(%d)", uint8(d))
}

// ParseDispatch maps a -dispatch flag value onto the enum. The empty string
// means DispatchAuto.
func ParseDispatch(s string) (Dispatch, error) {
	switch s {
	case "", "auto":
		return DispatchAuto, nil
	case "legacy":
		return DispatchLegacy, nil
	case "nofuse":
		return DispatchNoFuse, nil
	case "fused":
		return DispatchFused, nil
	case "threaded":
		return DispatchThreaded, nil
	}
	return DispatchAuto, fmt.Errorf("symbol: unknown dispatch mode %q (want legacy, nofuse, fused or threaded)", s)
}

// RunOptions bound one execution (sequential or simulated): resource
// budgets, a wall-clock deadline, and per-area memory sizes in words. Zero
// fields mean the defaults; area sizes are clamped to the compile-time
// maximums. Overflowing a shrunken area raises a typed fault that Prolog
// code can intercept with catch/3 as resource_error(Area).
type RunOptions struct {
	MaxSteps   int64     // sequential ICI budget (0 = default)
	MaxCycles  int64     // VLIW cycle budget (0 = default)
	Deadline   time.Time // wall-clock bound (zero = none)
	HeapWords  int64
	EnvWords   int64
	CPWords    int64
	TrailWords int64
	PDLWords   int64
	// Dispatch selects the sequential emulator's execution core (legacy,
	// plain predecoded, fused, or closure-threaded). Observable behaviour is
	// identical across all of them; the knob exists for benchmarking the
	// dispatch layers and for pinning down a miscompare. DispatchAuto (the
	// zero value) defers to NoFuse for compatibility, then to the default
	// core. TraceEvents overrides any choice here: tracing requires the
	// legacy interpreter.
	Dispatch Dispatch
	// NoFuse disables superinstruction fusion in the sequential emulator,
	// running the plain predecoded stream instead.
	//
	// Deprecated: set Dispatch to DispatchNoFuse. NoFuse remains as an
	// alias; setting both to conflicting values is a validation error.
	NoFuse bool
	// TraceEvents, when positive, records the run's last TraceEvents
	// executor milestones (calls, fails, choice-point pushes/pops,
	// catch/throw, faults) into Result.Events / SimResult.Events. Tracing a
	// sequential run routes it onto the reference interpreter, so it is
	// opt-in per run and costs the fast paths nothing when off.
	TraceEvents int
}

// RunOption mutates RunOptions; the With* constructors below are the
// context-first way to configure RunContext and SimulateContext.
type RunOption func(*RunOptions)

// WithMaxSteps bounds the sequential ICI budget.
func WithMaxSteps(n int64) RunOption { return func(o *RunOptions) { o.MaxSteps = n } }

// WithMaxCycles bounds the VLIW cycle budget.
func WithMaxCycles(n int64) RunOption { return func(o *RunOptions) { o.MaxCycles = n } }

// WithDeadline sets a wall-clock bound (contexts with deadlines tighten it
// further).
func WithDeadline(t time.Time) RunOption { return func(o *RunOptions) { o.Deadline = t } }

// WithHeapWords sizes the heap area in words.
func WithHeapWords(n int64) RunOption { return func(o *RunOptions) { o.HeapWords = n } }

// WithEnvWords sizes the environment stack in words.
func WithEnvWords(n int64) RunOption { return func(o *RunOptions) { o.EnvWords = n } }

// WithCPWords sizes the choice-point stack in words.
func WithCPWords(n int64) RunOption { return func(o *RunOptions) { o.CPWords = n } }

// WithTrailWords sizes the trail in words.
func WithTrailWords(n int64) RunOption { return func(o *RunOptions) { o.TrailWords = n } }

// WithPDLWords sizes the unification push-down list in words.
func WithPDLWords(n int64) RunOption { return func(o *RunOptions) { o.PDLWords = n } }

// WithDispatch selects the sequential emulator's execution core for the run
// (see Dispatch).
func WithDispatch(d Dispatch) RunOption { return func(o *RunOptions) { o.Dispatch = d } }

// WithTrace keeps the run's last n executor milestone events (see
// RunOptions.TraceEvents).
func WithTrace(n int) RunOption { return func(o *RunOptions) { o.TraceEvents = n } }

// WithOptions replaces the whole option struct, for callers that already
// hold a RunOptions value; later options still apply on top.
func WithOptions(opts RunOptions) RunOption { return func(o *RunOptions) { *o = opts } }

// buildRunOptions folds functional options into a RunOptions value.
func buildRunOptions(opts []RunOption) RunOptions {
	var o RunOptions
	for _, f := range opts {
		f(&o)
	}
	return o
}

// OptionError reports a RunOptions field holding a nonsensical value (for
// example a negative area size or budget). It is returned before any
// machine state is touched, so an invalid request can never fault or panic
// deep inside an executor.
type OptionError struct {
	Field string // the offending RunOptions field name
	Value int64
}

func (e *OptionError) Error() string {
	return fmt.Sprintf("symbol: invalid RunOptions.%s: %d", e.Field, e.Value)
}

// DispatchConflictError reports RunOptions naming two different execution
// cores at once: the deprecated NoFuse alias set alongside a Dispatch other
// than DispatchNoFuse. Like *OptionError it is returned before any machine
// state is touched.
type DispatchConflictError struct {
	Dispatch Dispatch
}

func (e *DispatchConflictError) Error() string {
	return fmt.Sprintf("symbol: conflicting RunOptions: NoFuse with Dispatch %s (drop the deprecated NoFuse alias)", e.Dispatch)
}

// Validate checks the options. Zero values are always valid (they mean the
// defaults); negative budgets and negative area sizes are rejected with a
// *OptionError. Oversized areas are not an error — ic.Layout clamps them to
// the compile-time maximums.
func (o RunOptions) Validate() error {
	for _, f := range []struct {
		name string
		v    int64
	}{
		{"MaxSteps", o.MaxSteps},
		{"MaxCycles", o.MaxCycles},
		{"HeapWords", o.HeapWords},
		{"EnvWords", o.EnvWords},
		{"CPWords", o.CPWords},
		{"TrailWords", o.TrailWords},
		{"PDLWords", o.PDLWords},
		{"TraceEvents", int64(o.TraceEvents)},
	} {
		if f.v < 0 {
			return &OptionError{Field: f.name, Value: f.v}
		}
	}
	if o.NoFuse && o.Dispatch != DispatchAuto && o.Dispatch != DispatchNoFuse {
		return &DispatchConflictError{Dispatch: o.Dispatch}
	}
	return nil
}

// dispatch resolves the effective execution core: the enum wins, with the
// deprecated NoFuse alias filling in while the enum is DispatchAuto.
func (o RunOptions) dispatch() Dispatch {
	if o.Dispatch == DispatchAuto && o.NoFuse {
		return DispatchNoFuse
	}
	return o.Dispatch
}

// emuMode expands the resolved dispatch into the emulator's mode flags.
func (o RunOptions) emuMode() (legacy, noFuse, threaded bool) {
	switch o.dispatch() {
	case DispatchLegacy:
		legacy = true
	case DispatchNoFuse:
		noFuse = true
	case DispatchThreaded:
		threaded = true
	}
	return
}

func (o RunOptions) layout() ic.Layout {
	return ic.Layout{
		HeapWords:  o.HeapWords,
		EnvWords:   o.EnvWords,
		CPWords:    o.CPWords,
		TrailWords: o.TrailWords,
		PDLWords:   o.PDLWords,
	}
}

func expandUnit(unit *bam.Unit, c *compile.Compiler) (*ic.Program, error) {
	prog, err := expand.Translate(unit, c.Atoms())
	if err != nil {
		return nil, err
	}
	return rename.Fold(prog), nil
}

// Options configure compilation.
type Options struct {
	// ArithChecks controls runtime tag checking on arithmetic (default on).
	ArithChecks bool
	// MaxSteps bounds sequential emulation (0 = default limit).
	MaxSteps int64
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options {
	return Options{ArithChecks: true}
}

// Program is a compiled Prolog program ready for emulation and scheduling.
// It is immutable after Load and safe to share across goroutines: the only
// lazily computed piece of state, the execution profile, is built under a
// sync.Once.
type Program struct {
	opts      Options
	bam       *bam.Unit // nil for snapshot-loaded programs
	icp       *ic.Program
	undefined []string
	src       string // source text (embedded in snapshots; "" if unavailable)
	goal      string // query goal for CompileQuery/WithGoal programs

	profOnce  sync.Once
	profile   *emu.Profile
	profErr   error
	profBuilt atomic.Bool // profile computed successfully (for snapshot embedding)
}

// compileClauses is the shared back half of compilation: parsed clauses →
// BAM → ICI → Program. Every compile path (Load on source, the deprecated
// Compile/CompileQuery wrappers) ends here. src and goal are recorded on
// the Program so snapshots can embed them for the recompile fallback.
func compileClauses(clauses []term.Term, opts Options, src, goal string) (*Program, error) {
	c := compile.New(compile.Options{ArithChecks: opts.ArithChecks})
	if err := c.AddProgram(clauses); err != nil {
		return nil, fmt.Errorf("symbol: %w", err)
	}
	unit, err := c.Compile()
	if err != nil {
		return nil, fmt.Errorf("symbol: %w", err)
	}
	prog, err := expandUnit(unit, c)
	if err != nil {
		return nil, fmt.Errorf("symbol: %w", err)
	}
	var undef []string
	for _, pi := range c.Undefined() {
		undef = append(undef, pi.String())
	}
	return &Program{opts: opts, bam: unit, icp: prog, undefined: undef, src: src, goal: goal}, nil
}

// Undefined lists predicates that are called but never defined (calls to
// them fail at run time).
func (p *Program) Undefined() []string { return p.undefined }

// Source returns the Prolog source the program was compiled from (the
// knowledge base for query programs), or "" when it is unavailable — a
// snapshot written without an embedded source section.
func (p *Program) Source() string { return p.src }

// Goal returns the query goal for programs built by Load's WithGoal (or
// the deprecated CompileQuery), and "" for whole-program compiles.
func (p *Program) Goal() string { return p.goal }

// BAMListing returns the BAM assembly produced by the front end, or "" for
// snapshot-loaded programs (the BAM stage is not preserved in snapshots —
// only its ICI expansion is).
func (p *Program) BAMListing() string {
	if p.bam == nil {
		return ""
	}
	return p.bam.Listing()
}

// ICListing returns the Intermediate Code disassembly.
func (p *Program) ICListing() string { return p.icp.Listing() }

// IC exposes the Intermediate Code program.
func (p *Program) IC() *ic.Program { return p.icp }

// CodeSize returns the number of static ICIs.
func (p *Program) CodeSize() int { return len(p.icp.Code) }

// RunContext executes the program sequentially under ctx and the given
// options, on a throwaway single-use engine. Cancelling ctx aborts the run
// with ErrCanceled; a ctx deadline tightens WithDeadline. This is the
// preferred entry point for one-off runs; for serving many queries build an
// Engine once and reuse it.
func (p *Program) RunContext(ctx context.Context, opts ...RunOption) (*Result, error) {
	return NewEngine(p).Run(ctx, buildRunOptions(opts))
}

// SimulateContext schedules the program for the paper's default 3-unit
// machine (on first use of the throwaway engine) and runs it on the
// cycle-level VLIW simulator under ctx and the given options. For repeated
// simulation, build an Engine with NewEngineConfig and reuse it so the
// schedule is computed once.
func (p *Program) SimulateContext(ctx context.Context, opts ...RunOption) (*SimResult, error) {
	return NewEngine(p).Simulate(ctx, buildRunOptions(opts))
}

// Result is the observable outcome of a program run.
type Result struct {
	// Succeeded reports whether main/0 found a solution.
	Succeeded bool
	// Output is the text written by write/1 and nl/0.
	Output string
	// Steps is the dynamic ICI count (also available as Stats.Steps).
	Steps int64

	// Stats is the run's embedded execution record: op-class mix, memory
	// high-water marks, choice-point and trail activity, faults, wall time.
	// Its non-shadowed fields promote (r.MemOps, r.Wall, ...).
	Stats

	// Events holds the traced executor milestones when the run asked for
	// them (WithTrace / RunOptions.TraceEvents); EventsDropped counts older
	// events evicted from the bounded ring.
	Events        []Event
	EventsDropped int64
}

// String summarizes the run: outcome and headline counters, followed by the
// paper-style operation-class mix table.
func (r *Result) String() string {
	return fmt.Sprintf("ok=%v %s", r.Succeeded, r.Stats.String())
}

// Profile runs the sequential emulator with statistics collection and
// caches the result (used by the trace scheduler and the analyses). It
// always runs under the default memory layout: the profile must describe
// the program's normal behaviour, not a fault-injected run.
//
// The profiling run happens exactly once per Program, under a sync.Once, so
// concurrent callers are safe and all observe the same cached profile (or
// the same error).
func (p *Program) Profile() (*emu.Profile, error) {
	p.profOnce.Do(func() {
		defer guard(&p.profErr)
		res, err := emu.Run(p.icp, emu.Options{MaxSteps: p.opts.MaxSteps, Profile: true})
		if err != nil {
			p.profErr = err
			return
		}
		p.profile = res.Profile
		p.profBuilt.Store(true)
	})
	return p.profile, p.profErr
}
