package symbol

import (
	"fmt"

	"symbol/internal/core"
	"symbol/internal/emu"
	"symbol/internal/ic"
	"symbol/internal/machine"
	"symbol/internal/obs"
	"symbol/internal/vliw"
)

// MachineConfig is the target architecture description (paper §3, §4.5).
type MachineConfig = machine.Config

// DefaultMachine returns the paper's measurement configuration with n
// units: all operations last one cycle except memory and control, which are
// two-cycle pipelined.
func DefaultMachine(n int) MachineConfig { return machine.Default(n) }

// UnboundedMachine has effectively infinite functional units (Table 1).
func UnboundedMachine() MachineConfig { return machine.Unbounded() }

// BAMMachine is the single-issue delayed-branch RISC stand-in for the BAM
// processor (used with BasicBlocksOnly compaction).
func BAMMachine() MachineConfig { return machine.BAM() }

// ScheduleOption mutates ScheduleOptions; the With* constructors below are
// the functional-option way to configure ScheduleWith.
type ScheduleOption func(*ScheduleOptions)

// WithBasicBlocksOnly restricts compaction to basic blocks (no trace
// scheduling) — the Table 1 baseline.
func WithBasicBlocksOnly() ScheduleOption {
	return func(o *ScheduleOptions) { o.BasicBlocksOnly = true }
}

// WithMaxTraceBlocks bounds trace growth.
func WithMaxTraceBlocks(n int) ScheduleOption {
	return func(o *ScheduleOptions) { o.MaxTraceBlocks = n }
}

// WithNoTailDuplication disables growing traces through join points by
// cloning.
func WithNoTailDuplication() ScheduleOption {
	return func(o *ScheduleOptions) { o.NoTailDuplication = true }
}

// WithTailDupOpsPercent overrides the duplication budget as a percentage of
// the program size.
func WithTailDupOpsPercent(pct int) ScheduleOption {
	return func(o *ScheduleOptions) { o.TailDupOpsPercent = pct }
}

// WithScheduleOptions replaces the whole option struct; later options still
// apply on top.
func WithScheduleOptions(opts ScheduleOptions) ScheduleOption {
	return func(o *ScheduleOptions) { *o = opts }
}

// ScheduleOptions control the global compaction.
type ScheduleOptions struct {
	// BasicBlocksOnly restricts compaction to basic blocks (no trace
	// scheduling), the paper's Table 1 baseline and the stand-in for the
	// BAM processor's instruction-level behaviour.
	BasicBlocksOnly bool
	// MaxTraceBlocks bounds trace growth (0 = default).
	MaxTraceBlocks int
	// NoTailDuplication disables growing traces through join points by
	// cloning (ablation of the code-size/trace-length trade-off).
	NoTailDuplication bool
	// TailDupOpsPercent overrides the duplication budget as a percentage
	// of the program size (0 = default).
	TailDupOpsPercent int
}

// Scheduled is a compacted program ready for cycle-accurate simulation.
type Scheduled struct {
	prog  *Program
	vprog *vliw.Program
	stats *core.Stats
}

// ScheduleWith profiles the program (if needed) and compacts it for conf,
// configured by functional options:
//
//	sched, err := prog.ScheduleWith(symbol.DefaultMachine(3),
//	    symbol.WithMaxTraceBlocks(8))
func (p *Program) ScheduleWith(conf MachineConfig, opts ...ScheduleOption) (_ *Scheduled, err error) {
	defer guard(&err)
	var o ScheduleOptions
	for _, f := range opts {
		f(&o)
	}
	return p.scheduleOpts(conf, o)
}

func (p *Program) scheduleOpts(conf MachineConfig, opts ScheduleOptions) (*Scheduled, error) {
	prof, err := p.Profile()
	if err != nil {
		return nil, err
	}
	copts := core.DefaultOptions()
	if opts.BasicBlocksOnly {
		copts.TraceScheduling = false
	}
	if opts.MaxTraceBlocks > 0 {
		copts.MaxBlocks = opts.MaxTraceBlocks
	}
	if opts.NoTailDuplication {
		copts.TailDuplication = false
	}
	if opts.TailDupOpsPercent > 0 {
		copts.TailDupMaxOps = opts.TailDupOpsPercent
	}
	vp, stats, err := core.Compact(p.icp, prof, conf, copts)
	if err != nil {
		return nil, err
	}
	return &Scheduled{prog: p, vprog: vp, stats: stats}, nil
}

// Words returns the static number of VLIW words.
func (s *Scheduled) Words() int { return len(s.vprog.Words) }

// Ops returns the static number of scheduled operations.
func (s *Scheduled) Ops() int { return s.vprog.OpCount() }

// AvgTraceLen is the execution-weighted average compaction-unit length in
// operations (Table 1 "Average Length").
func (s *Scheduled) AvgTraceLen() float64 { return s.stats.AvgTraceLen }

// Listing disassembles the scheduled code.
func (s *Scheduled) Listing() string { return s.vprog.Listing() }

// VLIW exposes the linked program (for the simulator and tools).
func (s *Scheduled) VLIW() *vliw.Program { return s.vprog }

// SimResult is the outcome of simulating compacted code.
type SimResult struct {
	Succeeded bool
	Output    string
	Cycles    int64
	Words     int64
	Ops       int64
	Bubble    int64

	// Stats is the run's embedded execution record. For a VLIW run
	// Stats.Steps counts issued operations (which can differ from the
	// sequential count under speculation and tail duplication) and
	// Stats.Cycles equals Cycles.
	Stats

	// Events holds the traced executor milestones when the run asked for
	// them (WithTrace / RunOptions.TraceEvents). The VLIW trace is an
	// approximate stream: it records the milestones the simulator can see
	// inline (calls, throws, choice-point pushes, fails, faults, halt).
	Events        []Event
	EventsDropped int64
}

// Simulate runs the compacted program on the cycle-level VLIW simulator.
func (s *Scheduled) Simulate() (*SimResult, error) {
	return s.SimulateWith(RunOptions{})
}

// SimulateWith runs the compacted program under explicit resource bounds,
// with the same typed-fault and catch/3 semantics as Program.RunWith.
func (s *Scheduled) SimulateWith(opts RunOptions) (_ *SimResult, err error) {
	defer guard(&err)
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	var trace *obs.Trace
	if opts.TraceEvents > 0 {
		trace = obs.NewTrace(opts.TraceEvents)
	}
	r, err := vliw.Sim(s.vprog, vliw.SimOptions{
		MaxCycles: opts.MaxCycles,
		Layout:    opts.layout(),
		Deadline:  opts.Deadline,
		Events:    trace,
	})
	if err != nil {
		return nil, err
	}
	sr := &SimResult{
		Succeeded: r.Status == 0,
		Output:    r.Output,
		Cycles:    r.Cycles,
		Words:     r.Words,
		Ops:       r.Ops,
		Bubble:    r.Bubble,
		Stats:     r.Stats,
	}
	if trace != nil {
		sr.Events = trace.Events()
		sr.EventsDropped = trace.Dropped()
	}
	return sr, nil
}

// SeqCycles computes the pure sequential machine's cycle count from the
// profile under the paper's hypotheses: one operation at a time, memory and
// control operations cost two cycles, everything else one (§4.3).
func (p *Program) SeqCycles() (int64, error) {
	prof, err := p.Profile()
	if err != nil {
		return 0, err
	}
	return seqCycles(p.icp, prof), nil
}

func seqCycles(icp *ic.Program, prof *emu.Profile) int64 {
	var total int64
	for pc := range icp.Code {
		if prof.Expect[pc] == 0 {
			continue
		}
		c := icp.Code[pc].Class()
		total += prof.Expect[pc] * machine.SeqCost(c == ic.ClassMemory || c == ic.ClassControl)
	}
	return total
}

// Speedup is a convenience: sequential cycles divided by VLIW cycles.
func Speedup(seq, par int64) float64 {
	if par == 0 {
		return 0
	}
	return float64(seq) / float64(par)
}

// String renders a SimResult: the headline cycle counts followed by the
// paper-style operation-class mix table.
func (r *SimResult) String() string {
	return fmt.Sprintf("cycles=%d words=%d ops=%d bubbles=%d ok=%v\n%s",
		r.Cycles, r.Words, r.Ops, r.Bubble, r.Succeeded, r.Stats.MixTable())
}
