package experiments

import (
	"fmt"
	"strings"

	"symbol"
	"symbol/internal/ic"
	"symbol/internal/stats"
)

// --- Table 1 ---------------------------------------------------------------

// Table1Row compares basic-block and trace compaction for one benchmark on
// an unbounded-resource machine (the paper's "available concurrency").
type Table1Row struct {
	Name         string
	TraceSpeedup float64
	TraceLen     float64
	BBSpeedup    float64
	BBLen        float64
}

// Table1 is the available-concurrency comparison.
type Table1 struct {
	Rows []Table1Row
	Avg  Table1Row
}

// Table1Compaction measures Table 1 by scheduling each benchmark onto an
// unbounded machine with and without trace scheduling and simulating the
// compacted code.
func (r *Runner) Table1Compaction(names []string) (*Table1, error) {
	out := &Table1{}
	for _, n := range names {
		e, err := r.get(n)
		if err != nil {
			return nil, err
		}
		row := Table1Row{Name: n}
		conf := symbol.UnboundedMachine()

		tr, err := e.prog.Schedule(conf, symbol.ScheduleOptions{})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", n, err)
		}
		trSim, err := tr.Simulate()
		if err != nil {
			return nil, fmt.Errorf("%s traces: %w", n, err)
		}
		row.TraceSpeedup = symbol.Speedup(e.seq, trSim.Cycles)
		row.TraceLen = tr.AvgTraceLen()

		bb, err := e.prog.Schedule(conf, symbol.ScheduleOptions{BasicBlocksOnly: true})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", n, err)
		}
		bbSim, err := bb.Simulate()
		if err != nil {
			return nil, fmt.Errorf("%s basic blocks: %w", n, err)
		}
		row.BBSpeedup = symbol.Speedup(e.seq, bbSim.Cycles)
		row.BBLen = bb.AvgTraceLen()

		out.Rows = append(out.Rows, row)
		out.Avg.TraceSpeedup += row.TraceSpeedup
		out.Avg.TraceLen += row.TraceLen
		out.Avg.BBSpeedup += row.BBSpeedup
		out.Avg.BBLen += row.BBLen
	}
	k := float64(len(out.Rows))
	if k > 0 {
		out.Avg = Table1Row{Name: "average",
			TraceSpeedup: out.Avg.TraceSpeedup / k, TraceLen: out.Avg.TraceLen / k,
			BBSpeedup: out.Avg.BBSpeedup / k, BBLen: out.Avg.BBLen / k}
	}
	return out, nil
}

// Render formats Table 1.
func (t *Table1) Render() string {
	var b strings.Builder
	b.WriteString("Table 1 — available concurrency: traces vs basic blocks (unbounded units)\n\n")
	fmt.Fprintf(&b, "%-12s | %14s %12s | %14s %12s\n",
		"benchmark", "trace speedup", "trace len", "bb speedup", "bb len")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-12s | %14.2f %12.2f | %14.2f %12.2f\n",
			r.Name, r.TraceSpeedup, r.TraceLen, r.BBSpeedup, r.BBLen)
	}
	fmt.Fprintf(&b, "%-12s | %14.2f %12.2f | %14.2f %12.2f\n",
		"average", t.Avg.TraceSpeedup, t.Avg.TraceLen, t.Avg.BBSpeedup, t.Avg.BBLen)
	return b.String()
}

// --- Table 2 / Figure 4 -----------------------------------------------------

// Table2Row is one benchmark's branch predictability.
type Table2Row struct {
	Name string
	Bs   stats.BranchStats
	// Backward/Forward taken probabilities for the 90/50-rule check.
	BackwardTaken float64
	ForwardTaken  float64
}

// Table2 is the branch-prediction study.
type Table2 struct {
	Rows   []Table2Row
	AvgPfp float64
	// Histogram aggregates Figure 4's distribution over all benchmarks
	// (equal benchmark weight).
	Histogram []float64
	Bins      int
}

// Table2Branches measures P_fp for each benchmark.
func (r *Runner) Table2Branches(names []string) (*Table2, error) {
	const bins = 20
	out := &Table2{Bins: bins, Histogram: make([]float64, bins)}
	for _, n := range names {
		e, err := r.get(n)
		if err != nil {
			return nil, err
		}
		bs := stats.ComputeBranchStats(e.prog.IC(), e.prof, bins)
		back, fwd := stats.NinetyFifty(e.prog.IC(), e.prof)
		out.Rows = append(out.Rows, Table2Row{Name: n, Bs: bs, BackwardTaken: back, ForwardTaken: fwd})
		out.AvgPfp += bs.AvgPfp
		for i, v := range bs.Histogram {
			out.Histogram[i] += v
		}
	}
	if k := float64(len(out.Rows)); k > 0 {
		out.AvgPfp /= k
		for i := range out.Histogram {
			out.Histogram[i] /= k
		}
	}
	return out, nil
}

// Render formats Table 2 plus the Figure 4 histogram.
func (t *Table2) Render() string {
	var b strings.Builder
	b.WriteString("Table 2 — average probability of faulty branch prediction (P_fp)\n\n")
	fmt.Fprintf(&b, "%-12s %8s %10s %10s %12s\n", "benchmark", "P_fp", "back-taken", "fwd-taken", "dyn branches")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-12s %8.4f %10.3f %10.3f %12d\n",
			r.Name, r.Bs.AvgPfp, r.BackwardTaken, r.ForwardTaken, r.Bs.Executions)
	}
	fmt.Fprintf(&b, "%-12s %8.4f\n\n", "average", t.AvgPfp)
	b.WriteString("Figure 4 — distribution of P_fp (bin width 0.025, weight = execution share)\n")
	for i, v := range t.Histogram {
		lo := float64(i) * 0.5 / float64(t.Bins)
		bar := strings.Repeat("#", int(v*120+0.5))
		fmt.Fprintf(&b, "  %5.3f %6.1f%% %s\n", lo, 100*v, bar)
	}
	return b.String()
}

// --- Table 3 / Figure 6 -----------------------------------------------------

// Table3Row is one benchmark's unit sweep.
type Table3Row struct {
	Name      string
	SeqCycles int64
	BAMCycles int64 // single-issue pipelined machine on uncompacted code
	Cycles    []int64
	Speedups  []float64 // vs SeqCycles, per unit count
	BAMSU     float64
}

// Table3 is the architecture sweep (Figure 6 plots Speedups).
type Table3 struct {
	Units []int
	Rows  []Table3Row
	// AvgSU[i] is the mean speed-up at Units[i]; AvgBAM the BAM stand-in.
	AvgSU  []float64
	AvgBAM float64
}

// Table3Sweep schedules and simulates every benchmark at each unit count.
// The BAM column models the BAM processor as a single-issue pipelined RISC:
// basic-block compaction on one unit (the paper observes the BAM sits at
// the basic-block limit).
func (r *Runner) Table3Sweep(names []string, units []int) (*Table3, error) {
	out := &Table3{Units: units, AvgSU: make([]float64, len(units))}
	for _, n := range names {
		e, err := r.get(n)
		if err != nil {
			return nil, err
		}
		row := Table3Row{Name: n, SeqCycles: e.seq}

		bam, err := e.prog.Schedule(symbol.BAMMachine(), symbol.ScheduleOptions{BasicBlocksOnly: true})
		if err != nil {
			return nil, err
		}
		bamSim, err := bam.Simulate()
		if err != nil {
			return nil, fmt.Errorf("%s BAM: %w", n, err)
		}
		row.BAMCycles = bamSim.Cycles
		row.BAMSU = symbol.Speedup(e.seq, bamSim.Cycles)

		for _, u := range units {
			sched, err := e.prog.Schedule(symbol.DefaultMachine(u), symbol.ScheduleOptions{})
			if err != nil {
				return nil, err
			}
			sim, err := sched.Simulate()
			if err != nil {
				return nil, fmt.Errorf("%s %d units: %w", n, u, err)
			}
			row.Cycles = append(row.Cycles, sim.Cycles)
			row.Speedups = append(row.Speedups, symbol.Speedup(e.seq, sim.Cycles))
		}
		out.Rows = append(out.Rows, row)
		out.AvgBAM += row.BAMSU
		for i, su := range row.Speedups {
			out.AvgSU[i] += su
		}
	}
	if k := float64(len(out.Rows)); k > 0 {
		out.AvgBAM /= k
		for i := range out.AvgSU {
			out.AvgSU[i] /= k
		}
	}
	return out, nil
}

// Render formats Table 3.
func (t *Table3) Render() string {
	var b strings.Builder
	b.WriteString("Table 3 — cycles and speed-up vs sequential for each configuration\n\n")
	fmt.Fprintf(&b, "%-12s %12s | %12s %5s |", "benchmark", "seq", "BAM", "s.u.")
	for _, u := range t.Units {
		fmt.Fprintf(&b, " %10s %5s |", fmt.Sprintf("%d unit", u), "s.u.")
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-12s %12d | %12d %5.2f |", r.Name, r.SeqCycles, r.BAMCycles, r.BAMSU)
		for i := range t.Units {
			fmt.Fprintf(&b, " %10d %5.2f |", r.Cycles[i], r.Speedups[i])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-12s %12s | %12s %5.2f |", "average", "", "", t.AvgBAM)
	for i := range t.Units {
		fmt.Fprintf(&b, " %10s %5.2f |", "", t.AvgSU[i])
	}
	b.WriteByte('\n')
	return b.String()
}

// RenderFigure6 renders the speed-up curves as an ASCII plot.
func (t *Table3) RenderFigure6() string {
	var b strings.Builder
	b.WriteString("Figure 6 — speed-up vs number of units (average over the suite)\n\n")
	maxSU := 0.0
	for _, su := range t.AvgSU {
		if su > maxSU {
			maxSU = su
		}
	}
	for i, u := range t.Units {
		bar := strings.Repeat("*", int(t.AvgSU[i]/3.0*60+0.5))
		fmt.Fprintf(&b, "  %d units %5.2f %s\n", u, t.AvgSU[i], bar)
	}
	fmt.Fprintf(&b, "  BAM     %5.2f %s\n", t.AvgBAM, strings.Repeat("*", int(t.AvgBAM/3.0*60+0.5)))
	b.WriteString("  (scale: 60 columns = speed-up 3.0, the Amdahl asymptote)\n")
	return b.String()
}

// --- Tables 4 and 5 ---------------------------------------------------------

// refTimes are the paper's published execution times in milliseconds
// (Table 4); -1 marks entries the paper leaves blank. Columns: Quintus,
// VLSI-PLM, KCM, BAM, and the paper's own Symbol-3 measurement.
var refTimes = map[string][5]float64{
	"divide10":  {0.41, 0.38, 0.091, 0.0387, 0.0423},
	"log10":     {0.15, 0.109, 0.039, 0.0201, 0.0146},
	"mu":        {12.407, 4.644, -1, 0.8557, 1.2913},
	"reverse":   {1.62, 2.10, 0.65, 0.2057, 0.2401},
	"ops8":      {0.24, 0.214, 0.059, 0.0251, 0.0274},
	"prover":    {8.67, 6.83, -1, 0.9722, 1.2995},
	"qsort":     {4.82, 4.24, 1.32, 0.2253, 0.2192},
	"queens_8":  {21.20, 28.80, 1.205, 1.2017, 1.549},
	"sendmore":  {490.00, -1, -1, 42.3364, 44.0939},
	"serialise": {3.10, 2.47, 1.22, 0.5133, 0.6556},
	"tak":       {1120.00, 940.00, -1, 31.047, 32.067},
	"times10":   {0.345, 0.2470, 0.082, 0.0346, 0.0363},
	"zebra":     {425.00, -1, -1, 86.890, 119.184},
}

// ClockHz is the prototype's measured operating frequency (§5.2: 30 MHz).
const ClockHz = 30e6

// Symbol3Config models the three-processor VLSI prototype (§5.1): three
// units; memory organized in a three-cycle pipeline, which lengthens loads
// and makes branches two-cycle delayed; and the two instruction formats
// (ALU vs control words) imposed by pinout limitations.
func Symbol3Config() symbol.MachineConfig {
	c := symbol.DefaultMachine(3)
	c.MemLatency = 3
	c.BranchBubble = 2
	c.SplitFormats = true
	return c
}

// Table4Row is one benchmark's absolute-time comparison.
type Table4Row struct {
	Name       string
	Ref        [5]float64 // paper-published ms (see refTimes)
	Cycles     int64      // measured Symbol-3 cycles (this reproduction)
	MeasuredMs float64
}

// Table4 is the absolute-performance comparison.
type Table4 struct {
	Rows []Table4Row
	// NreverseMLIPS is the peak logical-inferences-per-second figure the
	// paper quotes for NREVERSE (2.1 MLIPS at 30 MHz).
	NreverseMLIPS float64
}

// nrevLI is the standard logical-inference count of naive reverse of a
// 30-element list (496 LI).
const nrevLI = 496

// Table4Absolute runs every benchmark on the Symbol-3 prototype model and
// converts cycles to milliseconds at the prototype clock.
func (r *Runner) Table4Absolute(names []string) (*Table4, error) {
	out := &Table4{}
	conf := Symbol3Config()
	for _, n := range names {
		e, err := r.get(n)
		if err != nil {
			return nil, err
		}
		sched, err := e.prog.Schedule(conf, symbol.ScheduleOptions{})
		if err != nil {
			return nil, err
		}
		sim, err := sched.Simulate()
		if err != nil {
			return nil, fmt.Errorf("%s symbol-3: %w", n, err)
		}
		row := Table4Row{
			Name:       n,
			Ref:        refTimes[n],
			Cycles:     sim.Cycles,
			MeasuredMs: float64(sim.Cycles) / ClockHz * 1000,
		}
		if n == "reverse" && row.MeasuredMs > 0 {
			out.NreverseMLIPS = nrevLI / (row.MeasuredMs * 1000) // LI per µs
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render formats Table 4.
func (t *Table4) Render() string {
	var b strings.Builder
	b.WriteString("Table 4 — absolute times in ms (reference columns: paper-published values)\n\n")
	fmt.Fprintf(&b, "%-12s %9s %9s %9s %9s %10s | %12s %10s\n",
		"benchmark", "Quintus", "VLSI-PLM", "KCM", "BAM", "Symbol-3*", "cycles", "measured")
	ms := func(v float64) string {
		if v < 0 {
			return "-"
		}
		return fmt.Sprintf("%.4f", v)
	}
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-12s %9s %9s %9s %9s %10s | %12d %10.4f\n",
			r.Name, ms(r.Ref[0]), ms(r.Ref[1]), ms(r.Ref[2]), ms(r.Ref[3]), ms(r.Ref[4]),
			r.Cycles, r.MeasuredMs)
	}
	fmt.Fprintf(&b, "\n(*) paper's own Symbol-3 measurement. Measured column: this\n")
	fmt.Fprintf(&b, "reproduction's 3-unit prototype model at %.0f MHz.\n", ClockHz/1e6)
	if t.NreverseMLIPS > 0 {
		fmt.Fprintf(&b, "NREVERSE peak: %.2f MLIPS (paper: 2.1 MLIPS)\n", t.NreverseMLIPS)
	}
	return b.String()
}

// Table5Row is one benchmark's prototype speed-up versus a sequential
// machine with identical operation durations.
type Table5Row struct {
	Name       string
	SeqCycles  int64 // sequential machine, prototype durations
	BAMSpeedup float64
	Sym3SU     float64
}

// Table5 is the relative-speed-up comparison (§5.3, Table 5).
type Table5 struct {
	Rows    []Table5Row
	AvgBAM  float64
	AvgSym3 float64
}

// Table5Relative computes speed-ups under the prototype's operation
// durations (memory and control: three-cycle pipeline).
func (r *Runner) Table5Relative(names []string) (*Table5, error) {
	out := &Table5{}
	conf := Symbol3Config()
	bamConf := conf
	bamConf.Units = 1
	bamConf.BranchBubble = 0 // the BAM fills its delayed branches
	for _, n := range names {
		e, err := r.get(n)
		if err != nil {
			return nil, err
		}
		mix := stats.ComputeMix(e.prog.IC(), e.prof)
		seq := mix.Counts[ic.ClassALU] + mix.Counts[ic.ClassMove] + mix.Counts[ic.ClassSys] +
			3*(mix.Counts[ic.ClassMemory]+mix.Counts[ic.ClassControl])

		s3, err := e.prog.Schedule(conf, symbol.ScheduleOptions{})
		if err != nil {
			return nil, err
		}
		s3Sim, err := s3.Simulate()
		if err != nil {
			return nil, err
		}
		bam, err := e.prog.Schedule(bamConf, symbol.ScheduleOptions{BasicBlocksOnly: true})
		if err != nil {
			return nil, err
		}
		bamSim, err := bam.Simulate()
		if err != nil {
			return nil, err
		}
		row := Table5Row{
			Name:       n,
			SeqCycles:  seq,
			BAMSpeedup: symbol.Speedup(seq, bamSim.Cycles),
			Sym3SU:     symbol.Speedup(seq, s3Sim.Cycles),
		}
		out.Rows = append(out.Rows, row)
		out.AvgBAM += row.BAMSpeedup
		out.AvgSym3 += row.Sym3SU
	}
	if k := float64(len(out.Rows)); k > 0 {
		out.AvgBAM /= k
		out.AvgSym3 /= k
	}
	return out, nil
}

// Render formats Table 5.
func (t *Table5) Render() string {
	var b strings.Builder
	b.WriteString("Table 5 — speed-up vs a sequential machine with prototype durations\n\n")
	fmt.Fprintf(&b, "%-12s %12s %12s %12s\n", "benchmark", "seq cycles", "BAM-like", "Symbol-3")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-12s %12d %12.2f %12.2f\n", r.Name, r.SeqCycles, r.BAMSpeedup, r.Sym3SU)
	}
	fmt.Fprintf(&b, "%-12s %12s %12.2f %12.2f\n", "average", "", t.AvgBAM, t.AvgSym3)
	return b.String()
}
