// Package experiments regenerates every table and figure of the paper's
// evaluation (§4 and §5) from live runs of the reproduction pipeline:
//
//	Figure 2  — dynamic instruction-class mix
//	Figure 3  — Amdahl speed-up curves for the shared-memory model
//	Table 1   — basic-block vs trace-scheduling available concurrency
//	Table 2   — probability of faulty branch prediction (with Figure 4's
//	            distribution histogram)
//	Table 3   — cycles and speed-ups for the BAM stand-in and 1..5-unit
//	            VLIW configurations (Figure 6 plots the same data)
//	Table 4   — absolute execution times of the Symbol-3 prototype model
//	            against published Prolog systems
//	Table 5   — Symbol-3 speed-up vs a sequential machine with identical
//	            operation durations
//
// Every cycle count is measured by executing the benchmark — sequentially
// on the IntCode emulator, or on the VLIW simulator for compacted code —
// never estimated from static schedules.
package experiments

import (
	"fmt"
	"sync"

	"symbol"
	"symbol/internal/benchprog"
	"symbol/internal/emu"
	"symbol/internal/ic"
	"symbol/internal/stats"
)

// Runner caches compiled and profiled benchmarks across experiments.
type Runner struct {
	mu    sync.Mutex
	cache map[string]*entry
}

type entry struct {
	prog *symbol.Program
	prof *emu.Profile
	seq  int64 // sequential-machine cycles (mem/ctrl cost 2)
}

// NewRunner returns an empty runner.
func NewRunner() *Runner { return &Runner{cache: map[string]*entry{}} }

// get compiles and profiles a benchmark once.
func (r *Runner) get(name string) (*entry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.cache[name]; ok {
		return e, nil
	}
	b, err := benchprog.Get(name)
	if err != nil {
		return nil, err
	}
	prog, err := symbol.Compile(b.Source)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	prof, err := prog.Profile()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	seq, err := prog.SeqCycles()
	if err != nil {
		return nil, err
	}
	e := &entry{prog: prog, prof: prof, seq: seq}
	r.cache[name] = e
	return e, nil
}

// SuiteNames returns the paper's Table 3 benchmark rows.
func SuiteNames() []string {
	var out []string
	for _, b := range benchprog.Suite() {
		out = append(out, b.Name)
	}
	return out
}

// Table2Names returns the paper's Table 2 rows (the suite plus crypt and
// query, as in the paper).
func Table2Names() []string {
	return []string{
		"conc30", "crypt", "divide10", "log10", "mu", "reverse", "ops8",
		"prover", "qsort", "queens_8", "query", "sendmore", "serialise",
		"tak", "times10", "zebra",
	}
}

// --- Figure 2 --------------------------------------------------------------

// Fig2Row is one benchmark's instruction mix.
type Fig2Row struct {
	Name string
	Mix  stats.Mix
}

// Figure2 holds the per-benchmark mixes and the suite average fractions.
type Figure2 struct {
	Rows    []Fig2Row
	Average [ic.NumClasses]float64
}

// Figure2Mix measures the dynamic instruction-class frequencies.
func (r *Runner) Figure2Mix(names []string) (*Figure2, error) {
	out := &Figure2{}
	var mixes []stats.Mix
	for _, n := range names {
		e, err := r.get(n)
		if err != nil {
			return nil, err
		}
		m := stats.ComputeMix(e.prog.IC(), e.prof)
		mixes = append(mixes, m)
		out.Rows = append(out.Rows, Fig2Row{Name: n, Mix: m})
	}
	out.Average = stats.AverageMix(mixes)
	return out, nil
}

// Render formats Figure 2 as text.
func (f *Figure2) Render() string {
	s := "Figure 2 — dynamic instruction-class mix (all operations duration 1)\n\n"
	s += fmt.Sprintf("%-12s %8s %8s %8s %8s %8s\n",
		"benchmark", "alu", "memory", "move", "control", "sys")
	for _, row := range f.Rows {
		s += fmt.Sprintf("%-12s", row.Name)
		for c := ic.Class(0); c < ic.NumClasses; c++ {
			s += fmt.Sprintf(" %7.1f%%", 100*row.Mix.Fraction(c))
		}
		s += "\n"
	}
	s += fmt.Sprintf("%-12s", "average")
	for c := ic.Class(0); c < ic.NumClasses; c++ {
		s += fmt.Sprintf(" %7.1f%%", 100*f.Average[c])
	}
	s += "\n"
	return s
}

// MemoryFraction returns the averaged memory share (the paper's ~32%).
func (f *Figure2) MemoryFraction() float64 { return f.Average[ic.ClassMemory] }

// ControlFraction returns the averaged control share (the paper's >15%).
func (f *Figure2) ControlFraction() float64 { return f.Average[ic.ClassControl] }

// --- Figure 3 --------------------------------------------------------------

// Figure3 holds the Amdahl curves computed from the measured mix.
type Figure3 struct {
	MemFraction float64
	Points      []stats.AmdahlPoint
	Limit       float64
}

// Figure3Amdahl evaluates the speed-up bound curves.
func (r *Runner) Figure3Amdahl(names []string) (*Figure3, error) {
	f2, err := r.Figure2Mix(names)
	if err != nil {
		return nil, err
	}
	mem := f2.MemoryFraction()
	var enh []float64
	for e := 1.0; e <= 16; e += 0.5 {
		enh = append(enh, e)
	}
	return &Figure3{
		MemFraction: mem,
		Points:      stats.AmdahlCurves(mem, enh),
		Limit:       stats.AmdahlLimit(1 - mem),
	}, nil
}

// Render formats Figure 3 as a table of curve points.
func (f *Figure3) Render() string {
	s := fmt.Sprintf("Figure 3 — Amdahl bound; measured memory fraction %.3f (asymptote %.2f)\n\n",
		f.MemFraction, f.Limit)
	s += fmt.Sprintf("%12s %18s %20s\n", "enhancement", "memory separate", "memory overlapped")
	for _, p := range f.Points {
		s += fmt.Sprintf("%12.1f %18.3f %20.3f\n", p.Enhancement, p.Separate, p.Overlapped)
	}
	return s
}
