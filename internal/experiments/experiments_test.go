package experiments

import (
	"strings"
	"testing"
)

// A small, fast subset for unit-testing the experiment machinery.
var fast = []string{"qsort", "serialise", "times10"}

func TestFigure2(t *testing.T) {
	r := NewRunner()
	f2, err := r.Figure2Mix(fast)
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.Rows) != len(fast) {
		t.Fatalf("rows %d", len(f2.Rows))
	}
	// Fractions sum to ~1 and memory is in the paper's neighbourhood.
	var sum float64
	for _, v := range f2.Average {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("fractions sum to %f", sum)
	}
	if f2.MemoryFraction() < 0.2 || f2.MemoryFraction() > 0.5 {
		t.Errorf("memory fraction %.3f out of plausible range", f2.MemoryFraction())
	}
	if !strings.Contains(f2.Render(), "average") {
		t.Error("render incomplete")
	}
}

func TestFigure3(t *testing.T) {
	r := NewRunner()
	f3, err := r.Figure3Amdahl(fast)
	if err != nil {
		t.Fatal(err)
	}
	if f3.Limit < 2 || f3.Limit > 5 {
		t.Errorf("Amdahl limit %.2f implausible", f3.Limit)
	}
	last := f3.Points[len(f3.Points)-1]
	if last.Overlapped > f3.Limit+1e-9 {
		t.Error("overlapped curve exceeds its asymptote")
	}
	if !strings.Contains(f3.Render(), "Amdahl") {
		t.Error("render incomplete")
	}
}

func TestTable1(t *testing.T) {
	r := NewRunner()
	t1, err := r.Table1Compaction(fast)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Avg.TraceSpeedup <= t1.Avg.BBSpeedup {
		t.Errorf("traces (%.2f) must beat basic blocks (%.2f)",
			t1.Avg.TraceSpeedup, t1.Avg.BBSpeedup)
	}
	if t1.Avg.TraceLen <= t1.Avg.BBLen {
		t.Error("traces must be longer than basic blocks")
	}
	if !strings.Contains(t1.Render(), "average") {
		t.Error("render incomplete")
	}
}

func TestTable2(t *testing.T) {
	r := NewRunner()
	t2, err := r.Table2Branches(fast)
	if err != nil {
		t.Fatal(err)
	}
	if t2.AvgPfp <= 0 || t2.AvgPfp >= 0.5 {
		t.Errorf("avg P_fp %.3f out of range", t2.AvgPfp)
	}
	var mass float64
	for _, v := range t2.Histogram {
		mass += v
	}
	if mass < 0.99 || mass > 1.01 {
		t.Errorf("histogram mass %f", mass)
	}
	// The paper's key observation: most branches are near-deterministic.
	if t2.Histogram[0] < 0.3 {
		t.Errorf("expected dominant near-zero bin, got %f", t2.Histogram[0])
	}
	for _, row := range t2.Rows {
		// Backward branches are NOT 90% taken (the 90/50 rule fails).
		if row.BackwardTaken > 0.7 {
			t.Errorf("%s: backward-taken %.2f looks like numeric code", row.Name, row.BackwardTaken)
		}
	}
	if !strings.Contains(t2.Render(), "Figure 4") {
		t.Error("render incomplete")
	}
}

func TestTable3(t *testing.T) {
	r := NewRunner()
	t3, err := r.Table3Sweep(fast, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range t3.Rows {
		if row.Speedups[0] > row.Speedups[1]+0.05 {
			t.Errorf("%s: more units slower (%v)", row.Name, row.Speedups)
		}
		if row.Speedups[0] < 1 {
			t.Errorf("%s: 1-unit slower than sequential", row.Name)
		}
	}
	if !strings.Contains(t3.Render(), "BAM") || !strings.Contains(t3.RenderFigure6(), "Amdahl") {
		t.Error("render incomplete")
	}
}

func TestTable4(t *testing.T) {
	r := NewRunner()
	t4, err := r.Table4Absolute([]string{"reverse", "qsort"})
	if err != nil {
		t.Fatal(err)
	}
	if t4.NreverseMLIPS <= 0 {
		t.Error("NREVERSE MLIPS missing")
	}
	for _, row := range t4.Rows {
		if row.MeasuredMs <= 0 {
			t.Errorf("%s: non-positive time", row.Name)
		}
	}
	if !strings.Contains(t4.Render(), "MLIPS") {
		t.Error("render incomplete")
	}
}

func TestTable5(t *testing.T) {
	r := NewRunner()
	t5, err := r.Table5Relative(fast)
	if err != nil {
		t.Fatal(err)
	}
	if t5.AvgSym3 <= 1 || t5.AvgBAM <= 1 {
		t.Errorf("speed-ups must exceed 1: sym3 %.2f bam %.2f", t5.AvgSym3, t5.AvgBAM)
	}
	if t5.AvgSym3 <= t5.AvgBAM {
		t.Errorf("trace scheduling (%.2f) must beat the BAM-like machine (%.2f)",
			t5.AvgSym3, t5.AvgBAM)
	}
	if !strings.Contains(t5.Render(), "average") {
		t.Error("render incomplete")
	}
}

func TestRunnerCaching(t *testing.T) {
	r := NewRunner()
	if _, err := r.get("qsort"); err != nil {
		t.Fatal(err)
	}
	e1, _ := r.get("qsort")
	e2, _ := r.get("qsort")
	if e1 != e2 {
		t.Error("runner must cache entries")
	}
	if _, err := r.get("nosuch"); err == nil {
		t.Error("unknown benchmark must error")
	}
}

func TestSuiteNames(t *testing.T) {
	if len(SuiteNames()) != 14 {
		t.Errorf("suite rows %d", len(SuiteNames()))
	}
	if len(Table2Names()) != 16 {
		t.Errorf("table 2 rows %d", len(Table2Names()))
	}
}

func TestSymbol3Config(t *testing.T) {
	c := Symbol3Config()
	if c.Units != 3 || c.MemLatency != 3 || c.BranchBubble != 2 {
		t.Errorf("prototype config %+v", c)
	}
}
