// Package machine describes the parameterized target of the back end: the
// class of parallel synchronous non-homogeneous architectures of paper §3 —
// one central control, several functional units connected by buses, static
// predictable timing, one very long instruction issued per cycle. A
// configuration with N units can issue, per cycle, N memory accesses, N ALU
// operations, N control operations and N local data movements (Figure 5).
package machine

import "fmt"

// Config describes one architecture configuration.
type Config struct {
	// Units is the number of basic units (paper Table 3 sweeps 1..5).
	Units int
	// MemLatency is the pipelined memory latency in cycles: a load issued
	// at cycle t may be consumed at t+MemLatency (paper: 2 cycles).
	MemLatency int
	// BranchBubble is the penalty of a taken branch (pipelined control
	// resolves in the second stage: 1 dead cycle).
	BranchBubble int
	// DisambiguateRegions lets the scheduler use static memory-region
	// annotations (heap/env/cp/trail) to break memory dependencies. The
	// paper argues this is unsound for the stack areas because most
	// references are pointer-derived (§4.1), so it is off by default and
	// exists for the ablation study.
	DisambiguateRegions bool
	// SplitFormats applies the prototype's pinout constraint (§5.1):
	// instructions come in two formats — one for ALU operations (with
	// register movement) and one for control operations — so ALU/move and
	// control operations cannot share a word; memory accesses can be
	// issued in both formats. "Then the compiler has to choose, and
	// parallelism is somewhat reduced."
	SplitFormats bool
}

// Default returns the paper's measurement hypotheses for n units: all
// operations take one cycle except memory and control, which take two in
// pipeline (§4.3).
func Default(n int) Config {
	return Config{Units: n, MemLatency: 2, BranchBubble: 1}
}

// BAM returns the single-issue pipelined RISC stand-in for the BAM
// processor: one operation per cycle with the same pipelined memory, and no
// taken-branch penalty (the BAM compiler fills its delayed branches). Used
// with basic-block-only compaction it reproduces the paper's observation
// that the BAM sits at the basic-block compaction limit.
func BAM() Config {
	return Config{Units: 1, MemLatency: 2, BranchBubble: 0}
}

// Unbounded returns a configuration with effectively infinite resources,
// used for the Table 1 "available concurrency" measurement.
func Unbounded() Config {
	return Config{Units: 1 << 20, MemLatency: 2, BranchBubble: 1}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Units < 1 {
		return fmt.Errorf("machine: need at least one unit, got %d", c.Units)
	}
	if c.MemLatency < 1 || c.BranchBubble < 0 {
		return fmt.Errorf("machine: invalid latencies (mem %d, bubble %d)", c.MemLatency, c.BranchBubble)
	}
	return nil
}

// Slots returns the per-word issue capacity per instruction class:
// memory, alu, move, control (indexed by ic.Class order), plus one sys
// escape per word.
func (c Config) Slots() (mem, alu, move, ctrl, sys int) {
	return c.Units, c.Units, c.Units, c.Units, 1
}

// SeqCost is the sequential-machine cost of one operation class occurrence
// under the same hypotheses: memory and control cost 2, everything else 1.
func SeqCost(isMemOrCtrl bool) int64 {
	if isMemOrCtrl {
		return 2
	}
	return 1
}

func (c Config) String() string {
	if c.Units >= 1<<20 {
		return "unbounded"
	}
	return fmt.Sprintf("%d-unit", c.Units)
}
