package machine

import "testing"

func TestDefault(t *testing.T) {
	c := Default(3)
	if c.Units != 3 || c.MemLatency != 2 || c.BranchBubble != 1 {
		t.Errorf("got %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	mem, alu, move, ctrl, sys := c.Slots()
	if mem != 3 || alu != 3 || move != 3 || ctrl != 3 || sys != 1 {
		t.Errorf("slots %d/%d/%d/%d/%d", mem, alu, move, ctrl, sys)
	}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{Units: 0, MemLatency: 2, BranchBubble: 1},
		{Units: 1, MemLatency: 0, BranchBubble: 1},
		{Units: 1, MemLatency: 2, BranchBubble: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v must be invalid", c)
		}
	}
}

func TestBAMModel(t *testing.T) {
	c := BAM()
	if c.Units != 1 || c.BranchBubble != 0 {
		t.Errorf("BAM model: %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSeqCost(t *testing.T) {
	if SeqCost(true) != 2 || SeqCost(false) != 1 {
		t.Error("paper hypotheses: memory/control 2, rest 1")
	}
}

func TestStrings(t *testing.T) {
	if Default(2).String() != "2-unit" {
		t.Errorf("got %q", Default(2).String())
	}
	if Unbounded().String() != "unbounded" {
		t.Errorf("got %q", Unbounded().String())
	}
	if err := Unbounded().Validate(); err != nil {
		t.Fatal(err)
	}
}
