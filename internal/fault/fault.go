// Package fault defines the structured fault taxonomy shared by the
// sequential IntCode emulator and the VLIW simulator. Every abnormal
// termination of a run — a memory area overflowing its configured bounds,
// an exhausted step or cycle budget, a missed wall-clock deadline, an
// arithmetic fault — is classified as one of the kinds below and surfaced
// as an errors.Is-able sentinel, so that callers (and the differential
// fault-injection harness) can compare the *kind* of failure across the
// two execution paths instead of matching error strings.
package fault

import (
	"errors"
	"fmt"
)

// Kind enumerates the machine fault classes.
type Kind uint8

const (
	None Kind = iota
	// Memory-area overflows, detected at the store sites of the
	// allocation-bump registers (H, ESP/E, B, TR, PDL).
	HeapOverflow
	EnvOverflow
	CPOverflow
	TrailOverflow
	PDLOverflow
	// Resource budgets.
	StepLimit  // sequential emulator instruction budget exhausted
	CycleLimit // VLIW simulator cycle budget exhausted
	Deadline   // wall-clock deadline missed
	// Arithmetic.
	ZeroDivide
	// A load or store outside the simulated memory image (codegen bug or
	// wild pointer), as opposed to a classified area overflow.
	InvalidMemory
	// A ball thrown via throw/1 (or a converted resource fault) unwound
	// the whole choice-point stack without finding a catch/3 frame.
	UncaughtThrow
	// The embedding caller cancelled the run (context cancellation); like
	// the budget faults it is deliberately not catchable.
	Canceled

	// NumKinds bounds the enumeration (for per-kind counter arrays).
	NumKinds
)

var kindNames = [...]string{
	"none", "heap overflow", "environment-stack overflow",
	"choice-point-stack overflow", "trail overflow", "pdl overflow",
	"step limit exceeded", "cycle limit exceeded", "deadline exceeded",
	"zero divisor", "invalid memory access", "uncaught exception",
	"run canceled",
}

// CheckInterval is the polling cadence, in executed steps or issued cycles,
// at which both executors test the wall-clock deadline and the caller's
// cancellation signal. It is shared so the sequential emulator and the VLIW
// simulator cannot drift apart; it must stay a power of two (the executors
// poll with a mask). The differential fault-injection harness covers the
// parity.
const CheckInterval = 4096

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("fault(%d)", k)
}

// Fault is a typed machine fault. The canonical instances below are the
// package's sentinels; executors return them (wrapped with machine
// context) so errors.Is(err, fault.ErrHeapOverflow) works.
type Fault struct {
	Kind Kind
}

func (f *Fault) Error() string { return f.Kind.String() }

// Is matches any Fault of the same kind, so wrapped faults compare equal
// to the sentinels regardless of instance identity.
func (f *Fault) Is(target error) bool {
	t, ok := target.(*Fault)
	return ok && t.Kind == f.Kind
}

// Sentinels, one per kind.
var (
	ErrHeapOverflow  = &Fault{Kind: HeapOverflow}
	ErrEnvOverflow   = &Fault{Kind: EnvOverflow}
	ErrCPOverflow    = &Fault{Kind: CPOverflow}
	ErrTrailOverflow = &Fault{Kind: TrailOverflow}
	ErrPDLOverflow   = &Fault{Kind: PDLOverflow}
	ErrStepLimit     = &Fault{Kind: StepLimit}
	ErrCycleLimit    = &Fault{Kind: CycleLimit}
	ErrDeadline      = &Fault{Kind: Deadline}
	ErrZeroDivide    = &Fault{Kind: ZeroDivide}
	ErrInvalidMemory = &Fault{Kind: InvalidMemory}
	ErrUncaughtThrow = &Fault{Kind: UncaughtThrow}
	ErrCanceled      = &Fault{Kind: Canceled}
)

// Of returns the sentinel for k (nil for None).
func Of(k Kind) *Fault {
	switch k {
	case HeapOverflow:
		return ErrHeapOverflow
	case EnvOverflow:
		return ErrEnvOverflow
	case CPOverflow:
		return ErrCPOverflow
	case TrailOverflow:
		return ErrTrailOverflow
	case PDLOverflow:
		return ErrPDLOverflow
	case StepLimit:
		return ErrStepLimit
	case CycleLimit:
		return ErrCycleLimit
	case Deadline:
		return ErrDeadline
	case ZeroDivide:
		return ErrZeroDivide
	case InvalidMemory:
		return ErrInvalidMemory
	case UncaughtThrow:
		return ErrUncaughtThrow
	case Canceled:
		return ErrCanceled
	}
	return nil
}

// KindOf classifies an error: the Kind of the Fault in its chain, or None
// for non-fault errors (including nil). Metrics aggregation uses it to
// bucket failed runs by kind without string matching.
func KindOf(err error) Kind {
	var f *Fault
	if errors.As(err, &f) {
		return f.Kind
	}
	return None
}

// Catchable reports whether a fault of kind k is converted into a Prolog
// ball catchable by catch/3. Budget faults (step/cycle limits, deadlines)
// are deliberately hard: converting them would let a catch/3 loop run
// forever under a supposedly bounded budget.
func Catchable(k Kind) bool {
	switch k {
	case HeapOverflow, EnvOverflow, CPOverflow, TrailOverflow, PDLOverflow, ZeroDivide:
		return true
	}
	return false
}

// BallName returns the resource_error/1 argument atom (or the ball atom)
// used when converting a fault of kind k into a catchable term.
func BallName(k Kind) string {
	switch k {
	case HeapOverflow:
		return "heap"
	case EnvOverflow:
		return "env"
	case CPOverflow:
		return "cp"
	case TrailOverflow:
		return "trail"
	case PDLOverflow:
		return "pdl"
	}
	return ""
}
