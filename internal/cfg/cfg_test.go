package cfg

import (
	"testing"

	"symbol/internal/emu"
	"symbol/internal/ic"
	"symbol/internal/term"
)

var (
	rA = ic.ArgReg(0)
	rB = ic.ArgReg(1)
)

const (
	t0 = ic.FirstTemp
	t1 = ic.FirstTemp + 1
)

func mkProg(code []ic.Inst, entries ...int) *ic.Program {
	e := map[int]bool{0: true}
	for _, x := range entries {
		e[x] = true
	}
	return &ic.Program{
		Code:    code,
		Atoms:   term.NewTable(),
		Procs:   map[string]int{},
		Names:   map[int]string{},
		Entries: e,
	}
}

// diamond: 0:brcmp→3 / 1:mov 2:jmp→4 / 3:mov / 4:halt
func diamond() *ic.Program {
	return mkProg([]ic.Inst{
		{Op: ic.BrCmp, A: rA, Cond: ic.CondEq, HasImm: true, Imm: 0, Target: 3},
		{Op: ic.Mov, D: t0, A: rA},
		{Op: ic.Jmp, Target: 4},
		{Op: ic.Mov, D: t0, A: rB},
		{Op: ic.Halt},
	})
}

func TestDiamondStructure(t *testing.T) {
	g, err := Build(diamond(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 4 {
		t.Fatalf("got %d blocks, want 4", len(g.Blocks))
	}
	b0 := g.BlockOf(0)
	if len(b0.Succs) != 2 {
		t.Fatalf("branch block needs 2 successors, got %v", b0.Succs)
	}
	// Fall-through first.
	if g.Blocks[b0.Succs[0]].Start != 1 || g.Blocks[b0.Succs[1]].Start != 3 {
		t.Errorf("successor order wrong: %v", b0.Succs)
	}
	join := g.BlockOf(4)
	if len(join.Preds) != 2 {
		t.Errorf("join block needs 2 predecessors, got %v", join.Preds)
	}
}

func TestLivenessDiamond(t *testing.T) {
	g, err := Build(diamond(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b0 := g.BlockOf(0)
	// rA is read on the branch and on the left path; rB on the right path:
	// both live into the branch block.
	if !b0.LiveIn[rA] || !b0.LiveIn[rB] {
		t.Errorf("liveIn(b0) = %v", b0.LiveIn)
	}
	// t0 is dead at the halt block.
	if g.BlockOf(4).LiveIn[t0] {
		t.Error("t0 must be dead at halt")
	}
	// t0 is NOT live into block 3 before its own def... it is defined there:
	if g.BlockOf(3).LiveIn[t0] {
		t.Error("t0 defined before use in block 3")
	}
}

func TestBoundaryLiveAtReturn(t *testing.T) {
	p := mkProg([]ic.Inst{
		{Op: ic.Mov, D: t0, A: rA},
		{Op: ic.JmpR, A: ic.RegCP},
	})
	g, err := Build(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := g.BlockOf(0)
	// Machine state and argument registers are conservatively live at the
	// indirect jump; temporaries are not.
	if !b.LiveOut[ic.RegH] || !b.LiveOut[ic.RegB] || !b.LiveOut[rA] {
		t.Errorf("boundary live set missing registers: %v", b.LiveOut)
	}
	if b.LiveOut[t0] || b.LiveOut[t1] {
		t.Error("temporaries must be dead at indirect boundaries")
	}
}

func TestIndirectEntriesStartBlocks(t *testing.T) {
	p := mkProg([]ic.Inst{
		{Op: ic.Mov, D: t0, A: rA},
		{Op: ic.Mov, D: t1, A: rB}, // pc 1 is an indirect entry
		{Op: ic.Halt},
	}, 1)
	g, err := Build(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := g.ByStart[1]
	if b == nil || !b.Indirect {
		t.Fatal("pc 1 must start an indirect block")
	}
}

func TestWeightsFromProfile(t *testing.T) {
	p := diamond()
	prof := &emu.Profile{
		Expect: []int64{10, 7, 7, 3, 10},
		Taken:  []int64{3, 0, 7, 0, 0},
	}
	g, err := Build(p, prof)
	if err != nil {
		t.Fatal(err)
	}
	if g.BlockOf(1).Weight != 7 || g.BlockOf(3).Weight != 3 {
		t.Error("block weights must come from the profile")
	}
	pr, ok := g.BranchProbability(prof, g.BlockOf(0))
	if !ok || pr != 0.3 {
		t.Errorf("probability = %v, %v", pr, ok)
	}
}

func TestLoopLiveness(t *testing.T) {
	// 0: mov t0, a0 ; 1: add t0,t0,-1 ; 2: brcmp t0 gt 0 → 1 ; 3: halt
	p := mkProg([]ic.Inst{
		{Op: ic.Mov, D: t0, A: rA},
		{Op: ic.Add, D: t0, A: t0, HasImm: true, Imm: -1},
		{Op: ic.BrCmp, A: t0, Cond: ic.CondGt, HasImm: true, Imm: 0, Target: 1},
		{Op: ic.Halt},
	})
	g, err := Build(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	loop := g.BlockOf(1)
	if !loop.LiveIn[t0] {
		t.Error("loop-carried register must be live at the loop head")
	}
	if len(loop.Preds) != 2 {
		t.Errorf("loop head needs 2 preds, got %v", loop.Preds)
	}
}

func TestStats(t *testing.T) {
	g, err := Build(diamond(), &emu.Profile{
		Expect: []int64{10, 7, 7, 3, 10},
		Taken:  make([]int64, 5),
	})
	if err != nil {
		t.Fatal(err)
	}
	s := g.ComputeStats()
	if s.Blocks != 4 {
		t.Errorf("blocks = %d", s.Blocks)
	}
	if s.AvgStaticLen <= 0 || s.AvgDynamicLen <= 0 {
		t.Error("stats must be positive")
	}
}

func TestInvalidTarget(t *testing.T) {
	p := mkProg([]ic.Inst{{Op: ic.Jmp, Target: 99}})
	if _, err := Build(p, nil); err == nil {
		t.Error("expected error for out-of-range branch target")
	}
}
