// Package cfg builds the control-flow graph of an IC program: basic blocks,
// successor/predecessor edges, per-block execution weights from the
// sequential profile, and register liveness. The back end (internal/core)
// uses it for trace formation and for the off-live dependency rule that
// gates speculative code motion above branches (paper §4.3).
package cfg

import (
	"fmt"

	"symbol/internal/emu"
	"symbol/internal/ic"
)

// Block is one basic block: instructions [Start, End) of the program.
type Block struct {
	ID    int
	Start int
	End   int
	// Succs are CFG successor block IDs. For a conditional branch the
	// first successor is the fall-through and the second the taken target.
	Succs []int
	Preds []int
	// Indirect marks blocks reachable through indirect control flow
	// (procedure entries, return points, retry addresses): they must stay
	// addressable in scheduled code.
	Indirect bool
	// Weight is the execution count of the block (profile Expect of its
	// first instruction), 0 without a profile.
	Weight int64

	// Liveness over virtual registers.
	LiveIn  map[ic.Reg]bool
	LiveOut map[ic.Reg]bool
}

// Len returns the number of instructions in the block.
func (b *Block) Len() int { return b.End - b.Start }

// Graph is the CFG of a program.
type Graph struct {
	Prog    *ic.Program
	Blocks  []*Block
	ByStart map[int]*Block // leader pc → block
	blockOf []int          // pc → block id
}

// BlockOf returns the block containing pc.
func (g *Graph) BlockOf(pc int) *Block { return g.Blocks[g.blockOf[pc]] }

// Build constructs the CFG. prof may be nil.
func Build(prog *ic.Program, prof *emu.Profile) (*Graph, error) {
	n := len(prog.Code)
	leaders := make([]bool, n+1)
	leaders[0] = true
	for pc := 0; pc < n; pc++ {
		in := &prog.Code[pc]
		switch in.Op {
		case ic.BrTag, ic.BrCmp, ic.Jmp, ic.Jsr:
			if in.Target < 0 || in.Target >= n {
				return nil, fmt.Errorf("cfg: pc %d branches to invalid target %d", pc, in.Target)
			}
			leaders[in.Target] = true
			leaders[pc+1] = true
		case ic.JmpR, ic.Halt:
			leaders[pc+1] = true
		}
	}
	for pc := range prog.Entries {
		leaders[pc] = true
	}

	g := &Graph{Prog: prog, ByStart: map[int]*Block{}, blockOf: make([]int, n)}
	start := 0
	for pc := 1; pc <= n; pc++ {
		if pc == n || leaders[pc] {
			b := &Block{ID: len(g.Blocks), Start: start, End: pc}
			b.Indirect = prog.Entries[start]
			g.Blocks = append(g.Blocks, b)
			g.ByStart[start] = b
			for i := start; i < pc; i++ {
				g.blockOf[i] = b.ID
			}
			start = pc
		}
	}

	// Edges.
	for _, b := range g.Blocks {
		last := &prog.Code[b.End-1]
		addEdge := func(toPC int) {
			to := g.ByStart[toPC]
			b.Succs = append(b.Succs, to.ID)
			to.Preds = append(to.Preds, b.ID)
		}
		switch last.Op {
		case ic.BrTag, ic.BrCmp:
			addEdge(b.End) // fall-through first
			addEdge(last.Target)
		case ic.Jmp:
			addEdge(last.Target)
		case ic.Jsr, ic.JmpR, ic.Halt:
			// Interprocedural or terminal: no static successors.
		default:
			if b.End < n {
				addEdge(b.End)
			}
		}
	}

	if prof != nil {
		for _, b := range g.Blocks {
			b.Weight = prof.Expect[b.Start]
		}
	}
	g.computeLiveness()
	return g, nil
}

// boundaryLive is the conservative live set at indirect control-flow
// boundaries (returns, computed jumps, calls): the abstract machine state
// registers plus all argument registers.
func boundaryLive() map[ic.Reg]bool {
	m := map[ic.Reg]bool{
		ic.RegH: true, ic.RegESP: true, ic.RegE: true, ic.RegB: true,
		ic.RegTR: true, ic.RegCP: true, ic.RegRV: true, ic.RegEB: true,
	}
	for i := 0; i < ic.NumArgRegs; i++ {
		m[ic.ArgReg(i)] = true
	}
	return m
}

// computeLiveness runs the standard backward dataflow to a fixed point.
func (g *Graph) computeLiveness() {
	code := g.Prog.Code
	// use/def per block.
	use := make([]map[ic.Reg]bool, len(g.Blocks))
	def := make([]map[ic.Reg]bool, len(g.Blocks))
	exitLive := make([]map[ic.Reg]bool, len(g.Blocks))
	for _, b := range g.Blocks {
		u := map[ic.Reg]bool{}
		d := map[ic.Reg]bool{}
		var scratch []ic.Reg
		for pc := b.Start; pc < b.End; pc++ {
			in := &code[pc]
			scratch = in.Uses(scratch[:0])
			for _, r := range scratch {
				if !d[r] {
					u[r] = true
				}
			}
			if dst := in.Def(); dst != ic.None {
				d[dst] = true
			}
		}
		use[b.ID], def[b.ID] = u, d
		switch code[b.End-1].Op {
		case ic.Jsr, ic.JmpR:
			exitLive[b.ID] = boundaryLive()
		case ic.Halt:
			exitLive[b.ID] = map[ic.Reg]bool{}
		}
		b.LiveIn = map[ic.Reg]bool{}
		b.LiveOut = map[ic.Reg]bool{}
	}

	changed := true
	for changed {
		changed = false
		for i := len(g.Blocks) - 1; i >= 0; i-- {
			b := g.Blocks[i]
			out := map[ic.Reg]bool{}
			if el := exitLive[b.ID]; el != nil {
				for r := range el {
					out[r] = true
				}
			}
			for _, s := range b.Succs {
				for r := range g.Blocks[s].LiveIn {
					out[r] = true
				}
			}
			in := map[ic.Reg]bool{}
			for r := range use[b.ID] {
				in[r] = true
			}
			for r := range out {
				if !def[b.ID][r] {
					in[r] = true
				}
			}
			if len(out) != len(b.LiveOut) || len(in) != len(b.LiveIn) {
				changed = true
			}
			b.LiveOut = out
			b.LiveIn = in
		}
	}
}

// BranchProbability returns the probability that the conditional branch
// ending block b is taken, and whether the block ever executed.
func (g *Graph) BranchProbability(prof *emu.Profile, b *Block) (float64, bool) {
	last := b.End - 1
	in := &g.Prog.Code[last]
	if !in.IsCondBranch() || prof == nil {
		return 0, false
	}
	return prof.Probability(last)
}

// Stats summarizes CFG shape (used by the code analyses).
type Stats struct {
	Blocks        int
	AvgStaticLen  float64 // unweighted mean block length
	AvgDynamicLen float64 // execution-weighted mean block length
}

// ComputeStats returns block-size statistics; the dynamic mean corresponds
// to the paper's "basic blocks of 6-7 instructions" observation.
func (g *Graph) ComputeStats() Stats {
	s := Stats{Blocks: len(g.Blocks)}
	var sum, wsum, w float64
	for _, b := range g.Blocks {
		sum += float64(b.Len())
		wsum += float64(b.Weight) * float64(b.Len())
		w += float64(b.Weight)
	}
	if len(g.Blocks) > 0 {
		s.AvgStaticLen = sum / float64(len(g.Blocks))
	}
	if w > 0 {
		s.AvgDynamicLen = wsum / w
	}
	return s
}

// Validate checks structural invariants; used by tests.
func (g *Graph) Validate() error {
	for _, b := range g.Blocks {
		if b.Start >= b.End {
			return fmt.Errorf("cfg: empty block %d", b.ID)
		}
		for pc := b.Start; pc < b.End-1; pc++ {
			if g.Prog.Code[pc].IsBranch() {
				return fmt.Errorf("cfg: control op mid-block at pc %d", pc)
			}
		}
		for _, s := range b.Succs {
			if s < 0 || s >= len(g.Blocks) {
				return fmt.Errorf("cfg: block %d has invalid successor %d", b.ID, s)
			}
		}
	}
	return nil
}
