// Package snapshot defines the versioned binary container for compiled
// SYMBOL programs: the ic.Program (code, atom table, symbol maps), the
// predecoded exec image, the compile options and embedded source, and an
// optional execution profile — everything a process needs to start
// answering queries without running the Prolog → BAM → ICI → predecode
// pipeline.
//
// # Container layout
//
//	offset  size  field
//	0       8     magic "SYMSNAP\x1a"
//	8       4     format version (u32 LE)
//	12      4     section count (u32 LE)
//	16      24×n  section table: {id u32, off u64, len u64, crc u32} LE
//	…       4     table CRC (u32 LE, Castagnoli, over bytes 12 .. 16+24n)
//	…       —     section payloads (byte ranges named by the table)
//
// Per-section payloads are varint-encoded via internal/wire and guarded by
// their own Castagnoli CRC in the table entry. The header layout — and the
// payload encodings of the meta and source sections — are frozen across
// format versions. That freeze is the compatibility policy: a reader that
// meets a snapshot from a different version cannot trust the program
// sections, but it can still verify and extract the embedded source and
// compile options, and recompile. The table CRC deliberately excludes the
// version field, so a corrupted version byte surfaces as a *VersionError
// (recoverable, source intact) rather than a dead checksum failure.
//
// Decoding is total over arbitrary bytes: every failure is a typed error
// (ErrNotSnapshot, *FormatError, *VersionError, *ChecksumError), never a
// panic, and a successfully decoded image has passed the full executor-
// safety validation in internal/ic and internal/exec.
package snapshot

import (
	"errors"
	"fmt"
	"hash/crc32"

	"symbol/internal/exec"
	"symbol/internal/ic"
	"symbol/internal/wire"
)

// Version is the current snapshot format version. Bump it whenever any
// program-section encoding changes shape; the header and the meta/source
// sections must keep decoding under old readers regardless.
const Version uint32 = 1

// Magic is the 8-byte container signature.
const Magic = "SYMSNAP\x1a"

// Section IDs. Meta and source are frozen (see the package comment);
// program, exec and profile may change shape with Version.
const (
	SecMeta    uint32 = 1 // compile kind + options + goal + undefined list (frozen)
	SecSource  uint32 = 2 // original Prolog source text (frozen)
	SecProgram uint32 = 3 // ic.Program: code, atoms, entries, symbol maps
	SecExec    uint32 = 4 // predecoded exec.Program: plain + fused streams
	SecProfile uint32 = 5 // optional emulation profile (expect/taken counts)
)

// SectionName returns a human-readable name for a section ID.
func SectionName(id uint32) string {
	switch id {
	case SecMeta:
		return "meta"
	case SecSource:
		return "source"
	case SecProgram:
		return "program"
	case SecExec:
		return "exec"
	case SecProfile:
		return "profile"
	}
	return fmt.Sprintf("section#%d", id)
}

// Kind distinguishes what the compiler front end produced.
type Kind uint8

const (
	KindProgram Kind = 1 // whole-program compile (symbol.Load / Compile)
	KindQuery   Kind = 2 // kb + synthesized goal (symbol.CompileQuery)
)

// ErrNotSnapshot reports input that does not begin with the container
// magic; callers sniffing "source or snapshot?" branch on it.
var ErrNotSnapshot = errors.New("snapshot: not a snapshot (bad magic)")

// FormatError reports a structurally invalid container or section: bad
// table geometry, truncated payloads, or a section that fails its semantic
// validation after the checksum passed.
type FormatError struct {
	Section string // section name, or "header"
	Err     error
}

func (e *FormatError) Error() string {
	return fmt.Sprintf("snapshot: invalid %s: %v", e.Section, e.Err)
}

func (e *FormatError) Unwrap() error { return e.Err }

// ChecksumError reports a section whose payload does not match its CRC.
type ChecksumError struct {
	Section string
}

func (e *ChecksumError) Error() string {
	return fmt.Sprintf("snapshot: %s section checksum mismatch", e.Section)
}

// VersionError reports a snapshot written by a different format version.
// When the version-skewed container still carries intact meta and source
// sections (their encodings are frozen), they are recovered here so the
// caller can fall back to recompiling; Source is "" when recovery failed.
type VersionError struct {
	Got, Want uint32
	Kind      Kind
	Source    string
	Goal      string
	Arith     bool
	MaxSteps  int64
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("snapshot: format version %d (reader supports %d)", e.Got, e.Want)
}

// Image is the in-memory content of a snapshot.
type Image struct {
	Kind      Kind
	Source    string   // embedded Prolog source ("" if not embedded)
	Goal      string   // query goal text (KindQuery only)
	Arith     bool     // Options.ArithChecks at compile time
	MaxSteps  int64    // Options.MaxSteps at compile time
	Undefined []string // undefined-predicate warnings from the compile

	Prog *ic.Program
	Exec *exec.Program // nil when the section is absent (re-predecode)

	// ProfExpect/ProfTaken are the embedded execution profile (both sized
	// exactly len(Prog.Code)), or nil when no profile was embedded.
	ProfExpect []int64
	ProfTaken  []int64
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Sniff reports whether data begins with the snapshot magic.
func Sniff(data []byte) bool {
	return len(data) >= len(Magic) && string(data[:len(Magic)]) == Magic
}

const (
	headerLen  = 16 // magic + version + count
	entryLen   = 24 // id + off + len + crc
	maxSection = 64 // sanity cap on the table size
)

type section struct {
	id  uint32
	off uint64
	ln  uint64
	crc uint32
}

// appendSections assembles a container from payload byte slices.
func appendSections(version uint32, secs []struct {
	id      uint32
	payload []byte
}) []byte {
	var w wire.Writer
	w.Raw([]byte(Magic))
	w.Bytes32(version)
	w.Bytes32(uint32(len(secs)))
	off := uint64(headerLen + entryLen*len(secs) + 4)
	for _, s := range secs {
		w.Bytes32(s.id)
		w.Bytes64(off)
		w.Bytes64(uint64(len(s.payload)))
		w.Bytes32(crc32.Checksum(s.payload, castagnoli))
		off += uint64(len(s.payload))
	}
	table := w.Bytes()[12:] // count + entries
	w.Bytes32(crc32.Checksum(table, castagnoli))
	for _, s := range secs {
		w.Raw(s.payload)
	}
	return w.Bytes()
}

// Encode serializes an image into a snapshot container.
func Encode(img *Image) []byte {
	var meta wire.Writer
	meta.Byte(byte(img.Kind))
	meta.String(img.Goal)
	meta.Bool(img.Arith)
	meta.I64(img.MaxSteps)
	meta.Count(len(img.Undefined))
	for _, u := range img.Undefined {
		meta.String(u)
	}

	var prog wire.Writer
	ic.AppendProgram(&prog, img.Prog)

	secs := []struct {
		id      uint32
		payload []byte
	}{
		{SecMeta, meta.Bytes()},
		{SecSource, []byte(img.Source)},
		{SecProgram, prog.Bytes()},
	}
	if img.Exec != nil {
		var xw wire.Writer
		exec.AppendProgram(&xw, img.Exec)
		secs = append(secs, struct {
			id      uint32
			payload []byte
		}{SecExec, xw.Bytes()})
	}
	if img.ProfExpect != nil {
		var pw wire.Writer
		pw.Count(len(img.ProfExpect))
		for _, v := range img.ProfExpect {
			pw.I64(v)
		}
		for _, v := range img.ProfTaken {
			pw.I64(v)
		}
		secs = append(secs, struct {
			id      uint32
			payload []byte
		}{SecProfile, pw.Bytes()})
	}
	return appendSections(Version, secs)
}

// parseTable reads and verifies the header and section table. It returns
// the table even on version skew (vErr non-nil) so recovery can proceed.
func parseTable(data []byte) (secs []section, vErr *VersionError, err error) {
	if !Sniff(data) {
		return nil, nil, ErrNotSnapshot
	}
	r := wire.NewReader(data)
	r.Raw(len(Magic))
	version := r.Bytes32()
	count := r.Bytes32()
	if r.Err() != nil || count > maxSection {
		return nil, nil, &FormatError{Section: "header", Err: wire.ErrMalformed}
	}
	tableEnd := headerLen + entryLen*int(count)
	if len(data) < tableEnd+4 {
		return nil, nil, &FormatError{Section: "header", Err: wire.ErrTruncated}
	}
	secs = make([]section, count)
	for i := range secs {
		secs[i] = section{
			id:  r.Bytes32(),
			off: r.Bytes64(),
			ln:  r.Bytes64(),
			crc: r.Bytes32(),
		}
	}
	tableCRC := r.Bytes32()
	if r.Err() != nil {
		return nil, nil, &FormatError{Section: "header", Err: r.Err()}
	}
	if crc32.Checksum(data[12:tableEnd], castagnoli) != tableCRC {
		return nil, nil, &ChecksumError{Section: "header"}
	}
	for _, s := range secs {
		if s.off > uint64(len(data)) || s.ln > uint64(len(data))-s.off {
			return nil, nil, &FormatError{Section: SectionName(s.id), Err: wire.ErrTruncated}
		}
	}
	if version != Version {
		return secs, &VersionError{Got: version, Want: Version}, nil
	}
	return secs, nil, nil
}

// payload returns a section's verified payload bytes, or nil if the
// section is absent. A CRC mismatch returns a *ChecksumError.
func payload(data []byte, secs []section, id uint32) ([]byte, error) {
	for _, s := range secs {
		if s.id != id {
			continue
		}
		p := data[s.off : s.off+s.ln]
		if crc32.Checksum(p, castagnoli) != s.crc {
			return nil, &ChecksumError{Section: SectionName(id)}
		}
		return p, nil
	}
	return nil, nil
}

// decodeMeta decodes the frozen meta section into img.
func decodeMeta(p []byte, img *Image) error {
	r := wire.NewReader(p)
	img.Kind = Kind(r.Byte())
	img.Goal = r.String()
	img.Arith = r.Bool()
	img.MaxSteps = r.I64()
	n := r.Len(1)
	if n > 0 {
		img.Undefined = make([]string, 0, n)
		for i := 0; i < n; i++ {
			img.Undefined = append(img.Undefined, r.String())
		}
	}
	r.Expect(img.Kind == KindProgram || img.Kind == KindQuery)
	r.Expect(r.Remaining() == 0)
	return r.Err()
}

// Decode parses, verifies and validates a snapshot. The returned image is
// safe to execute. On version skew it returns a *VersionError that carries
// the recovered source and compile options when their sections are intact.
func Decode(data []byte) (*Image, error) {
	secs, vErr, err := parseTable(data)
	if err != nil {
		return nil, err
	}
	if vErr != nil {
		// Frozen-section recovery: salvage compile inputs for the caller's
		// recompile fallback; any corruption just leaves them empty.
		var img Image
		if p, err := payload(data, secs, SecMeta); err == nil && p != nil {
			if decodeMeta(p, &img) == nil {
				vErr.Kind = img.Kind
				vErr.Goal = img.Goal
				vErr.Arith = img.Arith
				vErr.MaxSteps = img.MaxSteps
			}
		}
		if p, err := payload(data, secs, SecSource); err == nil && p != nil {
			vErr.Source = string(p)
		}
		return nil, vErr
	}

	img := &Image{}
	p, err := payload(data, secs, SecMeta)
	if err != nil {
		return nil, err
	}
	if p == nil {
		return nil, &FormatError{Section: "meta", Err: errors.New("missing")}
	}
	if err := decodeMeta(p, img); err != nil {
		return nil, &FormatError{Section: "meta", Err: err}
	}

	if p, err = payload(data, secs, SecSource); err != nil {
		return nil, err
	}
	img.Source = string(p)

	if p, err = payload(data, secs, SecProgram); err != nil {
		return nil, err
	}
	if p == nil {
		return nil, &FormatError{Section: "program", Err: errors.New("missing")}
	}
	r := wire.NewReader(p)
	img.Prog, err = ic.DecodeProgram(r)
	if err != nil {
		return nil, &FormatError{Section: "program", Err: err}
	}
	if r.Remaining() != 0 {
		return nil, &FormatError{Section: "program", Err: errors.New("trailing bytes")}
	}

	if p, err = payload(data, secs, SecExec); err != nil {
		return nil, err
	}
	if p != nil {
		r = wire.NewReader(p)
		img.Exec, err = exec.DecodeProgram(r, img.Prog)
		if err != nil {
			return nil, &FormatError{Section: "exec", Err: err}
		}
		if r.Remaining() != 0 {
			return nil, &FormatError{Section: "exec", Err: errors.New("trailing bytes")}
		}
	}

	if p, err = payload(data, secs, SecProfile); err != nil {
		return nil, err
	}
	if p != nil {
		r = wire.NewReader(p)
		n := r.Len(1)
		// The profile indexes by original pc; a size disagreement with the
		// code array would crash profiled runs, so it is structural here.
		if r.Err() == nil && n != len(img.Prog.Code) {
			return nil, &FormatError{Section: "profile", Err: fmt.Errorf("%d entries for %d ICIs", n, len(img.Prog.Code))}
		}
		img.ProfExpect = make([]int64, n)
		for i := range img.ProfExpect {
			img.ProfExpect[i] = r.I64()
		}
		img.ProfTaken = make([]int64, n)
		for i := range img.ProfTaken {
			img.ProfTaken[i] = r.I64()
		}
		r.Expect(r.Remaining() == 0)
		if err := r.Err(); err != nil {
			return nil, &FormatError{Section: "profile", Err: err}
		}
	}
	return img, nil
}

// SectionInfo describes one section for tooling and size reports.
type SectionInfo struct {
	ID   uint32
	Name string
	Len  int
}

// Info is the cheap, non-validating summary of a snapshot container used
// by tooling (size reports, cache listings). Only the header and table are
// verified; payloads are not decoded.
type Info struct {
	Version  uint32
	Sections []SectionInfo
}

// ReadInfo summarizes a snapshot container without decoding payloads.
// Version-skewed containers still summarize (that is the point: tooling
// must be able to describe a snapshot it cannot load).
func ReadInfo(data []byte) (*Info, error) {
	secs, vErr, err := parseTable(data)
	if err != nil {
		return nil, err
	}
	info := &Info{Version: Version}
	if vErr != nil {
		info.Version = vErr.Got
	}
	for _, s := range secs {
		info.Sections = append(info.Sections, SectionInfo{ID: s.id, Name: SectionName(s.id), Len: int(s.ln)})
	}
	return info, nil
}
