package snapshot

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"testing"

	"symbol/internal/exec"
	"symbol/internal/ic"
	"symbol/internal/term"
	"symbol/internal/word"
)

// tinyProg builds a small but representative ic.Program by hand: an
// immediate move, an ALU op, a branch, a syscall, a halt — enough to
// exercise most presence bits in the instruction encoding.
func tinyProg() *ic.Program {
	atoms := term.NewTable()
	atoms.Intern("foo")
	t0 := ic.Reg(ic.FirstTemp)
	t1 := ic.Reg(ic.FirstTemp + 1)
	return &ic.Program{
		Code: []ic.Inst{
			{Op: ic.MovI, D: t0, Word: word.MakeInt(42)},
			{Op: ic.Add, D: t1, A: t0, HasImm: true, Imm: 1},
			{Op: ic.BrCmp, A: t1, B: t0, Cond: ic.CondEq, Target: 4},
			{Op: ic.SysOp, Sys: ic.SysNl},
			{Op: ic.Halt},
		},
		Atoms:   atoms,
		Procs:   map[string]int{"main/0": 0},
		Names:   map[int]string{0: "main/0"},
		Entries: map[int]bool{0: true},
	}
}

func tinyImage() *Image {
	p := tinyProg()
	return &Image{
		Kind:       KindProgram,
		Source:     "main.\n",
		Arith:      true,
		MaxSteps:   123,
		Undefined:  []string{"missing/1"},
		Prog:       p,
		Exec:       exec.Of(p),
		ProfExpect: []int64{1, 1, 1, 1, 1},
		ProfTaken:  []int64{0, 0, 1, 0, 0},
	}
}

func TestRoundTrip(t *testing.T) {
	img := tinyImage()
	data := Encode(img)
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Kind != img.Kind || got.Source != img.Source || got.Goal != img.Goal ||
		got.Arith != img.Arith || got.MaxSteps != img.MaxSteps {
		t.Errorf("meta mismatch: got %+v", got)
	}
	if !reflect.DeepEqual(got.Undefined, img.Undefined) {
		t.Errorf("undefined = %v, want %v", got.Undefined, img.Undefined)
	}
	if !reflect.DeepEqual(got.Prog.Code, img.Prog.Code) {
		t.Errorf("code mismatch:\ngot  %v\nwant %v", got.Prog.Code, img.Prog.Code)
	}
	if !reflect.DeepEqual(got.Prog.Atoms.Ordered(), img.Prog.Atoms.Ordered()) {
		t.Errorf("atoms = %v, want %v", got.Prog.Atoms.Ordered(), img.Prog.Atoms.Ordered())
	}
	if got.Prog.Entry != img.Prog.Entry || got.Prog.FailPC != img.Prog.FailPC || got.Prog.ThrowPC != img.Prog.ThrowPC {
		t.Errorf("entry/fail/throw mismatch")
	}
	if !reflect.DeepEqual(got.Prog.Procs, img.Prog.Procs) ||
		!reflect.DeepEqual(got.Prog.Names, img.Prog.Names) ||
		!reflect.DeepEqual(got.Prog.Entries, img.Prog.Entries) {
		t.Errorf("symbol maps mismatch")
	}
	if !reflect.DeepEqual(got.Exec.Plain, img.Exec.Plain) {
		t.Errorf("plain stream mismatch")
	}
	if !reflect.DeepEqual(got.Exec.Fused, img.Exec.Fused) {
		t.Errorf("fused stream mismatch")
	}
	if !reflect.DeepEqual(got.Exec.Stats, img.Exec.Stats) {
		t.Errorf("stats = %+v, want %+v", got.Exec.Stats, img.Exec.Stats)
	}
	if !reflect.DeepEqual(got.ProfExpect, img.ProfExpect) || !reflect.DeepEqual(got.ProfTaken, img.ProfTaken) {
		t.Errorf("profile mismatch")
	}
}

// typedSnapshotError reports whether err belongs to one of the package's
// documented error families — the load contract Load's callers match on.
func typedSnapshotError(err error) bool {
	var fe *FormatError
	var ce *ChecksumError
	var ve *VersionError
	return errors.Is(err, ErrNotSnapshot) || errors.As(err, &fe) || errors.As(err, &ce) || errors.As(err, &ve)
}

// TestEveryByteFlipDetected corrupts each byte of a valid container in
// turn. Every flip must surface as a typed error — magic flips as
// ErrNotSnapshot, version flips as VersionError, everything else through a
// CRC (section payloads and the table are both covered, and CRC32 detects
// all single-byte errors). Nothing may panic.
func TestEveryByteFlipDetected(t *testing.T) {
	orig := Encode(tinyImage())
	for i := range orig {
		data := append([]byte(nil), orig...)
		data[i] ^= 0x41
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("byte %d: Decode panicked: %v", i, r)
				}
			}()
			img, err := Decode(data)
			if err == nil {
				t.Fatalf("byte %d: corruption not detected (img=%+v)", i, img)
			}
			if !typedSnapshotError(err) {
				t.Fatalf("byte %d: untyped error %T: %v", i, err, err)
			}
		}()
	}
}

// TestEveryTruncationDetected decodes every proper prefix of a valid
// container: all must error, none may panic.
func TestEveryTruncationDetected(t *testing.T) {
	orig := Encode(tinyImage())
	for n := 0; n < len(orig); n++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("prefix %d: Decode panicked: %v", n, r)
				}
			}()
			if _, err := Decode(orig[:n]); err == nil {
				t.Fatalf("prefix %d of %d: truncation not detected", n, len(orig))
			} else if !typedSnapshotError(err) {
				t.Fatalf("prefix %d: untyped error %T: %v", n, err, err)
			}
		}()
	}
}

// fixCRCs recomputes every section CRC and the table CRC in place, so a
// test can corrupt payload bytes and still get past the checksum layer to
// the structural validators beneath it.
func fixCRCs(data []byte) {
	count := binary.LittleEndian.Uint32(data[12:16])
	for i := 0; i < int(count); i++ {
		e := headerLen + entryLen*i
		off := binary.LittleEndian.Uint64(data[e+4 : e+12])
		ln := binary.LittleEndian.Uint64(data[e+12 : e+20])
		crc := crc32.Checksum(data[off:off+ln], castagnoli)
		binary.LittleEndian.PutUint32(data[e+20:e+24], crc)
	}
	tableEnd := headerLen + entryLen*int(count)
	binary.LittleEndian.PutUint32(data[tableEnd:tableEnd+4],
		crc32.Checksum(data[12:tableEnd], castagnoli))
}

// TestStructuralCorruptionContained flips each payload byte and repairs
// the checksums, driving the corruption into the structural validators
// (instruction decoding, operand range checks, cross-section consistency).
// Some flips are semantically benign and decode fine; what is forbidden is
// a panic or an untyped error.
func TestStructuralCorruptionContained(t *testing.T) {
	orig := Encode(tinyImage())
	payloadStart := 0
	{
		count := binary.LittleEndian.Uint32(orig[12:16])
		payloadStart = headerLen + entryLen*int(count) + 4
	}
	for i := payloadStart; i < len(orig); i++ {
		for _, bit := range []byte{0x01, 0x80, 0xff} {
			data := append([]byte(nil), orig...)
			data[i] ^= bit
			fixCRCs(data)
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("byte %d ^ %#x: Decode panicked: %v", i, bit, r)
					}
				}()
				if _, err := Decode(data); err != nil && !typedSnapshotError(err) {
					t.Fatalf("byte %d ^ %#x: untyped error %T: %v", i, bit, err, err)
				}
			}()
		}
	}
}

// TestVersionSkewRecovery bumps the format version and checks that Decode
// returns a *VersionError carrying the recovered compile inputs — the fuel
// for Load's recompile fallback. The header and meta/source encodings are
// frozen across versions precisely so this recovery works.
func TestVersionSkewRecovery(t *testing.T) {
	data := Encode(tinyImage())
	data[8]++ // version is little-endian at offset 8, outside the table CRC
	_, err := Decode(data)
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("Decode = %v, want *VersionError", err)
	}
	if ve.Got != Version+1 || ve.Want != Version {
		t.Errorf("got/want = %d/%d, want %d/%d", ve.Got, ve.Want, Version+1, Version)
	}
	if ve.Source != "main.\n" || ve.Kind != KindProgram || !ve.Arith || ve.MaxSteps != 123 {
		t.Errorf("recovered inputs = %+v", ve)
	}
}

func TestReadInfo(t *testing.T) {
	data := Encode(tinyImage())
	info, err := ReadInfo(data)
	if err != nil {
		t.Fatalf("ReadInfo: %v", err)
	}
	if info.Version != Version {
		t.Errorf("version = %d, want %d", info.Version, Version)
	}
	want := []string{"meta", "source", "program", "exec", "profile"}
	if len(info.Sections) != len(want) {
		t.Fatalf("sections = %v, want %v", info.Sections, want)
	}
	for i, s := range info.Sections {
		if s.Name != want[i] {
			t.Errorf("section %d = %q, want %q", i, s.Name, want[i])
		}
		if s.Len <= 0 && s.Name != "source" {
			t.Errorf("section %s has size %d", s.Name, s.Len)
		}
	}
	// ReadInfo must also summarize what it cannot load.
	data[8]++
	info, err = ReadInfo(data)
	if err != nil || info.Version != Version+1 {
		t.Errorf("skewed ReadInfo = %+v, %v", info, err)
	}
	if _, err := ReadInfo([]byte("not a snapshot")); !errors.Is(err, ErrNotSnapshot) {
		t.Errorf("ReadInfo on text = %v, want ErrNotSnapshot", err)
	}
}

func TestSniff(t *testing.T) {
	if !Sniff(Encode(tinyImage())) {
		t.Error("Sniff rejects a valid snapshot")
	}
	for _, s := range []string{"", "main :- true.", Magic[:4], "SYMSNAP"} {
		if Sniff([]byte(s)) {
			t.Errorf("Sniff accepts %q", s)
		}
	}
}

// FuzzSnapshotLoad feeds arbitrary bytes to Decode, both raw and with
// checksums repaired (so the fuzzer can reach the structural validators
// behind the CRC layer). The contract under test: typed errors, never a
// panic, on any input.
func FuzzSnapshotLoad(f *testing.F) {
	valid := Encode(tinyImage())
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	skew := append([]byte(nil), valid...)
	skew[8]++
	f.Add(skew)
	f.Add([]byte(Magic))
	f.Add([]byte("main :- true."))
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := Decode(data); err != nil && !typedSnapshotError(err) {
			t.Fatalf("untyped error %T: %v", err, err)
		}
		// Second pass with repaired checksums, when the container is
		// well-formed enough to carry a table.
		if len(data) >= headerLen+4 && Sniff(data) {
			count := binary.LittleEndian.Uint32(data[12:16])
			tableEnd := headerLen + entryLen*int(count)
			if count <= maxSection && len(data) >= tableEnd+4 {
				fixed := append([]byte(nil), data...)
				ok := true
				for i := 0; i < int(count); i++ {
					e := headerLen + entryLen*i
					off := binary.LittleEndian.Uint64(fixed[e+4 : e+12])
					ln := binary.LittleEndian.Uint64(fixed[e+12 : e+20])
					if off > uint64(len(fixed)) || ln > uint64(len(fixed))-off {
						ok = false
						break
					}
				}
				if ok {
					fixCRCs(fixed)
					if _, err := Decode(fixed); err != nil && !typedSnapshotError(err) {
						t.Fatalf("untyped error after CRC fix %T: %v", err, err)
					}
				}
			}
		}
	})
}
