// Package wire provides the bounds-checked binary primitives shared by the
// snapshot encoders in internal/ic, internal/exec and internal/snapshot.
// Everything is little-endian; integers are LEB128 varints (unsigned) or
// zigzag varints (signed), so the common small operands of an instruction
// stream cost one byte each.
//
// The Reader is the load-bearing half: it is total over arbitrary input.
// Every read is bounds-checked, length prefixes are validated against the
// bytes actually remaining before any allocation, and the first malformed
// read latches a sticky error that turns every subsequent read into a
// zero-value no-op. A decoder built on Reader can therefore run over
// attacker-controlled bytes and never panic or balloon — it finishes its
// field walk mechanically and reports the latched error at the end.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// ErrTruncated reports input that ended inside a value.
var ErrTruncated = errors.New("wire: truncated input")

// ErrMalformed reports a structurally invalid value (overlong varint, or a
// length prefix exceeding the bytes that remain).
var ErrMalformed = errors.New("wire: malformed input")

// Writer accumulates an encoded byte stream. The zero value is ready to
// use; methods never fail.
type Writer struct {
	buf []byte
}

// Bytes returns the encoded stream (aliasing the writer's buffer).
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Byte appends one raw byte.
func (w *Writer) Byte(b byte) { w.buf = append(w.buf, b) }

// Raw appends raw bytes verbatim.
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// U64 appends an unsigned varint.
func (w *Writer) U64(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// I64 appends a signed (zigzag) varint.
func (w *Writer) I64(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// Int appends an int as a signed varint.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Count appends a non-negative collection length as an unsigned varint —
// the writer-side pair of Reader.Len. Counts must not go through Int: the
// signed zigzag encoding and Len's unsigned decoding disagree on the wire.
func (w *Writer) Count(n int) { w.U64(uint64(n)) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.U64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Bytes32 appends a fixed-width little-endian uint32 (used for the header
// fields that must stay the same width across format versions).
func (w *Writer) Bytes32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// Bytes64 appends a fixed-width little-endian uint64.
func (w *Writer) Bytes64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// Reader consumes an encoded byte stream with a sticky error: after the
// first malformed read every subsequent read returns the zero value and
// the original error is preserved for Err.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader returns a reader over b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the sticky error, or nil if every read so far succeeded.
func (r *Reader) Err() error { return r.err }

// Remaining reports how many bytes have not been consumed yet.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

// Offset reports the current read position (for error context).
func (r *Reader) Offset() int { return r.off }

// fail latches err (first one wins) and returns it. It also parks the
// cursor at end-of-input, so the inlined fast paths — which only test
// bounds, not the error field — miss and fall into the slow helpers that
// honour the sticky error.
func (r *Reader) fail(err error) error {
	if r.err == nil {
		r.err = fmt.Errorf("%w (at offset %d)", err, r.off)
		r.off = len(r.b)
	}
	return r.err
}

// Byte reads one raw byte. The in-bounds, no-error case is shaped to stay
// under the inlining budget — these accessors run once per operand field
// of every decoded instruction.
func (r *Reader) Byte() byte {
	if off := r.off; uint(off) < uint(len(r.b)) {
		r.off = off + 1
		return r.b[off]
	}
	return r.byteSlow()
}

func (r *Reader) byteSlow() byte {
	if r.err == nil {
		r.fail(ErrTruncated)
	}
	return 0
}

// U64 reads an unsigned varint. The single-byte case — the overwhelming
// majority of instruction-stream operands — is inlined; longer encodings
// take the generic path.
func (r *Reader) U64() uint64 {
	if off := r.off; uint(off) < uint(len(r.b)) && r.b[off] < 0x80 {
		r.off = off + 1
		return uint64(r.b[off])
	}
	return r.u64Slow()
}

func (r *Reader) u64Slow() uint64 {
	if r.err != nil {
		return 0
	}
	b := r.b[r.off:]
	// The inline fast path already consumed single-byte encodings, so a
	// well-formed value here has its continuation bit set; two-byte values
	// (the bulk of branch targets and pc fields) are decoded directly.
	if len(b) >= 2 && b[1] < 0x80 {
		r.off += 2
		return uint64(b[0]&0x7f) | uint64(b[1])<<7
	}
	v, n := binary.Uvarint(b)
	if n <= 0 {
		if n == 0 {
			r.fail(ErrTruncated)
		} else {
			r.fail(ErrMalformed)
		}
		return 0
	}
	r.off += n
	return v
}

// I64 reads a signed (zigzag) varint, with the same one-byte fast path as
// U64.
func (r *Reader) I64() int64 {
	if off := r.off; uint(off) < uint(len(r.b)) && r.b[off] < 0x80 {
		r.off = off + 1
		b := r.b[off]
		return int64(b>>1) ^ -int64(b&1)
	}
	return r.i64Slow()
}

func (r *Reader) i64Slow() int64 {
	// A signed varint is the zigzag decode of the unsigned one, so the
	// unsigned slow path (with its two-byte shortcut) does the byte work.
	v := r.u64Slow()
	return int64(v>>1) ^ -int64(v&1)
}

// Int reads an int-sized signed varint, rejecting values that do not fit
// the platform int.
func (r *Reader) Int() int {
	v := r.I64()
	if int64(int(v)) != v {
		r.fail(ErrMalformed)
		return 0
	}
	return int(v)
}

// Bool reads a boolean byte (only 0 and 1 are valid).
func (r *Reader) Bool() bool {
	b := r.Byte()
	if b > 1 {
		r.fail(ErrMalformed)
		return false
	}
	return b == 1
}

// Len reads a length prefix and validates it against the bytes remaining,
// so a corrupted length can never drive a giant allocation: every counted
// element must occupy at least minElem bytes of the input (use 1 for
// variable-size elements).
func (r *Reader) Len(minElem int) int {
	v := r.U64()
	if r.err != nil {
		return 0
	}
	if minElem < 1 {
		minElem = 1
	}
	if v > uint64(r.Remaining()/minElem) {
		r.fail(ErrMalformed)
		return 0
	}
	return int(v)
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Len(1)
	if r.err != nil {
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

// Raw reads exactly n raw bytes (aliasing the input buffer).
func (r *Reader) Raw(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > r.Remaining() {
		r.fail(ErrTruncated)
		return nil
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

// Bytes32 reads a fixed-width little-endian uint32.
func (r *Reader) Bytes32() uint32 {
	b := r.Raw(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// Bytes64 reads a fixed-width little-endian uint64.
func (r *Reader) Bytes64() uint64 {
	b := r.Raw(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Expect fails the reader with ErrMalformed unless cond holds. It is the
// decoder-side assertion primitive: semantic validation expressed in the
// same sticky-error discipline as the structural reads.
func (r *Reader) Expect(cond bool) {
	if r.err == nil && !cond {
		r.fail(ErrMalformed)
	}
}

// VarintLen reports the encoded size of an unsigned varint (for
// pre-sizing estimates in the bench tooling).
func VarintLen(v uint64) int { return (bits.Len64(v|1) + 6) / 7 }
