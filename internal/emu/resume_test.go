package emu

import (
	"testing"
	"time"

	"symbol/internal/fault"
	"symbol/internal/ic"
	"symbol/internal/word"
)

// suspendProg is the smallest suspendable program: one solution, then the
// fail routine reports exhaustion. FailPC makes the machine suspend at the
// Halt 0 instead of finishing.
func suspendProg() *ic.Program {
	p := mkProg([]ic.Inst{
		{Op: ic.Jmp, Target: 2},                      // 0: entry, over the fail routine
		{Op: ic.Halt, Imm: 1},                        // 1: $fail — no alternatives left
		{Op: ic.MovI, D: t0, Word: word.MakeInt(42)}, // 2
		{Op: ic.Halt, Imm: 0},                        // 3: a solution
	})
	p.FailPC = 1
	return p
}

// resumeModes are the four dispatch families; suspend/resume must behave
// identically on all of them.
var resumeModes = []struct {
	name string
	set  func(*Options)
}{
	{"fused", func(*Options) {}},
	{"nofuse", func(o *Options) { o.NoFuse = true }},
	{"legacy", func(o *Options) { o.Legacy = true }},
	{"threaded", func(o *Options) { o.Threaded = true }},
}

// TestResumeLifecycle drives the phase machine through a full
// run → suspend → resume → exhausted cycle in every dispatch mode,
// checking cumulative step accounting and the phase guards.
func TestResumeLifecycle(t *testing.T) {
	for _, mode := range resumeModes {
		t.Run(mode.name, func(t *testing.T) {
			opts := Options{MaxSteps: 1000}
			mode.set(&opts)
			m := New(suspendProg(), opts)

			if _, err := m.Resume(); err == nil {
				t.Fatal("Resume before Run must fail")
			}
			r1, err := m.Run()
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if r1.Status != 0 || r1.Steps != 3 {
				t.Fatalf("first segment: status %d steps %d, want 0/3", r1.Status, r1.Steps)
			}
			if !m.More() {
				t.Fatal("machine not suspended after Halt 0 with a fail routine")
			}
			if _, err := m.Run(); err == nil {
				t.Fatal("second Run on a suspended machine must fail")
			}
			if st := m.Stats(); st.Steps != 3 {
				t.Fatalf("Stats between segments: steps %d, want 3", st.Steps)
			}

			r2, err := m.Resume()
			if err != nil {
				t.Fatalf("Resume: %v", err)
			}
			if r2.Status != 1 || r2.Steps != 4 {
				t.Fatalf("second segment: status %d steps %d, want 1/4 (cumulative)", r2.Status, r2.Steps)
			}
			if m.More() {
				t.Fatal("machine still suspended after exhaustion")
			}
			if _, err := m.Resume(); err == nil {
				t.Fatal("Resume after exhaustion must fail")
			}
			st := m.Stats()
			if st.Steps != 4 {
				t.Fatalf("final Stats: steps %d, want 4", st.Steps)
			}
			if sum := st.MemOps + st.ALUOps + st.MoveOps + st.ControlOps + st.SysOps; sum != 4 {
				t.Fatalf("op-class counts sum to %d, want 4", sum)
			}
		})
	}
}

// TestResumeDeadlineWhileSuspended: a deadline that expires while the
// machine is parked must abort the resume at step 0, in every mode — the
// predecoded loops poll on segment entry and the legacy path mirrors it.
func TestResumeDeadlineWhileSuspended(t *testing.T) {
	for _, mode := range resumeModes {
		t.Run(mode.name, func(t *testing.T) {
			opts := Options{MaxSteps: 1000}
			mode.set(&opts)
			m := New(suspendProg(), opts)
			if _, err := m.Run(); err != nil {
				t.Fatalf("Run: %v", err)
			}
			m.SetDeadline(time.Now().Add(-time.Second))
			_, err := m.Resume()
			if fault.KindOf(err) != fault.Deadline {
				t.Fatalf("Resume past deadline: err %v, want deadline fault", err)
			}
			if st := m.Stats(); st.Steps != 3 {
				t.Fatalf("aborted resume executed steps: %d, want 3", st.Steps)
			}
		})
	}
}

// TestResumeInterruptWhileSuspended: closing the interrupt channel while
// parked cancels the next resume the same way.
func TestResumeInterruptWhileSuspended(t *testing.T) {
	for _, mode := range resumeModes {
		t.Run(mode.name, func(t *testing.T) {
			opts := Options{MaxSteps: 1000}
			mode.set(&opts)
			m := New(suspendProg(), opts)
			if _, err := m.Run(); err != nil {
				t.Fatalf("Run: %v", err)
			}
			ch := make(chan struct{})
			close(ch)
			m.SetInterrupt(ch)
			_, err := m.Resume()
			if fault.KindOf(err) != fault.Canceled {
				t.Fatalf("Resume after interrupt: err %v, want canceled fault", err)
			}
		})
	}
}

// TestNoFailPCNeverSuspends: a program without a fail routine finishes in
// one segment even when it halts with status 0.
func TestNoFailPCNeverSuspends(t *testing.T) {
	p := mkProg([]ic.Inst{
		{Op: ic.MovI, D: t0, Word: word.MakeInt(1)},
		{Op: ic.Halt, Imm: 0},
	})
	m := New(p, Options{MaxSteps: 100})
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != 0 {
		t.Fatalf("status %d", res.Status)
	}
	if m.More() {
		t.Fatal("machine suspended without a fail routine")
	}
	if _, err := m.Resume(); err == nil {
		t.Fatal("Resume must fail on a finished machine")
	}
}
