package emu

import (
	"fmt"
	"time"

	"symbol/internal/exec"
	"symbol/internal/fault"
	"symbol/internal/word"
)

// This file holds the predecoded run loops. Both interpret an exec.Stream
// (plain or fused) instead of raw ic.Inst, so the per-operation work is one
// dense-opcode dispatch with operand forms resolved at predecode time:
//
//   - no pc bounds test (invalid control flow lands on the stream's XBadPC
//     trap op);
//   - no HasImm/Cond/Sys/Region selector tests (each form is its own
//     opcode, and RegionUnknown stores carry an unreachable limit);
//   - no per-step Profile/Trace tests (the profiled loop is a separate
//     copy, and tracing uses the legacy interpreter);
//   - no per-step deadline/interrupt poll: one poll on entry (so a
//     pre-expired deadline or pre-cancelled run still aborts at step 0,
//     which the differential fault tests rely on), then a countdown
//     decremented only on backward control transfers, polling every
//     fault.CheckInterval back-edges. Straight-line code pays nothing, and
//     since every cycle in the code contains a back-edge, cancellation
//     latency is bounded by CheckInterval loop iterations.
//
// Superinstructions execute their constituents in original order with
// per-constituent step-budget accounting, so Result.Steps, the StepLimit
// fault point, and (in the profiled loop) Expect/Taken are identical to the
// legacy interpreter's, in original-ICI units. The one documented
// divergence: a computed jump (JmpR) into the interior of a fused pair
// reports "pc out of range" instead of executing from mid-pair — no code
// path in the runtime model materializes such an address (every indirect
// target is a marked jump target, which fusion never buries).

func (m *Machine) loadErr(addr uint64) error {
	e := m.fail(fmt.Sprintf("load out of range: %#x", addr))
	e.Err = fault.ErrInvalidMemory
	return e
}

func (m *Machine) storeErr(addr uint64) error {
	e := m.fail(fmt.Sprintf("store out of range: %#x", addr))
	e.Err = fault.ErrInvalidMemory
	return e
}

// pollCheck is the deadline/cancellation poll, hoisted out of the per-step
// path; pc is the original pc reported if the run must abort.
func (m *Machine) pollCheck(pc int) error {
	if !m.opts.Deadline.IsZero() && time.Now().After(m.opts.Deadline) {
		m.pc = pc
		return m.faultErr(fault.Deadline)
	}
	if m.opts.Interrupt != nil {
		select {
		case <-m.opts.Interrupt:
			m.pc = pc
			return m.faultErr(fault.Canceled)
		default:
		}
	}
	return nil
}

// pollEvery returns the back-edge countdown start: CheckInterval when the
// run has something to poll for, effectively-never otherwise.
func (m *Machine) pollEvery() int64 {
	if m.opts.Deadline.IsZero() && m.opts.Interrupt == nil {
		return 1 << 62
	}
	return fault.CheckInterval
}

// runFast is the unprofiled predecoded interpreter loop. x0 is the stream
// index to enter at: s.Entry for a fresh run, s.Fail to resume a suspended
// machine by backtracking.
func (m *Machine) runFast(s *exec.Stream, x0 int) (*Result, error) {
	if err := m.pollCheck(int(s.Ops[x0].PC)); err != nil {
		return nil, err
	}
	ops := s.Ops
	mem := m.mem
	regs := m.regs
	max := m.opts.MaxSteps
	poll := m.pollEvery()
	// disp is the whole per-run instrumentation cost when tracing is off:
	// one bounds-check-free increment per dispatch (the array is 256 wide
	// and the opcode is a uint8). Classes, choice points and trail undos
	// are all expanded from it after the run (see statsFast).
	disp := &m.ctr.disp
	steps := m.stepsDone
	x := x0
	for {
		op := &ops[x]
		if steps >= max {
			m.pc = int(op.PC)
			return nil, m.faultErr(fault.StepLimit)
		}
		steps++
		disp[op.Code]++
		next := x + 1
		switch op.Code {
		case exec.XNop:
		case exec.XLd, exec.XLdUndo:
			addr := regs[op.A].Val() + uint64(op.Imm)
			if addr >= uint64(len(mem)) {
				m.pc = int(op.PC)
				return nil, m.loadErr(addr)
			}
			regs[op.D] = mem[addr]
		case exec.XSt:
			addr := regs[op.A].Val() + uint64(op.Imm)
			if addr >= m.limit[op.Region] {
				m.pc = int(op.PC)
				jump, err := m.raise(overflowKind(op.Region))
				if err != nil {
					return nil, err
				}
				if jump {
					next = int(s.Throw)
					break
				}
			}
			if addr >= uint64(len(mem)) {
				m.pc = int(op.PC)
				return nil, m.storeErr(addr)
			}
			mem[addr] = regs[op.B]
			m.st.Touch(addr)

		case exec.XAddR:
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()+regs[op.B].Int()))
		case exec.XAddI:
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()+op.Imm))
		case exec.XSubR:
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()-regs[op.B].Int()))
		case exec.XSubI:
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()-op.Imm))
		case exec.XMulR:
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()*regs[op.B].Int()))
		case exec.XMulI:
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()*op.Imm))
		case exec.XDivR:
			b := regs[op.B].Int()
			if b == 0 {
				m.pc = int(op.PC)
				return nil, m.faultErr(fault.ZeroDivide)
			}
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()/b))
		case exec.XDivI:
			if op.Imm == 0 {
				m.pc = int(op.PC)
				return nil, m.faultErr(fault.ZeroDivide)
			}
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()/op.Imm))
		case exec.XModR:
			b := regs[op.B].Int()
			if b == 0 {
				m.pc = int(op.PC)
				return nil, m.faultErr(fault.ZeroDivide)
			}
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()%b))
		case exec.XModI:
			if op.Imm == 0 {
				m.pc = int(op.PC)
				return nil, m.faultErr(fault.ZeroDivide)
			}
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()%op.Imm))
		case exec.XAndR:
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()&regs[op.B].Int()))
		case exec.XAndI:
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()&op.Imm))
		case exec.XOrR:
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()|regs[op.B].Int()))
		case exec.XOrI:
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()|op.Imm))
		case exec.XXorR:
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()^regs[op.B].Int()))
		case exec.XXorI:
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()^op.Imm))
		case exec.XShlR:
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()<<uint(regs[op.B].Int()&63)))
		case exec.XShlI:
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()<<uint(op.Imm&63)))
		case exec.XShrR:
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()>>uint(regs[op.B].Int()&63)))
		case exec.XShrI:
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()>>uint(op.Imm&63)))

		case exec.XMkTag:
			regs[op.D] = regs[op.A].WithTag(op.Tag)
		case exec.XGetTag:
			regs[op.D] = word.MakeInt(int64(regs[op.A].Tag()))
		case exec.XLea:
			regs[op.D] = word.Make(op.Tag, uint64(regs[op.A].Int()+op.Imm))
		case exec.XMov, exec.XMovCP:
			regs[op.D] = regs[op.A]
		case exec.XMovI:
			regs[op.D] = op.W

		case exec.XBrTagEq:
			if regs[op.A].Tag() == op.Tag {
				next = int(op.Target)
			}
		case exec.XBrTagNe:
			if regs[op.A].Tag() != op.Tag {
				next = int(op.Target)
			}
		case exec.XBrCmpEqR:
			if regs[op.A] == regs[op.B] {
				next = int(op.Target)
			}
		case exec.XBrCmpNeR:
			if regs[op.A] != regs[op.B] {
				next = int(op.Target)
			}
		case exec.XBrCmpEqI:
			if regs[op.A] == op.W {
				next = int(op.Target)
			}
		case exec.XBrCmpNeI:
			if regs[op.A] != op.W {
				next = int(op.Target)
			}
		case exec.XBrCmpOrdR:
			if exec.OrdCmp(regs[op.A].Int(), regs[op.B].Int(), op.Cond) {
				next = int(op.Target)
			}
		case exec.XBrCmpOrdI:
			if exec.OrdCmp(regs[op.A].Int(), op.Imm, op.Cond) {
				next = int(op.Target)
			}

		case exec.XJmp:
			next = int(op.Target)
		case exec.XJmpR:
			t := int(regs[op.A].Val())
			if t < 0 || t >= len(s.XOf) || s.XOf[t] < 0 {
				m.pc = t
				return nil, m.fail("pc out of range")
			}
			next = int(s.XOf[t])
		case exec.XJsr:
			regs[op.D] = word.Make(word.Code, uint64(op.PC+1))
			next = int(op.Target)
		case exec.XHalt:
			if op.Imm == 2 {
				m.pc = int(op.PC)
				return nil, m.uncaught()
			}
			m.stepsDone = steps
			return &Result{Status: int(op.Imm), Output: m.out.String(), Steps: steps,
				Stats: m.statsFast(steps)}, nil

		case exec.XSysWrite:
			m.pc = int(op.PC)
			if err := m.sysWrite(op.A); err != nil {
				return nil, err
			}
		case exec.XSysNl:
			m.out.WriteByte('\n')
		case exec.XSysWriteCode:
			m.out.WriteByte(byte(regs[op.A].Int()))
		case exec.XSysCompare:
			m.pc = int(op.PC)
			if err := m.sysCompare(op.A, op.B); err != nil {
				return nil, err
			}
		case exec.XSysBallPut:
			m.pc = int(op.PC)
			if err := m.sysBallPut(op.A); err != nil {
				return nil, err
			}
		case exec.XSysFault:
			m.pc = int(op.PC)
			jump, err := m.raise(fault.Kind(op.Imm))
			if err != nil {
				return nil, err
			}
			if jump {
				next = int(s.Throw)
			}
		case exec.XSysBad:
			m.pc = int(op.PC)
			return nil, m.fail("unknown sys op")

		// Superinstructions: constituents execute in original order with
		// per-constituent step accounting, so Steps and the StepLimit fault
		// point match the legacy interpreter exactly.
		case exec.XFLdBrTagEq:
			addr := regs[op.A].Val() + uint64(op.Imm)
			if addr >= uint64(len(mem)) {
				m.pc = int(op.PC)
				return nil, m.loadErr(addr)
			}
			regs[op.D] = mem[addr]
			if steps >= max {
				m.pc = int(op.PC) + 1
				return nil, m.faultErr(fault.StepLimit)
			}
			steps++
			if regs[op.D2].Tag() == op.Tag {
				next = int(op.Target)
			}
		case exec.XFLdBrTagNe:
			addr := regs[op.A].Val() + uint64(op.Imm)
			if addr >= uint64(len(mem)) {
				m.pc = int(op.PC)
				return nil, m.loadErr(addr)
			}
			regs[op.D] = mem[addr]
			if steps >= max {
				m.pc = int(op.PC) + 1
				return nil, m.faultErr(fault.StepLimit)
			}
			steps++
			if regs[op.D2].Tag() != op.Tag {
				next = int(op.Target)
			}
		case exec.XFLdBrCmpEqR:
			addr := regs[op.A].Val() + uint64(op.Imm)
			if addr >= uint64(len(mem)) {
				m.pc = int(op.PC)
				return nil, m.loadErr(addr)
			}
			regs[op.D] = mem[addr]
			if steps >= max {
				m.pc = int(op.PC) + 1
				return nil, m.faultErr(fault.StepLimit)
			}
			steps++
			if regs[op.D2] == regs[op.A2] {
				next = int(op.Target)
			}
		case exec.XFLdBrCmpNeR:
			addr := regs[op.A].Val() + uint64(op.Imm)
			if addr >= uint64(len(mem)) {
				m.pc = int(op.PC)
				return nil, m.loadErr(addr)
			}
			regs[op.D] = mem[addr]
			if steps >= max {
				m.pc = int(op.PC) + 1
				return nil, m.faultErr(fault.StepLimit)
			}
			steps++
			if regs[op.D2] != regs[op.A2] {
				next = int(op.Target)
			}
		case exec.XFGetTagBrEqI:
			regs[op.D] = word.MakeInt(int64(regs[op.A].Tag()))
			if steps >= max {
				m.pc = int(op.PC) + 1
				return nil, m.faultErr(fault.StepLimit)
			}
			steps++
			if regs[op.D2] == op.W {
				next = int(op.Target)
			}
		case exec.XFGetTagBrNeI:
			regs[op.D] = word.MakeInt(int64(regs[op.A].Tag()))
			if steps >= max {
				m.pc = int(op.PC) + 1
				return nil, m.faultErr(fault.StepLimit)
			}
			steps++
			if regs[op.D2] != op.W {
				next = int(op.Target)
			}
		case exec.XFStAdd:
			addr := regs[op.A].Val() + uint64(op.Imm)
			if addr >= m.limit[op.Region] {
				m.pc = int(op.PC)
				jump, err := m.raise(overflowKind(op.Region))
				if err != nil {
					return nil, err
				}
				if jump {
					// The store faulted: unwind now, the bump never runs.
					m.ctr.skipStAdd++
					next = int(s.Throw)
					break
				}
			}
			if addr >= uint64(len(mem)) {
				m.pc = int(op.PC)
				return nil, m.storeErr(addr)
			}
			mem[addr] = regs[op.B]
			m.st.Touch(addr)
			if steps >= max {
				m.pc = int(op.PC) + 1
				return nil, m.faultErr(fault.StepLimit)
			}
			steps++
			d := regs[op.D2]
			regs[op.D2] = word.Make(d.Tag(), uint64(d.Int()+op.Imm2))
		case exec.XFMovJmp:
			regs[op.D] = regs[op.A]
			if steps >= max {
				m.pc = int(op.PC) + 1
				return nil, m.faultErr(fault.StepLimit)
			}
			steps++
			next = int(op.Target)
		case exec.XFCMovR:
			// Branch taken skips the move and consumes one step; not taken
			// executes the move as the second constituent.
			if !exec.CmpW(regs[op.A], regs[op.B], op.Cond) {
				if steps >= max {
					m.pc = int(op.PC) + 1
					return nil, m.faultErr(fault.StepLimit)
				}
				steps++
				m.ctr.cmovMoves++
				regs[op.D2] = regs[op.A2]
			}
		case exec.XFLdLd:
			addr := regs[op.A].Val() + uint64(op.Imm)
			if addr >= uint64(len(mem)) {
				m.pc = int(op.PC)
				return nil, m.loadErr(addr)
			}
			regs[op.D] = mem[addr]
			if steps >= max {
				m.pc = int(op.PC) + 1
				return nil, m.faultErr(fault.StepLimit)
			}
			steps++
			addr = regs[op.A2].Val() + uint64(op.Imm2)
			if addr >= uint64(len(mem)) {
				m.pc = int(op.PC) + 1
				return nil, m.loadErr(addr)
			}
			regs[op.D2] = mem[addr]
		case exec.XFLdMov:
			addr := regs[op.A].Val() + uint64(op.Imm)
			if addr >= uint64(len(mem)) {
				m.pc = int(op.PC)
				return nil, m.loadErr(addr)
			}
			regs[op.D] = mem[addr]
			if steps >= max {
				m.pc = int(op.PC) + 1
				return nil, m.faultErr(fault.StepLimit)
			}
			steps++
			regs[op.D2] = regs[op.A2]
		case exec.XFStSt:
			addr := regs[op.A].Val() + uint64(op.Imm)
			if addr >= m.limit[op.Region] {
				m.pc = int(op.PC)
				jump, err := m.raise(overflowKind(op.Region))
				if err != nil {
					return nil, err
				}
				if jump {
					m.ctr.skipStSt++
					next = int(s.Throw)
					break
				}
			}
			if addr >= uint64(len(mem)) {
				m.pc = int(op.PC)
				return nil, m.storeErr(addr)
			}
			mem[addr] = regs[op.B]
			m.st.Touch(addr)
			if steps >= max {
				m.pc = int(op.PC) + 1
				return nil, m.faultErr(fault.StepLimit)
			}
			steps++
			addr = regs[op.A2].Val() + uint64(op.Imm2)
			if addr >= m.limit[op.Region2] {
				m.pc = int(op.PC) + 1
				jump, err := m.raise(overflowKind(op.Region2))
				if err != nil {
					return nil, err
				}
				if jump {
					next = int(s.Throw)
					break
				}
			}
			if addr >= uint64(len(mem)) {
				m.pc = int(op.PC) + 1
				return nil, m.storeErr(addr)
			}
			mem[addr] = regs[op.D2]
			m.st.Touch(addr)
		case exec.XFStMovI:
			addr := regs[op.A].Val() + uint64(op.Imm)
			if addr >= m.limit[op.Region] {
				m.pc = int(op.PC)
				jump, err := m.raise(overflowKind(op.Region))
				if err != nil {
					return nil, err
				}
				if jump {
					m.ctr.skipStMovI++
					next = int(s.Throw)
					break
				}
			}
			if addr >= uint64(len(mem)) {
				m.pc = int(op.PC)
				return nil, m.storeErr(addr)
			}
			mem[addr] = regs[op.B]
			m.st.Touch(addr)
			if steps >= max {
				m.pc = int(op.PC) + 1
				return nil, m.faultErr(fault.StepLimit)
			}
			steps++
			regs[op.D2] = op.W
		case exec.XFMovISt:
			regs[op.D] = op.W
			if steps >= max {
				m.pc = int(op.PC) + 1
				return nil, m.faultErr(fault.StepLimit)
			}
			steps++
			addr := regs[op.A2].Val() + uint64(op.Imm2)
			if addr >= m.limit[op.Region2] {
				m.pc = int(op.PC) + 1
				jump, err := m.raise(overflowKind(op.Region2))
				if err != nil {
					return nil, err
				}
				if jump {
					next = int(s.Throw)
					break
				}
			}
			if addr >= uint64(len(mem)) {
				m.pc = int(op.PC) + 1
				return nil, m.storeErr(addr)
			}
			mem[addr] = regs[op.D2]
			m.st.Touch(addr)
		case exec.XFMovMov:
			regs[op.D] = regs[op.A]
			if steps >= max {
				m.pc = int(op.PC) + 1
				return nil, m.faultErr(fault.StepLimit)
			}
			steps++
			regs[op.D2] = regs[op.A2]
		case exec.XFMovBrTagEq:
			regs[op.D] = regs[op.A]
			if steps >= max {
				m.pc = int(op.PC) + 1
				return nil, m.faultErr(fault.StepLimit)
			}
			steps++
			if regs[op.D2].Tag() == op.Tag {
				next = int(op.Target)
			}
		case exec.XFMovBrTagNe:
			regs[op.D] = regs[op.A]
			if steps >= max {
				m.pc = int(op.PC) + 1
				return nil, m.faultErr(fault.StepLimit)
			}
			steps++
			if regs[op.D2].Tag() != op.Tag {
				next = int(op.Target)
			}

		case exec.XBadPC:
			m.pc = int(op.Imm)
			return nil, m.fail("pc out of range")
		default: // exec.XUnknown
			m.pc = int(op.PC)
			return nil, m.fail("unknown opcode")
		}
		if next <= x {
			poll--
			if poll <= 0 {
				poll = m.pollEvery()
				if err := m.pollCheck(int(op.PC)); err != nil {
					return nil, err
				}
			}
		}
		x = next
	}
}

// runProfiled is the predecoded interpreter loop with Expect/Taken
// collection. It is a separate specialization of runFast rather than a
// flag inside it, so the unprofiled path carries no per-step profile test;
// fused ops account every constituent pc, keeping the profile in
// original-ICI units regardless of fusion.
func (m *Machine) runProfiled(s *exec.Stream, x0 int) (*Result, error) {
	if err := m.pollCheck(int(s.Ops[x0].PC)); err != nil {
		return nil, err
	}
	ops := s.Ops
	mem := m.mem
	regs := m.regs
	max := m.opts.MaxSteps
	poll := m.pollEvery()
	expect := m.prof.Expect
	taken := m.prof.Taken
	disp := &m.ctr.disp
	steps := m.stepsDone
	x := x0
	for {
		op := &ops[x]
		if steps >= max {
			m.pc = int(op.PC)
			return nil, m.faultErr(fault.StepLimit)
		}
		if op.Code == exec.XBadPC {
			m.pc = int(op.Imm)
			return nil, m.fail("pc out of range")
		}
		steps++
		disp[op.Code]++
		expect[op.PC]++
		next := x + 1
		switch op.Code {
		case exec.XNop:
		case exec.XLd, exec.XLdUndo:
			addr := regs[op.A].Val() + uint64(op.Imm)
			if addr >= uint64(len(mem)) {
				m.pc = int(op.PC)
				return nil, m.loadErr(addr)
			}
			regs[op.D] = mem[addr]
		case exec.XSt:
			addr := regs[op.A].Val() + uint64(op.Imm)
			if addr >= m.limit[op.Region] {
				m.pc = int(op.PC)
				jump, err := m.raise(overflowKind(op.Region))
				if err != nil {
					return nil, err
				}
				if jump {
					next = int(s.Throw)
					break
				}
			}
			if addr >= uint64(len(mem)) {
				m.pc = int(op.PC)
				return nil, m.storeErr(addr)
			}
			mem[addr] = regs[op.B]
			m.st.Touch(addr)

		case exec.XAddR:
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()+regs[op.B].Int()))
		case exec.XAddI:
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()+op.Imm))
		case exec.XSubR:
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()-regs[op.B].Int()))
		case exec.XSubI:
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()-op.Imm))
		case exec.XMulR:
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()*regs[op.B].Int()))
		case exec.XMulI:
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()*op.Imm))
		case exec.XDivR:
			b := regs[op.B].Int()
			if b == 0 {
				m.pc = int(op.PC)
				return nil, m.faultErr(fault.ZeroDivide)
			}
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()/b))
		case exec.XDivI:
			if op.Imm == 0 {
				m.pc = int(op.PC)
				return nil, m.faultErr(fault.ZeroDivide)
			}
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()/op.Imm))
		case exec.XModR:
			b := regs[op.B].Int()
			if b == 0 {
				m.pc = int(op.PC)
				return nil, m.faultErr(fault.ZeroDivide)
			}
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()%b))
		case exec.XModI:
			if op.Imm == 0 {
				m.pc = int(op.PC)
				return nil, m.faultErr(fault.ZeroDivide)
			}
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()%op.Imm))
		case exec.XAndR:
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()&regs[op.B].Int()))
		case exec.XAndI:
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()&op.Imm))
		case exec.XOrR:
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()|regs[op.B].Int()))
		case exec.XOrI:
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()|op.Imm))
		case exec.XXorR:
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()^regs[op.B].Int()))
		case exec.XXorI:
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()^op.Imm))
		case exec.XShlR:
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()<<uint(regs[op.B].Int()&63)))
		case exec.XShlI:
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()<<uint(op.Imm&63)))
		case exec.XShrR:
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()>>uint(regs[op.B].Int()&63)))
		case exec.XShrI:
			a := regs[op.A]
			regs[op.D] = word.Make(a.Tag(), uint64(a.Int()>>uint(op.Imm&63)))

		case exec.XMkTag:
			regs[op.D] = regs[op.A].WithTag(op.Tag)
		case exec.XGetTag:
			regs[op.D] = word.MakeInt(int64(regs[op.A].Tag()))
		case exec.XLea:
			regs[op.D] = word.Make(op.Tag, uint64(regs[op.A].Int()+op.Imm))
		case exec.XMov, exec.XMovCP:
			regs[op.D] = regs[op.A]
		case exec.XMovI:
			regs[op.D] = op.W

		case exec.XBrTagEq:
			if regs[op.A].Tag() == op.Tag {
				taken[op.PC]++
				next = int(op.Target)
			}
		case exec.XBrTagNe:
			if regs[op.A].Tag() != op.Tag {
				taken[op.PC]++
				next = int(op.Target)
			}
		case exec.XBrCmpEqR:
			if regs[op.A] == regs[op.B] {
				taken[op.PC]++
				next = int(op.Target)
			}
		case exec.XBrCmpNeR:
			if regs[op.A] != regs[op.B] {
				taken[op.PC]++
				next = int(op.Target)
			}
		case exec.XBrCmpEqI:
			if regs[op.A] == op.W {
				taken[op.PC]++
				next = int(op.Target)
			}
		case exec.XBrCmpNeI:
			if regs[op.A] != op.W {
				taken[op.PC]++
				next = int(op.Target)
			}
		case exec.XBrCmpOrdR:
			if exec.OrdCmp(regs[op.A].Int(), regs[op.B].Int(), op.Cond) {
				taken[op.PC]++
				next = int(op.Target)
			}
		case exec.XBrCmpOrdI:
			if exec.OrdCmp(regs[op.A].Int(), op.Imm, op.Cond) {
				taken[op.PC]++
				next = int(op.Target)
			}

		case exec.XJmp:
			next = int(op.Target)
		case exec.XJmpR:
			t := int(regs[op.A].Val())
			if t < 0 || t >= len(s.XOf) || s.XOf[t] < 0 {
				m.pc = t
				return nil, m.fail("pc out of range")
			}
			next = int(s.XOf[t])
		case exec.XJsr:
			regs[op.D] = word.Make(word.Code, uint64(op.PC+1))
			next = int(op.Target)
		case exec.XHalt:
			if op.Imm == 2 {
				m.pc = int(op.PC)
				return nil, m.uncaught()
			}
			m.stepsDone = steps
			return &Result{Status: int(op.Imm), Output: m.out.String(), Steps: steps,
				Profile: m.prof, Stats: m.statsFast(steps)}, nil

		case exec.XSysWrite:
			m.pc = int(op.PC)
			if err := m.sysWrite(op.A); err != nil {
				return nil, err
			}
		case exec.XSysNl:
			m.out.WriteByte('\n')
		case exec.XSysWriteCode:
			m.out.WriteByte(byte(regs[op.A].Int()))
		case exec.XSysCompare:
			m.pc = int(op.PC)
			if err := m.sysCompare(op.A, op.B); err != nil {
				return nil, err
			}
		case exec.XSysBallPut:
			m.pc = int(op.PC)
			if err := m.sysBallPut(op.A); err != nil {
				return nil, err
			}
		case exec.XSysFault:
			m.pc = int(op.PC)
			jump, err := m.raise(fault.Kind(op.Imm))
			if err != nil {
				return nil, err
			}
			if jump {
				next = int(s.Throw)
			}
		case exec.XSysBad:
			m.pc = int(op.PC)
			return nil, m.fail("unknown sys op")

		case exec.XFLdBrTagEq:
			addr := regs[op.A].Val() + uint64(op.Imm)
			if addr >= uint64(len(mem)) {
				m.pc = int(op.PC)
				return nil, m.loadErr(addr)
			}
			regs[op.D] = mem[addr]
			if steps >= max {
				m.pc = int(op.PC) + 1
				return nil, m.faultErr(fault.StepLimit)
			}
			steps++
			expect[op.PC+1]++
			if regs[op.D2].Tag() == op.Tag {
				taken[op.PC+1]++
				next = int(op.Target)
			}
		case exec.XFLdBrTagNe:
			addr := regs[op.A].Val() + uint64(op.Imm)
			if addr >= uint64(len(mem)) {
				m.pc = int(op.PC)
				return nil, m.loadErr(addr)
			}
			regs[op.D] = mem[addr]
			if steps >= max {
				m.pc = int(op.PC) + 1
				return nil, m.faultErr(fault.StepLimit)
			}
			steps++
			expect[op.PC+1]++
			if regs[op.D2].Tag() != op.Tag {
				taken[op.PC+1]++
				next = int(op.Target)
			}
		case exec.XFLdBrCmpEqR:
			addr := regs[op.A].Val() + uint64(op.Imm)
			if addr >= uint64(len(mem)) {
				m.pc = int(op.PC)
				return nil, m.loadErr(addr)
			}
			regs[op.D] = mem[addr]
			if steps >= max {
				m.pc = int(op.PC) + 1
				return nil, m.faultErr(fault.StepLimit)
			}
			steps++
			expect[op.PC+1]++
			if regs[op.D2] == regs[op.A2] {
				taken[op.PC+1]++
				next = int(op.Target)
			}
		case exec.XFLdBrCmpNeR:
			addr := regs[op.A].Val() + uint64(op.Imm)
			if addr >= uint64(len(mem)) {
				m.pc = int(op.PC)
				return nil, m.loadErr(addr)
			}
			regs[op.D] = mem[addr]
			if steps >= max {
				m.pc = int(op.PC) + 1
				return nil, m.faultErr(fault.StepLimit)
			}
			steps++
			expect[op.PC+1]++
			if regs[op.D2] != regs[op.A2] {
				taken[op.PC+1]++
				next = int(op.Target)
			}
		case exec.XFGetTagBrEqI:
			regs[op.D] = word.MakeInt(int64(regs[op.A].Tag()))
			if steps >= max {
				m.pc = int(op.PC) + 1
				return nil, m.faultErr(fault.StepLimit)
			}
			steps++
			expect[op.PC+1]++
			if regs[op.D2] == op.W {
				taken[op.PC+1]++
				next = int(op.Target)
			}
		case exec.XFGetTagBrNeI:
			regs[op.D] = word.MakeInt(int64(regs[op.A].Tag()))
			if steps >= max {
				m.pc = int(op.PC) + 1
				return nil, m.faultErr(fault.StepLimit)
			}
			steps++
			expect[op.PC+1]++
			if regs[op.D2] != op.W {
				taken[op.PC+1]++
				next = int(op.Target)
			}
		case exec.XFStAdd:
			addr := regs[op.A].Val() + uint64(op.Imm)
			if addr >= m.limit[op.Region] {
				m.pc = int(op.PC)
				jump, err := m.raise(overflowKind(op.Region))
				if err != nil {
					return nil, err
				}
				if jump {
					// The store faulted: unwind now, the bump never runs
					// (and is not counted).
					m.ctr.skipStAdd++
					next = int(s.Throw)
					break
				}
			}
			if addr >= uint64(len(mem)) {
				m.pc = int(op.PC)
				return nil, m.storeErr(addr)
			}
			mem[addr] = regs[op.B]
			m.st.Touch(addr)
			if steps >= max {
				m.pc = int(op.PC) + 1
				return nil, m.faultErr(fault.StepLimit)
			}
			steps++
			expect[op.PC+1]++
			d := regs[op.D2]
			regs[op.D2] = word.Make(d.Tag(), uint64(d.Int()+op.Imm2))
		case exec.XFMovJmp:
			regs[op.D] = regs[op.A]
			if steps >= max {
				m.pc = int(op.PC) + 1
				return nil, m.faultErr(fault.StepLimit)
			}
			steps++
			expect[op.PC+1]++
			next = int(op.Target)
		case exec.XFCMovR:
			if exec.CmpW(regs[op.A], regs[op.B], op.Cond) {
				taken[op.PC]++
			} else {
				if steps >= max {
					m.pc = int(op.PC) + 1
					return nil, m.faultErr(fault.StepLimit)
				}
				steps++
				m.ctr.cmovMoves++
				expect[op.PC+1]++
				regs[op.D2] = regs[op.A2]
			}
		case exec.XFLdLd:
			addr := regs[op.A].Val() + uint64(op.Imm)
			if addr >= uint64(len(mem)) {
				m.pc = int(op.PC)
				return nil, m.loadErr(addr)
			}
			regs[op.D] = mem[addr]
			if steps >= max {
				m.pc = int(op.PC) + 1
				return nil, m.faultErr(fault.StepLimit)
			}
			steps++
			expect[op.PC+1]++
			addr = regs[op.A2].Val() + uint64(op.Imm2)
			if addr >= uint64(len(mem)) {
				m.pc = int(op.PC) + 1
				return nil, m.loadErr(addr)
			}
			regs[op.D2] = mem[addr]
		case exec.XFLdMov:
			addr := regs[op.A].Val() + uint64(op.Imm)
			if addr >= uint64(len(mem)) {
				m.pc = int(op.PC)
				return nil, m.loadErr(addr)
			}
			regs[op.D] = mem[addr]
			if steps >= max {
				m.pc = int(op.PC) + 1
				return nil, m.faultErr(fault.StepLimit)
			}
			steps++
			expect[op.PC+1]++
			regs[op.D2] = regs[op.A2]
		case exec.XFStSt:
			addr := regs[op.A].Val() + uint64(op.Imm)
			if addr >= m.limit[op.Region] {
				m.pc = int(op.PC)
				jump, err := m.raise(overflowKind(op.Region))
				if err != nil {
					return nil, err
				}
				if jump {
					m.ctr.skipStSt++
					next = int(s.Throw)
					break
				}
			}
			if addr >= uint64(len(mem)) {
				m.pc = int(op.PC)
				return nil, m.storeErr(addr)
			}
			mem[addr] = regs[op.B]
			m.st.Touch(addr)
			if steps >= max {
				m.pc = int(op.PC) + 1
				return nil, m.faultErr(fault.StepLimit)
			}
			steps++
			expect[op.PC+1]++
			addr = regs[op.A2].Val() + uint64(op.Imm2)
			if addr >= m.limit[op.Region2] {
				m.pc = int(op.PC) + 1
				jump, err := m.raise(overflowKind(op.Region2))
				if err != nil {
					return nil, err
				}
				if jump {
					next = int(s.Throw)
					break
				}
			}
			if addr >= uint64(len(mem)) {
				m.pc = int(op.PC) + 1
				return nil, m.storeErr(addr)
			}
			mem[addr] = regs[op.D2]
			m.st.Touch(addr)
		case exec.XFStMovI:
			addr := regs[op.A].Val() + uint64(op.Imm)
			if addr >= m.limit[op.Region] {
				m.pc = int(op.PC)
				jump, err := m.raise(overflowKind(op.Region))
				if err != nil {
					return nil, err
				}
				if jump {
					m.ctr.skipStMovI++
					next = int(s.Throw)
					break
				}
			}
			if addr >= uint64(len(mem)) {
				m.pc = int(op.PC)
				return nil, m.storeErr(addr)
			}
			mem[addr] = regs[op.B]
			m.st.Touch(addr)
			if steps >= max {
				m.pc = int(op.PC) + 1
				return nil, m.faultErr(fault.StepLimit)
			}
			steps++
			expect[op.PC+1]++
			regs[op.D2] = op.W
		case exec.XFMovISt:
			regs[op.D] = op.W
			if steps >= max {
				m.pc = int(op.PC) + 1
				return nil, m.faultErr(fault.StepLimit)
			}
			steps++
			expect[op.PC+1]++
			addr := regs[op.A2].Val() + uint64(op.Imm2)
			if addr >= m.limit[op.Region2] {
				m.pc = int(op.PC) + 1
				jump, err := m.raise(overflowKind(op.Region2))
				if err != nil {
					return nil, err
				}
				if jump {
					next = int(s.Throw)
					break
				}
			}
			if addr >= uint64(len(mem)) {
				m.pc = int(op.PC) + 1
				return nil, m.storeErr(addr)
			}
			mem[addr] = regs[op.D2]
			m.st.Touch(addr)
		case exec.XFMovMov:
			regs[op.D] = regs[op.A]
			if steps >= max {
				m.pc = int(op.PC) + 1
				return nil, m.faultErr(fault.StepLimit)
			}
			steps++
			expect[op.PC+1]++
			regs[op.D2] = regs[op.A2]
		case exec.XFMovBrTagEq:
			regs[op.D] = regs[op.A]
			if steps >= max {
				m.pc = int(op.PC) + 1
				return nil, m.faultErr(fault.StepLimit)
			}
			steps++
			expect[op.PC+1]++
			if regs[op.D2].Tag() == op.Tag {
				taken[op.PC+1]++
				next = int(op.Target)
			}
		case exec.XFMovBrTagNe:
			regs[op.D] = regs[op.A]
			if steps >= max {
				m.pc = int(op.PC) + 1
				return nil, m.faultErr(fault.StepLimit)
			}
			steps++
			expect[op.PC+1]++
			if regs[op.D2].Tag() != op.Tag {
				taken[op.PC+1]++
				next = int(op.Target)
			}

		default: // exec.XUnknown
			m.pc = int(op.PC)
			return nil, m.fail("unknown opcode")
		}
		if next <= x {
			poll--
			if poll <= 0 {
				poll = m.pollEvery()
				if err := m.pollCheck(int(op.PC)); err != nil {
					return nil, err
				}
			}
		}
		x = next
	}
}
