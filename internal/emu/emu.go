// Package emu implements the IntCode Sequential Emulator of the SYMBOL
// evaluation system (paper §3.1, Figure 1). It executes an IC program
// against the simulated tagged memory, validates the code, and extracts the
// statistical information that drives the parallelizing back end: the
// Expect of every instruction (how many times it executed) and the
// Probability of every branch (how often it was taken).
package emu

import (
	"fmt"
	"io"
	"strings"
	"time"

	"symbol/internal/exec"
	"symbol/internal/fault"
	"symbol/internal/ic"
	"symbol/internal/mterm"
	"symbol/internal/obs"
	"symbol/internal/word"
)

// Profile is the per-instruction statistics gathered during emulation.
type Profile struct {
	// Expect[pc] is the number of times Code[pc] executed.
	Expect []int64
	// Taken[pc] is the number of times the conditional branch at pc was
	// taken (meaningful only for BrTag/BrCmp).
	Taken []int64
}

// Probability returns the branch-taken probability of the conditional
// branch at pc, and false if it never executed.
func (p *Profile) Probability(pc int) (float64, bool) {
	if p.Expect[pc] == 0 {
		return 0, false
	}
	return float64(p.Taken[pc]) / float64(p.Expect[pc]), true
}

// Result summarizes one emulation segment: the stretch of execution from
// Run or Resume up to the next Halt. Status 0 means a solution was reached
// (the machine is suspended and Resume will backtrack into the next one);
// status 1 means the choice-point stack is exhausted.
type Result struct {
	Status  int    // 0: success (solution), 1: fail (no more solutions)
	Output  string // text produced by write/1 and nl/0 during this segment
	Steps   int64  // dynamic ICI count, cumulative across resumed segments
	Profile *Profile
	// Stats is the observability record (op-class mix, memory high-water
	// marks, choice-point/trail activity, faults, wall time), populated on
	// every completed segment in every interpreter mode. All fields are
	// cumulative across resumed segments; Wall counts only time spent
	// executing, not time suspended between solutions.
	Stats obs.Stats
}

// Error is a runtime error with machine context. Err, when non-nil, is the
// underlying typed fault sentinel, so errors.Is(err, fault.ErrHeapOverflow)
// and friends see through the machine context.
type Error struct {
	PC     int
	Inst   string
	Reason string
	Err    error
}

func (e *Error) Error() string {
	return fmt.Sprintf("emu: pc=%d [%s]: %s", e.PC, e.Inst, e.Reason)
}

// Unwrap exposes the typed fault underneath the machine context.
func (e *Error) Unwrap() error { return e.Err }

// ErrStepLimit is reported (wrapped in *Error) when MaxSteps is exhausted.
var ErrStepLimit = fault.ErrStepLimit

// Options configure emulation.
type Options struct {
	MaxSteps int64 // abort after this many ICIs (default 4e9)
	Profile  bool  // collect Expect/Taken
	// Layout shrinks the usable size of the memory areas below the
	// compile-time defaults; overflow of a shrunken area raises the
	// corresponding typed fault (catchable as resource_error(Area)).
	Layout ic.Layout
	// Deadline, when non-zero, aborts the run with fault.ErrDeadline once
	// the wall clock passes it (checked every fault.CheckInterval steps).
	Deadline time.Time
	// Interrupt, when non-nil, aborts the run with fault.ErrCanceled once
	// it is closed (polled at the deadline cadence). It lets an embedding
	// caller propagate context cancellation into a running query.
	Interrupt <-chan struct{}
	// State, when non-nil, is the caller-provided machine state to run in
	// (memory image + register file). The machine assumes it is all zero —
	// fresh from ic.NewState or restored by State.Reset — and marks every
	// memory write in its dirty set. Recycling one State across runs avoids
	// reallocating the multi-megaword memory image per query. Nil means
	// allocate a private state for this run.
	State *ic.State
	// Trace, if non-nil, receives one line per executed instruction with
	// machine-state context (debugging aid; very verbose). Tracing implies
	// the legacy reference interpreter: superinstruction fusion is disabled
	// so every ICI produces exactly one trace line.
	Trace io.Writer
	// NoFuse runs on the plain predecoded stream, one internal op per ICI,
	// with superinstruction fusion disabled. Observable behaviour is
	// identical either way (that is differentially tested); the flag exists
	// for benchmarking and for pinning down a miscompare.
	NoFuse bool
	// Legacy forces the original non-predecoded reference interpreter, the
	// semantic baseline the predecoded loops are verified against (implied
	// by Trace). Kept for differential tests and baseline benchmarks.
	Legacy bool
	// Threaded runs the closure-threaded core (threaded.go): the fused
	// stream compiled into per-op closures with operands pre-resolved at
	// build time, chained to their successors so the hot loop has no
	// central dispatch switch. Observable behaviour — output, Steps, fault
	// points, stats, suspend/resume — is identical to the switch loops
	// (differentially tested). Precedence when flags are combined:
	// Trace/Events/Legacy select the legacy interpreter, then Profile
	// selects the profiled fused switch loop (the profile arrays are the
	// dominant cost, so a threaded profiled variant would buy nothing),
	// then Threaded, then NoFuse.
	Threaded bool
	// Events, if non-nil, receives executor milestone events (call/fail
	// ports, choice-point push/pop, catch/throw, faults, halt). Like Trace
	// it implies the legacy reference interpreter, so the predecoded loops
	// carry no event hooks and pay nothing when tracing is off. On an
	// error return the trace still holds the events up to the fault.
	Events *obs.Trace
}

// Machine is the sequential IC interpreter.
type Machine struct {
	prog *ic.Program
	opts Options
	st   *ic.State
	mem  []word.W
	regs []word.W
	pc   int
	out  strings.Builder
	prof *Profile
	// limit bounds each annotated region: a store at addr with region
	// annotation r faults iff addr >= limit[r], i.e. the region's bump
	// pointer ran past its (possibly shrunken) end. Sound because every
	// region-annotated store is reached through that region's own pointer:
	// variable cells are always heap-allocated (compile.getVal), so bind
	// and trail-unwind targets never alias another region.
	limit [ic.RegionBall + 1]uint64
	// pendingFault remembers the kind of a resource fault that was
	// converted into a catchable ball, so an uncaught unwind reports the
	// original fault rather than a generic uncaught exception.
	pendingFault fault.Kind

	// Observability state. ctr is written by the run loops (the fast loops
	// only touch disp and the skip fixups; the legacy loop fills cls and
	// the mark counters instead); start stamps segment entry for wall time.
	ctr     counters
	start   time.Time
	events  *obs.Trace
	evStep  int64        // step counter mirror for events emitted inside raise
	catchPC int          // pc of the $catchh handler entry, -1 when absent
	procPC  map[int]bool // procedure entry pcs, built only when tracing events

	// Suspend/resume continuation. A Halt 0 leaves the whole machine state
	// (choice-point stack, trail, heap, dirty-page set) intact, so "the
	// continuation" is just: re-enter the interpreter at the shared $fail
	// routine, which pops the top choice point and backtracks into the next
	// untried alternative. stepsDone carries the cumulative step count into
	// the next segment (the MaxSteps budget spans resumes); wallAcc
	// accumulates active execution time across segments so suspension time
	// is never billed.
	phase      uint8
	legacyMode bool // which loop family ran (selects the Stats expansion)
	running    bool // inside a segment right now (selects the Wall formula)
	stepsDone  int64
	wallAcc    time.Duration

	// Closure-threaded loop scratch (threaded.go). The per-op closures
	// share one fixed signature that threads the loop-carried state (regs,
	// mem, steps, step budget) through registers; the poll countdown and
	// the terminal result/error ride here instead of widening every call.
	tpoll int64
	tres  *Result
	terr  error
}

// Machine run phases.
const (
	phaseReady     uint8 = iota // never run
	phaseSuspended              // halted at a solution; Resume continues
	phaseDone                   // terminal: exhausted, errored, or no $fail routine
)

// counters is the cheap per-run instrumentation the loops write. disp is
// sized 256 (not exec.NumCodes) and indexed by the uint8 opcode so the
// increment compiles without a bounds check.
type counters struct {
	disp [256]int64 // per-XCode dispatch counts (predecoded loops)
	// Fused second constituents skipped because the first store faulted
	// catchably: the dispatch count over-counts the second half by these.
	skipStAdd, skipStSt, skipStMovI int64
	cmovMoves                       int64 // XFCMovR second constituents actually executed
	// Legacy-loop equivalents: per-class counts and mark counts, gathered
	// per step since the legacy loop has no dense opcodes.
	cls                        [int(ic.NumClasses)]int64
	cpPush, cpPop, trailUndo   int64
	faultsRaised, faultsCaught int64
}

// overflowKind maps an overflowed memory region to its fault kind.
func overflowKind(r ic.Region) fault.Kind {
	switch r {
	case ic.RegionHeap:
		return fault.HeapOverflow
	case ic.RegionEnv:
		return fault.EnvOverflow
	case ic.RegionCP:
		return fault.CPOverflow
	case ic.RegionTrail:
		return fault.TrailOverflow
	case ic.RegionPDL:
		return fault.PDLOverflow
	}
	return fault.InvalidMemory
}

// New prepares a machine for prog. When opts.State is set the machine runs
// in that (zeroed) state; otherwise it allocates a private one.
func New(prog *ic.Program, opts Options) *Machine {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 4e9
	}
	st := opts.State
	if st == nil {
		st = ic.NewState()
	}
	m := &Machine{
		prog:    prog,
		opts:    opts,
		st:      st,
		mem:     st.Mem(),
		regs:    st.Regs(max(int(prog.MaxReg())+1, tregCap)),
		pc:      prog.Entry,
		events:  opts.Events,
		catchPC: -1,
	}
	if pc, ok := prog.Procs["$catchh"]; ok {
		m.catchPC = pc
	}
	if m.events != nil {
		m.procPC = make(map[int]bool, len(prog.Procs))
		for _, pc := range prog.Procs {
			m.procPC[pc] = true
		}
	}
	// Unannotated stores never region-fault: give RegionUnknown an
	// unreachable limit so the predecoded store handler needs no separate
	// "is this store annotated" test.
	m.limit[ic.RegionUnknown] = ^uint64(0)
	for r := ic.RegionHeap; r <= ic.RegionBall; r++ {
		m.limit[r] = opts.Layout.Limit(r)
	}
	if opts.Profile {
		m.prof = &Profile{
			Expect: make([]int64, len(prog.Code)),
			Taken:  make([]int64, len(prog.Code)),
		}
	}
	return m
}

// Run executes the program to completion.
func Run(prog *ic.Program, opts Options) (*Result, error) {
	return New(prog, opts).Run()
}

func (m *Machine) fail(reason string) *Error {
	s := "?"
	if m.pc >= 0 && m.pc < len(m.prog.Code) {
		s = m.prog.Code[m.pc].String()
	}
	return &Error{PC: m.pc, Inst: s, Reason: reason}
}

// faultErr builds a typed machine fault at the current pc.
func (m *Machine) faultErr(k fault.Kind) error {
	e := m.fail(k.String())
	e.Err = fault.Of(k)
	return e
}

// raise handles a machine fault of kind k: catchable kinds are converted
// into a ball and delivered to the $throwunwind routine (redirect true);
// everything else surfaces as a typed hard error.
func (m *Machine) raise(k fault.Kind) (redirect bool, err error) {
	m.ctr.faultsRaised++
	if m.events != nil {
		m.events.Add(obs.Event{Step: m.evStep, PC: int32(m.pc), Kind: obs.EvFault, Arg: int64(k)})
	}
	if fault.Catchable(k) && m.prog.ThrowPC > 0 &&
		mterm.BallFault(m.mem, m.prog.Atoms, fault.BallName(k)) {
		m.st.TouchRange(ic.BallBase, ic.BallBase+ic.BallSize)
		m.pendingFault = k
		m.ctr.faultsCaught++
		return true, nil
	}
	return false, m.faultErr(k)
}

// uncaught reports a ball that unwound past the whole choice-point stack
// (the $throwunwind Halt 2 path).
func (m *Machine) uncaught() error {
	if m.pendingFault != fault.None {
		return m.faultErr(m.pendingFault)
	}
	reason := fault.UncaughtThrow.String()
	if s, err := mterm.FormatOps(mterm.SliceMem(m.mem), m.prog.Atoms, m.mem[ic.BallBase+1]); err == nil {
		reason += ": " + s
	}
	e := m.fail(reason)
	e.Err = fault.ErrUncaughtThrow
	return e
}

func (m *Machine) load(addr uint64) (word.W, error) {
	if addr >= uint64(len(m.mem)) {
		e := m.fail(fmt.Sprintf("load out of range: %#x", addr))
		e.Err = fault.ErrInvalidMemory
		return 0, e
	}
	return m.mem[addr], nil
}

// Run interprets until Halt, an error, or the step limit. The hot path runs
// over the program's predecoded stream (internal/exec), fused unless
// opts.NoFuse; tracing (or opts.Legacy) selects the original reference
// interpreter, which executes ic.Inst directly. When the result has Status 0
// the machine is left suspended at the solution: Resume backtracks into the
// next alternative.
func (m *Machine) Run() (*Result, error) {
	if m.phase != phaseReady {
		return nil, fmt.Errorf("emu: Run on a machine that already ran (use Resume)")
	}
	return m.segment(false)
}

// Resume re-enters a machine suspended at a solution (More reports true)
// and backtracks for the next one. The segment ends at the next Halt:
// Status 0 with the next solution (suspended again), or Status 1 when the
// choice-point stack is exhausted. Output is reset per segment, so each
// result carries only its own solution's text; Steps, Stats and the
// MaxSteps budget are cumulative across segments. Errors (faults, budget
// exhaustion, cancellation) are terminal: the machine cannot be resumed
// after one.
func (m *Machine) Resume() (*Result, error) {
	if m.phase != phaseSuspended {
		return nil, fmt.Errorf("emu: Resume on a machine that is not suspended")
	}
	m.out.Reset()
	return m.segment(true)
}

// More reports whether the machine is suspended at a solution, i.e. Resume
// can backtrack into the next alternative.
func (m *Machine) More() bool { return m.phase == phaseSuspended }

// SetDeadline replaces the abort deadline for subsequent segments (zero
// clears it). Only legal between segments, never while Run/Resume executes.
func (m *Machine) SetDeadline(t time.Time) { m.opts.Deadline = t }

// SetInterrupt replaces the cancellation channel for subsequent segments
// (nil clears it). Only legal between segments.
func (m *Machine) SetInterrupt(ch <-chan struct{}) { m.opts.Interrupt = ch }

// Stats snapshots the cumulative observability record covering every
// segment so far. Only legal between segments; it lets an embedder that
// abandons a suspended machine settle its accounting without running to
// exhaustion.
func (m *Machine) Stats() obs.Stats {
	if m.legacyMode {
		return m.statsLegacy(m.stepsDone)
	}
	return m.statsFast(m.stepsDone)
}

// Elapsed is the cumulative active execution time across segments,
// excluding time spent suspended.
func (m *Machine) Elapsed() time.Duration { return m.wallNow() }

// segment runs one Run/Resume stretch to its Halt (or error). Resuming
// means entering at the $fail routine instead of the program entry: $fail
// restores the top choice-point frame and dispatches its retry address, or
// executes Halt 1 when the stack is empty. FailPC is a static branch
// target, so the fusion pass never buries it and the stream lookup is
// always exact.
func (m *Machine) segment(resume bool) (*Result, error) {
	m.start = time.Now()
	m.running = true
	m.phase = phaseDone // provisional; a Halt 0 below re-suspends
	var (
		res *Result
		err error
	)
	if m.opts.Trace != nil || m.opts.Legacy || m.events != nil {
		m.legacyMode = true
		if resume {
			// The predecoded loops poll on entry every segment; mirror that
			// here so a deadline that expired while suspended aborts a
			// legacy-mode resume at step 0 too.
			m.pc = m.prog.FailPC
			err = m.pollCheck(m.pc)
		}
		if err == nil {
			res, err = m.runLegacy()
		}
	} else {
		xp := exec.Of(m.prog)
		var tp *tprog
		if m.opts.Threaded && m.prof == nil {
			// tops is nil when the program names a register past the threaded
			// core's fixed register-file view; the fused loop below serves
			// those (bit-identical results, just the slower dispatch).
			if t := threadedOf(xp); t.tops != nil {
				tp = t
			}
		}
		if tp != nil {
			x := int(tp.s.Entry)
			if resume {
				x = int(tp.s.Fail)
			}
			res, err = m.runThreaded(tp, x)
		} else {
			s := &xp.Fused
			if m.opts.NoFuse {
				s = &xp.Plain
			}
			x := int(s.Entry)
			if resume {
				x = int(s.Fail)
			}
			if m.prof != nil {
				res, err = m.runProfiled(s, x)
			} else {
				res, err = m.runFast(s, x)
			}
		}
	}
	m.wallAcc += time.Since(m.start)
	m.running = false
	if err == nil && res.Status == 0 && m.prog.FailPC > 0 {
		m.phase = phaseSuspended
	}
	return res, err
}

// wallNow is the cumulative active wall time: time actually spent inside
// run segments, excluding any time the machine sat suspended between
// solutions.
func (m *Machine) wallNow() time.Duration {
	if m.running {
		return m.wallAcc + time.Since(m.start)
	}
	return m.wallAcc
}

// stats assembles the per-run record shared by every loop: the caller
// supplies the class counts and choice-point/trail totals its own
// instrumentation produced, the machine adds fault counters, wall time and
// the page-granular memory high-water marks.
func (m *Machine) stats(steps int64, cls *[int(ic.NumClasses)]int64, cp, undo int64) obs.Stats {
	return obs.Stats{
		Steps:        steps,
		MemOps:       cls[ic.ClassMemory],
		ALUOps:       cls[ic.ClassALU],
		MoveOps:      cls[ic.ClassMove],
		ControlOps:   cls[ic.ClassControl],
		SysOps:       cls[ic.ClassSys],
		HeapHigh:     int64(m.st.MaxDirty(ic.HeapBase, ic.HeapBase+ic.HeapSize) - ic.HeapBase),
		EnvHigh:      int64(m.st.MaxDirty(ic.EnvBase, ic.EnvBase+ic.EnvSize) - ic.EnvBase),
		CPHigh:       int64(m.st.MaxDirty(ic.CPBase, ic.CPBase+ic.CPSize) - ic.CPBase),
		TrailHigh:    int64(m.st.MaxDirty(ic.TrailBase, ic.TrailBase+ic.TrailSize) - ic.TrailBase),
		PDLHigh:      int64(m.st.MaxDirty(ic.PDLBase, ic.PDLBase+ic.PDLSize) - ic.PDLBase),
		ChoicePoints: cp,
		TrailUndos:   undo,
		FaultsRaised: m.ctr.faultsRaised,
		FaultsCaught: m.ctr.faultsCaught,
		Wall:         m.wallNow(),
	}
}

// statsFast expands the predecoded loops' per-opcode dispatch counters into
// the exact per-class dynamic mix in original-ICI units. Every dispatch
// counted both constituents of a superinstruction; the skip counters undo
// the (rare) second constituents that did not execute because the first
// store faulted catchably, and XFCMovR's conditional second constituent is
// replaced by the count of moves that actually ran. The marked opcodes make
// the dispatch array itself the choice-point and trail-undo counters.
func (m *Machine) statsFast(steps int64) obs.Stats {
	d := &m.ctr.disp
	// One spare slot catches the Class2Of "no second constituent" sentinel.
	var cls [int(ic.NumClasses) + 1]int64
	for c := 0; c < int(exec.NumCodes); c++ {
		n := d[c]
		if n == 0 {
			continue
		}
		cls[exec.ClassOf[c]] += n
		cls[exec.Class2Of[c]] += n
	}
	cls[ic.ClassALU] -= m.ctr.skipStAdd
	cls[ic.ClassMemory] -= m.ctr.skipStSt
	cls[ic.ClassMove] -= m.ctr.skipStMovI
	cls[ic.ClassMove] -= d[exec.XFCMovR] - m.ctr.cmovMoves
	head := [int(ic.NumClasses)]int64(cls[:int(ic.NumClasses)])
	return m.stats(steps, &head, d[exec.XMovCP], d[exec.XLdUndo])
}

// statsLegacy packages the legacy loop's per-step counts.
func (m *Machine) statsLegacy(steps int64) obs.Stats {
	return m.stats(steps, &m.ctr.cls, m.ctr.cpPush, m.ctr.trailUndo)
}

// runLegacy is the original one-ICI-at-a-time interpreter. It is the
// semantic reference for the predecoded loops in run.go and the only loop
// that supports Trace.
func (m *Machine) runLegacy() (*Result, error) {
	code := m.prog.Code
	steps := m.stepsDone
	for {
		if m.pc < 0 || m.pc >= len(code) {
			return nil, m.fail("pc out of range")
		}
		if steps >= m.opts.MaxSteps {
			return nil, m.faultErr(fault.StepLimit)
		}
		if steps&(fault.CheckInterval-1) == 0 {
			if !m.opts.Deadline.IsZero() && time.Now().After(m.opts.Deadline) {
				return nil, m.faultErr(fault.Deadline)
			}
			if m.opts.Interrupt != nil {
				select {
				case <-m.opts.Interrupt:
					return nil, m.faultErr(fault.Canceled)
				default:
				}
			}
		}
		steps++
		in := &code[m.pc]
		m.ctr.cls[in.Class()]++
		switch in.Mark {
		case ic.MarkCPPush:
			m.ctr.cpPush++
		case ic.MarkCPPop:
			m.ctr.cpPop++
		case ic.MarkTrailUndo:
			m.ctr.trailUndo++
		}
		if m.events != nil {
			m.evStep = steps
		}
		if m.prof != nil {
			m.prof.Expect[m.pc]++
		}
		if m.opts.Trace != nil {
			if lbl, ok := m.prog.Names[m.pc]; ok {
				fmt.Fprintf(m.opts.Trace, "%s:\n", lbl)
			}
			ops := ""
			if in.A >= 0 && int(in.A) < len(m.regs) {
				ops += fmt.Sprintf(" A=%s", m.regs[in.A])
			}
			if in.B >= 0 && int(in.B) < len(m.regs) && !in.HasImm {
				ops += fmt.Sprintf(" B=%s", m.regs[in.B])
			}
			fmt.Fprintf(m.opts.Trace, "%7d %4d  %-40s b=%x tr=%x h=%x e=%x%s\n",
				steps, m.pc, in.String(),
				m.regs[ic.RegB].Val(), m.regs[ic.RegTR].Val(),
				m.regs[ic.RegH].Val(), m.regs[ic.RegE].Val(), ops)
		}
		next := m.pc + 1
		switch in.Op {
		case ic.Nop:
		case ic.Ld:
			v, err := m.load(m.regs[in.A].Val() + uint64(in.Imm))
			if err != nil {
				return nil, err
			}
			m.regs[in.D] = v
		case ic.St:
			addr := m.regs[in.A].Val() + uint64(in.Imm)
			if r := in.Reg; r != ic.RegionUnknown && addr >= m.limit[r] {
				jump, err := m.raise(overflowKind(r))
				if err != nil {
					return nil, err
				}
				if jump {
					next = m.prog.ThrowPC
					break
				}
			}
			if addr >= uint64(len(m.mem)) {
				e := m.fail(fmt.Sprintf("store out of range: %#x", addr))
				e.Err = fault.ErrInvalidMemory
				return nil, e
			}
			m.mem[addr] = m.regs[in.B]
			m.st.Touch(addr)
		case ic.Add, ic.Sub, ic.Mul, ic.Div, ic.Mod, ic.And, ic.Or, ic.Xor, ic.Shl, ic.Shr:
			a := m.regs[in.A].Int()
			var b int64
			if in.HasImm {
				b = in.Imm
			} else {
				b = m.regs[in.B].Int()
			}
			var r int64
			switch in.Op {
			case ic.Add:
				r = a + b
			case ic.Sub:
				r = a - b
			case ic.Mul:
				r = a * b
			case ic.Div:
				if b == 0 {
					return nil, m.faultErr(fault.ZeroDivide)
				}
				r = a / b
			case ic.Mod:
				if b == 0 {
					return nil, m.faultErr(fault.ZeroDivide)
				}
				r = a % b
			case ic.And:
				r = a & b
			case ic.Or:
				r = a | b
			case ic.Xor:
				r = a ^ b
			case ic.Shl:
				r = a << uint(b&63)
			case ic.Shr:
				r = a >> uint(b&63)
			}
			m.regs[in.D] = word.Make(m.regs[in.A].Tag(), uint64(r))
		case ic.MkTag:
			m.regs[in.D] = m.regs[in.A].WithTag(in.Tag)
		case ic.Lea:
			m.regs[in.D] = word.Make(in.Tag, uint64(m.regs[in.A].Int()+in.Imm))
		case ic.GetTag:
			m.regs[in.D] = word.MakeInt(int64(m.regs[in.A].Tag()))
		case ic.Mov:
			m.regs[in.D] = m.regs[in.A]
		case ic.MovI:
			m.regs[in.D] = in.Word
		case ic.BrTag:
			taken := m.regs[in.A].Tag() == in.Tag
			if in.Cond == ic.CondNe {
				taken = !taken
			}
			if taken {
				next = in.Target
				if m.prof != nil {
					m.prof.Taken[m.pc]++
				}
			}
		case ic.BrCmp:
			if m.evalCmp(in) {
				next = in.Target
				if m.prof != nil {
					m.prof.Taken[m.pc]++
				}
			}
		case ic.Jmp:
			next = in.Target
		case ic.JmpR:
			next = int(m.regs[in.A].Val())
		case ic.Jsr:
			m.regs[in.D] = word.Make(word.Code, uint64(m.pc+1))
			next = in.Target
		case ic.Halt:
			if in.Imm == 2 {
				return nil, m.uncaught()
			}
			if m.events != nil {
				m.events.Add(obs.Event{Step: steps, PC: int32(m.pc), Kind: obs.EvHalt, Arg: in.Imm})
			}
			m.stepsDone = steps
			res := &Result{
				Status:  int(in.Imm),
				Output:  m.out.String(),
				Steps:   steps,
				Profile: m.prof,
				Stats:   m.statsLegacy(steps),
			}
			return res, nil
		case ic.SysOp:
			if in.Sys == ic.SysFault {
				jump, err := m.raise(fault.Kind(in.Imm))
				if err != nil {
					return nil, err
				}
				if jump {
					next = m.prog.ThrowPC
				}
			} else if err := m.sys(in); err != nil {
				return nil, err
			}
		default:
			return nil, m.fail("unknown opcode")
		}
		if m.events != nil {
			m.emitEvents(steps, in, next)
		}
		m.pc = next
	}
}

// emitEvents derives milestone events from the instruction that just
// executed at m.pc and the pc control moves to next. Fault events are
// emitted inside raise (they may precede a hard-error return), halts in
// the Halt arm; everything else is recognizable here from the instruction
// shape, its Mark, or the destination pc.
func (m *Machine) emitEvents(steps int64, in *ic.Inst, next int) {
	t := m.events
	pc := int32(m.pc)
	switch in.Mark {
	case ic.MarkCPPush:
		t.Add(obs.Event{Step: steps, PC: pc, Kind: obs.EvChoicePush, Arg: int64(m.regs[ic.RegB].Val())})
	case ic.MarkCPPop:
		t.Add(obs.Event{Step: steps, PC: pc, Kind: obs.EvChoicePop, Arg: int64(m.regs[ic.RegB].Val())})
	}
	switch in.Op {
	case ic.Jsr:
		t.Add(obs.Event{Step: steps, PC: pc, Kind: obs.EvCall, Arg: int64(in.Target)})
	case ic.Jmp:
		if m.procPC[in.Target] && in.Target != m.prog.FailPC {
			t.Add(obs.Event{Step: steps, PC: pc, Kind: obs.EvExec, Arg: int64(in.Target)})
		}
	case ic.JmpR:
		// Only returns through the continuation register: $fail's retry
		// dispatch and the rethrow paths JmpR through temporaries.
		if in.A == ic.RegCP {
			t.Add(obs.Event{Step: steps, PC: pc, Kind: obs.EvReturn, Arg: int64(next)})
		}
	case ic.SysOp:
		if in.Sys == ic.SysBallPut {
			t.Add(obs.Event{Step: steps, PC: pc, Kind: obs.EvThrow})
		}
	}
	if next == m.prog.FailPC {
		t.Add(obs.Event{Step: steps, PC: pc, Kind: obs.EvFail})
	}
	if next == m.catchPC {
		t.Add(obs.Event{Step: steps, PC: pc, Kind: obs.EvCatch})
	}
}

// evalCmp evaluates a BrCmp condition. Eq/Ne compare full tagged words;
// ordered conditions compare signed value fields.
func (m *Machine) evalCmp(in *ic.Inst) bool {
	a := m.regs[in.A]
	switch in.Cond {
	case ic.CondEq, ic.CondNe:
		var b word.W
		if in.HasImm {
			// Full-word immediates live in Word, already tagged; Imm is
			// only for the ordered value comparisons below. (Reinterpreting
			// Imm's raw bits as a tagged word here compared against garbage
			// whenever an emitter stored a plain integer in it.)
			b = in.Word
		} else {
			b = m.regs[in.B]
		}
		if in.Cond == ic.CondEq {
			return a == b
		}
		return a != b
	default:
		av := a.Int()
		var bv int64
		if in.HasImm {
			bv = in.Imm
		} else {
			bv = m.regs[in.B].Int()
		}
		switch in.Cond {
		case ic.CondLt:
			return av < bv
		case ic.CondLe:
			return av <= bv
		case ic.CondGt:
			return av > bv
		default:
			return av >= bv
		}
	}
}

// The sys builtins are shared between the legacy and predecoded loops as
// one small method per SysID (the predecoded stream has a distinct opcode
// for each, so the legacy dispatch below is only used under Trace/Legacy).

func (m *Machine) sysWrite(a ic.Reg) error {
	s, err := mterm.FormatOps(mterm.SliceMem(m.mem), m.prog.Atoms, m.regs[a])
	if err != nil {
		return err
	}
	m.out.WriteString(s)
	return nil
}

func (m *Machine) sysCompare(a, b ic.Reg) error {
	c, err := mterm.Compare(mterm.SliceMem(m.mem), m.prog.Atoms, m.regs[a], m.regs[b])
	if err != nil {
		return err
	}
	m.regs[ic.RegRV] = word.MakeInt(int64(c))
	return nil
}

func (m *Machine) sysBallPut(a ic.Reg) error {
	// Touch before the error check: a failed copy may still have
	// written part of the ball area, and Reset must see it.
	err := mterm.BallPut(m.mem, m.regs[a])
	m.st.TouchRange(ic.BallBase, ic.BallBase+ic.BallSize)
	if err != nil {
		return m.fail(err.Error())
	}
	// A user throw supersedes any converted resource fault in flight.
	m.pendingFault = fault.None
	return nil
}

func (m *Machine) sys(in *ic.Inst) error {
	switch in.Sys {
	case ic.SysWrite:
		return m.sysWrite(in.A)
	case ic.SysNl:
		m.out.WriteByte('\n')
	case ic.SysWriteCode:
		m.out.WriteByte(byte(m.regs[in.A].Int()))
	case ic.SysCompare:
		return m.sysCompare(in.A, in.B)
	case ic.SysBallPut:
		return m.sysBallPut(in.A)
	default:
		return m.fail("unknown sys op")
	}
	return nil
}

// FormatTerm renders a runtime term the way write/1 does.
func (m *Machine) FormatTerm(w word.W) (string, error) {
	return mterm.FormatOps(mterm.SliceMem(m.mem), m.prog.Atoms, w)
}
