package emu

import (
	"symbol/internal/exec"
	"symbol/internal/word"
)

// The triple pass: a second combining pass over the threaded program that
// collapses three (and in one case four) consecutive fused ops into a
// single closure. It follows exactly the pair pass's parity rules
// (threaded_pairs.go): constituent step/dispatch/fault/poll accounting is
// replayed verbatim, a near-budget entry delegates to the exact per-op
// chain gens[i], and installation overlaps while execution never does —
// slots i+1 and i+2 keep their own (possibly paired) closures for branches
// that enter mid-sequence.
//
// The categories are the hot straight-line runs left after pairing: the
// search loop's compare-load-compare head and its load/computed-jump tail,
// the structure-building store chain, the tag-test ladders, and a move
// whose unconditional jump lands on another move. Anything else keeps its
// pair or per-op slot.

// tripleFn returns a combined closure for the run starting at op i of s,
// or nil when the category is not combined.
func tripleFn(s *exec.Stream, tops, gens []top, stop *top, i int) tfn {
	n := len(s.Ops)
	if i+1 >= n {
		return nil
	}
	op1, op2 := &s.Ops[i], &s.Ops[i+1]
	k1, k2 := op1.Code, op2.Code

	// The third op: the slot after the pair, or — when the second op is an
	// unconditional jump — the op at the jump target, with the back-edge
	// poll run between them just as the per-op chain would.
	l := i + 2
	if k2 == exec.XJmp {
		if op2.Target < 0 || int(op2.Target) >= n ||
			int(op2.Target) == i || int(op2.Target) == i+1 {
			return nil
		}
		l = int(op2.Target)
	}
	if l >= n {
		return nil
	}
	op3 := &s.Ops[l]
	k3 := op3.Code
	jback3 := l <= i+1

	gen1 := &gens[i]
	pc1, pc2, pc3 := int(op1.PC), int(op2.PC), int(op3.PC)
	fall3 := stop
	if l+1 < n {
		fall3 = &tops[l+1]
	}
	tgt1, tback1 := stop, false
	if op1.Target >= 0 && int(op1.Target) < n {
		tgt1 = &tops[op1.Target]
		tback1 = int(op1.Target) <= i
	}
	tgt3, tback3 := stop, false
	if op3.Target >= 0 && int(op3.Target) < n {
		tgt3 = &tops[op3.Target]
		tback3 = int(op3.Target) <= l
	}
	var throw *top
	throwBack1, throwBack2, throwBack3 := false, false, false
	if s.Throw >= 0 {
		throw = &tops[s.Throw]
		throwBack1 = int(s.Throw) <= i
		throwBack2 = int(s.Throw) <= i+1
		throwBack3 = int(s.Throw) <= l
	}

	d1, a1, b1 := uint8(op1.D), uint8(op1.A), uint8(op1.B)
	d1b, a1b := uint8(op1.D2), uint8(op1.A2)
	uimm1, uimm1b := uint64(op1.Imm), uint64(op1.Imm2)
	w1, tag1 := op1.W, op1.Tag
	ri1, ri1b := op1.Region, op1.Region2
	kOver1, kOver1b := overflowKind(ri1), overflowKind(ri1b)

	d2, a2, b2 := uint8(op2.D), uint8(op2.A), uint8(op2.B)
	d2b, a2b := uint8(op2.D2), uint8(op2.A2)
	uimm2, uimm2b := uint64(op2.Imm), uint64(op2.Imm2)
	ri2, ri2b := op2.Region, op2.Region2
	kOver2, kOver2b := overflowKind(ri2), overflowKind(ri2b)

	d3, a3, b3 := uint8(op3.D), uint8(op3.A), uint8(op3.B)
	d3b, a3b := uint8(op3.D2), uint8(op3.A2)
	uimm3, uimm3b := uint64(op3.Imm), uint64(op3.Imm2)
	tag3 := op3.Tag
	ri3, ri3b := op3.Region, op3.Region2
	kOver3, kOver3b := overflowKind(ri3), overflowKind(ri3b)

	imm2 := op2.Imm
	cond2, cond3 := op2.Cond, op3.Cond

	// (mov, jmp, mov-at-target): the only triple whose third op is reached
	// through a jump.
	if k2 == exec.XJmp {
		if (k1 == exec.XMov || k1 == exec.XMovCP) &&
			(k3 == exec.XMov || k3 == exec.XMovCP) {
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+3 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k1]++
				regs[d1] = regs[a1]
				steps++
				m.ctr.disp[k2]++
				if jback3 {
					m.tpoll--
					if m.tpoll <= 0 {
						m.tpoll = m.pollEvery()
						if err := m.pollCheck(pc2); err != nil {
							m.terr = err
							return nil, steps
						}
					}
				}
				steps++
				m.ctr.disp[k3]++
				regs[d3] = regs[a3]
				return fall3, steps
			}
		}
		return nil
	}

	switch k1 {
	case exec.XBrCmpEqI, exec.XBrCmpNeI:
		// Compare-branch head of the search loop: immediate compare (not
		// taken), two loads, register compare-branch.
		ne1 := k1 == exec.XBrCmpNeI
		if k2 == exec.XFLdLd && k3 == exec.XBrCmpOrdR {
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+4 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k1]++
				if (regs[a1] == w1) == !ne1 {
					if tback1 {
						return m.tEdge(pc1, tgt1), steps
					}
					return tgt1, steps
				}
				m.ctr.disp[k2]++
				addr := regs[a2].Val() + uimm2
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc2, addr), steps
				}
				regs[d2] = mem[addr]
				steps += 2
				addr = regs[a2b].Val() + uimm2b
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc2+1, addr), steps
				}
				regs[d2b] = mem[addr]
				steps++
				m.ctr.disp[k3]++
				if exec.OrdCmp(regs[a3].Int(), regs[b3].Int(), cond3) {
					if tback3 {
						return m.tEdge(pc3, tgt3), steps
					}
					return tgt3, steps
				}
				return fall3, steps
			}
		}

	case exec.XFLdLd:
		// Load tail of the search loop: four loads, one plain load, then
		// the computed jump — six constituents in one dispatch.
		if k2 == exec.XFLdLd && (k3 == exec.XLd || k3 == exec.XLdUndo) &&
			i+3 < n && s.Ops[i+3].Code == exec.XJmpR && l == i+2 {
			op4 := &s.Ops[i+3]
			pc4, k4 := int(op4.PC), op4.Code
			a4 := uint8(op4.A)
			xof := s.XOf
			selfx4 := i + 3
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+6 > tmax {
					return gen1, steps
				}
				m.ctr.disp[k1]++
				addr := regs[a1].Val() + uimm1
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc1, addr), steps
				}
				regs[d1] = mem[addr]
				steps += 2
				addr = regs[a1b].Val() + uimm1b
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc1+1, addr), steps
				}
				regs[d1b] = mem[addr]
				m.ctr.disp[k2]++
				addr = regs[a2].Val() + uimm2
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc2, addr), steps
				}
				regs[d2] = mem[addr]
				steps += 2
				addr = regs[a2b].Val() + uimm2b
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc2+1, addr), steps
				}
				regs[d2b] = mem[addr]
				steps++
				m.ctr.disp[k3]++
				addr = regs[a3].Val() + uimm3
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc3, addr), steps
				}
				regs[d3] = mem[addr]
				steps++
				m.ctr.disp[k4]++
				tv := int(regs[a4].Val())
				if tv < 0 || tv >= len(xof) || xof[tv] < 0 {
					return m.tFail(tv, "pc out of range"), steps
				}
				nx := int(xof[tv])
				if nx <= selfx4 {
					return m.tEdge(pc4, &tops[nx]), steps
				}
				return &tops[nx], steps
			}
		}

	case exec.XLd, exec.XLdUndo:
		// Load and two adds: the head of the store chain.
		if k2 == exec.XAddI && k3 == exec.XAddR {
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+3 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k1]++
				addr := regs[a1].Val() + uimm1
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc1, addr), steps
				}
				regs[d1] = mem[addr]
				steps++
				m.ctr.disp[k2]++
				av := regs[a2]
				regs[d2] = word.Make(av.Tag(), uint64(av.Int()+imm2))
				steps++
				m.ctr.disp[k3]++
				av = regs[a3]
				regs[d3] = word.Make(av.Tag(), uint64(av.Int()+regs[b3].Int()))
				return fall3, steps
			}
		}

	case exec.XBrTagEq, exec.XBrTagNe:
		// Tag-test ladders: a not-taken tag branch, a one-step middle op,
		// and another branch.
		ne1 := k1 == exec.XBrTagNe
		switch k2 {
		case exec.XMov, exec.XMovCP:
			if k3 == exec.XBrTagEq || k3 == exec.XBrTagNe {
				ne3 := k3 == exec.XBrTagNe
				return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
					if steps+3 > tmax {
						return gen1, steps
					}
					steps++
					m.ctr.disp[k1]++
					if (regs[a1].Tag() == tag1) == !ne1 {
						if tback1 {
							return m.tEdge(pc1, tgt1), steps
						}
						return tgt1, steps
					}
					steps++
					m.ctr.disp[k2]++
					regs[d2] = regs[a2]
					steps++
					m.ctr.disp[k3]++
					if (regs[a3].Tag() == tag3) == !ne3 {
						if tback3 {
							return m.tEdge(pc3, tgt3), steps
						}
						return tgt3, steps
					}
					return fall3, steps
				}
			}
		case exec.XAddR:
			if k3 == exec.XBrCmpNeR {
				return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
					if steps+3 > tmax {
						return gen1, steps
					}
					steps++
					m.ctr.disp[k1]++
					if (regs[a1].Tag() == tag1) == !ne1 {
						if tback1 {
							return m.tEdge(pc1, tgt1), steps
						}
						return tgt1, steps
					}
					steps++
					m.ctr.disp[k2]++
					av := regs[a2]
					regs[d2] = word.Make(av.Tag(), uint64(av.Int()+regs[b2].Int()))
					steps++
					m.ctr.disp[k3]++
					if regs[a3] != regs[b3] {
						if tback3 {
							return m.tEdge(pc3, tgt3), steps
						}
						return tgt3, steps
					}
					return fall3, steps
				}
			}
		case exec.XSubR:
			if k3 == exec.XBrCmpNeR {
				return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
					if steps+3 > tmax {
						return gen1, steps
					}
					steps++
					m.ctr.disp[k1]++
					if (regs[a1].Tag() == tag1) == !ne1 {
						if tback1 {
							return m.tEdge(pc1, tgt1), steps
						}
						return tgt1, steps
					}
					steps++
					m.ctr.disp[k2]++
					av := regs[a2]
					regs[d2] = word.Make(av.Tag(), uint64(av.Int()-regs[b2].Int()))
					steps++
					m.ctr.disp[k3]++
					if regs[a3] != regs[b3] {
						if tback3 {
							return m.tEdge(pc3, tgt3), steps
						}
						return tgt3, steps
					}
					return fall3, steps
				}
			}
		}

	case exec.XFStMovI:
		// Store chain body: store+move-imm, then four more stores.
		if k2 == exec.XFStSt && k3 == exec.XFStSt {
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+6 > tmax {
					return gen1, steps
				}
				m.ctr.disp[k1]++
				addr := regs[a1].Val() + uimm1
				if addr >= m.limit[ri1] {
					return m.tRaise(pc1, kOver1, throw, throwBack1, tSkipStMovI), steps + 1
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc1, addr), steps
				}
				mem[addr] = regs[b1]
				m.st.Touch(addr)
				steps += 2
				regs[d1b] = w1
				m.ctr.disp[k2]++
				addr = regs[a2].Val() + uimm2
				if addr >= m.limit[ri2] {
					return m.tRaise(pc2, kOver2, throw, throwBack2, tSkipStSt), steps + 1
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc2, addr), steps
				}
				mem[addr] = regs[b2]
				m.st.Touch(addr)
				steps += 2
				addr = regs[a2b].Val() + uimm2b
				if addr >= m.limit[ri2b] {
					return m.tRaise(pc2+1, kOver2b, throw, throwBack2, tSkipNone), steps
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc2+1, addr), steps
				}
				mem[addr] = regs[d2b]
				m.st.Touch(addr)
				m.ctr.disp[k3]++
				addr = regs[a3].Val() + uimm3
				if addr >= m.limit[ri3] {
					return m.tRaise(pc3, kOver3, throw, throwBack3, tSkipStSt), steps + 1
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc3, addr), steps
				}
				mem[addr] = regs[b3]
				m.st.Touch(addr)
				steps += 2
				addr = regs[a3b].Val() + uimm3b
				if addr >= m.limit[ri3b] {
					return m.tRaise(pc3+1, kOver3b, throw, throwBack3, tSkipNone), steps
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc3+1, addr), steps
				}
				mem[addr] = regs[d3b]
				m.st.Touch(addr)
				return fall3, steps
			}
		}

	case exec.XSt:
		// Store, conditional move, double store.
		if k2 == exec.XFCMovR && k3 == exec.XFStSt {
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+5 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k1]++
				addr := regs[a1].Val() + uimm1
				if addr >= m.limit[ri1] {
					return m.tRaise(pc1, kOver1, throw, throwBack1, tSkipNone), steps
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc1, addr), steps
				}
				mem[addr] = regs[b1]
				m.st.Touch(addr)
				steps++
				m.ctr.disp[k2]++
				if !exec.CmpW(regs[a2], regs[b2], cond2) {
					steps++
					m.ctr.cmovMoves++
					regs[d2b] = regs[a2b]
				}
				m.ctr.disp[k3]++
				addr = regs[a3].Val() + uimm3
				if addr >= m.limit[ri3] {
					return m.tRaise(pc3, kOver3, throw, throwBack3, tSkipStSt), steps + 1
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc3, addr), steps
				}
				mem[addr] = regs[b3]
				m.st.Touch(addr)
				steps += 2
				addr = regs[a3b].Val() + uimm3b
				if addr >= m.limit[ri3b] {
					return m.tRaise(pc3+1, kOver3b, throw, throwBack3, tSkipNone), steps
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc3+1, addr), steps
				}
				mem[addr] = regs[d3b]
				m.st.Touch(addr)
				return fall3, steps
			}
		}

	case exec.XFMovISt:
		// Move-imm + store, double store, store — the chain's tail before
		// the closing move/jump pair.
		if k2 == exec.XFStSt && k3 == exec.XSt {
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+5 > tmax {
					return gen1, steps
				}
				m.ctr.disp[k1]++
				regs[d1] = w1
				steps += 2
				addr := regs[a1b].Val() + uimm1b
				if addr >= m.limit[ri1b] {
					return m.tRaise(pc1+1, kOver1b, throw, throwBack1, tSkipNone), steps
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc1+1, addr), steps
				}
				mem[addr] = regs[d1b]
				m.st.Touch(addr)
				m.ctr.disp[k2]++
				addr = regs[a2].Val() + uimm2
				if addr >= m.limit[ri2] {
					return m.tRaise(pc2, kOver2, throw, throwBack2, tSkipStSt), steps + 1
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc2, addr), steps
				}
				mem[addr] = regs[b2]
				m.st.Touch(addr)
				steps += 2
				addr = regs[a2b].Val() + uimm2b
				if addr >= m.limit[ri2b] {
					return m.tRaise(pc2+1, kOver2b, throw, throwBack2, tSkipNone), steps
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc2+1, addr), steps
				}
				mem[addr] = regs[d2b]
				m.st.Touch(addr)
				steps++
				m.ctr.disp[k3]++
				addr = regs[a3].Val() + uimm3
				if addr >= m.limit[ri3] {
					return m.tRaise(pc3, kOver3, throw, throwBack3, tSkipNone), steps
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc3, addr), steps
				}
				mem[addr] = regs[b3]
				m.st.Touch(addr)
				return fall3, steps
			}
		}
	}
	return nil
}
