package emu

import (
	"symbol/internal/exec"
	"symbol/internal/word"
)

// The superblock pass: a third combining pass that collapses the recurring
// multi-op code templates the compiler emits — a dereference-loop step, a
// clause-continuation tail, the structure-copy store chain, and the
// first-argument indexing head — into single closures of up to fifteen
// constituents. Two extensions over the pair/triple passes, both still
// within the same parity rules (verbatim constituent accounting, gens[i]
// delegation when the remaining budget cannot cover the worst-case width,
// overlapping installation with non-overlapping execution):
//
//   - a superblock may follow ONE control transfer mid-block: either an
//     unconditional jump (back-edge poll run in place, exactly where the
//     per-op chain polls) or, for the indexing head, a compare-branch
//     whose taken side continues at the branch target while the not-taken
//     side exits cold to the untouched fall-through slot;
//   - a superblock ending in a backward jump may re-inline its own first
//     ops once (loop unrolling by one iteration): the re-executed branch
//     exits to the loop's own slots, so longer iteration counts simply
//     re-enter the chain.

// superFn returns a superblock closure for the run starting at op i of s,
// or nil when no template matches.
// dbgSuperMask enables superblock templates individually (one bit per
// category, S1=bit0 … S3L=bit18). All bits are set in normal builds; the
// mask exists so a parity failure can be bisected to a single template by
// rebuilding with a narrowed value.
const dbgSuperMask uint = ^uint(0)

func superFn(s *exec.Stream, tops, gens []top, stop *top, i int) tfn {
	n := len(s.Ops)
	ops := s.Ops
	var throw *top
	if s.Throw >= 0 {
		throw = &tops[s.Throw]
	}
	_ = throw
	gen1 := &gens[i]

	at := func(j int) exec.XCode {
		if j < 0 || j >= n {
			return exec.XHalt
		}
		return ops[j].Code
	}
	fallTop := func(j int) *top {
		if j+1 < n {
			return &tops[j+1]
		}
		return stop
	}
	targetOf := func(j int) (*top, bool) {
		t := int(ops[j].Target)
		if t >= 0 && t < n {
			return &tops[t], t <= j
		}
		return stop, false
	}
	throwBack := func(j int) bool { return s.Throw >= 0 && int(s.Throw) <= j }
	isBrTag := func(c exec.XCode) bool { return c == exec.XBrTagEq || c == exec.XBrTagNe }
	isMov := func(c exec.XCode) bool { return c == exec.XMov || c == exec.XMovCP }
	isLd := func(c exec.XCode) bool { return c == exec.XLd || c == exec.XLdUndo }
	isFLdBr := func(c exec.XCode) bool { return c == exec.XFLdBrCmpEqR || c == exec.XFLdBrCmpNeR }
	_, _, _, _ = isBrTag, isMov, isLd, isFLdBr

	// Rung-shape helpers for the ladder traces: a "six" rung is the S6
	// dereference step (tag branch, load+compare, move+jump back), a
	// "seven" rung prepends an escape branch and a move. A ladder chains
	// rungs whose hot exits land on the next rung's head; the trace runs
	// the whole chain in one dispatch with every cold exit exact.
	sixAt := func(t int) int { // returns continuation slot, or -1
		if t < 0 || t+2 >= n || !isBrTag(at(t)) || !isFLdBr(at(t+1)) ||
			at(t+2) != exec.XFMovJmp {
			return -1
		}
		c := int(ops[t].Target)
		if c <= t+2 || c >= n || int(ops[t+1].Target) != c || int(ops[t+2].Target) != t {
			return -1
		}
		return c
	}
	sevenAt := func(t int) int {
		if t < 0 || t+4 >= n || !isBrTag(at(t)) || !isMov(at(t+1)) ||
			!isBrTag(at(t+2)) || !isFLdBr(at(t+3)) || at(t+4) != exec.XFMovJmp {
			return -1
		}
		c := int(ops[t+2].Target)
		if c <= t+4 || c >= n || int(ops[t+3].Target) != c || int(ops[t+4].Target) != t+2 {
			return -1
		}
		e := int(ops[t].Target)
		if e < 0 || e >= n {
			return -1
		}
		return c
	}

	// S1 — indexing head: immediate compare (not taken), two loads, an
	// ordered compare-branch whose TAKEN side continues at the forward
	// target with four more loads and the computed jump. Not-taken exits
	// cold to the untouched fall-through slot.
	if dbgSuperMask&(1<<0) != 0 {
		if (at(i) == exec.XBrCmpEqI || at(i) == exec.XBrCmpNeI) &&
			at(i+1) == exec.XFLdLd && at(i+2) == exec.XBrCmpOrdR {
			t := int(ops[i+2].Target)
			if t > i+2 && t+3 < n && at(t) == exec.XFLdLd && at(t+1) == exec.XFLdLd &&
				isLd(at(t+2)) && at(t+3) == exec.XJmpR {
				op0, op1, op2 := &ops[i], &ops[i+1], &ops[i+2]
				op3, op4, op5, op6 := &ops[t], &ops[t+1], &ops[t+2], &ops[t+3]
				ne0 := op0.Code == exec.XBrCmpNeI
				tgt0, tback0 := targetOf(i)
				fall2 := fallTop(i + 2)
				xof := s.XOf
				selfx6 := t + 3
				d0, a0, b0 := uint8(op0.D), uint8(op0.A), uint8(op0.B)
				d0b, a0b := uint8(op0.D2), uint8(op0.A2)
				uimm0, uimm0b := uint64(op0.Imm), uint64(op0.Imm2)
				w0, tag0 := op0.W, op0.Tag
				ri0, ri0b := op0.Region, op0.Region2
				kOver0, kOver0b := overflowKind(ri0), overflowKind(ri0b)
				imm0, cond0 := op0.Imm, op0.Cond
				pc0, k0 := int(op0.PC), op0.Code
				_ = pc0
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d0, a0, b0, d0b, a0b, uimm0, uimm0b, w0, tag0, ri0, ri0b, kOver0, kOver0b, imm0, cond0
				d1, a1, b1 := uint8(op1.D), uint8(op1.A), uint8(op1.B)
				d1b, a1b := uint8(op1.D2), uint8(op1.A2)
				uimm1, uimm1b := uint64(op1.Imm), uint64(op1.Imm2)
				w1, tag1 := op1.W, op1.Tag
				ri1, ri1b := op1.Region, op1.Region2
				kOver1, kOver1b := overflowKind(ri1), overflowKind(ri1b)
				imm1, cond1 := op1.Imm, op1.Cond
				pc1, k1 := int(op1.PC), op1.Code
				_ = pc1
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d1, a1, b1, d1b, a1b, uimm1, uimm1b, w1, tag1, ri1, ri1b, kOver1, kOver1b, imm1, cond1
				d2, a2, b2 := uint8(op2.D), uint8(op2.A), uint8(op2.B)
				d2b, a2b := uint8(op2.D2), uint8(op2.A2)
				uimm2, uimm2b := uint64(op2.Imm), uint64(op2.Imm2)
				w2, tag2 := op2.W, op2.Tag
				ri2, ri2b := op2.Region, op2.Region2
				kOver2, kOver2b := overflowKind(ri2), overflowKind(ri2b)
				imm2, cond2 := op2.Imm, op2.Cond
				pc2, k2 := int(op2.PC), op2.Code
				_ = pc2
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d2, a2, b2, d2b, a2b, uimm2, uimm2b, w2, tag2, ri2, ri2b, kOver2, kOver2b, imm2, cond2
				d3, a3, b3 := uint8(op3.D), uint8(op3.A), uint8(op3.B)
				d3b, a3b := uint8(op3.D2), uint8(op3.A2)
				uimm3, uimm3b := uint64(op3.Imm), uint64(op3.Imm2)
				w3, tag3 := op3.W, op3.Tag
				ri3, ri3b := op3.Region, op3.Region2
				kOver3, kOver3b := overflowKind(ri3), overflowKind(ri3b)
				imm3, cond3 := op3.Imm, op3.Cond
				pc3, k3 := int(op3.PC), op3.Code
				_ = pc3
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d3, a3, b3, d3b, a3b, uimm3, uimm3b, w3, tag3, ri3, ri3b, kOver3, kOver3b, imm3, cond3
				d4, a4, b4 := uint8(op4.D), uint8(op4.A), uint8(op4.B)
				d4b, a4b := uint8(op4.D2), uint8(op4.A2)
				uimm4, uimm4b := uint64(op4.Imm), uint64(op4.Imm2)
				w4, tag4 := op4.W, op4.Tag
				ri4, ri4b := op4.Region, op4.Region2
				kOver4, kOver4b := overflowKind(ri4), overflowKind(ri4b)
				imm4, cond4 := op4.Imm, op4.Cond
				pc4, k4 := int(op4.PC), op4.Code
				_ = pc4
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d4, a4, b4, d4b, a4b, uimm4, uimm4b, w4, tag4, ri4, ri4b, kOver4, kOver4b, imm4, cond4
				d5, a5, b5 := uint8(op5.D), uint8(op5.A), uint8(op5.B)
				d5b, a5b := uint8(op5.D2), uint8(op5.A2)
				uimm5, uimm5b := uint64(op5.Imm), uint64(op5.Imm2)
				w5, tag5 := op5.W, op5.Tag
				ri5, ri5b := op5.Region, op5.Region2
				kOver5, kOver5b := overflowKind(ri5), overflowKind(ri5b)
				imm5, cond5 := op5.Imm, op5.Cond
				pc5, k5 := int(op5.PC), op5.Code
				_ = pc5
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d5, a5, b5, d5b, a5b, uimm5, uimm5b, w5, tag5, ri5, ri5b, kOver5, kOver5b, imm5, cond5
				d6, a6, b6 := uint8(op6.D), uint8(op6.A), uint8(op6.B)
				d6b, a6b := uint8(op6.D2), uint8(op6.A2)
				uimm6, uimm6b := uint64(op6.Imm), uint64(op6.Imm2)
				w6, tag6 := op6.W, op6.Tag
				ri6, ri6b := op6.Region, op6.Region2
				kOver6, kOver6b := overflowKind(ri6), overflowKind(ri6b)
				imm6, cond6 := op6.Imm, op6.Cond
				pc6, k6 := int(op6.PC), op6.Code
				_ = pc6
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d6, a6, b6, d6b, a6b, uimm6, uimm6b, w6, tag6, ri6, ri6b, kOver6, kOver6b, imm6, cond6
				return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
					if steps+10 > tmax {
						return gen1, steps
					}
					steps++
					m.ctr.disp[k0]++
					if (regs[a0] == w0) == !ne0 {
						if tback0 {
							return m.tEdge(pc0, tgt0), steps
						}
						return tgt0, steps
					}
					m.ctr.disp[k1]++
					addr := regs[a1].Val() + uimm1
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pc1, addr), steps
					}
					regs[d1] = mem[addr]
					steps += 2
					addr = regs[a1b].Val() + uimm1b
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pc1+1, addr), steps
					}
					regs[d1b] = mem[addr]
					steps++
					m.ctr.disp[k2]++
					if !exec.OrdCmp(regs[a2].Int(), regs[b2].Int(), cond2) {
						return fall2, steps
					}
					m.ctr.disp[k3]++
					addr = regs[a3].Val() + uimm3
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pc3, addr), steps
					}
					regs[d3] = mem[addr]
					steps += 2
					addr = regs[a3b].Val() + uimm3b
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pc3+1, addr), steps
					}
					regs[d3b] = mem[addr]
					m.ctr.disp[k4]++
					addr = regs[a4].Val() + uimm4
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pc4, addr), steps
					}
					regs[d4] = mem[addr]
					steps += 2
					addr = regs[a4b].Val() + uimm4b
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pc4+1, addr), steps
					}
					regs[d4b] = mem[addr]
					steps++
					m.ctr.disp[k5]++
					addr = regs[a5].Val() + uimm5
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pc5, addr), steps
					}
					regs[d5] = mem[addr]
					steps++
					m.ctr.disp[k6]++
					tv := int(regs[a6].Val())
					if tv < 0 || tv >= len(xof) || xof[tv] < 0 {
						return m.tFail(tv, "pc out of range"), steps
					}
					nx := int(xof[tv])
					if nx <= selfx6 {
						return m.tEdge(pc6, &tops[nx]), steps
					}
					return &tops[nx], steps
				}
			}
		}
	}

	// S17 — loop close into the indexing head: a not-taken tag branch, an
	// add/subtract, and a register compare whose taken side is the S1
	// indexing head; the back-edge poll runs in place, then the head's
	// compare, six loads, and computed jump all execute in this dispatch.
	if dbgSuperMask&(1<<16) != 0 {
		if isBrTag(at(i)) && (at(i+1) == exec.XAddR || at(i+1) == exec.XSubR) &&
			at(i+2) == exec.XBrCmpNeR {
			t := int(ops[i+2].Target)
			t2 := -1
			if t >= 0 && t+2 < n && (at(t) == exec.XBrCmpEqI || at(t) == exec.XBrCmpNeI) &&
				at(t+1) == exec.XFLdLd && at(t+2) == exec.XBrCmpOrdR {
				tt := int(ops[t+2].Target)
				if tt > t+2 && tt+3 < n && at(tt) == exec.XFLdLd && at(tt+1) == exec.XFLdLd &&
					isLd(at(tt+2)) && at(tt+3) == exec.XJmpR {
					t2 = tt
				}
			}
			if t2 >= 0 {
				op0, op1, op2 := &ops[i], &ops[i+1], &ops[i+2]
				ne0 := op0.Code == exec.XBrTagNe
				ne2 := op2.Code == exec.XBrCmpNeR
				sub1 := op1.Code == exec.XSubR
				tgt0, tback0 := targetOf(i)
				fall2 := fallTop(i + 2)
				jback := t <= i+2
				d0, a0, b0 := uint8(op0.D), uint8(op0.A), uint8(op0.B)
				d0b, a0b := uint8(op0.D2), uint8(op0.A2)
				uimm0, uimm0b := uint64(op0.Imm), uint64(op0.Imm2)
				w0, tag0 := op0.W, op0.Tag
				imm0, cond0 := op0.Imm, op0.Cond
				pc0, k0 := int(op0.PC), op0.Code
				_ = pc0
				_, _, _, _, _, _, _, _, _, _, _ = d0, a0, b0, d0b, a0b, uimm0, uimm0b, w0, tag0, imm0, cond0
				d1, a1, b1 := uint8(op1.D), uint8(op1.A), uint8(op1.B)
				d1b, a1b := uint8(op1.D2), uint8(op1.A2)
				uimm1, uimm1b := uint64(op1.Imm), uint64(op1.Imm2)
				w1, tag1 := op1.W, op1.Tag
				imm1, cond1 := op1.Imm, op1.Cond
				pc1, k1 := int(op1.PC), op1.Code
				_ = pc1
				_, _, _, _, _, _, _, _, _, _, _ = d1, a1, b1, d1b, a1b, uimm1, uimm1b, w1, tag1, imm1, cond1
				d2, a2, b2 := uint8(op2.D), uint8(op2.A), uint8(op2.B)
				d2b, a2b := uint8(op2.D2), uint8(op2.A2)
				uimm2, uimm2b := uint64(op2.Imm), uint64(op2.Imm2)
				w2, tag2 := op2.W, op2.Tag
				imm2, cond2 := op2.Imm, op2.Cond
				pc2, k2 := int(op2.PC), op2.Code
				_ = pc2
				_, _, _, _, _, _, _, _, _, _, _ = d2, a2, b2, d2b, a2b, uimm2, uimm2b, w2, tag2, imm2, cond2
				dh0, ah0, bh0 := uint8((&ops[t]).D), uint8((&ops[t]).A), uint8((&ops[t]).B)
				dh0b, ah0b := uint8((&ops[t]).D2), uint8((&ops[t]).A2)
				uimmh0, uimmh0b := uint64((&ops[t]).Imm), uint64((&ops[t]).Imm2)
				wh0, tagh0 := (&ops[t]).W, (&ops[t]).Tag
				immh0, condh0 := (&ops[t]).Imm, (&ops[t]).Cond
				pch0, kh0 := int((&ops[t]).PC), (&ops[t]).Code
				_ = pch0
				_, _, _, _, _, _, _, _, _, _, _ = dh0, ah0, bh0, dh0b, ah0b, uimmh0, uimmh0b, wh0, tagh0, immh0, condh0
				dh1, ah1, bh1 := uint8((&ops[t+1]).D), uint8((&ops[t+1]).A), uint8((&ops[t+1]).B)
				dh1b, ah1b := uint8((&ops[t+1]).D2), uint8((&ops[t+1]).A2)
				uimmh1, uimmh1b := uint64((&ops[t+1]).Imm), uint64((&ops[t+1]).Imm2)
				wh1, tagh1 := (&ops[t+1]).W, (&ops[t+1]).Tag
				immh1, condh1 := (&ops[t+1]).Imm, (&ops[t+1]).Cond
				pch1, kh1 := int((&ops[t+1]).PC), (&ops[t+1]).Code
				_ = pch1
				_, _, _, _, _, _, _, _, _, _, _ = dh1, ah1, bh1, dh1b, ah1b, uimmh1, uimmh1b, wh1, tagh1, immh1, condh1
				dh2, ah2, bh2 := uint8((&ops[t+2]).D), uint8((&ops[t+2]).A), uint8((&ops[t+2]).B)
				dh2b, ah2b := uint8((&ops[t+2]).D2), uint8((&ops[t+2]).A2)
				uimmh2, uimmh2b := uint64((&ops[t+2]).Imm), uint64((&ops[t+2]).Imm2)
				wh2, tagh2 := (&ops[t+2]).W, (&ops[t+2]).Tag
				immh2, condh2 := (&ops[t+2]).Imm, (&ops[t+2]).Cond
				pch2, kh2 := int((&ops[t+2]).PC), (&ops[t+2]).Code
				_ = pch2
				_, _, _, _, _, _, _, _, _, _, _ = dh2, ah2, bh2, dh2b, ah2b, uimmh2, uimmh2b, wh2, tagh2, immh2, condh2
				dh3, ah3, bh3 := uint8((&ops[t2]).D), uint8((&ops[t2]).A), uint8((&ops[t2]).B)
				dh3b, ah3b := uint8((&ops[t2]).D2), uint8((&ops[t2]).A2)
				uimmh3, uimmh3b := uint64((&ops[t2]).Imm), uint64((&ops[t2]).Imm2)
				wh3, tagh3 := (&ops[t2]).W, (&ops[t2]).Tag
				immh3, condh3 := (&ops[t2]).Imm, (&ops[t2]).Cond
				pch3, kh3 := int((&ops[t2]).PC), (&ops[t2]).Code
				_ = pch3
				_, _, _, _, _, _, _, _, _, _, _ = dh3, ah3, bh3, dh3b, ah3b, uimmh3, uimmh3b, wh3, tagh3, immh3, condh3
				dh4, ah4, bh4 := uint8((&ops[t2+1]).D), uint8((&ops[t2+1]).A), uint8((&ops[t2+1]).B)
				dh4b, ah4b := uint8((&ops[t2+1]).D2), uint8((&ops[t2+1]).A2)
				uimmh4, uimmh4b := uint64((&ops[t2+1]).Imm), uint64((&ops[t2+1]).Imm2)
				wh4, tagh4 := (&ops[t2+1]).W, (&ops[t2+1]).Tag
				immh4, condh4 := (&ops[t2+1]).Imm, (&ops[t2+1]).Cond
				pch4, kh4 := int((&ops[t2+1]).PC), (&ops[t2+1]).Code
				_ = pch4
				_, _, _, _, _, _, _, _, _, _, _ = dh4, ah4, bh4, dh4b, ah4b, uimmh4, uimmh4b, wh4, tagh4, immh4, condh4
				dh5, ah5, bh5 := uint8((&ops[t2+2]).D), uint8((&ops[t2+2]).A), uint8((&ops[t2+2]).B)
				dh5b, ah5b := uint8((&ops[t2+2]).D2), uint8((&ops[t2+2]).A2)
				uimmh5, uimmh5b := uint64((&ops[t2+2]).Imm), uint64((&ops[t2+2]).Imm2)
				wh5, tagh5 := (&ops[t2+2]).W, (&ops[t2+2]).Tag
				immh5, condh5 := (&ops[t2+2]).Imm, (&ops[t2+2]).Cond
				pch5, kh5 := int((&ops[t2+2]).PC), (&ops[t2+2]).Code
				_ = pch5
				_, _, _, _, _, _, _, _, _, _, _ = dh5, ah5, bh5, dh5b, ah5b, uimmh5, uimmh5b, wh5, tagh5, immh5, condh5
				dh6, ah6, bh6 := uint8((&ops[t2+3]).D), uint8((&ops[t2+3]).A), uint8((&ops[t2+3]).B)
				dh6b, ah6b := uint8((&ops[t2+3]).D2), uint8((&ops[t2+3]).A2)
				uimmh6, uimmh6b := uint64((&ops[t2+3]).Imm), uint64((&ops[t2+3]).Imm2)
				wh6, tagh6 := (&ops[t2+3]).W, (&ops[t2+3]).Tag
				immh6, condh6 := (&ops[t2+3]).Imm, (&ops[t2+3]).Cond
				pch6, kh6 := int((&ops[t2+3]).PC), (&ops[t2+3]).Code
				_ = pch6
				_, _, _, _, _, _, _, _, _, _, _ = dh6, ah6, bh6, dh6b, ah6b, uimmh6, uimmh6b, wh6, tagh6, immh6, condh6
				neh0 := ops[t].Code == exec.XBrCmpNeI
				tgth0, tbackh0 := targetOf(t)
				fallh2 := fallTop(t + 2)
				xof := s.XOf
				selfxh6 := t2 + 3
				return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
					if steps+13 > tmax {
						return gen1, steps
					}
					var addr uint64
					_ = addr
					steps++
					m.ctr.disp[k0]++
					if (regs[a0].Tag() == tag0) == !ne0 {
						if tback0 {
							return m.tEdge(pc0, tgt0), steps
						}
						return tgt0, steps
					}
					steps++
					m.ctr.disp[k1]++
					av := regs[a1]
					if sub1 {
						regs[d1] = word.Make(av.Tag(), uint64(av.Int()-regs[b1].Int()))
					} else {
						regs[d1] = word.Make(av.Tag(), uint64(av.Int()+regs[b1].Int()))
					}
					steps++
					m.ctr.disp[k2]++
					if (regs[a2] == regs[b2]) == ne2 {
						return fall2, steps
					}
					if jback {
						m.tpoll--
						if m.tpoll <= 0 {
							m.tpoll = m.pollEvery()
							if err := m.pollCheck(pc2); err != nil {
								m.terr = err
								return nil, steps
							}
						}
					}
					steps++
					m.ctr.disp[kh0]++
					if (regs[ah0] == wh0) == !neh0 {
						if tbackh0 {
							return m.tEdge(pch0, tgth0), steps
						}
						return tgth0, steps
					}
					m.ctr.disp[kh1]++
					addr = regs[ah1].Val() + uimmh1
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pch1, addr), steps
					}
					regs[dh1] = mem[addr]
					steps += 2
					addr = regs[ah1b].Val() + uimmh1b
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pch1+1, addr), steps
					}
					regs[dh1b] = mem[addr]
					steps++
					m.ctr.disp[kh2]++
					if !exec.OrdCmp(regs[ah2].Int(), regs[bh2].Int(), condh2) {
						return fallh2, steps
					}
					m.ctr.disp[kh3]++
					addr = regs[ah3].Val() + uimmh3
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pch3, addr), steps
					}
					regs[dh3] = mem[addr]
					steps += 2
					addr = regs[ah3b].Val() + uimmh3b
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pch3+1, addr), steps
					}
					regs[dh3b] = mem[addr]
					m.ctr.disp[kh4]++
					addr = regs[ah4].Val() + uimmh4
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pch4, addr), steps
					}
					regs[dh4] = mem[addr]
					steps += 2
					addr = regs[ah4b].Val() + uimmh4b
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pch4+1, addr), steps
					}
					regs[dh4b] = mem[addr]
					steps++
					m.ctr.disp[kh5]++
					addr = regs[ah5].Val() + uimmh5
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pch5, addr), steps
					}
					regs[dh5] = mem[addr]
					steps++
					m.ctr.disp[kh6]++
					tv := int(regs[ah6].Val())
					if tv < 0 || tv >= len(xof) || xof[tv] < 0 {
						return m.tFail(tv, "pc out of range"), steps
					}
					nx := int(xof[tv])
					if nx <= selfxh6 {
						return m.tEdge(pch6, &tops[nx]), steps
					}
					return &tops[nx], steps
				}
			}
		}

	}

	// S2L — continuation tail flowing into a deref ladder: the S2 shape
	// whose landing-slot successor heads a six/seven/seven ladder; the
	// whole run executes in one dispatch.
	if dbgSuperMask&(1<<17) != 0 {
		if isBrTag(at(i)) && isBrTag(at(i+1)) && at(i+2) == exec.XFLdLd &&
			at(i+3) == exec.XFMovMov && at(i+4) == exec.XJmp {
			t := int(ops[i+4].Target)
			if t >= 0 && t < n && isMov(at(t)) && t != i+4 {
				if c0 := sixAt(t + 1); c0 >= 0 {
					if c1 := sevenAt(c0); c1 >= 0 {
						if c2 := sevenAt(c1); c2 >= 0 {
							op0, op1, op2, op3, op4, op5 := &ops[i], &ops[i+1], &ops[i+2], &ops[i+3], &ops[i+4], &ops[t]
							ne0 := op0.Code == exec.XBrTagNe
							ne1 := op1.Code == exec.XBrTagNe
							tgt0, tback0 := targetOf(i)
							tgt1, tback1 := targetOf(i + 1)
							jback := t <= i+4
							exit2 := &tops[c2]
							exitA := &tops[t+2]
							exitB := &tops[c0+3]
							exitC := &tops[c1+3]
							d0, a0, b0 := uint8(op0.D), uint8(op0.A), uint8(op0.B)
							d0b, a0b := uint8(op0.D2), uint8(op0.A2)
							uimm0, uimm0b := uint64(op0.Imm), uint64(op0.Imm2)
							w0, tag0 := op0.W, op0.Tag
							imm0, cond0 := op0.Imm, op0.Cond
							pc0, k0 := int(op0.PC), op0.Code
							_ = pc0
							_, _, _, _, _, _, _, _, _, _, _ = d0, a0, b0, d0b, a0b, uimm0, uimm0b, w0, tag0, imm0, cond0
							d1, a1, b1 := uint8(op1.D), uint8(op1.A), uint8(op1.B)
							d1b, a1b := uint8(op1.D2), uint8(op1.A2)
							uimm1, uimm1b := uint64(op1.Imm), uint64(op1.Imm2)
							w1, tag1 := op1.W, op1.Tag
							imm1, cond1 := op1.Imm, op1.Cond
							pc1, k1 := int(op1.PC), op1.Code
							_ = pc1
							_, _, _, _, _, _, _, _, _, _, _ = d1, a1, b1, d1b, a1b, uimm1, uimm1b, w1, tag1, imm1, cond1
							d2, a2, b2 := uint8(op2.D), uint8(op2.A), uint8(op2.B)
							d2b, a2b := uint8(op2.D2), uint8(op2.A2)
							uimm2, uimm2b := uint64(op2.Imm), uint64(op2.Imm2)
							w2, tag2 := op2.W, op2.Tag
							imm2, cond2 := op2.Imm, op2.Cond
							pc2, k2 := int(op2.PC), op2.Code
							_ = pc2
							_, _, _, _, _, _, _, _, _, _, _ = d2, a2, b2, d2b, a2b, uimm2, uimm2b, w2, tag2, imm2, cond2
							d3, a3, b3 := uint8(op3.D), uint8(op3.A), uint8(op3.B)
							d3b, a3b := uint8(op3.D2), uint8(op3.A2)
							uimm3, uimm3b := uint64(op3.Imm), uint64(op3.Imm2)
							w3, tag3 := op3.W, op3.Tag
							imm3, cond3 := op3.Imm, op3.Cond
							pc3, k3 := int(op3.PC), op3.Code
							_ = pc3
							_, _, _, _, _, _, _, _, _, _, _ = d3, a3, b3, d3b, a3b, uimm3, uimm3b, w3, tag3, imm3, cond3
							d4, a4, b4 := uint8(op4.D), uint8(op4.A), uint8(op4.B)
							d4b, a4b := uint8(op4.D2), uint8(op4.A2)
							uimm4, uimm4b := uint64(op4.Imm), uint64(op4.Imm2)
							w4, tag4 := op4.W, op4.Tag
							imm4, cond4 := op4.Imm, op4.Cond
							pc4, k4 := int(op4.PC), op4.Code
							_ = pc4
							_, _, _, _, _, _, _, _, _, _, _ = d4, a4, b4, d4b, a4b, uimm4, uimm4b, w4, tag4, imm4, cond4
							d5, a5, b5 := uint8(op5.D), uint8(op5.A), uint8(op5.B)
							d5b, a5b := uint8(op5.D2), uint8(op5.A2)
							uimm5, uimm5b := uint64(op5.Imm), uint64(op5.Imm2)
							w5, tag5 := op5.W, op5.Tag
							imm5, cond5 := op5.Imm, op5.Cond
							pc5, k5 := int(op5.PC), op5.Code
							_ = pc5
							_, _, _, _, _, _, _, _, _, _, _ = d5, a5, b5, d5b, a5b, uimm5, uimm5b, w5, tag5, imm5, cond5
							dra0, ara0, bra0 := uint8((&ops[t+1+0]).D), uint8((&ops[t+1+0]).A), uint8((&ops[t+1+0]).B)
							dra0b, ara0b := uint8((&ops[t+1+0]).D2), uint8((&ops[t+1+0]).A2)
							uimmra0, uimmra0b := uint64((&ops[t+1+0]).Imm), uint64((&ops[t+1+0]).Imm2)
							wra0, tagra0 := (&ops[t+1+0]).W, (&ops[t+1+0]).Tag
							immra0, condra0 := (&ops[t+1+0]).Imm, (&ops[t+1+0]).Cond
							pcra0, kra0 := int((&ops[t+1+0]).PC), (&ops[t+1+0]).Code
							_ = pcra0
							_, _, _, _, _, _, _, _, _, _, _ = dra0, ara0, bra0, dra0b, ara0b, uimmra0, uimmra0b, wra0, tagra0, immra0, condra0
							dra1, ara1, bra1 := uint8((&ops[t+1+1]).D), uint8((&ops[t+1+1]).A), uint8((&ops[t+1+1]).B)
							dra1b, ara1b := uint8((&ops[t+1+1]).D2), uint8((&ops[t+1+1]).A2)
							uimmra1, uimmra1b := uint64((&ops[t+1+1]).Imm), uint64((&ops[t+1+1]).Imm2)
							wra1, tagra1 := (&ops[t+1+1]).W, (&ops[t+1+1]).Tag
							immra1, condra1 := (&ops[t+1+1]).Imm, (&ops[t+1+1]).Cond
							pcra1, kra1 := int((&ops[t+1+1]).PC), (&ops[t+1+1]).Code
							_ = pcra1
							_, _, _, _, _, _, _, _, _, _, _ = dra1, ara1, bra1, dra1b, ara1b, uimmra1, uimmra1b, wra1, tagra1, immra1, condra1
							dra2, ara2, bra2 := uint8((&ops[t+1+2]).D), uint8((&ops[t+1+2]).A), uint8((&ops[t+1+2]).B)
							dra2b, ara2b := uint8((&ops[t+1+2]).D2), uint8((&ops[t+1+2]).A2)
							uimmra2, uimmra2b := uint64((&ops[t+1+2]).Imm), uint64((&ops[t+1+2]).Imm2)
							wra2, tagra2 := (&ops[t+1+2]).W, (&ops[t+1+2]).Tag
							immra2, condra2 := (&ops[t+1+2]).Imm, (&ops[t+1+2]).Cond
							pcra2, kra2 := int((&ops[t+1+2]).PC), (&ops[t+1+2]).Code
							_ = pcra2
							_, _, _, _, _, _, _, _, _, _, _ = dra2, ara2, bra2, dra2b, ara2b, uimmra2, uimmra2b, wra2, tagra2, immra2, condra2
							nera0 := ops[t+1].Code == exec.XBrTagNe
							wantEqra1 := ops[t+1+1].Code == exec.XFLdBrCmpEqR
							drb0, arb0, brb0 := uint8((&ops[c0+0]).D), uint8((&ops[c0+0]).A), uint8((&ops[c0+0]).B)
							drb0b, arb0b := uint8((&ops[c0+0]).D2), uint8((&ops[c0+0]).A2)
							uimmrb0, uimmrb0b := uint64((&ops[c0+0]).Imm), uint64((&ops[c0+0]).Imm2)
							wrb0, tagrb0 := (&ops[c0+0]).W, (&ops[c0+0]).Tag
							immrb0, condrb0 := (&ops[c0+0]).Imm, (&ops[c0+0]).Cond
							pcrb0, krb0 := int((&ops[c0+0]).PC), (&ops[c0+0]).Code
							_ = pcrb0
							_, _, _, _, _, _, _, _, _, _, _ = drb0, arb0, brb0, drb0b, arb0b, uimmrb0, uimmrb0b, wrb0, tagrb0, immrb0, condrb0
							drb1, arb1, brb1 := uint8((&ops[c0+1]).D), uint8((&ops[c0+1]).A), uint8((&ops[c0+1]).B)
							drb1b, arb1b := uint8((&ops[c0+1]).D2), uint8((&ops[c0+1]).A2)
							uimmrb1, uimmrb1b := uint64((&ops[c0+1]).Imm), uint64((&ops[c0+1]).Imm2)
							wrb1, tagrb1 := (&ops[c0+1]).W, (&ops[c0+1]).Tag
							immrb1, condrb1 := (&ops[c0+1]).Imm, (&ops[c0+1]).Cond
							pcrb1, krb1 := int((&ops[c0+1]).PC), (&ops[c0+1]).Code
							_ = pcrb1
							_, _, _, _, _, _, _, _, _, _, _ = drb1, arb1, brb1, drb1b, arb1b, uimmrb1, uimmrb1b, wrb1, tagrb1, immrb1, condrb1
							drb2, arb2, brb2 := uint8((&ops[c0+2]).D), uint8((&ops[c0+2]).A), uint8((&ops[c0+2]).B)
							drb2b, arb2b := uint8((&ops[c0+2]).D2), uint8((&ops[c0+2]).A2)
							uimmrb2, uimmrb2b := uint64((&ops[c0+2]).Imm), uint64((&ops[c0+2]).Imm2)
							wrb2, tagrb2 := (&ops[c0+2]).W, (&ops[c0+2]).Tag
							immrb2, condrb2 := (&ops[c0+2]).Imm, (&ops[c0+2]).Cond
							pcrb2, krb2 := int((&ops[c0+2]).PC), (&ops[c0+2]).Code
							_ = pcrb2
							_, _, _, _, _, _, _, _, _, _, _ = drb2, arb2, brb2, drb2b, arb2b, uimmrb2, uimmrb2b, wrb2, tagrb2, immrb2, condrb2
							drb3, arb3, brb3 := uint8((&ops[c0+3]).D), uint8((&ops[c0+3]).A), uint8((&ops[c0+3]).B)
							drb3b, arb3b := uint8((&ops[c0+3]).D2), uint8((&ops[c0+3]).A2)
							uimmrb3, uimmrb3b := uint64((&ops[c0+3]).Imm), uint64((&ops[c0+3]).Imm2)
							wrb3, tagrb3 := (&ops[c0+3]).W, (&ops[c0+3]).Tag
							immrb3, condrb3 := (&ops[c0+3]).Imm, (&ops[c0+3]).Cond
							pcrb3, krb3 := int((&ops[c0+3]).PC), (&ops[c0+3]).Code
							_ = pcrb3
							_, _, _, _, _, _, _, _, _, _, _ = drb3, arb3, brb3, drb3b, arb3b, uimmrb3, uimmrb3b, wrb3, tagrb3, immrb3, condrb3
							drb4, arb4, brb4 := uint8((&ops[c0+4]).D), uint8((&ops[c0+4]).A), uint8((&ops[c0+4]).B)
							drb4b, arb4b := uint8((&ops[c0+4]).D2), uint8((&ops[c0+4]).A2)
							uimmrb4, uimmrb4b := uint64((&ops[c0+4]).Imm), uint64((&ops[c0+4]).Imm2)
							wrb4, tagrb4 := (&ops[c0+4]).W, (&ops[c0+4]).Tag
							immrb4, condrb4 := (&ops[c0+4]).Imm, (&ops[c0+4]).Cond
							pcrb4, krb4 := int((&ops[c0+4]).PC), (&ops[c0+4]).Code
							_ = pcrb4
							_, _, _, _, _, _, _, _, _, _, _ = drb4, arb4, brb4, drb4b, arb4b, uimmrb4, uimmrb4b, wrb4, tagrb4, immrb4, condrb4
							nerb0 := ops[c0].Code == exec.XBrTagNe
							tgtrb0, tbackrb0 := targetOf(c0)
							nerb2 := ops[c0+2].Code == exec.XBrTagNe
							wantEqrb3 := ops[c0+3].Code == exec.XFLdBrCmpEqR
							drc0, arc0, brc0 := uint8((&ops[c1+0]).D), uint8((&ops[c1+0]).A), uint8((&ops[c1+0]).B)
							drc0b, arc0b := uint8((&ops[c1+0]).D2), uint8((&ops[c1+0]).A2)
							uimmrc0, uimmrc0b := uint64((&ops[c1+0]).Imm), uint64((&ops[c1+0]).Imm2)
							wrc0, tagrc0 := (&ops[c1+0]).W, (&ops[c1+0]).Tag
							immrc0, condrc0 := (&ops[c1+0]).Imm, (&ops[c1+0]).Cond
							pcrc0, krc0 := int((&ops[c1+0]).PC), (&ops[c1+0]).Code
							_ = pcrc0
							_, _, _, _, _, _, _, _, _, _, _ = drc0, arc0, brc0, drc0b, arc0b, uimmrc0, uimmrc0b, wrc0, tagrc0, immrc0, condrc0
							drc1, arc1, brc1 := uint8((&ops[c1+1]).D), uint8((&ops[c1+1]).A), uint8((&ops[c1+1]).B)
							drc1b, arc1b := uint8((&ops[c1+1]).D2), uint8((&ops[c1+1]).A2)
							uimmrc1, uimmrc1b := uint64((&ops[c1+1]).Imm), uint64((&ops[c1+1]).Imm2)
							wrc1, tagrc1 := (&ops[c1+1]).W, (&ops[c1+1]).Tag
							immrc1, condrc1 := (&ops[c1+1]).Imm, (&ops[c1+1]).Cond
							pcrc1, krc1 := int((&ops[c1+1]).PC), (&ops[c1+1]).Code
							_ = pcrc1
							_, _, _, _, _, _, _, _, _, _, _ = drc1, arc1, brc1, drc1b, arc1b, uimmrc1, uimmrc1b, wrc1, tagrc1, immrc1, condrc1
							drc2, arc2, brc2 := uint8((&ops[c1+2]).D), uint8((&ops[c1+2]).A), uint8((&ops[c1+2]).B)
							drc2b, arc2b := uint8((&ops[c1+2]).D2), uint8((&ops[c1+2]).A2)
							uimmrc2, uimmrc2b := uint64((&ops[c1+2]).Imm), uint64((&ops[c1+2]).Imm2)
							wrc2, tagrc2 := (&ops[c1+2]).W, (&ops[c1+2]).Tag
							immrc2, condrc2 := (&ops[c1+2]).Imm, (&ops[c1+2]).Cond
							pcrc2, krc2 := int((&ops[c1+2]).PC), (&ops[c1+2]).Code
							_ = pcrc2
							_, _, _, _, _, _, _, _, _, _, _ = drc2, arc2, brc2, drc2b, arc2b, uimmrc2, uimmrc2b, wrc2, tagrc2, immrc2, condrc2
							drc3, arc3, brc3 := uint8((&ops[c1+3]).D), uint8((&ops[c1+3]).A), uint8((&ops[c1+3]).B)
							drc3b, arc3b := uint8((&ops[c1+3]).D2), uint8((&ops[c1+3]).A2)
							uimmrc3, uimmrc3b := uint64((&ops[c1+3]).Imm), uint64((&ops[c1+3]).Imm2)
							wrc3, tagrc3 := (&ops[c1+3]).W, (&ops[c1+3]).Tag
							immrc3, condrc3 := (&ops[c1+3]).Imm, (&ops[c1+3]).Cond
							pcrc3, krc3 := int((&ops[c1+3]).PC), (&ops[c1+3]).Code
							_ = pcrc3
							_, _, _, _, _, _, _, _, _, _, _ = drc3, arc3, brc3, drc3b, arc3b, uimmrc3, uimmrc3b, wrc3, tagrc3, immrc3, condrc3
							drc4, arc4, brc4 := uint8((&ops[c1+4]).D), uint8((&ops[c1+4]).A), uint8((&ops[c1+4]).B)
							drc4b, arc4b := uint8((&ops[c1+4]).D2), uint8((&ops[c1+4]).A2)
							uimmrc4, uimmrc4b := uint64((&ops[c1+4]).Imm), uint64((&ops[c1+4]).Imm2)
							wrc4, tagrc4 := (&ops[c1+4]).W, (&ops[c1+4]).Tag
							immrc4, condrc4 := (&ops[c1+4]).Imm, (&ops[c1+4]).Cond
							pcrc4, krc4 := int((&ops[c1+4]).PC), (&ops[c1+4]).Code
							_ = pcrc4
							_, _, _, _, _, _, _, _, _, _, _ = drc4, arc4, brc4, drc4b, arc4b, uimmrc4, uimmrc4b, wrc4, tagrc4, immrc4, condrc4
							nerc0 := ops[c1].Code == exec.XBrTagNe
							tgtrc0, tbackrc0 := targetOf(c1)
							nerc2 := ops[c1+2].Code == exec.XBrTagNe
							wantEqrc3 := ops[c1+3].Code == exec.XFLdBrCmpEqR
							return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
								if steps+30 > tmax {
									return gen1, steps
								}
								var addr uint64
								steps++
								m.ctr.disp[k0]++
								if (regs[a0].Tag() == tag0) == !ne0 {
									if tback0 {
										return m.tEdge(pc0, tgt0), steps
									}
									return tgt0, steps
								}
								steps++
								m.ctr.disp[k1]++
								if (regs[a1].Tag() == tag1) == !ne1 {
									if tback1 {
										return m.tEdge(pc1, tgt1), steps
									}
									return tgt1, steps
								}
								m.ctr.disp[k2]++
								addr = regs[a2].Val() + uimm2
								if addr >= uint64(len(mem)) {
									return m.tLoadErr(pc2, addr), steps
								}
								regs[d2] = mem[addr]
								steps += 2
								addr = regs[a2b].Val() + uimm2b
								if addr >= uint64(len(mem)) {
									return m.tLoadErr(pc2+1, addr), steps
								}
								regs[d2b] = mem[addr]
								m.ctr.disp[k3]++
								regs[d3] = regs[a3]
								steps += 2
								regs[d3b] = regs[a3b]
								steps++
								m.ctr.disp[k4]++
								if jback {
									m.tpoll--
									if m.tpoll <= 0 {
										m.tpoll = m.pollEvery()
										if err := m.pollCheck(pc4); err != nil {
											m.terr = err
											return nil, steps
										}
									}
								}
								steps++
								m.ctr.disp[k5]++
								regs[d5] = regs[a5]
								steps++
								m.ctr.disp[kra0]++
								if (regs[ara0].Tag() == tagra0) == !nera0 {
									goto tladA
								}
								m.ctr.disp[kra1]++
								addr = regs[ara1].Val() + uimmra1
								if addr >= uint64(len(mem)) {
									return m.tLoadErr(pcra1, addr), steps
								}
								regs[dra1] = mem[addr]
								steps += 2
								if (regs[dra1b] == regs[ara1b]) == wantEqra1 {
									goto tladA
								}
								m.ctr.disp[kra2]++
								regs[dra2] = regs[ara2]
								steps += 2
								m.tpoll--
								if m.tpoll <= 0 {
									m.tpoll = m.pollEvery()
									if err := m.pollCheck(pcra2); err != nil {
										m.terr = err
										return nil, steps
									}
								}
								steps++
								m.ctr.disp[kra0]++
								if (regs[ara0].Tag() == tagra0) == !nera0 {
									goto tladA
								}
								return exitA, steps
							tladA:
								steps++
								m.ctr.disp[krb0]++
								if (regs[arb0].Tag() == tagrb0) == !nerb0 {
									if tbackrb0 {
										return m.tEdge(pcrb0, tgtrb0), steps
									}
									return tgtrb0, steps
								}
								steps++
								m.ctr.disp[krb1]++
								regs[drb1] = regs[arb1]
								steps++
								m.ctr.disp[krb2]++
								if (regs[arb2].Tag() == tagrb2) == !nerb2 {
									goto tladB
								}
								m.ctr.disp[krb3]++
								addr = regs[arb3].Val() + uimmrb3
								if addr >= uint64(len(mem)) {
									return m.tLoadErr(pcrb3, addr), steps
								}
								regs[drb3] = mem[addr]
								steps += 2
								if (regs[drb3b] == regs[arb3b]) == wantEqrb3 {
									goto tladB
								}
								m.ctr.disp[krb4]++
								regs[drb4] = regs[arb4]
								steps += 2
								m.tpoll--
								if m.tpoll <= 0 {
									m.tpoll = m.pollEvery()
									if err := m.pollCheck(pcrb4); err != nil {
										m.terr = err
										return nil, steps
									}
								}
								steps++
								m.ctr.disp[krb2]++
								if (regs[arb2].Tag() == tagrb2) == !nerb2 {
									goto tladB
								}
								return exitB, steps
							tladB:
								steps++
								m.ctr.disp[krc0]++
								if (regs[arc0].Tag() == tagrc0) == !nerc0 {
									if tbackrc0 {
										return m.tEdge(pcrc0, tgtrc0), steps
									}
									return tgtrc0, steps
								}
								steps++
								m.ctr.disp[krc1]++
								regs[drc1] = regs[arc1]
								steps++
								m.ctr.disp[krc2]++
								if (regs[arc2].Tag() == tagrc2) == !nerc2 {
									goto tladC
								}
								m.ctr.disp[krc3]++
								addr = regs[arc3].Val() + uimmrc3
								if addr >= uint64(len(mem)) {
									return m.tLoadErr(pcrc3, addr), steps
								}
								regs[drc3] = mem[addr]
								steps += 2
								if (regs[drc3b] == regs[arc3b]) == wantEqrc3 {
									goto tladC
								}
								m.ctr.disp[krc4]++
								regs[drc4] = regs[arc4]
								steps += 2
								m.tpoll--
								if m.tpoll <= 0 {
									m.tpoll = m.pollEvery()
									if err := m.pollCheck(pcrc4); err != nil {
										m.terr = err
										return nil, steps
									}
								}
								steps++
								m.ctr.disp[krc2]++
								if (regs[arc2].Tag() == tagrc2) == !nerc2 {
									goto tladC
								}
								return exitC, steps
							tladC:
								return exit2, steps
							}
						}
					}
				}
			}
		}
	}

	// S2 — clause-continuation tail: two not-taken tag branches, two
	// loads, two moves, an unconditional jump, and the move at its
	// landing slot.
	if dbgSuperMask&(1<<1) != 0 {
		if isBrTag(at(i)) && isBrTag(at(i+1)) && at(i+2) == exec.XFLdLd &&
			at(i+3) == exec.XFMovMov && at(i+4) == exec.XJmp {
			t := int(ops[i+4].Target)
			if t >= 0 && t < n && isMov(at(t)) && t != i+4 {
				op0, op1, op2, op3, op4, op5 := &ops[i], &ops[i+1], &ops[i+2], &ops[i+3], &ops[i+4], &ops[t]
				ne0 := op0.Code == exec.XBrTagNe
				ne1 := op1.Code == exec.XBrTagNe
				tgt0, tback0 := targetOf(i)
				tgt1, tback1 := targetOf(i + 1)
				jback := t <= i+4
				fall5 := fallTop(t)
				d0, a0, b0 := uint8(op0.D), uint8(op0.A), uint8(op0.B)
				d0b, a0b := uint8(op0.D2), uint8(op0.A2)
				uimm0, uimm0b := uint64(op0.Imm), uint64(op0.Imm2)
				w0, tag0 := op0.W, op0.Tag
				ri0, ri0b := op0.Region, op0.Region2
				kOver0, kOver0b := overflowKind(ri0), overflowKind(ri0b)
				imm0, cond0 := op0.Imm, op0.Cond
				pc0, k0 := int(op0.PC), op0.Code
				_ = pc0
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d0, a0, b0, d0b, a0b, uimm0, uimm0b, w0, tag0, ri0, ri0b, kOver0, kOver0b, imm0, cond0
				d1, a1, b1 := uint8(op1.D), uint8(op1.A), uint8(op1.B)
				d1b, a1b := uint8(op1.D2), uint8(op1.A2)
				uimm1, uimm1b := uint64(op1.Imm), uint64(op1.Imm2)
				w1, tag1 := op1.W, op1.Tag
				ri1, ri1b := op1.Region, op1.Region2
				kOver1, kOver1b := overflowKind(ri1), overflowKind(ri1b)
				imm1, cond1 := op1.Imm, op1.Cond
				pc1, k1 := int(op1.PC), op1.Code
				_ = pc1
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d1, a1, b1, d1b, a1b, uimm1, uimm1b, w1, tag1, ri1, ri1b, kOver1, kOver1b, imm1, cond1
				d2, a2, b2 := uint8(op2.D), uint8(op2.A), uint8(op2.B)
				d2b, a2b := uint8(op2.D2), uint8(op2.A2)
				uimm2, uimm2b := uint64(op2.Imm), uint64(op2.Imm2)
				w2, tag2 := op2.W, op2.Tag
				ri2, ri2b := op2.Region, op2.Region2
				kOver2, kOver2b := overflowKind(ri2), overflowKind(ri2b)
				imm2, cond2 := op2.Imm, op2.Cond
				pc2, k2 := int(op2.PC), op2.Code
				_ = pc2
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d2, a2, b2, d2b, a2b, uimm2, uimm2b, w2, tag2, ri2, ri2b, kOver2, kOver2b, imm2, cond2
				d3, a3, b3 := uint8(op3.D), uint8(op3.A), uint8(op3.B)
				d3b, a3b := uint8(op3.D2), uint8(op3.A2)
				uimm3, uimm3b := uint64(op3.Imm), uint64(op3.Imm2)
				w3, tag3 := op3.W, op3.Tag
				ri3, ri3b := op3.Region, op3.Region2
				kOver3, kOver3b := overflowKind(ri3), overflowKind(ri3b)
				imm3, cond3 := op3.Imm, op3.Cond
				pc3, k3 := int(op3.PC), op3.Code
				_ = pc3
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d3, a3, b3, d3b, a3b, uimm3, uimm3b, w3, tag3, ri3, ri3b, kOver3, kOver3b, imm3, cond3
				d4, a4, b4 := uint8(op4.D), uint8(op4.A), uint8(op4.B)
				d4b, a4b := uint8(op4.D2), uint8(op4.A2)
				uimm4, uimm4b := uint64(op4.Imm), uint64(op4.Imm2)
				w4, tag4 := op4.W, op4.Tag
				ri4, ri4b := op4.Region, op4.Region2
				kOver4, kOver4b := overflowKind(ri4), overflowKind(ri4b)
				imm4, cond4 := op4.Imm, op4.Cond
				pc4, k4 := int(op4.PC), op4.Code
				_ = pc4
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d4, a4, b4, d4b, a4b, uimm4, uimm4b, w4, tag4, ri4, ri4b, kOver4, kOver4b, imm4, cond4
				d5, a5, b5 := uint8(op5.D), uint8(op5.A), uint8(op5.B)
				d5b, a5b := uint8(op5.D2), uint8(op5.A2)
				uimm5, uimm5b := uint64(op5.Imm), uint64(op5.Imm2)
				w5, tag5 := op5.W, op5.Tag
				ri5, ri5b := op5.Region, op5.Region2
				kOver5, kOver5b := overflowKind(ri5), overflowKind(ri5b)
				imm5, cond5 := op5.Imm, op5.Cond
				pc5, k5 := int(op5.PC), op5.Code
				_ = pc5
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d5, a5, b5, d5b, a5b, uimm5, uimm5b, w5, tag5, ri5, ri5b, kOver5, kOver5b, imm5, cond5
				return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
					if steps+8 > tmax {
						return gen1, steps
					}
					steps++
					m.ctr.disp[k0]++
					if (regs[a0].Tag() == tag0) == !ne0 {
						if tback0 {
							return m.tEdge(pc0, tgt0), steps
						}
						return tgt0, steps
					}
					steps++
					m.ctr.disp[k1]++
					if (regs[a1].Tag() == tag1) == !ne1 {
						if tback1 {
							return m.tEdge(pc1, tgt1), steps
						}
						return tgt1, steps
					}
					m.ctr.disp[k2]++
					addr := regs[a2].Val() + uimm2
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pc2, addr), steps
					}
					regs[d2] = mem[addr]
					steps += 2
					addr = regs[a2b].Val() + uimm2b
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pc2+1, addr), steps
					}
					regs[d2b] = mem[addr]
					m.ctr.disp[k3]++
					regs[d3] = regs[a3]
					steps += 2
					regs[d3b] = regs[a3b]
					steps++
					m.ctr.disp[k4]++
					if jback {
						m.tpoll--
						if m.tpoll <= 0 {
							m.tpoll = m.pollEvery()
							if err := m.pollCheck(pc4); err != nil {
								m.terr = err
								return nil, steps
							}
						}
					}
					steps++
					m.ctr.disp[k5]++
					regs[d5] = regs[a5]
					return fall5, steps
				}
			}
		}
	}

	// S3L — structure-copy store chain: load, two adds, nine stores (with
	// an embedded conditional move and immediate moves), the closing
	// move, the jump, and its landing move. Every catchable store
	// overflow redirects with exactly the constituent count a per-op
	// chain would have accumulated.
	if dbgSuperMask&(1<<18) != 0 {
		if isLd(at(i)) && at(i+1) == exec.XAddI && at(i+2) == exec.XAddR &&
			at(i+3) == exec.XFStMovI && at(i+4) == exec.XFStSt && at(i+5) == exec.XFStSt &&
			at(i+6) == exec.XSt && at(i+7) == exec.XFCMovR && at(i+8) == exec.XFStSt &&
			at(i+9) == exec.XFMovISt && at(i+10) == exec.XFStSt && at(i+11) == exec.XSt &&
			isMov(at(i+12)) && at(i+13) == exec.XJmp {
			t := int(ops[i+13].Target)
			if t >= 0 && t < n && isMov(at(t)) && t != i+13 && sixAt(t+1) >= 0 {
				c0 := sixAt(t + 1)
				exitL := &tops[c0]
				exitA := &tops[t+2]
				op0 := &ops[i+0]
				op1 := &ops[i+1]
				op2 := &ops[i+2]
				op3 := &ops[i+3]
				op4 := &ops[i+4]
				op5 := &ops[i+5]
				op6 := &ops[i+6]
				op7 := &ops[i+7]
				op8 := &ops[i+8]
				op9 := &ops[i+9]
				op10 := &ops[i+10]
				op11 := &ops[i+11]
				op12 := &ops[i+12]
				op13 := &ops[i+13]
				op14 := &ops[t]
				jback := t <= i+13
				d0, a0, b0 := uint8(op0.D), uint8(op0.A), uint8(op0.B)
				d0b, a0b := uint8(op0.D2), uint8(op0.A2)
				uimm0, uimm0b := uint64(op0.Imm), uint64(op0.Imm2)
				w0, tag0 := op0.W, op0.Tag
				ri0, ri0b := op0.Region, op0.Region2
				kOver0, kOver0b := overflowKind(ri0), overflowKind(ri0b)
				imm0, cond0 := op0.Imm, op0.Cond
				pc0, k0 := int(op0.PC), op0.Code
				_ = pc0
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d0, a0, b0, d0b, a0b, uimm0, uimm0b, w0, tag0, ri0, ri0b, kOver0, kOver0b, imm0, cond0
				d1, a1, b1 := uint8(op1.D), uint8(op1.A), uint8(op1.B)
				d1b, a1b := uint8(op1.D2), uint8(op1.A2)
				uimm1, uimm1b := uint64(op1.Imm), uint64(op1.Imm2)
				w1, tag1 := op1.W, op1.Tag
				ri1, ri1b := op1.Region, op1.Region2
				kOver1, kOver1b := overflowKind(ri1), overflowKind(ri1b)
				imm1, cond1 := op1.Imm, op1.Cond
				pc1, k1 := int(op1.PC), op1.Code
				_ = pc1
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d1, a1, b1, d1b, a1b, uimm1, uimm1b, w1, tag1, ri1, ri1b, kOver1, kOver1b, imm1, cond1
				d2, a2, b2 := uint8(op2.D), uint8(op2.A), uint8(op2.B)
				d2b, a2b := uint8(op2.D2), uint8(op2.A2)
				uimm2, uimm2b := uint64(op2.Imm), uint64(op2.Imm2)
				w2, tag2 := op2.W, op2.Tag
				ri2, ri2b := op2.Region, op2.Region2
				kOver2, kOver2b := overflowKind(ri2), overflowKind(ri2b)
				imm2, cond2 := op2.Imm, op2.Cond
				pc2, k2 := int(op2.PC), op2.Code
				_ = pc2
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d2, a2, b2, d2b, a2b, uimm2, uimm2b, w2, tag2, ri2, ri2b, kOver2, kOver2b, imm2, cond2
				d3, a3, b3 := uint8(op3.D), uint8(op3.A), uint8(op3.B)
				d3b, a3b := uint8(op3.D2), uint8(op3.A2)
				uimm3, uimm3b := uint64(op3.Imm), uint64(op3.Imm2)
				w3, tag3 := op3.W, op3.Tag
				ri3, ri3b := op3.Region, op3.Region2
				kOver3, kOver3b := overflowKind(ri3), overflowKind(ri3b)
				imm3, cond3 := op3.Imm, op3.Cond
				pc3, k3 := int(op3.PC), op3.Code
				_ = pc3
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d3, a3, b3, d3b, a3b, uimm3, uimm3b, w3, tag3, ri3, ri3b, kOver3, kOver3b, imm3, cond3
				d4, a4, b4 := uint8(op4.D), uint8(op4.A), uint8(op4.B)
				d4b, a4b := uint8(op4.D2), uint8(op4.A2)
				uimm4, uimm4b := uint64(op4.Imm), uint64(op4.Imm2)
				w4, tag4 := op4.W, op4.Tag
				ri4, ri4b := op4.Region, op4.Region2
				kOver4, kOver4b := overflowKind(ri4), overflowKind(ri4b)
				imm4, cond4 := op4.Imm, op4.Cond
				pc4, k4 := int(op4.PC), op4.Code
				_ = pc4
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d4, a4, b4, d4b, a4b, uimm4, uimm4b, w4, tag4, ri4, ri4b, kOver4, kOver4b, imm4, cond4
				d5, a5, b5 := uint8(op5.D), uint8(op5.A), uint8(op5.B)
				d5b, a5b := uint8(op5.D2), uint8(op5.A2)
				uimm5, uimm5b := uint64(op5.Imm), uint64(op5.Imm2)
				w5, tag5 := op5.W, op5.Tag
				ri5, ri5b := op5.Region, op5.Region2
				kOver5, kOver5b := overflowKind(ri5), overflowKind(ri5b)
				imm5, cond5 := op5.Imm, op5.Cond
				pc5, k5 := int(op5.PC), op5.Code
				_ = pc5
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d5, a5, b5, d5b, a5b, uimm5, uimm5b, w5, tag5, ri5, ri5b, kOver5, kOver5b, imm5, cond5
				d6, a6, b6 := uint8(op6.D), uint8(op6.A), uint8(op6.B)
				d6b, a6b := uint8(op6.D2), uint8(op6.A2)
				uimm6, uimm6b := uint64(op6.Imm), uint64(op6.Imm2)
				w6, tag6 := op6.W, op6.Tag
				ri6, ri6b := op6.Region, op6.Region2
				kOver6, kOver6b := overflowKind(ri6), overflowKind(ri6b)
				imm6, cond6 := op6.Imm, op6.Cond
				pc6, k6 := int(op6.PC), op6.Code
				_ = pc6
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d6, a6, b6, d6b, a6b, uimm6, uimm6b, w6, tag6, ri6, ri6b, kOver6, kOver6b, imm6, cond6
				d7, a7, b7 := uint8(op7.D), uint8(op7.A), uint8(op7.B)
				d7b, a7b := uint8(op7.D2), uint8(op7.A2)
				uimm7, uimm7b := uint64(op7.Imm), uint64(op7.Imm2)
				w7, tag7 := op7.W, op7.Tag
				ri7, ri7b := op7.Region, op7.Region2
				kOver7, kOver7b := overflowKind(ri7), overflowKind(ri7b)
				imm7, cond7 := op7.Imm, op7.Cond
				pc7, k7 := int(op7.PC), op7.Code
				_ = pc7
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d7, a7, b7, d7b, a7b, uimm7, uimm7b, w7, tag7, ri7, ri7b, kOver7, kOver7b, imm7, cond7
				d8, a8, b8 := uint8(op8.D), uint8(op8.A), uint8(op8.B)
				d8b, a8b := uint8(op8.D2), uint8(op8.A2)
				uimm8, uimm8b := uint64(op8.Imm), uint64(op8.Imm2)
				w8, tag8 := op8.W, op8.Tag
				ri8, ri8b := op8.Region, op8.Region2
				kOver8, kOver8b := overflowKind(ri8), overflowKind(ri8b)
				imm8, cond8 := op8.Imm, op8.Cond
				pc8, k8 := int(op8.PC), op8.Code
				_ = pc8
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d8, a8, b8, d8b, a8b, uimm8, uimm8b, w8, tag8, ri8, ri8b, kOver8, kOver8b, imm8, cond8
				d9, a9, b9 := uint8(op9.D), uint8(op9.A), uint8(op9.B)
				d9b, a9b := uint8(op9.D2), uint8(op9.A2)
				uimm9, uimm9b := uint64(op9.Imm), uint64(op9.Imm2)
				w9, tag9 := op9.W, op9.Tag
				ri9, ri9b := op9.Region, op9.Region2
				kOver9, kOver9b := overflowKind(ri9), overflowKind(ri9b)
				imm9, cond9 := op9.Imm, op9.Cond
				pc9, k9 := int(op9.PC), op9.Code
				_ = pc9
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d9, a9, b9, d9b, a9b, uimm9, uimm9b, w9, tag9, ri9, ri9b, kOver9, kOver9b, imm9, cond9
				d10, a10, b10 := uint8(op10.D), uint8(op10.A), uint8(op10.B)
				d10b, a10b := uint8(op10.D2), uint8(op10.A2)
				uimm10, uimm10b := uint64(op10.Imm), uint64(op10.Imm2)
				w10, tag10 := op10.W, op10.Tag
				ri10, ri10b := op10.Region, op10.Region2
				kOver10, kOver10b := overflowKind(ri10), overflowKind(ri10b)
				imm10, cond10 := op10.Imm, op10.Cond
				pc10, k10 := int(op10.PC), op10.Code
				_ = pc10
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d10, a10, b10, d10b, a10b, uimm10, uimm10b, w10, tag10, ri10, ri10b, kOver10, kOver10b, imm10, cond10
				d11, a11, b11 := uint8(op11.D), uint8(op11.A), uint8(op11.B)
				d11b, a11b := uint8(op11.D2), uint8(op11.A2)
				uimm11, uimm11b := uint64(op11.Imm), uint64(op11.Imm2)
				w11, tag11 := op11.W, op11.Tag
				ri11, ri11b := op11.Region, op11.Region2
				kOver11, kOver11b := overflowKind(ri11), overflowKind(ri11b)
				imm11, cond11 := op11.Imm, op11.Cond
				pc11, k11 := int(op11.PC), op11.Code
				_ = pc11
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d11, a11, b11, d11b, a11b, uimm11, uimm11b, w11, tag11, ri11, ri11b, kOver11, kOver11b, imm11, cond11
				d12, a12, b12 := uint8(op12.D), uint8(op12.A), uint8(op12.B)
				d12b, a12b := uint8(op12.D2), uint8(op12.A2)
				uimm12, uimm12b := uint64(op12.Imm), uint64(op12.Imm2)
				w12, tag12 := op12.W, op12.Tag
				ri12, ri12b := op12.Region, op12.Region2
				kOver12, kOver12b := overflowKind(ri12), overflowKind(ri12b)
				imm12, cond12 := op12.Imm, op12.Cond
				pc12, k12 := int(op12.PC), op12.Code
				_ = pc12
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d12, a12, b12, d12b, a12b, uimm12, uimm12b, w12, tag12, ri12, ri12b, kOver12, kOver12b, imm12, cond12
				d13, a13, b13 := uint8(op13.D), uint8(op13.A), uint8(op13.B)
				d13b, a13b := uint8(op13.D2), uint8(op13.A2)
				uimm13, uimm13b := uint64(op13.Imm), uint64(op13.Imm2)
				w13, tag13 := op13.W, op13.Tag
				ri13, ri13b := op13.Region, op13.Region2
				kOver13, kOver13b := overflowKind(ri13), overflowKind(ri13b)
				imm13, cond13 := op13.Imm, op13.Cond
				pc13, k13 := int(op13.PC), op13.Code
				_ = pc13
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d13, a13, b13, d13b, a13b, uimm13, uimm13b, w13, tag13, ri13, ri13b, kOver13, kOver13b, imm13, cond13
				d14, a14, b14 := uint8(op14.D), uint8(op14.A), uint8(op14.B)
				d14b, a14b := uint8(op14.D2), uint8(op14.A2)
				uimm14, uimm14b := uint64(op14.Imm), uint64(op14.Imm2)
				w14, tag14 := op14.W, op14.Tag
				ri14, ri14b := op14.Region, op14.Region2
				kOver14, kOver14b := overflowKind(ri14), overflowKind(ri14b)
				imm14, cond14 := op14.Imm, op14.Cond
				pc14, k14 := int(op14.PC), op14.Code
				_ = pc14
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d14, a14, b14, d14b, a14b, uimm14, uimm14b, w14, tag14, ri14, ri14b, kOver14, kOver14b, imm14, cond14
				tb0 := throwBack(i + 0)
				_ = tb0
				tb1 := throwBack(i + 1)
				_ = tb1
				tb2 := throwBack(i + 2)
				_ = tb2
				tb3 := throwBack(i + 3)
				_ = tb3
				tb4 := throwBack(i + 4)
				_ = tb4
				tb5 := throwBack(i + 5)
				_ = tb5
				tb6 := throwBack(i + 6)
				_ = tb6
				tb7 := throwBack(i + 7)
				_ = tb7
				tb8 := throwBack(i + 8)
				_ = tb8
				tb9 := throwBack(i + 9)
				_ = tb9
				tb10 := throwBack(i + 10)
				_ = tb10
				tb11 := throwBack(i + 11)
				_ = tb11
				tb12 := throwBack(i + 12)
				_ = tb12
				tb13 := throwBack(i + 13)
				_ = tb13
				dra0, ara0, bra0 := uint8((&ops[t+1+0]).D), uint8((&ops[t+1+0]).A), uint8((&ops[t+1+0]).B)
				dra0b, ara0b := uint8((&ops[t+1+0]).D2), uint8((&ops[t+1+0]).A2)
				uimmra0, uimmra0b := uint64((&ops[t+1+0]).Imm), uint64((&ops[t+1+0]).Imm2)
				wra0, tagra0 := (&ops[t+1+0]).W, (&ops[t+1+0]).Tag
				immra0, condra0 := (&ops[t+1+0]).Imm, (&ops[t+1+0]).Cond
				pcra0, kra0 := int((&ops[t+1+0]).PC), (&ops[t+1+0]).Code
				_ = pcra0
				_, _, _, _, _, _, _, _, _, _, _ = dra0, ara0, bra0, dra0b, ara0b, uimmra0, uimmra0b, wra0, tagra0, immra0, condra0
				dra1, ara1, bra1 := uint8((&ops[t+1+1]).D), uint8((&ops[t+1+1]).A), uint8((&ops[t+1+1]).B)
				dra1b, ara1b := uint8((&ops[t+1+1]).D2), uint8((&ops[t+1+1]).A2)
				uimmra1, uimmra1b := uint64((&ops[t+1+1]).Imm), uint64((&ops[t+1+1]).Imm2)
				wra1, tagra1 := (&ops[t+1+1]).W, (&ops[t+1+1]).Tag
				immra1, condra1 := (&ops[t+1+1]).Imm, (&ops[t+1+1]).Cond
				pcra1, kra1 := int((&ops[t+1+1]).PC), (&ops[t+1+1]).Code
				_ = pcra1
				_, _, _, _, _, _, _, _, _, _, _ = dra1, ara1, bra1, dra1b, ara1b, uimmra1, uimmra1b, wra1, tagra1, immra1, condra1
				dra2, ara2, bra2 := uint8((&ops[t+1+2]).D), uint8((&ops[t+1+2]).A), uint8((&ops[t+1+2]).B)
				dra2b, ara2b := uint8((&ops[t+1+2]).D2), uint8((&ops[t+1+2]).A2)
				uimmra2, uimmra2b := uint64((&ops[t+1+2]).Imm), uint64((&ops[t+1+2]).Imm2)
				wra2, tagra2 := (&ops[t+1+2]).W, (&ops[t+1+2]).Tag
				immra2, condra2 := (&ops[t+1+2]).Imm, (&ops[t+1+2]).Cond
				pcra2, kra2 := int((&ops[t+1+2]).PC), (&ops[t+1+2]).Code
				_ = pcra2
				_, _, _, _, _, _, _, _, _, _, _ = dra2, ara2, bra2, dra2b, ara2b, uimmra2, uimmra2b, wra2, tagra2, immra2, condra2
				nera0 := ops[t+1].Code == exec.XBrTagNe
				wantEqra1 := ops[t+1+1].Code == exec.XFLdBrCmpEqR
				return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
					if steps+28 > tmax {
						return gen1, steps
					}
					steps++
					m.ctr.disp[k0]++
					addr := regs[a0].Val() + uimm0
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pc0, addr), steps
					}
					regs[d0] = mem[addr]
					steps++
					m.ctr.disp[k1]++
					av := regs[a1]
					regs[d1] = word.Make(av.Tag(), uint64(av.Int()+imm1))
					steps++
					m.ctr.disp[k2]++
					av = regs[a2]
					regs[d2] = word.Make(av.Tag(), uint64(av.Int()+regs[b2].Int()))
					m.ctr.disp[k3]++
					addr = regs[a3].Val() + uimm3
					if addr >= m.limit[ri3] {
						return m.tRaise(pc3, kOver3, throw, tb3, tSkipStMovI), steps + 1
					}
					if addr >= uint64(len(mem)) {
						return m.tStoreErr(pc3, addr), steps
					}
					mem[addr] = regs[b3]
					m.st.Touch(addr)
					steps += 2
					regs[d3b] = w3
					m.ctr.disp[k4]++
					addr = regs[a4].Val() + uimm4
					if addr >= m.limit[ri4] {
						return m.tRaise(pc4, kOver4, throw, tb4, tSkipStSt), steps + 1
					}
					if addr >= uint64(len(mem)) {
						return m.tStoreErr(pc4, addr), steps
					}
					mem[addr] = regs[b4]
					m.st.Touch(addr)
					steps += 2
					addr = regs[a4b].Val() + uimm4b
					if addr >= m.limit[ri4b] {
						return m.tRaise(pc4+1, kOver4b, throw, tb4, tSkipNone), steps
					}
					if addr >= uint64(len(mem)) {
						return m.tStoreErr(pc4+1, addr), steps
					}
					mem[addr] = regs[d4b]
					m.st.Touch(addr)
					m.ctr.disp[k5]++
					addr = regs[a5].Val() + uimm5
					if addr >= m.limit[ri5] {
						return m.tRaise(pc5, kOver5, throw, tb5, tSkipStSt), steps + 1
					}
					if addr >= uint64(len(mem)) {
						return m.tStoreErr(pc5, addr), steps
					}
					mem[addr] = regs[b5]
					m.st.Touch(addr)
					steps += 2
					addr = regs[a5b].Val() + uimm5b
					if addr >= m.limit[ri5b] {
						return m.tRaise(pc5+1, kOver5b, throw, tb5, tSkipNone), steps
					}
					if addr >= uint64(len(mem)) {
						return m.tStoreErr(pc5+1, addr), steps
					}
					mem[addr] = regs[d5b]
					m.st.Touch(addr)
					steps++
					m.ctr.disp[k6]++
					addr = regs[a6].Val() + uimm6
					if addr >= m.limit[ri6] {
						return m.tRaise(pc6, kOver6, throw, tb6, tSkipNone), steps
					}
					if addr >= uint64(len(mem)) {
						return m.tStoreErr(pc6, addr), steps
					}
					mem[addr] = regs[b6]
					m.st.Touch(addr)
					steps++
					m.ctr.disp[k7]++
					if !exec.CmpW(regs[a7], regs[b7], cond7) {
						steps++
						m.ctr.cmovMoves++
						regs[d7b] = regs[a7b]
					}
					m.ctr.disp[k8]++
					addr = regs[a8].Val() + uimm8
					if addr >= m.limit[ri8] {
						return m.tRaise(pc8, kOver8, throw, tb8, tSkipStSt), steps + 1
					}
					if addr >= uint64(len(mem)) {
						return m.tStoreErr(pc8, addr), steps
					}
					mem[addr] = regs[b8]
					m.st.Touch(addr)
					steps += 2
					addr = regs[a8b].Val() + uimm8b
					if addr >= m.limit[ri8b] {
						return m.tRaise(pc8+1, kOver8b, throw, tb8, tSkipNone), steps
					}
					if addr >= uint64(len(mem)) {
						return m.tStoreErr(pc8+1, addr), steps
					}
					mem[addr] = regs[d8b]
					m.st.Touch(addr)
					m.ctr.disp[k9]++
					regs[d9] = w9
					steps += 2
					addr = regs[a9b].Val() + uimm9b
					if addr >= m.limit[ri9b] {
						return m.tRaise(pc9+1, kOver9b, throw, tb9, tSkipNone), steps
					}
					if addr >= uint64(len(mem)) {
						return m.tStoreErr(pc9+1, addr), steps
					}
					mem[addr] = regs[d9b]
					m.st.Touch(addr)
					m.ctr.disp[k10]++
					addr = regs[a10].Val() + uimm10
					if addr >= m.limit[ri10] {
						return m.tRaise(pc10, kOver10, throw, tb10, tSkipStSt), steps + 1
					}
					if addr >= uint64(len(mem)) {
						return m.tStoreErr(pc10, addr), steps
					}
					mem[addr] = regs[b10]
					m.st.Touch(addr)
					steps += 2
					addr = regs[a10b].Val() + uimm10b
					if addr >= m.limit[ri10b] {
						return m.tRaise(pc10+1, kOver10b, throw, tb10, tSkipNone), steps
					}
					if addr >= uint64(len(mem)) {
						return m.tStoreErr(pc10+1, addr), steps
					}
					mem[addr] = regs[d10b]
					m.st.Touch(addr)
					steps++
					m.ctr.disp[k11]++
					addr = regs[a11].Val() + uimm11
					if addr >= m.limit[ri11] {
						return m.tRaise(pc11, kOver11, throw, tb11, tSkipNone), steps
					}
					if addr >= uint64(len(mem)) {
						return m.tStoreErr(pc11, addr), steps
					}
					mem[addr] = regs[b11]
					m.st.Touch(addr)
					steps++
					m.ctr.disp[k12]++
					regs[d12] = regs[a12]
					steps++
					m.ctr.disp[k13]++
					if jback {
						m.tpoll--
						if m.tpoll <= 0 {
							m.tpoll = m.pollEvery()
							if err := m.pollCheck(pc13); err != nil {
								m.terr = err
								return nil, steps
							}
						}
					}
					steps++
					m.ctr.disp[k14]++
					regs[d14] = regs[a14]
					steps++
					m.ctr.disp[kra0]++
					if (regs[ara0].Tag() == tagra0) == !nera0 {
						goto cladA
					}
					m.ctr.disp[kra1]++
					addr = regs[ara1].Val() + uimmra1
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pcra1, addr), steps
					}
					regs[dra1] = mem[addr]
					steps += 2
					if (regs[dra1b] == regs[ara1b]) == wantEqra1 {
						goto cladA
					}
					m.ctr.disp[kra2]++
					regs[dra2] = regs[ara2]
					steps += 2
					m.tpoll--
					if m.tpoll <= 0 {
						m.tpoll = m.pollEvery()
						if err := m.pollCheck(pcra2); err != nil {
							m.terr = err
							return nil, steps
						}
					}
					steps++
					m.ctr.disp[kra0]++
					if (regs[ara0].Tag() == tagra0) == !nera0 {
						goto cladA
					}
					return exitA, steps
				cladA:
					return exitL, steps
				}
			}
		}
	}

	// S3 — structure-copy store chain: load, two adds, nine stores (with
	// an embedded conditional move and immediate moves), the closing
	// move, the jump, and its landing move. Every catchable store
	// overflow redirects with exactly the constituent count a per-op
	// chain would have accumulated.
	if dbgSuperMask&(1<<2) != 0 {
		if isLd(at(i)) && at(i+1) == exec.XAddI && at(i+2) == exec.XAddR &&
			at(i+3) == exec.XFStMovI && at(i+4) == exec.XFStSt && at(i+5) == exec.XFStSt &&
			at(i+6) == exec.XSt && at(i+7) == exec.XFCMovR && at(i+8) == exec.XFStSt &&
			at(i+9) == exec.XFMovISt && at(i+10) == exec.XFStSt && at(i+11) == exec.XSt &&
			isMov(at(i+12)) && at(i+13) == exec.XJmp {
			t := int(ops[i+13].Target)
			if t >= 0 && t < n && isMov(at(t)) && t != i+13 {
				op0 := &ops[i+0]
				op1 := &ops[i+1]
				op2 := &ops[i+2]
				op3 := &ops[i+3]
				op4 := &ops[i+4]
				op5 := &ops[i+5]
				op6 := &ops[i+6]
				op7 := &ops[i+7]
				op8 := &ops[i+8]
				op9 := &ops[i+9]
				op10 := &ops[i+10]
				op11 := &ops[i+11]
				op12 := &ops[i+12]
				op13 := &ops[i+13]
				op14 := &ops[t]
				jback := t <= i+13
				fall14 := fallTop(t)
				d0, a0, b0 := uint8(op0.D), uint8(op0.A), uint8(op0.B)
				d0b, a0b := uint8(op0.D2), uint8(op0.A2)
				uimm0, uimm0b := uint64(op0.Imm), uint64(op0.Imm2)
				w0, tag0 := op0.W, op0.Tag
				ri0, ri0b := op0.Region, op0.Region2
				kOver0, kOver0b := overflowKind(ri0), overflowKind(ri0b)
				imm0, cond0 := op0.Imm, op0.Cond
				pc0, k0 := int(op0.PC), op0.Code
				_ = pc0
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d0, a0, b0, d0b, a0b, uimm0, uimm0b, w0, tag0, ri0, ri0b, kOver0, kOver0b, imm0, cond0
				d1, a1, b1 := uint8(op1.D), uint8(op1.A), uint8(op1.B)
				d1b, a1b := uint8(op1.D2), uint8(op1.A2)
				uimm1, uimm1b := uint64(op1.Imm), uint64(op1.Imm2)
				w1, tag1 := op1.W, op1.Tag
				ri1, ri1b := op1.Region, op1.Region2
				kOver1, kOver1b := overflowKind(ri1), overflowKind(ri1b)
				imm1, cond1 := op1.Imm, op1.Cond
				pc1, k1 := int(op1.PC), op1.Code
				_ = pc1
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d1, a1, b1, d1b, a1b, uimm1, uimm1b, w1, tag1, ri1, ri1b, kOver1, kOver1b, imm1, cond1
				d2, a2, b2 := uint8(op2.D), uint8(op2.A), uint8(op2.B)
				d2b, a2b := uint8(op2.D2), uint8(op2.A2)
				uimm2, uimm2b := uint64(op2.Imm), uint64(op2.Imm2)
				w2, tag2 := op2.W, op2.Tag
				ri2, ri2b := op2.Region, op2.Region2
				kOver2, kOver2b := overflowKind(ri2), overflowKind(ri2b)
				imm2, cond2 := op2.Imm, op2.Cond
				pc2, k2 := int(op2.PC), op2.Code
				_ = pc2
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d2, a2, b2, d2b, a2b, uimm2, uimm2b, w2, tag2, ri2, ri2b, kOver2, kOver2b, imm2, cond2
				d3, a3, b3 := uint8(op3.D), uint8(op3.A), uint8(op3.B)
				d3b, a3b := uint8(op3.D2), uint8(op3.A2)
				uimm3, uimm3b := uint64(op3.Imm), uint64(op3.Imm2)
				w3, tag3 := op3.W, op3.Tag
				ri3, ri3b := op3.Region, op3.Region2
				kOver3, kOver3b := overflowKind(ri3), overflowKind(ri3b)
				imm3, cond3 := op3.Imm, op3.Cond
				pc3, k3 := int(op3.PC), op3.Code
				_ = pc3
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d3, a3, b3, d3b, a3b, uimm3, uimm3b, w3, tag3, ri3, ri3b, kOver3, kOver3b, imm3, cond3
				d4, a4, b4 := uint8(op4.D), uint8(op4.A), uint8(op4.B)
				d4b, a4b := uint8(op4.D2), uint8(op4.A2)
				uimm4, uimm4b := uint64(op4.Imm), uint64(op4.Imm2)
				w4, tag4 := op4.W, op4.Tag
				ri4, ri4b := op4.Region, op4.Region2
				kOver4, kOver4b := overflowKind(ri4), overflowKind(ri4b)
				imm4, cond4 := op4.Imm, op4.Cond
				pc4, k4 := int(op4.PC), op4.Code
				_ = pc4
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d4, a4, b4, d4b, a4b, uimm4, uimm4b, w4, tag4, ri4, ri4b, kOver4, kOver4b, imm4, cond4
				d5, a5, b5 := uint8(op5.D), uint8(op5.A), uint8(op5.B)
				d5b, a5b := uint8(op5.D2), uint8(op5.A2)
				uimm5, uimm5b := uint64(op5.Imm), uint64(op5.Imm2)
				w5, tag5 := op5.W, op5.Tag
				ri5, ri5b := op5.Region, op5.Region2
				kOver5, kOver5b := overflowKind(ri5), overflowKind(ri5b)
				imm5, cond5 := op5.Imm, op5.Cond
				pc5, k5 := int(op5.PC), op5.Code
				_ = pc5
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d5, a5, b5, d5b, a5b, uimm5, uimm5b, w5, tag5, ri5, ri5b, kOver5, kOver5b, imm5, cond5
				d6, a6, b6 := uint8(op6.D), uint8(op6.A), uint8(op6.B)
				d6b, a6b := uint8(op6.D2), uint8(op6.A2)
				uimm6, uimm6b := uint64(op6.Imm), uint64(op6.Imm2)
				w6, tag6 := op6.W, op6.Tag
				ri6, ri6b := op6.Region, op6.Region2
				kOver6, kOver6b := overflowKind(ri6), overflowKind(ri6b)
				imm6, cond6 := op6.Imm, op6.Cond
				pc6, k6 := int(op6.PC), op6.Code
				_ = pc6
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d6, a6, b6, d6b, a6b, uimm6, uimm6b, w6, tag6, ri6, ri6b, kOver6, kOver6b, imm6, cond6
				d7, a7, b7 := uint8(op7.D), uint8(op7.A), uint8(op7.B)
				d7b, a7b := uint8(op7.D2), uint8(op7.A2)
				uimm7, uimm7b := uint64(op7.Imm), uint64(op7.Imm2)
				w7, tag7 := op7.W, op7.Tag
				ri7, ri7b := op7.Region, op7.Region2
				kOver7, kOver7b := overflowKind(ri7), overflowKind(ri7b)
				imm7, cond7 := op7.Imm, op7.Cond
				pc7, k7 := int(op7.PC), op7.Code
				_ = pc7
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d7, a7, b7, d7b, a7b, uimm7, uimm7b, w7, tag7, ri7, ri7b, kOver7, kOver7b, imm7, cond7
				d8, a8, b8 := uint8(op8.D), uint8(op8.A), uint8(op8.B)
				d8b, a8b := uint8(op8.D2), uint8(op8.A2)
				uimm8, uimm8b := uint64(op8.Imm), uint64(op8.Imm2)
				w8, tag8 := op8.W, op8.Tag
				ri8, ri8b := op8.Region, op8.Region2
				kOver8, kOver8b := overflowKind(ri8), overflowKind(ri8b)
				imm8, cond8 := op8.Imm, op8.Cond
				pc8, k8 := int(op8.PC), op8.Code
				_ = pc8
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d8, a8, b8, d8b, a8b, uimm8, uimm8b, w8, tag8, ri8, ri8b, kOver8, kOver8b, imm8, cond8
				d9, a9, b9 := uint8(op9.D), uint8(op9.A), uint8(op9.B)
				d9b, a9b := uint8(op9.D2), uint8(op9.A2)
				uimm9, uimm9b := uint64(op9.Imm), uint64(op9.Imm2)
				w9, tag9 := op9.W, op9.Tag
				ri9, ri9b := op9.Region, op9.Region2
				kOver9, kOver9b := overflowKind(ri9), overflowKind(ri9b)
				imm9, cond9 := op9.Imm, op9.Cond
				pc9, k9 := int(op9.PC), op9.Code
				_ = pc9
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d9, a9, b9, d9b, a9b, uimm9, uimm9b, w9, tag9, ri9, ri9b, kOver9, kOver9b, imm9, cond9
				d10, a10, b10 := uint8(op10.D), uint8(op10.A), uint8(op10.B)
				d10b, a10b := uint8(op10.D2), uint8(op10.A2)
				uimm10, uimm10b := uint64(op10.Imm), uint64(op10.Imm2)
				w10, tag10 := op10.W, op10.Tag
				ri10, ri10b := op10.Region, op10.Region2
				kOver10, kOver10b := overflowKind(ri10), overflowKind(ri10b)
				imm10, cond10 := op10.Imm, op10.Cond
				pc10, k10 := int(op10.PC), op10.Code
				_ = pc10
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d10, a10, b10, d10b, a10b, uimm10, uimm10b, w10, tag10, ri10, ri10b, kOver10, kOver10b, imm10, cond10
				d11, a11, b11 := uint8(op11.D), uint8(op11.A), uint8(op11.B)
				d11b, a11b := uint8(op11.D2), uint8(op11.A2)
				uimm11, uimm11b := uint64(op11.Imm), uint64(op11.Imm2)
				w11, tag11 := op11.W, op11.Tag
				ri11, ri11b := op11.Region, op11.Region2
				kOver11, kOver11b := overflowKind(ri11), overflowKind(ri11b)
				imm11, cond11 := op11.Imm, op11.Cond
				pc11, k11 := int(op11.PC), op11.Code
				_ = pc11
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d11, a11, b11, d11b, a11b, uimm11, uimm11b, w11, tag11, ri11, ri11b, kOver11, kOver11b, imm11, cond11
				d12, a12, b12 := uint8(op12.D), uint8(op12.A), uint8(op12.B)
				d12b, a12b := uint8(op12.D2), uint8(op12.A2)
				uimm12, uimm12b := uint64(op12.Imm), uint64(op12.Imm2)
				w12, tag12 := op12.W, op12.Tag
				ri12, ri12b := op12.Region, op12.Region2
				kOver12, kOver12b := overflowKind(ri12), overflowKind(ri12b)
				imm12, cond12 := op12.Imm, op12.Cond
				pc12, k12 := int(op12.PC), op12.Code
				_ = pc12
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d12, a12, b12, d12b, a12b, uimm12, uimm12b, w12, tag12, ri12, ri12b, kOver12, kOver12b, imm12, cond12
				d13, a13, b13 := uint8(op13.D), uint8(op13.A), uint8(op13.B)
				d13b, a13b := uint8(op13.D2), uint8(op13.A2)
				uimm13, uimm13b := uint64(op13.Imm), uint64(op13.Imm2)
				w13, tag13 := op13.W, op13.Tag
				ri13, ri13b := op13.Region, op13.Region2
				kOver13, kOver13b := overflowKind(ri13), overflowKind(ri13b)
				imm13, cond13 := op13.Imm, op13.Cond
				pc13, k13 := int(op13.PC), op13.Code
				_ = pc13
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d13, a13, b13, d13b, a13b, uimm13, uimm13b, w13, tag13, ri13, ri13b, kOver13, kOver13b, imm13, cond13
				d14, a14, b14 := uint8(op14.D), uint8(op14.A), uint8(op14.B)
				d14b, a14b := uint8(op14.D2), uint8(op14.A2)
				uimm14, uimm14b := uint64(op14.Imm), uint64(op14.Imm2)
				w14, tag14 := op14.W, op14.Tag
				ri14, ri14b := op14.Region, op14.Region2
				kOver14, kOver14b := overflowKind(ri14), overflowKind(ri14b)
				imm14, cond14 := op14.Imm, op14.Cond
				pc14, k14 := int(op14.PC), op14.Code
				_ = pc14
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d14, a14, b14, d14b, a14b, uimm14, uimm14b, w14, tag14, ri14, ri14b, kOver14, kOver14b, imm14, cond14
				tb0 := throwBack(i + 0)
				_ = tb0
				tb1 := throwBack(i + 1)
				_ = tb1
				tb2 := throwBack(i + 2)
				_ = tb2
				tb3 := throwBack(i + 3)
				_ = tb3
				tb4 := throwBack(i + 4)
				_ = tb4
				tb5 := throwBack(i + 5)
				_ = tb5
				tb6 := throwBack(i + 6)
				_ = tb6
				tb7 := throwBack(i + 7)
				_ = tb7
				tb8 := throwBack(i + 8)
				_ = tb8
				tb9 := throwBack(i + 9)
				_ = tb9
				tb10 := throwBack(i + 10)
				_ = tb10
				tb11 := throwBack(i + 11)
				_ = tb11
				tb12 := throwBack(i + 12)
				_ = tb12
				tb13 := throwBack(i + 13)
				_ = tb13
				return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
					if steps+22 > tmax {
						return gen1, steps
					}
					steps++
					m.ctr.disp[k0]++
					addr := regs[a0].Val() + uimm0
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pc0, addr), steps
					}
					regs[d0] = mem[addr]
					steps++
					m.ctr.disp[k1]++
					av := regs[a1]
					regs[d1] = word.Make(av.Tag(), uint64(av.Int()+imm1))
					steps++
					m.ctr.disp[k2]++
					av = regs[a2]
					regs[d2] = word.Make(av.Tag(), uint64(av.Int()+regs[b2].Int()))
					m.ctr.disp[k3]++
					addr = regs[a3].Val() + uimm3
					if addr >= m.limit[ri3] {
						return m.tRaise(pc3, kOver3, throw, tb3, tSkipStMovI), steps + 1
					}
					if addr >= uint64(len(mem)) {
						return m.tStoreErr(pc3, addr), steps
					}
					mem[addr] = regs[b3]
					m.st.Touch(addr)
					steps += 2
					regs[d3b] = w3
					m.ctr.disp[k4]++
					addr = regs[a4].Val() + uimm4
					if addr >= m.limit[ri4] {
						return m.tRaise(pc4, kOver4, throw, tb4, tSkipStSt), steps + 1
					}
					if addr >= uint64(len(mem)) {
						return m.tStoreErr(pc4, addr), steps
					}
					mem[addr] = regs[b4]
					m.st.Touch(addr)
					steps += 2
					addr = regs[a4b].Val() + uimm4b
					if addr >= m.limit[ri4b] {
						return m.tRaise(pc4+1, kOver4b, throw, tb4, tSkipNone), steps
					}
					if addr >= uint64(len(mem)) {
						return m.tStoreErr(pc4+1, addr), steps
					}
					mem[addr] = regs[d4b]
					m.st.Touch(addr)
					m.ctr.disp[k5]++
					addr = regs[a5].Val() + uimm5
					if addr >= m.limit[ri5] {
						return m.tRaise(pc5, kOver5, throw, tb5, tSkipStSt), steps + 1
					}
					if addr >= uint64(len(mem)) {
						return m.tStoreErr(pc5, addr), steps
					}
					mem[addr] = regs[b5]
					m.st.Touch(addr)
					steps += 2
					addr = regs[a5b].Val() + uimm5b
					if addr >= m.limit[ri5b] {
						return m.tRaise(pc5+1, kOver5b, throw, tb5, tSkipNone), steps
					}
					if addr >= uint64(len(mem)) {
						return m.tStoreErr(pc5+1, addr), steps
					}
					mem[addr] = regs[d5b]
					m.st.Touch(addr)
					steps++
					m.ctr.disp[k6]++
					addr = regs[a6].Val() + uimm6
					if addr >= m.limit[ri6] {
						return m.tRaise(pc6, kOver6, throw, tb6, tSkipNone), steps
					}
					if addr >= uint64(len(mem)) {
						return m.tStoreErr(pc6, addr), steps
					}
					mem[addr] = regs[b6]
					m.st.Touch(addr)
					steps++
					m.ctr.disp[k7]++
					if !exec.CmpW(regs[a7], regs[b7], cond7) {
						steps++
						m.ctr.cmovMoves++
						regs[d7b] = regs[a7b]
					}
					m.ctr.disp[k8]++
					addr = regs[a8].Val() + uimm8
					if addr >= m.limit[ri8] {
						return m.tRaise(pc8, kOver8, throw, tb8, tSkipStSt), steps + 1
					}
					if addr >= uint64(len(mem)) {
						return m.tStoreErr(pc8, addr), steps
					}
					mem[addr] = regs[b8]
					m.st.Touch(addr)
					steps += 2
					addr = regs[a8b].Val() + uimm8b
					if addr >= m.limit[ri8b] {
						return m.tRaise(pc8+1, kOver8b, throw, tb8, tSkipNone), steps
					}
					if addr >= uint64(len(mem)) {
						return m.tStoreErr(pc8+1, addr), steps
					}
					mem[addr] = regs[d8b]
					m.st.Touch(addr)
					m.ctr.disp[k9]++
					regs[d9] = w9
					steps += 2
					addr = regs[a9b].Val() + uimm9b
					if addr >= m.limit[ri9b] {
						return m.tRaise(pc9+1, kOver9b, throw, tb9, tSkipNone), steps
					}
					if addr >= uint64(len(mem)) {
						return m.tStoreErr(pc9+1, addr), steps
					}
					mem[addr] = regs[d9b]
					m.st.Touch(addr)
					m.ctr.disp[k10]++
					addr = regs[a10].Val() + uimm10
					if addr >= m.limit[ri10] {
						return m.tRaise(pc10, kOver10, throw, tb10, tSkipStSt), steps + 1
					}
					if addr >= uint64(len(mem)) {
						return m.tStoreErr(pc10, addr), steps
					}
					mem[addr] = regs[b10]
					m.st.Touch(addr)
					steps += 2
					addr = regs[a10b].Val() + uimm10b
					if addr >= m.limit[ri10b] {
						return m.tRaise(pc10+1, kOver10b, throw, tb10, tSkipNone), steps
					}
					if addr >= uint64(len(mem)) {
						return m.tStoreErr(pc10+1, addr), steps
					}
					mem[addr] = regs[d10b]
					m.st.Touch(addr)
					steps++
					m.ctr.disp[k11]++
					addr = regs[a11].Val() + uimm11
					if addr >= m.limit[ri11] {
						return m.tRaise(pc11, kOver11, throw, tb11, tSkipNone), steps
					}
					if addr >= uint64(len(mem)) {
						return m.tStoreErr(pc11, addr), steps
					}
					mem[addr] = regs[b11]
					m.st.Touch(addr)
					steps++
					m.ctr.disp[k12]++
					regs[d12] = regs[a12]
					steps++
					m.ctr.disp[k13]++
					if jback {
						m.tpoll--
						if m.tpoll <= 0 {
							m.tpoll = m.pollEvery()
							if err := m.pollCheck(pc13); err != nil {
								m.terr = err
								return nil, steps
							}
						}
					}
					steps++
					m.ctr.disp[k14]++
					regs[d14] = regs[a14]
					return fall14, steps
				}
			}
		}
	}

	// S4 — load tail: two double loads, a load, then the jump and, at its landing slot, a
	// move and a tag branch (taken or not, both exits are exact).
	if dbgSuperMask&(1<<3) != 0 {
		if at(i+0) == exec.XFLdLd && at(i+1) == exec.XFLdLd && isLd(at(i+2)) && at(i+3) == exec.XJmp {
			t := int(ops[i+3].Target)
			if t >= 0 && t+1 < n && isMov(at(t)) && isBrTag(at(t+1)) && t != i+3 {
				op0 := &ops[i+0]
				op1 := &ops[i+1]
				op2 := &ops[i+2]
				opj := &ops[i+3]
				opm, opb := &ops[t], &ops[t+1]
				jback := t <= i+3
				neb := opb.Code == exec.XBrTagNe
				tgtb, tbackb := targetOf(t + 1)
				fallb := fallTop(t + 1)
				d0, a0, b0 := uint8(op0.D), uint8(op0.A), uint8(op0.B)
				d0b, a0b := uint8(op0.D2), uint8(op0.A2)
				uimm0, uimm0b := uint64(op0.Imm), uint64(op0.Imm2)
				w0, tag0 := op0.W, op0.Tag
				ri0, ri0b := op0.Region, op0.Region2
				kOver0, kOver0b := overflowKind(ri0), overflowKind(ri0b)
				imm0, cond0 := op0.Imm, op0.Cond
				pc0, k0 := int(op0.PC), op0.Code
				_ = pc0
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d0, a0, b0, d0b, a0b, uimm0, uimm0b, w0, tag0, ri0, ri0b, kOver0, kOver0b, imm0, cond0
				d1, a1, b1 := uint8(op1.D), uint8(op1.A), uint8(op1.B)
				d1b, a1b := uint8(op1.D2), uint8(op1.A2)
				uimm1, uimm1b := uint64(op1.Imm), uint64(op1.Imm2)
				w1, tag1 := op1.W, op1.Tag
				ri1, ri1b := op1.Region, op1.Region2
				kOver1, kOver1b := overflowKind(ri1), overflowKind(ri1b)
				imm1, cond1 := op1.Imm, op1.Cond
				pc1, k1 := int(op1.PC), op1.Code
				_ = pc1
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d1, a1, b1, d1b, a1b, uimm1, uimm1b, w1, tag1, ri1, ri1b, kOver1, kOver1b, imm1, cond1
				d2, a2, b2 := uint8(op2.D), uint8(op2.A), uint8(op2.B)
				d2b, a2b := uint8(op2.D2), uint8(op2.A2)
				uimm2, uimm2b := uint64(op2.Imm), uint64(op2.Imm2)
				w2, tag2 := op2.W, op2.Tag
				ri2, ri2b := op2.Region, op2.Region2
				kOver2, kOver2b := overflowKind(ri2), overflowKind(ri2b)
				imm2, cond2 := op2.Imm, op2.Cond
				pc2, k2 := int(op2.PC), op2.Code
				_ = pc2
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d2, a2, b2, d2b, a2b, uimm2, uimm2b, w2, tag2, ri2, ri2b, kOver2, kOver2b, imm2, cond2
				dj, aj, bj := uint8(opj.D), uint8(opj.A), uint8(opj.B)
				djb, ajb := uint8(opj.D2), uint8(opj.A2)
				uimmj, uimmjb := uint64(opj.Imm), uint64(opj.Imm2)
				wj, tagj := opj.W, opj.Tag
				rij, rijb := opj.Region, opj.Region2
				kOverj, kOverjb := overflowKind(rij), overflowKind(rijb)
				immj, condj := opj.Imm, opj.Cond
				pcj, kj := int(opj.PC), opj.Code
				_ = pcj
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = dj, aj, bj, djb, ajb, uimmj, uimmjb, wj, tagj, rij, rijb, kOverj, kOverjb, immj, condj
				dm, am, bm := uint8(opm.D), uint8(opm.A), uint8(opm.B)
				dmb, amb := uint8(opm.D2), uint8(opm.A2)
				uimmm, uimmmb := uint64(opm.Imm), uint64(opm.Imm2)
				wm, tagm := opm.W, opm.Tag
				rim, rimb := opm.Region, opm.Region2
				kOverm, kOvermb := overflowKind(rim), overflowKind(rimb)
				immm, condm := opm.Imm, opm.Cond
				pcm, km := int(opm.PC), opm.Code
				_ = pcm
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = dm, am, bm, dmb, amb, uimmm, uimmmb, wm, tagm, rim, rimb, kOverm, kOvermb, immm, condm
				db, ab, bb := uint8(opb.D), uint8(opb.A), uint8(opb.B)
				dbb, abb := uint8(opb.D2), uint8(opb.A2)
				uimmb, uimmbb := uint64(opb.Imm), uint64(opb.Imm2)
				wb, tagb := opb.W, opb.Tag
				rib, ribb := opb.Region, opb.Region2
				kOverb, kOverbb := overflowKind(rib), overflowKind(ribb)
				immb, condb := opb.Imm, opb.Cond
				pcb, kb := int(opb.PC), opb.Code
				_ = pcb
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = db, ab, bb, dbb, abb, uimmb, uimmbb, wb, tagb, rib, ribb, kOverb, kOverbb, immb, condb
				return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
					if steps+8 > tmax {
						return gen1, steps
					}
					m.ctr.disp[k0]++
					addr := regs[a0].Val() + uimm0
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pc0, addr), steps
					}
					regs[d0] = mem[addr]
					steps += 2
					addr = regs[a0b].Val() + uimm0b
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pc0+1, addr), steps
					}
					regs[d0b] = mem[addr]
					m.ctr.disp[k1]++
					addr = regs[a1].Val() + uimm1
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pc1, addr), steps
					}
					regs[d1] = mem[addr]
					steps += 2
					addr = regs[a1b].Val() + uimm1b
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pc1+1, addr), steps
					}
					regs[d1b] = mem[addr]
					steps++
					m.ctr.disp[k2]++
					addr = regs[a2].Val() + uimm2
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pc2, addr), steps
					}
					regs[d2] = mem[addr]
					steps++
					m.ctr.disp[kj]++
					if jback {
						m.tpoll--
						if m.tpoll <= 0 {
							m.tpoll = m.pollEvery()
							if err := m.pollCheck(pcj); err != nil {
								m.terr = err
								return nil, steps
							}
						}
					}
					steps++
					m.ctr.disp[km]++
					regs[dm] = regs[am]
					steps++
					m.ctr.disp[kb]++
					if (regs[ab].Tag() == tagb) == !neb {
						if tbackb {
							return m.tEdge(pcb, tgtb), steps
						}
						return tgtb, steps
					}
					return fallb, steps
				}
			}
		}
	}

	// S5 — load tail: a double load, a load, a move-imm+store, then the jump and, at its landing slot, a
	// move and a tag branch (taken or not, both exits are exact).
	if dbgSuperMask&(1<<4) != 0 {
		if at(i+0) == exec.XFLdLd && isLd(at(i+1)) && at(i+2) == exec.XFMovISt && at(i+3) == exec.XJmp {
			t := int(ops[i+3].Target)
			if t >= 0 && t+1 < n && isMov(at(t)) && isBrTag(at(t+1)) && t != i+3 {
				op0 := &ops[i+0]
				op1 := &ops[i+1]
				op2 := &ops[i+2]
				opj := &ops[i+3]
				opm, opb := &ops[t], &ops[t+1]
				jback := t <= i+3
				neb := opb.Code == exec.XBrTagNe
				tgtb, tbackb := targetOf(t + 1)
				fallb := fallTop(t + 1)
				d0, a0, b0 := uint8(op0.D), uint8(op0.A), uint8(op0.B)
				d0b, a0b := uint8(op0.D2), uint8(op0.A2)
				uimm0, uimm0b := uint64(op0.Imm), uint64(op0.Imm2)
				w0, tag0 := op0.W, op0.Tag
				ri0, ri0b := op0.Region, op0.Region2
				kOver0, kOver0b := overflowKind(ri0), overflowKind(ri0b)
				imm0, cond0 := op0.Imm, op0.Cond
				pc0, k0 := int(op0.PC), op0.Code
				_ = pc0
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d0, a0, b0, d0b, a0b, uimm0, uimm0b, w0, tag0, ri0, ri0b, kOver0, kOver0b, imm0, cond0
				d1, a1, b1 := uint8(op1.D), uint8(op1.A), uint8(op1.B)
				d1b, a1b := uint8(op1.D2), uint8(op1.A2)
				uimm1, uimm1b := uint64(op1.Imm), uint64(op1.Imm2)
				w1, tag1 := op1.W, op1.Tag
				ri1, ri1b := op1.Region, op1.Region2
				kOver1, kOver1b := overflowKind(ri1), overflowKind(ri1b)
				imm1, cond1 := op1.Imm, op1.Cond
				pc1, k1 := int(op1.PC), op1.Code
				_ = pc1
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d1, a1, b1, d1b, a1b, uimm1, uimm1b, w1, tag1, ri1, ri1b, kOver1, kOver1b, imm1, cond1
				d2, a2, b2 := uint8(op2.D), uint8(op2.A), uint8(op2.B)
				d2b, a2b := uint8(op2.D2), uint8(op2.A2)
				uimm2, uimm2b := uint64(op2.Imm), uint64(op2.Imm2)
				w2, tag2 := op2.W, op2.Tag
				ri2, ri2b := op2.Region, op2.Region2
				kOver2, kOver2b := overflowKind(ri2), overflowKind(ri2b)
				imm2, cond2 := op2.Imm, op2.Cond
				pc2, k2 := int(op2.PC), op2.Code
				_ = pc2
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d2, a2, b2, d2b, a2b, uimm2, uimm2b, w2, tag2, ri2, ri2b, kOver2, kOver2b, imm2, cond2
				dj, aj, bj := uint8(opj.D), uint8(opj.A), uint8(opj.B)
				djb, ajb := uint8(opj.D2), uint8(opj.A2)
				uimmj, uimmjb := uint64(opj.Imm), uint64(opj.Imm2)
				wj, tagj := opj.W, opj.Tag
				rij, rijb := opj.Region, opj.Region2
				kOverj, kOverjb := overflowKind(rij), overflowKind(rijb)
				immj, condj := opj.Imm, opj.Cond
				pcj, kj := int(opj.PC), opj.Code
				_ = pcj
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = dj, aj, bj, djb, ajb, uimmj, uimmjb, wj, tagj, rij, rijb, kOverj, kOverjb, immj, condj
				dm, am, bm := uint8(opm.D), uint8(opm.A), uint8(opm.B)
				dmb, amb := uint8(opm.D2), uint8(opm.A2)
				uimmm, uimmmb := uint64(opm.Imm), uint64(opm.Imm2)
				wm, tagm := opm.W, opm.Tag
				rim, rimb := opm.Region, opm.Region2
				kOverm, kOvermb := overflowKind(rim), overflowKind(rimb)
				immm, condm := opm.Imm, opm.Cond
				pcm, km := int(opm.PC), opm.Code
				_ = pcm
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = dm, am, bm, dmb, amb, uimmm, uimmmb, wm, tagm, rim, rimb, kOverm, kOvermb, immm, condm
				db, ab, bb := uint8(opb.D), uint8(opb.A), uint8(opb.B)
				dbb, abb := uint8(opb.D2), uint8(opb.A2)
				uimmb, uimmbb := uint64(opb.Imm), uint64(opb.Imm2)
				wb, tagb := opb.W, opb.Tag
				rib, ribb := opb.Region, opb.Region2
				kOverb, kOverbb := overflowKind(rib), overflowKind(ribb)
				immb, condb := opb.Imm, opb.Cond
				pcb, kb := int(opb.PC), opb.Code
				_ = pcb
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = db, ab, bb, dbb, abb, uimmb, uimmbb, wb, tagb, rib, ribb, kOverb, kOverbb, immb, condb
				tb2 := throwBack(i + 2)
				_ = tb2
				return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
					if steps+8 > tmax {
						return gen1, steps
					}
					m.ctr.disp[k0]++
					addr := regs[a0].Val() + uimm0
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pc0, addr), steps
					}
					regs[d0] = mem[addr]
					steps += 2
					addr = regs[a0b].Val() + uimm0b
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pc0+1, addr), steps
					}
					regs[d0b] = mem[addr]
					steps++
					m.ctr.disp[k1]++
					addr = regs[a1].Val() + uimm1
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pc1, addr), steps
					}
					regs[d1] = mem[addr]
					m.ctr.disp[k2]++
					regs[d2] = w2
					steps += 2
					addr = regs[a2b].Val() + uimm2b
					if addr >= m.limit[ri2b] {
						return m.tRaise(pc2+1, kOver2b, throw, tb2, tSkipNone), steps
					}
					if addr >= uint64(len(mem)) {
						return m.tStoreErr(pc2+1, addr), steps
					}
					mem[addr] = regs[d2b]
					m.st.Touch(addr)
					steps++
					m.ctr.disp[kj]++
					if jback {
						m.tpoll--
						if m.tpoll <= 0 {
							m.tpoll = m.pollEvery()
							if err := m.pollCheck(pcj); err != nil {
								m.terr = err
								return nil, steps
							}
						}
					}
					steps++
					m.ctr.disp[km]++
					regs[dm] = regs[am]
					steps++
					m.ctr.disp[kb]++
					if (regs[ab].Tag() == tagb) == !neb {
						if tbackb {
							return m.tEdge(pcb, tgtb), steps
						}
						return tgtb, steps
					}
					return fallb, steps
				}
			}
		}
	}

	// S15 — deref ladder: a six rung whose continuation heads two seven
	// rungs; the whole descent runs in one dispatch.
	if dbgSuperMask&(1<<14) != 0 {
		if c0 := sixAt(i); c0 >= 0 {
			if c1 := sevenAt(c0); c1 >= 0 {
				if c2 := sevenAt(c1); c2 >= 0 {
					exit2 := &tops[c2]
					exitA := &tops[i+1]
					exitB := &tops[c0+3]
					exitC := &tops[c1+3]
					dra0, ara0 := uint8((&ops[i+0]).D), uint8((&ops[i+0]).A)
					dra0b, ara0b := uint8((&ops[i+0]).D2), uint8((&ops[i+0]).A2)
					uimmra0 := uint64((&ops[i+0]).Imm)
					wra0, tagra0 := (&ops[i+0]).W, (&ops[i+0]).Tag
					pcra0, kra0 := int((&ops[i+0]).PC), (&ops[i+0]).Code
					_, _, _, _, _, _, _ = dra0, ara0, dra0b, ara0b, uimmra0, wra0, tagra0
					_ = pcra0
					dra1, ara1 := uint8((&ops[i+1]).D), uint8((&ops[i+1]).A)
					dra1b, ara1b := uint8((&ops[i+1]).D2), uint8((&ops[i+1]).A2)
					uimmra1 := uint64((&ops[i+1]).Imm)
					wra1, tagra1 := (&ops[i+1]).W, (&ops[i+1]).Tag
					pcra1, kra1 := int((&ops[i+1]).PC), (&ops[i+1]).Code
					_, _, _, _, _, _, _ = dra1, ara1, dra1b, ara1b, uimmra1, wra1, tagra1
					_ = pcra1
					dra2, ara2 := uint8((&ops[i+2]).D), uint8((&ops[i+2]).A)
					dra2b, ara2b := uint8((&ops[i+2]).D2), uint8((&ops[i+2]).A2)
					uimmra2 := uint64((&ops[i+2]).Imm)
					wra2, tagra2 := (&ops[i+2]).W, (&ops[i+2]).Tag
					pcra2, kra2 := int((&ops[i+2]).PC), (&ops[i+2]).Code
					_, _, _, _, _, _, _ = dra2, ara2, dra2b, ara2b, uimmra2, wra2, tagra2
					_ = pcra2
					nera0 := ops[i].Code == exec.XBrTagNe
					wantEqra1 := ops[i+1].Code == exec.XFLdBrCmpEqR
					drb0, arb0 := uint8((&ops[c0+0]).D), uint8((&ops[c0+0]).A)
					drb0b, arb0b := uint8((&ops[c0+0]).D2), uint8((&ops[c0+0]).A2)
					uimmrb0 := uint64((&ops[c0+0]).Imm)
					wrb0, tagrb0 := (&ops[c0+0]).W, (&ops[c0+0]).Tag
					pcrb0, krb0 := int((&ops[c0+0]).PC), (&ops[c0+0]).Code
					_, _, _, _, _, _, _ = drb0, arb0, drb0b, arb0b, uimmrb0, wrb0, tagrb0
					_ = pcrb0
					drb1, arb1 := uint8((&ops[c0+1]).D), uint8((&ops[c0+1]).A)
					drb1b, arb1b := uint8((&ops[c0+1]).D2), uint8((&ops[c0+1]).A2)
					uimmrb1 := uint64((&ops[c0+1]).Imm)
					wrb1, tagrb1 := (&ops[c0+1]).W, (&ops[c0+1]).Tag
					pcrb1, krb1 := int((&ops[c0+1]).PC), (&ops[c0+1]).Code
					_, _, _, _, _, _, _ = drb1, arb1, drb1b, arb1b, uimmrb1, wrb1, tagrb1
					_ = pcrb1
					drb2, arb2 := uint8((&ops[c0+2]).D), uint8((&ops[c0+2]).A)
					drb2b, arb2b := uint8((&ops[c0+2]).D2), uint8((&ops[c0+2]).A2)
					uimmrb2 := uint64((&ops[c0+2]).Imm)
					wrb2, tagrb2 := (&ops[c0+2]).W, (&ops[c0+2]).Tag
					pcrb2, krb2 := int((&ops[c0+2]).PC), (&ops[c0+2]).Code
					_, _, _, _, _, _, _ = drb2, arb2, drb2b, arb2b, uimmrb2, wrb2, tagrb2
					_ = pcrb2
					drb3, arb3 := uint8((&ops[c0+3]).D), uint8((&ops[c0+3]).A)
					drb3b, arb3b := uint8((&ops[c0+3]).D2), uint8((&ops[c0+3]).A2)
					uimmrb3 := uint64((&ops[c0+3]).Imm)
					wrb3, tagrb3 := (&ops[c0+3]).W, (&ops[c0+3]).Tag
					pcrb3, krb3 := int((&ops[c0+3]).PC), (&ops[c0+3]).Code
					_, _, _, _, _, _, _ = drb3, arb3, drb3b, arb3b, uimmrb3, wrb3, tagrb3
					_ = pcrb3
					drb4, arb4 := uint8((&ops[c0+4]).D), uint8((&ops[c0+4]).A)
					drb4b, arb4b := uint8((&ops[c0+4]).D2), uint8((&ops[c0+4]).A2)
					uimmrb4 := uint64((&ops[c0+4]).Imm)
					wrb4, tagrb4 := (&ops[c0+4]).W, (&ops[c0+4]).Tag
					pcrb4, krb4 := int((&ops[c0+4]).PC), (&ops[c0+4]).Code
					_, _, _, _, _, _, _ = drb4, arb4, drb4b, arb4b, uimmrb4, wrb4, tagrb4
					_ = pcrb4
					nerb0 := ops[c0].Code == exec.XBrTagNe
					tgtrb0, tbackrb0 := targetOf(c0)
					nerb2 := ops[c0+2].Code == exec.XBrTagNe
					wantEqrb3 := ops[c0+3].Code == exec.XFLdBrCmpEqR
					drc0, arc0 := uint8((&ops[c1+0]).D), uint8((&ops[c1+0]).A)
					drc0b, arc0b := uint8((&ops[c1+0]).D2), uint8((&ops[c1+0]).A2)
					uimmrc0 := uint64((&ops[c1+0]).Imm)
					wrc0, tagrc0 := (&ops[c1+0]).W, (&ops[c1+0]).Tag
					pcrc0, krc0 := int((&ops[c1+0]).PC), (&ops[c1+0]).Code
					_, _, _, _, _, _, _ = drc0, arc0, drc0b, arc0b, uimmrc0, wrc0, tagrc0
					_ = pcrc0
					drc1, arc1 := uint8((&ops[c1+1]).D), uint8((&ops[c1+1]).A)
					drc1b, arc1b := uint8((&ops[c1+1]).D2), uint8((&ops[c1+1]).A2)
					uimmrc1 := uint64((&ops[c1+1]).Imm)
					wrc1, tagrc1 := (&ops[c1+1]).W, (&ops[c1+1]).Tag
					pcrc1, krc1 := int((&ops[c1+1]).PC), (&ops[c1+1]).Code
					_, _, _, _, _, _, _ = drc1, arc1, drc1b, arc1b, uimmrc1, wrc1, tagrc1
					_ = pcrc1
					drc2, arc2 := uint8((&ops[c1+2]).D), uint8((&ops[c1+2]).A)
					drc2b, arc2b := uint8((&ops[c1+2]).D2), uint8((&ops[c1+2]).A2)
					uimmrc2 := uint64((&ops[c1+2]).Imm)
					wrc2, tagrc2 := (&ops[c1+2]).W, (&ops[c1+2]).Tag
					pcrc2, krc2 := int((&ops[c1+2]).PC), (&ops[c1+2]).Code
					_, _, _, _, _, _, _ = drc2, arc2, drc2b, arc2b, uimmrc2, wrc2, tagrc2
					_ = pcrc2
					drc3, arc3 := uint8((&ops[c1+3]).D), uint8((&ops[c1+3]).A)
					drc3b, arc3b := uint8((&ops[c1+3]).D2), uint8((&ops[c1+3]).A2)
					uimmrc3 := uint64((&ops[c1+3]).Imm)
					wrc3, tagrc3 := (&ops[c1+3]).W, (&ops[c1+3]).Tag
					pcrc3, krc3 := int((&ops[c1+3]).PC), (&ops[c1+3]).Code
					_, _, _, _, _, _, _ = drc3, arc3, drc3b, arc3b, uimmrc3, wrc3, tagrc3
					_ = pcrc3
					drc4, arc4 := uint8((&ops[c1+4]).D), uint8((&ops[c1+4]).A)
					drc4b, arc4b := uint8((&ops[c1+4]).D2), uint8((&ops[c1+4]).A2)
					uimmrc4 := uint64((&ops[c1+4]).Imm)
					wrc4, tagrc4 := (&ops[c1+4]).W, (&ops[c1+4]).Tag
					pcrc4, krc4 := int((&ops[c1+4]).PC), (&ops[c1+4]).Code
					_, _, _, _, _, _, _ = drc4, arc4, drc4b, arc4b, uimmrc4, wrc4, tagrc4
					_ = pcrc4
					nerc0 := ops[c1].Code == exec.XBrTagNe
					tgtrc0, tbackrc0 := targetOf(c1)
					nerc2 := ops[c1+2].Code == exec.XBrTagNe
					wantEqrc3 := ops[c1+3].Code == exec.XFLdBrCmpEqR
					return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
						if steps+22 > tmax {
							return gen1, steps
						}
						var addr uint64
						steps++
						m.ctr.disp[kra0]++
						if (regs[ara0].Tag() == tagra0) == !nera0 {
							goto ladA
						}
						m.ctr.disp[kra1]++
						addr = regs[ara1].Val() + uimmra1
						if addr >= uint64(len(mem)) {
							return m.tLoadErr(pcra1, addr), steps
						}
						regs[dra1] = mem[addr]
						steps += 2
						if (regs[dra1b] == regs[ara1b]) == wantEqra1 {
							goto ladA
						}
						m.ctr.disp[kra2]++
						regs[dra2] = regs[ara2]
						steps += 2
						m.tpoll--
						if m.tpoll <= 0 {
							m.tpoll = m.pollEvery()
							if err := m.pollCheck(pcra2); err != nil {
								m.terr = err
								return nil, steps
							}
						}
						steps++
						m.ctr.disp[kra0]++
						if (regs[ara0].Tag() == tagra0) == !nera0 {
							goto ladA
						}
						return exitA, steps
					ladA:
						steps++
						m.ctr.disp[krb0]++
						if (regs[arb0].Tag() == tagrb0) == !nerb0 {
							if tbackrb0 {
								return m.tEdge(pcrb0, tgtrb0), steps
							}
							return tgtrb0, steps
						}
						steps++
						m.ctr.disp[krb1]++
						regs[drb1] = regs[arb1]
						steps++
						m.ctr.disp[krb2]++
						if (regs[arb2].Tag() == tagrb2) == !nerb2 {
							goto ladB
						}
						m.ctr.disp[krb3]++
						addr = regs[arb3].Val() + uimmrb3
						if addr >= uint64(len(mem)) {
							return m.tLoadErr(pcrb3, addr), steps
						}
						regs[drb3] = mem[addr]
						steps += 2
						if (regs[drb3b] == regs[arb3b]) == wantEqrb3 {
							goto ladB
						}
						m.ctr.disp[krb4]++
						regs[drb4] = regs[arb4]
						steps += 2
						m.tpoll--
						if m.tpoll <= 0 {
							m.tpoll = m.pollEvery()
							if err := m.pollCheck(pcrb4); err != nil {
								m.terr = err
								return nil, steps
							}
						}
						steps++
						m.ctr.disp[krb2]++
						if (regs[arb2].Tag() == tagrb2) == !nerb2 {
							goto ladB
						}
						return exitB, steps
					ladB:
						steps++
						m.ctr.disp[krc0]++
						if (regs[arc0].Tag() == tagrc0) == !nerc0 {
							if tbackrc0 {
								return m.tEdge(pcrc0, tgtrc0), steps
							}
							return tgtrc0, steps
						}
						steps++
						m.ctr.disp[krc1]++
						regs[drc1] = regs[arc1]
						steps++
						m.ctr.disp[krc2]++
						if (regs[arc2].Tag() == tagrc2) == !nerc2 {
							goto ladC
						}
						m.ctr.disp[krc3]++
						addr = regs[arc3].Val() + uimmrc3
						if addr >= uint64(len(mem)) {
							return m.tLoadErr(pcrc3, addr), steps
						}
						regs[drc3] = mem[addr]
						steps += 2
						if (regs[drc3b] == regs[arc3b]) == wantEqrc3 {
							goto ladC
						}
						m.ctr.disp[krc4]++
						regs[drc4] = regs[arc4]
						steps += 2
						m.tpoll--
						if m.tpoll <= 0 {
							m.tpoll = m.pollEvery()
							if err := m.pollCheck(pcrc4); err != nil {
								m.terr = err
								return nil, steps
							}
						}
						steps++
						m.ctr.disp[krc2]++
						if (regs[arc2].Tag() == tagrc2) == !nerc2 {
							goto ladC
						}
						return exitC, steps
					ladC:
						return exit2, steps
					}
				}
			}
		}
	}

	// S16 — short ladder: two chained six rungs, with an optional leading
	// move-immediate.
	if dbgSuperMask&(1<<15) != 0 {
		movPfx := at(i) == exec.XMovI
		r0 := i
		if movPfx {
			r0 = i + 1
		}
		if c0 := sixAt(r0); c0 >= 0 {
			if c1 := sixAt(c0); c1 >= 0 && sevenAt(c0) < 0 {
				exit2 := &tops[c1]
				exitA := &tops[r0+1]
				exitB := &tops[c0+1]
				op0 := &ops[i]
				d0, w0, k0 := uint8(op0.D), op0.W, op0.Code
				_, _, _ = d0, w0, k0
				dra0, ara0 := uint8((&ops[r0+0]).D), uint8((&ops[r0+0]).A)
				dra0b, ara0b := uint8((&ops[r0+0]).D2), uint8((&ops[r0+0]).A2)
				uimmra0 := uint64((&ops[r0+0]).Imm)
				wra0, tagra0 := (&ops[r0+0]).W, (&ops[r0+0]).Tag
				pcra0, kra0 := int((&ops[r0+0]).PC), (&ops[r0+0]).Code
				_, _, _, _, _, _, _ = dra0, ara0, dra0b, ara0b, uimmra0, wra0, tagra0
				_ = pcra0
				dra1, ara1 := uint8((&ops[r0+1]).D), uint8((&ops[r0+1]).A)
				dra1b, ara1b := uint8((&ops[r0+1]).D2), uint8((&ops[r0+1]).A2)
				uimmra1 := uint64((&ops[r0+1]).Imm)
				wra1, tagra1 := (&ops[r0+1]).W, (&ops[r0+1]).Tag
				pcra1, kra1 := int((&ops[r0+1]).PC), (&ops[r0+1]).Code
				_, _, _, _, _, _, _ = dra1, ara1, dra1b, ara1b, uimmra1, wra1, tagra1
				_ = pcra1
				dra2, ara2 := uint8((&ops[r0+2]).D), uint8((&ops[r0+2]).A)
				dra2b, ara2b := uint8((&ops[r0+2]).D2), uint8((&ops[r0+2]).A2)
				uimmra2 := uint64((&ops[r0+2]).Imm)
				wra2, tagra2 := (&ops[r0+2]).W, (&ops[r0+2]).Tag
				pcra2, kra2 := int((&ops[r0+2]).PC), (&ops[r0+2]).Code
				_, _, _, _, _, _, _ = dra2, ara2, dra2b, ara2b, uimmra2, wra2, tagra2
				_ = pcra2
				nera0 := ops[r0].Code == exec.XBrTagNe
				wantEqra1 := ops[r0+1].Code == exec.XFLdBrCmpEqR
				drb0, arb0 := uint8((&ops[c0+0]).D), uint8((&ops[c0+0]).A)
				drb0b, arb0b := uint8((&ops[c0+0]).D2), uint8((&ops[c0+0]).A2)
				uimmrb0 := uint64((&ops[c0+0]).Imm)
				wrb0, tagrb0 := (&ops[c0+0]).W, (&ops[c0+0]).Tag
				pcrb0, krb0 := int((&ops[c0+0]).PC), (&ops[c0+0]).Code
				_, _, _, _, _, _, _ = drb0, arb0, drb0b, arb0b, uimmrb0, wrb0, tagrb0
				_ = pcrb0
				drb1, arb1 := uint8((&ops[c0+1]).D), uint8((&ops[c0+1]).A)
				drb1b, arb1b := uint8((&ops[c0+1]).D2), uint8((&ops[c0+1]).A2)
				uimmrb1 := uint64((&ops[c0+1]).Imm)
				wrb1, tagrb1 := (&ops[c0+1]).W, (&ops[c0+1]).Tag
				pcrb1, krb1 := int((&ops[c0+1]).PC), (&ops[c0+1]).Code
				_, _, _, _, _, _, _ = drb1, arb1, drb1b, arb1b, uimmrb1, wrb1, tagrb1
				_ = pcrb1
				drb2, arb2 := uint8((&ops[c0+2]).D), uint8((&ops[c0+2]).A)
				drb2b, arb2b := uint8((&ops[c0+2]).D2), uint8((&ops[c0+2]).A2)
				uimmrb2 := uint64((&ops[c0+2]).Imm)
				wrb2, tagrb2 := (&ops[c0+2]).W, (&ops[c0+2]).Tag
				pcrb2, krb2 := int((&ops[c0+2]).PC), (&ops[c0+2]).Code
				_, _, _, _, _, _, _ = drb2, arb2, drb2b, arb2b, uimmrb2, wrb2, tagrb2
				_ = pcrb2
				nerb0 := ops[c0].Code == exec.XBrTagNe
				wantEqrb1 := ops[c0+1].Code == exec.XFLdBrCmpEqR
				return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
					if steps+13 > tmax {
						return gen1, steps
					}
					var addr uint64
					if movPfx {
						steps++
						m.ctr.disp[k0]++
						regs[d0] = w0
					}
					steps++
					m.ctr.disp[kra0]++
					if (regs[ara0].Tag() == tagra0) == !nera0 {
						goto sladA
					}
					m.ctr.disp[kra1]++
					addr = regs[ara1].Val() + uimmra1
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pcra1, addr), steps
					}
					regs[dra1] = mem[addr]
					steps += 2
					if (regs[dra1b] == regs[ara1b]) == wantEqra1 {
						goto sladA
					}
					m.ctr.disp[kra2]++
					regs[dra2] = regs[ara2]
					steps += 2
					m.tpoll--
					if m.tpoll <= 0 {
						m.tpoll = m.pollEvery()
						if err := m.pollCheck(pcra2); err != nil {
							m.terr = err
							return nil, steps
						}
					}
					steps++
					m.ctr.disp[kra0]++
					if (regs[ara0].Tag() == tagra0) == !nera0 {
						goto sladA
					}
					return exitA, steps
				sladA:
					steps++
					m.ctr.disp[krb0]++
					if (regs[arb0].Tag() == tagrb0) == !nerb0 {
						goto sladB
					}
					m.ctr.disp[krb1]++
					addr = regs[arb1].Val() + uimmrb1
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pcrb1, addr), steps
					}
					regs[drb1] = mem[addr]
					steps += 2
					if (regs[drb1b] == regs[arb1b]) == wantEqrb1 {
						goto sladB
					}
					m.ctr.disp[krb2]++
					regs[drb2] = regs[arb2]
					steps += 2
					m.tpoll--
					if m.tpoll <= 0 {
						m.tpoll = m.pollEvery()
						if err := m.pollCheck(pcrb2); err != nil {
							m.terr = err
							return nil, steps
						}
					}
					steps++
					m.ctr.disp[krb0]++
					if (regs[arb0].Tag() == tagrb0) == !nerb0 {
						goto sladB
					}
					return exitB, steps
				sladB:
					return exit2, steps
				}
			}
		}
	}

	// S6 — dereference-loop step: a tag branch, a load+compare branch,
	// and a move+jump whose target is the branch itself; the branch is
	// re-inlined once after the back jump (with the poll in between), so
	// the common bound-after-one-hop case runs in a single dispatch.
	// Longer chains exit into the loop's own slots and re-enter.
	if dbgSuperMask&(1<<5) != 0 {
		if isBrTag(at(i)) && isFLdBr(at(i+1)) && at(i+2) == exec.XFMovJmp &&
			int(ops[i+2].Target) == i {
			op0, op1, op2 := &ops[i], &ops[i+1], &ops[i+2]
			ne0 := op0.Code == exec.XBrTagNe
			wantEq1 := op1.Code == exec.XFLdBrCmpEqR
			tgt0, tback0 := targetOf(i)
			tgt1, tback1 := targetOf(i + 1)
			fall0 := fallTop(i)
			d0, a0, b0 := uint8(op0.D), uint8(op0.A), uint8(op0.B)
			d0b, a0b := uint8(op0.D2), uint8(op0.A2)
			uimm0, uimm0b := uint64(op0.Imm), uint64(op0.Imm2)
			w0, tag0 := op0.W, op0.Tag
			ri0, ri0b := op0.Region, op0.Region2
			kOver0, kOver0b := overflowKind(ri0), overflowKind(ri0b)
			imm0, cond0 := op0.Imm, op0.Cond
			pc0, k0 := int(op0.PC), op0.Code
			_ = pc0
			_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d0, a0, b0, d0b, a0b, uimm0, uimm0b, w0, tag0, ri0, ri0b, kOver0, kOver0b, imm0, cond0
			d1, a1, b1 := uint8(op1.D), uint8(op1.A), uint8(op1.B)
			d1b, a1b := uint8(op1.D2), uint8(op1.A2)
			uimm1, uimm1b := uint64(op1.Imm), uint64(op1.Imm2)
			w1, tag1 := op1.W, op1.Tag
			ri1, ri1b := op1.Region, op1.Region2
			kOver1, kOver1b := overflowKind(ri1), overflowKind(ri1b)
			imm1, cond1 := op1.Imm, op1.Cond
			pc1, k1 := int(op1.PC), op1.Code
			_ = pc1
			_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d1, a1, b1, d1b, a1b, uimm1, uimm1b, w1, tag1, ri1, ri1b, kOver1, kOver1b, imm1, cond1
			d2, a2, b2 := uint8(op2.D), uint8(op2.A), uint8(op2.B)
			d2b, a2b := uint8(op2.D2), uint8(op2.A2)
			uimm2, uimm2b := uint64(op2.Imm), uint64(op2.Imm2)
			w2, tag2 := op2.W, op2.Tag
			ri2, ri2b := op2.Region, op2.Region2
			kOver2, kOver2b := overflowKind(ri2), overflowKind(ri2b)
			imm2, cond2 := op2.Imm, op2.Cond
			pc2, k2 := int(op2.PC), op2.Code
			_ = pc2
			_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d2, a2, b2, d2b, a2b, uimm2, uimm2b, w2, tag2, ri2, ri2b, kOver2, kOver2b, imm2, cond2
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+6 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k0]++
				if (regs[a0].Tag() == tag0) == !ne0 {
					if tback0 {
						return m.tEdge(pc0, tgt0), steps
					}
					return tgt0, steps
				}
				m.ctr.disp[k1]++
				addr := regs[a1].Val() + uimm1
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc1, addr), steps
				}
				regs[d1] = mem[addr]
				steps += 2
				if (regs[d1b] == regs[a1b]) == wantEq1 {
					if tback1 {
						return m.tEdge(pc1, tgt1), steps
					}
					return tgt1, steps
				}
				m.ctr.disp[k2]++
				regs[d2] = regs[a2]
				steps += 2
				if true {
					m.tpoll--
					if m.tpoll <= 0 {
						m.tpoll = m.pollEvery()
						if err := m.pollCheck(pc2); err != nil {
							m.terr = err
							return nil, steps
						}
					}
				}
				steps++
				m.ctr.disp[k0]++
				if (regs[a0].Tag() == tag0) == !ne0 {
					if tback0 {
						return m.tEdge(pc0, tgt0), steps
					}
					return tgt0, steps
				}
				return fall0, steps
			}
		}
	}

	// S7 — guarded dereference step: a not-taken tag branch and a move in
	// front of an S6-shaped loop over the NEXT branch; the inner branch is
	// re-inlined once after the back jump.
	if dbgSuperMask&(1<<6) != 0 {
		if isBrTag(at(i)) && isMov(at(i+1)) && isBrTag(at(i+2)) && isFLdBr(at(i+3)) &&
			at(i+4) == exec.XFMovJmp && int(ops[i+4].Target) == i+2 {
			op0, op1, op2, op3, op4 := &ops[i], &ops[i+1], &ops[i+2], &ops[i+3], &ops[i+4]
			ne0 := op0.Code == exec.XBrTagNe
			ne2 := op2.Code == exec.XBrTagNe
			wantEq3 := op3.Code == exec.XFLdBrCmpEqR
			tgt0, tback0 := targetOf(i)
			tgt2, tback2 := targetOf(i + 2)
			tgt3, tback3 := targetOf(i + 3)
			fall2 := fallTop(i + 2)
			d0, a0, b0 := uint8(op0.D), uint8(op0.A), uint8(op0.B)
			d0b, a0b := uint8(op0.D2), uint8(op0.A2)
			uimm0, uimm0b := uint64(op0.Imm), uint64(op0.Imm2)
			w0, tag0 := op0.W, op0.Tag
			ri0, ri0b := op0.Region, op0.Region2
			kOver0, kOver0b := overflowKind(ri0), overflowKind(ri0b)
			imm0, cond0 := op0.Imm, op0.Cond
			pc0, k0 := int(op0.PC), op0.Code
			_ = pc0
			_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d0, a0, b0, d0b, a0b, uimm0, uimm0b, w0, tag0, ri0, ri0b, kOver0, kOver0b, imm0, cond0
			d1, a1, b1 := uint8(op1.D), uint8(op1.A), uint8(op1.B)
			d1b, a1b := uint8(op1.D2), uint8(op1.A2)
			uimm1, uimm1b := uint64(op1.Imm), uint64(op1.Imm2)
			w1, tag1 := op1.W, op1.Tag
			ri1, ri1b := op1.Region, op1.Region2
			kOver1, kOver1b := overflowKind(ri1), overflowKind(ri1b)
			imm1, cond1 := op1.Imm, op1.Cond
			pc1, k1 := int(op1.PC), op1.Code
			_ = pc1
			_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d1, a1, b1, d1b, a1b, uimm1, uimm1b, w1, tag1, ri1, ri1b, kOver1, kOver1b, imm1, cond1
			d2, a2, b2 := uint8(op2.D), uint8(op2.A), uint8(op2.B)
			d2b, a2b := uint8(op2.D2), uint8(op2.A2)
			uimm2, uimm2b := uint64(op2.Imm), uint64(op2.Imm2)
			w2, tag2 := op2.W, op2.Tag
			ri2, ri2b := op2.Region, op2.Region2
			kOver2, kOver2b := overflowKind(ri2), overflowKind(ri2b)
			imm2, cond2 := op2.Imm, op2.Cond
			pc2, k2 := int(op2.PC), op2.Code
			_ = pc2
			_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d2, a2, b2, d2b, a2b, uimm2, uimm2b, w2, tag2, ri2, ri2b, kOver2, kOver2b, imm2, cond2
			d3, a3, b3 := uint8(op3.D), uint8(op3.A), uint8(op3.B)
			d3b, a3b := uint8(op3.D2), uint8(op3.A2)
			uimm3, uimm3b := uint64(op3.Imm), uint64(op3.Imm2)
			w3, tag3 := op3.W, op3.Tag
			ri3, ri3b := op3.Region, op3.Region2
			kOver3, kOver3b := overflowKind(ri3), overflowKind(ri3b)
			imm3, cond3 := op3.Imm, op3.Cond
			pc3, k3 := int(op3.PC), op3.Code
			_ = pc3
			_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d3, a3, b3, d3b, a3b, uimm3, uimm3b, w3, tag3, ri3, ri3b, kOver3, kOver3b, imm3, cond3
			d4, a4, b4 := uint8(op4.D), uint8(op4.A), uint8(op4.B)
			d4b, a4b := uint8(op4.D2), uint8(op4.A2)
			uimm4, uimm4b := uint64(op4.Imm), uint64(op4.Imm2)
			w4, tag4 := op4.W, op4.Tag
			ri4, ri4b := op4.Region, op4.Region2
			kOver4, kOver4b := overflowKind(ri4), overflowKind(ri4b)
			imm4, cond4 := op4.Imm, op4.Cond
			pc4, k4 := int(op4.PC), op4.Code
			_ = pc4
			_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d4, a4, b4, d4b, a4b, uimm4, uimm4b, w4, tag4, ri4, ri4b, kOver4, kOver4b, imm4, cond4
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+8 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k0]++
				if (regs[a0].Tag() == tag0) == !ne0 {
					if tback0 {
						return m.tEdge(pc0, tgt0), steps
					}
					return tgt0, steps
				}
				steps++
				m.ctr.disp[k1]++
				regs[d1] = regs[a1]
				steps++
				m.ctr.disp[k2]++
				if (regs[a2].Tag() == tag2) == !ne2 {
					if tback2 {
						return m.tEdge(pc2, tgt2), steps
					}
					return tgt2, steps
				}
				m.ctr.disp[k3]++
				addr := regs[a3].Val() + uimm3
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc3, addr), steps
				}
				regs[d3] = mem[addr]
				steps += 2
				if (regs[d3b] == regs[a3b]) == wantEq3 {
					if tback3 {
						return m.tEdge(pc3, tgt3), steps
					}
					return tgt3, steps
				}
				m.ctr.disp[k4]++
				regs[d4] = regs[a4]
				steps += 2
				if true {
					m.tpoll--
					if m.tpoll <= 0 {
						m.tpoll = m.pollEvery()
						if err := m.pollCheck(pc4); err != nil {
							m.terr = err
							return nil, steps
						}
					}
				}
				steps++
				m.ctr.disp[k2]++
				if (regs[a2].Tag() == tag2) == !ne2 {
					if tback2 {
						return m.tEdge(pc2, tgt2), steps
					}
					return tgt2, steps
				}
				return fall2, steps
			}
		}
	}

	// S8 — move-guard loop: a tag branch, a move, and a move+jump back to
	// the branch, re-inlined once.
	if dbgSuperMask&(1<<7) != 0 {
		if isBrTag(at(i)) && isMov(at(i+1)) && at(i+2) == exec.XFMovJmp &&
			int(ops[i+2].Target) == i {
			op0, op1, op2 := &ops[i], &ops[i+1], &ops[i+2]
			ne0 := op0.Code == exec.XBrTagNe
			tgt0, tback0 := targetOf(i)
			fall0 := fallTop(i)
			d0, a0, b0 := uint8(op0.D), uint8(op0.A), uint8(op0.B)
			d0b, a0b := uint8(op0.D2), uint8(op0.A2)
			uimm0, uimm0b := uint64(op0.Imm), uint64(op0.Imm2)
			w0, tag0 := op0.W, op0.Tag
			ri0, ri0b := op0.Region, op0.Region2
			kOver0, kOver0b := overflowKind(ri0), overflowKind(ri0b)
			imm0, cond0 := op0.Imm, op0.Cond
			pc0, k0 := int(op0.PC), op0.Code
			_ = pc0
			_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d0, a0, b0, d0b, a0b, uimm0, uimm0b, w0, tag0, ri0, ri0b, kOver0, kOver0b, imm0, cond0
			d1, a1, b1 := uint8(op1.D), uint8(op1.A), uint8(op1.B)
			d1b, a1b := uint8(op1.D2), uint8(op1.A2)
			uimm1, uimm1b := uint64(op1.Imm), uint64(op1.Imm2)
			w1, tag1 := op1.W, op1.Tag
			ri1, ri1b := op1.Region, op1.Region2
			kOver1, kOver1b := overflowKind(ri1), overflowKind(ri1b)
			imm1, cond1 := op1.Imm, op1.Cond
			pc1, k1 := int(op1.PC), op1.Code
			_ = pc1
			_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d1, a1, b1, d1b, a1b, uimm1, uimm1b, w1, tag1, ri1, ri1b, kOver1, kOver1b, imm1, cond1
			d2, a2, b2 := uint8(op2.D), uint8(op2.A), uint8(op2.B)
			d2b, a2b := uint8(op2.D2), uint8(op2.A2)
			uimm2, uimm2b := uint64(op2.Imm), uint64(op2.Imm2)
			w2, tag2 := op2.W, op2.Tag
			ri2, ri2b := op2.Region, op2.Region2
			kOver2, kOver2b := overflowKind(ri2), overflowKind(ri2b)
			imm2, cond2 := op2.Imm, op2.Cond
			pc2, k2 := int(op2.PC), op2.Code
			_ = pc2
			_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d2, a2, b2, d2b, a2b, uimm2, uimm2b, w2, tag2, ri2, ri2b, kOver2, kOver2b, imm2, cond2
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+5 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k0]++
				if (regs[a0].Tag() == tag0) == !ne0 {
					if tback0 {
						return m.tEdge(pc0, tgt0), steps
					}
					return tgt0, steps
				}
				steps++
				m.ctr.disp[k1]++
				regs[d1] = regs[a1]
				m.ctr.disp[k2]++
				regs[d2] = regs[a2]
				steps += 2
				if true {
					m.tpoll--
					if m.tpoll <= 0 {
						m.tpoll = m.pollEvery()
						if err := m.pollCheck(pc2); err != nil {
							m.terr = err
							return nil, steps
						}
					}
				}
				steps++
				m.ctr.disp[k0]++
				if (regs[a0].Tag() == tag0) == !ne0 {
					if tback0 {
						return m.tEdge(pc0, tgt0), steps
					}
					return tgt0, steps
				}
				return fall0, steps
			}
		}
	}

	// S9 — recursion tail: a not-taken tag branch, an add, four moves and
	// the closing jump (usually a back edge into the store chain).
	if dbgSuperMask&(1<<8) != 0 {
		if isBrTag(at(i)) && at(i+1) == exec.XAddI && at(i+2) == exec.XFMovMov &&
			at(i+3) == exec.XFMovMov && at(i+4) == exec.XJmp {
			op0, op1, op2, op3, op4 := &ops[i], &ops[i+1], &ops[i+2], &ops[i+3], &ops[i+4]
			ne0 := op0.Code == exec.XBrTagNe
			tgt0, tback0 := targetOf(i)
			tgt4, jback := targetOf(i + 4)
			d0, a0, b0 := uint8(op0.D), uint8(op0.A), uint8(op0.B)
			d0b, a0b := uint8(op0.D2), uint8(op0.A2)
			uimm0, uimm0b := uint64(op0.Imm), uint64(op0.Imm2)
			w0, tag0 := op0.W, op0.Tag
			ri0, ri0b := op0.Region, op0.Region2
			kOver0, kOver0b := overflowKind(ri0), overflowKind(ri0b)
			imm0, cond0 := op0.Imm, op0.Cond
			pc0, k0 := int(op0.PC), op0.Code
			_ = pc0
			_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d0, a0, b0, d0b, a0b, uimm0, uimm0b, w0, tag0, ri0, ri0b, kOver0, kOver0b, imm0, cond0
			d1, a1, b1 := uint8(op1.D), uint8(op1.A), uint8(op1.B)
			d1b, a1b := uint8(op1.D2), uint8(op1.A2)
			uimm1, uimm1b := uint64(op1.Imm), uint64(op1.Imm2)
			w1, tag1 := op1.W, op1.Tag
			ri1, ri1b := op1.Region, op1.Region2
			kOver1, kOver1b := overflowKind(ri1), overflowKind(ri1b)
			imm1, cond1 := op1.Imm, op1.Cond
			pc1, k1 := int(op1.PC), op1.Code
			_ = pc1
			_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d1, a1, b1, d1b, a1b, uimm1, uimm1b, w1, tag1, ri1, ri1b, kOver1, kOver1b, imm1, cond1
			d2, a2, b2 := uint8(op2.D), uint8(op2.A), uint8(op2.B)
			d2b, a2b := uint8(op2.D2), uint8(op2.A2)
			uimm2, uimm2b := uint64(op2.Imm), uint64(op2.Imm2)
			w2, tag2 := op2.W, op2.Tag
			ri2, ri2b := op2.Region, op2.Region2
			kOver2, kOver2b := overflowKind(ri2), overflowKind(ri2b)
			imm2, cond2 := op2.Imm, op2.Cond
			pc2, k2 := int(op2.PC), op2.Code
			_ = pc2
			_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d2, a2, b2, d2b, a2b, uimm2, uimm2b, w2, tag2, ri2, ri2b, kOver2, kOver2b, imm2, cond2
			d3, a3, b3 := uint8(op3.D), uint8(op3.A), uint8(op3.B)
			d3b, a3b := uint8(op3.D2), uint8(op3.A2)
			uimm3, uimm3b := uint64(op3.Imm), uint64(op3.Imm2)
			w3, tag3 := op3.W, op3.Tag
			ri3, ri3b := op3.Region, op3.Region2
			kOver3, kOver3b := overflowKind(ri3), overflowKind(ri3b)
			imm3, cond3 := op3.Imm, op3.Cond
			pc3, k3 := int(op3.PC), op3.Code
			_ = pc3
			_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d3, a3, b3, d3b, a3b, uimm3, uimm3b, w3, tag3, ri3, ri3b, kOver3, kOver3b, imm3, cond3
			d4, a4, b4 := uint8(op4.D), uint8(op4.A), uint8(op4.B)
			d4b, a4b := uint8(op4.D2), uint8(op4.A2)
			uimm4, uimm4b := uint64(op4.Imm), uint64(op4.Imm2)
			w4, tag4 := op4.W, op4.Tag
			ri4, ri4b := op4.Region, op4.Region2
			kOver4, kOver4b := overflowKind(ri4), overflowKind(ri4b)
			imm4, cond4 := op4.Imm, op4.Cond
			pc4, k4 := int(op4.PC), op4.Code
			_ = pc4
			_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d4, a4, b4, d4b, a4b, uimm4, uimm4b, w4, tag4, ri4, ri4b, kOver4, kOver4b, imm4, cond4
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+7 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k0]++
				if (regs[a0].Tag() == tag0) == !ne0 {
					if tback0 {
						return m.tEdge(pc0, tgt0), steps
					}
					return tgt0, steps
				}
				steps++
				m.ctr.disp[k1]++
				av := regs[a1]
				regs[d1] = word.Make(av.Tag(), uint64(av.Int()+imm1))
				m.ctr.disp[k2]++
				regs[d2] = regs[a2]
				steps += 2
				regs[d2b] = regs[a2b]
				m.ctr.disp[k3]++
				regs[d3] = regs[a3]
				steps += 2
				regs[d3b] = regs[a3b]
				steps++
				m.ctr.disp[k4]++
				if jback {
					m.tpoll--
					if m.tpoll <= 0 {
						m.tpoll = m.pollEvery()
						if err := m.pollCheck(pc4); err != nil {
							m.terr = err
							return nil, steps
						}
					}
				}
				return tgt4, steps
			}
		}
	}

	// S11 — counted inner loop: an ordered compare-branch whose TAKEN side
	// exits the loop, then a subtract, a load, a store, and a jump back to
	// the compare; unrolled once with the poll run on the back edge.
	if dbgSuperMask&(1<<10) != 0 {
		if at(i) == exec.XBrCmpOrdR && at(i+1) == exec.XSubI && isLd(at(i+2)) &&
			at(i+3) == exec.XSt && at(i+4) == exec.XJmp && int(ops[i+4].Target) == i {
			op0, op1, op2, op3, op4 := &ops[i], &ops[i+1], &ops[i+2], &ops[i+3], &ops[i+4]
			tgt0, tback0 := targetOf(i)
			self := &tops[i]
			tb3 := throwBack(i + 3)
			_ = tb3
			d0, a0, b0 := uint8(op0.D), uint8(op0.A), uint8(op0.B)
			d0b, a0b := uint8(op0.D2), uint8(op0.A2)
			uimm0, uimm0b := uint64(op0.Imm), uint64(op0.Imm2)
			w0, tag0 := op0.W, op0.Tag
			ri0, ri0b := op0.Region, op0.Region2
			kOver0, kOver0b := overflowKind(ri0), overflowKind(ri0b)
			imm0, cond0 := op0.Imm, op0.Cond
			pc0, k0 := int(op0.PC), op0.Code
			_ = pc0
			_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d0, a0, b0, d0b, a0b, uimm0, uimm0b, w0, tag0, ri0, ri0b, kOver0, kOver0b, imm0, cond0
			d1, a1, b1 := uint8(op1.D), uint8(op1.A), uint8(op1.B)
			d1b, a1b := uint8(op1.D2), uint8(op1.A2)
			uimm1, uimm1b := uint64(op1.Imm), uint64(op1.Imm2)
			w1, tag1 := op1.W, op1.Tag
			ri1, ri1b := op1.Region, op1.Region2
			kOver1, kOver1b := overflowKind(ri1), overflowKind(ri1b)
			imm1, cond1 := op1.Imm, op1.Cond
			pc1, k1 := int(op1.PC), op1.Code
			_ = pc1
			_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d1, a1, b1, d1b, a1b, uimm1, uimm1b, w1, tag1, ri1, ri1b, kOver1, kOver1b, imm1, cond1
			d2, a2, b2 := uint8(op2.D), uint8(op2.A), uint8(op2.B)
			d2b, a2b := uint8(op2.D2), uint8(op2.A2)
			uimm2, uimm2b := uint64(op2.Imm), uint64(op2.Imm2)
			w2, tag2 := op2.W, op2.Tag
			ri2, ri2b := op2.Region, op2.Region2
			kOver2, kOver2b := overflowKind(ri2), overflowKind(ri2b)
			imm2, cond2 := op2.Imm, op2.Cond
			pc2, k2 := int(op2.PC), op2.Code
			_ = pc2
			_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d2, a2, b2, d2b, a2b, uimm2, uimm2b, w2, tag2, ri2, ri2b, kOver2, kOver2b, imm2, cond2
			d3, a3, b3 := uint8(op3.D), uint8(op3.A), uint8(op3.B)
			d3b, a3b := uint8(op3.D2), uint8(op3.A2)
			uimm3, uimm3b := uint64(op3.Imm), uint64(op3.Imm2)
			w3, tag3 := op3.W, op3.Tag
			ri3, ri3b := op3.Region, op3.Region2
			kOver3, kOver3b := overflowKind(ri3), overflowKind(ri3b)
			imm3, cond3 := op3.Imm, op3.Cond
			pc3, k3 := int(op3.PC), op3.Code
			_ = pc3
			_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d3, a3, b3, d3b, a3b, uimm3, uimm3b, w3, tag3, ri3, ri3b, kOver3, kOver3b, imm3, cond3
			d4, a4, b4 := uint8(op4.D), uint8(op4.A), uint8(op4.B)
			d4b, a4b := uint8(op4.D2), uint8(op4.A2)
			uimm4, uimm4b := uint64(op4.Imm), uint64(op4.Imm2)
			w4, tag4 := op4.W, op4.Tag
			ri4, ri4b := op4.Region, op4.Region2
			kOver4, kOver4b := overflowKind(ri4), overflowKind(ri4b)
			imm4, cond4 := op4.Imm, op4.Cond
			pc4, k4 := int(op4.PC), op4.Code
			_ = pc4
			_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d4, a4, b4, d4b, a4b, uimm4, uimm4b, w4, tag4, ri4, ri4b, kOver4, kOver4b, imm4, cond4
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+10 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k0]++
				if exec.OrdCmp(regs[a0].Int(), regs[b0].Int(), cond0) {
					if tback0 {
						return m.tEdge(pc0, tgt0), steps
					}
					return tgt0, steps
				}
				steps++
				m.ctr.disp[k1]++
				av := regs[a1]
				regs[d1] = word.Make(av.Tag(), uint64(av.Int()-imm1))
				steps++
				m.ctr.disp[k2]++
				addr := regs[a2].Val() + uimm2
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc2, addr), steps
				}
				regs[d2] = mem[addr]
				steps++
				m.ctr.disp[k3]++
				addr = regs[a3].Val() + uimm3
				if addr >= m.limit[ri3] {
					return m.tRaise(pc3, kOver3, throw, tb3, tSkipNone), steps
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc3, addr), steps
				}
				mem[addr] = regs[b3]
				m.st.Touch(addr)
				steps++
				m.ctr.disp[k4]++
				if true {
					m.tpoll--
					if m.tpoll <= 0 {
						m.tpoll = m.pollEvery()
						if err := m.pollCheck(pc4); err != nil {
							m.terr = err
							return nil, steps
						}
					}
				}
				steps++
				m.ctr.disp[k0]++
				if exec.OrdCmp(regs[a0].Int(), regs[b0].Int(), cond0) {
					if tback0 {
						return m.tEdge(pc0, tgt0), steps
					}
					return tgt0, steps
				}
				steps++
				m.ctr.disp[k1]++
				av = regs[a1]
				regs[d1] = word.Make(av.Tag(), uint64(av.Int()-imm1))
				steps++
				m.ctr.disp[k2]++
				addr = regs[a2].Val() + uimm2
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc2, addr), steps
				}
				regs[d2] = mem[addr]
				steps++
				m.ctr.disp[k3]++
				addr = regs[a3].Val() + uimm3
				if addr >= m.limit[ri3] {
					return m.tRaise(pc3, kOver3, throw, tb3, tSkipNone), steps
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc3, addr), steps
				}
				mem[addr] = regs[b3]
				m.st.Touch(addr)
				steps++
				m.ctr.disp[k4]++
				if true {
					m.tpoll--
					if m.tpoll <= 0 {
						m.tpoll = m.pollEvery()
						if err := m.pollCheck(pc4); err != nil {
							m.terr = err
							return nil, steps
						}
					}
				}
				return self, steps
			}
		}
	}

	// S12 — dispatch guard: an immediate compare-branch whose TAKEN target
	// is a computed jump, run in one dispatch.
	if dbgSuperMask&(1<<11) != 0 {
		if at(i) == exec.XBrCmpEqI || at(i) == exec.XBrCmpNeI {
			t := int(ops[i].Target)
			if t > i && t < n && at(t) == exec.XJmpR {
				op0, op1 := &ops[i], &ops[t]
				ne0 := op0.Code == exec.XBrCmpNeI
				fall0 := fallTop(i)
				xof := s.XOf
				selfx1 := t
				d0, a0, b0 := uint8(op0.D), uint8(op0.A), uint8(op0.B)
				d0b, a0b := uint8(op0.D2), uint8(op0.A2)
				uimm0, uimm0b := uint64(op0.Imm), uint64(op0.Imm2)
				w0, tag0 := op0.W, op0.Tag
				ri0, ri0b := op0.Region, op0.Region2
				kOver0, kOver0b := overflowKind(ri0), overflowKind(ri0b)
				imm0, cond0 := op0.Imm, op0.Cond
				pc0, k0 := int(op0.PC), op0.Code
				_ = pc0
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d0, a0, b0, d0b, a0b, uimm0, uimm0b, w0, tag0, ri0, ri0b, kOver0, kOver0b, imm0, cond0
				d1, a1, b1 := uint8(op1.D), uint8(op1.A), uint8(op1.B)
				d1b, a1b := uint8(op1.D2), uint8(op1.A2)
				uimm1, uimm1b := uint64(op1.Imm), uint64(op1.Imm2)
				w1, tag1 := op1.W, op1.Tag
				ri1, ri1b := op1.Region, op1.Region2
				kOver1, kOver1b := overflowKind(ri1), overflowKind(ri1b)
				imm1, cond1 := op1.Imm, op1.Cond
				pc1, k1 := int(op1.PC), op1.Code
				_ = pc1
				_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d1, a1, b1, d1b, a1b, uimm1, uimm1b, w1, tag1, ri1, ri1b, kOver1, kOver1b, imm1, cond1
				return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
					if steps+2 > tmax {
						return gen1, steps
					}
					steps++
					m.ctr.disp[k0]++
					if (regs[a0] == w0) == ne0 {
						return fall0, steps
					}
					steps++
					m.ctr.disp[k1]++
					tv := int(regs[a1].Val())
					if tv < 0 || tv >= len(xof) || xof[tv] < 0 {
						return m.tFail(tv, "pc out of range"), steps
					}
					nx := int(xof[tv])
					if nx <= selfx1 {
						return m.tEdge(pc1, &tops[nx]), steps
					}
					return &tops[nx], steps
				}
			}
		}
	}

	// S14 — trailing store tail: a fused double store, an add, and the
	// closing jump.
	if dbgSuperMask&(1<<13) != 0 {
		if at(i) == exec.XFStSt && at(i+1) == exec.XAddI && at(i+2) == exec.XJmp {
			op0, op1, op2 := &ops[i], &ops[i+1], &ops[i+2]
			tgt2, jback := targetOf(i + 2)
			tb0 := throwBack(i)
			_ = tb0
			d0, a0, b0 := uint8(op0.D), uint8(op0.A), uint8(op0.B)
			d0b, a0b := uint8(op0.D2), uint8(op0.A2)
			uimm0, uimm0b := uint64(op0.Imm), uint64(op0.Imm2)
			w0, tag0 := op0.W, op0.Tag
			ri0, ri0b := op0.Region, op0.Region2
			kOver0, kOver0b := overflowKind(ri0), overflowKind(ri0b)
			imm0, cond0 := op0.Imm, op0.Cond
			pc0, k0 := int(op0.PC), op0.Code
			_ = pc0
			_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d0, a0, b0, d0b, a0b, uimm0, uimm0b, w0, tag0, ri0, ri0b, kOver0, kOver0b, imm0, cond0
			d1, a1, b1 := uint8(op1.D), uint8(op1.A), uint8(op1.B)
			d1b, a1b := uint8(op1.D2), uint8(op1.A2)
			uimm1, uimm1b := uint64(op1.Imm), uint64(op1.Imm2)
			w1, tag1 := op1.W, op1.Tag
			ri1, ri1b := op1.Region, op1.Region2
			kOver1, kOver1b := overflowKind(ri1), overflowKind(ri1b)
			imm1, cond1 := op1.Imm, op1.Cond
			pc1, k1 := int(op1.PC), op1.Code
			_ = pc1
			_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d1, a1, b1, d1b, a1b, uimm1, uimm1b, w1, tag1, ri1, ri1b, kOver1, kOver1b, imm1, cond1
			d2, a2, b2 := uint8(op2.D), uint8(op2.A), uint8(op2.B)
			d2b, a2b := uint8(op2.D2), uint8(op2.A2)
			uimm2, uimm2b := uint64(op2.Imm), uint64(op2.Imm2)
			w2, tag2 := op2.W, op2.Tag
			ri2, ri2b := op2.Region, op2.Region2
			kOver2, kOver2b := overflowKind(ri2), overflowKind(ri2b)
			imm2, cond2 := op2.Imm, op2.Cond
			pc2, k2 := int(op2.PC), op2.Code
			_ = pc2
			_, _, _, _, _, _, _, _, _, _, _, _, _, _, _ = d2, a2, b2, d2b, a2b, uimm2, uimm2b, w2, tag2, ri2, ri2b, kOver2, kOver2b, imm2, cond2
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+4 > tmax {
					return gen1, steps
				}
				m.ctr.disp[k0]++
				addr := regs[a0].Val() + uimm0
				if addr >= m.limit[ri0] {
					return m.tRaise(pc0, kOver0, throw, tb0, tSkipStSt), steps + 1
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc0, addr), steps
				}
				mem[addr] = regs[b0]
				m.st.Touch(addr)
				steps += 2
				addr = regs[a0b].Val() + uimm0b
				if addr >= m.limit[ri0b] {
					return m.tRaise(pc0+1, kOver0b, throw, tb0, tSkipNone), steps
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc0+1, addr), steps
				}
				mem[addr] = regs[d0b]
				m.st.Touch(addr)
				steps++
				m.ctr.disp[k1]++
				av := regs[a1]
				regs[d1] = word.Make(av.Tag(), uint64(av.Int()+imm1))
				steps++
				m.ctr.disp[k2]++
				if jback {
					m.tpoll--
					if m.tpoll <= 0 {
						m.tpoll = m.pollEvery()
						if err := m.pollCheck(pc2); err != nil {
							m.terr = err
							return nil, steps
						}
					}
				}
				return tgt2, steps
			}
		}
	}

	return nil
}
