package emu

import (
	"strings"
	"testing"

	"symbol/internal/ic"
	"symbol/internal/term"
	"symbol/internal/word"
)

var rA = ic.ArgReg(0)

const (
	t0 = ic.FirstTemp
	t1 = ic.FirstTemp + 1
)

func mkProg(code []ic.Inst) *ic.Program {
	return &ic.Program{
		Code:    code,
		Atoms:   term.NewTable(),
		Procs:   map[string]int{},
		Names:   map[int]string{},
		Entries: map[int]bool{0: true},
	}
}

func runCode(t *testing.T, code []ic.Inst) *Result {
	t.Helper()
	res, err := Run(mkProg(code), Options{MaxSteps: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestALUOps(t *testing.T) {
	type tc struct {
		op   ic.Op
		a, b int64
		want int64
	}
	cases := []tc{
		{ic.Add, 7, 3, 10},
		{ic.Sub, 7, 3, 4},
		{ic.Mul, 7, 3, 21},
		{ic.Div, 7, 3, 2},
		{ic.Div, -7, 3, -2}, // truncation toward zero
		{ic.Mod, 7, 3, 1},
		{ic.And, 6, 3, 2},
		{ic.Or, 6, 3, 7},
		{ic.Xor, 6, 3, 5},
		{ic.Shl, 3, 2, 12},
		{ic.Shr, 12, 2, 3},
	}
	for _, c := range cases {
		code := []ic.Inst{
			{Op: ic.MovI, D: t0, Word: word.MakeInt(c.a)},
			{Op: ic.MovI, D: t1, Word: word.MakeInt(c.b)},
			{Op: c.op, D: t0, A: t0, B: t1},
			{Op: ic.BrCmp, A: t0, Cond: ic.CondEq, HasImm: true,
				Word: word.MakeInt(c.want), Target: 5},
			{Op: ic.Halt, Imm: 1},
			{Op: ic.Halt, Imm: 0},
		}
		if res := runCode(t, code); res.Status != 0 {
			t.Errorf("%v(%d,%d) != %d", c.op, c.a, c.b, c.want)
		}
	}
}

func TestALUPreservesTag(t *testing.T) {
	// Address arithmetic keeps the pointer tag (§5.2 datapath).
	code := []ic.Inst{
		{Op: ic.MovI, D: t0, Word: word.Make(word.Lst, 100)},
		{Op: ic.Add, D: t0, A: t0, HasImm: true, Imm: 4},
		{Op: ic.BrTag, A: t0, Cond: ic.CondNe, Tag: word.Lst, Target: 4},
		{Op: ic.BrCmp, A: t0, Cond: ic.CondEq, HasImm: true,
			Word: word.Make(word.Lst, 104), Target: 5},
		{Op: ic.Halt, Imm: 1},
		{Op: ic.Halt, Imm: 0},
	}
	if res := runCode(t, code); res.Status != 0 {
		t.Error("tag not preserved across value arithmetic")
	}
}

func TestMemoryAndLea(t *testing.T) {
	code := []ic.Inst{
		{Op: ic.MovI, D: ic.RegH, Word: word.MakeRef(ic.HeapBase)},
		{Op: ic.MovI, D: t0, Word: word.MakeInt(99)},
		{Op: ic.St, A: ic.RegH, Imm: 2, B: t0},
		{Op: ic.Lea, D: t1, A: ic.RegH, Imm: 2, Tag: word.Str},
		{Op: ic.Ld, D: t0, A: t1, Imm: 0},
		{Op: ic.BrCmp, A: t0, Cond: ic.CondNe, HasImm: true,
			Word: word.MakeInt(99), Target: 7},
		{Op: ic.Halt, Imm: 0},
		{Op: ic.Halt, Imm: 1},
	}
	if res := runCode(t, code); res.Status != 0 {
		t.Error("store/lea/load roundtrip failed")
	}
}

func TestJsrAndJmpR(t *testing.T) {
	code := []ic.Inst{
		{Op: ic.Jsr, D: ic.RegCP, Target: 3}, // call
		{Op: ic.Halt, Imm: 0},                // return lands here
		{Op: ic.Halt, Imm: 1},
		{Op: ic.JmpR, A: ic.RegCP}, // return
	}
	if res := runCode(t, code); res.Status != 0 {
		t.Error("call/return broken")
	}
}

func TestGetTag(t *testing.T) {
	code := []ic.Inst{
		{Op: ic.MovI, D: t0, Word: word.Make(word.Atom, 5)},
		{Op: ic.GetTag, D: t1, A: t0},
		{Op: ic.BrCmp, A: t1, Cond: ic.CondNe, HasImm: true,
			Word: word.MakeInt(int64(word.Atom)), Target: 4},
		{Op: ic.Halt, Imm: 0},
		{Op: ic.Halt, Imm: 1},
	}
	if res := runCode(t, code); res.Status != 0 {
		t.Error("gettag broken")
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := map[string][]ic.Inst{
		"division by zero": {
			{Op: ic.MovI, D: t0, Word: word.MakeInt(1)},
			{Op: ic.MovI, D: t1, Word: word.MakeInt(0)},
			{Op: ic.Div, D: t0, A: t0, B: t1},
			{Op: ic.Halt},
		},
		"store out of range": {
			{Op: ic.MovI, D: t0, Word: word.MakeRef(1 << 40)},
			{Op: ic.St, A: t0, Imm: 0, B: t0},
			{Op: ic.Halt},
		},
		"load out of range": {
			{Op: ic.MovI, D: t0, Word: word.MakeRef(1 << 40)},
			{Op: ic.Ld, D: t1, A: t0, Imm: 0},
			{Op: ic.Halt},
		},
		"pc out of range": {
			{Op: ic.Jmp, Target: -1},
		},
	}
	for name, code := range cases {
		_, err := Run(mkProg(code), Options{MaxSteps: 100})
		if err == nil {
			t.Errorf("%s: expected error", name)
			continue
		}
		var e *Error
		if !strings.Contains(err.Error(), "emu:") {
			t.Errorf("%s: error lacks context: %v", name, err)
		}
		_ = e
	}
}

func TestStepLimit(t *testing.T) {
	code := []ic.Inst{{Op: ic.Jmp, Target: 0}}
	if _, err := Run(mkProg(code), Options{MaxSteps: 50}); err == nil {
		t.Error("expected step-limit error")
	}
}

func TestProfileCounts(t *testing.T) {
	// A branch taken 1 of 4 times: loop decrementing t0 from 3.
	code := []ic.Inst{
		{Op: ic.MovI, D: t0, Word: word.MakeInt(3)},                             // 0
		{Op: ic.Sub, D: t0, A: t0, HasImm: true, Imm: 1},                        // 1
		{Op: ic.BrCmp, A: t0, Cond: ic.CondGt, HasImm: true, Imm: 0, Target: 1}, // 2
		{Op: ic.Halt}, // 3
	}
	res, err := Run(mkProg(code), Options{MaxSteps: 100, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile
	if p.Expect[0] != 1 || p.Expect[1] != 3 || p.Expect[2] != 3 || p.Expect[3] != 1 {
		t.Errorf("expect counts %v", p.Expect)
	}
	if p.Taken[2] != 2 {
		t.Errorf("taken count %d", p.Taken[2])
	}
	pr, ok := p.Probability(2)
	if !ok || pr < 0.66 || pr > 0.67 {
		t.Errorf("probability %f", pr)
	}
	if _, ok := p.Probability(3); !ok {
		t.Error("executed instruction must report a probability")
	}
}

func TestSysCompareViaEmu(t *testing.T) {
	code := []ic.Inst{
		{Op: ic.MovI, D: rA, Word: word.MakeInt(3)},
		{Op: ic.MovI, D: t0, Word: word.MakeInt(3)},
		{Op: ic.SysOp, Sys: ic.SysCompare, A: rA, B: t0},
		{Op: ic.BrCmp, A: ic.RegRV, Cond: ic.CondNe, HasImm: true,
			Word: word.MakeInt(0), Target: 5},
		{Op: ic.Halt, Imm: 0},
		{Op: ic.Halt, Imm: 1},
	}
	if res := runCode(t, code); res.Status != 0 {
		t.Error("compare escape broken")
	}
}

func TestOutputAndWriteCode(t *testing.T) {
	prog := mkProg([]ic.Inst{
		{Op: ic.MovI, D: rA, Word: word.MakeInt(65)},
		{Op: ic.SysOp, Sys: ic.SysWriteCode, A: rA, B: ic.None},
		{Op: ic.SysOp, Sys: ic.SysNl, A: ic.None, B: ic.None},
		{Op: ic.MovI, D: rA, Word: word.MakeInt(-7)},
		{Op: ic.SysOp, Sys: ic.SysWrite, A: rA, B: ic.None},
		{Op: ic.Halt},
	})
	res, err := Run(prog, Options{MaxSteps: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "A\n-7" {
		t.Errorf("output %q", res.Output)
	}
}

// TestBrCmpEqImmWordSemantics is the regression test for the evalCmp
// immediate-equality bug: CondEq/CondNe with HasImm compare the full tagged
// word in Inst.Word. The old code reinterpreted Imm's raw bits as a tagged
// word, so an emitter that stored a plain integer in Imm (here: 5, which as
// raw bits is a Ref-tagged word) silently compared against garbage. The
// instruction below carries that garbage Imm on purpose; all three
// execution modes must ignore it and take the branch on the Word match.
func TestBrCmpEqImmWordSemantics(t *testing.T) {
	code := []ic.Inst{
		{Op: ic.MovI, D: t0, Word: word.MakeInt(5)},
		{Op: ic.BrCmp, A: t0, Cond: ic.CondEq, HasImm: true,
			Word: word.MakeInt(5), Imm: 5, Target: 3},
		{Op: ic.Halt, Imm: 1},
		// Ne with a mismatched Word must also branch.
		{Op: ic.BrCmp, A: t0, Cond: ic.CondNe, HasImm: true,
			Word: word.MakeInt(6), Imm: 5, Target: 5},
		{Op: ic.Halt, Imm: 1},
		{Op: ic.Halt, Imm: 0},
	}
	prog := mkProg(code)
	for _, opts := range []Options{
		{MaxSteps: 100, Legacy: true},
		{MaxSteps: 100, NoFuse: true},
		{MaxSteps: 100},
	} {
		res, err := Run(prog, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != 0 {
			t.Errorf("legacy=%v nofuse=%v: BrCmp imm compared raw Imm bits instead of Word",
				opts.Legacy, opts.NoFuse)
		}
	}
}

// TestRunModesAgreeOnErrors spot-checks that the predecoded loops report
// the same machine errors as the legacy interpreter, including the pc and
// instruction context embedded in the rendered message.
func TestRunModesAgreeOnErrors(t *testing.T) {
	cases := [][]ic.Inst{
		{{Op: ic.Jmp, Target: -3}}, // static bad target
		{{Op: ic.MovI, D: t0, Word: word.MakeInt(99)}, {Op: ic.JmpR, A: t0}}, // dynamic bad pc
		{{Op: ic.MovI, D: t0, Word: word.MakeInt(0)},
			{Op: ic.MovI, D: t1, Word: word.MakeInt(1)},
			{Op: ic.Div, D: t1, A: t1, B: t0}}, // zero divide
		{{Op: ic.MovI, D: t0, Word: word.MakeInt(-1)},
			{Op: ic.Ld, D: t1, A: t0}}, // load out of range
	}
	for i, code := range cases {
		prog := mkProg(code)
		_, legacyErr := Run(prog, Options{MaxSteps: 100, Legacy: true})
		if legacyErr == nil {
			t.Fatalf("case %d: legacy run unexpectedly succeeded", i)
		}
		for _, opts := range []Options{{MaxSteps: 100, NoFuse: true}, {MaxSteps: 100}} {
			_, err := Run(prog, opts)
			if err == nil || err.Error() != legacyErr.Error() {
				t.Errorf("case %d (nofuse=%v): error %v, legacy %v", i, opts.NoFuse, err, legacyErr)
			}
		}
	}
}
