package emu

import (
	"symbol/internal/exec"
	"symbol/internal/fault"
	"symbol/internal/word"
)

// This file holds the closure-threaded run loop, the third execution core
// after the legacy interpreter and the predecoded switch loops (run.go).
// It eliminates the two costs every switch dispatch still pays:
//
//   - the central switch itself (one indirect branch through a jump table
//     whose target distribution is the whole opcode mix), replaced by one
//     closure call per op; and
//   - per-dispatch operand decoding: every operand is pre-resolved at build
//     time into values captured by the op's closure — register numbers as
//     ready-to-index ints, immediates as pre-widened uint64 address offsets
//     or tagged words, Jsr return addresses as fully-built code words,
//     store region limits as a pre-selected fault kind, and control-flow
//     successors as direct *top pointers into the threaded program, so the
//     hot loop does no stream-index arithmetic at all.
//
// The threaded program is built from the *fused* stream, so everything the
// superinstruction pass won (PR 3) is kept; the speedup over the fused
// switch loop comes purely from dispatch + pre-resolution. Two properties
// are load-bearing for parity with runFast (differentially enforced by the
// fusion, fault, stats and streaming suites):
//
//  1. Step accounting is per-constituent in original-ICI units. Pairs batch
//     the two step-limit tests into one `steps+2 > max` fast-path test, with
//     a slow path that replays runFast's one-at-a-time accounting when the
//     budget is nearly exhausted — except on paths where a catchable store
//     fault makes the intermediate count observable (the store-first pairs
//     redirect to $throwunwind with exactly one constituent counted).
//  2. Deadline/cancel polling keeps the runFast shape: one poll on segment
//     entry (so pre-expired deadlines abort at step 0), then a countdown
//     decremented on backward control transfers only. Whether an edge is
//     backward is resolved at build time; JmpR compares dynamically.
//
// Suspend/resume needs nothing special: all machine state lives in
// Machine/ic.State, so resuming is just entering the closure chain at the
// $fail routine's top, exactly like runFast entering at s.Fail.
//
// The closures are built once per program (exec.Program.ThreadCache, a
// sync.Once mirroring ic.Program.ExecCache one level up) and shared by
// every machine: they capture only static operands and receive the mutable
// state as arguments. The signature threads regs, mem, steps and the step
// budget through the call chain so the register-based Go ABI keeps all of
// them in machine registers across dispatches (none is reloaded from the
// Machine on the hot path); the rarely-touched poll countdown and terminal
// result ride on the Machine instead of widening it.
//
// On top of the per-op closures, three combining passes grow each hot slot
// into a closure covering as many constituents as the code shape allows,
// so one dispatch retires whole dynamic runs where the switch loop pays a
// dispatch per op — that is where the throughput win comes from:
//
//   - the pair pass (threaded_pairs.go) installs two-op closures for the
//     hottest static digraphs, including pairs that follow an unconditional
//     jump to its landing op (the back-edge poll runs in place between the
//     two);
//   - the triple pass (threaded_triples.go) widens recognized three- and
//     four-op runs;
//   - the superblock pass (threaded_super.go) collapses the recurring
//     multi-op compiler templates (dereference ladders, continuation tails,
//     the structure-copy store chain, the first-argument indexing head)
//     into closures of up to fifteen constituents, following at most one
//     taken branch and unrolling at most one loop iteration per dispatch.
//
// Installation overlaps (a later pass overrides a slot the earlier pass
// filled) but execution never does: inner slots of a combined run keep
// their own closures, so a branch that enters mid-run lands on an exact
// continuation. Parity survives because every constituent body inside a
// combined closure is the same code as its generic closure's fast path
// (fault exits, catchable-store redirects, and per-op disp/step counting
// are identical), and because a combined closure whose worst-case step
// count no longer fits the remaining budget delegates to the generic
// per-op chain, which replays runFast's one-at-a-time accounting so a
// StepLimit fault lands on the exact constituent. Forward transfers inside
// a combined closure need no poll; inlined backward edges run the poll
// countdown in place, exactly where the per-op chain would.

// tregCap is the threaded core's register-file view: closures index a
// fixed-size array through uint8 register numbers resolved at build time,
// so the compiler proves every access in bounds and emits no checks — one
// of the pre-resolution wins over the switch loops, whose register numbers
// are dynamic data. Programs naming a register past the view fall back to
// the fused loop (buildThreaded returns an image with no closure chain).
const tregCap = 256

type tregs = [tregCap]word.W

// tfn is one threaded operation: execute, then chain to or return the
// successor (nil to stop the driver, with the outcome in m.tres/m.terr)
// and the updated step count.
type tfn func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64)

// top is one slot of the threaded program. It is a one-field struct (not a
// bare func value) so successors can be wired as &tops[j] pointers before
// the closures they will eventually hold are built — phase 1 allocates the
// slots, phase 2 fills them, and forward, backward and cyclic references
// all resolve without fixup lists.
type top struct{ fn tfn }

// tprog is the threaded execution image of one program: the closure chain
// plus the fused stream it was built from (for entry/resume/trap lookups).
type tprog struct {
	s    *exec.Stream
	tops []top
}

// threadedOf returns the cached threaded image of xp, building it on first
// use.
func threadedOf(xp *exec.Program) *tprog {
	return xp.ThreadCache(func() any { return buildThreaded(&xp.Fused) }).(*tprog)
}

// Skip-counter selectors for tRaise: which fused second constituent was
// skipped because the first store faulted catchably (statsFast subtracts
// these from the dispatch-expanded class counts).
const (
	tSkipNone uint8 = iota
	tSkipStAdd
	tSkipStSt
	tSkipStMovI
)

// The t* helpers below are the cold exits shared by every closure; keeping
// them as methods keeps the closures small enough to stay in the
// instruction cache.

// tFault records a typed machine fault at pc and stops the driver.
func (m *Machine) tFault(pc int, k fault.Kind) *top {
	m.pc = pc
	m.terr = m.faultErr(k)
	return nil
}

// tFail records an untyped machine failure at pc and stops the driver.
func (m *Machine) tFail(pc int, reason string) *top {
	m.pc = pc
	m.terr = m.fail(reason)
	return nil
}

// tLoadErr records an out-of-range load at pc.
func (m *Machine) tLoadErr(pc int, addr uint64) *top {
	m.pc = pc
	m.terr = m.loadErr(addr)
	return nil
}

// tStoreErr records an out-of-range store at pc.
func (m *Machine) tStoreErr(pc int, addr uint64) *top {
	m.pc = pc
	m.terr = m.storeErr(addr)
	return nil
}

// tEdge is a taken backward control transfer: decrement the poll countdown
// and poll the deadline/interrupt when it expires, mirroring runFast's
// `next <= x` path. Returns tgt, or nil with the abort recorded.
func (m *Machine) tEdge(pc int, tgt *top) *top {
	m.tpoll--
	if m.tpoll <= 0 {
		m.tpoll = m.pollEvery()
		if err := m.pollCheck(pc); err != nil {
			m.terr = err
			return nil
		}
	}
	return tgt
}

// tRaise handles a raised fault at pc: a catchable kind redirects to the
// $throwunwind routine (bumping the requested skip counter, with back-edge
// poll accounting when the throw target sits behind the raising op);
// anything else stops the driver with the typed hard error. raise either
// redirects or errors, so a nil return always carries m.terr.
func (m *Machine) tRaise(pc int, k fault.Kind, throw *top, back bool, skip uint8) *top {
	m.pc = pc
	if _, err := m.raise(k); err != nil {
		m.terr = err
		return nil
	}
	switch skip {
	case tSkipStAdd:
		m.ctr.skipStAdd++
	case tSkipStSt:
		m.ctr.skipStSt++
	case tSkipStMovI:
		m.ctr.skipStMovI++
	}
	if back {
		return m.tEdge(pc, throw)
	}
	return throw
}

// runThreaded is the closure-threaded interpreter loop. x0 is the stream
// index to enter at: s.Entry for a fresh run, s.Fail to resume a suspended
// machine by backtracking. The driver only regains control on backward
// control transfers and terminal states — forward progress stays inside
// the chained closure calls.
func (m *Machine) runThreaded(tp *tprog, x0 int) (*Result, error) {
	if err := m.pollCheck(int(tp.s.Ops[x0].PC)); err != nil {
		return nil, err
	}
	tmax := m.opts.MaxSteps
	m.tpoll = m.pollEvery()
	m.tres, m.terr = nil, nil
	regs, mem := (*tregs)(m.regs), m.mem
	steps := m.stepsDone
	t := &tp.tops[x0]
	for t != nil {
		t, steps = t.fn(m, regs, mem, steps, tmax)
	}
	res, err := m.tres, m.terr
	m.tres, m.terr = nil, nil
	return res, err
}

// buildThreaded compiles the fused stream into a closure chain. Phase 1 is
// the tops allocation itself; the loop is phase 2, free to wire successor
// pointers in any direction.
func buildThreaded(s *exec.Stream) *tprog {
	n := len(s.Ops)
	for i := range s.Ops {
		op := &s.Ops[i]
		if op.D >= tregCap || op.A >= tregCap || op.B >= tregCap ||
			op.D2 >= tregCap || op.A2 >= tregCap {
			// A register number past the fixed view: unthreadable, signalled
			// by the nil closure chain. The caller runs the fused loop.
			return &tprog{s: s}
		}
	}
	tp := &tprog{s: s, tops: make([]top, n)}
	tops := tp.tops
	xof := s.XOf

	// gens holds the per-op generic closures; every control-flow successor
	// captured below points into tops. The pair pass after this loop may
	// install combined two-op closures in tops, and gens stays reachable as
	// the exact per-op chain those delegate to when the step budget is
	// nearly exhausted.
	gens := make([]top, n)

	// stop is the successor of choice wherever the stream has none (the op
	// after the last slot, or a malformed target): entering it hands control
	// back to the driver with no step consumed and no result recorded,
	// exactly what returning a nil successor used to do — but it keeps every
	// captured successor non-nil, so the hot paths can chain into fn
	// unconditionally.
	stop := &top{fn: func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
		return nil, steps
	}}

	for i := range s.Ops {
		op := &s.Ops[i]
		// Pre-resolved operands, captured by the closures below. Each
		// closure captures only the names it mentions.
		pc := int(op.PC)
		kc := op.Code
		d, a, b := uint8(op.D), uint8(op.A), uint8(op.B)
		d2, a2 := uint8(op.D2), uint8(op.A2)
		imm, imm2 := op.Imm, op.Imm2
		uimm, uimm2 := uint64(op.Imm), uint64(op.Imm2)
		w := op.W
		tag := op.Tag
		cond := op.Cond
		fall := stop
		if i+1 < n {
			fall = &tops[i+1]
		}
		tgt := stop
		tback := false
		if op.Target >= 0 && int(op.Target) < n {
			tgt = &tops[op.Target]
			tback = int(op.Target) <= i
		}
		var throw *top
		throwBack := false
		if s.Throw >= 0 {
			throw = &tops[s.Throw]
			throwBack = int(s.Throw) <= i
		}

		switch op.Code {
		case exec.XNop:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				return fall, steps
			}

		case exec.XLd, exec.XLdUndo:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				addr := regs[a].Val() + uimm
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc, addr), steps
				}
				regs[d] = mem[addr]
				return fall, steps
			}

		case exec.XSt:
			ri := op.Region
			kOver := overflowKind(ri)
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				addr := regs[a].Val() + uimm
				if addr >= m.limit[ri] {
					return m.tRaise(pc, kOver, throw, throwBack, tSkipNone), steps
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc, addr), steps
				}
				mem[addr] = regs[b]
				m.st.Touch(addr)
				return fall, steps
			}

		case exec.XAddR:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				av := regs[a]
				regs[d] = word.Make(av.Tag(), uint64(av.Int()+regs[b].Int()))
				return fall, steps
			}
		case exec.XAddI:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				av := regs[a]
				regs[d] = word.Make(av.Tag(), uint64(av.Int()+imm))
				return fall, steps
			}
		case exec.XSubR:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				av := regs[a]
				regs[d] = word.Make(av.Tag(), uint64(av.Int()-regs[b].Int()))
				return fall, steps
			}
		case exec.XSubI:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				av := regs[a]
				regs[d] = word.Make(av.Tag(), uint64(av.Int()-imm))
				return fall, steps
			}
		case exec.XMulR:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				av := regs[a]
				regs[d] = word.Make(av.Tag(), uint64(av.Int()*regs[b].Int()))
				return fall, steps
			}
		case exec.XMulI:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				av := regs[a]
				regs[d] = word.Make(av.Tag(), uint64(av.Int()*imm))
				return fall, steps
			}
		case exec.XDivR:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				bv := regs[b].Int()
				if bv == 0 {
					return m.tFault(pc, fault.ZeroDivide), steps
				}
				av := regs[a]
				regs[d] = word.Make(av.Tag(), uint64(av.Int()/bv))
				return fall, steps
			}
		case exec.XDivI:
			if imm == 0 {
				// Division by a zero immediate is decided at build time:
				// the closure is the fault itself.
				gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
					if steps >= tmax {
						return m.tFault(pc, fault.StepLimit), steps
					}
					steps++
					m.ctr.disp[kc]++
					return m.tFault(pc, fault.ZeroDivide), steps
				}
				break
			}
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				av := regs[a]
				regs[d] = word.Make(av.Tag(), uint64(av.Int()/imm))
				return fall, steps
			}
		case exec.XModR:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				bv := regs[b].Int()
				if bv == 0 {
					return m.tFault(pc, fault.ZeroDivide), steps
				}
				av := regs[a]
				regs[d] = word.Make(av.Tag(), uint64(av.Int()%bv))
				return fall, steps
			}
		case exec.XModI:
			if imm == 0 {
				gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
					if steps >= tmax {
						return m.tFault(pc, fault.StepLimit), steps
					}
					steps++
					m.ctr.disp[kc]++
					return m.tFault(pc, fault.ZeroDivide), steps
				}
				break
			}
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				av := regs[a]
				regs[d] = word.Make(av.Tag(), uint64(av.Int()%imm))
				return fall, steps
			}
		case exec.XAndR:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				av := regs[a]
				regs[d] = word.Make(av.Tag(), uint64(av.Int()&regs[b].Int()))
				return fall, steps
			}
		case exec.XAndI:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				av := regs[a]
				regs[d] = word.Make(av.Tag(), uint64(av.Int()&imm))
				return fall, steps
			}
		case exec.XOrR:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				av := regs[a]
				regs[d] = word.Make(av.Tag(), uint64(av.Int()|regs[b].Int()))
				return fall, steps
			}
		case exec.XOrI:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				av := regs[a]
				regs[d] = word.Make(av.Tag(), uint64(av.Int()|imm))
				return fall, steps
			}
		case exec.XXorR:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				av := regs[a]
				regs[d] = word.Make(av.Tag(), uint64(av.Int()^regs[b].Int()))
				return fall, steps
			}
		case exec.XXorI:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				av := regs[a]
				regs[d] = word.Make(av.Tag(), uint64(av.Int()^imm))
				return fall, steps
			}
		case exec.XShlR:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				av := regs[a]
				regs[d] = word.Make(av.Tag(), uint64(av.Int()<<uint(regs[b].Int()&63)))
				return fall, steps
			}
		case exec.XShlI:
			sh := uint(imm & 63)
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				av := regs[a]
				regs[d] = word.Make(av.Tag(), uint64(av.Int()<<sh))
				return fall, steps
			}
		case exec.XShrR:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				av := regs[a]
				regs[d] = word.Make(av.Tag(), uint64(av.Int()>>uint(regs[b].Int()&63)))
				return fall, steps
			}
		case exec.XShrI:
			sh := uint(imm & 63)
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				av := regs[a]
				regs[d] = word.Make(av.Tag(), uint64(av.Int()>>sh))
				return fall, steps
			}

		case exec.XMkTag:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				regs[d] = regs[a].WithTag(tag)
				return fall, steps
			}
		case exec.XGetTag:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				regs[d] = word.MakeInt(int64(regs[a].Tag()))
				return fall, steps
			}
		case exec.XLea:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				regs[d] = word.Make(tag, uint64(regs[a].Int()+imm))
				return fall, steps
			}
		case exec.XMov, exec.XMovCP:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				regs[d] = regs[a]
				return fall, steps
			}
		case exec.XMovI:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				regs[d] = w
				return fall, steps
			}

		case exec.XBrTagEq:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				if regs[a].Tag() == tag {
					if tback {
						return m.tEdge(pc, tgt), steps
					}
					return tgt, steps
				}
				return fall, steps
			}
		case exec.XBrTagNe:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				if regs[a].Tag() != tag {
					if tback {
						return m.tEdge(pc, tgt), steps
					}
					return tgt, steps
				}
				return fall, steps
			}
		case exec.XBrCmpEqR:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				if regs[a] == regs[b] {
					if tback {
						return m.tEdge(pc, tgt), steps
					}
					return tgt, steps
				}
				return fall, steps
			}
		case exec.XBrCmpNeR:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				if regs[a] != regs[b] {
					if tback {
						return m.tEdge(pc, tgt), steps
					}
					return tgt, steps
				}
				return fall, steps
			}
		case exec.XBrCmpEqI:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				if regs[a] == w {
					if tback {
						return m.tEdge(pc, tgt), steps
					}
					return tgt, steps
				}
				return fall, steps
			}
		case exec.XBrCmpNeI:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				if regs[a] != w {
					if tback {
						return m.tEdge(pc, tgt), steps
					}
					return tgt, steps
				}
				return fall, steps
			}
		case exec.XBrCmpOrdR:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				if exec.OrdCmp(regs[a].Int(), regs[b].Int(), cond) {
					if tback {
						return m.tEdge(pc, tgt), steps
					}
					return tgt, steps
				}
				return fall, steps
			}
		case exec.XBrCmpOrdI:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				if exec.OrdCmp(regs[a].Int(), imm, cond) {
					if tback {
						return m.tEdge(pc, tgt), steps
					}
					return tgt, steps
				}
				return fall, steps
			}

		case exec.XJmp:
			if tback {
				gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
					if steps >= tmax {
						return m.tFault(pc, fault.StepLimit), steps
					}
					steps++
					m.ctr.disp[kc]++
					return m.tEdge(pc, tgt), steps
				}
				break
			}
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				return tgt, steps
			}
		case exec.XJmpR:
			selfx := i
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				tv := int(regs[a].Val())
				if tv < 0 || tv >= len(xof) || xof[tv] < 0 {
					return m.tFail(tv, "pc out of range"), steps
				}
				nx := int(xof[tv])
				if nx <= selfx {
					return m.tEdge(pc, &tops[nx]), steps
				}
				return &tops[nx], steps
			}
		case exec.XJsr:
			retw := word.Make(word.Code, uint64(pc+1))
			if tback {
				gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
					if steps >= tmax {
						return m.tFault(pc, fault.StepLimit), steps
					}
					steps++
					m.ctr.disp[kc]++
					regs[d] = retw
					return m.tEdge(pc, tgt), steps
				}
				break
			}
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				regs[d] = retw
				return tgt, steps
			}
		case exec.XHalt:
			if imm == 2 {
				gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
					if steps >= tmax {
						return m.tFault(pc, fault.StepLimit), steps
					}
					steps++
					m.ctr.disp[kc]++
					m.pc = pc
					m.terr = m.uncaught()
					return nil, steps
				}
				break
			}
			status := int(imm)
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				m.stepsDone = steps
				m.tres = &Result{Status: status, Output: m.out.String(), Steps: steps,
					Stats: m.statsFast(steps)}
				return nil, steps
			}

		case exec.XSysWrite:
			ra := op.A
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				m.pc = pc
				if err := m.sysWrite(ra); err != nil {
					m.terr = err
					return nil, steps
				}
				return fall, steps
			}
		case exec.XSysNl:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				m.out.WriteByte('\n')
				return fall, steps
			}
		case exec.XSysWriteCode:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				m.out.WriteByte(byte(regs[a].Int()))
				return fall, steps
			}
		case exec.XSysCompare:
			ra, rb := op.A, op.B
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				m.pc = pc
				if err := m.sysCompare(ra, rb); err != nil {
					m.terr = err
					return nil, steps
				}
				return fall, steps
			}
		case exec.XSysBallPut:
			ra := op.A
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				m.pc = pc
				if err := m.sysBallPut(ra); err != nil {
					m.terr = err
					return nil, steps
				}
				return fall, steps
			}
		case exec.XSysFault:
			kf := fault.Kind(imm)
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				return m.tRaise(pc, kf, throw, throwBack, tSkipNone), steps
			}
		case exec.XSysBad:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				return m.tFail(pc, "unknown sys op"), steps
			}

		// Superinstructions. The fast path tests the step budget once for
		// both constituents; the slow path (fewer than two steps left)
		// replays runFast's per-constituent accounting so the StepLimit
		// fault point and the constituents that still execute are exact.
		// Store-first pairs keep per-constituent accounting on the redirect
		// path too: a catchable store fault reaches $throwunwind with only
		// the first constituent counted.
		case exec.XFLdBrTagEq:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					if steps >= tmax {
						return m.tFault(pc, fault.StepLimit), steps
					}
					steps++
					m.ctr.disp[kc]++
					addr := regs[a].Val() + uimm
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pc, addr), steps
					}
					regs[d] = mem[addr]
					return m.tFault(pc+1, fault.StepLimit), steps
				}
				m.ctr.disp[kc]++
				addr := regs[a].Val() + uimm
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc, addr), steps
				}
				regs[d] = mem[addr]
				steps += 2
				if regs[d2].Tag() == tag {
					if tback {
						return m.tEdge(pc, tgt), steps
					}
					return tgt, steps
				}
				return fall, steps
			}
		case exec.XFLdBrTagNe:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					if steps >= tmax {
						return m.tFault(pc, fault.StepLimit), steps
					}
					steps++
					m.ctr.disp[kc]++
					addr := regs[a].Val() + uimm
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pc, addr), steps
					}
					regs[d] = mem[addr]
					return m.tFault(pc+1, fault.StepLimit), steps
				}
				m.ctr.disp[kc]++
				addr := regs[a].Val() + uimm
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc, addr), steps
				}
				regs[d] = mem[addr]
				steps += 2
				if regs[d2].Tag() != tag {
					if tback {
						return m.tEdge(pc, tgt), steps
					}
					return tgt, steps
				}
				return fall, steps
			}
		case exec.XFLdBrCmpEqR:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					if steps >= tmax {
						return m.tFault(pc, fault.StepLimit), steps
					}
					steps++
					m.ctr.disp[kc]++
					addr := regs[a].Val() + uimm
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pc, addr), steps
					}
					regs[d] = mem[addr]
					return m.tFault(pc+1, fault.StepLimit), steps
				}
				m.ctr.disp[kc]++
				addr := regs[a].Val() + uimm
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc, addr), steps
				}
				regs[d] = mem[addr]
				steps += 2
				if regs[d2] == regs[a2] {
					if tback {
						return m.tEdge(pc, tgt), steps
					}
					return tgt, steps
				}
				return fall, steps
			}
		case exec.XFLdBrCmpNeR:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					if steps >= tmax {
						return m.tFault(pc, fault.StepLimit), steps
					}
					steps++
					m.ctr.disp[kc]++
					addr := regs[a].Val() + uimm
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pc, addr), steps
					}
					regs[d] = mem[addr]
					return m.tFault(pc+1, fault.StepLimit), steps
				}
				m.ctr.disp[kc]++
				addr := regs[a].Val() + uimm
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc, addr), steps
				}
				regs[d] = mem[addr]
				steps += 2
				if regs[d2] != regs[a2] {
					if tback {
						return m.tEdge(pc, tgt), steps
					}
					return tgt, steps
				}
				return fall, steps
			}
		case exec.XFGetTagBrEqI:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					if steps >= tmax {
						return m.tFault(pc, fault.StepLimit), steps
					}
					steps++
					m.ctr.disp[kc]++
					regs[d] = word.MakeInt(int64(regs[a].Tag()))
					return m.tFault(pc+1, fault.StepLimit), steps
				}
				m.ctr.disp[kc]++
				regs[d] = word.MakeInt(int64(regs[a].Tag()))
				steps += 2
				if regs[d2] == w {
					if tback {
						return m.tEdge(pc, tgt), steps
					}
					return tgt, steps
				}
				return fall, steps
			}
		case exec.XFGetTagBrNeI:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					if steps >= tmax {
						return m.tFault(pc, fault.StepLimit), steps
					}
					steps++
					m.ctr.disp[kc]++
					regs[d] = word.MakeInt(int64(regs[a].Tag()))
					return m.tFault(pc+1, fault.StepLimit), steps
				}
				m.ctr.disp[kc]++
				regs[d] = word.MakeInt(int64(regs[a].Tag()))
				steps += 2
				if regs[d2] != w {
					if tback {
						return m.tEdge(pc, tgt), steps
					}
					return tgt, steps
				}
				return fall, steps
			}
		case exec.XFStAdd:
			ri := op.Region
			kOver := overflowKind(ri)
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					if steps >= tmax {
						return m.tFault(pc, fault.StepLimit), steps
					}
					steps++
					m.ctr.disp[kc]++
					addr := regs[a].Val() + uimm
					if addr >= m.limit[ri] {
						return m.tRaise(pc, kOver, throw, throwBack, tSkipStAdd), steps
					}
					if addr >= uint64(len(mem)) {
						return m.tStoreErr(pc, addr), steps
					}
					mem[addr] = regs[b]
					m.st.Touch(addr)
					return m.tFault(pc+1, fault.StepLimit), steps
				}
				m.ctr.disp[kc]++
				addr := regs[a].Val() + uimm
				if addr >= m.limit[ri] {
					// Redirect with one constituent counted: the bump never
					// ran, and Steps stays exact through the unwind.
					return m.tRaise(pc, kOver, throw, throwBack, tSkipStAdd), steps + 1
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc, addr), steps
				}
				mem[addr] = regs[b]
				m.st.Touch(addr)
				steps += 2
				dv := regs[d2]
				regs[d2] = word.Make(dv.Tag(), uint64(dv.Int()+imm2))
				return fall, steps
			}
		case exec.XFMovJmp:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					if steps >= tmax {
						return m.tFault(pc, fault.StepLimit), steps
					}
					steps++
					m.ctr.disp[kc]++
					regs[d] = regs[a]
					return m.tFault(pc+1, fault.StepLimit), steps
				}
				m.ctr.disp[kc]++
				regs[d] = regs[a]
				steps += 2
				if tback {
					return m.tEdge(pc, tgt), steps
				}
				return tgt, steps
			}
		case exec.XFCMovR:
			// Condition taken skips the move and consumes one step; not
			// taken executes the move as the second constituent. The
			// asymmetric accounting rules out batching.
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				if !exec.CmpW(regs[a], regs[b], cond) {
					if steps >= tmax {
						return m.tFault(pc+1, fault.StepLimit), steps
					}
					steps++
					m.ctr.cmovMoves++
					regs[d2] = regs[a2]
				}
				return fall, steps
			}
		case exec.XFLdLd:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					if steps >= tmax {
						return m.tFault(pc, fault.StepLimit), steps
					}
					steps++
					m.ctr.disp[kc]++
					addr := regs[a].Val() + uimm
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pc, addr), steps
					}
					regs[d] = mem[addr]
					return m.tFault(pc+1, fault.StepLimit), steps
				}
				m.ctr.disp[kc]++
				addr := regs[a].Val() + uimm
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc, addr), steps
				}
				regs[d] = mem[addr]
				steps += 2
				addr = regs[a2].Val() + uimm2
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc+1, addr), steps
				}
				regs[d2] = mem[addr]
				return fall, steps
			}
		case exec.XFLdMov:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					if steps >= tmax {
						return m.tFault(pc, fault.StepLimit), steps
					}
					steps++
					m.ctr.disp[kc]++
					addr := regs[a].Val() + uimm
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pc, addr), steps
					}
					regs[d] = mem[addr]
					return m.tFault(pc+1, fault.StepLimit), steps
				}
				m.ctr.disp[kc]++
				addr := regs[a].Val() + uimm
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc, addr), steps
				}
				regs[d] = mem[addr]
				steps += 2
				regs[d2] = regs[a2]
				return fall, steps
			}
		case exec.XFStSt:
			ri, ri2 := op.Region, op.Region2
			kOver, kOver2 := overflowKind(ri), overflowKind(ri2)
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					if steps >= tmax {
						return m.tFault(pc, fault.StepLimit), steps
					}
					steps++
					m.ctr.disp[kc]++
					addr := regs[a].Val() + uimm
					if addr >= m.limit[ri] {
						return m.tRaise(pc, kOver, throw, throwBack, tSkipStSt), steps
					}
					if addr >= uint64(len(mem)) {
						return m.tStoreErr(pc, addr), steps
					}
					mem[addr] = regs[b]
					m.st.Touch(addr)
					return m.tFault(pc+1, fault.StepLimit), steps
				}
				m.ctr.disp[kc]++
				addr := regs[a].Val() + uimm
				if addr >= m.limit[ri] {
					return m.tRaise(pc, kOver, throw, throwBack, tSkipStSt), steps + 1
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc, addr), steps
				}
				mem[addr] = regs[b]
				m.st.Touch(addr)
				steps += 2
				addr = regs[a2].Val() + uimm2
				if addr >= m.limit[ri2] {
					return m.tRaise(pc+1, kOver2, throw, throwBack, tSkipNone), steps
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc+1, addr), steps
				}
				mem[addr] = regs[d2]
				m.st.Touch(addr)
				return fall, steps
			}
		case exec.XFStMovI:
			ri := op.Region
			kOver := overflowKind(ri)
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					if steps >= tmax {
						return m.tFault(pc, fault.StepLimit), steps
					}
					steps++
					m.ctr.disp[kc]++
					addr := regs[a].Val() + uimm
					if addr >= m.limit[ri] {
						return m.tRaise(pc, kOver, throw, throwBack, tSkipStMovI), steps
					}
					if addr >= uint64(len(mem)) {
						return m.tStoreErr(pc, addr), steps
					}
					mem[addr] = regs[b]
					m.st.Touch(addr)
					return m.tFault(pc+1, fault.StepLimit), steps
				}
				m.ctr.disp[kc]++
				addr := regs[a].Val() + uimm
				if addr >= m.limit[ri] {
					return m.tRaise(pc, kOver, throw, throwBack, tSkipStMovI), steps + 1
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc, addr), steps
				}
				mem[addr] = regs[b]
				m.st.Touch(addr)
				steps += 2
				regs[d2] = w
				return fall, steps
			}
		case exec.XFMovISt:
			ri2 := op.Region2
			kOver2 := overflowKind(ri2)
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					if steps >= tmax {
						return m.tFault(pc, fault.StepLimit), steps
					}
					steps++
					m.ctr.disp[kc]++
					regs[d] = w
					return m.tFault(pc+1, fault.StepLimit), steps
				}
				m.ctr.disp[kc]++
				regs[d] = w
				steps += 2
				addr := regs[a2].Val() + uimm2
				if addr >= m.limit[ri2] {
					return m.tRaise(pc+1, kOver2, throw, throwBack, tSkipNone), steps
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc+1, addr), steps
				}
				mem[addr] = regs[d2]
				m.st.Touch(addr)
				return fall, steps
			}
		case exec.XFMovMov:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					if steps >= tmax {
						return m.tFault(pc, fault.StepLimit), steps
					}
					steps++
					m.ctr.disp[kc]++
					regs[d] = regs[a]
					return m.tFault(pc+1, fault.StepLimit), steps
				}
				m.ctr.disp[kc]++
				regs[d] = regs[a]
				steps += 2
				regs[d2] = regs[a2]
				return fall, steps
			}
		case exec.XFMovBrTagEq:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					if steps >= tmax {
						return m.tFault(pc, fault.StepLimit), steps
					}
					steps++
					m.ctr.disp[kc]++
					regs[d] = regs[a]
					return m.tFault(pc+1, fault.StepLimit), steps
				}
				m.ctr.disp[kc]++
				regs[d] = regs[a]
				steps += 2
				if regs[d2].Tag() == tag {
					if tback {
						return m.tEdge(pc, tgt), steps
					}
					return tgt, steps
				}
				return fall, steps
			}
		case exec.XFMovBrTagNe:
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					if steps >= tmax {
						return m.tFault(pc, fault.StepLimit), steps
					}
					steps++
					m.ctr.disp[kc]++
					regs[d] = regs[a]
					return m.tFault(pc+1, fault.StepLimit), steps
				}
				m.ctr.disp[kc]++
				regs[d] = regs[a]
				steps += 2
				if regs[d2].Tag() != tag {
					if tback {
						return m.tEdge(pc, tgt), steps
					}
					return tgt, steps
				}
				return fall, steps
			}

		case exec.XBadPC:
			badpc := int(op.Imm)
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				return m.tFail(badpc, "pc out of range"), steps
			}
		default: // exec.XUnknown
			gens[i].fn = func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps >= tmax {
					return m.tFault(pc, fault.StepLimit), steps
				}
				steps++
				m.ctr.disp[kc]++
				return m.tFail(pc, "unknown opcode"), steps
			}
		}
	}

	// Every slot starts as its generic per-op closure; the pair pass then
	// upgrades slots whose adjacent (op, op) category has a combined
	// closure (threaded_pairs.go). Installation overlaps — a slot inside
	// one pair can start another — but execution never does: whichever
	// slot control enters runs that slot's view of the next two ops.
	for i := range tops {
		tops[i].fn = gens[i].fn
	}
	for i := 0; i < n; i++ {
		if fn := pairFn(s, tops, gens, stop, i); fn != nil {
			tops[i].fn = fn
		}
	}
	// The triple pass runs after (and overrides) the pair pass: a slot that
	// heads a recognized three-op (or four-op) run gets the longer closure,
	// while the inner slots keep their pair/per-op closures for branches
	// that enter mid-run (threaded_triples.go).
	for i := 0; i < n; i++ {
		if fn := tripleFn(s, tops, gens, stop, i); fn != nil {
			tops[i].fn = fn
		}
	}
	// The superblock pass runs last and wins where it matches: it collapses
	// the recurring multi-op code templates — including runs that follow one
	// taken branch or unroll one back-jump iteration — into single closures
	// (threaded_super.go).
	for i := 0; i < n; i++ {
		if fn := superFn(s, tops, gens, stop, i); fn != nil {
			tops[i].fn = fn
		}
	}
	return tp
}
