package emu

import (
	"symbol/internal/exec"
	"symbol/internal/word"
)

// The pair pass: past fusion, the threaded core combines two ADJACENT
// fused ops into one closure, halving driver dispatches on covered code.
// Where fusion rewrites the instruction stream (and is therefore visible
// in the static counts), pairing is invisible: the combined closure
// replays the two constituent ops' accounting — steps, dispatch counters,
// fault points, poll edges — exactly as two driver dispatches would, so
// every observable (Result.Steps, Stats, fault identity, suspension
// points) stays bit-identical across all four execution cores.
//
// Rules that keep the parity argument local:
//
//   - A pair at slot i executes ops i and i+1 and exits to op i+1's
//     successors. Slot i+1 keeps its own closure, so branches into the
//     middle of a pair still execute correctly (installation overlaps,
//     execution never does).
//   - The combined fast path runs only with step budget for both ops in
//     hand; otherwise it delegates to gens[i], the exact per-op chain,
//     which replays the near-limit accounting one op at a time.
//   - Op bodies are copied verbatim from the per-op closures, including
//     the store ops' catchable-overflow redirects (one constituent
//     counted) and the back-edge poll on taken branches.
//
// Only always-fall-through ops and branches (which fall through when not
// taken) are combinable as the first op; the second op may additionally
// be a jump. The categories below are the hot adjacent digraphs of the
// benchmark suite; uncovered categories simply keep their per-op slots.

// pairFn returns a combined closure for ops i and i+1 of s, or nil when
// the category is not combined.
func pairFn(s *exec.Stream, tops, gens []top, stop *top, i int) tfn {
	n := len(s.Ops)
	op1 := &s.Ops[i]
	// The second op of a pair is normally the next slot; for unconditional
	// jumps it is the op at the jump target, so hot jumps execute their
	// landing op in the same dispatch (the back-edge poll runs between the
	// two, exactly where the per-op chain polls).
	j := i + 1
	if op1.Code == exec.XJmp || op1.Code == exec.XFMovJmp {
		if op1.Target < 0 || int(op1.Target) >= n || int(op1.Target) == i {
			return nil
		}
		j = int(op1.Target)
	}
	if j >= n {
		return nil
	}
	op2 := &s.Ops[j]
	jback := j <= i

	// Shared pre-resolved context. fall2/tgt1/tgt2 point into tops, so
	// pairs chain into pairs; gen1 is the exact-accounting delegate.
	gen1 := &gens[i]
	pc1, pc2 := int(op1.PC), int(op2.PC)
	k1, k2 := op1.Code, op2.Code
	fall2 := stop
	if j+1 < n {
		fall2 = &tops[j+1]
	}
	tgt1, tback1 := stop, false
	if op1.Target >= 0 && int(op1.Target) < n {
		tgt1 = &tops[op1.Target]
		tback1 = int(op1.Target) <= i
	}
	tgt2, tback2 := stop, false
	if op2.Target >= 0 && int(op2.Target) < n {
		tgt2 = &tops[op2.Target]
		tback2 = int(op2.Target) <= j
	}
	var throw *top
	throwBack1, throwBack2 := false, false
	if s.Throw >= 0 {
		throw = &tops[s.Throw]
		throwBack1 = int(s.Throw) <= i
		throwBack2 = int(s.Throw) <= j
	}

	// Operands, first op: plain fields and (for fused ops) the second
	// constituent's fields under a "1b" suffix.
	d1, a1, b1 := uint8(op1.D), uint8(op1.A), uint8(op1.B)
	d1b, a1b := uint8(op1.D2), uint8(op1.A2)
	uimm1, uimm1b := uint64(op1.Imm), uint64(op1.Imm2)
	w1, tag1 := op1.W, op1.Tag
	ri1, ri1b := op1.Region, op1.Region2
	kOver1, kOver1b := overflowKind(ri1), overflowKind(ri1b)

	// Operands, second op.
	d2, a2, b2 := uint8(op2.D), uint8(op2.A), uint8(op2.B)
	d2b, a2b := uint8(op2.D2), uint8(op2.A2)
	uimm2, uimm2b := uint64(op2.Imm), uint64(op2.Imm2)
	w2, tag2 := op2.W, op2.Tag
	ri2, ri2b := op2.Region, op2.Region2
	kOver2, kOver2b := overflowKind(ri2), overflowKind(ri2b)
	imm1, imm2 := op1.Imm, op2.Imm
	cond1, cond2 := op1.Cond, op2.Cond

	switch k1 {
	case exec.XMov, exec.XMovCP:
		// mov d1,a1 ; then a one-step second op.
		switch k2 {
		case exec.XBrTagEq:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					return gen1, steps
				}
				steps += 2
				m.ctr.disp[k1]++
				m.ctr.disp[k2]++
				regs[d1] = regs[a1]
				if regs[a2].Tag() == tag2 {
					if tback2 {
						return m.tEdge(pc2, tgt2), steps
					}
					return tgt2, steps
				}
				return fall2, steps
			}
		case exec.XBrTagNe:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					return gen1, steps
				}
				steps += 2
				m.ctr.disp[k1]++
				m.ctr.disp[k2]++
				regs[d1] = regs[a1]
				if regs[a2].Tag() != tag2 {
					if tback2 {
						return m.tEdge(pc2, tgt2), steps
					}
					return tgt2, steps
				}
				return fall2, steps
			}
		case exec.XJmp:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					return gen1, steps
				}
				steps += 2
				m.ctr.disp[k1]++
				m.ctr.disp[k2]++
				regs[d1] = regs[a1]
				if tback2 {
					return m.tEdge(pc2, tgt2), steps
				}
				return tgt2, steps
			}
		}

	case exec.XBrTagEq, exec.XBrTagNe:
		// A tag branch: taken exits with one step counted; not taken falls
		// into the second op. wantEq selects the sense at build time.
		ne1 := k1 == exec.XBrTagNe
		switch k2 {
		case exec.XBrTagEq:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k1]++
				if (regs[a1].Tag() == tag1) == !ne1 {
					if tback1 {
						return m.tEdge(pc1, tgt1), steps
					}
					return tgt1, steps
				}
				steps++
				m.ctr.disp[k2]++
				if regs[a2].Tag() == tag2 {
					if tback2 {
						return m.tEdge(pc2, tgt2), steps
					}
					return tgt2, steps
				}
				return fall2, steps
			}
		case exec.XBrTagNe:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k1]++
				if (regs[a1].Tag() == tag1) == !ne1 {
					if tback1 {
						return m.tEdge(pc1, tgt1), steps
					}
					return tgt1, steps
				}
				steps++
				m.ctr.disp[k2]++
				if regs[a2].Tag() != tag2 {
					if tback2 {
						return m.tEdge(pc2, tgt2), steps
					}
					return tgt2, steps
				}
				return fall2, steps
			}
		case exec.XMov, exec.XMovCP:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k1]++
				if (regs[a1].Tag() == tag1) == !ne1 {
					if tback1 {
						return m.tEdge(pc1, tgt1), steps
					}
					return tgt1, steps
				}
				steps++
				m.ctr.disp[k2]++
				regs[d2] = regs[a2]
				return fall2, steps
			}
		case exec.XFLdLd:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+3 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k1]++
				if (regs[a1].Tag() == tag1) == !ne1 {
					if tback1 {
						return m.tEdge(pc1, tgt1), steps
					}
					return tgt1, steps
				}
				m.ctr.disp[k2]++
				addr := regs[a2].Val() + uimm2
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc2, addr), steps
				}
				regs[d2] = mem[addr]
				steps += 2
				addr = regs[a2b].Val() + uimm2b
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc2+1, addr), steps
				}
				regs[d2b] = mem[addr]
				return fall2, steps
			}
		case exec.XAddR:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k1]++
				if (regs[a1].Tag() == tag1) == !ne1 {
					if tback1 {
						return m.tEdge(pc1, tgt1), steps
					}
					return tgt1, steps
				}
				steps++
				m.ctr.disp[k2]++
				av := regs[a2]
				regs[d2] = word.Make(av.Tag(), uint64(av.Int()+regs[b2].Int()))
				return fall2, steps
			}
		case exec.XSubR:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k1]++
				if (regs[a1].Tag() == tag1) == !ne1 {
					if tback1 {
						return m.tEdge(pc1, tgt1), steps
					}
					return tgt1, steps
				}
				steps++
				m.ctr.disp[k2]++
				av := regs[a2]
				regs[d2] = word.Make(av.Tag(), uint64(av.Int()-regs[b2].Int()))
				return fall2, steps
			}
		case exec.XFLdBrCmpEqR:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+3 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k1]++
				if (regs[a1].Tag() == tag1) == !ne1 {
					if tback1 {
						return m.tEdge(pc1, tgt1), steps
					}
					return tgt1, steps
				}
				m.ctr.disp[k2]++
				addr := regs[a2].Val() + uimm2
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc2, addr), steps
				}
				regs[d2] = mem[addr]
				steps += 2
				if regs[d2b] == regs[a2b] {
					if tback2 {
						return m.tEdge(pc2, tgt2), steps
					}
					return tgt2, steps
				}
				return fall2, steps
			}
		case exec.XFLdBrCmpNeR:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+3 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k1]++
				if (regs[a1].Tag() == tag1) == !ne1 {
					if tback1 {
						return m.tEdge(pc1, tgt1), steps
					}
					return tgt1, steps
				}
				m.ctr.disp[k2]++
				addr := regs[a2].Val() + uimm2
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc2, addr), steps
				}
				regs[d2] = mem[addr]
				steps += 2
				if regs[d2b] != regs[a2b] {
					if tback2 {
						return m.tEdge(pc2, tgt2), steps
					}
					return tgt2, steps
				}
				return fall2, steps
			}
		}

	case exec.XFLdLd:
		// Two loads, then a second op.
		switch k2 {
		case exec.XLd, exec.XLdUndo:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+3 > tmax {
					return gen1, steps
				}
				m.ctr.disp[k1]++
				addr := regs[a1].Val() + uimm1
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc1, addr), steps
				}
				regs[d1] = mem[addr]
				steps += 2
				addr = regs[a1b].Val() + uimm1b
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc1+1, addr), steps
				}
				regs[d1b] = mem[addr]
				steps++
				m.ctr.disp[k2]++
				addr = regs[a2].Val() + uimm2
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc2, addr), steps
				}
				regs[d2] = mem[addr]
				return fall2, steps
			}
		case exec.XFLdLd:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+4 > tmax {
					return gen1, steps
				}
				m.ctr.disp[k1]++
				addr := regs[a1].Val() + uimm1
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc1, addr), steps
				}
				regs[d1] = mem[addr]
				steps += 2
				addr = regs[a1b].Val() + uimm1b
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc1+1, addr), steps
				}
				regs[d1b] = mem[addr]
				m.ctr.disp[k2]++
				addr = regs[a2].Val() + uimm2
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc2, addr), steps
				}
				regs[d2] = mem[addr]
				steps += 2
				addr = regs[a2b].Val() + uimm2b
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc2+1, addr), steps
				}
				regs[d2b] = mem[addr]
				return fall2, steps
			}
		case exec.XFMovMov:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+4 > tmax {
					return gen1, steps
				}
				m.ctr.disp[k1]++
				addr := regs[a1].Val() + uimm1
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc1, addr), steps
				}
				regs[d1] = mem[addr]
				steps += 2
				addr = regs[a1b].Val() + uimm1b
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc1+1, addr), steps
				}
				regs[d1b] = mem[addr]
				m.ctr.disp[k2]++
				regs[d2] = regs[a2]
				steps += 2
				regs[d2b] = regs[a2b]
				return fall2, steps
			}
		case exec.XJmp:
			// An unconditional jump pairs with the op at its TARGET rather than
			// the next slot: the jump's step is counted, the back-edge poll runs
			// between the two (exactly where the per-op chain polls, so a
			// deadline abort leaves the same step count), then the landing op
			// executes in the same dispatch. Exits are the landing op's
			// successors relative to j.
			switch k2 {
			case exec.XMov, exec.XMovCP:
				return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
					if steps+2 > tmax {
						return gen1, steps
					}
					steps++
					m.ctr.disp[k1]++
					if jback {
						m.tpoll--
						if m.tpoll <= 0 {
							m.tpoll = m.pollEvery()
							if err := m.pollCheck(pc1); err != nil {
								m.terr = err
								return nil, steps
							}
						}
					}
					steps++
					m.ctr.disp[k2]++
					regs[d2] = regs[a2]
					return fall2, steps
				}
			case exec.XBrCmpOrdR:
				return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
					if steps+2 > tmax {
						return gen1, steps
					}
					steps++
					m.ctr.disp[k1]++
					if jback {
						m.tpoll--
						if m.tpoll <= 0 {
							m.tpoll = m.pollEvery()
							if err := m.pollCheck(pc1); err != nil {
								m.terr = err
								return nil, steps
							}
						}
					}
					steps++
					m.ctr.disp[k2]++
					if exec.OrdCmp(regs[a2].Int(), regs[b2].Int(), cond2) {
						if tback2 {
							return m.tEdge(pc2, tgt2), steps
						}
						return tgt2, steps
					}
					return fall2, steps
				}
			case exec.XBrTagEq:
				return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
					if steps+2 > tmax {
						return gen1, steps
					}
					steps++
					m.ctr.disp[k1]++
					if jback {
						m.tpoll--
						if m.tpoll <= 0 {
							m.tpoll = m.pollEvery()
							if err := m.pollCheck(pc1); err != nil {
								m.terr = err
								return nil, steps
							}
						}
					}
					steps++
					m.ctr.disp[k2]++
					if regs[a2].Tag() == tag2 {
						if tback2 {
							return m.tEdge(pc2, tgt2), steps
						}
						return tgt2, steps
					}
					return fall2, steps
				}
			case exec.XBrTagNe:
				return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
					if steps+2 > tmax {
						return gen1, steps
					}
					steps++
					m.ctr.disp[k1]++
					if jback {
						m.tpoll--
						if m.tpoll <= 0 {
							m.tpoll = m.pollEvery()
							if err := m.pollCheck(pc1); err != nil {
								m.terr = err
								return nil, steps
							}
						}
					}
					steps++
					m.ctr.disp[k2]++
					if regs[a2].Tag() != tag2 {
						if tback2 {
							return m.tEdge(pc2, tgt2), steps
						}
						return tgt2, steps
					}
					return fall2, steps
				}
			case exec.XFLdLd:
				return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
					if steps+3 > tmax {
						return gen1, steps
					}
					steps++
					m.ctr.disp[k1]++
					if jback {
						m.tpoll--
						if m.tpoll <= 0 {
							m.tpoll = m.pollEvery()
							if err := m.pollCheck(pc1); err != nil {
								m.terr = err
								return nil, steps
							}
						}
					}
					m.ctr.disp[k2]++
					addr := regs[a2].Val() + uimm2
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pc2, addr), steps
					}
					regs[d2] = mem[addr]
					steps += 2
					addr = regs[a2b].Val() + uimm2b
					if addr >= uint64(len(mem)) {
						return m.tLoadErr(pc2+1, addr), steps
					}
					regs[d2b] = mem[addr]
					return fall2, steps
				}
			}

		case exec.XFMovJmp:
			// Move + unconditional jump, then the op at the jump target. The
			// near-budget delegate (gen1) reproduces the fused op's partial
			// execution when only one step remains.
			switch k2 {
			case exec.XBrTagEq:
				return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
					if steps+3 > tmax {
						return gen1, steps
					}
					m.ctr.disp[k1]++
					regs[d1] = regs[a1]
					steps += 2
					if jback {
						m.tpoll--
						if m.tpoll <= 0 {
							m.tpoll = m.pollEvery()
							if err := m.pollCheck(pc1); err != nil {
								m.terr = err
								return nil, steps
							}
						}
					}
					steps++
					m.ctr.disp[k2]++
					if regs[a2].Tag() == tag2 {
						if tback2 {
							return m.tEdge(pc2, tgt2), steps
						}
						return tgt2, steps
					}
					return fall2, steps
				}
			case exec.XBrTagNe:
				return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
					if steps+3 > tmax {
						return gen1, steps
					}
					m.ctr.disp[k1]++
					regs[d1] = regs[a1]
					steps += 2
					if jback {
						m.tpoll--
						if m.tpoll <= 0 {
							m.tpoll = m.pollEvery()
							if err := m.pollCheck(pc1); err != nil {
								m.terr = err
								return nil, steps
							}
						}
					}
					steps++
					m.ctr.disp[k2]++
					if regs[a2].Tag() != tag2 {
						if tback2 {
							return m.tEdge(pc2, tgt2), steps
						}
						return tgt2, steps
					}
					return fall2, steps
				}
			case exec.XMov, exec.XMovCP:
				return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
					if steps+3 > tmax {
						return gen1, steps
					}
					m.ctr.disp[k1]++
					regs[d1] = regs[a1]
					steps += 2
					if jback {
						m.tpoll--
						if m.tpoll <= 0 {
							m.tpoll = m.pollEvery()
							if err := m.pollCheck(pc1); err != nil {
								m.terr = err
								return nil, steps
							}
						}
					}
					steps++
					m.ctr.disp[k2]++
					regs[d2] = regs[a2]
					return fall2, steps
				}
			}

		case exec.XBrCmpOrdR:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+3 > tmax {
					return gen1, steps
				}
				m.ctr.disp[k1]++
				addr := regs[a1].Val() + uimm1
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc1, addr), steps
				}
				regs[d1] = mem[addr]
				steps += 2
				addr = regs[a1b].Val() + uimm1b
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc1+1, addr), steps
				}
				regs[d1b] = mem[addr]
				steps++
				m.ctr.disp[k2]++
				if exec.OrdCmp(regs[a2].Int(), regs[b2].Int(), cond2) {
					if tback2 {
						return m.tEdge(pc2, tgt2), steps
					}
					return tgt2, steps
				}
				return fall2, steps
			}
		}

	case exec.XFLdBrCmpEqR, exec.XFLdBrCmpNeR:
		// Load + compare-branch: taken exits with both constituents
		// counted; not taken falls into the second op.
		wantEq := k1 == exec.XFLdBrCmpEqR
		switch k2 {
		case exec.XFMovJmp:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+4 > tmax {
					return gen1, steps
				}
				m.ctr.disp[k1]++
				addr := regs[a1].Val() + uimm1
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc1, addr), steps
				}
				regs[d1] = mem[addr]
				steps += 2
				if (regs[d1b] == regs[a1b]) == wantEq {
					if tback1 {
						return m.tEdge(pc1, tgt1), steps
					}
					return tgt1, steps
				}
				m.ctr.disp[k2]++
				regs[d2] = regs[a2]
				steps += 2
				if tback2 {
					return m.tEdge(pc2, tgt2), steps
				}
				return tgt2, steps
			}
		}

	case exec.XFMovMov:
		// Two moves, then a second op.
		switch k2 {
		case exec.XJmp:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+3 > tmax {
					return gen1, steps
				}
				m.ctr.disp[k1]++
				regs[d1] = regs[a1]
				steps += 2
				regs[d1b] = regs[a1b]
				steps++
				m.ctr.disp[k2]++
				if tback2 {
					return m.tEdge(pc2, tgt2), steps
				}
				return tgt2, steps
			}
		case exec.XFMovMov:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+4 > tmax {
					return gen1, steps
				}
				m.ctr.disp[k1]++
				regs[d1] = regs[a1]
				steps += 2
				regs[d1b] = regs[a1b]
				m.ctr.disp[k2]++
				regs[d2] = regs[a2]
				steps += 2
				regs[d2b] = regs[a2b]
				return fall2, steps
			}
		case exec.XJsr:
			retw2 := word.Make(word.Code, uint64(pc2+1))
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+3 > tmax {
					return gen1, steps
				}
				m.ctr.disp[k1]++
				regs[d1] = regs[a1]
				steps += 2
				regs[d1b] = regs[a1b]
				steps++
				m.ctr.disp[k2]++
				regs[d2] = retw2
				if tback2 {
					return m.tEdge(pc2, tgt2), steps
				}
				return tgt2, steps
			}
		}

	case exec.XLd, exec.XLdUndo:
		// One load, then a second op.
		switch k2 {
		case exec.XJmp:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k1]++
				addr := regs[a1].Val() + uimm1
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc1, addr), steps
				}
				regs[d1] = mem[addr]
				steps++
				m.ctr.disp[k2]++
				if tback2 {
					return m.tEdge(pc2, tgt2), steps
				}
				return tgt2, steps
			}
		case exec.XAddI:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k1]++
				addr := regs[a1].Val() + uimm1
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc1, addr), steps
				}
				regs[d1] = mem[addr]
				steps++
				m.ctr.disp[k2]++
				av := regs[a2]
				regs[d2] = word.Make(av.Tag(), uint64(av.Int()+imm2))
				return fall2, steps
			}
		case exec.XSt:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k1]++
				addr := regs[a1].Val() + uimm1
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc1, addr), steps
				}
				regs[d1] = mem[addr]
				steps++
				m.ctr.disp[k2]++
				addr = regs[a2].Val() + uimm2
				if addr >= m.limit[ri2] {
					return m.tRaise(pc2, kOver2, throw, throwBack2, tSkipNone), steps
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc2, addr), steps
				}
				mem[addr] = regs[b2]
				m.st.Touch(addr)
				return fall2, steps
			}
		case exec.XFMovISt:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+3 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k1]++
				addr := regs[a1].Val() + uimm1
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc1, addr), steps
				}
				regs[d1] = mem[addr]
				m.ctr.disp[k2]++
				regs[d2] = w2
				steps += 2
				addr = regs[a2b].Val() + uimm2b
				if addr >= m.limit[ri2b] {
					return m.tRaise(pc2+1, kOver2b, throw, throwBack2, tSkipNone), steps
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc2+1, addr), steps
				}
				mem[addr] = regs[d2b]
				m.st.Touch(addr)
				return fall2, steps
			}
		case exec.XJmpR:
			xof := s.XOf
			selfx2 := j
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k1]++
				addr := regs[a1].Val() + uimm1
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc1, addr), steps
				}
				regs[d1] = mem[addr]
				steps++
				m.ctr.disp[k2]++
				tv := int(regs[a2].Val())
				if tv < 0 || tv >= len(xof) || xof[tv] < 0 {
					return m.tFail(tv, "pc out of range"), steps
				}
				nx := int(xof[tv])
				if nx <= selfx2 {
					return m.tEdge(pc2, &tops[nx]), steps
				}
				return &tops[nx], steps
			}
		}

	case exec.XAddI:
		// add.i, then a second op.
		switch k2 {
		case exec.XAddR:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k1]++
				av := regs[a1]
				regs[d1] = word.Make(av.Tag(), uint64(av.Int()+imm1))
				steps++
				m.ctr.disp[k2]++
				av = regs[a2]
				regs[d2] = word.Make(av.Tag(), uint64(av.Int()+regs[b2].Int()))
				return fall2, steps
			}
		case exec.XFMovMov:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+3 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k1]++
				av := regs[a1]
				regs[d1] = word.Make(av.Tag(), uint64(av.Int()+imm1))
				m.ctr.disp[k2]++
				regs[d2] = regs[a2]
				steps += 2
				regs[d2b] = regs[a2b]
				return fall2, steps
			}
		}

	case exec.XSubI:
		// sub.i, then a load.
		switch k2 {
		case exec.XLd, exec.XLdUndo:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k1]++
				av := regs[a1]
				regs[d1] = word.Make(av.Tag(), uint64(av.Int()-imm1))
				steps++
				m.ctr.disp[k2]++
				addr := regs[a2].Val() + uimm2
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc2, addr), steps
				}
				regs[d2] = mem[addr]
				return fall2, steps
			}
		}

	case exec.XAddR:
		// add.r, then a second op.
		switch k2 {
		case exec.XFStMovI:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+3 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k1]++
				av := regs[a1]
				regs[d1] = word.Make(av.Tag(), uint64(av.Int()+regs[b1].Int()))
				m.ctr.disp[k2]++
				addr := regs[a2].Val() + uimm2
				if addr >= m.limit[ri2] {
					return m.tRaise(pc2, kOver2, throw, throwBack2, tSkipStMovI), steps + 1
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc2, addr), steps
				}
				mem[addr] = regs[b2]
				m.st.Touch(addr)
				steps += 2
				regs[d2b] = w2
				return fall2, steps
			}
		case exec.XBrCmpNeR:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k1]++
				av := regs[a1]
				regs[d1] = word.Make(av.Tag(), uint64(av.Int()+regs[b1].Int()))
				steps++
				m.ctr.disp[k2]++
				if regs[a2] != regs[b2] {
					if tback2 {
						return m.tEdge(pc2, tgt2), steps
					}
					return tgt2, steps
				}
				return fall2, steps
			}
		}

	case exec.XSubR:
		switch k2 {
		case exec.XBrCmpNeR:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k1]++
				av := regs[a1]
				regs[d1] = word.Make(av.Tag(), uint64(av.Int()-regs[b1].Int()))
				steps++
				m.ctr.disp[k2]++
				if regs[a2] != regs[b2] {
					if tback2 {
						return m.tEdge(pc2, tgt2), steps
					}
					return tgt2, steps
				}
				return fall2, steps
			}
		}

	case exec.XLea:
		switch k2 {
		case exec.XFStSt:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+3 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k1]++
				regs[d1] = word.Make(tag1, uint64(regs[a1].Int()+imm1))
				m.ctr.disp[k2]++
				addr := regs[a2].Val() + uimm2
				if addr >= m.limit[ri2] {
					return m.tRaise(pc2, kOver2, throw, throwBack2, tSkipStSt), steps + 1
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc2, addr), steps
				}
				mem[addr] = regs[b2]
				m.st.Touch(addr)
				steps += 2
				addr = regs[a2b].Val() + uimm2b
				if addr >= m.limit[ri2b] {
					return m.tRaise(pc2+1, kOver2b, throw, throwBack2, tSkipNone), steps
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc2+1, addr), steps
				}
				mem[addr] = regs[d2b]
				m.st.Touch(addr)
				return fall2, steps
			}
		}

	case exec.XSt:
		// st, then a second op.
		switch k2 {
		case exec.XFCMovR:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+3 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k1]++
				addr := regs[a1].Val() + uimm1
				if addr >= m.limit[ri1] {
					return m.tRaise(pc1, kOver1, throw, throwBack1, tSkipNone), steps
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc1, addr), steps
				}
				mem[addr] = regs[b1]
				m.st.Touch(addr)
				steps++
				m.ctr.disp[k2]++
				if !exec.CmpW(regs[a2], regs[b2], cond2) {
					steps++
					m.ctr.cmovMoves++
					regs[d2b] = regs[a2b]
				}
				return fall2, steps
			}
		case exec.XMov, exec.XMovCP:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k1]++
				addr := regs[a1].Val() + uimm1
				if addr >= m.limit[ri1] {
					return m.tRaise(pc1, kOver1, throw, throwBack1, tSkipNone), steps
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc1, addr), steps
				}
				mem[addr] = regs[b1]
				m.st.Touch(addr)
				steps++
				m.ctr.disp[k2]++
				regs[d2] = regs[a2]
				return fall2, steps
			}
		case exec.XJmp:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k1]++
				addr := regs[a1].Val() + uimm1
				if addr >= m.limit[ri1] {
					return m.tRaise(pc1, kOver1, throw, throwBack1, tSkipNone), steps
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc1, addr), steps
				}
				mem[addr] = regs[b1]
				m.st.Touch(addr)
				steps++
				m.ctr.disp[k2]++
				if tback2 {
					return m.tEdge(pc2, tgt2), steps
				}
				return tgt2, steps
			}
		}

	case exec.XFStSt:
		// Two stores, then a second op.
		switch k2 {
		case exec.XSt:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+3 > tmax {
					return gen1, steps
				}
				m.ctr.disp[k1]++
				addr := regs[a1].Val() + uimm1
				if addr >= m.limit[ri1] {
					return m.tRaise(pc1, kOver1, throw, throwBack1, tSkipStSt), steps + 1
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc1, addr), steps
				}
				mem[addr] = regs[b1]
				m.st.Touch(addr)
				steps += 2
				addr = regs[a1b].Val() + uimm1b
				if addr >= m.limit[ri1b] {
					return m.tRaise(pc1+1, kOver1b, throw, throwBack1, tSkipNone), steps
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc1+1, addr), steps
				}
				mem[addr] = regs[d1b]
				m.st.Touch(addr)
				steps++
				m.ctr.disp[k2]++
				addr = regs[a2].Val() + uimm2
				if addr >= m.limit[ri2] {
					return m.tRaise(pc2, kOver2, throw, throwBack2, tSkipNone), steps
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc2, addr), steps
				}
				mem[addr] = regs[b2]
				m.st.Touch(addr)
				return fall2, steps
			}
		case exec.XFStSt:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+4 > tmax {
					return gen1, steps
				}
				m.ctr.disp[k1]++
				addr := regs[a1].Val() + uimm1
				if addr >= m.limit[ri1] {
					return m.tRaise(pc1, kOver1, throw, throwBack1, tSkipStSt), steps + 1
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc1, addr), steps
				}
				mem[addr] = regs[b1]
				m.st.Touch(addr)
				steps += 2
				addr = regs[a1b].Val() + uimm1b
				if addr >= m.limit[ri1b] {
					return m.tRaise(pc1+1, kOver1b, throw, throwBack1, tSkipNone), steps
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc1+1, addr), steps
				}
				mem[addr] = regs[d1b]
				m.st.Touch(addr)
				m.ctr.disp[k2]++
				addr = regs[a2].Val() + uimm2
				if addr >= m.limit[ri2] {
					return m.tRaise(pc2, kOver2, throw, throwBack2, tSkipStSt), steps + 1
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc2, addr), steps
				}
				mem[addr] = regs[b2]
				m.st.Touch(addr)
				steps += 2
				addr = regs[a2b].Val() + uimm2b
				if addr >= m.limit[ri2b] {
					return m.tRaise(pc2+1, kOver2b, throw, throwBack2, tSkipNone), steps
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc2+1, addr), steps
				}
				mem[addr] = regs[d2b]
				m.st.Touch(addr)
				return fall2, steps
			}
		case exec.XFMovISt:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+4 > tmax {
					return gen1, steps
				}
				m.ctr.disp[k1]++
				addr := regs[a1].Val() + uimm1
				if addr >= m.limit[ri1] {
					return m.tRaise(pc1, kOver1, throw, throwBack1, tSkipStSt), steps + 1
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc1, addr), steps
				}
				mem[addr] = regs[b1]
				m.st.Touch(addr)
				steps += 2
				addr = regs[a1b].Val() + uimm1b
				if addr >= m.limit[ri1b] {
					return m.tRaise(pc1+1, kOver1b, throw, throwBack1, tSkipNone), steps
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc1+1, addr), steps
				}
				mem[addr] = regs[d1b]
				m.st.Touch(addr)
				m.ctr.disp[k2]++
				regs[d2] = w2
				steps += 2
				addr = regs[a2b].Val() + uimm2b
				if addr >= m.limit[ri2b] {
					return m.tRaise(pc2+1, kOver2b, throw, throwBack2, tSkipNone), steps
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc2+1, addr), steps
				}
				mem[addr] = regs[d2b]
				m.st.Touch(addr)
				return fall2, steps
			}
		}

	case exec.XFStMovI:
		switch k2 {
		case exec.XFStSt:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+4 > tmax {
					return gen1, steps
				}
				m.ctr.disp[k1]++
				addr := regs[a1].Val() + uimm1
				if addr >= m.limit[ri1] {
					return m.tRaise(pc1, kOver1, throw, throwBack1, tSkipStMovI), steps + 1
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc1, addr), steps
				}
				mem[addr] = regs[b1]
				m.st.Touch(addr)
				steps += 2
				regs[d1b] = w1
				m.ctr.disp[k2]++
				addr = regs[a2].Val() + uimm2
				if addr >= m.limit[ri2] {
					return m.tRaise(pc2, kOver2, throw, throwBack2, tSkipStSt), steps + 1
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc2, addr), steps
				}
				mem[addr] = regs[b2]
				m.st.Touch(addr)
				steps += 2
				addr = regs[a2b].Val() + uimm2b
				if addr >= m.limit[ri2b] {
					return m.tRaise(pc2+1, kOver2b, throw, throwBack2, tSkipNone), steps
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc2+1, addr), steps
				}
				mem[addr] = regs[d2b]
				m.st.Touch(addr)
				return fall2, steps
			}
		}

	case exec.XFMovISt:
		// An immediate move and a store, then a second op.
		switch k2 {
		case exec.XFStSt:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+4 > tmax {
					return gen1, steps
				}
				m.ctr.disp[k1]++
				regs[d1] = w1
				steps += 2
				addr := regs[a1b].Val() + uimm1b
				if addr >= m.limit[ri1b] {
					return m.tRaise(pc1+1, kOver1b, throw, throwBack1, tSkipNone), steps
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc1+1, addr), steps
				}
				mem[addr] = regs[d1b]
				m.st.Touch(addr)
				m.ctr.disp[k2]++
				addr = regs[a2].Val() + uimm2
				if addr >= m.limit[ri2] {
					return m.tRaise(pc2, kOver2, throw, throwBack2, tSkipStSt), steps + 1
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc2, addr), steps
				}
				mem[addr] = regs[b2]
				m.st.Touch(addr)
				steps += 2
				addr = regs[a2b].Val() + uimm2b
				if addr >= m.limit[ri2b] {
					return m.tRaise(pc2+1, kOver2b, throw, throwBack2, tSkipNone), steps
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc2+1, addr), steps
				}
				mem[addr] = regs[d2b]
				m.st.Touch(addr)
				return fall2, steps
			}
		case exec.XJmp:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+3 > tmax {
					return gen1, steps
				}
				m.ctr.disp[k1]++
				regs[d1] = w1
				steps += 2
				addr := regs[a1b].Val() + uimm1b
				if addr >= m.limit[ri1b] {
					return m.tRaise(pc1+1, kOver1b, throw, throwBack1, tSkipNone), steps
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc1+1, addr), steps
				}
				mem[addr] = regs[d1b]
				m.st.Touch(addr)
				steps++
				m.ctr.disp[k2]++
				if tback2 {
					return m.tEdge(pc2, tgt2), steps
				}
				return tgt2, steps
			}
		}

	case exec.XFCMovR:
		// Conditional move (one or two constituent steps), then stores.
		switch k2 {
		case exec.XFStSt:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+4 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k1]++
				if !exec.CmpW(regs[a1], regs[b1], cond1) {
					steps++
					m.ctr.cmovMoves++
					regs[d1b] = regs[a1b]
				}
				m.ctr.disp[k2]++
				addr := regs[a2].Val() + uimm2
				if addr >= m.limit[ri2] {
					return m.tRaise(pc2, kOver2, throw, throwBack2, tSkipStSt), steps + 1
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc2, addr), steps
				}
				mem[addr] = regs[b2]
				m.st.Touch(addr)
				steps += 2
				addr = regs[a2b].Val() + uimm2b
				if addr >= m.limit[ri2b] {
					return m.tRaise(pc2+1, kOver2b, throw, throwBack2, tSkipNone), steps
				}
				if addr >= uint64(len(mem)) {
					return m.tStoreErr(pc2+1, addr), steps
				}
				mem[addr] = regs[d2b]
				m.st.Touch(addr)
				return fall2, steps
			}
		}

	case exec.XBrCmpEqI, exec.XBrCmpNeI:
		// An immediate compare-branch, then two loads when it falls through.
		ne1 := k1 == exec.XBrCmpNeI
		switch k2 {
		case exec.XFLdLd:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+3 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k1]++
				if (regs[a1] == w1) == !ne1 {
					if tback1 {
						return m.tEdge(pc1, tgt1), steps
					}
					return tgt1, steps
				}
				m.ctr.disp[k2]++
				addr := regs[a2].Val() + uimm2
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc2, addr), steps
				}
				regs[d2] = mem[addr]
				steps += 2
				addr = regs[a2b].Val() + uimm2b
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc2+1, addr), steps
				}
				regs[d2b] = mem[addr]
				return fall2, steps
			}
		}

	case exec.XJmp:
		// An unconditional jump pairs with the op at its TARGET rather than
		// the next slot: the jump's step is counted, the back-edge poll runs
		// between the two (exactly where the per-op chain polls, so a
		// deadline abort leaves the same step count), then the landing op
		// executes in the same dispatch. Exits are the landing op's
		// successors relative to j.
		switch k2 {
		case exec.XMov, exec.XMovCP:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k1]++
				if jback {
					m.tpoll--
					if m.tpoll <= 0 {
						m.tpoll = m.pollEvery()
						if err := m.pollCheck(pc1); err != nil {
							m.terr = err
							return nil, steps
						}
					}
				}
				steps++
				m.ctr.disp[k2]++
				regs[d2] = regs[a2]
				return fall2, steps
			}
		case exec.XBrCmpOrdR:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k1]++
				if jback {
					m.tpoll--
					if m.tpoll <= 0 {
						m.tpoll = m.pollEvery()
						if err := m.pollCheck(pc1); err != nil {
							m.terr = err
							return nil, steps
						}
					}
				}
				steps++
				m.ctr.disp[k2]++
				if exec.OrdCmp(regs[a2].Int(), regs[b2].Int(), cond2) {
					if tback2 {
						return m.tEdge(pc2, tgt2), steps
					}
					return tgt2, steps
				}
				return fall2, steps
			}
		case exec.XBrTagEq:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k1]++
				if jback {
					m.tpoll--
					if m.tpoll <= 0 {
						m.tpoll = m.pollEvery()
						if err := m.pollCheck(pc1); err != nil {
							m.terr = err
							return nil, steps
						}
					}
				}
				steps++
				m.ctr.disp[k2]++
				if regs[a2].Tag() == tag2 {
					if tback2 {
						return m.tEdge(pc2, tgt2), steps
					}
					return tgt2, steps
				}
				return fall2, steps
			}
		case exec.XBrTagNe:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k1]++
				if jback {
					m.tpoll--
					if m.tpoll <= 0 {
						m.tpoll = m.pollEvery()
						if err := m.pollCheck(pc1); err != nil {
							m.terr = err
							return nil, steps
						}
					}
				}
				steps++
				m.ctr.disp[k2]++
				if regs[a2].Tag() != tag2 {
					if tback2 {
						return m.tEdge(pc2, tgt2), steps
					}
					return tgt2, steps
				}
				return fall2, steps
			}
		case exec.XFLdLd:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+3 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k1]++
				if jback {
					m.tpoll--
					if m.tpoll <= 0 {
						m.tpoll = m.pollEvery()
						if err := m.pollCheck(pc1); err != nil {
							m.terr = err
							return nil, steps
						}
					}
				}
				m.ctr.disp[k2]++
				addr := regs[a2].Val() + uimm2
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc2, addr), steps
				}
				regs[d2] = mem[addr]
				steps += 2
				addr = regs[a2b].Val() + uimm2b
				if addr >= uint64(len(mem)) {
					return m.tLoadErr(pc2+1, addr), steps
				}
				regs[d2b] = mem[addr]
				return fall2, steps
			}
		}

	case exec.XFMovJmp:
		// Move + unconditional jump, then the op at the jump target. The
		// near-budget delegate (gen1) reproduces the fused op's partial
		// execution when only one step remains.
		switch k2 {
		case exec.XBrTagEq:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+3 > tmax {
					return gen1, steps
				}
				m.ctr.disp[k1]++
				regs[d1] = regs[a1]
				steps += 2
				if jback {
					m.tpoll--
					if m.tpoll <= 0 {
						m.tpoll = m.pollEvery()
						if err := m.pollCheck(pc1); err != nil {
							m.terr = err
							return nil, steps
						}
					}
				}
				steps++
				m.ctr.disp[k2]++
				if regs[a2].Tag() == tag2 {
					if tback2 {
						return m.tEdge(pc2, tgt2), steps
					}
					return tgt2, steps
				}
				return fall2, steps
			}
		case exec.XBrTagNe:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+3 > tmax {
					return gen1, steps
				}
				m.ctr.disp[k1]++
				regs[d1] = regs[a1]
				steps += 2
				if jback {
					m.tpoll--
					if m.tpoll <= 0 {
						m.tpoll = m.pollEvery()
						if err := m.pollCheck(pc1); err != nil {
							m.terr = err
							return nil, steps
						}
					}
				}
				steps++
				m.ctr.disp[k2]++
				if regs[a2].Tag() != tag2 {
					if tback2 {
						return m.tEdge(pc2, tgt2), steps
					}
					return tgt2, steps
				}
				return fall2, steps
			}
		case exec.XMov, exec.XMovCP:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+3 > tmax {
					return gen1, steps
				}
				m.ctr.disp[k1]++
				regs[d1] = regs[a1]
				steps += 2
				if jback {
					m.tpoll--
					if m.tpoll <= 0 {
						m.tpoll = m.pollEvery()
						if err := m.pollCheck(pc1); err != nil {
							m.terr = err
							return nil, steps
						}
					}
				}
				steps++
				m.ctr.disp[k2]++
				regs[d2] = regs[a2]
				return fall2, steps
			}
		}

	case exec.XBrCmpOrdR:
		switch k2 {
		case exec.XSubI:
			return func(m *Machine, regs *tregs, mem []word.W, steps, tmax int64) (*top, int64) {
				if steps+2 > tmax {
					return gen1, steps
				}
				steps++
				m.ctr.disp[k1]++
				if exec.OrdCmp(regs[a1].Int(), regs[b1].Int(), cond1) {
					if tback1 {
						return m.tEdge(pc1, tgt1), steps
					}
					return tgt1, steps
				}
				steps++
				m.ctr.disp[k2]++
				av := regs[a2]
				regs[d2] = word.Make(av.Tag(), uint64(av.Int()-imm2))
				return fall2, steps
			}
		}
	}
	return nil
}
