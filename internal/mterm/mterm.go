// Package mterm manipulates runtime Prolog terms stored in simulated
// machine memory: dereferencing, write/1-style formatting and standard-
// order comparison. It is shared by the sequential emulator and the VLIW
// simulator so both produce identical observable output.
package mterm

import (
	"fmt"
	"strings"

	"symbol/internal/term"
	"symbol/internal/word"
)

// Mem is the accessor the term walkers use; out-of-range loads must return
// an error.
type Mem interface {
	Load(addr uint64) (word.W, error)
}

// SliceMem adapts a flat memory image.
type SliceMem []word.W

// Load implements Mem.
func (m SliceMem) Load(addr uint64) (word.W, error) {
	if addr >= uint64(len(m)) {
		return 0, fmt.Errorf("mterm: load out of range: %#x", addr)
	}
	return m[addr], nil
}

const maxDepth = 10000

// Deref follows reference chains; an unbound variable dereferences to its
// own self-reference word.
func Deref(m Mem, w word.W) (word.W, error) {
	for i := 0; ; i++ {
		if i > 1<<20 {
			return 0, fmt.Errorf("mterm: reference cycle")
		}
		if w.Tag() != word.Ref {
			return w, nil
		}
		v, err := m.Load(w.Ptr())
		if err != nil {
			return 0, err
		}
		if v == w {
			return w, nil
		}
		w = v
	}
}

// Format renders a term the way write/1 does.
func Format(m Mem, atoms *term.Table, w word.W) (string, error) {
	var b strings.Builder
	if err := format(&b, m, atoms, w, 0); err != nil {
		return "", err
	}
	return b.String(), nil
}

func format(b *strings.Builder, m Mem, atoms *term.Table, w word.W, depth int) error {
	if depth > maxDepth {
		return fmt.Errorf("mterm: term too deep")
	}
	w, err := Deref(m, w)
	if err != nil {
		return err
	}
	switch w.Tag() {
	case word.Ref:
		fmt.Fprintf(b, "_%d", w.Ptr())
	case word.Int:
		fmt.Fprintf(b, "%d", w.Int())
	case word.Atom:
		b.WriteString(atoms.Name(uint32(w.Val())))
	case word.Lst:
		b.WriteByte('[')
		for {
			h, err := m.Load(w.Ptr())
			if err != nil {
				return err
			}
			if err := format(b, m, atoms, h, depth+1); err != nil {
				return err
			}
			t, err := m.Load(w.Ptr() + 1)
			if err != nil {
				return err
			}
			t, err = Deref(m, t)
			if err != nil {
				return err
			}
			if t.Tag() == word.Lst {
				b.WriteByte(',')
				w = t
				continue
			}
			if t.Tag() == word.Atom && t.Val() == 0 { // '[]' is atom index 0
				b.WriteByte(']')
				return nil
			}
			b.WriteByte('|')
			if err := format(b, m, atoms, t, depth+1); err != nil {
				return err
			}
			b.WriteByte(']')
			return nil
		}
	case word.Str:
		f, err := m.Load(w.Ptr())
		if err != nil {
			return err
		}
		b.WriteString(atoms.Name(f.FunAtom()))
		b.WriteByte('(')
		for i := 0; i < f.FunArity(); i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			x, err := m.Load(w.Ptr() + 1 + uint64(i))
			if err != nil {
				return err
			}
			if err := format(b, m, atoms, x, depth+1); err != nil {
				return err
			}
		}
		b.WriteByte(')')
	default:
		fmt.Fprintf(b, "<%s>", w)
	}
	return nil
}

// Compare implements the standard order of terms: Var < Int < Atom <
// Compound (compound terms by arity, then functor name, then arguments).
func Compare(m Mem, atoms *term.Table, a, b word.W) (int, error) {
	return compare(m, atoms, a, b, 0)
}

func compare(m Mem, atoms *term.Table, a, b word.W, depth int) (int, error) {
	if depth > maxDepth {
		return 0, fmt.Errorf("mterm: term too deep")
	}
	a, err := Deref(m, a)
	if err != nil {
		return 0, err
	}
	b, err = Deref(m, b)
	if err != nil {
		return 0, err
	}
	rank := func(w word.W) int {
		switch w.Tag() {
		case word.Ref:
			return 0
		case word.Int:
			return 1
		case word.Atom:
			return 2
		default:
			return 3
		}
	}
	if ra, rb := rank(a), rank(b); ra != rb {
		return sign(int64(ra - rb)), nil
	}
	switch a.Tag() {
	case word.Ref:
		return sign(int64(a.Ptr()) - int64(b.Ptr())), nil
	case word.Int:
		return sign(a.Int() - b.Int()), nil
	case word.Atom:
		return strings.Compare(atoms.Name(uint32(a.Val())), atoms.Name(uint32(b.Val()))), nil
	}
	fa, na, err := functorOf(m, atoms, a)
	if err != nil {
		return 0, err
	}
	fb, nb, err := functorOf(m, atoms, b)
	if err != nil {
		return 0, err
	}
	if na != nb {
		return sign(int64(na - nb)), nil
	}
	if c := strings.Compare(fa, fb); c != 0 {
		return c, nil
	}
	base := uint64(1)
	if a.Tag() == word.Lst {
		base = 0
	}
	for i := uint64(0); i < uint64(na); i++ {
		x, err := m.Load(a.Ptr() + base + i)
		if err != nil {
			return 0, err
		}
		y, err := m.Load(b.Ptr() + base + i)
		if err != nil {
			return 0, err
		}
		c, err := compare(m, atoms, x, y, depth+1)
		if err != nil || c != 0 {
			return c, err
		}
	}
	return 0, nil
}

func functorOf(m Mem, atoms *term.Table, w word.W) (string, int, error) {
	if w.Tag() == word.Lst {
		return ".", 2, nil
	}
	f, err := m.Load(w.Ptr())
	if err != nil {
		return "", 0, err
	}
	return atoms.Name(f.FunAtom()), f.FunArity(), nil
}

func sign(x int64) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}
