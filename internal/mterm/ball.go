// Ball-area manipulation for catch/throw. The ball area (ic.BallBase..)
// holds the exception state shared by the IC runtime routines and the Go
// side of both executors:
//
//	[BallBase+0]  ball-pending flag (int 0/1)
//	[BallBase+1]  ball root word
//	[BallBase+2…] the copied ball term
//
// throw/1 copies its argument here (SysBallPut) before the unwind
// destroys the heap bindings it may reference; the machine writes
// resource_error(Area) balls here directly when it converts an area
// overflow into a catchable fault.
package mterm

import (
	"fmt"

	"symbol/internal/ic"
	"symbol/internal/term"
	"symbol/internal/word"
)

const (
	ballFlag = ic.BallBase
	ballRoot = ic.BallBase + 1
	ballData = ic.BallBase + 2
)

// BallPut implements the SysBallPut escape: copy the term rooted at w
// into the ball area and arm the ball flag. mem must be the full
// simulated memory image.
func BallPut(mem []word.W, w word.W) error {
	root, err := copyTerm(mem, w)
	if err != nil {
		return err
	}
	mem[ballFlag] = word.MakeInt(1)
	mem[ballRoot] = root
	return nil
}

// BallFault writes a resource_error(Area) or zero-divisor ball for a
// converted machine fault and arms the flag. The atoms are interned by
// the translator, so Lookup failing means the program was not produced by
// the standard pipeline; the caller then reports the fault as a hard
// error instead.
func BallFault(mem []word.W, atoms *term.Table, name string) bool {
	if name == "" {
		// Arithmetic fault: the ball is the bare atom zero_divisor.
		name = "zero_divisor"
		a, ok := atoms.Lookup(name)
		if !ok {
			return false
		}
		mem[ballFlag] = word.MakeInt(1)
		mem[ballRoot] = word.Make(word.Atom, uint64(a))
		return true
	}
	re, ok1 := atoms.Lookup("resource_error")
	a, ok2 := atoms.Lookup(name)
	if !ok1 || !ok2 {
		return false
	}
	mem[ballData] = word.MakeFun(re, 1)
	mem[ballData+1] = word.Make(word.Atom, uint64(a))
	mem[ballFlag] = word.MakeInt(1)
	mem[ballRoot] = word.Make(word.Str, ballData)
	return true
}

// copyTerm copies the term rooted at w into the ball data area and
// returns the new root word. Unbound variables become fresh unbound cells
// in the ball area; sharing within the term is not preserved (each
// occurrence copies), which is acceptable for exception balls. The copy
// is depth-first with an explicit stack of (source, destination-cell)
// pairs and fails cleanly if the ball area fills up.
func copyTerm(mem []word.W, w word.W) (word.W, error) {
	limit := uint64(ic.BallBase + ic.BallSize)
	next := uint64(ballData)
	alloc := func(n uint64) (uint64, error) {
		if next+n > limit {
			return 0, fmt.Errorf("mterm: ball too large for the ball area")
		}
		a := next
		next += n
		return a, nil
	}
	m := SliceMem(mem)

	var copy1 func(w word.W, depth int) (word.W, error)
	copy1 = func(w word.W, depth int) (word.W, error) {
		if depth > maxDepth {
			return 0, fmt.Errorf("mterm: ball term too deep")
		}
		w, err := Deref(m, w)
		if err != nil {
			return 0, err
		}
		switch w.Tag() {
		case word.Ref: // unbound: fresh cell in the ball area
			a, err := alloc(1)
			if err != nil {
				return 0, err
			}
			mem[a] = word.MakeRef(a)
			return word.MakeRef(a), nil
		case word.Lst:
			a, err := alloc(2)
			if err != nil {
				return 0, err
			}
			for i := uint64(0); i < 2; i++ {
				x, err := m.Load(w.Ptr() + i)
				if err != nil {
					return 0, err
				}
				c, err := copy1(x, depth+1)
				if err != nil {
					return 0, err
				}
				mem[a+i] = c
			}
			return word.Make(word.Lst, a), nil
		case word.Str:
			f, err := m.Load(w.Ptr())
			if err != nil {
				return 0, err
			}
			n := uint64(f.FunArity())
			a, err := alloc(1 + n)
			if err != nil {
				return 0, err
			}
			mem[a] = f
			for i := uint64(0); i < n; i++ {
				x, err := m.Load(w.Ptr() + 1 + i)
				if err != nil {
					return 0, err
				}
				c, err := copy1(x, depth+1)
				if err != nil {
					return 0, err
				}
				mem[a+1+i] = c
			}
			return word.Make(word.Str, a), nil
		default: // atoms, ints, functor words: immediate
			return w, nil
		}
	}
	return copy1(w, 0)
}
