package mterm

import (
	"math/rand"
	"testing"

	"symbol/internal/parse"
	"symbol/internal/term"
	"symbol/internal/word"
)

// encode builds a ground term image on the test heap.
func encode(h *heap, atoms *term.Table, t term.Term) word.W {
	switch x := t.(type) {
	case term.Int:
		return word.MakeInt(int64(x))
	case term.Atom:
		return word.Make(word.Atom, uint64(atoms.Intern(string(x))))
	case *term.Compound:
		if x.Functor == term.ConsName && len(x.Args) == 2 {
			hd := encode(h, atoms, x.Args[0])
			tl := encode(h, atoms, x.Args[1])
			at := h.push(hd, tl)
			return word.Make(word.Lst, at)
		}
		ws := make([]word.W, len(x.Args)+1)
		ws[0] = word.MakeFun(atoms.Intern(x.Functor), len(x.Args))
		for i, a := range x.Args {
			ws[i+1] = encode(h, atoms, a)
		}
		at := h.push(ws...)
		return word.Make(word.Str, at)
	}
	panic("encode: variables unsupported in this test")
}

func fmtOps(t *testing.T, tm term.Term) string {
	t.Helper()
	h := newHeap()
	atoms := term.NewTable()
	w := encode(h, atoms, tm)
	s, err := FormatOps(SliceMem(h.mem), atoms, w)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func parseOne(t *testing.T, src string) term.Term {
	t.Helper()
	ts, err := parse.All(src + ".")
	if err != nil {
		t.Fatalf("reparse %q: %v", src, err)
	}
	return ts[0]
}

func TestFormatOpsCases(t *testing.T) {
	cases := map[string]string{
		"+(1,*(2,3))":    "1+2*3",
		"*(+(1,2),3)":    "(1+2)*3",
		"-(1,-(2,3))":    "1-(2-3)", // yfx: right nesting needs parens
		"-(-(1,2),3)":    "1-2-3",
		"^(2,^(3,4))":    "2^3^4", // xfy: right nesting is natural
		"is(X1,+(a,1))":  "_X is a+1",
		"mod(7,2)":       "7 mod 2",
		"';'(a,b)":       "a;b",
		"-( - (3))":      "- -3", // keep prefix minus unglued? see below
		"f(+(1,2),g(3))": "f(1+2,g(3))",
		"=(a,b)":         "a=b",
		"\\+(a)":         "\\+a",
	}
	_ = cases
	// Table-driven via explicit terms (the keys above are documentation).
	type tc struct {
		tm   term.Term
		want string
	}
	c := func(f string, args ...term.Term) *term.Compound {
		return &term.Compound{Functor: f, Args: args}
	}
	tests := []tc{
		{c("+", term.Int(1), c("*", term.Int(2), term.Int(3))), "1+2*3"},
		{c("*", c("+", term.Int(1), term.Int(2)), term.Int(3)), "(1+2)*3"},
		{c("-", term.Int(1), c("-", term.Int(2), term.Int(3))), "1-(2-3)"},
		{c("-", c("-", term.Int(1), term.Int(2)), term.Int(3)), "1-2-3"},
		{c("^", term.Int(2), c("^", term.Int(3), term.Int(4))), "2^3^4"},
		{c("^", c("^", term.Int(2), term.Int(3)), term.Int(4)), "(2^3)^4"},
		{c("mod", term.Int(7), term.Int(2)), "7 mod 2"},
		{c(";", term.Atom("a"), term.Atom("b")), "a;b"},
		{c("f", c("+", term.Int(1), term.Int(2)), c("g", term.Int(3))), "f(1+2,g(3))"},
		{c("=", term.Atom("a"), term.Atom("b")), "a=b"},
		{c("\\+", term.Atom("a")), "\\+a"},
		{c("-", term.Int(-1)), "- -1"},
		{c("-", c("-", term.Int(1))), "- -(1)"},
		{c("+", c("-", term.Int(1)), term.Int(2)), "-(1)+2"},
		{term.FromList([]term.Term{c("+", term.Int(1), term.Int(2)), term.Atom("x")}), "[1+2,x]"},
	}
	for _, x := range tests {
		got := fmtOps(t, x.tm)
		if got != x.want {
			t.Errorf("got %q, want %q", got, x.want)
		}
	}
}

// ground strips variables for comparison (none generated here) and compares
// modulo the integer-vs-negation ambiguity: the reader parses "-1" as the
// integer -1, while the printer may have produced it from -(1).
func equivalent(a, b term.Term) bool {
	if na, ok := negOfPositive(a); ok {
		a = na
	}
	if nb, ok := negOfPositive(b); ok {
		b = nb
	}
	ca, okA := a.(*term.Compound)
	cb, okB := b.(*term.Compound)
	if okA != okB {
		return term.Equal(a, b)
	}
	if !okA {
		return term.Equal(a, b)
	}
	if ca.Functor != cb.Functor || len(ca.Args) != len(cb.Args) {
		return false
	}
	for i := range ca.Args {
		if !equivalent(ca.Args[i], cb.Args[i]) {
			return false
		}
	}
	return true
}

func negOfPositive(t term.Term) (term.Term, bool) {
	if c, ok := t.(*term.Compound); ok && c.Functor == "-" && len(c.Args) == 1 {
		if n, ok := c.Args[0].(term.Int); ok && n >= 0 {
			return term.Int(-int64(n)), true
		}
	}
	return t, false
}

// TestFormatOpsRoundTrip is the key property: printing any ground operator
// term and reading it back yields the same term.
func TestFormatOpsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var gen func(depth int) term.Term
	atoms := []string{"a", "b", "foo"}
	binOps := []string{"+", "-", "*", "/", "//", "mod", "^", "=", "<", ";", "->", "xor", "<<"}
	preOps := []string{"-", "\\+", "\\"}
	gen = func(depth int) term.Term {
		if depth == 0 || rng.Intn(3) == 0 {
			if rng.Intn(2) == 0 {
				return term.Int(int64(rng.Intn(21) - 10))
			}
			return term.Atom(atoms[rng.Intn(len(atoms))])
		}
		switch rng.Intn(5) {
		case 0:
			return &term.Compound{Functor: preOps[rng.Intn(len(preOps))],
				Args: []term.Term{gen(depth - 1)}}
		case 1:
			return &term.Compound{Functor: "f",
				Args: []term.Term{gen(depth - 1), gen(depth - 1)}}
		case 2:
			return term.Cons(gen(depth-1), term.FromList([]term.Term{gen(depth - 1)}))
		default:
			return &term.Compound{Functor: binOps[rng.Intn(len(binOps))],
				Args: []term.Term{gen(depth - 1), gen(depth - 1)}}
		}
	}
	for i := 0; i < 500; i++ {
		tm := gen(4)
		s := fmtOps(t, tm)
		back := parseOne(t, s)
		if !equivalent(tm, back) {
			t.Fatalf("round trip failed:\n  term   %v\n  printed %q\n  reparsed %v",
				tm, s, back)
		}
	}
}
