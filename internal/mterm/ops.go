package mterm

import (
	"fmt"
	"strings"

	"symbol/internal/term"
	"symbol/internal/word"
)

// The standard operator table, mirrored from the reader, used by write/1 to
// print operator terms in operator notation with minimal parentheses.
type opKind uint8

const (
	opXFX opKind = iota
	opXFY
	opYFX
	opFY
	opFX
)

type opInfo struct {
	prio int
	kind opKind
}

var infixOps = map[string]opInfo{
	":-": {1200, opXFX}, "-->": {1200, opXFX},
	";":  {1100, opXFY},
	"->": {1050, opXFY},
	",":  {1000, opXFY},
	"=":  {700, opXFX}, "\\=": {700, opXFX}, "==": {700, opXFX},
	"\\==": {700, opXFX}, "is": {700, opXFX}, "=:=": {700, opXFX},
	"=\\=": {700, opXFX}, "<": {700, opXFX}, ">": {700, opXFX},
	"=<": {700, opXFX}, ">=": {700, opXFX}, "@<": {700, opXFX},
	"@>": {700, opXFX}, "@=<": {700, opXFX}, "@>=": {700, opXFX},
	"=..": {700, opXFX},
	"+":   {500, opYFX}, "-": {500, opYFX}, "/\\": {500, opYFX},
	"\\/": {500, opYFX}, "xor": {500, opYFX},
	"*": {400, opYFX}, "/": {400, opYFX}, "//": {400, opYFX},
	"mod": {400, opYFX}, "rem": {400, opYFX}, "<<": {400, opYFX},
	">>": {400, opYFX},
	"**": {200, opXFX}, "^": {200, opXFY},
}

var prefixOps = map[string]opInfo{
	":-": {1200, opFX}, "?-": {1200, opFX},
	"\\+": {900, opFY},
	"-":   {200, opFY}, "+": {200, opFY}, "\\": {200, opFY},
}

// glueWriter emits tokens, inserting a space whenever two adjacent tokens
// would otherwise lex as one (symbolic-symbolic or alphanumeric-
// alphanumeric adjacency), so printed terms always read back as written.
type glueWriter struct {
	b    strings.Builder
	last byte
	// afterInfix suppresses the name-( separator once: a '(' directly
	// after an infix operator is unambiguous.
	afterInfix bool
}

const symChars = "+-*/\\^<>=~:.?@#&$"

func symCh(c byte) bool { return strings.IndexByte(symChars, c) >= 0 }

func alnumCh(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

func (g *glueWriter) WriteString(s string) {
	if s == "" {
		return
	}
	c := s[0]
	nameEnd := symCh(g.last) || alnumCh(g.last)
	switch {
	case (symCh(g.last) && symCh(c)) || (alnumCh(g.last) && alnumCh(c)):
		// Two halves of one token.
		g.b.WriteByte(' ')
	case c == '(' && nameEnd && !g.afterInfix:
		// name( re-reads as functional notation; separate unless the
		// caller used Functional() or the name was an infix operator.
		g.b.WriteByte(' ')
	}
	g.b.WriteString(s)
	g.last = s[len(s)-1]
	g.afterInfix = false
}

// Infix writes an infix operator name; a directly following '(' is
// unambiguous after it.
func (g *glueWriter) Infix(name string) {
	g.WriteString(name)
	g.afterInfix = true
}

// Functional glues a '(' directly to the preceding functor name,
// bypassing the ambiguity separator (intentional functional notation).
func (g *glueWriter) Functional() {
	g.b.WriteByte('(')
	g.last = '('
}

func (g *glueWriter) WriteByte(c byte) error {
	g.WriteString(string(c))
	return nil
}

// FormatOps renders a term like Format but uses operator notation for the
// standard operators, inserting parentheses only where priorities demand
// and spaces only where tokens would otherwise glue.
func FormatOps(m Mem, atoms *term.Table, w word.W) (string, error) {
	var b glueWriter
	if err := formatOps(&b, m, atoms, w, 1200, 0); err != nil {
		return "", err
	}
	return b.b.String(), nil
}

// formatOps writes w assuming the context accepts priority up to maxPrec.
func formatOps(b *glueWriter, m Mem, atoms *term.Table, w word.W, maxPrec, depth int) error {
	if depth > maxDepth {
		return fmt.Errorf("mterm: term too deep")
	}
	w, err := Deref(m, w)
	if err != nil {
		return err
	}
	switch w.Tag() {
	case word.Ref:
		b.WriteString(fmt.Sprintf("_%d", w.Ptr()))
		return nil
	case word.Int:
		b.WriteString(fmt.Sprintf("%d", w.Int()))
		return nil
	case word.Atom:
		b.WriteString(atoms.Name(uint32(w.Val())))
		return nil
	case word.Lst:
		return formatOpsList(b, m, atoms, w, depth)
	case word.Str:
		f, err := m.Load(w.Ptr())
		if err != nil {
			return err
		}
		name := atoms.Name(f.FunAtom())
		arity := f.FunArity()
		arg := func(i int) (word.W, error) { return m.Load(w.Ptr() + 1 + uint64(i)) }

		if arity == 2 {
			if op, ok := infixOps[name]; ok {
				lMax, rMax := op.prio-1, op.prio-1
				switch op.kind {
				case opXFY:
					rMax = op.prio
				case opYFX:
					lMax = op.prio
				}
				open := op.prio > maxPrec
				if open {
					b.WriteByte('(')
				}
				l, err := arg(0)
				if err != nil {
					return err
				}
				if err := formatOps(b, m, atoms, l, lMax, depth+1); err != nil {
					return err
				}
				b.Infix(name)
				r, err := arg(1)
				if err != nil {
					return err
				}
				if err := formatOps(b, m, atoms, r, rMax, depth+1); err != nil {
					return err
				}
				if open {
					b.WriteByte(')')
				}
				return nil
			}
		}
		if arity == 1 {
			if op, ok := prefixOps[name]; ok {
				sub := op.prio
				if op.kind == opFX {
					sub = op.prio - 1
				}
				a0, err := arg(0)
				if err != nil {
					return err
				}
				// Render the operand first: if it begins with a digit, a
				// prefix - or + would re-read as a signed numeric literal,
				// so fall back to functional notation, e.g. -(1^0).
				var scratch glueWriter
				if err := formatOps(&scratch, m, atoms, a0, sub, depth+1); err != nil {
					return err
				}
				operand := scratch.b.String()
				if (name == "-" || name == "+") && operand != "" &&
					operand[0] >= '0' && operand[0] <= '9' {
					b.WriteString(name)
					b.Functional()
					var inner glueWriter
					if err := formatOps(&inner, m, atoms, a0, 999, depth+1); err != nil {
						return err
					}
					b.WriteString(inner.b.String())
					b.WriteByte(')')
					return nil
				}
				open := op.prio > maxPrec
				if open {
					b.WriteByte('(')
				}
				b.WriteString(name)
				b.WriteString(operand)
				if open {
					b.WriteByte(')')
				}
				return nil
			}
		}
		// Plain functional notation.
		b.WriteString(name)
		b.Functional()
		for i := 0; i < arity; i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			x, err := arg(i)
			if err != nil {
				return err
			}
			if err := formatOps(b, m, atoms, x, 999, depth+1); err != nil {
				return err
			}
		}
		b.WriteByte(')')
		return nil
	default:
		b.WriteString(fmt.Sprintf("<%s>", w))
		return nil
	}
}

func formatOpsList(b *glueWriter, m Mem, atoms *term.Table, w word.W, depth int) error {
	b.WriteByte('[')
	for {
		h, err := m.Load(w.Ptr())
		if err != nil {
			return err
		}
		if err := formatOps(b, m, atoms, h, 999, depth+1); err != nil {
			return err
		}
		t, err := m.Load(w.Ptr() + 1)
		if err != nil {
			return err
		}
		t, err = Deref(m, t)
		if err != nil {
			return err
		}
		if t.Tag() == word.Lst {
			b.WriteByte(',')
			w = t
			continue
		}
		if t.Tag() == word.Atom && t.Val() == 0 {
			b.WriteByte(']')
			return nil
		}
		b.WriteByte('|')
		if err := formatOps(b, m, atoms, t, 999, depth+1); err != nil {
			return err
		}
		b.WriteByte(']')
		return nil
	}
}
