package mterm

import (
	"testing"

	"symbol/internal/term"
	"symbol/internal/word"
)

// heap is a tiny builder for runtime term images.
type heap struct {
	mem  []word.W
	next uint64
}

func newHeap() *heap { return &heap{mem: make([]word.W, 4096), next: 16} }

func (h *heap) push(ws ...word.W) uint64 {
	at := h.next
	for i, w := range ws {
		h.mem[at+uint64(i)] = w
	}
	h.next += uint64(len(ws))
	return at
}

func (h *heap) unbound() word.W {
	at := h.push(0)
	h.mem[at] = word.MakeRef(at)
	return word.MakeRef(at)
}

func (h *heap) list(items ...word.W) word.W {
	tail := word.W(word.Make(word.Atom, 0)) // []
	for i := len(items) - 1; i >= 0; i-- {
		at := h.push(items[i], tail)
		tail = word.Make(word.Lst, at)
	}
	return tail
}

func atoms() *term.Table {
	t := term.NewTable()
	t.Intern("foo")
	t.Intern("bar")
	t.Intern("f")
	return t
}

func TestFormatBasics(t *testing.T) {
	h := newHeap()
	at := atoms()
	fooIdx, _ := at.Lookup("foo")

	cases := []struct {
		w    word.W
		want string
	}{
		{word.MakeInt(42), "42"},
		{word.MakeInt(-3), "-3"},
		{word.Make(word.Atom, uint64(fooIdx)), "foo"},
		{word.Make(word.Atom, 0), "[]"},
		{h.list(word.MakeInt(1), word.MakeInt(2)), "[1,2]"},
	}
	for _, c := range cases {
		got, err := Format(SliceMem(h.mem), at, c.w)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("got %q, want %q", got, c.want)
		}
	}
}

func TestFormatStructAndPartialList(t *testing.T) {
	h := newHeap()
	at := atoms()
	fIdx, _ := at.Lookup("f")

	sAt := h.push(word.MakeFun(fIdx, 2), word.MakeInt(1), word.MakeInt(2))
	s := word.Make(word.Str, sAt)
	got, err := Format(SliceMem(h.mem), at, s)
	if err != nil {
		t.Fatal(err)
	}
	if got != "f(1,2)" {
		t.Errorf("got %q", got)
	}

	v := h.unbound()
	cAt := h.push(word.MakeInt(9), v)
	got, err = Format(SliceMem(h.mem), at, word.Make(word.Lst, cAt))
	if err != nil {
		t.Fatal(err)
	}
	want := "[9|_" // unbound tail prints as _<addr>
	if len(got) < len(want) || got[:len(want)] != want {
		t.Errorf("got %q", got)
	}
}

func TestDerefChain(t *testing.T) {
	h := newHeap()
	// a → b → 7
	bAt := h.push(word.MakeInt(7))
	aAt := h.push(word.MakeRef(bAt))
	got, err := Deref(SliceMem(h.mem), word.MakeRef(aAt))
	if err != nil {
		t.Fatal(err)
	}
	if got != word.MakeInt(7) {
		t.Errorf("got %v", got)
	}
	// unbound cell dereferences to itself
	u := h.unbound()
	got, err = Deref(SliceMem(h.mem), u)
	if err != nil {
		t.Fatal(err)
	}
	if got != u {
		t.Errorf("unbound: got %v want %v", got, u)
	}
}

func TestCompareStandardOrder(t *testing.T) {
	h := newHeap()
	at := atoms()
	fooIdx, _ := at.Lookup("foo")
	barIdx, _ := at.Lookup("bar")
	fIdx, _ := at.Lookup("f")

	v := h.unbound()
	i1, i2 := word.MakeInt(1), word.MakeInt(2)
	afoo := word.Make(word.Atom, uint64(fooIdx))
	abar := word.Make(word.Atom, uint64(barIdx))
	s1 := word.Make(word.Str, h.push(word.MakeFun(fIdx, 1), i1))
	s2 := word.Make(word.Str, h.push(word.MakeFun(fIdx, 1), i2))
	l1 := h.list(i1)

	cmp := func(a, b word.W) int {
		c, err := Compare(SliceMem(h.mem), at, a, b)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	// Var < Int < Atom < Compound
	if cmp(v, i1) >= 0 || cmp(i1, afoo) >= 0 || cmp(afoo, s1) >= 0 {
		t.Error("standard order rank violated")
	}
	if cmp(i1, i2) >= 0 || cmp(i2, i1) <= 0 || cmp(i1, i1) != 0 {
		t.Error("integer order broken")
	}
	if cmp(abar, afoo) >= 0 { // bar < foo alphabetically
		t.Error("atom order broken")
	}
	if cmp(s1, s2) >= 0 || cmp(s1, s1) != 0 {
		t.Error("structure arg order broken")
	}
	if cmp(l1, l1) != 0 {
		t.Error("list must equal itself")
	}
	// Arity dominates name: f(1) < foo-struct of arity 2? build g/2
	g2 := word.Make(word.Str, h.push(word.MakeFun(barIdx, 2), i1, i2))
	if cmp(s1, g2) >= 0 {
		t.Error("lower arity must order first")
	}
}

func TestLoadOutOfRange(t *testing.T) {
	m := SliceMem(make([]word.W, 4))
	if _, err := m.Load(10); err == nil {
		t.Error("expected out-of-range error")
	}
	if _, err := Format(m, atoms(), word.Make(word.Lst, 100)); err == nil {
		t.Error("format through a bad pointer must fail")
	}
}
