package core

import (
	"testing"

	"symbol/internal/cfg"
	"symbol/internal/emu"
	"symbol/internal/ic"
	"symbol/internal/machine"
	"symbol/internal/term"
)

var (
	rA = ic.ArgReg(0)
	rB = ic.ArgReg(1)
)

const (
	t0 = ic.FirstTemp
	t1 = ic.FirstTemp + 1
	t2 = ic.FirstTemp + 2
)

func mkProg(code []ic.Inst, entries ...int) *ic.Program {
	e := map[int]bool{0: true}
	for _, x := range entries {
		e[x] = true
	}
	return &ic.Program{
		Code:    code,
		Atoms:   term.NewTable(),
		Procs:   map[string]int{},
		Names:   map[int]string{},
		Entries: e,
	}
}

// hotColdProg: a branch whose taken path is hot.
//
//	0: brcmp a0 eq 0 → 3   (taken 90%)
//	1: mov t0, a0          (cold)
//	2: jmp 4
//	3: mov t0, a1          (hot)
//	4: halt
func hotColdProg() (*ic.Program, *emu.Profile) {
	p := mkProg([]ic.Inst{
		{Op: ic.BrCmp, A: rA, Cond: ic.CondEq, HasImm: true, Imm: 0, Target: 3},
		{Op: ic.Mov, D: t0, A: rA},
		{Op: ic.Jmp, Target: 4},
		{Op: ic.Mov, D: t0, A: rB},
		{Op: ic.Halt},
	})
	prof := &emu.Profile{
		Expect: []int64{100, 10, 10, 90, 100},
		Taken:  []int64{90, 0, 10, 0, 0},
	}
	return p, prof
}

func TestTraceFollowsHotPath(t *testing.T) {
	p, prof := hotColdProg()
	g, err := cfg.Build(p, prof)
	if err != nil {
		t.Fatal(err)
	}
	traces := FormTraces(g, prof, DefaultOptions())
	// The hottest trace must start at the branch block and continue into
	// the taken (hot) block — but block 4 is a join, so it stays out.
	t0trace := traces[0]
	if t0trace.Blocks[0].Start != 0 {
		t.Fatalf("hottest trace starts at %d", t0trace.Blocks[0].Start)
	}
	if len(t0trace.Blocks) < 2 || t0trace.Blocks[1].Start != 3 {
		t.Fatalf("trace must grow into the hot successor: %v", t0trace)
	}
}

func TestCollectTraceInvertsBranch(t *testing.T) {
	p, prof := hotColdProg()
	g, err := cfg.Build(p, prof)
	if err != nil {
		t.Fatal(err)
	}
	traces := FormTraces(g, prof, DefaultOptions())
	insts := collectTrace(g, traces[0])
	// First instruction is the branch; its condition must be inverted
	// (eq → ne) and the exit must target the cold block (pc 1).
	br := insts[0]
	if br.inst.Cond != ic.CondNe {
		t.Errorf("branch not inverted: %v", br.inst.Cond)
	}
	if br.inst.Target != 1 {
		t.Errorf("exit target %d, want 1 (cold block)", br.inst.Target)
	}
	if br.offLive == nil {
		t.Error("exit live set missing")
	}
}

func TestBasicBlockModeKeepsBlocksSeparate(t *testing.T) {
	p, prof := hotColdProg()
	g, err := cfg.Build(p, prof)
	if err != nil {
		t.Fatal(err)
	}
	traces := FormTraces(g, prof, Options{TraceScheduling: false})
	for _, tr := range traces {
		if len(tr.Blocks) != 1 {
			t.Fatalf("basic-block mode produced a multi-block trace: %v", tr)
		}
	}
}

func TestTraceRespectsJoins(t *testing.T) {
	p, prof := hotColdProg()
	g, err := cfg.Build(p, prof)
	if err != nil {
		t.Fatal(err)
	}
	// A join block may appear mid-trace only as a tail-duplicated clone;
	// the canonical (addressable) occurrence is never buried.
	traces := FormTraces(g, prof, DefaultOptions())
	seen := map[int]int{}
	for _, tr := range traces {
		for i, b := range tr.Blocks {
			if i > 0 && len(b.Preds) != 1 && !tr.Cloned[i] {
				t.Fatalf("join block %d buried mid-trace without cloning", b.Start)
			}
			if !tr.Cloned[i] {
				seen[b.ID]++
			}
		}
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("block %d has %d canonical occurrences", id, n)
		}
	}
	// Without duplication the strict superblock rule holds.
	opts := DefaultOptions()
	opts.TailDuplication = false
	for _, tr := range FormTraces(g, prof, opts) {
		for i, b := range tr.Blocks {
			if i > 0 && len(b.Preds) != 1 {
				t.Fatalf("join block %d buried mid-trace", b.Start)
			}
		}
	}
}

func TestCompactEndToEnd(t *testing.T) {
	p, prof := hotColdProg()
	vp, stats, err := Compact(p, prof, machine.Default(2), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Traces < 2 {
		t.Errorf("expected several traces, got %d", stats.Traces)
	}
	if err := vp.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, ok := vp.WordOf[0]; !ok {
		t.Error("entry must be addressable")
	}
}

func TestCompactRejectsBadConfig(t *testing.T) {
	p, prof := hotColdProg()
	if _, _, err := Compact(p, prof, machine.Config{Units: 0}, DefaultOptions()); err == nil {
		t.Error("expected config validation error")
	}
}

func TestScheduleResourceLimit(t *testing.T) {
	// Six independent ALU ops on a 2-unit machine need three words.
	var insts []traceInst
	for i := 0; i < 6; i++ {
		insts = append(insts, traceInst{
			inst: ic.Inst{Op: ic.Add, D: t0 + ic.Reg(i), A: rA, HasImm: true, Imm: int64(i)},
			pc:   i,
		})
	}
	insts = append(insts, traceInst{inst: ic.Inst{Op: ic.Halt}, pc: 6})
	words, err := scheduleTrace(insts, machine.Default(2))
	if err != nil {
		t.Fatal(err)
	}
	aluWords := 0
	for _, w := range words {
		n := 0
		for _, op := range w {
			if op.Inst.Class() == ic.ClassALU {
				n++
			}
		}
		if n > 2 {
			t.Fatalf("word oversubscribed: %d alu ops", n)
		}
		if n > 0 {
			aluWords++
		}
	}
	if aluWords != 3 {
		t.Errorf("6 alu ops on 2 units need 3 words, got %d", aluWords)
	}
}

func TestScheduleHonorsLatency(t *testing.T) {
	insts := []traceInst{
		{inst: ic.Inst{Op: ic.Ld, D: t0, A: ic.RegH}, pc: 0},
		{inst: ic.Inst{Op: ic.Add, D: t1, A: t0, HasImm: true, Imm: 1}, pc: 1},
		{inst: ic.Inst{Op: ic.Halt}, pc: 2},
	}
	words, err := scheduleTrace(insts, machine.Default(4))
	if err != nil {
		t.Fatal(err)
	}
	ldW, addW := -1, -1
	for i, w := range words {
		for _, op := range w {
			switch op.Inst.Op {
			case ic.Ld:
				ldW = i
			case ic.Add:
				addW = i
			}
		}
	}
	if addW-ldW < 2 {
		t.Errorf("load consumer scheduled %d words after the load, want >= 2", addW-ldW)
	}
}

func TestTraceLenAndString(t *testing.T) {
	p, prof := hotColdProg()
	g, err := cfg.Build(p, prof)
	if err != nil {
		t.Fatal(err)
	}
	traces := FormTraces(g, prof, DefaultOptions())
	if traces[0].Len() <= 0 || traces[0].String() == "" {
		t.Error("trace length/rendering broken")
	}
}
