package core

import (
	"fmt"
	"sort"

	"symbol/internal/cfg"
	"symbol/internal/dep"
	"symbol/internal/emu"
	"symbol/internal/ic"
	"symbol/internal/machine"
	"symbol/internal/vliw"
)

// Stats reports compaction results.
type Stats struct {
	Traces int
	// AvgTraceLen is the execution-weighted average number of operations
	// per compaction unit (the paper's Table 1 "Average Length").
	AvgTraceLen float64
	// AvgTraceWords is the execution-weighted average schedule length.
	AvgTraceWords float64
	// StaticOps / StaticWords measure code expansion.
	StaticOps   int
	StaticWords int
}

// traceInst is one instruction of a trace being scheduled.
type traceInst struct {
	inst    ic.Inst
	pc      int // original pc (-1 for synthesized jumps)
	offLive map[ic.Reg]bool
}

// Compact runs the full back end: trace formation, per-trace list
// scheduling onto conf, and emission of a linked executable VLIW program.
func Compact(icp *ic.Program, prof *emu.Profile, conf machine.Config, opts Options) (*vliw.Program, *Stats, error) {
	if err := conf.Validate(); err != nil {
		return nil, nil, err
	}
	g, err := cfg.Build(icp, prof)
	if err != nil {
		return nil, nil, err
	}
	traces := FormTraces(g, prof, opts)
	traces = splitAtRequiredHeads(g, traces)

	prog := &vliw.Program{
		IC:     icp,
		WordOf: map[int]int{},
		Config: conf,
	}
	stats := &Stats{Traces: len(traces)}
	var wLen, wWords, wSum float64

	for _, t := range traces {
		insts := collectTrace(g, t)
		words, err := scheduleTrace(insts, conf)
		if err != nil {
			return nil, nil, fmt.Errorf("core: trace at pc %d: %w", t.Blocks[0].Start, err)
		}
		head := len(prog.Words)
		prog.TraceBounds = append(prog.TraceBounds, head)
		prog.WordOf[t.Blocks[0].Start] = head
		prog.Words = append(prog.Words, words...)

		w := float64(t.Weight)
		wLen += w * float64(len(insts))
		wWords += w * float64(len(words))
		wSum += w
		stats.StaticOps += len(insts)
	}
	stats.StaticWords = len(prog.Words)
	if wSum > 0 {
		stats.AvgTraceLen = wLen / wSum
		stats.AvgTraceWords = wWords / wSum
	}
	// Every indirect entry must be addressable.
	for pc := range icp.Entries {
		if _, ok := prog.WordOf[pc]; !ok {
			return nil, nil, fmt.Errorf("core: indirect entry pc %d not at a trace head", pc)
		}
	}
	prog.Entry = prog.WordOf[icp.Entry]
	if err := linkBranches(prog); err != nil {
		return nil, nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, nil, err
	}
	return prog, stats, nil
}

// splitAtRequiredHeads restores the invariant that every block a scheduled
// jump can target starts a trace. Tail duplication can end a trace whose
// continuation block was absorbed mid-trace elsewhere; such blocks are
// promoted to trace heads by cutting their (canonical, non-cloned)
// occurrence out of the middle of its trace. Cutting introduces a plain
// fall-through boundary whose continuation is the new head itself, so a
// single pass suffices.
func splitAtRequiredHeads(g *cfg.Graph, traces []*Trace) []*Trace {
	required := map[int]bool{} // block IDs that jumps must be able to reach
	for _, t := range traces {
		last := t.Blocks[len(t.Blocks)-1]
		for _, s := range last.Succs {
			required[s] = true
		}
	}
	var out []*Trace
	for _, t := range traces {
		start := 0
		for i := 1; i < len(t.Blocks); i++ {
			if required[t.Blocks[i].ID] && !t.Cloned[i] {
				w := t.Weight
				if start > 0 {
					w = t.Blocks[start].Weight
				}
				out = append(out, &Trace{
					Blocks: t.Blocks[start:i],
					Cloned: t.Cloned[start:i],
					Weight: w,
				})
				start = i
			}
		}
		if start == 0 {
			out = append(out, t)
		} else {
			out = append(out, &Trace{
				Blocks: t.Blocks[start:],
				Cloned: t.Cloned[start:],
				Weight: t.Blocks[start].Weight,
			})
		}
	}
	return out
}

// collectTrace gathers the trace's instructions, laying the predicted path
// out as fall-through: conditional branches whose likely direction was the
// taken one are inverted, internal unconditional jumps are deleted, and a
// trailing jump is synthesized when the trace's last block falls through to
// another trace. Off-trace live sets are attached to every conditional
// branch for the speculation rules.
func collectTrace(g *cfg.Graph, t *Trace) []traceInst {
	code := g.Prog.Code
	var out []traceInst
	for bi, b := range t.Blocks {
		var next *cfg.Block
		if bi+1 < len(t.Blocks) {
			next = t.Blocks[bi+1]
		}
		for pc := b.Start; pc < b.End; pc++ {
			in := code[pc] // copy
			isLast := pc == b.End-1
			if !isLast {
				out = append(out, traceInst{inst: in, pc: pc})
				continue
			}
			switch {
			case in.IsCondBranch():
				fall := g.Blocks[b.Succs[0]]
				tkn := g.Blocks[b.Succs[1]]
				cont, exit := fall, tkn
				if next != nil && next.ID == tkn.ID {
					// The likely path is the taken direction: invert the
					// condition so it falls through; the exit targets the
					// old fall-through block.
					in.Cond = in.Cond.Invert()
					cont, exit = tkn, fall
				}
				in.Target = exit.Start
				out = append(out, traceInst{inst: in, pc: pc, offLive: exit.LiveIn})
				if next == nil {
					// Trace ends on a conditional branch: make the
					// not-taken continuation explicit.
					out = append(out, traceInst{
						inst: ic.Inst{Op: ic.Jmp, Target: cont.Start},
						pc:   -1,
					})
				}
			case in.Op == ic.Jmp:
				if next != nil && next.Start == in.Target {
					continue // falls through inside the trace
				}
				out = append(out, traceInst{inst: in, pc: pc})
			case in.Op == ic.Jsr, in.Op == ic.JmpR, in.Op == ic.Halt:
				out = append(out, traceInst{inst: in, pc: pc})
			default:
				// Plain fall-through block end.
				out = append(out, traceInst{inst: in, pc: pc})
				if next == nil && len(b.Succs) == 1 {
					out = append(out, traceInst{
						inst: ic.Inst{Op: ic.Jmp, Target: g.Blocks[b.Succs[0]].Start},
						pc:   -1,
					})
				}
			}
		}
	}
	return out
}

// scheduleTrace compacts one trace with critical-path list scheduling under
// the machine's per-word resource limits, verifying every dependency edge
// of the final schedule.
func scheduleTrace(insts []traceInst, conf machine.Config) ([]vliw.Word, error) {
	n := len(insts)
	if n == 0 {
		return nil, nil
	}
	raw := make([]ic.Inst, n)
	offLive := make([]map[ic.Reg]bool, n)
	for i, ti := range insts {
		raw[i] = ti.inst
		offLive[i] = ti.offLive
	}
	dg := dep.Build(raw, dep.Options{
		MemLatency:          conf.MemLatency,
		OffLive:             offLive,
		DisambiguateRegions: conf.DisambiguateRegions,
		BranchBubble:        conf.BranchBubble,
	})
	prio := dg.CriticalPath()

	memS, aluS, moveS, ctrlS, sysS := conf.Slots()
	type slotUse struct{ mem, alu, move, ctrl, sys int }

	preds := make([]int, n)
	for i := range dg.Preds {
		preds[i] = len(dg.Preds[i])
	}
	earliest := make([]int, n)
	cycleOf := make([]int, n)
	for i := range cycleOf {
		cycleOf[i] = -1
	}

	// Ready list sorted by priority (critical path desc, index asc).
	var ready []int
	for i := 0; i < n; i++ {
		if preds[i] == 0 {
			ready = append(ready, i)
		}
	}
	sortReady := func() {
		sort.SliceStable(ready, func(a, b int) bool {
			if prio[ready[a]] != prio[ready[b]] {
				return prio[ready[a]] > prio[ready[b]]
			}
			return ready[a] < ready[b]
		})
	}
	sortReady()

	var schedule [][]int // per cycle: scheduled trace indexes
	remaining := n
	cycle := 0
	for remaining > 0 {
		if cycle > conf.MemLatency*n+2*n+64 {
			return nil, fmt.Errorf("scheduler failed to converge")
		}
		var use slotUse
		for len(schedule) <= cycle {
			schedule = append(schedule, nil)
		}
		// Greedily fill the word: repeatedly take the highest-priority
		// ready instruction that fits; placements can unlock new ready
		// instructions within the same cycle only via zero-latency edges.
		for {
			pick := -1
			for k, j := range ready {
				if earliest[j] > cycle {
					continue
				}
				fits := false
				switch raw[j].Class() {
				case ic.ClassMemory:
					fits = use.mem < memS
				case ic.ClassALU:
					fits = use.alu < aluS
				case ic.ClassMove:
					fits = use.move < moveS
				case ic.ClassControl:
					fits = use.ctrl < ctrlS
				case ic.ClassSys:
					fits = use.sys < sysS
				}
				if fits && conf.SplitFormats {
					// Prototype formats (§5.1): ALU/move and control/sys
					// operations cannot share a word; memory issues in
					// both formats.
					switch raw[j].Class() {
					case ic.ClassALU, ic.ClassMove:
						fits = use.ctrl == 0 && use.sys == 0
					case ic.ClassControl, ic.ClassSys:
						fits = use.alu == 0 && use.move == 0
					}
				}
				if fits {
					pick = k
					break
				}
			}
			if pick < 0 {
				break
			}
			j := ready[pick]
			switch raw[j].Class() {
			case ic.ClassMemory:
				use.mem++
			case ic.ClassALU:
				use.alu++
			case ic.ClassMove:
				use.move++
			case ic.ClassControl:
				use.ctrl++
			case ic.ClassSys:
				use.sys++
			}
			cycleOf[j] = cycle
			schedule[cycle] = append(schedule[cycle], j)
			ready = append(ready[:pick], ready[pick+1:]...)
			remaining--
			added := false
			for _, e := range dg.Succs[j] {
				edge := dg.Edges[e]
				if c := cycle + edge.Latency; c > earliest[edge.To] {
					earliest[edge.To] = c
				}
				preds[edge.To]--
				if preds[edge.To] == 0 {
					ready = append(ready, edge.To)
					added = true
				}
			}
			if added {
				sortReady()
			}
		}
		cycle++
	}

	// Static verification: every edge must be honored.
	for _, e := range dg.Edges {
		if cycleOf[e.To] < cycleOf[e.From]+e.Latency {
			return nil, fmt.Errorf("schedule violates %s edge %d→%d", e.Kind, e.From, e.To)
		}
	}

	words := make([]vliw.Word, len(schedule))
	for c, idxs := range schedule {
		sort.Ints(idxs) // slot order = original order = branch priority
		for _, j := range idxs {
			words[c] = append(words[c], vliw.Op{Inst: raw[j], PC: insts[j].pc})
		}
	}
	// Trim trailing empty words.
	for len(words) > 0 && len(words[len(words)-1]) == 0 {
		words = words[:len(words)-1]
	}
	return words, nil
}

// linkBranches rewrites branch targets from original pcs to word indexes.
func linkBranches(p *vliw.Program) error {
	for wi := range p.Words {
		for oi := range p.Words[wi] {
			in := &p.Words[wi][oi].Inst
			switch in.Op {
			case ic.BrTag, ic.BrCmp, ic.Jmp, ic.Jsr:
				tw, ok := p.WordOf[in.Target]
				if !ok {
					return fmt.Errorf("core: branch target pc %d is not a trace head", in.Target)
				}
				in.Target = tw
			}
		}
	}
	return nil
}
