// Package core implements the SYMBOL back end (paper §3.2): a global
// parallelizing compiler derived from Trace Scheduling. Trace choice is
// guided by the execution statistics of the sequential emulator; each trace
// is compacted as a whole onto the functional units of a parameterized VLIW
// architecture with a Bottom-Up-Greedy-style list scheduler; exits are laid
// out so the predicted path falls through (branch conditions are inverted
// when the likely direction was the taken one).
//
// Traces never contain side entrances (they stop at join points), so the
// speculation rules of internal/dep guarantee the compacted program is
// semantically equivalent to the sequential one without compensation
// copies; the VLIW simulator re-runs every benchmark on the compacted code
// and checks it produces identical observable results.
package core

import (
	"fmt"
	"sort"

	"symbol/internal/cfg"
	"symbol/internal/emu"
)

// Trace is a side-entrance-free path of basic blocks chosen for compaction.
type Trace struct {
	Blocks []*cfg.Block
	// Cloned[i] marks tail-duplicated occurrences: the block also exists
	// canonically (addressably) in another trace.
	Cloned []bool
	Weight int64
}

// Options control trace formation.
type Options struct {
	// TraceScheduling enables multi-block traces; when false every basic
	// block is its own compaction unit (the Table 1 "basic blocks" row).
	TraceScheduling bool
	// MaxBlocks bounds trace length in blocks (0 = no bound).
	MaxBlocks int
	// MinSuccProbability is the minimum branch probability required to
	// extend a trace through a conditional branch (default 0.5: follow the
	// majority direction).
	MinSuccProbability float64
	// TailDuplication lets hot traces grow through join points by cloning
	// the joined code into the trace (the side-entrance-free equivalent of
	// trace scheduling's join bookkeeping: the original block remains the
	// target of all other predecessors). It trades code size for longer
	// compaction units, exactly the trade-off §4.4 discusses.
	TailDuplication bool
	// TailDupMinWeight is the minimum execution count a trace must have
	// for its joins to be duplicated (avoids cloning cold code).
	TailDupMinWeight int64
	// TailDupMaxOps caps the total number of duplicated instructions, as a
	// multiple of the original program size in percent (default 100: the
	// duplicated code may at most double the program).
	TailDupMaxOps int
}

// DefaultOptions enables trace scheduling with the paper's settings.
func DefaultOptions() Options {
	return Options{
		TraceScheduling:    true,
		MinSuccProbability: 0.5,
		TailDuplication:    true,
		TailDupMinWeight:   32,
		TailDupMaxOps:      40,
		MaxBlocks:          16,
	}
}

// FormTraces partitions all blocks of g into traces, most frequently
// executed first, following the most probable successors (paper §3.2:
// "trace choice is based on the statistical information about execution
// frequency extracted by preliminary simulation").
func FormTraces(g *cfg.Graph, prof *emu.Profile, opts Options) []*Trace {
	if opts.MinSuccProbability == 0 {
		opts.MinSuccProbability = 0.5
	}
	// Seed order: blocks by descending weight, then by position for
	// determinism.
	order := make([]*cfg.Block, len(g.Blocks))
	copy(order, g.Blocks)
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].Weight != order[j].Weight {
			return order[i].Weight > order[j].Weight
		}
		return order[i].Start < order[j].Start
	})

	taken := make([]bool, len(g.Blocks))
	var traces []*Trace
	dupBudget := 0
	if opts.TailDuplication {
		dupBudget = len(g.Prog.Code) * opts.TailDupMaxOps / 100
	}
	for _, seed := range order {
		if taken[seed.ID] {
			continue
		}
		t := &Trace{Weight: seed.Weight}
		taken[seed.ID] = true
		t.Blocks = append(t.Blocks, seed)
		t.Cloned = append(t.Cloned, false)
		if opts.TraceScheduling {
			growForward(g, prof, t, taken, opts, &dupBudget)
			growBackward(g, prof, t, taken, opts)
		}
		traces = append(traces, t)
	}
	// Emit hottest traces first so the common path is contiguous.
	sort.SliceStable(traces, func(i, j int) bool {
		if traces[i].Weight != traces[j].Weight {
			return traces[i].Weight > traces[j].Weight
		}
		return traces[i].Blocks[0].Start < traces[j].Blocks[0].Start
	})
	return traces
}

// mostLikelySucc picks the successor of b the execution most probably
// continues into, with its probability.
func mostLikelySucc(g *cfg.Graph, prof *emu.Profile, b *cfg.Block) (*cfg.Block, float64) {
	switch len(b.Succs) {
	case 0:
		return nil, 0
	case 1:
		return g.Blocks[b.Succs[0]], 1.0
	}
	p, ok := g.BranchProbability(prof, b)
	if !ok {
		// Never executed: assume fall-through.
		return g.Blocks[b.Succs[0]], 0.5
	}
	if p > 0.5 {
		return g.Blocks[b.Succs[1]], p
	}
	return g.Blocks[b.Succs[0]], 1 - p
}

// growForward extends the trace along the most probable successors. A block
// joins a trace directly if it is unvisited, has exactly one predecessor
// (no side entrances), is not an indirect entry point, and the edge
// probability clears the threshold. With tail duplication enabled, a hot
// trace may additionally grow through join points (or already-placed
// blocks) by cloning them: the clone lives only inside this trace while the
// original remains addressable for every other predecessor, so the
// side-entrance-free invariant is preserved without compensation code.
func growForward(g *cfg.Graph, prof *emu.Profile, t *Trace, taken []bool, opts Options, dupBudget *int) {
	cur := t.Blocks[len(t.Blocks)-1]
	inTrace := map[int]bool{}
	for _, b := range t.Blocks {
		inTrace[b.ID] = true
	}
	for {
		if opts.MaxBlocks > 0 && len(t.Blocks) >= opts.MaxBlocks {
			return
		}
		next, p := mostLikelySucc(g, prof, cur)
		if next == nil || p < opts.MinSuccProbability {
			return
		}
		clone := false
		switch {
		case !taken[next.ID] && !next.Indirect && len(next.Preds) == 1:
			taken[next.ID] = true
		case opts.TailDuplication &&
			t.Weight >= opts.TailDupMinWeight &&
			!next.Indirect &&
			!inTrace[next.ID] &&
			*dupBudget >= next.Len():
			// Clone the block into the trace; the original stays.
			*dupBudget -= next.Len()
			clone = true
		default:
			return
		}
		inTrace[next.ID] = true
		t.Blocks = append(t.Blocks, next)
		t.Cloned = append(t.Cloned, clone)
		cur = next
	}
}

// growBackward extends the trace upward: a predecessor P can become the new
// head if the current head is P's most likely successor and the head has no
// other predecessors and is not an indirect entry point.
func growBackward(g *cfg.Graph, prof *emu.Profile, t *Trace, taken []bool, opts Options) {
	head := t.Blocks[0]
	for {
		if opts.MaxBlocks > 0 && len(t.Blocks) >= opts.MaxBlocks {
			return
		}
		if head.Indirect || len(head.Preds) != 1 {
			return
		}
		p := g.Blocks[head.Preds[0]]
		if taken[p.ID] {
			return
		}
		ml, prob := mostLikelySucc(g, prof, p)
		if ml != head || prob < opts.MinSuccProbability {
			return
		}
		taken[p.ID] = true
		t.Blocks = append([]*cfg.Block{p}, t.Blocks...)
		t.Cloned = append([]bool{false}, t.Cloned...)
		head = p
	}
}

// Len returns the trace length in instructions (before jump removal).
func (t *Trace) Len() int {
	n := 0
	for _, b := range t.Blocks {
		n += b.Len()
	}
	return n
}

func (t *Trace) String() string {
	s := fmt.Sprintf("trace(w=%d:", t.Weight)
	for _, b := range t.Blocks {
		s += fmt.Sprintf(" %d-%d", b.Start, b.End)
	}
	return s + ")"
}
