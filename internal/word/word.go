// Package word defines the tagged machine word used throughout the SYMBOL
// pipeline. It mirrors the register organization of the prototype processor
// described in section 5.2 of the paper: every word carries a value field, a
// small tag field identifying the Prolog data type, and a cdr bit (kept for
// WAM compatibility; unused by the compiler but preserved by the datapath).
//
// The simulated machine is 64 bits wide: bits 61..63 hold the tag, bit 60
// holds the cdr bit, bits 0..59 hold the value. Integer values are stored as
// 60-bit two's complement; pointer values are word addresses into the
// simulated memory.
package word

import "fmt"

// Tag identifies the Prolog type of a word.
type Tag uint8

// The tag space. Ref must be zero so that zeroed memory reads as unbound
// self-references only after explicit initialization; the emulator treats a
// Ref word whose value equals its own address as an unbound variable.
const (
	Ref  Tag = iota // reference / unbound variable (value = address)
	Int             // 60-bit signed integer (value = two's complement)
	Atom            // atom (value = atom-table index)
	Lst             // list cell pointer (value = address of 2-word cons)
	Str             // structure pointer (value = address of functor cell)
	Fun             // functor cell (value = atom index<<16 | arity)
	Code            // code address (value = instruction index)
	NumTags
)

var tagNames = [NumTags]string{"ref", "int", "atm", "lst", "str", "fun", "cod"}

// String returns the conventional short mnemonic for the tag.
func (t Tag) String() string {
	if int(t) < len(tagNames) {
		return tagNames[t]
	}
	return fmt.Sprintf("tag(%d)", uint8(t))
}

// W is one tagged machine word.
type W uint64

const (
	tagShift  = 61
	cdrBit    = 1 << 60
	valueMask = (1 << 60) - 1
	signBit   = 1 << 59
)

// Make builds a word from a tag and an unsigned value (pointer, atom index,
// functor encoding or code address). The value must fit in 60 bits.
func Make(t Tag, v uint64) W {
	return W(uint64(t)<<tagShift | v&valueMask)
}

// MakeInt builds an integer word from a signed value, truncating to 60 bits.
func MakeInt(v int64) W {
	return W(uint64(Int)<<tagShift | uint64(v)&valueMask)
}

// MakeFun builds a functor cell for atom index a and arity n.
func MakeFun(a uint32, n int) W {
	return Make(Fun, uint64(a)<<16|uint64(n)&0xffff)
}

// MakeRef builds a reference word pointing at address a. An unbound variable
// at address a is represented as MakeRef(a) stored at a itself.
func MakeRef(a uint64) W { return Make(Ref, a) }

// Tag extracts the tag field.
func (w W) Tag() Tag { return Tag(w >> tagShift) }

// Cdr reports the cdr bit.
func (w W) Cdr() bool { return w&cdrBit != 0 }

// WithCdr returns the word with the cdr bit set.
func (w W) WithCdr() W { return w | cdrBit }

// Val extracts the raw unsigned 60-bit value field.
func (w W) Val() uint64 { return uint64(w) & valueMask }

// Ptr extracts the value field interpreted as a word address.
func (w W) Ptr() uint64 { return uint64(w) & valueMask }

// Int extracts the value field interpreted as a signed 60-bit integer.
func (w W) Int() int64 {
	v := uint64(w) & valueMask
	if v&signBit != 0 {
		v |= ^uint64(valueMask) // sign extend
	}
	return int64(v)
}

// FunAtom extracts the atom index from a functor cell.
func (w W) FunAtom() uint32 { return uint32(w.Val() >> 16) }

// FunArity extracts the arity from a functor cell.
func (w W) FunArity() int { return int(w.Val() & 0xffff) }

// WithTag returns the word with its tag replaced by t, value preserved.
// This models the prototype's tag-insertion datapath operation.
func (w W) WithTag(t Tag) W {
	return W(uint64(t)<<tagShift | uint64(w)&(valueMask|cdrBit))
}

// IsSelfRef reports whether the word is an unbound variable cell located at
// address a.
func (w W) IsSelfRef(a uint64) bool { return w.Tag() == Ref && w.Ptr() == a }

// String formats the word for listings and debugging.
func (w W) String() string {
	switch w.Tag() {
	case Int:
		return fmt.Sprintf("int:%d", w.Int())
	case Fun:
		return fmt.Sprintf("fun:%d/%d", w.FunAtom(), w.FunArity())
	default:
		return fmt.Sprintf("%s:%#x", w.Tag(), w.Val())
	}
}
