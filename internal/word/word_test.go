package word

import (
	"testing"
	"testing/quick"
)

func TestTagRoundTrip(t *testing.T) {
	f := func(v uint64, tag uint8) bool {
		tg := Tag(tag % uint8(NumTags))
		w := Make(tg, v)
		return w.Tag() == tg && w.Val() == v&((1<<60)-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		// 60-bit two's complement: values within range round-trip exactly.
		const lim = int64(1) << 59
		if v >= lim || v < -lim {
			v %= lim
		}
		w := MakeInt(v)
		return w.Tag() == Int && w.Int() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	cases := []int64{0, 1, -1, 42, -42, 1<<59 - 1, -(1 << 59)}
	for _, v := range cases {
		if got := MakeInt(v).Int(); got != v {
			t.Errorf("MakeInt(%d).Int() = %d", v, got)
		}
	}
}

func TestWithTagPreservesValue(t *testing.T) {
	f := func(v uint64, a, b uint8) bool {
		ta := Tag(a % uint8(NumTags))
		tb := Tag(b % uint8(NumTags))
		w := Make(ta, v).WithTag(tb)
		return w.Tag() == tb && w.Val() == v&((1<<60)-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFunEncoding(t *testing.T) {
	f := func(a uint32, n uint16) bool {
		// Atom index limited to 44 bits by the layout; 32 bits is plenty.
		w := MakeFun(a, int(n))
		return w.Tag() == Fun && w.FunAtom() == a && w.FunArity() == int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSelfRef(t *testing.T) {
	w := MakeRef(0x1234)
	if !w.IsSelfRef(0x1234) {
		t.Error("self reference not detected")
	}
	if w.IsSelfRef(0x1235) {
		t.Error("false self reference")
	}
	if MakeInt(0x1234).IsSelfRef(0x1234) {
		t.Error("int word cannot be a self reference")
	}
}

func TestCdrBit(t *testing.T) {
	w := Make(Lst, 7)
	if w.Cdr() {
		t.Error("cdr bit set unexpectedly")
	}
	wc := w.WithCdr()
	if !wc.Cdr() || wc.Tag() != Lst || wc.Val() != 7 {
		t.Error("WithCdr must set only the cdr bit")
	}
	// WithTag preserves the cdr bit (§5.2: independently addressable fields).
	if !wc.WithTag(Str).Cdr() {
		t.Error("WithTag must preserve the cdr bit")
	}
}

func TestStrings(t *testing.T) {
	if MakeInt(-5).String() != "int:-5" {
		t.Errorf("got %q", MakeInt(-5).String())
	}
	if MakeFun(3, 2).String() != "fun:3/2" {
		t.Errorf("got %q", MakeFun(3, 2).String())
	}
	if Make(Atom, 0).String() != "atm:0x0" {
		t.Errorf("got %q", Make(Atom, 0).String())
	}
}
