package exec

import (
	"testing"

	"symbol/internal/ic"
	"symbol/internal/term"
	"symbol/internal/word"
)

const (
	t0 = ic.FirstTemp
	t1 = ic.FirstTemp + 1
	t2 = ic.FirstTemp + 2
)

func mkProg(code []ic.Inst) *ic.Program {
	return &ic.Program{
		Code:    code,
		Atoms:   term.NewTable(),
		Procs:   map[string]int{},
		Names:   map[int]string{},
		Entries: map[int]bool{0: true},
	}
}

// TestDecode1Splits checks that the selector fields of ic.Inst become
// distinct opcodes: the run loops rely on never having to test HasImm,
// Cond or Sys again.
func TestDecode1Splits(t *testing.T) {
	cases := []struct {
		in   ic.Inst
		want XCode
	}{
		{ic.Inst{Op: ic.Add, D: t0, A: t0, B: t1}, XAddR},
		{ic.Inst{Op: ic.Add, D: t0, A: t0, HasImm: true, Imm: 3}, XAddI},
		{ic.Inst{Op: ic.Div, D: t0, A: t0, B: t1}, XDivR},
		{ic.Inst{Op: ic.Shr, D: t0, A: t0, HasImm: true, Imm: 1}, XShrI},
		{ic.Inst{Op: ic.BrCmp, A: t0, Cond: ic.CondEq, B: t1}, XBrCmpEqR},
		{ic.Inst{Op: ic.BrCmp, A: t0, Cond: ic.CondNe, HasImm: true, Word: word.MakeInt(1)}, XBrCmpNeI},
		{ic.Inst{Op: ic.BrCmp, A: t0, Cond: ic.CondLe, HasImm: true, Imm: 7}, XBrCmpOrdI},
		{ic.Inst{Op: ic.BrCmp, A: t0, Cond: ic.CondGt, B: t1}, XBrCmpOrdR},
		{ic.Inst{Op: ic.BrTag, A: t0, Tag: word.Lst}, XBrTagEq},
		{ic.Inst{Op: ic.BrTag, A: t0, Cond: ic.CondNe, Tag: word.Ref}, XBrTagNe},
		{ic.Inst{Op: ic.SysOp, Sys: ic.SysWrite, A: t0}, XSysWrite},
		{ic.Inst{Op: ic.SysOp, Sys: ic.SysNl}, XSysNl},
		{ic.Inst{Op: ic.SysOp, Sys: ic.SysID(99)}, XSysBad},
		{ic.Inst{Op: ic.Op(200)}, XUnknown},
	}
	for _, c := range cases {
		op := Decode1(&c.in, 0)
		if op.Code != c.want {
			t.Errorf("%s decodes to %s, want %s", c.in.String(), op.Code, c.want)
		}
		if op.Width != 1 {
			t.Errorf("%s has width %d, want 1", c.in.String(), op.Width)
		}
	}
}

// TestFusionCatalog drives each catalog shape through Predecode and checks
// the resulting superinstruction, its operands, and the stream bookkeeping
// (XOf interior marking, stats, width).
func TestFusionCatalog(t *testing.T) {
	halt := ic.Inst{Op: ic.Halt}
	cases := []struct {
		name string
		a, b ic.Inst
		want XCode
	}{
		{"ld+brtag", ic.Inst{Op: ic.Ld, D: t0, A: t1, Imm: 2},
			ic.Inst{Op: ic.BrTag, A: t0, Tag: word.Ref, Target: 3}, XFLdBrTagEq},
		{"ld+brtag.ne", ic.Inst{Op: ic.Ld, D: t0, A: t1},
			ic.Inst{Op: ic.BrTag, A: t0, Cond: ic.CondNe, Tag: word.Ref, Target: 3}, XFLdBrTagNe},
		{"ld+brcmp.eq.r", ic.Inst{Op: ic.Ld, D: t0, A: t1},
			ic.Inst{Op: ic.BrCmp, A: t0, Cond: ic.CondEq, B: t1, Target: 3}, XFLdBrCmpEqR},
		{"gettag+br.eq.i", ic.Inst{Op: ic.GetTag, D: t0, A: t1},
			ic.Inst{Op: ic.BrCmp, A: t0, Cond: ic.CondEq, HasImm: true,
				Word: word.MakeInt(int64(word.Lst)), Target: 3}, XFGetTagBrEqI},
		{"st+add", ic.Inst{Op: ic.St, A: ic.RegH, B: t0, Reg: ic.RegionHeap},
			ic.Inst{Op: ic.Add, D: ic.RegH, A: ic.RegH, HasImm: true, Imm: 1}, XFStAdd},
		{"mov+jmp", ic.Inst{Op: ic.Mov, D: t0, A: t1},
			ic.Inst{Op: ic.Jmp, Target: 0}, XFMovJmp},
		{"cmov", ic.Inst{Op: ic.BrCmp, A: t0, Cond: ic.CondGe, B: t1, Target: 3},
			ic.Inst{Op: ic.Mov, D: t0, A: t1}, XFCMovR},
		{"ld+ld", ic.Inst{Op: ic.Ld, D: t0, A: t1, Imm: 2},
			ic.Inst{Op: ic.Ld, D: t1, A: t0, Imm: 3}, XFLdLd},
		{"ld+mov", ic.Inst{Op: ic.Ld, D: t0, A: t1, Imm: 2},
			ic.Inst{Op: ic.Mov, D: t1, A: t0}, XFLdMov},
		{"st+st", ic.Inst{Op: ic.St, A: ic.RegH, B: t0, Reg: ic.RegionHeap},
			ic.Inst{Op: ic.St, A: ic.RegH, B: t1, Imm: 1, Reg: ic.RegionHeap}, XFStSt},
		{"st+movi", ic.Inst{Op: ic.St, A: ic.RegH, B: t0, Reg: ic.RegionHeap},
			ic.Inst{Op: ic.MovI, D: t1, Word: word.MakeInt(7)}, XFStMovI},
		{"movi+st", ic.Inst{Op: ic.MovI, D: t0, Word: word.MakeInt(7)},
			ic.Inst{Op: ic.St, A: ic.RegH, B: t0, Reg: ic.RegionHeap}, XFMovISt},
		{"mov+mov", ic.Inst{Op: ic.Mov, D: t0, A: t1},
			ic.Inst{Op: ic.Mov, D: t1, A: t0}, XFMovMov},
		{"mov+brtag", ic.Inst{Op: ic.Mov, D: t0, A: t1},
			ic.Inst{Op: ic.BrTag, A: t0, Tag: word.Ref, Target: 3}, XFMovBrTagEq},
		{"mov+brtag.ne", ic.Inst{Op: ic.Mov, D: t0, A: t1},
			ic.Inst{Op: ic.BrTag, A: t0, Cond: ic.CondNe, Tag: word.Ref, Target: 3}, XFMovBrTagNe},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// pc 0 is always a jump target (entry), so the pair sits at 1,2.
			p := mkProg([]ic.Inst{{Op: ic.Nop}, c.a, c.b, halt})
			xp := Predecode(p)
			x := xp.Fused.XOf[1]
			if x < 0 {
				t.Fatal("pair head has no stream index")
			}
			op := xp.Fused.Ops[x]
			if op.Code != c.want {
				t.Fatalf("fused to %s, want %s", op.Code, c.want)
			}
			if op.Width != 2 || !op.Code.Fused() {
				t.Fatalf("fused op has width %d, Fused()=%v", op.Width, op.Code.Fused())
			}
			if op.PC != 1 {
				t.Fatalf("fused op PC = %d, want 1", op.PC)
			}
			if xp.Fused.XOf[2] != -1 {
				t.Fatalf("interior pc 2 has XOf %d, want -1", xp.Fused.XOf[2])
			}
			if got := xp.Stats.Pairs[c.want]; got != 1 {
				t.Fatalf("Stats.Pairs[%s] = %d, want 1", c.want, got)
			}
			if xp.Stats.FusedOps != xp.Stats.PlainOps-1 {
				t.Fatalf("FusedOps = %d, want PlainOps-1 = %d",
					xp.Stats.FusedOps, xp.Stats.PlainOps-1)
			}
			// Lookup on the interior must route to a trap, not mid-pair.
			if ti := xp.Fused.Lookup(2); xp.Fused.Ops[ti].Code != XBadPC {
				t.Fatalf("Lookup(interior) resolved to %s", xp.Fused.Ops[ti].Code)
			}
		})
	}
}

// TestFusionBlockedByJumpTarget: a pair whose second pc is reachable by a
// branch must not fuse, or the branch could land mid-superinstruction.
func TestFusionBlockedByJumpTarget(t *testing.T) {
	p := mkProg([]ic.Inst{
		{Op: ic.Nop},
		{Op: ic.Mov, D: t0, A: t1}, // pc 1: head of a would-be mov+jmp pair
		{Op: ic.Jmp, Target: 1},    // pc 2: also a branch target (see pc 3)
		{Op: ic.BrCmp, A: t0, Cond: ic.CondEq, B: t1, Target: 2}, // marks pc 2
		{Op: ic.Halt},
	})
	xp := Predecode(p)
	x := xp.Fused.XOf[1]
	if op := xp.Fused.Ops[x]; op.Code.Fused() {
		t.Fatalf("pair fused to %s despite pc 2 being a jump target", op.Code)
	}
	if xp.Fused.XOf[2] < 0 {
		t.Fatal("jump-target pc 2 lost its stream index")
	}
}

// TestFusionBlockedByIndirectTargets: code addresses materialized by MovI
// (choice-point retry addresses) are indirect jump targets and must stay
// addressable; a marked pc blocks fusion only as the second constituent —
// as a pair head it is still the superinstruction's own address.
func TestFusionBlockedByIndirectTargets(t *testing.T) {
	p := mkProg([]ic.Inst{
		{Op: ic.Nop},
		{Op: ic.Jsr, D: t2, Target: 4}, // pc 1: marks pc 2 as a return point
		{Op: ic.Mov, D: t0, A: t1},     // pc 2: marked, but as pair *head*
		{Op: ic.Jmp, Target: 4},
		{Op: ic.Halt},
	})
	xp := Predecode(p)
	if op := xp.Fused.Ops[xp.Fused.XOf[2]]; op.Code != XFMovJmp {
		t.Fatalf("marked pair head decoded to %s, want f.mov+jmp (heads may fuse)", op.Code)
	}

	p = mkProg([]ic.Inst{
		{Op: ic.Nop},
		{Op: ic.MovI, D: t2, Word: word.Make(word.Code, 3)}, // marks pc 3
		{Op: ic.Mov, D: t0, A: t1},                          // pc 2: head
		{Op: ic.Jmp, Target: 4},                             // pc 3: marked
		{Op: ic.Halt},
	})
	xp = Predecode(p)
	if op := xp.Fused.Ops[xp.Fused.XOf[2]]; op.Code.Fused() {
		t.Fatalf("pair fused to %s despite pc 3 being MovI-addressable", op.Code)
	}
}

// TestTrapTargets: a statically out-of-range branch target must resolve to
// a trap op carrying the original invalid pc, and Lookup of out-of-range
// pcs must land on the fall-off trap.
func TestTrapTargets(t *testing.T) {
	p := mkProg([]ic.Inst{
		{Op: ic.Nop},
		{Op: ic.Jmp, Target: -1},
		{Op: ic.Halt},
	})
	xp := Predecode(p)
	for _, s := range []*Stream{&xp.Plain, &xp.Fused} {
		jmp := s.Ops[s.XOf[1]]
		trap := s.Ops[jmp.Target]
		if trap.Code != XBadPC {
			t.Fatalf("out-of-range target resolved to %s", trap.Code)
		}
		if trap.Imm != -1 {
			t.Fatalf("trap carries pc %d, want -1", trap.Imm)
		}
		if trap.PC != 1 {
			t.Fatalf("trap reports from pc %d, want 1", trap.PC)
		}
		for _, pc := range []int{-7, len(p.Code), len(p.Code) + 12} {
			ti := s.Lookup(pc)
			if op := s.Ops[ti]; op.Code != XBadPC || op.Imm != int64(len(p.Code)) {
				t.Fatalf("Lookup(%d) = %s imm %d", pc, op.Code, op.Imm)
			}
		}
	}
}

// TestStreamIdentity: the plain stream is index-identical to the code
// (XOf[pc] == pc) so JmpR resolution in the NoFuse path is the identity.
func TestStreamIdentity(t *testing.T) {
	p := mkProg([]ic.Inst{
		{Op: ic.Nop},
		{Op: ic.MovI, D: t0, Word: word.MakeInt(5)},
		{Op: ic.Halt},
	})
	xp := Predecode(p)
	for pc := range p.Code {
		if xp.Plain.XOf[pc] != int32(pc) {
			t.Fatalf("plain XOf[%d] = %d", pc, xp.Plain.XOf[pc])
		}
	}
	if xp.Plain.Entry != int32(p.Entry) {
		t.Fatalf("plain entry %d, want %d", xp.Plain.Entry, p.Entry)
	}
	if xp.Plain.Throw != -1 {
		t.Fatalf("throwless program has Throw %d, want -1", xp.Plain.Throw)
	}
}

// TestOfCaches: Of must predecode once per program and hand every caller
// the same image.
func TestOfCaches(t *testing.T) {
	p := mkProg([]ic.Inst{{Op: ic.Halt}})
	if a, b := Of(p), Of(p); a != b {
		t.Fatal("Of rebuilt the execution image")
	}
}
