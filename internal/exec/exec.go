// Package exec is the predecoded execution core shared by the sequential
// IntCode emulator and the VLIW simulator. It translates ic.Inst — a
// general, assembler-friendly record whose meaning depends on several
// selector fields (HasImm, Cond, Sys, Region) — into a dense internal
// format in which every operand form is a distinct opcode, so the hot
// interpreter loops dispatch once per operation and never re-test selectors
// that were fixed at assembly time. Branch targets are pre-resolved to
// stream indices, out-of-range targets land on an explicit trap op, and
// store-site region limits are reduced to a single table-indexed compare.
//
// On top of the predecoded stream, a peephole pass fuses the hottest
// BAM-shaped instruction pairs into superinstructions (see fuse.go). Fused
// ops carry the static ICI width of their constituents, so executors keep
// reporting Steps, Expect/Taken and the paper's §3.1/§4 dynamic statistics
// in original-ICI units: fusion changes dispatch counts, never the
// architecture-level numbers.
//
// Predecoding is per-Program, lazy, and cached under a sync.Once (via
// ic.Program.ExecCache), so a pooled engine answering many queries pays for
// it once.
package exec

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"symbol/internal/ic"
	"symbol/internal/word"
)

// XCode is a dense internal opcode. Unlike ic.Op, the operand form is part
// of the opcode: register-vs-immediate ALU variants, branch conditions and
// sys escapes are all split so the run loops dispatch without selector
// tests.
type XCode uint8

const (
	// XBadPC traps execution that reaches an invalid pc: a branch whose
	// target was out of range at predecode time, or control falling off the
	// end of the code. It is the zero Code so a zeroed op is a trap, never
	// a silent nop.
	XBadPC   XCode = iota
	XUnknown       // unknown ic.Op (matches the legacy "unknown opcode" error)
	XNop

	XLd // D = mem[val(A)+Imm]
	XSt // mem[val(A)+Imm] = B, overflow-checked against limit[Region]

	// ALU, register / immediate second operand.
	XAddR
	XAddI
	XSubR
	XSubI
	XMulR
	XMulI
	XDivR
	XDivI
	XModR
	XModI
	XAndR
	XAndI
	XOrR
	XOrI
	XXorR
	XXorI
	XShlR
	XShlI
	XShrR
	XShrI

	XMkTag
	XGetTag
	XLea
	XMov
	XMovI

	// Branches, split by condition and operand form. The Eq/Ne immediate
	// form compares full tagged words held in W (see ic.Inst.Word); the
	// ordered forms compare signed value fields.
	XBrTagEq
	XBrTagNe
	XBrCmpEqR
	XBrCmpNeR
	XBrCmpEqI
	XBrCmpNeI
	XBrCmpOrdR // Cond ∈ {Lt, Le, Gt, Ge}
	XBrCmpOrdI

	XJmp
	XJmpR
	XJsr
	XHalt

	// Sys escapes, one opcode per builtin.
	XSysWrite
	XSysNl
	XSysWriteCode
	XSysCompare
	XSysBallPut
	XSysFault
	XSysBad // unknown SysID (matches the legacy "unknown sys op" error)

	// Superinstructions. Each fuses two ICIs; Width is 2 and the profiled
	// loops account both constituent pcs (PC and PC+1). Second-constituent
	// operands live in D2/A2/Imm2.
	XFLdBrTagEq  // D = mem[A+Imm]; if tag(regs[D2]) == Tag goto Target
	XFLdBrTagNe  // D = mem[A+Imm]; if tag(regs[D2]) != Tag goto Target
	XFLdBrCmpEqR // D = mem[A+Imm]; if regs[D2] == regs[A2] goto Target
	XFLdBrCmpNeR // D = mem[A+Imm]; if regs[D2] != regs[A2] goto Target
	XFGetTagBrEqI
	XFGetTagBrNeI
	XFStAdd  // mem[A+Imm] = B (region-checked); D2 = D2 + Imm2
	XFMovJmp // D = A; goto Target
	XFCMovR  // if cmp(regs[A], regs[B], Cond) skip, else D2 = regs[A2]

	// Memory-shaped pairs: choice-point pushes and restores are runs of
	// adjacent stores/loads, and argument setup is runs of moves, so these
	// dominate the unfused dynamic mix once the branch shapes are handled.
	XFLdLd       // D = mem[A+Imm]; D2 = mem[A2+Imm2]
	XFLdMov      // D = mem[A+Imm]; D2 = regs[A2]
	XFStSt       // mem[A+Imm] = B (Region); mem[A2+Imm2] = regs[D2] (Region2)
	XFStMovI     // mem[A+Imm] = B (Region); D2 = W
	XFMovISt     // D = W; mem[A2+Imm2] = regs[D2] (Region2)
	XFMovMov     // D = regs[A]; D2 = regs[A2]
	XFMovBrTagEq // D = regs[A]; if tag(regs[D2]) == Tag goto Target
	XFMovBrTagNe // D = regs[A]; if tag(regs[D2]) != Tag goto Target

	// Marked singles (see ic.Mark): semantically identical to XMov/XLd, but
	// split into their own opcodes so the per-opcode dispatch counters double
	// as choice-point and trail-undo counters at zero hot-path cost. The
	// fusion pass refuses to bury a marked ICI inside a superinstruction.
	XMovCP  // XMov that commits a choice point (Mov B, nb)
	XLdUndo // XLd that fetches a trail entry during backtrack unwinding

	NumCodes
)

var codeNames = [NumCodes]string{
	"badpc", "unknown", "nop", "ld", "st",
	"add.r", "add.i", "sub.r", "sub.i", "mul.r", "mul.i", "div.r", "div.i",
	"mod.r", "mod.i", "and.r", "and.i", "or.r", "or.i", "xor.r", "xor.i",
	"shl.r", "shl.i", "shr.r", "shr.i",
	"mktag", "gettag", "lea", "mov", "movi",
	"brtag.eq", "brtag.ne", "brcmp.eq.r", "brcmp.ne.r", "brcmp.eq.i",
	"brcmp.ne.i", "brcmp.ord.r", "brcmp.ord.i",
	"jmp", "jmpr", "jsr", "halt",
	"sys.write", "sys.nl", "sys.write_code", "sys.compare", "sys.ball_put",
	"sys.fault", "sys.bad",
	"f.ld+brtag.eq", "f.ld+brtag.ne", "f.ld+brcmp.eq", "f.ld+brcmp.ne",
	"f.gettag+br.eq", "f.gettag+br.ne", "f.st+add", "f.mov+jmp", "f.cmov",
	"f.ld+ld", "f.ld+mov", "f.st+st", "f.st+movi", "f.movi+st", "f.mov+mov",
	"f.mov+brtag.eq", "f.mov+brtag.ne",
	"mov.cp", "ld.undo",
}

func (c XCode) String() string {
	if int(c) < len(codeNames) {
		return codeNames[c]
	}
	return "xcode(?)"
}

// Fused reports whether the opcode is a superinstruction.
func (c XCode) Fused() bool { return c >= XFLdBrTagEq && c <= XFMovBrTagNe }

// ClassOf maps each opcode to the paper's operation class of its (first)
// constituent ICI, mirroring ic.Inst.Class. Class2Of gives the second
// constituent's class for superinstructions, with ic.NumClasses as the
// "no second constituent" sentinel. The executors expand their per-opcode
// dispatch counters through these tables after a run, recovering the exact
// architecture-level class mix (§3.2 of the paper) without classifying in
// the hot loop.
var (
	ClassOf  [NumCodes]ic.Class
	Class2Of [NumCodes]ic.Class
)

func init() {
	for c := XCode(0); c < NumCodes; c++ {
		ClassOf[c] = ic.ClassALU // default, like ic.Inst.Class
		Class2Of[c] = ic.NumClasses
	}
	one := func(c XCode, k ic.Class) { ClassOf[c] = k }
	two := func(c XCode, k1, k2 ic.Class) { ClassOf[c] = k1; Class2Of[c] = k2 }

	one(XLd, ic.ClassMemory)
	one(XSt, ic.ClassMemory)
	one(XLdUndo, ic.ClassMemory)
	one(XMov, ic.ClassMove)
	one(XMovI, ic.ClassMove)
	one(XMovCP, ic.ClassMove)
	for _, c := range []XCode{
		XBrTagEq, XBrTagNe, XBrCmpEqR, XBrCmpNeR, XBrCmpEqI, XBrCmpNeI,
		XBrCmpOrdR, XBrCmpOrdI, XJmp, XJmpR, XJsr, XHalt, XBadPC,
	} {
		one(c, ic.ClassControl)
	}
	for _, c := range []XCode{
		XSysWrite, XSysNl, XSysWriteCode, XSysCompare, XSysBallPut,
		XSysFault, XSysBad,
	} {
		one(c, ic.ClassSys)
	}

	two(XFLdBrTagEq, ic.ClassMemory, ic.ClassControl)
	two(XFLdBrTagNe, ic.ClassMemory, ic.ClassControl)
	two(XFLdBrCmpEqR, ic.ClassMemory, ic.ClassControl)
	two(XFLdBrCmpNeR, ic.ClassMemory, ic.ClassControl)
	two(XFGetTagBrEqI, ic.ClassALU, ic.ClassControl)
	two(XFGetTagBrNeI, ic.ClassALU, ic.ClassControl)
	two(XFStAdd, ic.ClassMemory, ic.ClassALU)
	two(XFMovJmp, ic.ClassMove, ic.ClassControl)
	two(XFCMovR, ic.ClassControl, ic.ClassMove)
	two(XFLdLd, ic.ClassMemory, ic.ClassMemory)
	two(XFLdMov, ic.ClassMemory, ic.ClassMove)
	two(XFStSt, ic.ClassMemory, ic.ClassMemory)
	two(XFStMovI, ic.ClassMemory, ic.ClassMove)
	two(XFMovISt, ic.ClassMove, ic.ClassMemory)
	two(XFMovMov, ic.ClassMove, ic.ClassMove)
	two(XFMovBrTagEq, ic.ClassMove, ic.ClassControl)
	two(XFMovBrTagNe, ic.ClassMove, ic.ClassControl)
}

// hasTarget reports whether the op's Target field is a code address that
// predecoding must remap to a stream index.
func hasTarget(c XCode) bool {
	switch c {
	case XBrTagEq, XBrTagNe, XBrCmpEqR, XBrCmpNeR, XBrCmpEqI, XBrCmpNeI,
		XBrCmpOrdR, XBrCmpOrdI, XJmp, XJsr,
		XFLdBrTagEq, XFLdBrTagNe, XFLdBrCmpEqR, XFLdBrCmpNeR,
		XFGetTagBrEqI, XFGetTagBrNeI, XFMovJmp, XFMovBrTagEq, XFMovBrTagNe:
		return true
	}
	return false
}

// Op is one predecoded operation. Field use by opcode follows the comments
// on the XCode constants; PC is the original pc of the (first) constituent,
// used for return-address generation, profiling and error context.
type Op struct {
	Code    XCode
	Width   uint8 // static ICI count: 1, or 2 for superinstructions
	Tag     word.Tag
	Region  ic.Region
	Region2 ic.Region // second store's region in store-pair superinstructions
	Cond    ic.Cond

	D, A, B ic.Reg
	D2, A2  ic.Reg

	Imm    int64
	Imm2   int64
	W      word.W
	Target int32
	PC     int32
}

// Stream is one executable predecoded form of a program.
type Stream struct {
	// Ops is the operation stream. The ops after the program proper are
	// XBadPC traps: one for control falling off the end of the code, plus
	// one per statically out-of-range branch target (each trap's Imm holds
	// the invalid pc it stands for, so the executor reports the same pc the
	// legacy bounds check would have). Dispatching on a trap op replaces
	// the per-iteration pc bounds test.
	Ops []Op
	// XOf maps an original pc to its stream index, or -1 when the pc was
	// fused into the interior of a superinstruction. Interior pcs are never
	// jump targets (the fusion pass refuses to consume them), so -1 is
	// reachable only through arithmetic on code addresses, which nothing in
	// the runtime model does.
	XOf []int32
	// Entry and Throw are the stream indices of the program entry and of
	// the $throwunwind routine (Throw = -1 for programs without it).
	Entry int32
	Throw int32
	// Fail is the stream index of the shared $fail routine, the resume
	// point for suspended machines: entering here backtracks into the next
	// untried alternative. FailPC is a static branch target (every failure
	// branch in the program jumps to it), so fusion never buries it and the
	// lookup is exact. -1 for programs without a fail routine; those cannot
	// suspend.
	Fail int32

	bad int32 // index of the fall-off-the-end trap
}

// Lookup resolves an original pc to a stream index, returning a trap index
// for pcs that are out of range or fused into a superinstruction interior.
func (s *Stream) Lookup(pc int) int32 {
	if pc < 0 || pc >= len(s.XOf) {
		return s.bad
	}
	if x := s.XOf[pc]; x >= 0 {
		return x
	}
	return s.bad
}

// Program is the predecoded execution image of one ic.Program: the plain
// stream (one op per ICI, stream index == pc) and the fused stream (plain
// plus superinstructions). Both are immutable after Predecode.
type Program struct {
	Plain Stream
	Fused Stream
	Stats Stats

	// threadOnce/threadCache hold a derived execution form built lazily on
	// top of the streams by a higher layer (the emulator's closure-threaded
	// core), mirroring ic.Program.ExecCache one level up. The slot is opaque
	// here so exec stays free of emulator types.
	threadOnce  sync.Once
	threadThis  any
	threadBuilt atomic.Bool
}

// ThreadCache returns the cached derived execution form, calling build to
// create it on first use. Safe for concurrent use; build runs at most once.
func (p *Program) ThreadCache(build func() any) any {
	p.threadOnce.Do(func() {
		p.threadThis = build()
		p.threadBuilt.Store(true)
	})
	return p.threadThis
}

// ThreadCached reports whether a derived threaded form has been built, so
// size estimators can account for it without forcing the build.
func (p *Program) ThreadCached() bool { return p.threadBuilt.Load() }

// threadedBytesPerOp is the estimated resident cost of one fused-stream op
// in the closure-threaded image: the slot itself plus the heap-allocated
// closure and its captured, pre-resolved operands. It is deliberately an
// estimate — the threaded form is opaque at this layer — sized from the
// typical closure footprint measured by the memory profiler.
const threadedBytesPerOp = 96

// SizeBytes estimates the resident size of the predecoded execution image:
// both op streams, the pc maps, and (when built) the closure-threaded form
// derived from the fused stream. Budget-aware engine caches use it as the
// per-program term of an engine's footprint; the pooled machine states are
// accounted separately by the engine.
func (p *Program) SizeBytes() int64 {
	const opBytes = int64(unsafe.Sizeof(Op{}))
	n := int64(len(p.Plain.Ops)+len(p.Fused.Ops)) * opBytes
	n += int64(len(p.Plain.XOf)+len(p.Fused.XOf)) * 4
	if p.ThreadCached() {
		n += int64(len(p.Fused.Ops)) * threadedBytesPerOp
	}
	return n
}

// Stats summarizes the fusion pass over the static code.
type Stats struct {
	PlainOps int           // ICIs in the program
	FusedOps int           // ops in the fused stream (excluding the trap)
	Pairs    map[XCode]int // static superinstruction counts by opcode
}

// Of returns the cached predecoded image of p, building it on first use.
func Of(p *ic.Program) *Program {
	return p.ExecCache(func() any { return Predecode(p) }).(*Program)
}

// Decode1 predecodes a single ICI without target resolution: the Target
// field is copied through verbatim. The VLIW simulator uses it per
// operation slot, where targets are already word indices.
func Decode1(in *ic.Inst, pc int) Op {
	op := Op{
		Width: 1, PC: int32(pc),
		D: in.D, A: in.A, B: in.B,
		Imm: in.Imm, W: in.Word,
		Tag: in.Tag, Region: in.Reg, Cond: in.Cond,
		Target: int32(in.Target),
	}
	alu := func(r, i XCode) XCode {
		if in.HasImm {
			return i
		}
		return r
	}
	switch in.Op {
	case ic.Nop:
		op.Code = XNop
	case ic.Ld:
		op.Code = XLd
		if in.Mark == ic.MarkTrailUndo {
			op.Code = XLdUndo
		}
	case ic.St:
		op.Code = XSt
	case ic.Add:
		op.Code = alu(XAddR, XAddI)
	case ic.Sub:
		op.Code = alu(XSubR, XSubI)
	case ic.Mul:
		op.Code = alu(XMulR, XMulI)
	case ic.Div:
		op.Code = alu(XDivR, XDivI)
	case ic.Mod:
		op.Code = alu(XModR, XModI)
	case ic.And:
		op.Code = alu(XAndR, XAndI)
	case ic.Or:
		op.Code = alu(XOrR, XOrI)
	case ic.Xor:
		op.Code = alu(XXorR, XXorI)
	case ic.Shl:
		op.Code = alu(XShlR, XShlI)
	case ic.Shr:
		op.Code = alu(XShrR, XShrI)
	case ic.MkTag:
		op.Code = XMkTag
	case ic.GetTag:
		op.Code = XGetTag
	case ic.Lea:
		op.Code = XLea
	case ic.Mov:
		op.Code = XMov
		if in.Mark == ic.MarkCPPush {
			op.Code = XMovCP
		}
	case ic.MovI:
		op.Code = XMovI
	case ic.BrTag:
		// The reference interpreter treats every condition except Ne as Eq.
		if in.Cond == ic.CondNe {
			op.Code = XBrTagNe
		} else {
			op.Code = XBrTagEq
		}
	case ic.BrCmp:
		switch in.Cond {
		case ic.CondEq:
			op.Code = alu(XBrCmpEqR, XBrCmpEqI)
		case ic.CondNe:
			op.Code = alu(XBrCmpNeR, XBrCmpNeI)
		default:
			op.Code = alu(XBrCmpOrdR, XBrCmpOrdI)
		}
	case ic.Jmp:
		op.Code = XJmp
	case ic.JmpR:
		op.Code = XJmpR
	case ic.Jsr:
		op.Code = XJsr
	case ic.Halt:
		op.Code = XHalt
	case ic.SysOp:
		switch in.Sys {
		case ic.SysWrite:
			op.Code = XSysWrite
		case ic.SysNl:
			op.Code = XSysNl
		case ic.SysWriteCode:
			op.Code = XSysWriteCode
		case ic.SysCompare:
			op.Code = XSysCompare
		case ic.SysBallPut:
			op.Code = XSysBallPut
		case ic.SysFault:
			op.Code = XSysFault
		default:
			op.Code = XSysBad
		}
	default:
		op.Code = XUnknown
	}
	return op
}

// OrdCmp compares signed value fields under an ordered BrCmp condition.
func OrdCmp(a, b int64, c ic.Cond) bool {
	switch c {
	case ic.CondLt:
		return a < b
	case ic.CondLe:
		return a <= b
	case ic.CondGt:
		return a > b
	default:
		return a >= b
	}
}

// CmpW is the full BrCmp register-form predicate: Eq/Ne compare whole
// tagged words, ordered conditions compare signed value fields.
func CmpW(a, b word.W, c ic.Cond) bool {
	switch c {
	case ic.CondEq:
		return a == b
	case ic.CondNe:
		return a != b
	default:
		return OrdCmp(a.Int(), b.Int(), c)
	}
}

// jumpTargets computes every pc that control can enter other than by
// falling through from its predecessor: static branch targets, procedure
// entries and other indirect-control pcs recorded in Entries, return points
// after Jsr, and any code address materialized by MovI (retry addresses
// stored into choice points). The fusion pass never consumes such a pc as
// the second constituent of a superinstruction, which is what keeps every
// reachable jump target addressable in the fused stream.
func jumpTargets(p *ic.Program) []bool {
	n := len(p.Code)
	t := make([]bool, n)
	mark := func(pc int) {
		if pc >= 0 && pc < n {
			t[pc] = true
		}
	}
	mark(p.Entry)
	mark(p.FailPC)
	mark(p.ThrowPC)
	for pc := range p.Entries {
		mark(pc)
	}
	for pc := range p.Code {
		in := &p.Code[pc]
		switch in.Op {
		case ic.BrTag, ic.BrCmp, ic.Jmp, ic.Jsr:
			mark(in.Target)
			if in.Op == ic.Jsr {
				mark(pc + 1)
			}
		case ic.MovI:
			if in.Word.Tag() == word.Code {
				mark(int(in.Word.Val()))
			}
		}
	}
	return t
}

// finish seals a stream: appends the trap ops, remaps branch targets from
// original pcs to stream indices (out-of-range targets get a dedicated trap
// carrying the invalid pc), and resolves the entry and throw indices.
func finish(s *Stream, p *ic.Program) {
	n := len(p.Code)
	real := len(s.Ops)
	s.bad = int32(real)
	s.Ops = append(s.Ops, Op{Code: XBadPC, Width: 1, PC: int32(n), Imm: int64(n)})
	for i := 0; i < real; i++ {
		if !hasTarget(s.Ops[i].Code) {
			continue
		}
		t := int(s.Ops[i].Target)
		if t < 0 || t >= n {
			s.Ops[i].Target = int32(len(s.Ops))
			s.Ops = append(s.Ops, Op{Code: XBadPC, Width: 1, PC: s.Ops[i].PC, Imm: int64(t)})
			continue
		}
		x := s.XOf[t]
		if x < 0 {
			// Unreachable by construction: jumpTargets marked every static
			// target and the fusion pass refuses to bury marked pcs.
			panic("exec: branch into superinstruction interior")
		}
		s.Ops[i].Target = x
	}
	s.Entry = s.Lookup(p.Entry)
	s.Throw = -1
	if p.ThrowPC > 0 {
		s.Throw = s.Lookup(p.ThrowPC)
	}
	s.Fail = -1
	if p.FailPC > 0 {
		s.Fail = s.Lookup(p.FailPC)
	}
}

// Predecode builds the execution image of p. Callers normally use Of,
// which caches the result on the program.
func Predecode(p *ic.Program) *Program {
	n := len(p.Code)
	xp := &Program{Stats: Stats{PlainOps: n, Pairs: map[XCode]int{}}}

	plain := &xp.Plain
	plain.Ops = make([]Op, 0, n+1)
	plain.XOf = make([]int32, n)
	for pc := range p.Code {
		plain.XOf[pc] = int32(pc)
		plain.Ops = append(plain.Ops, Decode1(&p.Code[pc], pc))
	}
	finish(plain, p)

	targets := jumpTargets(p)
	fused := &xp.Fused
	fused.Ops = make([]Op, 0, n+1)
	fused.XOf = make([]int32, n)
	for pc := 0; pc < n; {
		if pc+1 < n && !targets[pc+1] {
			if fop, ok := fusePair(&p.Code[pc], &p.Code[pc+1], pc); ok {
				fused.XOf[pc] = int32(len(fused.Ops))
				fused.XOf[pc+1] = -1
				fused.Ops = append(fused.Ops, fop)
				xp.Stats.Pairs[fop.Code]++
				pc += 2
				continue
			}
		}
		fused.XOf[pc] = int32(len(fused.Ops))
		fused.Ops = append(fused.Ops, Decode1(&p.Code[pc], pc))
		pc++
	}
	xp.Stats.FusedOps = len(fused.Ops)
	finish(fused, p)
	return xp
}
