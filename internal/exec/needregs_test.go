package exec

import (
	"testing"

	"symbol/internal/ic"
	"symbol/internal/word"
)

// TestNeedRegsMatchesPredecode cross-checks the snapshot validator's
// required-register table against the real production paths (Decode1 and
// fusePair): every register field those paths populate must be marked
// needed in needRegs, or a snapshot could smuggle an out-of-range register
// into a field the bounds-check-free run loops index with.
//
// Every sample below uses distinct temp registers (all nonzero), so a
// populated field is distinguishable from a defaulted one; samples are
// predecoded through mkProg exactly like real programs.
func TestNeedRegsMatchesPredecode(t *testing.T) {
	halt := ic.Inst{Op: ic.Halt}
	// Single instructions, one per plain opcode family.
	singles := []ic.Inst{
		{Op: ic.Nop},
		{Op: ic.Ld, D: t0, A: t1, Imm: 2},
		{Op: ic.Ld, D: t0, A: t1, Imm: 2, Mark: ic.MarkTrailUndo},
		{Op: ic.St, A: t0, B: t1, Reg: ic.RegionHeap},
		{Op: ic.Add, D: t0, A: t1, B: t2},
		{Op: ic.Add, D: t0, A: t1, HasImm: true, Imm: 1},
		{Op: ic.Sub, D: t0, A: t1, B: t2},
		{Op: ic.Sub, D: t0, A: t1, HasImm: true, Imm: 1},
		{Op: ic.Mul, D: t0, A: t1, B: t2},
		{Op: ic.Mul, D: t0, A: t1, HasImm: true, Imm: 2},
		{Op: ic.Div, D: t0, A: t1, B: t2},
		{Op: ic.Div, D: t0, A: t1, HasImm: true, Imm: 2},
		{Op: ic.Mod, D: t0, A: t1, B: t2},
		{Op: ic.Mod, D: t0, A: t1, HasImm: true, Imm: 2},
		{Op: ic.And, D: t0, A: t1, B: t2},
		{Op: ic.And, D: t0, A: t1, HasImm: true, Imm: 1},
		{Op: ic.Or, D: t0, A: t1, B: t2},
		{Op: ic.Or, D: t0, A: t1, HasImm: true, Imm: 1},
		{Op: ic.Xor, D: t0, A: t1, B: t2},
		{Op: ic.Xor, D: t0, A: t1, HasImm: true, Imm: 1},
		{Op: ic.Shl, D: t0, A: t1, B: t2},
		{Op: ic.Shl, D: t0, A: t1, HasImm: true, Imm: 1},
		{Op: ic.Shr, D: t0, A: t1, B: t2},
		{Op: ic.Shr, D: t0, A: t1, HasImm: true, Imm: 1},
		{Op: ic.MkTag, D: t0, A: t1, Tag: word.Lst},
		{Op: ic.GetTag, D: t0, A: t1},
		{Op: ic.Lea, D: t0, A: t1, Imm: 3},
		{Op: ic.Mov, D: t0, A: t1},
		{Op: ic.Mov, D: t0, A: t1, Mark: ic.MarkCPPush},
		{Op: ic.MovI, D: t0, Word: word.MakeInt(7)},
		{Op: ic.BrTag, A: t0, Tag: word.Ref, Target: 0},
		{Op: ic.BrTag, A: t0, Cond: ic.CondNe, Tag: word.Ref, Target: 0},
		{Op: ic.BrCmp, A: t0, B: t1, Cond: ic.CondEq, Target: 0},
		{Op: ic.BrCmp, A: t0, B: t1, Cond: ic.CondNe, Target: 0},
		{Op: ic.BrCmp, A: t0, B: t1, Cond: ic.CondLt, Target: 0},
		{Op: ic.BrCmp, A: t0, Cond: ic.CondEq, HasImm: true, Word: word.MakeInt(1), Target: 0},
		{Op: ic.BrCmp, A: t0, Cond: ic.CondNe, HasImm: true, Word: word.MakeInt(1), Target: 0},
		{Op: ic.BrCmp, A: t0, Cond: ic.CondGe, HasImm: true, Imm: 1, Target: 0},
		{Op: ic.Jmp, Target: 0},
		{Op: ic.JmpR, A: t0},
		{Op: ic.Jsr, D: t0, Target: 0},
		{Op: ic.SysOp, Sys: ic.SysWrite, A: t0},
		{Op: ic.SysOp, Sys: ic.SysNl},
		{Op: ic.SysOp, Sys: ic.SysWriteCode, A: t0},
		{Op: ic.SysOp, Sys: ic.SysCompare, A: t0, B: t1},
		{Op: ic.SysOp, Sys: ic.SysBallPut, A: t0},
		{Op: ic.SysOp, Sys: ic.SysFault, Imm: 1},
	}
	// Fusable pairs, one per superinstruction (registers all temps so every
	// populated field is visibly nonzero).
	pairs := [][2]ic.Inst{
		{{Op: ic.Ld, D: t0, A: t1, Imm: 2}, {Op: ic.BrTag, A: t0, Tag: word.Ref, Target: 3}},
		{{Op: ic.Ld, D: t0, A: t1}, {Op: ic.BrTag, A: t0, Cond: ic.CondNe, Tag: word.Ref, Target: 3}},
		{{Op: ic.Ld, D: t0, A: t1}, {Op: ic.BrCmp, A: t0, Cond: ic.CondEq, B: t1, Target: 3}},
		{{Op: ic.Ld, D: t0, A: t1}, {Op: ic.BrCmp, A: t0, Cond: ic.CondNe, B: t1, Target: 3}},
		{{Op: ic.Ld, D: t0, A: t1, Imm: 2}, {Op: ic.Ld, D: t1, A: t0, Imm: 3}},
		{{Op: ic.Ld, D: t0, A: t1, Imm: 2}, {Op: ic.Mov, D: t1, A: t0}},
		{{Op: ic.GetTag, D: t0, A: t1},
			{Op: ic.BrCmp, A: t0, Cond: ic.CondEq, HasImm: true, Word: word.MakeInt(int64(word.Lst)), Target: 3}},
		{{Op: ic.GetTag, D: t0, A: t1},
			{Op: ic.BrCmp, A: t0, Cond: ic.CondNe, HasImm: true, Word: word.MakeInt(int64(word.Lst)), Target: 3}},
		{{Op: ic.St, A: t2, B: t0, Reg: ic.RegionHeap},
			{Op: ic.Add, D: t2, A: t2, HasImm: true, Imm: 1}},
		{{Op: ic.St, A: t2, B: t0, Reg: ic.RegionHeap},
			{Op: ic.St, A: t2, B: t1, Imm: 1, Reg: ic.RegionHeap}},
		{{Op: ic.St, A: t2, B: t0, Reg: ic.RegionHeap},
			{Op: ic.MovI, D: t1, Word: word.MakeInt(7)}},
		{{Op: ic.MovI, D: t0, Word: word.MakeInt(7)},
			{Op: ic.St, A: t2, B: t0, Reg: ic.RegionHeap}},
		{{Op: ic.Mov, D: t0, A: t1}, {Op: ic.Jmp, Target: 0}},
		{{Op: ic.Mov, D: t0, A: t1}, {Op: ic.Mov, D: t1, A: t0}},
		{{Op: ic.Mov, D: t0, A: t1}, {Op: ic.BrTag, A: t0, Tag: word.Ref, Target: 3}},
		{{Op: ic.Mov, D: t0, A: t1}, {Op: ic.BrTag, A: t0, Cond: ic.CondNe, Tag: word.Ref, Target: 3}},
		{{Op: ic.BrCmp, A: t0, Cond: ic.CondGe, B: t1, Target: 3}, {Op: ic.Mov, D: t0, A: t1}},
	}

	var progs [][]ic.Inst
	for _, in := range singles {
		progs = append(progs, []ic.Inst{{Op: ic.Nop}, in, halt})
	}
	for _, pr := range pairs {
		progs = append(progs, []ic.Inst{{Op: ic.Nop}, pr[0], pr[1], halt})
	}

	covered := map[XCode]bool{}
	for pi, code := range progs {
		xp := Predecode(mkProg(code))
		for _, s := range []*Stream{&xp.Plain, &xp.Fused} {
			for i := range s.Ops {
				op := &s.Ops[i]
				covered[op.Code] = true
				need := NeedRegs(op.Code)
				check := func(name string, v ic.Reg, bit uint8) {
					if v != 0 && need&bit == 0 {
						t.Errorf("prog %d: %s populates %s=%d but needRegs does not validate it",
							pi, op.Code, name, v)
					}
				}
				check("d", op.D, needD)
				check("a", op.A, needA)
				check("b", op.B, needB)
				check("d2", op.D2, needD2)
				check("a2", op.A2, needA2)
			}
		}
	}

	// Coverage: every opcode the table knows must have been produced by a
	// sample above, except the decode-failure sentinel (XUnknown) and the
	// invalid-syscall sentinel (XSysBad), which no valid program emits.
	for c := XCode(0); c < NumCodes; c++ {
		if !covered[c] && c != XUnknown && c != XSysBad {
			t.Errorf("no sample produced %s; its needRegs entry is untested", c)
		}
	}
}
