package exec

import (
	"symbol/internal/ic"
)

// The fusion catalog covers the pairs the BAM expansion emits on its
// hottest paths (internal/expand):
//
//	Ld + BrTag      — the pointer-chase half of deref: load a cell, branch
//	                  on its tag (taken when the chain ends).
//	Ld + BrCmp.eq/ne (reg) — the self-reference test half of deref: load a
//	                  cell and compare it against the address register to
//	                  detect an unbound variable.
//	GetTag + BrCmp.eq/ne (imm) — explicit tag-test-and-branch (switch_on_tag
//	                  shapes and hand-written IC).
//	St + Add (imm, d==a) — bump-allocate: store through H/TR/ESP and advance
//	                  the pointer. Survives rename.Fold at block boundaries.
//	Mov + Jmp       — the deref loop tail (advance the chase register and
//	                  jump back to the loop head).
//	BrCmp(target=pc+2) + Mov — compare-and-move: the max(EB,ESP) sequence in
//	Try/Allocate/pushFrame, a two-ICI conditional move.
//
// Beyond the branch shapes, the dynamically hottest adjacent pairs in the
// BAM expansion are memory runs: choice-point push (St+St... then the H/TR
// bump), choice-point restore on backtracking (Ld+Ld...), argument setup
// and environment shuffling (Mov+Mov, MovI+St, St+MovI), and the
// move-then-dispatch tails (Mov+BrTag, Mov+Jmp). Those all fuse too:
//
//	Ld + Ld, Ld + Mov        — restore runs
//	St + St, St + MovI, MovI + St — push / write-constant runs
//	Mov + Mov                — register shuffles
//	Mov + BrTag              — move-then-tag-dispatch
//
// MkTag+Br* is in the paper's hot set but this code generator never emits
// it adjacently; it is intentionally absent (a MkTag result is always
// stored or passed, not branched on).
//
// Legality: the caller guarantees the second constituent's pc is not a jump
// target (see jumpTargets), so control can only enter the pair at its head.
// Within a pair the constituents execute in original order with original
// semantics, so memory faults, profiling and step accounting can be
// replayed exactly (the executors handle the split points explicitly).

// fusePair attempts to fuse the adjacent ICIs a (at pc) and b (at pc+1)
// into one superinstruction.
func fusePair(a, b *ic.Inst, pc int) (Op, bool) {
	// Decode-altering marks (choice-point push, trail-entry fetch) map to
	// their own single opcodes in Decode1 so the dispatch counters can see
	// them; burying one inside a superinstruction would lose the count.
	// MarkCPPop fuses freely — Trust's Ld+Ld stays a superinstruction on the
	// hot backtrack path; pops only matter to the event trace, which runs on
	// the legacy loop and reads ic.Inst.Mark directly.
	if a.Mark == ic.MarkCPPush || a.Mark == ic.MarkTrailUndo ||
		b.Mark == ic.MarkCPPush || b.Mark == ic.MarkTrailUndo {
		return Op{}, false
	}
	switch a.Op {
	case ic.Ld:
		switch b.Op {
		case ic.BrTag:
			code := XFLdBrTagEq
			if b.Cond == ic.CondNe {
				code = XFLdBrTagNe
			}
			return Op{
				Code: code, Width: 2, PC: int32(pc),
				D: a.D, A: a.A, Imm: a.Imm,
				D2: b.A, Tag: b.Tag, Target: int32(b.Target),
			}, true
		case ic.BrCmp:
			if b.HasImm || (b.Cond != ic.CondEq && b.Cond != ic.CondNe) {
				break
			}
			code := XFLdBrCmpEqR
			if b.Cond == ic.CondNe {
				code = XFLdBrCmpNeR
			}
			return Op{
				Code: code, Width: 2, PC: int32(pc),
				D: a.D, A: a.A, Imm: a.Imm,
				D2: b.A, A2: b.B, Target: int32(b.Target),
			}, true
		case ic.Ld:
			return Op{
				Code: XFLdLd, Width: 2, PC: int32(pc),
				D: a.D, A: a.A, Imm: a.Imm,
				D2: b.D, A2: b.A, Imm2: b.Imm,
			}, true
		case ic.Mov:
			return Op{
				Code: XFLdMov, Width: 2, PC: int32(pc),
				D: a.D, A: a.A, Imm: a.Imm,
				D2: b.D, A2: b.A,
			}, true
		}
	case ic.GetTag:
		if b.Op == ic.BrCmp && b.HasImm && (b.Cond == ic.CondEq || b.Cond == ic.CondNe) {
			code := XFGetTagBrEqI
			if b.Cond == ic.CondNe {
				code = XFGetTagBrNeI
			}
			return Op{
				Code: code, Width: 2, PC: int32(pc),
				D: a.D, A: a.A,
				D2: b.A, W: b.Word, Target: int32(b.Target),
			}, true
		}
	case ic.St:
		switch b.Op {
		case ic.Add:
			if b.HasImm && b.D == b.A {
				return Op{
					Code: XFStAdd, Width: 2, PC: int32(pc),
					A: a.A, B: a.B, Imm: a.Imm, Region: a.Reg,
					D2: b.D, Imm2: b.Imm,
				}, true
			}
		case ic.St:
			return Op{
				Code: XFStSt, Width: 2, PC: int32(pc),
				A: a.A, B: a.B, Imm: a.Imm, Region: a.Reg,
				A2: b.A, D2: b.B, Imm2: b.Imm, Region2: b.Reg,
			}, true
		case ic.MovI:
			return Op{
				Code: XFStMovI, Width: 2, PC: int32(pc),
				A: a.A, B: a.B, Imm: a.Imm, Region: a.Reg,
				D2: b.D, W: b.Word,
			}, true
		}
	case ic.MovI:
		if b.Op == ic.St {
			return Op{
				Code: XFMovISt, Width: 2, PC: int32(pc),
				D: a.D, W: a.Word,
				A2: b.A, D2: b.B, Imm2: b.Imm, Region2: b.Reg,
			}, true
		}
	case ic.Mov:
		switch b.Op {
		case ic.Jmp:
			return Op{
				Code: XFMovJmp, Width: 2, PC: int32(pc),
				D: a.D, A: a.A, Target: int32(b.Target),
			}, true
		case ic.Mov:
			return Op{
				Code: XFMovMov, Width: 2, PC: int32(pc),
				D: a.D, A: a.A, D2: b.D, A2: b.A,
			}, true
		case ic.BrTag:
			code := XFMovBrTagEq
			if b.Cond == ic.CondNe {
				code = XFMovBrTagNe
			}
			return Op{
				Code: code, Width: 2, PC: int32(pc),
				D: a.D, A: a.A,
				D2: b.A, Tag: b.Tag, Target: int32(b.Target),
			}, true
		}
	case ic.BrCmp:
		// Compare-and-move: a branch that skips exactly the following Mov.
		// "Taken" means the move is skipped; either way control falls
		// through to pc+2, so the fused op has no Target.
		if !a.HasImm && a.Target == pc+2 && b.Op == ic.Mov {
			return Op{
				Code: XFCMovR, Width: 2, PC: int32(pc),
				A: a.A, B: a.B, Cond: a.Cond,
				D2: b.D, A2: b.A,
			}, true
		}
	}
	return Op{}, false
}
