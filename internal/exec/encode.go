package exec

import (
	"fmt"
	"math"
	"sort"

	"symbol/internal/fault"
	"symbol/internal/ic"
	"symbol/internal/wire"
	"symbol/internal/word"
)

// Snapshot encode/decode of the predecoded execution image. The whole
// point of shipping the image (instead of re-running Predecode at load) is
// the cold path, so the decoder must make the same guarantee Predecode
// makes implicitly: every field the hot loops consume without bounds
// checks — operand registers, branch targets, region table indices,
// profile pcs — is proven in range before an executor ever sees the
// stream. Validation is against the accompanying ic.Program because the
// register file and profile arrays are sized from it; a structurally valid
// stream that disagrees with its program is still rejected.

// Per-op field-presence bits (varint mask). Op fields default to zero, so
// presence is simply "non-zero"; this keeps the common two-operand op at
// ~6 bytes.
const (
	xopHasD = 1 << iota
	xopHasA
	xopHasB
	xopHasD2
	xopHasA2
	xopHasImm
	xopHasImm2
	xopHasW
	xopHasTag
	xopHasRegion
	xopHasRegion2
	xopHasCond
	xopHasTarget
	xopHasPC
)

func appendOp(w *wire.Writer, op *Op, prevPC int32) {
	w.Byte(byte(op.Code))
	var mask uint64
	if op.D != 0 {
		mask |= xopHasD
	}
	if op.A != 0 {
		mask |= xopHasA
	}
	if op.B != 0 {
		mask |= xopHasB
	}
	if op.D2 != 0 {
		mask |= xopHasD2
	}
	if op.A2 != 0 {
		mask |= xopHasA2
	}
	if op.Imm != 0 {
		mask |= xopHasImm
	}
	if op.Imm2 != 0 {
		mask |= xopHasImm2
	}
	if op.W != 0 {
		mask |= xopHasW
	}
	if op.Tag != 0 {
		mask |= xopHasTag
	}
	if op.Region != ic.RegionUnknown {
		mask |= xopHasRegion
	}
	if op.Region2 != ic.RegionUnknown {
		mask |= xopHasRegion2
	}
	if op.Cond != 0 {
		mask |= xopHasCond
	}
	if op.Target != 0 {
		mask |= xopHasTarget
	}
	if op.PC != 0 {
		mask |= xopHasPC
	}
	w.U64(mask)
	if mask&xopHasD != 0 {
		w.I64(int64(op.D))
	}
	if mask&xopHasA != 0 {
		w.I64(int64(op.A))
	}
	if mask&xopHasB != 0 {
		w.I64(int64(op.B))
	}
	if mask&xopHasD2 != 0 {
		w.I64(int64(op.D2))
	}
	if mask&xopHasA2 != 0 {
		w.I64(int64(op.A2))
	}
	if mask&xopHasImm != 0 {
		w.I64(op.Imm)
	}
	if mask&xopHasImm2 != 0 {
		w.I64(op.Imm2)
	}
	// Tagged words as varints would always cost ten bytes (tag bits live
	// in the high byte); fixed width is smaller and decodes in one load.
	if mask&xopHasW != 0 {
		w.Bytes64(uint64(op.W))
	}
	if mask&xopHasTag != 0 {
		w.Byte(byte(op.Tag))
	}
	if mask&xopHasRegion != 0 {
		w.Byte(byte(op.Region))
	}
	if mask&xopHasRegion2 != 0 {
		w.Byte(byte(op.Region2))
	}
	if mask&xopHasCond != 0 {
		w.Byte(byte(op.Cond))
	}
	// Targets and pcs are near the op's own position, so both are encoded
	// relative to the previous op's pc: pcs are non-decreasing across a
	// stream (Predecode appends in pc order), making the pc delta a
	// one-byte unsigned value, and branch targets land close enough to
	// their branch that the zigzag delta is usually one byte too.
	if mask&xopHasTarget != 0 {
		w.I64(int64(op.Target) - int64(prevPC))
	}
	if mask&xopHasPC != 0 {
		w.U64(uint64(op.PC) - uint64(prevPC))
	}
}

func readOp(r *wire.Reader, op *Op, prevPC int32) {
	op.Code = XCode(r.Byte())
	mask := r.U64()
	if mask&xopHasD != 0 {
		op.D = ic.Reg(r.I64())
	}
	if mask&xopHasA != 0 {
		op.A = ic.Reg(r.I64())
	}
	if mask&xopHasB != 0 {
		op.B = ic.Reg(r.I64())
	}
	if mask&xopHasD2 != 0 {
		op.D2 = ic.Reg(r.I64())
	}
	if mask&xopHasA2 != 0 {
		op.A2 = ic.Reg(r.I64())
	}
	if mask&xopHasImm != 0 {
		op.Imm = r.I64()
	}
	if mask&xopHasImm2 != 0 {
		op.Imm2 = r.I64()
	}
	if mask&xopHasW != 0 {
		op.W = word.W(r.Bytes64())
	}
	if mask&xopHasTag != 0 {
		op.Tag = word.Tag(r.Byte())
	}
	if mask&xopHasRegion != 0 {
		op.Region = ic.Region(r.Byte())
	}
	if mask&xopHasRegion2 != 0 {
		op.Region2 = ic.Region(r.Byte())
	}
	if mask&xopHasCond != 0 {
		op.Cond = ic.Cond(r.Byte())
	}
	if mask&xopHasTarget != 0 {
		t := r.I64() + int64(prevPC)
		r.Expect(t >= math.MinInt32 && t <= math.MaxInt32)
		op.Target = int32(t)
	}
	if mask&xopHasPC != 0 {
		pc := int64(prevPC) + int64(r.U64())
		r.Expect(pc <= math.MaxInt32)
		op.PC = int32(pc)
	}
	// Width is derived, not transmitted: exactly the superinstructions are
	// two ICIs wide.
	op.Width = 1
	if op.Code.Fused() {
		op.Width = 2
	}
	r.Expect(mask < 1<<14)
}

func appendStream(w *wire.Writer, s *Stream) {
	w.Count(len(s.Ops))
	prevPC := int32(0)
	for i := range s.Ops {
		appendOp(w, &s.Ops[i], prevPC)
		prevPC = s.Ops[i].PC
	}
	// The pc map is -1 sentinels interleaved with a non-decreasing index
	// sequence (Predecode appends ops in pc order), so each entry is a
	// delta from the last real index: 0 encodes -1, v encodes prev+v-1.
	// Deltas are 0 or 1 in practice, making the whole map one byte per pc.
	w.Count(len(s.XOf))
	prev := int32(0)
	for _, x := range s.XOf {
		if x < 0 {
			w.Byte(0)
		} else {
			w.U64(uint64(x-prev) + 1)
			prev = x
		}
	}
	w.I64(int64(s.Entry))
	w.I64(int64(s.Throw))
	w.I64(int64(s.Fail))
	w.I64(int64(s.bad))
}

func readStream(r *wire.Reader, s *Stream) {
	n := r.Len(2) // code byte + mask byte minimum
	s.Ops = make([]Op, n)
	prevPC := int32(0)
	for i := range s.Ops {
		readOp(r, &s.Ops[i], prevPC)
		prevPC = s.Ops[i].PC
	}
	xn := r.Len(1)
	s.XOf = make([]int32, xn)
	prev := uint64(0)
	for i := range s.XOf {
		v := r.U64()
		if v == 0 {
			s.XOf[i] = -1
			continue
		}
		prev += v - 1
		// Accumulated indices must stay in int32 range before the cast;
		// validateStream then checks them against the real stream length.
		r.Expect(prev <= math.MaxInt32)
		if r.Err() != nil {
			return
		}
		s.XOf[i] = int32(prev)
	}
	s.Entry = int32(r.I64())
	s.Throw = int32(r.I64())
	s.Fail = int32(r.I64())
	s.bad = int32(r.I64())
}

// AppendProgram encodes the execution image (both streams plus the fusion
// stats). Stats map keys are sorted for a deterministic byte stream.
func AppendProgram(w *wire.Writer, xp *Program) {
	appendStream(w, &xp.Plain)
	appendStream(w, &xp.Fused)
	w.Int(xp.Stats.PlainOps)
	w.Int(xp.Stats.FusedOps)
	codes := make([]int, 0, len(xp.Stats.Pairs))
	for c := range xp.Stats.Pairs {
		codes = append(codes, int(c))
	}
	sort.Ints(codes)
	w.Count(len(codes))
	for _, c := range codes {
		w.Byte(byte(c))
		w.Int(xp.Stats.Pairs[XCode(c)])
	}
}

// DecodeProgram decodes an execution image and validates it against the
// ic.Program it claims to predecode. On success the image is safe for the
// emulator's unchecked hot loops; on any violation it returns an error and
// never panics.
func DecodeProgram(r *wire.Reader, p *ic.Program) (*Program, error) {
	xp := &Program{}
	readStream(r, &xp.Plain)
	readStream(r, &xp.Fused)
	xp.Stats.PlainOps = r.Int()
	xp.Stats.FusedOps = r.Int()
	pairCount := r.Len(2)
	xp.Stats.Pairs = make(map[XCode]int, pairCount)
	for i := 0; i < pairCount; i++ {
		c := XCode(r.Byte())
		xp.Stats.Pairs[c] = r.Int()
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("exec: decode program: %w", err)
	}
	if err := ValidateProgram(xp, p); err != nil {
		return nil, err
	}
	return xp, nil
}

// Register-operand requirement bits per opcode: which Op fields the
// executors dereference into the register file. Derived from Decode1 and
// fusePair; TestNeedRegsMatchesPredecode locks the table to them.
const (
	needD = 1 << iota
	needA
	needB
	needD2
	needA2
)

var needRegs [NumCodes]uint8

func init() {
	set := func(mask uint8, cs ...XCode) {
		for _, c := range cs {
			needRegs[c] = mask
		}
	}
	set(needD|needA, XLd, XLdUndo, XMkTag, XGetTag, XLea, XMov, XMovCP,
		XAddI, XSubI, XMulI, XDivI, XModI, XAndI, XOrI, XXorI, XShlI, XShrI)
	set(needA|needB, XSt, XBrCmpEqR, XBrCmpNeR, XBrCmpOrdR)
	set(needD|needA|needB, XAddR, XSubR, XMulR, XDivR, XModR, XAndR, XOrR, XXorR, XShlR, XShrR)
	set(needD, XMovI, XJsr)
	set(needA, XBrTagEq, XBrTagNe, XBrCmpEqI, XBrCmpNeI, XBrCmpOrdI, XJmpR,
		XSysWrite, XSysWriteCode, XSysBallPut)
	set(needA|needB, XSysCompare)
	set(needD|needA|needD2, XFLdBrTagEq, XFLdBrTagNe, XFGetTagBrEqI, XFGetTagBrNeI,
		XFMovBrTagEq, XFMovBrTagNe)
	set(needD|needA|needD2|needA2, XFLdBrCmpEqR, XFLdBrCmpNeR, XFLdLd, XFLdMov, XFMovMov)
	set(needA|needB|needD2, XFStAdd, XFStMovI)
	set(needD|needA, XFMovJmp)
	set(needA|needB|needD2|needA2, XFCMovR)
	set(needA|needB|needA2|needD2, XFStSt)
	set(needD|needA2|needD2, XFMovISt)
}

// NeedRegs reports the register-operand requirement mask for an opcode
// (exported for the table-consistency test).
func NeedRegs(c XCode) uint8 {
	if c < NumCodes {
		return needRegs[c]
	}
	return 0
}

func validateStream(which string, s *Stream, maxReg ic.Reg, codeLen int) error {
	bad := func(x int, f string, args ...any) error {
		return fmt.Errorf("exec: %s stream op %d: %s: %w", which, x, fmt.Sprintf(f, args...), wire.ErrMalformed)
	}
	n := len(s.Ops)
	if n == 0 {
		return fmt.Errorf("exec: empty %s stream: %w", which, wire.ErrMalformed)
	}
	if len(s.XOf) != codeLen {
		return fmt.Errorf("exec: %s stream pc map has %d entries for %d ICIs: %w",
			which, len(s.XOf), codeLen, wire.ErrMalformed)
	}
	regOK := func(r ic.Reg) bool { return r >= 0 && r <= maxReg }
	for x := range s.Ops {
		op := &s.Ops[x]
		if op.Code >= NumCodes {
			return bad(x, "unknown opcode %d", op.Code)
		}
		if op.Tag >= word.NumTags {
			return bad(x, "tag %d out of range", op.Tag)
		}
		if op.Region > ic.RegionBall || op.Region2 > ic.RegionBall {
			return bad(x, "region %d/%d out of range", op.Region, op.Region2)
		}
		if op.Cond > ic.CondGe {
			return bad(x, "cond %d out of range", op.Cond)
		}
		need := needRegs[op.Code]
		if need&needD != 0 && !regOK(op.D) {
			return bad(x, "%s reg d=%d", op.Code, op.D)
		}
		if need&needA != 0 && !regOK(op.A) {
			return bad(x, "%s reg a=%d", op.Code, op.A)
		}
		if need&needB != 0 && !regOK(op.B) {
			return bad(x, "%s reg b=%d", op.Code, op.B)
		}
		if need&needD2 != 0 && !regOK(op.D2) {
			return bad(x, "%s reg d2=%d", op.Code, op.D2)
		}
		if need&needA2 != 0 && !regOK(op.A2) {
			return bad(x, "%s reg a2=%d", op.Code, op.A2)
		}
		if hasTarget(op.Code) && (op.Target < 0 || int(op.Target) >= n) {
			return bad(x, "%s target %d outside stream", op.Code, op.Target)
		}
		// Profiled loops count expect[PC] (and expect[PC+1] for pairs)
		// against arrays sized by the ICI count. Trap ops legitimately
		// carry PC == codeLen (the fall-off-the-end pc) and are never
		// profiled before erroring out.
		switch {
		case op.Code == XBadPC:
			if op.PC < 0 || int(op.PC) > codeLen {
				return bad(x, "trap pc %d out of range", op.PC)
			}
		case op.Width == 2:
			if op.PC < 0 || int(op.PC)+1 >= codeLen {
				return bad(x, "fused pc %d out of range", op.PC)
			}
		default:
			if op.PC < 0 || int(op.PC) >= codeLen {
				return bad(x, "pc %d out of range", op.PC)
			}
		}
		if op.Code == XSysFault && (op.Imm < 0 || op.Imm >= int64(fault.NumKinds)) {
			return bad(x, "fault kind %d out of range", op.Imm)
		}
	}
	for pc, x := range s.XOf {
		if x < -1 || int(x) >= n {
			return fmt.Errorf("exec: %s stream pc map [%d]=%d out of range: %w",
				which, pc, x, wire.ErrMalformed)
		}
	}
	if s.Entry < 0 || int(s.Entry) >= n {
		return fmt.Errorf("exec: %s stream entry %d out of range: %w", which, s.Entry, wire.ErrMalformed)
	}
	if s.Throw < -1 || int(s.Throw) >= n {
		return fmt.Errorf("exec: %s stream throw %d out of range: %w", which, s.Throw, wire.ErrMalformed)
	}
	if s.Fail < -1 || int(s.Fail) >= n {
		return fmt.Errorf("exec: %s stream fail %d out of range: %w", which, s.Fail, wire.ErrMalformed)
	}
	if s.bad < 0 || int(s.bad) >= n || s.Ops[s.bad].Code != XBadPC {
		return fmt.Errorf("exec: %s stream trap index %d invalid: %w", which, s.bad, wire.ErrMalformed)
	}
	return nil
}

// ValidateProgram checks the executor-safety invariants of a decoded
// execution image against the program whose register file and profile
// arrays it will share. Everything the unchecked hot loops index — operand
// registers (register file is sized from p.MaxReg), branch targets, the
// per-region limit table, profile pcs, fault-kind counters — is proven in
// range here.
func ValidateProgram(xp *Program, p *ic.Program) error {
	maxReg := p.MaxReg()
	if err := validateStream("plain", &xp.Plain, maxReg, len(p.Code)); err != nil {
		return err
	}
	if err := validateStream("fused", &xp.Fused, maxReg, len(p.Code)); err != nil {
		return err
	}
	for c := range xp.Stats.Pairs {
		if c >= NumCodes {
			return fmt.Errorf("exec: stats pair opcode %d out of range: %w", c, wire.ErrMalformed)
		}
	}
	return nil
}
