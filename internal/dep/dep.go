// Package dep builds the data-dependency graph over a trace of Intermediate
// Code instructions. All the dependency kinds the paper lists in §4.3 are
// modeled: memory dependency, source-destination (read-after-write),
// write-after-read, write-after-write, and off-live (an operation may not
// move above a branch if its destination is live on the branch's off-trace
// path). A constraint on the sequence of branches is also imposed, exactly
// as the paper does, "to limit the possibility of code motion to avoid an
// exponential growth of instruction copies".
package dep

import (
	"symbol/internal/ic"
)

// Kind classifies a dependency edge.
type Kind uint8

const (
	RAW     Kind = iota // source-destination (true) dependency
	WAR                 // write-after-read
	WAW                 // write-after-write
	Mem                 // memory (load/store ordering)
	Ctrl                // branch-sequence constraint
	OffLive             // speculation barrier: destination live off-trace
	Order               // side-effect ordering (stores/sys below branches)
)

var kindNames = []string{"raw", "war", "waw", "mem", "ctrl", "off-live", "order"}

func (k Kind) String() string { return kindNames[k] }

// Edge is a scheduling constraint: To must issue at least Latency cycles
// after From (Latency 0 allows the same instruction word).
type Edge struct {
	From, To int
	Latency  int
	Kind     Kind
}

// Graph is the dependency DAG of one trace.
type Graph struct {
	Insts []ic.Inst
	Edges []Edge
	// Succs/Preds index Edges by endpoint.
	Succs [][]int
	Preds [][]int
}

// Options configure graph construction.
type Options struct {
	// MemLatency is the load-to-use latency.
	MemLatency int
	// OffLive[i], for a conditional branch at trace position i, is the set
	// of registers live on the branch's off-trace edge. Operations whose
	// destination is in this set (and all stores and sys escapes) may not
	// move above the branch.
	OffLive []map[ic.Reg]bool
	// DisambiguateRegions breaks memory dependencies between accesses
	// statically annotated with different memory regions.
	DisambiguateRegions bool
	// BranchBubble is the machine's taken-branch penalty; together with
	// MemLatency it decides how far a non-speculable load must stay above
	// a branch so that an off-trace consumer never observes an in-flight
	// value: branchWord >= loadWord + MemLatency - 1 - BranchBubble.
	BranchBubble int
}

// latencyOf is the producer latency of an instruction's result.
func latencyOf(in *ic.Inst, memLat int) int {
	if in.Op == ic.Ld {
		return memLat
	}
	return 1
}

// mayAlias conservatively decides whether two memory operations can touch
// the same word. Accesses through the same base register with different
// offsets are provably disjoint; with region disambiguation enabled,
// accesses to different annotated regions are too. Everything else aliases
// (§4.1: pointer-derived stack references cannot be disambiguated).
func mayAlias(a, b *ic.Inst, regions bool) bool {
	if a.A == b.A && a.Imm != b.Imm {
		return false
	}
	if regions && a.Reg != ic.RegionUnknown && b.Reg != ic.RegionUnknown && a.Reg != b.Reg {
		return false
	}
	return true
}

// speculable reports whether instruction in may move above a conditional
// branch whose off-trace live set is live. Stores, sys escapes and control
// operations never speculate; others require a dead destination off-trace.
// Loads are assumed non-faulting (dismissible), as on real VLIWs.
func speculable(in *ic.Inst, live map[ic.Reg]bool) bool {
	switch in.Class() {
	case ic.ClassControl, ic.ClassSys:
		return false
	}
	if in.Op == ic.St {
		return false
	}
	d := in.Def()
	if d == ic.None {
		return true
	}
	return !live[d]
}

// Build constructs the dependency graph for the trace insts.
func Build(insts []ic.Inst, opts Options) *Graph {
	n := len(insts)
	g := &Graph{
		Insts: insts,
		Succs: make([][]int, n),
		Preds: make([][]int, n),
	}
	add := func(from, to, lat int, kind Kind) {
		e := len(g.Edges)
		g.Edges = append(g.Edges, Edge{From: from, To: to, Latency: lat, Kind: kind})
		g.Succs[from] = append(g.Succs[from], e)
		g.Preds[to] = append(g.Preds[to], e)
	}

	// Register dependencies: for each instruction, look back for the most
	// recent writer of each used register (RAW), previous readers of the
	// written register (WAR) and the previous writer (WAW).
	lastWrite := map[ic.Reg]int{}   // reg → instruction index
	lastReads := map[ic.Reg][]int{} // reg → reader indexes since last write
	var lastBranch = -1             // most recent control op
	var lastSys = -1                // most recent sys escape
	var stores []int                // store indexes
	var loads []int                 // load indexes
	branchesAbove := []int{}        // all control ops so far
	var scratch []ic.Reg

	for j := 0; j < n; j++ {
		in := &insts[j]

		// Register edges.
		scratch = in.Uses(scratch[:0])
		for _, r := range scratch {
			if i, ok := lastWrite[r]; ok {
				add(i, j, latencyOf(&insts[i], opts.MemLatency), RAW)
			}
			lastReads[r] = append(lastReads[r], j)
		}
		if d := in.Def(); d != ic.None {
			if i, ok := lastWrite[d]; ok {
				add(i, j, 1, WAW)
			}
			for _, i := range lastReads[d] {
				if i != j {
					add(i, j, 0, WAR)
				}
			}
			lastWrite[d] = j
			lastReads[d] = nil
		}

		// Memory edges.
		switch in.Op {
		case ic.Ld:
			for _, i := range stores {
				if mayAlias(&insts[i], in, opts.DisambiguateRegions) {
					add(i, j, 1, Mem)
				}
			}
			// Sys escapes may write memory (ball_put fills the ball area),
			// and their operands are not base addresses mayAlias could
			// reason about: order all later memory traffic behind them.
			if lastSys >= 0 {
				add(lastSys, j, 1, Mem)
			}
			loads = append(loads, j)
		case ic.St:
			for _, i := range stores {
				if mayAlias(&insts[i], in, opts.DisambiguateRegions) {
					add(i, j, 1, Mem)
				}
			}
			for _, i := range loads {
				if mayAlias(in, &insts[i], opts.DisambiguateRegions) {
					add(i, j, 0, Mem) // load before store: same word is fine
				}
			}
			if lastSys >= 0 {
				add(lastSys, j, 1, Mem)
			}
			stores = append(stores, j)
		}

		switch in.Class() {
		case ic.ClassControl:
			// Branch-sequence constraint (§4.3): branches never reorder.
			if lastBranch >= 0 {
				add(lastBranch, j, 0, Ctrl)
			}
			// Instructions before a branch may sink below it only if the
			// branch's exit path cannot observe the difference — the same
			// dead-destination/no-side-effect rule as speculation. For
			// terminal controls (calls, returns, trailing jumps) everything
			// stays above.
			var live map[ic.Reg]bool
			cond := in.IsCondBranch()
			if cond && opts.OffLive != nil {
				live = opts.OffLive[j]
			}
			exitLat := opts.MemLatency - 1 - opts.BranchBubble
			if exitLat < 0 {
				exitLat = 0
			}
			for i := 0; i < j; i++ {
				if insts[i].Class() == ic.ClassControl {
					continue
				}
				if !cond || !speculable(&insts[i], live) {
					lat := 0
					if insts[i].Op == ic.Ld {
						lat = exitLat
					}
					add(i, j, lat, Order)
				}
			}
			lastBranch = j
			branchesAbove = append(branchesAbove, j)
		case ic.ClassSys:
			// Sys escapes have observable effects: keep their order, keep
			// them after stores (write/1 reads the heap), and behind the
			// last branch.
			if lastSys >= 0 {
				add(lastSys, j, 1, Order)
			}
			for _, i := range stores {
				add(i, j, 1, Mem)
			}
			for _, i := range loads {
				add(i, j, 0, Mem) // reads must not see the sys's memory writes
			}
			lastSys = j
		}

		// Off-live speculation barriers: an instruction after a branch
		// needs an edge from every branch it may not cross.
		if in.Class() != ic.ClassControl {
			for _, b := range branchesAbove {
				var live map[ic.Reg]bool
				if opts.OffLive != nil {
					live = opts.OffLive[b]
				}
				if !insts[b].IsCondBranch() {
					// Unconditional trace-internal jumps (deleted later)
					// do not constrain motion; terminal controls end the
					// trace anyway.
					continue
				}
				if !speculable(in, live) {
					// Latency 1: every operation in a word issues even when
					// a branch in the same word is taken, so a non-
					// speculable operation must land strictly below the
					// branch's word.
					add(b, j, 1, OffLive)
				}
			}
		}
		// Sys must additionally stay behind sys-order via branches; the
		// Order edges above already pin them.
	}
	return g
}

// CriticalPath returns, for every node, the longest latency-weighted path
// from that node to any sink (used as the list-scheduling priority).
func (g *Graph) CriticalPath() []int {
	n := len(g.Insts)
	prio := make([]int, n)
	for j := n - 1; j >= 0; j-- {
		best := 0
		for _, e := range g.Succs[j] {
			edge := g.Edges[e]
			v := prio[edge.To] + edge.Latency
			if v > best {
				best = v
			}
		}
		prio[j] = best + 1
	}
	return prio
}
