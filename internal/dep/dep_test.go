package dep

import (
	"testing"

	"symbol/internal/ic"
)

const (
	t0 = ic.FirstTemp
	t1 = ic.FirstTemp + 1
	t2 = ic.FirstTemp + 2
)

func hasEdge(g *Graph, from, to int, kind Kind) bool {
	for _, e := range g.Edges {
		if e.From == from && e.To == to && e.Kind == kind {
			return true
		}
	}
	return false
}

func edgeLat(g *Graph, from, to int, kind Kind) int {
	for _, e := range g.Edges {
		if e.From == from && e.To == to && e.Kind == kind {
			return e.Latency
		}
	}
	return -1
}

func TestRAWLatency(t *testing.T) {
	insts := []ic.Inst{
		{Op: ic.Ld, D: t0, A: ic.RegH},                   // 0
		{Op: ic.Add, D: t1, A: t0, HasImm: true, Imm: 1}, // 1: uses load result
		{Op: ic.Mov, D: t2, A: t1},                       // 2: uses alu result
	}
	g := Build(insts, Options{MemLatency: 2})
	if l := edgeLat(g, 0, 1, RAW); l != 2 {
		t.Errorf("load RAW latency = %d, want 2", l)
	}
	if l := edgeLat(g, 1, 2, RAW); l != 1 {
		t.Errorf("alu RAW latency = %d, want 1", l)
	}
}

func TestWARAndWAW(t *testing.T) {
	insts := []ic.Inst{
		{Op: ic.Mov, D: t0, A: ic.RegH}, // 0 writes t0
		{Op: ic.Mov, D: t1, A: t0},      // 1 reads t0
		{Op: ic.Mov, D: t0, A: ic.RegE}, // 2 rewrites t0
	}
	g := Build(insts, Options{MemLatency: 2})
	if !hasEdge(g, 0, 2, WAW) {
		t.Error("missing WAW 0→2")
	}
	if l := edgeLat(g, 1, 2, WAR); l != 0 {
		t.Errorf("WAR latency = %d, want 0 (same word legal)", l)
	}
}

func TestMemoryDependencies(t *testing.T) {
	insts := []ic.Inst{
		{Op: ic.St, A: t0, Imm: 0, B: t1},     // 0
		{Op: ic.Ld, D: t2, A: t0, Imm: 0},     // 1: same base+offset → alias
		{Op: ic.Ld, D: t2 + 1, A: t0, Imm: 1}, // 2: same base, different offset
		{Op: ic.St, A: t0, Imm: 0, B: t1},     // 3: store-store alias
	}
	g := Build(insts, Options{MemLatency: 2})
	if l := edgeLat(g, 0, 1, Mem); l != 1 {
		t.Errorf("st→ld latency = %d, want 1", l)
	}
	if hasEdge(g, 0, 2, Mem) {
		t.Error("same base, different offset must not alias")
	}
	if !hasEdge(g, 0, 3, Mem) {
		t.Error("missing st→st dependency")
	}
	if l := edgeLat(g, 1, 3, Mem); l != 0 {
		t.Errorf("ld→st latency = %d, want 0", l)
	}
}

func TestRegionDisambiguation(t *testing.T) {
	insts := []ic.Inst{
		{Op: ic.St, A: t0, Imm: 0, B: t1, Reg: ic.RegionTrail},
		{Op: ic.Ld, D: t2, A: t1, Imm: 0, Reg: ic.RegionHeap},
	}
	g := Build(insts, Options{MemLatency: 2})
	if !hasEdge(g, 0, 1, Mem) {
		t.Error("without region analysis the pair must alias")
	}
	g = Build(insts, Options{MemLatency: 2, DisambiguateRegions: true})
	if hasEdge(g, 0, 1, Mem) {
		t.Error("different regions must not alias when enabled")
	}
}

func TestBranchSequenceConstraint(t *testing.T) {
	insts := []ic.Inst{
		{Op: ic.BrTag, A: t0, Target: 0},
		{Op: ic.BrCmp, A: t1, Target: 0},
	}
	g := Build(insts, Options{MemLatency: 2})
	if !hasEdge(g, 0, 1, Ctrl) {
		t.Error("branches must keep their order")
	}
}

func TestSpeculationOffLive(t *testing.T) {
	live := map[ic.Reg]bool{t1: true}
	insts := []ic.Inst{
		{Op: ic.BrTag, A: t0, Target: 0},  // 0: branch
		{Op: ic.Mov, D: t1, A: t0},        // 1: dest live off-trace
		{Op: ic.Mov, D: t2, A: t0},        // 2: dest dead off-trace
		{Op: ic.St, A: t0, Imm: 0, B: t0}, // 3: store never speculates
		{Op: ic.Ld, D: t2 + 1, A: t0},     // 4: load with dead dest
	}
	g := Build(insts, Options{MemLatency: 2, OffLive: []map[ic.Reg]bool{live, nil, nil, nil, nil}})
	if l := edgeLat(g, 0, 1, OffLive); l != 1 {
		t.Errorf("live-dest op needs an off-live edge with latency 1, got %d", l)
	}
	if hasEdge(g, 0, 2, OffLive) {
		t.Error("dead-dest op may speculate")
	}
	if !hasEdge(g, 0, 3, OffLive) {
		t.Error("stores may not speculate")
	}
	if hasEdge(g, 0, 4, OffLive) {
		t.Error("dead-dest loads may speculate (non-faulting)")
	}
}

func TestSinkingRules(t *testing.T) {
	live := map[ic.Reg]bool{t0: true}
	insts := []ic.Inst{
		{Op: ic.Mov, D: t0, A: ic.RegH},       // 0: dest live on exit → pinned above
		{Op: ic.Mov, D: t1, A: ic.RegH},       // 1: dest dead on exit → may sink
		{Op: ic.BrTag, A: ic.RegH, Target: 0}, // 2
	}
	g := Build(insts, Options{MemLatency: 2, OffLive: []map[ic.Reg]bool{nil, nil, live}})
	if !hasEdge(g, 0, 2, Order) {
		t.Error("op with live dest must stay above the branch")
	}
	if hasEdge(g, 1, 2, Order) {
		t.Error("op with dead dest may sink below the branch")
	}
}

func TestTerminalPinsEverything(t *testing.T) {
	insts := []ic.Inst{
		{Op: ic.Mov, D: t0, A: ic.RegH},
		{Op: ic.Jsr, D: ic.RegCP, Target: 0},
	}
	g := Build(insts, Options{MemLatency: 2, OffLive: make([]map[ic.Reg]bool, 2)})
	if !hasEdge(g, 0, 1, Order) {
		t.Error("everything must stay above a call")
	}
}

func TestSysOrdering(t *testing.T) {
	insts := []ic.Inst{
		{Op: ic.St, A: t0, Imm: 0, B: t1},                     // 0
		{Op: ic.SysOp, Sys: ic.SysWrite, A: t0, B: ic.None},   // 1
		{Op: ic.SysOp, Sys: ic.SysNl, A: ic.None, B: ic.None}, // 2
	}
	g := Build(insts, Options{MemLatency: 2})
	if !hasEdge(g, 0, 1, Mem) {
		t.Error("write/1 reads the heap: store must come first")
	}
	if !hasEdge(g, 1, 2, Order) {
		t.Error("sys escapes keep their order")
	}
}

func TestLoadExitLatency(t *testing.T) {
	// With bubble 0, a non-speculable load must sit one word above the
	// branch so the off-trace consumer sees a completed load.
	live := map[ic.Reg]bool{t0: true}
	insts := []ic.Inst{
		{Op: ic.Ld, D: t0, A: ic.RegH},
		{Op: ic.BrTag, A: ic.RegE, Target: 0},
	}
	g := Build(insts, Options{MemLatency: 2, BranchBubble: 0, OffLive: []map[ic.Reg]bool{nil, live}})
	if l := edgeLat(g, 0, 1, Order); l != 1 {
		t.Errorf("exit latency edge = %d, want 1", l)
	}
	g = Build(insts, Options{MemLatency: 2, BranchBubble: 1, OffLive: []map[ic.Reg]bool{nil, live}})
	if l := edgeLat(g, 0, 1, Order); l != 0 {
		t.Errorf("with a bubble the load may share the branch word, got %d", l)
	}
}

func TestCriticalPath(t *testing.T) {
	insts := []ic.Inst{
		{Op: ic.Ld, D: t0, A: ic.RegH},                   // 0
		{Op: ic.Add, D: t1, A: t0, HasImm: true, Imm: 1}, // 1
		{Op: ic.Mov, D: t2, A: ic.RegE},                  // 2: independent
	}
	g := Build(insts, Options{MemLatency: 2})
	prio := g.CriticalPath()
	if prio[0] <= prio[1] || prio[1] <= 0 {
		t.Errorf("critical path priorities wrong: %v", prio)
	}
	if prio[2] >= prio[0] {
		t.Errorf("independent op cannot outrank the chain head: %v", prio)
	}
}
