// Package stats implements the code analyses of paper §4: dynamic
// instruction-class frequencies (Figure 2), the Amdahl's-law speed-up bound
// for shared-memory models (§4.2, Figure 3), and the branch-predictability
// measurements that justify trace scheduling on symbolic code (§4.4,
// Table 2 and Figure 4).
package stats

import (
	"fmt"
	"math"

	"symbol/internal/emu"
	"symbol/internal/ic"
)

// Mix is the dynamic instruction-class distribution of one run, with all
// operations weighted equally (the paper's Figure 2 hypothesis: "all
// operations have the same duration").
type Mix struct {
	Counts [ic.NumClasses]int64
	Total  int64
}

// ComputeMix tallies executed instructions per class.
func ComputeMix(prog *ic.Program, prof *emu.Profile) Mix {
	var m Mix
	for pc := range prog.Code {
		n := prof.Expect[pc]
		if n == 0 {
			continue
		}
		m.Counts[prog.Code[pc].Class()] += n
		m.Total += n
	}
	return m
}

// Fraction returns the share of class c.
func (m Mix) Fraction(c ic.Class) float64 {
	if m.Total == 0 {
		return 0
	}
	return float64(m.Counts[c]) / float64(m.Total)
}

// Add accumulates another run's mix (for suite-wide averages the paper
// computes "as an average of the values obtained via sequential
// simulation").
func (m *Mix) Add(o Mix) {
	for i := range m.Counts {
		m.Counts[i] += o.Counts[i]
	}
	m.Total += o.Total
}

// AverageMix averages per-benchmark fractions with equal benchmark weight.
func AverageMix(mixes []Mix) [ic.NumClasses]float64 {
	var out [ic.NumClasses]float64
	if len(mixes) == 0 {
		return out
	}
	for _, m := range mixes {
		for c := ic.Class(0); c < ic.NumClasses; c++ {
			out[c] += m.Fraction(c)
		}
	}
	for c := range out {
		out[c] /= float64(len(mixes))
	}
	return out
}

// Amdahl computes the overall speed-up when the non-memory fraction
// (fractionEnhanced) is accelerated by speedupEnhanced (§4.2).
func Amdahl(fractionEnhanced, speedupEnhanced float64) float64 {
	if speedupEnhanced <= 0 {
		return 1
	}
	return 1 / ((1 - fractionEnhanced) + fractionEnhanced/speedupEnhanced)
}

// AmdahlLimit is the asymptotic bound as the enhancement goes to infinity:
// 1 / (1 - fractionEnhanced). With the paper's measured memory fraction of
// ~0.32 this is the famous "about 3".
func AmdahlLimit(fractionEnhanced float64) float64 {
	if fractionEnhanced >= 1 {
		return math.Inf(1)
	}
	return 1 / (1 - fractionEnhanced)
}

// AmdahlPoint is one point of the Figure 3 curves.
type AmdahlPoint struct {
	Enhancement float64 // speed-up applied to ALU/control/move operations
	Separate    float64 // memory executed separately (dotted curve)
	Overlapped  float64 // memory completely overlapped with computation
}

// AmdahlCurves evaluates Figure 3: the maximum ideal speed-up as a function
// of the concurrency applied to non-memory operations, under two
// hypotheses. memFraction is the measured share of memory operations.
func AmdahlCurves(memFraction float64, enhancements []float64) []AmdahlPoint {
	out := make([]AmdahlPoint, 0, len(enhancements))
	comp := 1 - memFraction
	for _, e := range enhancements {
		// Separate: memory still costs its share serially.
		sep := Amdahl(comp, e)
		// Overlapped: execution time is max(memory, computation/e) of the
		// original unit time — memory becomes the floor.
		ov := 1 / math.Max(memFraction, comp/e)
		out = append(out, AmdahlPoint{Enhancement: e, Separate: sep, Overlapped: ov})
	}
	return out
}

// FaultyPrediction is the paper's P_fp(b): the probability that a branch
// "usually taken" is not taken, or vice versa — min(p, 1-p).
func FaultyPrediction(p float64) float64 {
	if p > 0.5 {
		return 1 - p
	}
	return p
}

// BranchStats summarizes the dynamic branch behaviour of one run (§4.4).
type BranchStats struct {
	// AvgPfp is the execution-weighted average probability of faulty
	// prediction (Table 2).
	AvgPfp float64
	// AvgTaken is the execution-weighted average taken probability.
	AvgTaken float64
	// Executions is the total dynamic conditional-branch count.
	Executions int64
	// StaticBranches is the number of distinct executed conditional
	// branches.
	StaticBranches int
	// Histogram buckets P_fp in [0, 0.5] into Bins equal bins, weighting
	// each branch by its execution count (Figure 4's distribution).
	Histogram []float64
	Bins      int
}

// ComputeBranchStats derives the Table 2 / Figure 4 measurements: "a
// dynamic analysis during simulation which computes an average of the
// probability weighted with the execution frequency of the branches".
func ComputeBranchStats(prog *ic.Program, prof *emu.Profile, bins int) BranchStats {
	if bins <= 0 {
		bins = 20
	}
	bs := BranchStats{Bins: bins, Histogram: make([]float64, bins)}
	var wPfp, wTaken, wSum float64
	for pc := range prog.Code {
		in := &prog.Code[pc]
		if !in.IsCondBranch() {
			continue
		}
		n := prof.Expect[pc]
		if n == 0 {
			continue
		}
		p := float64(prof.Taken[pc]) / float64(n)
		pfp := FaultyPrediction(p)
		w := float64(n)
		wPfp += w * pfp
		wTaken += w * p
		wSum += w
		bs.Executions += n
		bs.StaticBranches++
		bin := int(pfp * 2 * float64(bins))
		if bin >= bins {
			bin = bins - 1
		}
		bs.Histogram[bin] += w
	}
	if wSum > 0 {
		bs.AvgPfp = wPfp / wSum
		bs.AvgTaken = wTaken / wSum
		for i := range bs.Histogram {
			bs.Histogram[i] /= wSum
		}
	}
	return bs
}

// NinetyFifty checks the numeric/scientific "90/50 branch-taken rule"
// against the measured profile: it returns the taken probability of
// backward branches and of forward branches. The paper shows the rule does
// not hold for Prolog.
func NinetyFifty(prog *ic.Program, prof *emu.Profile) (backward, forward float64) {
	var bT, bN, fT, fN float64
	for pc := range prog.Code {
		in := &prog.Code[pc]
		if !in.IsCondBranch() || prof.Expect[pc] == 0 {
			continue
		}
		t := float64(prof.Taken[pc])
		n := float64(prof.Expect[pc])
		if in.Target <= pc {
			bT += t
			bN += n
		} else {
			fT += t
			fN += n
		}
	}
	if bN > 0 {
		backward = bT / bN
	}
	if fN > 0 {
		forward = fT / fN
	}
	return backward, forward
}

// FormatMix renders a mix for reports.
func FormatMix(m Mix) string {
	s := ""
	for c := ic.Class(0); c < ic.NumClasses; c++ {
		s += fmt.Sprintf("%-8s %6.2f%%\n", c, 100*m.Fraction(c))
	}
	return s
}
