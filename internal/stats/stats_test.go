package stats

import (
	"math"
	"testing"
	"testing/quick"

	"symbol/internal/emu"
	"symbol/internal/ic"
	"symbol/internal/term"
)

func mkProg(code []ic.Inst) *ic.Program {
	return &ic.Program{Code: code, Atoms: term.NewTable()}
}

func TestComputeMix(t *testing.T) {
	p := mkProg([]ic.Inst{
		{Op: ic.Ld, D: ic.FirstTemp, A: ic.RegH},                // memory
		{Op: ic.Add, D: ic.FirstTemp, A: ic.RegH, HasImm: true}, // alu
		{Op: ic.Mov, D: ic.FirstTemp, A: ic.RegH},               // move
		{Op: ic.Jmp},  // control
		{Op: ic.Halt}, // control, never executed
	})
	prof := &emu.Profile{Expect: []int64{10, 20, 30, 40, 0}, Taken: make([]int64, 5)}
	m := ComputeMix(p, prof)
	if m.Total != 100 {
		t.Fatalf("total %d", m.Total)
	}
	if m.Fraction(ic.ClassMemory) != 0.1 || m.Fraction(ic.ClassALU) != 0.2 ||
		m.Fraction(ic.ClassMove) != 0.3 || m.Fraction(ic.ClassControl) != 0.4 {
		t.Errorf("fractions wrong: %+v", m)
	}
}

func TestAverageMixEqualWeight(t *testing.T) {
	var a, b Mix
	a.Counts[ic.ClassMemory] = 1
	a.Total = 1 // 100% memory
	b.Counts[ic.ClassALU] = 1
	b.Total = 1 // 100% alu
	avg := AverageMix([]Mix{a, b})
	if avg[ic.ClassMemory] != 0.5 || avg[ic.ClassALU] != 0.5 {
		t.Errorf("got %v", avg)
	}
	if AverageMix(nil) != [ic.NumClasses]float64{} {
		t.Error("empty average must be zero")
	}
}

func TestAmdahl(t *testing.T) {
	// The paper's headline numbers: fraction 0.68 enhanced infinitely →
	// speed-up 1/0.32 ≈ 3.1 (the paper rounds to 3.0).
	if got := AmdahlLimit(0.68); math.Abs(got-3.125) > 1e-9 {
		t.Errorf("limit = %f", got)
	}
	if got := Amdahl(0.68, 1); math.Abs(got-1) > 1e-9 {
		t.Errorf("no enhancement must give 1, got %f", got)
	}
	// Monotone non-decreasing in the enhancement.
	f := func(e float64) bool {
		e = math.Abs(e)
		if e < 1 {
			e = 1
		}
		if e > 1e6 {
			return true
		}
		return Amdahl(0.68, e+1) >= Amdahl(0.68, e)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(AmdahlLimit(1.0), 1) {
		t.Error("fully enhanced limit must be infinite")
	}
}

func TestAmdahlCurves(t *testing.T) {
	pts := AmdahlCurves(0.32, []float64{1, 2, 4, 1000})
	if len(pts) != 4 {
		t.Fatal("point count")
	}
	// The overlapped curve saturates at 1/memFraction.
	last := pts[len(pts)-1]
	if math.Abs(last.Overlapped-1/0.32) > 1e-9 {
		t.Errorf("overlapped asymptote %f", last.Overlapped)
	}
	// Overlapped dominates separate everywhere.
	for _, p := range pts {
		if p.Overlapped+1e-12 < p.Separate {
			t.Errorf("overlap must dominate at e=%f", p.Enhancement)
		}
	}
}

func TestFaultyPrediction(t *testing.T) {
	cases := map[float64]float64{0: 0, 0.1: 0.1, 0.5: 0.5, 0.9: 0.1, 1: 0}
	for p, want := range cases {
		if got := FaultyPrediction(p); math.Abs(got-want) > 1e-12 {
			t.Errorf("Pfp(%f) = %f, want %f", p, got, want)
		}
	}
	f := func(p float64) bool {
		p = math.Mod(math.Abs(p), 1)
		v := FaultyPrediction(p)
		return v >= 0 && v <= 0.5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBranchStats(t *testing.T) {
	p := mkProg([]ic.Inst{
		{Op: ic.BrCmp, A: ic.RegH, Target: 0}, // taken 90/100 → Pfp 0.1
		{Op: ic.BrTag, A: ic.RegH, Target: 0}, // taken 50/100 → Pfp 0.5
		{Op: ic.Jmp},                          // not conditional
		{Op: ic.Halt},
	})
	prof := &emu.Profile{
		Expect: []int64{100, 100, 50, 1},
		Taken:  []int64{90, 50, 0, 0},
	}
	bs := ComputeBranchStats(p, prof, 10)
	if bs.StaticBranches != 2 || bs.Executions != 200 {
		t.Fatalf("got %+v", bs)
	}
	if math.Abs(bs.AvgPfp-0.3) > 1e-9 {
		t.Errorf("AvgPfp = %f, want 0.3", bs.AvgPfp)
	}
	if math.Abs(bs.AvgTaken-0.7) > 1e-9 {
		t.Errorf("AvgTaken = %f", bs.AvgTaken)
	}
	var sum float64
	for _, v := range bs.Histogram {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("histogram mass %f", sum)
	}
	// Pfp ≈0.1 lands around bin 2 of 10 (width 0.05; floating point may
	// put it one bin lower), 0.5 in the last bin.
	if bs.Histogram[1]+bs.Histogram[2] != 0.5 || bs.Histogram[9] != 0.5 {
		t.Errorf("histogram %v", bs.Histogram)
	}
}

func TestNinetyFifty(t *testing.T) {
	p := mkProg([]ic.Inst{
		{Op: ic.BrCmp, A: ic.RegH, Target: 0}, // backward (self)
		{Op: ic.BrCmp, A: ic.RegH, Target: 3}, // forward
		{Op: ic.Jmp},
		{Op: ic.Halt},
	})
	prof := &emu.Profile{
		Expect: []int64{100, 100, 1, 1},
		Taken:  []int64{80, 30, 0, 0},
	}
	back, fwd := NinetyFifty(p, prof)
	if math.Abs(back-0.8) > 1e-9 || math.Abs(fwd-0.3) > 1e-9 {
		t.Errorf("back=%f fwd=%f", back, fwd)
	}
}

func TestFormatMix(t *testing.T) {
	var m Mix
	m.Counts[ic.ClassMemory] = 32
	m.Counts[ic.ClassALU] = 68
	m.Total = 100
	s := FormatMix(m)
	if s == "" {
		t.Error("empty format")
	}
}
