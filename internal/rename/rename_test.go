package rename

import (
	"testing"

	"symbol/internal/ic"
	"symbol/internal/term"
	"symbol/internal/word"
)

func prog(code []ic.Inst) *ic.Program {
	return &ic.Program{
		Code:    code,
		Atoms:   term.NewTable(),
		Procs:   map[string]int{},
		Names:   map[int]string{},
		Entries: map[int]bool{0: true},
	}
}

const t0 = ic.FirstTemp

func TestFoldsHeapBumps(t *testing.T) {
	// st [h+0],a0 ; add h,h,1 ; st [h+0],a1 ; add h,h,1 ; halt
	p := prog([]ic.Inst{
		{Op: ic.St, A: ic.RegH, Imm: 0, B: ic.ArgReg(0)},
		{Op: ic.Add, D: ic.RegH, A: ic.RegH, HasImm: true, Imm: 1},
		{Op: ic.St, A: ic.RegH, Imm: 0, B: ic.ArgReg(1)},
		{Op: ic.Add, D: ic.RegH, A: ic.RegH, HasImm: true, Imm: 1},
		{Op: ic.Halt},
	})
	np := Fold(p)
	// Expect: st [h+0] ; st [h+1] ; add h,h,2 ; halt
	if len(np.Code) != 4 {
		t.Fatalf("got %d instructions:\n%s", len(np.Code), np.Listing())
	}
	if np.Code[0].Imm != 0 || np.Code[1].Imm != 1 {
		t.Errorf("offsets not folded:\n%s", np.Listing())
	}
	if np.Code[2].Op != ic.Add || np.Code[2].Imm != 2 {
		t.Errorf("missing materialized add:\n%s", np.Listing())
	}
}

func TestFlushBeforeValueUse(t *testing.T) {
	// add tr,tr,1 ; mov a0, tr — the move must see the bumped value.
	p := prog([]ic.Inst{
		{Op: ic.Add, D: ic.RegTR, A: ic.RegTR, HasImm: true, Imm: 1},
		{Op: ic.Mov, D: ic.ArgReg(0), A: ic.RegTR},
		{Op: ic.Halt},
	})
	np := Fold(p)
	if np.Code[0].Op != ic.Add || np.Code[1].Op != ic.Mov {
		t.Fatalf("add must be materialized before the move:\n%s", np.Listing())
	}
}

func TestFlushAtBranch(t *testing.T) {
	p := prog([]ic.Inst{
		{Op: ic.Add, D: ic.RegH, A: ic.RegH, HasImm: true, Imm: 3},
		{Op: ic.Jmp, Target: 2},
		{Op: ic.Halt},
	})
	np := Fold(p)
	if np.Code[0].Op != ic.Add || np.Code[0].Imm != 3 {
		t.Fatalf("pending delta must materialize before control:\n%s", np.Listing())
	}
	if np.Code[1].Op != ic.Jmp || np.Code[1].Target != 2 {
		t.Fatalf("jump target not remapped:\n%s", np.Listing())
	}
}

func TestStoredValueMaterialized(t *testing.T) {
	// add tr,tr,1 ; st [tr+0], tr — the stored VALUE must be current.
	p := prog([]ic.Inst{
		{Op: ic.Add, D: ic.RegTR, A: ic.RegTR, HasImm: true, Imm: 1},
		{Op: ic.St, A: ic.RegTR, Imm: 0, B: ic.RegTR},
		{Op: ic.Halt},
	})
	np := Fold(p)
	if np.Code[0].Op != ic.Add {
		t.Fatalf("expected materialized add first:\n%s", np.Listing())
	}
	if np.Code[1].Op != ic.St || np.Code[1].Imm != 0 {
		t.Fatalf("store offset wrong after flush:\n%s", np.Listing())
	}
}

func TestWriteKillsDelta(t *testing.T) {
	// add h,h,5 ; movi h, X ; st [h+0],a0 — delta must not leak past the
	// overwrite.
	p := prog([]ic.Inst{
		{Op: ic.Add, D: ic.RegH, A: ic.RegH, HasImm: true, Imm: 5},
		{Op: ic.MovI, D: ic.RegH, Word: word.MakeRef(ic.HeapBase)},
		{Op: ic.St, A: ic.RegH, Imm: 0, B: ic.ArgReg(0)},
		{Op: ic.Halt},
	})
	np := Fold(p)
	for _, in := range np.Code {
		if in.Op == ic.St && in.Imm != 0 {
			t.Fatalf("delta leaked into store after overwrite:\n%s", np.Listing())
		}
		if in.Op == ic.Add {
			t.Fatalf("dead delta must not materialize after overwrite:\n%s", np.Listing())
		}
	}
}

func TestLeaderBoundaryFlush(t *testing.T) {
	// Branch target mid-code forces a flush before the leader.
	p := prog([]ic.Inst{
		{Op: ic.BrCmp, A: ic.ArgReg(0), Cond: ic.CondEq, HasImm: true, Imm: 0, Target: 3},
		{Op: ic.Add, D: ic.RegH, A: ic.RegH, HasImm: true, Imm: 1},
		{Op: ic.Jmp, Target: 3},
		{Op: ic.Halt},
	})
	np := Fold(p)
	// The add feeding the join at pc 3 must be materialized before the jmp.
	var sawAdd bool
	for _, in := range np.Code {
		if in.Op == ic.Add && in.D == ic.RegH {
			sawAdd = true
		}
	}
	if !sawAdd {
		t.Fatalf("H increment lost:\n%s", np.Listing())
	}
}

func TestCodeWordRemap(t *testing.T) {
	// movi of a Code immediate pointing past a folded add must be remapped.
	p := prog([]ic.Inst{
		{Op: ic.St, A: ic.RegH, Imm: 0, B: ic.ArgReg(0)},
		{Op: ic.Add, D: ic.RegH, A: ic.RegH, HasImm: true, Imm: 1},
		{Op: ic.MovI, D: ic.ArgReg(1), Word: word.Make(word.Code, 4)},
		{Op: ic.Jmp, Target: 4},
		{Op: ic.Halt},
	})
	p.Entries[4] = true
	np := Fold(p)
	var target int = -1
	for _, in := range np.Code {
		if in.Op == ic.MovI && in.Word.Tag() == word.Code {
			target = int(in.Word.Val())
		}
	}
	if target < 0 {
		t.Fatal("code immediate lost")
	}
	if np.Code[target].Op != ic.Halt {
		t.Fatalf("code immediate remapped to wrong pc %d:\n%s", target, np.Listing())
	}
}

func TestTempPointerFolding(t *testing.T) {
	// The PDL pointer pattern from $unify: st [p+0] ; st [p+1] ; add p,p,2.
	p := prog([]ic.Inst{
		{Op: ic.MovI, D: t0, Word: word.MakeRef(ic.PDLBase)},
		{Op: ic.St, A: t0, Imm: 0, B: ic.ArgReg(0)},
		{Op: ic.Add, D: t0, A: t0, HasImm: true, Imm: 2},
		{Op: ic.St, A: t0, Imm: 0, B: ic.ArgReg(1)},
		{Op: ic.Halt},
	})
	np := Fold(p)
	if np.Code[2].Op != ic.St || np.Code[2].Imm != 2 {
		t.Fatalf("temp pointer delta not folded:\n%s", np.Listing())
	}
}
