// Package rename implements the front end's renaming step (paper §3.1):
// "we only apply a variable renaming procedure in order to eliminate
// redundant data-dependencies". Temporaries are already minted fresh by the
// compiler, so the remaining false dependencies are serial pointer-bump
// chains on the machine registers (heap top, trail top): sequences like
//
//	st [h+0], x ; add h,h,1 ; st [h+0], y ; add h,h,1
//
// carry write-after-read and read-after-write chains through H even though
// the stores are independent. Within each basic block this pass folds the
// pointer increments into the addressing offsets,
//
//	st [h+0], x ; st [h+1], y ; add h,h,2
//
// leaving only the true dependencies. Control-flow boundaries materialize
// any pending increment, so machine state at block exits is unchanged.
package rename

import (
	"sort"

	"symbol/internal/ic"
	"symbol/internal/word"
)

// Fold rewrites prog in place (returning a new Program value) with
// pointer-increment folding applied per basic block. All code addresses
// (branch targets, stored code words, symbol tables) are remapped.
func Fold(prog *ic.Program) *ic.Program {
	leaders := findLeaders(prog)

	var out []ic.Inst
	remap := make([]int, len(prog.Code)+1)

	delta := map[ic.Reg]int64{}
	flushOne := func(r ic.Reg) {
		if d := delta[r]; d != 0 {
			out = append(out, ic.Inst{Op: ic.Add, D: r, A: r, HasImm: true, Imm: d})
			delta[r] = 0
		}
	}
	flushAll := func() {
		// Deterministic order.
		var regs []ic.Reg
		for r, d := range delta {
			if d != 0 {
				regs = append(regs, r)
			}
		}
		sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })
		for _, r := range regs {
			flushOne(r)
		}
	}

	for pc := 0; pc < len(prog.Code); pc++ {
		if leaders[pc] {
			flushAll()
		}
		remap[pc] = len(out)
		in := prog.Code[pc] // copy

		// Foldable pointer bump: add r, r, imm.
		if in.Op == ic.Add && in.HasImm && in.D == in.A {
			delta[in.A] += in.Imm
			continue
		}

		switch in.Op {
		case ic.Ld:
			in.Imm += delta[in.A]
		case ic.St:
			flushOne(in.B) // the stored value must be materialized first
			in.Imm += delta[in.A]
		case ic.Lea:
			in.Imm += delta[in.A]
		default:
			// Any other read of a register with a pending delta must see
			// the materialized value.
			for _, u := range in.Uses(nil) {
				flushOne(u)
			}
		}
		if in.Class() == ic.ClassControl || in.Class() == ic.ClassSys {
			// Materialize everything before control leaves the block or a
			// builtin observes machine state.
			flushAll()
		}
		// A write kills any pending delta on the destination.
		if d := in.Def(); d != ic.None {
			delta[d] = 0
		}
		out = append(out, in)
	}
	flushAll()
	remap[len(prog.Code)] = len(out)

	// Remap code addresses.
	for i := range out {
		switch out[i].Op {
		case ic.BrTag, ic.BrCmp, ic.Jmp, ic.Jsr:
			out[i].Target = remap[out[i].Target]
		case ic.MovI:
			if out[i].Word.Tag() == word.Code {
				out[i].Word = word.Make(word.Code, uint64(remap[out[i].Word.Val()]))
			}
		}
	}
	np := &ic.Program{
		Code:    out,
		Atoms:   prog.Atoms,
		Entry:   remap[prog.Entry],
		FailPC:  remap[prog.FailPC],
		ThrowPC: remap[prog.ThrowPC],
		Procs:   map[string]int{},
		Names:   map[int]string{},
		Entries: map[int]bool{},
	}
	for k, v := range prog.Procs {
		np.Procs[k] = remap[v]
	}
	for k, v := range prog.Names {
		np.Names[remap[k]] = v
	}
	for k := range prog.Entries {
		np.Entries[remap[k]] = true
	}
	return np
}

// findLeaders marks basic-block leader pcs: branch targets, instructions
// after control transfers, and indirect entry points.
func findLeaders(prog *ic.Program) []bool {
	leaders := make([]bool, len(prog.Code)+1)
	leaders[0] = true
	for pc := range prog.Code {
		in := &prog.Code[pc]
		switch in.Op {
		case ic.BrTag, ic.BrCmp, ic.Jmp, ic.Jsr:
			leaders[in.Target] = true
			leaders[pc+1] = true
		case ic.JmpR, ic.Halt:
			leaders[pc+1] = true
		case ic.MovI:
			if in.Word.Tag() == word.Code {
				leaders[in.Word.Val()] = true
			}
		}
	}
	for pc := range prog.Entries {
		leaders[pc] = true
	}
	return leaders
}
