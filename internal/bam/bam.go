// Package bam defines the Berkeley-Abstract-Machine-style instruction set
// produced by the SYMBOL front-end compiler (paper §2, §3.1). BAM code is a
// register-oriented abstract machine language much closer to a RISC
// architecture than WAM code: head unification is specialized into explicit
// dereference, tag-switch, compare and bind operations; determinism is
// exploited with first-argument indexing so that deterministic predicates
// never create choice points.
//
// BAM registers are the same unbounded virtual registers used by the
// Intermediate Code (internal/ic); the translator (internal/expand) lowers
// each BAM instruction into a short fixed sequence of ICIs.
package bam

import (
	"fmt"

	"symbol/internal/ic"
	"symbol/internal/word"
)

// ValKind discriminates BAM operand kinds.
type ValKind uint8

const (
	VNone ValKind = iota
	VReg          // virtual register
	VAtom         // atom immediate
	VInt          // integer immediate
	VFun          // functor immediate (name/arity)
)

// Val is a BAM operand: a register or a tagged immediate.
type Val struct {
	K     ValKind
	R     ic.Reg
	S     string // atom / functor name
	N     int64  // integer value / functor arity
	Arity int
}

// Reg wraps a register operand.
func Reg(r ic.Reg) Val { return Val{K: VReg, R: r} }

// AtomV wraps an atom immediate.
func AtomV(name string) Val { return Val{K: VAtom, S: name} }

// IntV wraps an integer immediate.
func IntV(n int64) Val { return Val{K: VInt, N: n} }

// FunV wraps a functor immediate.
func FunV(name string, arity int) Val { return Val{K: VFun, S: name, Arity: arity} }

func (v Val) String() string {
	switch v.K {
	case VReg:
		return fmt.Sprintf("r%d", v.R)
	case VAtom:
		return fmt.Sprintf("atm(%s)", v.S)
	case VInt:
		return fmt.Sprintf("int(%d)", v.N)
	case VFun:
		return fmt.Sprintf("fun(%s/%d)", v.S, v.Arity)
	}
	return "_"
}

// Op enumerates BAM instructions.
type Op uint8

const (
	Nop Op = iota

	// Code structure.
	Proc  // procedure entry "Name/Arity"
	Lbl   // local label L
	Jump  // jump L
	Call  // call Name/Arity (link in CP)
	Exec  // tail call Name/Arity (CP unchanged)
	Ret   // return via CP
	FailI // branch to the shared fail routine
	HaltI // stop with status N

	// Choice points (indexing chains).
	Try         // push choice point, retry address = L, saving N arg regs
	Retry       // update current choice point's retry address to L
	Trust       // pop current choice point
	RestoreArgs // reload A0..A(N-1) from the current choice point

	// Environments.
	Allocate   // push env frame with N permanent slots
	Deallocate // pop env frame, restoring CP
	GetY       // Dst = Y[N]
	PutY       // Y[N] = Src

	// Cut support.
	SaveB // Dst = B
	CutTo // B = Src

	// Data movement and heap construction.
	Move   // Dst = Src (register or immediate)
	LoadM  // Dst = mem[Base + Off]
	StoreM // mem[Base + Off] = Src
	StoreH // mem[H + Off] = Src  (structure building)
	AddH   // H += N
	LeaH   // Dst = tagged pointer (Tag) to H + Off

	// Tag insertion on a register value.
	MkTagI // Dst = Reg1 with tag replaced by Tag

	// Unification primitives.
	Deref     // Dst = dereference(Src)
	SwitchTag // dispatch on tag of Reg1: LVar/LInt/LAtm/LLst/LStr (0 = fail)
	BrTagI    // branch to L if tag(Reg1) Cond Tag
	BrEq      // branch to L if V1 Cond V2 (Eq/Ne full word, Lt.. on values)
	Bind      // mem[val(Reg1)] = Src; push Reg1 on trail
	UnifyCall // general unification of Reg1, Reg2 via the runtime routine

	// Arithmetic.
	Arith // Dst = V1 AOp V2 (integer values)

	// Builtin escapes.
	Sys // builtin SysID with argument registers

	// Fault raising: N is the fault.Kind to raise (compiled arithmetic
	// checks, e.g. a zero divisor under ArithChecks).
	RaiseFault
)

// AOp is a BAM arithmetic operation.
type AOp uint8

const (
	AAdd AOp = iota
	ASub
	AMul
	ADiv
	AMod
	AAnd
	AOr
	AXor
	AShl
	AShr
)

var aopNames = []string{"add", "sub", "mul", "div", "mod", "and", "or", "xor", "shl", "shr"}

func (a AOp) String() string { return aopNames[a] }

// Instr is one BAM instruction. Fields are interpreted per Op.
type Instr struct {
	Op                           Op
	Name                         string // Proc/Call/Exec target name
	Arity                        int
	N                            int64 // counts, offsets, env sizes, halt status
	L                            int   // primary label
	LVar, LInt, LAtm, LLst, LStr int   // SwitchTag targets (0 = fail)
	Reg1                         ic.Reg
	Reg2                         ic.Reg
	Dst                          ic.Reg
	Src                          Val
	V1                           Val
	V2                           Val
	Tag                          word.Tag
	Cond                         ic.Cond
	AOp                          AOp
	Sys                          ic.SysID
}

func lbl(l int) string {
	if l == 0 {
		return "fail"
	}
	return fmt.Sprintf("L%d", l)
}

// String renders the instruction in an assembly-like syntax.
func (i *Instr) String() string {
	switch i.Op {
	case Nop:
		return "nop"
	case Proc:
		return fmt.Sprintf("procedure %s/%d:", i.Name, i.Arity)
	case Lbl:
		return lbl(i.L) + ":"
	case Jump:
		return "jump " + lbl(i.L)
	case Call:
		return fmt.Sprintf("call %s/%d", i.Name, i.Arity)
	case Exec:
		return fmt.Sprintf("execute %s/%d", i.Name, i.Arity)
	case Ret:
		return "return"
	case FailI:
		return "fail"
	case HaltI:
		return fmt.Sprintf("halt %d", i.N)
	case Try:
		return fmt.Sprintf("try %s, %d", lbl(i.L), i.N)
	case Retry:
		return fmt.Sprintf("retry %s", lbl(i.L))
	case Trust:
		return "trust"
	case RestoreArgs:
		return fmt.Sprintf("restore_args %d", i.N)
	case Allocate:
		return fmt.Sprintf("allocate %d", i.N)
	case Deallocate:
		return "deallocate"
	case GetY:
		return fmt.Sprintf("gety r%d, y%d", i.Dst, i.N)
	case PutY:
		return fmt.Sprintf("puty y%d, %s", i.N, i.Src)
	case SaveB:
		return fmt.Sprintf("save_b r%d", i.Dst)
	case CutTo:
		return fmt.Sprintf("cut %s", i.Src)
	case Move:
		return fmt.Sprintf("move r%d, %s", i.Dst, i.Src)
	case LoadM:
		return fmt.Sprintf("load r%d, [r%d%+d]", i.Dst, i.Reg1, i.N)
	case StoreM:
		return fmt.Sprintf("store [r%d%+d], %s", i.Reg1, i.N, i.Src)
	case StoreH:
		return fmt.Sprintf("store [h%+d], %s", i.N, i.Src)
	case AddH:
		return fmt.Sprintf("adda h, %d", i.N)
	case LeaH:
		return fmt.Sprintf("lea r%d, %s(h%+d)", i.Dst, i.Tag, i.N)
	case MkTagI:
		return fmt.Sprintf("mktag r%d, r%d, %s", i.Dst, i.Reg1, i.Tag)
	case Deref:
		return fmt.Sprintf("deref r%d, %s", i.Dst, i.Src)
	case SwitchTag:
		return fmt.Sprintf("switch r%d, var:%s int:%s atm:%s lst:%s str:%s",
			i.Reg1, lbl(i.LVar), lbl(i.LInt), lbl(i.LAtm), lbl(i.LLst), lbl(i.LStr))
	case BrTagI:
		return fmt.Sprintf("brtag r%d %s %s, %s", i.Reg1, i.Cond, i.Tag, lbl(i.L))
	case BrEq:
		return fmt.Sprintf("breq %s %s %s, %s", i.V1, i.Cond, i.V2, lbl(i.L))
	case Bind:
		return fmt.Sprintf("bind [r%d], %s", i.Reg1, i.Src)
	case UnifyCall:
		return fmt.Sprintf("unify r%d, r%d", i.Reg1, i.Reg2)
	case Arith:
		return fmt.Sprintf("arith r%d, %s %s %s", i.Dst, i.V1, i.AOp, i.V2)
	case Sys:
		return fmt.Sprintf("sys %s r%d", i.Sys, i.Reg1)
	case RaiseFault:
		return fmt.Sprintf("raise %d", i.N)
	}
	return fmt.Sprintf("op(%d)", i.Op)
}

// Unit is a compiled compilation unit: the BAM code of a whole program.
type Unit struct {
	Code []Instr
	// NumLabels is one past the highest label id used; label 0 means fail.
	NumLabels int
	// NextTemp is the first virtual register not used by the compiler; the
	// translator continues minting temporaries from here.
	NextTemp ic.Reg
}

// Listing renders the unit.
func (u *Unit) Listing() string {
	s := ""
	for i := range u.Code {
		in := &u.Code[i]
		switch in.Op {
		case Proc, Lbl:
			s += in.String() + "\n"
		default:
			s += "\t" + in.String() + "\n"
		}
	}
	return s
}
