package parse

import (
	"testing"

	"symbol/internal/term"
)

func one(t *testing.T, src string) term.Term {
	t.Helper()
	ts, err := All(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	if len(ts) != 1 {
		t.Fatalf("parse %q: got %d clauses, want 1", src, len(ts))
	}
	return ts[0]
}

func TestAtomForms(t *testing.T) {
	cases := map[string]string{
		"foo.":         "foo",
		"'hello bob'.": "'hello bob'",
		"[].":          "[]",
		"!.":           "!",
		"'\\n'.":       "'\n'",
	}
	for src, want := range cases {
		got := one(t, src).String()
		if got != want {
			t.Errorf("%q parsed to %q, want %q", src, got, want)
		}
	}
}

func TestIntegers(t *testing.T) {
	if got := one(t, "42.").(term.Int); got != 42 {
		t.Fatalf("got %d", got)
	}
	if got := one(t, "0'a.").(term.Int); got != 97 {
		t.Fatalf("char code: got %d", got)
	}
	c := one(t, "f(-3).").(*term.Compound)
	if got := c.Args[0].(term.Int); got != -3 {
		t.Fatalf("negative: got %d", got)
	}
}

func TestVariableScope(t *testing.T) {
	c := one(t, "f(X, Y, X).").(*term.Compound)
	if c.Args[0] != c.Args[2] {
		t.Error("same-name variables must be shared within a clause")
	}
	if c.Args[0] == c.Args[1] {
		t.Error("distinct variables must not be shared")
	}
	ts, err := All("f(X). g(X).")
	if err != nil {
		t.Fatal(err)
	}
	a := ts[0].(*term.Compound).Args[0]
	b := ts[1].(*term.Compound).Args[0]
	if a == b {
		t.Error("variables must not be shared across clauses")
	}
}

func TestAnonymousVarsDistinct(t *testing.T) {
	c := one(t, "f(_, _).").(*term.Compound)
	if c.Args[0] == c.Args[1] {
		t.Error("each _ must be a fresh variable")
	}
}

func TestLists(t *testing.T) {
	cases := map[string]string{
		"[1,2,3].":   "[1,2,3]",
		"[a|T].":     "[a|T]",
		"[a,b|T].":   "[a,b|T]",
		"[[a],[b]].": "[[a],[b]]",
	}
	for src, want := range cases {
		if got := one(t, src).String(); got != want {
			t.Errorf("%q parsed to %q, want %q", src, got, want)
		}
	}
}

func TestOperatorPrecedence(t *testing.T) {
	cases := map[string]string{
		"a :- b, c.":      ":-(a,','(b,c))",
		"X is 1+2*3.":     "is(X,+(1,*(2,3)))",
		"X is (1+2)*3.":   "is(X,*(+(1,2),3))",
		"1+2+3.":          "+(+(1,2),3)",
		"a ; b ; c.":      ";(a,;(b,c))",
		"a -> b ; c.":     ";(->(a,b),c)",
		"\\+ a.":          "\\+(a)",
		"- (1).":          "-(1)",
		"X = f(Y).":       "=(X,f(Y))",
		"2^3^4.":          "^(2,^(3,4))",
		"a, b -> c ; d.":  ";(->(','(a,b),c),d)",
		"X is -Y.":        "is(X,-(Y))",
		"X is 7 mod 3.":   "is(X,mod(7,3))",
		"f(a, (b, c)).":   "f(a,','(b,c))",
		"[a :- b].":       "[:-(a,b)]", // prio 1200 not allowed as arg? we allow via parens
		"p(X) :- q(X-1).": ":-(p(X),q(-(X,1)))",
	}
	delete(cases, "[a :- b].") // 1200 > 999: must fail; checked below
	for src, want := range cases {
		got := canonical(one(t, src))
		if got != want {
			t.Errorf("%q parsed to %q, want %q", src, got, want)
		}
	}
	if _, err := All("[a :- b]."); err == nil {
		t.Error("priority-1200 operator inside a list argument should be rejected")
	}
}

func TestFunctorVsOperator(t *testing.T) {
	// '-' used as both prefix op and infix op.
	got := canonical(one(t, "X is A - -B."))
	if got != "is(X,-(A,-(B)))" {
		t.Errorf("got %q", got)
	}
	// atom followed by space then '(' is NOT functional notation.
	got = canonical(one(t, "a - (b)."))
	if got != "-(a,b)" {
		t.Errorf("got %q", got)
	}
}

func TestMultipleClausesAndComments(t *testing.T) {
	src := `
% line comment
app([], L, L).
app([H|T], L, [H|R]) :- /* block
comment */ app(T, L, R).
`
	ts, err := All(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("got %d clauses, want 2", len(ts))
	}
}

func TestErrors(t *testing.T) {
	bad := []string{
		"f(a",      // unterminated
		"f(a)",     // missing period
		"'abc.",    // unterminated quote
		"f(a,).",   // missing arg
		") .",      // stray paren
		"/* oops.", // unterminated comment
	}
	for _, src := range bad {
		if _, err := All(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

// canonical prints with all operators in functional form for precise tests.
func canonical(t term.Term) string {
	switch x := t.(type) {
	case *term.Compound:
		if x.Functor == "." && len(x.Args) == 2 {
			return "[" + canonList(x) + "]"
		}
		f := x.Functor
		if f == "," {
			f = "','"
		}
		s := f + "("
		for i, a := range x.Args {
			if i > 0 {
				s += ","
			}
			s += canonical(a)
		}
		return s + ")"
	default:
		return t.String()
	}
}

func canonList(c *term.Compound) string {
	s := canonical(c.Args[0])
	t := c.Args[1]
	for {
		if a, ok := t.(term.Atom); ok && a == term.NilAtom {
			return s
		}
		x, ok := t.(*term.Compound)
		if !ok || x.Functor != "." || len(x.Args) != 2 {
			return s + "|" + canonical(t)
		}
		s += "," + canonical(x.Args[0])
		t = x.Args[1]
	}
}
