package parse

import (
	"fmt"

	"symbol/internal/term"
)

// opType is a standard Prolog operator type.
type opType uint8

const (
	xfx opType = iota
	xfy
	yfx
	fy
	fx
	xf
	yf
)

type opDef struct {
	prio int
	typ  opType
}

// opTable holds prefix and infix/postfix definitions separately, as ISO
// allows an atom to be both (e.g. '-').
type opTable struct {
	prefix map[string]opDef
	infix  map[string]opDef
}

func defaultOps() *opTable {
	t := &opTable{prefix: map[string]opDef{}, infix: map[string]opDef{}}
	in := func(p int, ty opType, names ...string) {
		for _, n := range names {
			t.infix[n] = opDef{p, ty}
		}
	}
	pre := func(p int, ty opType, names ...string) {
		for _, n := range names {
			t.prefix[n] = opDef{p, ty}
		}
	}
	in(1200, xfx, ":-", "-->")
	pre(1200, fx, ":-", "?-")
	in(1100, xfy, ";")
	in(1050, xfy, "->")
	in(1000, xfy, ",")
	pre(900, fy, "\\+")
	in(700, xfx, "=", "\\=", "==", "\\==", "is", "=:=", "=\\=",
		"<", ">", "=<", ">=", "@<", "@>", "@=<", "@>=", "=..")
	in(500, yfx, "+", "-", "/\\", "\\/", "xor")
	in(400, yfx, "*", "/", "//", "mod", "rem", "<<", ">>")
	in(200, xfx, "**")
	in(200, xfy, "^")
	pre(200, fy, "-", "+", "\\")
	return t
}

// Parser reads a sequence of Prolog clauses from source text.
type Parser struct {
	lex  *lexer
	ops  *opTable
	tok  token
	vars map[string]*term.Var // variable scope of the current clause
}

// New returns a parser over src with the standard operator table.
func New(src string) (*Parser, error) {
	p := &Parser{lex: newLexer(src), ops: defaultOps()}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *Parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("line %d: %s", p.tok.line, fmt.Sprintf(format, args...))
}

// ReadClause reads the next clause terminated by '.'; it returns nil, nil at
// end of input. Variables are scoped per clause.
func (p *Parser) ReadClause() (term.Term, error) {
	if p.tok.kind == tokEOF {
		return nil, nil
	}
	p.vars = map[string]*term.Var{}
	t, err := p.parse(1200)
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEnd {
		return nil, p.errf("expected '.' after clause, found %q", p.tok.String())
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return t, nil
}

// All reads every clause in src.
func All(src string) ([]term.Term, error) {
	p, err := New(src)
	if err != nil {
		return nil, err
	}
	var out []term.Term
	for {
		t, err := p.ReadClause()
		if err != nil {
			return nil, err
		}
		if t == nil {
			return out, nil
		}
		out = append(out, t)
	}
}

// parse parses a term with maximum priority maxPrec, then folds infix and
// postfix operators (operator-precedence climbing).
func (p *Parser) parse(maxPrec int) (term.Term, error) {
	left, leftPrec, err := p.parsePrimary(maxPrec)
	if err != nil {
		return nil, err
	}
	return p.parseInfix(left, leftPrec, maxPrec)
}

func (p *Parser) parseInfix(left term.Term, leftPrec, maxPrec int) (term.Term, error) {
	for {
		var name string
		switch {
		case p.tok.kind == tokAtom:
			name = p.tok.text
		case p.tok.kind == tokPunct && (p.tok.text == "," || p.tok.text == "|"):
			name = p.tok.text
			if name == "|" {
				name = ";" // X | Y as disjunction inside arguments is rare; treat as ';'
			}
		default:
			return left, nil
		}
		def, ok := p.ops.infix[name]
		if !ok || def.prio > maxPrec {
			return left, nil
		}
		var maxLeft, maxRight int
		switch def.typ {
		case xfx:
			maxLeft, maxRight = def.prio-1, def.prio-1
		case xfy:
			maxLeft, maxRight = def.prio-1, def.prio
		case yfx:
			maxLeft, maxRight = def.prio, def.prio-1
		default:
			return left, nil // postfix unsupported in benchmarks
		}
		if leftPrec > maxLeft {
			return left, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parse(maxRight)
		if err != nil {
			return nil, err
		}
		left = &term.Compound{Functor: name, Args: []term.Term{left, right}}
		leftPrec = def.prio
	}
}

// parsePrimary parses one operand: an atom, number, variable, list, braces,
// parenthesized term, functional notation compound, or prefix-operator
// application. It returns the term and its priority (0 for plain terms).
func (p *Parser) parsePrimary(maxPrec int) (term.Term, int, error) {
	tok := p.tok
	switch tok.kind {
	case tokEOF:
		return nil, 0, p.errf("unexpected end of input")
	case tokInt:
		if err := p.advance(); err != nil {
			return nil, 0, err
		}
		return term.Int(tok.ival), 0, nil
	case tokVar:
		if err := p.advance(); err != nil {
			return nil, 0, err
		}
		if tok.text == "_" {
			return &term.Var{Name: "_"}, 0, nil
		}
		v, ok := p.vars[tok.text]
		if !ok {
			v = &term.Var{Name: tok.text}
			p.vars[tok.text] = v
		}
		return v, 0, nil
	case tokPunct, tokOpenCT:
		switch tok.text {
		case "(":
			if err := p.advance(); err != nil {
				return nil, 0, err
			}
			t, err := p.parse(1200)
			if err != nil {
				return nil, 0, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, 0, err
			}
			return t, 0, nil
		case "[":
			t, err := p.parseList()
			return t, 0, err
		case "{":
			if err := p.advance(); err != nil {
				return nil, 0, err
			}
			if p.tok.kind == tokPunct && p.tok.text == "}" {
				if err := p.advance(); err != nil {
					return nil, 0, err
				}
				return term.Atom("{}"), 0, nil
			}
			t, err := p.parse(1200)
			if err != nil {
				return nil, 0, err
			}
			if err := p.expectPunct("}"); err != nil {
				return nil, 0, err
			}
			return &term.Compound{Functor: "{}", Args: []term.Term{t}}, 0, nil
		}
		return nil, 0, p.errf("unexpected %q", tok.text)
	case tokAtom:
		if err := p.advance(); err != nil {
			return nil, 0, err
		}
		// Functional notation: atom immediately followed by '('.
		if p.tok.kind == tokOpenCT {
			args, err := p.parseArgs()
			if err != nil {
				return nil, 0, err
			}
			return &term.Compound{Functor: tok.text, Args: args}, 0, nil
		}
		// Negative number literal.
		if tok.text == "-" && p.tok.kind == tokInt {
			v := p.tok.ival
			if err := p.advance(); err != nil {
				return nil, 0, err
			}
			return term.Int(-v), 0, nil
		}
		// Prefix operator application.
		if def, ok := p.ops.prefix[tok.text]; ok && def.prio <= maxPrec && p.startsTerm() {
			sub := def.prio
			if def.typ == fx {
				sub = def.prio - 1
			}
			arg, err := p.parse(sub)
			if err != nil {
				return nil, 0, err
			}
			return &term.Compound{Functor: tok.text, Args: []term.Term{arg}}, def.prio, nil
		}
		return term.Atom(tok.text), 0, nil
	case tokEnd:
		return nil, 0, p.errf("unexpected '.'")
	}
	return nil, 0, p.errf("unexpected token %q", tok.String())
}

// startsTerm reports whether the current token can begin a term, used to
// decide whether a prefix operator is applied or stands alone as an atom.
func (p *Parser) startsTerm() bool {
	switch p.tok.kind {
	case tokInt, tokVar, tokOpenCT:
		return true
	case tokAtom:
		return true
	case tokPunct:
		return p.tok.text == "(" || p.tok.text == "[" || p.tok.text == "{"
	}
	return false
}

func (p *Parser) expectPunct(s string) error {
	if p.tok.kind != tokPunct || p.tok.text != s {
		return p.errf("expected %q, found %q", s, p.tok.String())
	}
	return p.advance()
}

func (p *Parser) parseArgs() ([]term.Term, error) {
	if err := p.advance(); err != nil { // consume '('
		return nil, err
	}
	var args []term.Term
	for {
		a, err := p.parse(999)
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if p.tok.kind == tokPunct && p.tok.text == "," {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return args, nil
	}
}

func (p *Parser) parseList() (term.Term, error) {
	if err := p.advance(); err != nil { // consume '['
		return nil, err
	}
	if p.tok.kind == tokPunct && p.tok.text == "]" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		return term.NilAtom, nil
	}
	var items []term.Term
	var tail term.Term = term.NilAtom
	for {
		a, err := p.parse(999)
		if err != nil {
			return nil, err
		}
		items = append(items, a)
		if p.tok.kind == tokPunct && p.tok.text == "," {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		if p.tok.kind == tokPunct && p.tok.text == "|" {
			if err := p.advance(); err != nil {
				return nil, err
			}
			tail, err = p.parse(999)
			if err != nil {
				return nil, err
			}
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		break
	}
	t := tail
	for i := len(items) - 1; i >= 0; i-- {
		t = term.Cons(items[i], t)
	}
	return t, nil
}
