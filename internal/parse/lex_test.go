package parse

import "testing"

func toks(t *testing.T, src string) []token {
	t.Helper()
	l := newLexer(src)
	var out []token
	for {
		tk, err := l.next()
		if err != nil {
			t.Fatalf("lex %q: %v", src, err)
		}
		if tk.kind == tokEOF {
			return out
		}
		out = append(out, tk)
	}
}

func TestLexCharCodes(t *testing.T) {
	ts := toks(t, "0'a 0'  0'0")
	if len(ts) != 3 {
		t.Fatalf("got %d tokens", len(ts))
	}
	want := []int64{'a', ' ', '0'}
	for i, w := range want {
		if ts[i].kind != tokInt || ts[i].ival != w {
			t.Errorf("token %d: %+v, want int %d", i, ts[i], w)
		}
	}
}

func TestLexSymbolicAtoms(t *testing.T) {
	ts := toks(t, "=.. \\+ @< -->")
	names := []string{"=..", "\\+", "@<", "-->"}
	if len(ts) != len(names) {
		t.Fatalf("got %d tokens %v", len(ts), ts)
	}
	for i, n := range names {
		if ts[i].kind != tokAtom || ts[i].text != n {
			t.Errorf("token %d: %+v, want atom %q", i, ts[i], n)
		}
	}
}

func TestLexEndVsDotInAtom(t *testing.T) {
	// A solo '.' ends a clause; '.' glued into symbolic atoms does not.
	ts := toks(t, "a. b")
	if len(ts) != 3 || ts[1].kind != tokEnd {
		t.Fatalf("got %v", ts)
	}
}

func TestLexOpenCT(t *testing.T) {
	ts := toks(t, "f(a) f (a)")
	// f ( a ) f ( a ) — first '(' adjacent (OpenCT), second plain punct.
	if ts[1].kind != tokOpenCT {
		t.Errorf("adjacent paren must be OpenCT: %+v", ts[1])
	}
	if ts[5].kind != tokPunct {
		t.Errorf("spaced paren must be plain punct: %+v", ts[5])
	}
}

func TestLexQuotedEscapes(t *testing.T) {
	ts := toks(t, `'a\nb' 'it''s' '\\'`)
	want := []string{"a\nb", "it's", "\\"}
	for i, w := range want {
		if ts[i].kind != tokAtom || ts[i].text != w {
			t.Errorf("token %d: %q, want %q", i, ts[i].text, w)
		}
	}
}

func TestLexLineNumbers(t *testing.T) {
	l := newLexer("a\n\nb % c\nd /* x\ny */ e")
	wantLines := map[string]int{"a": 1, "b": 3, "d": 4, "e": 5}
	for {
		tk, err := l.next()
		if err != nil {
			t.Fatal(err)
		}
		if tk.kind == tokEOF {
			break
		}
		if want, ok := wantLines[tk.text]; ok && tk.line != want {
			t.Errorf("%q on line %d, want %d", tk.text, tk.line, want)
		}
	}
}

func TestLexErrors(t *testing.T) {
	bad := []string{
		"'unterminated",
		"'bad\\qescape'",
		"\"strings unsupported\"",
		"/* unterminated",
		"'newline\nin quote'",
	}
	for _, src := range bad {
		l := newLexer(src)
		var err error
		for err == nil {
			var tk token
			tk, err = l.next()
			if tk.kind == tokEOF {
				break
			}
		}
		if err == nil {
			t.Errorf("expected lex error for %q", src)
		}
	}
}

func TestLexPunctuationSet(t *testing.T) {
	ts := toks(t, "[ ] { } , | ! ;")
	kinds := []tokKind{tokPunct, tokPunct, tokPunct, tokPunct, tokPunct, tokPunct, tokAtom, tokAtom}
	for i, k := range kinds {
		if ts[i].kind != k {
			t.Errorf("token %d %q: kind %v, want %v", i, ts[i].text, ts[i].kind, k)
		}
	}
}
