// Package parse implements a Prolog reader: a tokenizer and an
// operator-precedence parser producing internal/term values. It supports the
// subset of ISO Prolog syntax needed by the Aquarius-style benchmark suite:
// atoms (alphanumeric, quoted and symbolic), integers (including 0'c
// character codes), variables, lists with '|' tails, curly braces, operators
// with the standard table, comments and clause terminators.
package parse

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokAtom
	tokVar
	tokInt
	tokPunct // ( ) [ ] { } , |
	tokEnd   // clause-terminating '.'
	tokOpenCT
)

type token struct {
	kind tokKind
	text string
	ival int64
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "<eof>"
	case tokInt:
		return fmt.Sprintf("%d", t.ival)
	case tokEnd:
		return "."
	default:
		return t.text
	}
}

type lexer struct {
	src  string
	pos  int
	line int
	last tokKind // kind of previously emitted token, for '(' adjacency
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

const symChars = "+-*/\\^<>=~:.?@#&$"

func isSymCh(c byte) bool { return strings.IndexByte(symChars, c) >= 0 }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || isDigit(c) || c == '_'
}

func (l *lexer) errf(format string, args ...interface{}) error {
	return fmt.Errorf("line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() byte {
	if l.pos < len(l.src) {
		return l.src[l.pos]
	}
	return 0
}

func (l *lexer) skipSpace() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '%':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return l.errf("unterminated block comment")
			}
			l.line += strings.Count(l.src[l.pos:l.pos+2+end+2], "\n")
			l.pos += 2 + end + 2
		default:
			return nil
		}
	}
	return nil
}

// next returns the next token. A '(' immediately following an atom or
// variable (no intervening space) is emitted as tokOpenCT so the parser can
// distinguish f(X) from f (X).
func (l *lexer) next() (token, error) {
	prevEnd := l.pos
	if err := l.skipSpace(); err != nil {
		return token{}, err
	}
	if l.pos >= len(l.src) {
		l.last = tokEOF
		return token{kind: tokEOF, line: l.line}, nil
	}
	c := l.src[l.pos]
	start := l.pos
	mk := func(k tokKind, s string) token {
		l.last = k
		return token{kind: k, text: s, line: l.line}
	}
	switch {
	case c == '(':
		l.pos++
		adjacent := prevEnd == start && (l.last == tokAtom || l.last == tokVar)
		if adjacent {
			return mk(tokOpenCT, "("), nil
		}
		return mk(tokPunct, "("), nil
	case c == ')' || c == '[' || c == ']' || c == '{' || c == '}' || c == ',' || c == '|':
		l.pos++
		return mk(tokPunct, string(c)), nil
	case c == '!' || c == ';':
		l.pos++
		return mk(tokAtom, string(c)), nil
	case c == '\'':
		s, err := l.quoted()
		if err != nil {
			return token{}, err
		}
		return mk(tokAtom, s), nil
	case c == '"':
		return token{}, l.errf("double-quoted strings are not supported; use lists of codes")
	case isDigit(c):
		return l.number()
	case c >= 'a' && c <= 'z':
		for l.pos < len(l.src) && isAlnum(l.src[l.pos]) {
			l.pos++
		}
		return mk(tokAtom, l.src[start:l.pos]), nil
	case c == '_' || c >= 'A' && c <= 'Z':
		for l.pos < len(l.src) && isAlnum(l.src[l.pos]) {
			l.pos++
		}
		return mk(tokVar, l.src[start:l.pos]), nil
	case isSymCh(c):
		for l.pos < len(l.src) && isSymCh(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		// A solo '.' followed by whitespace/EOF terminates a clause.
		if text == "." {
			return mk(tokEnd, "."), nil
		}
		return mk(tokAtom, text), nil
	default:
		if unicode.IsSpace(rune(c)) {
			l.pos++
			return l.next()
		}
		return token{}, l.errf("unexpected character %q", c)
	}
}

func (l *lexer) quoted() (string, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '\'':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return b.String(), nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return "", l.errf("unterminated escape in quoted atom")
			}
			e := l.src[l.pos+1]
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\', '\'':
				b.WriteByte(e)
			default:
				return "", l.errf("unsupported escape \\%c", e)
			}
			l.pos += 2
		case '\n':
			return "", l.errf("newline in quoted atom")
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return "", l.errf("unterminated quoted atom")
}

func (l *lexer) number() (token, error) {
	start := l.pos
	// 0'c character code.
	if l.src[l.pos] == '0' && l.pos+2 < len(l.src) && l.src[l.pos+1] == '\'' {
		c := l.src[l.pos+2]
		l.pos += 3
		l.last = tokInt
		return token{kind: tokInt, ival: int64(c), line: l.line}, nil
	}
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	var v int64
	for _, ch := range l.src[start:l.pos] {
		v = v*10 + int64(ch-'0')
	}
	l.last = tokInt
	return token{kind: tokInt, ival: v, line: l.line}, nil
}
