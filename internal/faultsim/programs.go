package faultsim

// NamedProgram is one fault-prone workload for the injection harness. Each
// stresses a different memory area or machine resource, so that shrinking
// that area (or the budget) produces a predictable fault kind, while the
// default configuration runs it to completion.
type NamedProgram struct {
	Name string
	Src  string
	// Stresses names the area the workload grows fastest (documentation;
	// the harness asserts agreement between executors, not which area
	// overflows first).
	Stresses string
}

// Programs returns the harness corpus. Every program defines main/0 and
// succeeds under default resources.
func Programs() []NamedProgram {
	return []NamedProgram{
		{
			Name:     "deep-recursion",
			Stresses: "env",
			Src: `
sum(0, 0).
sum(N, S) :- N > 0, M is N - 1, sum(M, T), S is T + 1.
main :- sum(3000, S), S > 0.
`,
		},
		{
			Name:     "list-build",
			Stresses: "heap",
			Src: `
build(0, []).
build(N, [N|T]) :- N > 0, M is N - 1, build(M, T).
len([], 0).
len([_|T], N) :- len(T, M), N is M + 1.
main :- build(3000, L), len(L, N), N > 0.
`,
		},
		{
			Name:     "backtrack-trail",
			Stresses: "trail",
			Src: `
bind([]).
bind([X|T]) :- X = a, bind(T).
mk(0, []).
mk(N, [_|T]) :- N > 0, M is N - 1, mk(M, T).
flip(_).
flip(_) :- fail.
main :- mk(1500, L), flip(x), bind(L), ok(L).
ok([a|_]).
`,
		},
		{
			Name:     "choice-points",
			Stresses: "cp",
			Src: `
alt(_).
alt(_) :- fail.
spine(0).
spine(N) :- N > 0, alt(N), M is N - 1, spine(M).
main :- spine(2500).
`,
		},
		{
			Name:     "unify-pdl",
			Stresses: "pdl",
			Src: `
mk(0, leaf).
mk(N, t(L, N)) :- N > 0, M is N - 1, mk(M, L).
main :- mk(200, A), mk(200, B), A = B.
`,
		},
		{
			Name:     "nested-catch",
			Stresses: "heap",
			Src: `
build(0, []).
build(N, [N|T]) :- N > 0, M is N - 1, build(M, T).
main :- catch(build(2000, _L), resource_error(_), true).
`,
		},
	}
}
