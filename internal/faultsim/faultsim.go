// Package faultsim is the differential fault-injection harness: it runs one
// compiled program through both execution paths — the sequential IntCode
// emulator and the trace-scheduled VLIW simulator — under deliberately
// shrunken memory areas and tightened budgets, and classifies how each run
// ends. The two paths implement the same architectural fault model, so for
// any injected resource configuration they must agree on the *kind* of
// fault (with the sequential step budget and the VLIW cycle budget treated
// as the same logical budget fault). Divergence means one executor's bounds
// checking, unwinding, or catch/3 support is wrong.
//
// The package deliberately does not import the public symbol package (the
// root package's tests import this one); it drives the internal pipeline
// directly.
package faultsim

import (
	"errors"
	"fmt"
	"time"

	"symbol/internal/compile"
	"symbol/internal/core"
	"symbol/internal/emu"
	"symbol/internal/expand"
	"symbol/internal/fault"
	"symbol/internal/ic"
	"symbol/internal/machine"
	"symbol/internal/parse"
	"symbol/internal/rename"
	"symbol/internal/vliw"
)

// Unit is a program compiled once and runnable on both executors.
type Unit struct {
	IC *ic.Program
	vp *vliw.Program // lazily scheduled (needs one fault-free profiling run)
}

// Compile builds src (which must define main/0) down to Intermediate Code.
func Compile(src string) (*Unit, error) {
	clauses, err := parse.All(src)
	if err != nil {
		return nil, err
	}
	c := compile.New(compile.DefaultOptions())
	if err := c.AddProgram(clauses); err != nil {
		return nil, err
	}
	unit, err := c.Compile()
	if err != nil {
		return nil, err
	}
	prog, err := expand.Translate(unit, c.Atoms())
	if err != nil {
		return nil, err
	}
	return &Unit{IC: rename.Fold(prog)}, nil
}

// Opts bound one injected run. Zero values mean the executor defaults
// (full-size areas, default budgets, no deadline).
type Opts struct {
	MaxSteps  int64 // sequential budget
	MaxCycles int64 // VLIW budget
	Layout    ic.Layout
	// Deadline injects a wall-clock bound into both executors. They must
	// poll it at the same cadence (fault.CheckInterval) and classify a miss
	// as the same fault.Deadline kind; a differential run catches drift.
	Deadline time.Time
	// NoFuse makes Seq run the plain predecoded stream with superinstruction
	// fusion disabled, so fused and unfused sequential runs can themselves be
	// compared differentially under every injected configuration.
	NoFuse bool
	// Legacy makes Seq run the original reference interpreter instead of the
	// predecoded stream, pinning a three-way miscompare to predecode itself.
	Legacy bool
	// Threaded makes Seq run the closure-threaded core, so the fourth
	// dispatch mode is injectable under the same fault matrix as the rest.
	Threaded bool
}

// Outcome classifies how a run ended.
type Outcome struct {
	Kind      fault.Kind // None when the run terminated normally
	Succeeded bool       // Status == 0 (only meaningful when Kind == None)
	Output    string
	Err       error // the raw error, nil when Kind == None
}

// Classify maps an executor error to its fault kind. A nil error is None;
// an error outside the taxonomy (a harness bug) panics, because the whole
// point of the fault model is that no such error exists.
func Classify(err error) fault.Kind {
	if err == nil {
		return fault.None
	}
	var f *fault.Fault
	if errors.As(err, &f) {
		return f.Kind
	}
	panic(fmt.Sprintf("faultsim: untyped executor error: %v", err))
}

// Seq runs the program on the sequential emulator under opts.
func (u *Unit) Seq(opts Opts) Outcome {
	res, err := emu.Run(u.IC, emu.Options{
		MaxSteps: opts.MaxSteps,
		Layout:   opts.Layout,
		Deadline: opts.Deadline,
		NoFuse:   opts.NoFuse,
		Legacy:   opts.Legacy,
		Threaded: opts.Threaded,
	})
	if err != nil {
		return Outcome{Kind: Classify(err), Err: err}
	}
	return Outcome{Succeeded: res.Status == 0, Output: res.Output}
}

// schedule profiles the program under the default (fault-free) layout and
// compacts it for a 3-unit VLIW, caching the result.
func (u *Unit) schedule() (*vliw.Program, error) {
	if u.vp != nil {
		return u.vp, nil
	}
	res, err := emu.Run(u.IC, emu.Options{Profile: true})
	if err != nil {
		return nil, fmt.Errorf("faultsim: profiling run failed: %w", err)
	}
	vp, _, err := core.Compact(u.IC, res.Profile, machine.Default(3), core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	u.vp = vp
	return vp, nil
}

// VLIW runs the scheduled program on the cycle-level simulator under opts.
// The error return reports scheduling problems only; run-time faults are
// classified in the Outcome.
func (u *Unit) VLIW(opts Opts) (Outcome, error) {
	vp, err := u.schedule()
	if err != nil {
		return Outcome{}, err
	}
	res, err := vliw.Sim(vp, vliw.SimOptions{
		MaxCycles: opts.MaxCycles,
		Layout:    opts.Layout,
		Deadline:  opts.Deadline,
	})
	if err != nil {
		return Outcome{Kind: Classify(err), Err: err}, nil
	}
	return Outcome{Succeeded: res.Status == 0, Output: res.Output}, nil
}

// budgetFault reports whether k is a resource-budget fault. The two
// executors meter different quantities (ICI steps vs machine cycles), so a
// differential run treats any pair of budget faults as agreeing.
func budgetFault(k fault.Kind) bool {
	switch k {
	case fault.StepLimit, fault.CycleLimit, fault.Deadline:
		return true
	}
	return false
}

// Agree reports whether the two classified outcomes are the same logical
// result: both normal with identical success and output, or faults of the
// same kind (any two budget faults match).
func Agree(a, b Outcome) bool {
	if a.Kind == fault.None && b.Kind == fault.None {
		return a.Succeeded == b.Succeeded && a.Output == b.Output
	}
	if budgetFault(a.Kind) && budgetFault(b.Kind) {
		return true
	}
	return a.Kind == b.Kind
}

// Differential runs both executors under the same injected resources and
// reports the pair of outcomes. The error covers scheduling failures only.
func (u *Unit) Differential(opts Opts) (seq, par Outcome, err error) {
	seq = u.Seq(opts)
	par, err = u.VLIW(opts)
	return seq, par, err
}
