package faultsim

import (
	"testing"
	"time"

	"symbol/internal/fault"
	"symbol/internal/ic"
)

// TestCorpusRunsClean: every corpus program must compile and succeed under
// default resources on the sequential path — a program that faults by
// itself is useless as an injection baseline.
func TestCorpusRunsClean(t *testing.T) {
	for _, p := range Programs() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			u, err := Compile(p.Src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			out := u.Seq(Opts{})
			if out.Kind != fault.None || !out.Succeeded {
				t.Fatalf("default run not clean: kind=%v ok=%v err=%v",
					out.Kind, out.Succeeded, out.Err)
			}
		})
	}
}

// TestStressedAreaFaults: shrinking the area a program is documented to
// stress produces that area's overflow kind sequentially.
func TestStressedAreaFaults(t *testing.T) {
	want := map[string]fault.Kind{
		"heap":  fault.HeapOverflow,
		"env":   fault.EnvOverflow,
		"cp":    fault.CPOverflow,
		"trail": fault.TrailOverflow,
		"pdl":   fault.PDLOverflow,
	}
	shrink := func(area string) ic.Layout {
		var l ic.Layout
		switch area {
		case "heap":
			l.HeapWords = 2048
		case "env":
			l.EnvWords = 1024
		case "cp":
			l.CPWords = 1024
		case "trail":
			l.TrailWords = 512
		case "pdl":
			l.PDLWords = 64
		}
		return l
	}
	for _, p := range Programs() {
		if p.Name == "nested-catch" {
			continue // recovers instead of faulting, by design
		}
		p := p
		t.Run(p.Name, func(t *testing.T) {
			u, err := Compile(p.Src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			out := u.Seq(Opts{Layout: shrink(p.Stresses)})
			if out.Kind != want[p.Stresses] {
				t.Fatalf("stressing %s: got kind=%v (err=%v), want %v",
					p.Stresses, out.Kind, out.Err, want[p.Stresses])
			}
		})
	}
}

// TestDeadlineParity injects an already-expired wall-clock deadline into
// both executors and requires them to classify it as the same fault kind
// (fault.Deadline) — the differential guard for the shared polling cadence.
// Both poll at step/cycle 0 (fault.CheckInterval aligned), so an expired
// deadline is detected before any work happens and the test is not timing
// sensitive.
func TestDeadlineParity(t *testing.T) {
	u, err := Compile(Programs()[0].Src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	opts := Opts{Deadline: time.Now().Add(-time.Second)}
	seq, par, err := u.Differential(opts)
	if err != nil {
		t.Fatalf("differential: %v", err)
	}
	if seq.Kind != fault.Deadline {
		t.Fatalf("sequential deadline kind = %v (err=%v), want %v", seq.Kind, seq.Err, fault.Deadline)
	}
	if par.Kind != fault.Deadline {
		t.Fatalf("vliw deadline kind = %v (err=%v), want %v", par.Kind, par.Err, fault.Deadline)
	}
	if !Agree(seq, par) {
		t.Fatalf("deadline outcomes disagree: seq=%v par=%v", seq.Kind, par.Kind)
	}
}

// TestCheckIntervalPowerOfTwo pins the cadence contract: the executors poll
// with a mask, so the shared interval must stay a power of two.
func TestCheckIntervalPowerOfTwo(t *testing.T) {
	if n := fault.CheckInterval; n <= 0 || n&(n-1) != 0 {
		t.Fatalf("fault.CheckInterval = %d, want a positive power of two", n)
	}
}
