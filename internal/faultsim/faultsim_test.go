package faultsim

import (
	"testing"

	"symbol/internal/fault"
	"symbol/internal/ic"
)

// TestCorpusRunsClean: every corpus program must compile and succeed under
// default resources on the sequential path — a program that faults by
// itself is useless as an injection baseline.
func TestCorpusRunsClean(t *testing.T) {
	for _, p := range Programs() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			u, err := Compile(p.Src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			out := u.Seq(Opts{})
			if out.Kind != fault.None || !out.Succeeded {
				t.Fatalf("default run not clean: kind=%v ok=%v err=%v",
					out.Kind, out.Succeeded, out.Err)
			}
		})
	}
}

// TestStressedAreaFaults: shrinking the area a program is documented to
// stress produces that area's overflow kind sequentially.
func TestStressedAreaFaults(t *testing.T) {
	want := map[string]fault.Kind{
		"heap":  fault.HeapOverflow,
		"env":   fault.EnvOverflow,
		"cp":    fault.CPOverflow,
		"trail": fault.TrailOverflow,
		"pdl":   fault.PDLOverflow,
	}
	shrink := func(area string) ic.Layout {
		var l ic.Layout
		switch area {
		case "heap":
			l.HeapWords = 2048
		case "env":
			l.EnvWords = 1024
		case "cp":
			l.CPWords = 1024
		case "trail":
			l.TrailWords = 512
		case "pdl":
			l.PDLWords = 64
		}
		return l
	}
	for _, p := range Programs() {
		if p.Name == "nested-catch" {
			continue // recovers instead of faulting, by design
		}
		p := p
		t.Run(p.Name, func(t *testing.T) {
			u, err := Compile(p.Src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			out := u.Seq(Opts{Layout: shrink(p.Stresses)})
			if out.Kind != want[p.Stresses] {
				t.Fatalf("stressing %s: got kind=%v (err=%v), want %v",
					p.Stresses, out.Kind, out.Err, want[p.Stresses])
			}
		})
	}
}
