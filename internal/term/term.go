// Package term provides the compile-time representation of Prolog terms:
// atoms, integers, variables and compound terms, plus the interned atom
// table shared between the compiler and the simulated machine.
package term

import (
	"fmt"
	"sort"
	"strings"
)

// Term is a parsed Prolog term. The concrete types are Atom, Int, *Var and
// *Compound.
type Term interface {
	isTerm()
	String() string
}

// Atom is a Prolog atom such as foo, [], '+' or 'hello world'.
type Atom string

// Int is a Prolog integer.
type Int int64

// Var is a Prolog variable. Identity is pointer identity: two occurrences of
// the same source variable share one *Var.
type Var struct {
	Name string
}

// Compound is a compound term Functor(Args...). Lists are Compound{".", [H,T]}.
type Compound struct {
	Functor string
	Args    []Term
}

func (Atom) isTerm()      {}
func (Int) isTerm()       {}
func (*Var) isTerm()      {}
func (*Compound) isTerm() {}

// Common atoms.
const (
	NilAtom  = Atom("[]")
	ConsName = "."
	TrueAtom = Atom("true")
)

// Cons builds a list cell '.'(head, tail).
func Cons(head, tail Term) *Compound {
	return &Compound{Functor: ConsName, Args: []Term{head, tail}}
}

// FromList builds a proper Prolog list from a Go slice.
func FromList(items []Term) Term {
	var t Term = NilAtom
	for i := len(items) - 1; i >= 0; i-- {
		t = Cons(items[i], t)
	}
	return t
}

// Comma builds a conjunction ','(a, b).
func Comma(a, b Term) *Compound {
	return &Compound{Functor: ",", Args: []Term{a, b}}
}

// Indicator names a predicate as name/arity.
type Indicator struct {
	Name  string
	Arity int
}

func (pi Indicator) String() string { return fmt.Sprintf("%s/%d", pi.Name, pi.Arity) }

// IndicatorOf returns the predicate indicator of a callable term.
func IndicatorOf(t Term) (Indicator, bool) {
	switch x := t.(type) {
	case Atom:
		return Indicator{Name: string(x)}, true
	case *Compound:
		return Indicator{Name: x.Functor, Arity: len(x.Args)}, true
	}
	return Indicator{}, false
}

func (a Atom) String() string { return quoteAtom(string(a)) }
func (i Int) String() string  { return fmt.Sprintf("%d", int64(i)) }
func (v *Var) String() string {
	if v.Name == "" {
		return fmt.Sprintf("_G%p", v)
	}
	return v.Name
}

func (c *Compound) String() string {
	if c.Functor == ConsName && len(c.Args) == 2 {
		return listString(c)
	}
	var b strings.Builder
	b.WriteString(quoteAtom(c.Functor))
	b.WriteByte('(')
	for i, a := range c.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(a.String())
	}
	b.WriteByte(')')
	return b.String()
}

func listString(c *Compound) string {
	var b strings.Builder
	b.WriteByte('[')
	b.WriteString(c.Args[0].String())
	t := c.Args[1]
	for {
		switch x := t.(type) {
		case *Compound:
			if x.Functor == ConsName && len(x.Args) == 2 {
				b.WriteByte(',')
				b.WriteString(x.Args[0].String())
				t = x.Args[1]
				continue
			}
		case Atom:
			if x == NilAtom {
				b.WriteByte(']')
				return b.String()
			}
		}
		b.WriteByte('|')
		b.WriteString(t.String())
		b.WriteByte(']')
		return b.String()
	}
}

func isAlnumAtom(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	if c < 'a' || c > 'z' {
		return false
	}
	for i := 1; i < len(s); i++ {
		c := s[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_') {
			return false
		}
	}
	return true
}

func isSymbolicAtom(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !strings.ContainsRune("+-*/\\^<>=~:.?@#&$", rune(s[i])) {
			return false
		}
	}
	return true
}

func quoteAtom(s string) string {
	switch {
	case isAlnumAtom(s), isSymbolicAtom(s),
		s == "[]", s == "{}", s == "!", s == ";", s == ",", s == "|":
		return s
	default:
		return "'" + strings.ReplaceAll(s, "'", "\\'") + "'"
	}
}

// Equal reports structural equality; variables compare by identity.
func Equal(a, b Term) bool {
	switch x := a.(type) {
	case Atom:
		y, ok := b.(Atom)
		return ok && x == y
	case Int:
		y, ok := b.(Int)
		return ok && x == y
	case *Var:
		return a == b
	case *Compound:
		y, ok := b.(*Compound)
		if !ok || x.Functor != y.Functor || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !Equal(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Vars appends to dst all distinct variables of t in first-occurrence order.
func Vars(t Term, dst []*Var) []*Var {
	switch x := t.(type) {
	case *Var:
		for _, v := range dst {
			if v == x {
				return dst
			}
		}
		return append(dst, x)
	case *Compound:
		for _, a := range x.Args {
			dst = Vars(a, dst)
		}
	}
	return dst
}

// Rename returns a copy of t with every variable replaced by a fresh one
// (consistently). It is used to standardize clauses apart.
func Rename(t Term) Term {
	m := map[*Var]*Var{}
	var walk func(Term) Term
	walk = func(t Term) Term {
		switch x := t.(type) {
		case *Var:
			nv, ok := m[x]
			if !ok {
				nv = &Var{Name: x.Name}
				m[x] = nv
			}
			return nv
		case *Compound:
			args := make([]Term, len(x.Args))
			for i, a := range x.Args {
				args[i] = walk(a)
			}
			return &Compound{Functor: x.Functor, Args: args}
		}
		return t
	}
	return walk(t)
}

// Table interns atom names to dense indices used by the simulated machine.
// Index 0 is always '[]' so the nil list has a stable runtime encoding.
type Table struct {
	names []string
	index map[string]uint32
}

// NewTable returns a table pre-seeded with the atoms the runtime relies on.
func NewTable() *Table {
	t := &Table{index: map[string]uint32{}}
	t.Intern("[]") // index 0
	t.Intern(".")  // index 1
	return t
}

// Intern returns the index of name, adding it if needed.
func (t *Table) Intern(name string) uint32 {
	if i, ok := t.index[name]; ok {
		return i
	}
	i := uint32(len(t.names))
	t.names = append(t.names, name)
	t.index[name] = i
	return i
}

// Name returns the string for an atom index.
func (t *Table) Name(i uint32) string {
	if int(i) < len(t.names) {
		return t.names[i]
	}
	return fmt.Sprintf("atom#%d", i)
}

// Lookup returns the index for name without interning.
func (t *Table) Lookup(name string) (uint32, bool) {
	i, ok := t.index[name]
	return i, ok
}

// Len returns the number of interned atoms.
func (t *Table) Len() int { return len(t.names) }

// Names returns the interned names sorted alphabetically (for listings).
func (t *Table) Names() []string {
	out := append([]string(nil), t.names...)
	sort.Strings(out)
	return out
}

// Ordered returns the interned names in intern order, so index i of the
// result is the atom with runtime index i. Serialization must use this
// (not Names, which sorts): atom indices are baked into compiled code as
// immediates, so a rebuilt table has to assign identical indices.
func (t *Table) Ordered() []string {
	return append([]string(nil), t.names...)
}
