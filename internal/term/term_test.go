package term

import (
	"testing"
)

func TestListHelpers(t *testing.T) {
	l := FromList([]Term{Int(1), Int(2), Int(3)})
	if l.String() != "[1,2,3]" {
		t.Errorf("got %q", l.String())
	}
	if FromList(nil) != NilAtom {
		t.Error("empty FromList must be []")
	}
	c := Cons(Atom("a"), NilAtom)
	if c.Functor != ConsName || len(c.Args) != 2 {
		t.Error("bad cons cell")
	}
}

func TestIndicator(t *testing.T) {
	pi, ok := IndicatorOf(Atom("foo"))
	if !ok || pi.Name != "foo" || pi.Arity != 0 {
		t.Errorf("got %v", pi)
	}
	pi, ok = IndicatorOf(&Compound{Functor: "f", Args: []Term{Int(1), Int(2)}})
	if !ok || pi.String() != "f/2" {
		t.Errorf("got %v", pi)
	}
	if _, ok := IndicatorOf(Int(3)); ok {
		t.Error("integers are not callable")
	}
	if _, ok := IndicatorOf(&Var{}); ok {
		t.Error("variables are not callable")
	}
}

func TestStringQuoting(t *testing.T) {
	cases := map[Term]string{
		Atom("foo"):       "foo",
		Atom("hello bob"): "'hello bob'",
		Atom("+"):         "+",
		Atom("[]"):        "[]",
		Atom("Caps"):      "'Caps'",
		Atom(""):          "''",
		Int(-7):           "-7",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%#v → %q, want %q", in, got, want)
		}
	}
}

func TestPartialListString(t *testing.T) {
	v := &Var{Name: "T"}
	l := Cons(Int(1), Cons(Int(2), v))
	if l.String() != "[1,2|T]" {
		t.Errorf("got %q", l.String())
	}
}

func TestEqual(t *testing.T) {
	x := &Var{Name: "X"}
	y := &Var{Name: "X"} // same name, different identity
	if Equal(x, y) {
		t.Error("variables compare by identity")
	}
	if !Equal(x, x) {
		t.Error("variable must equal itself")
	}
	a := &Compound{Functor: "f", Args: []Term{Int(1), x}}
	b := &Compound{Functor: "f", Args: []Term{Int(1), x}}
	if !Equal(a, b) {
		t.Error("structurally equal compounds")
	}
	c := &Compound{Functor: "f", Args: []Term{Int(2), x}}
	if Equal(a, c) {
		t.Error("different args must differ")
	}
}

func TestVarsOrderAndDedup(t *testing.T) {
	x, y := &Var{Name: "X"}, &Var{Name: "Y"}
	tm := &Compound{Functor: "f", Args: []Term{x, y, x, Cons(y, NilAtom)}}
	vs := Vars(tm, nil)
	if len(vs) != 2 || vs[0] != x || vs[1] != y {
		t.Errorf("got %v", vs)
	}
}

func TestRenameConsistency(t *testing.T) {
	x := &Var{Name: "X"}
	tm := &Compound{Functor: "f", Args: []Term{x, x, Int(3)}}
	r := Rename(tm).(*Compound)
	rx, ok := r.Args[0].(*Var)
	if !ok || rx == x {
		t.Fatal("variable must be replaced by a fresh one")
	}
	if r.Args[1] != rx {
		t.Error("occurrences of the same variable must stay shared")
	}
	if r.Args[2] != Int(3) {
		t.Error("constants unchanged")
	}
}

func TestTableInterning(t *testing.T) {
	tab := NewTable()
	if tab.Intern("[]") != 0 {
		t.Error("'[]' must be atom 0")
	}
	a := tab.Intern("foo")
	if tab.Intern("foo") != a {
		t.Error("interning is idempotent")
	}
	if tab.Name(a) != "foo" {
		t.Errorf("got %q", tab.Name(a))
	}
	if _, ok := tab.Lookup("bar"); ok {
		t.Error("lookup must not intern")
	}
	if tab.Len() < 3 {
		t.Error("seeded atoms missing")
	}
	if tab.Name(9999) == "" {
		t.Error("unknown index must render a placeholder")
	}
}
