// Package obs is the observability layer shared by the sequential emulator,
// the VLIW simulator and the engine. It has three parts, layered by cost:
//
//   - Stats: a plain per-run record (op-class mix in original-ICI units,
//     memory high-water marks, choice-point and trail activity, faults,
//     wall time). The predecoded run loops collect it from per-opcode
//     dispatch counters, so a run that nobody inspects pays one array
//     increment per dispatch and a small post-run expansion.
//   - Metrics: engine-wide aggregation over many runs — atomic counters
//     and fixed-bucket histograms, written lock-free from concurrently
//     completing runs, snapshotted on demand (see metrics.go).
//   - Event/Trace: an opt-in bounded ring of executor milestones (call,
//     fail, choice-point push/pop, catch/throw, fault, halt) stamped with
//     the original ICI pc. Tracing routes a run onto the reference
//     interpreter, so the fast loops carry no event hooks at all.
//
// The package deliberately depends only on the standard library and the
// fault taxonomy: the executors translate their internal representations
// (opcode tables, region layouts) into these neutral types at run exit.
package obs

import (
	"fmt"
	"strings"
	"time"
)

// Stats is the per-run execution record attached to every result. For a
// sequential run Steps counts executed ICIs and Cycles is zero; for a VLIW
// run Steps counts issued operations and Cycles counts instruction words
// retired. The five *Ops fields are the paper's §3.2 operation classes and
// always sum to Steps; they are exact dynamic counts in original-ICI units
// regardless of superinstruction fusion.
type Stats struct {
	Steps  int64 `json:"steps"`
	Cycles int64 `json:"cycles,omitempty"`

	MemOps     int64 `json:"mem_ops"`
	ALUOps     int64 `json:"alu_ops"`
	MoveOps    int64 `json:"move_ops"`
	ControlOps int64 `json:"control_ops"`
	SysOps     int64 `json:"sys_ops"`

	// High-water marks, in words used above each area's base. They are
	// derived from the dirty-page set after the run, so they are rounded up
	// to the 4096-word page (a run that never touches an area reports 0).
	HeapHigh  int64 `json:"heap_high"`
	EnvHigh   int64 `json:"env_high"`
	CPHigh    int64 `json:"cp_high"`
	TrailHigh int64 `json:"trail_high"`
	PDLHigh   int64 `json:"pdl_high"`

	ChoicePoints int64 `json:"choice_points"` // choice points created
	TrailUndos   int64 `json:"trail_undos"`   // trail entries undone on backtrack

	FaultsRaised int64 `json:"faults_raised"`
	FaultsCaught int64 `json:"faults_caught"` // raised faults converted to catchable balls

	Wall time.Duration `json:"wall_ns"`
}

// Add accumulates o into s: counters and wall time sum, high-water marks
// take the maximum. Engine metrics use the same rule, so summing per-run
// Stats with Add reproduces the engine's Totals exactly.
func (s *Stats) Add(o *Stats) {
	s.Steps += o.Steps
	s.Cycles += o.Cycles
	s.MemOps += o.MemOps
	s.ALUOps += o.ALUOps
	s.MoveOps += o.MoveOps
	s.ControlOps += o.ControlOps
	s.SysOps += o.SysOps
	s.HeapHigh = max(s.HeapHigh, o.HeapHigh)
	s.EnvHigh = max(s.EnvHigh, o.EnvHigh)
	s.CPHigh = max(s.CPHigh, o.CPHigh)
	s.TrailHigh = max(s.TrailHigh, o.TrailHigh)
	s.PDLHigh = max(s.PDLHigh, o.PDLHigh)
	s.ChoicePoints += o.ChoicePoints
	s.TrailUndos += o.TrailUndos
	s.FaultsRaised += o.FaultsRaised
	s.FaultsCaught += o.FaultsCaught
	s.Wall += o.Wall
}

// MixTable renders the dynamic operation-class mix in the style of the
// paper's Table 2: one row per class with count and percentage of Steps.
func (s *Stats) MixTable() string {
	var b strings.Builder
	rows := []struct {
		name string
		n    int64
	}{
		{"memory", s.MemOps},
		{"alu", s.ALUOps},
		{"move", s.MoveOps},
		{"control", s.ControlOps},
		{"sys", s.SysOps},
	}
	total := s.Steps
	if total == 0 {
		total = 1
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-8s %12d  %5.1f%%\n", r.name, r.n, 100*float64(r.n)/float64(total))
	}
	fmt.Fprintf(&b, "  %-8s %12d\n", "total", s.Steps)
	return b.String()
}

// String summarizes the run: headline counters followed by the class mix.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "steps=%d", s.Steps)
	if s.Cycles > 0 {
		fmt.Fprintf(&b, " cycles=%d", s.Cycles)
	}
	fmt.Fprintf(&b, " choice_points=%d trail_undos=%d", s.ChoicePoints, s.TrailUndos)
	if s.FaultsRaised > 0 {
		fmt.Fprintf(&b, " faults=%d/%d", s.FaultsCaught, s.FaultsRaised)
	}
	fmt.Fprintf(&b, " wall=%v\n", s.Wall)
	b.WriteString(s.MixTable())
	return b.String()
}

// EventKind enumerates the executor milestones the trace records.
type EventKind uint8

const (
	EvCall       EventKind = iota // Jsr: procedure call (Arg = callee pc)
	EvExec                        // Jmp to a procedure entry: last-call transfer (Arg = callee pc)
	EvReturn                      // JmpR: return (Arg = resumed pc)
	EvFail                        // control entered $fail: backtracking begins
	EvChoicePush                  // a choice point became live (Arg = new B)
	EvChoicePop                   // the top choice point was discarded (Arg = new B)
	EvCatch                       // a thrown ball reached a catch/3 handler
	EvThrow                       // throw/1 (or a converted fault) armed a ball
	EvFault                       // a machine fault was raised (Arg = fault.Kind)
	EvHalt                        // the run halted (Arg = status)

	NumEventKinds
)

var eventNames = [NumEventKinds]string{
	"call", "exec", "return", "fail", "cp_push", "cp_pop",
	"catch", "throw", "fault", "halt",
}

func (k EventKind) String() string {
	if k < NumEventKinds {
		return eventNames[k]
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one traced milestone. Step is the value of the executed-ICI
// counter when the event fired and PC the original ICI pc of the
// instruction that caused it, so events align with listings and profiles.
type Event struct {
	Step int64     `json:"step"`
	PC   int32     `json:"pc"`
	Kind EventKind `json:"kind"`
	Arg  int64     `json:"arg,omitempty"`
}

func (e Event) String() string {
	return fmt.Sprintf("%8d  pc=%-5d %-8s %d", e.Step, e.PC, e.Kind, e.Arg)
}

// Trace is a bounded event ring: the last cap events are kept, older ones
// are dropped (and counted). It is single-run, single-goroutine state —
// the executor owning the run writes it, the caller reads it afterwards.
type Trace struct {
	buf   []Event
	next  int
	total int64
}

// NewTrace makes a trace keeping the most recent cap events (cap >= 1).
func NewTrace(cap int) *Trace {
	if cap < 1 {
		cap = 1
	}
	return &Trace{buf: make([]Event, 0, cap)}
}

// Add records one event, evicting the oldest when the ring is full.
func (t *Trace) Add(e Event) {
	t.total++
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
		return
	}
	t.buf[t.next] = e
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
	}
}

// Events returns the retained events in chronological order (a copy).
func (t *Trace) Events() []Event {
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Total is the number of events recorded, including dropped ones.
func (t *Trace) Total() int64 { return t.total }

// Dropped is the number of events evicted from the ring.
func (t *Trace) Dropped() int64 { return t.total - int64(len(t.buf)) }
