package obs

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"
)

// ShedReason enumerates why a serving front end refused a request before
// running it. The serving layer records sheds here (rather than in ad-hoc
// handler counters) so load tests, dashboards and the drain logic all read
// one vocabulary.
type ShedReason uint8

const (
	// ShedQueueFull: the admission queue was already at its configured
	// bound when the request arrived.
	ShedQueueFull ShedReason = iota
	// ShedQueueTimeout: the request waited in the admission queue past its
	// queue-wait budget without an execution slot freeing up.
	ShedQueueTimeout
	// ShedPressure: the pressure monitor judged the backend overloaded
	// (windowed p99 latency over threshold) and the server is proactively
	// rejecting work it could technically still enqueue.
	ShedPressure
	// ShedDraining: the server is shutting down and no longer admits work.
	ShedDraining
	// ShedTenantQuota: the request's tenant already had its full provisioned
	// concurrency in flight; the global gate never saw the request.
	ShedTenantQuota

	NumShedReasons
)

var shedNames = [NumShedReasons]string{
	"queue_full", "queue_timeout", "pressure", "draining", "tenant_quota",
}

func (r ShedReason) String() string {
	if r < NumShedReasons {
		return shedNames[r]
	}
	return "shed(?)"
}

// ServerMetrics aggregates a query-serving front end's counters: queue
// depth and wait times, admissions, sheds by reason, handler panics, HTTP
// response classes and the drain state. Like Metrics it is lock-free to
// record and snapshot-on-demand to read; the zero value is ready to use.
type ServerMetrics struct {
	queueDepth  atomic.Int64
	queuedTotal atomic.Int64
	admitted    atomic.Int64
	inFlight    atomic.Int64
	shed        [NumShedReasons]atomic.Int64
	panics      atomic.Int64
	clientGone  atomic.Int64
	draining    atomic.Int64

	cursorsOpen    atomic.Int64
	cursorsOpened  atomic.Int64
	cursorsExpired atomic.Int64

	histRegress atomic.Int64

	batches      atomic.Int64
	batchMembers atomic.Int64
	batchRuns    atomic.Int64
	batchSize    [batchSizeBuckets + 1]atomic.Int64

	queueWait [latencyBuckets + 1]atomic.Int64
	status    [6]atomic.Int64 // responses by status class (index 2..5 used)
}

// batchSizeBuckets covers coalesced-batch sizes 1, 2, 4, ... 2^9 (the +1
// overflow bucket catches anything larger).
const batchSizeBuckets = 10

// RecordBatch notes one coalesced batch executing: how many admitted
// requests it carried and how many distinct engine runs (budget classes) it
// took to answer them. members - runs is the work coalescing saved; the
// size histogram shows whether the batching window is actually gathering
// traffic or just adding latency to singletons.
func (m *ServerMetrics) RecordBatch(members, runs int) {
	m.batches.Add(1)
	m.batchMembers.Add(int64(members))
	m.batchRuns.Add(int64(runs))
	m.batchSize[bucketPow2(int64(members), batchSizeBuckets)].Add(1)
}

// RecordEnqueue notes a request joining the admission queue and returns the
// new depth, so the caller can bound it.
func (m *ServerMetrics) RecordEnqueue() int64 {
	m.queuedTotal.Add(1)
	return m.queueDepth.Add(1)
}

// RecordDequeue notes a request leaving the admission queue (admitted, shed
// on timeout, or abandoned by the client), with the time it waited.
func (m *ServerMetrics) RecordDequeue(wait time.Duration) {
	m.queueDepth.Add(-1)
	m.queueWait[bucketPow2(int64(wait)/int64(time.Microsecond), latencyBuckets)].Add(1)
}

// RecordAdmitted notes a request acquiring an execution slot. Balanced by
// exactly one RecordReleased.
func (m *ServerMetrics) RecordAdmitted() {
	m.admitted.Add(1)
	m.inFlight.Add(1)
}

// RecordReleased notes an admitted request giving its execution slot back.
func (m *ServerMetrics) RecordReleased() { m.inFlight.Add(-1) }

// RecordShed notes a request refused before execution, by reason.
func (m *ServerMetrics) RecordShed(r ShedReason) {
	if r < NumShedReasons {
		m.shed[r].Add(1)
	}
}

// RecordPanic notes a handler panic contained by the isolation guard.
func (m *ServerMetrics) RecordPanic() { m.panics.Add(1) }

// RecordClientGone notes a request whose client disconnected before a
// response could be delivered.
func (m *ServerMetrics) RecordClientGone() { m.clientGone.Add(1) }

// RecordStatus notes the HTTP status code of a completed response.
func (m *ServerMetrics) RecordStatus(code int) {
	if c := code / 100; c >= 2 && c <= 5 {
		m.status[c].Add(1)
	}
}

// SetDraining flips the drain gauge.
func (m *ServerMetrics) SetDraining(on bool) {
	if on {
		m.draining.Store(1)
	} else {
		m.draining.Store(0)
	}
}

// RecordCursorOpened notes a paginated query parking a suspended stream
// behind a resume cursor. Balanced by exactly one RecordCursorClosed.
func (m *ServerMetrics) RecordCursorOpened() {
	m.cursorsOpened.Add(1)
	m.cursorsOpen.Add(1)
}

// RecordCursorClosed notes a parked cursor going away; expired
// distinguishes a TTL sweep from a client resuming or a drain closing it.
func (m *ServerMetrics) RecordCursorClosed(expired bool) {
	m.cursorsOpen.Add(-1)
	if expired {
		m.cursorsExpired.Add(1)
	}
}

// RecordHistRegression notes n observations of histogram mass clamped by a
// non-monotone snapshot subtraction (see Histogram.SubCount). Persistent
// growth here means a metrics source is being dropped between windows.
func (m *ServerMetrics) RecordHistRegression(n int64) {
	if n > 0 {
		m.histRegress.Add(n)
	}
}

// QueueDepth returns the current number of requests waiting for admission.
func (m *ServerMetrics) QueueDepth() int64 { return m.queueDepth.Load() }

// InFlight returns the current number of admitted, still-running requests.
func (m *ServerMetrics) InFlight() int64 { return m.inFlight.Load() }

// ServerSnapshot is a point-in-time copy of ServerMetrics,
// JSON-serializable (for expvar) and renderable as Prometheus text.
type ServerSnapshot struct {
	QueueDepth  int64 `json:"queue_depth"`
	QueuedTotal int64 `json:"queued_total"`
	Admitted    int64 `json:"admitted"`
	InFlight    int64 `json:"in_flight"`

	Shed map[string]int64 `json:"shed,omitempty"` // by ShedReason name

	Panics     int64 `json:"panics"`
	ClientGone int64 `json:"client_gone"`
	Draining   bool  `json:"draining"`

	CursorsOpen    int64 `json:"cursors_open"`
	CursorsOpened  int64 `json:"cursors_opened"`
	CursorsExpired int64 `json:"cursors_expired"`

	// HistogramRegressions counts observations clamped by non-monotone
	// histogram-window subtractions in the pressure monitor (should stay 0;
	// see Histogram.SubCount).
	HistogramRegressions int64 `json:"histogram_regressions"`

	Responses map[string]int64 `json:"responses,omitempty"` // by status class ("2xx".."5xx")

	// Coalescing: batches executed, admitted requests they carried, and the
	// distinct engine runs it took to answer them (members - runs is the work
	// coalescing saved).
	BatchesTotal      int64     `json:"batches_total"`
	BatchMembersTotal int64     `json:"batch_members_total"`
	BatchRunsTotal    int64     `json:"batch_runs_total"`
	BatchSize         Histogram `json:"batch_size"`

	QueueWaitSeconds Histogram `json:"queue_wait_seconds"`
}

// ShedTotal sums sheds across every reason.
func (s ServerSnapshot) ShedTotal() int64 {
	var n int64
	for _, v := range s.Shed {
		n += v
	}
	return n
}

// Snapshot copies the current counter values.
func (m *ServerMetrics) Snapshot() ServerSnapshot {
	s := ServerSnapshot{
		QueueDepth:  m.queueDepth.Load(),
		QueuedTotal: m.queuedTotal.Load(),
		Admitted:    m.admitted.Load(),
		InFlight:    m.inFlight.Load(),
		Panics:      m.panics.Load(),
		ClientGone:  m.clientGone.Load(),
		Draining:    m.draining.Load() != 0,

		CursorsOpen:          m.cursorsOpen.Load(),
		CursorsOpened:        m.cursorsOpened.Load(),
		CursorsExpired:       m.cursorsExpired.Load(),
		HistogramRegressions: m.histRegress.Load(),
	}
	for r := ShedReason(0); r < NumShedReasons; r++ {
		if n := m.shed[r].Load(); n > 0 {
			if s.Shed == nil {
				s.Shed = map[string]int64{}
			}
			s.Shed[r.String()] = n
		}
	}
	classes := [...]string{2: "2xx", 3: "3xx", 4: "4xx", 5: "5xx"}
	for c := 2; c <= 5; c++ {
		if n := m.status[c].Load(); n > 0 {
			if s.Responses == nil {
				s.Responses = map[string]int64{}
			}
			s.Responses[classes[c]] = n
		}
	}
	s.BatchesTotal = m.batches.Load()
	s.BatchMembersTotal = m.batchMembers.Load()
	s.BatchRunsTotal = m.batchRuns.Load()
	s.BatchSize.Bounds = make([]float64, batchSizeBuckets)
	s.BatchSize.Counts = make([]int64, batchSizeBuckets+1)
	for i := 0; i < batchSizeBuckets; i++ {
		s.BatchSize.Bounds[i] = float64(int64(1) << uint(i))
	}
	for i := range m.batchSize {
		s.BatchSize.Counts[i] = m.batchSize[i].Load()
	}
	s.QueueWaitSeconds.Bounds = make([]float64, latencyBuckets)
	s.QueueWaitSeconds.Counts = make([]int64, latencyBuckets+1)
	for i := 0; i < latencyBuckets; i++ {
		s.QueueWaitSeconds.Bounds[i] = float64(int64(1)<<uint(i)) / 1e6
	}
	for i := range m.queueWait {
		s.QueueWaitSeconds.Counts[i] = m.queueWait[i].Load()
	}
	return s
}

// WriteTo renders the snapshot in the Prometheus text exposition format
// under the symbolserve_ prefix.
func (s ServerSnapshot) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	p := func(format string, args ...any) {
		if cw.err == nil {
			fmt.Fprintf(cw, format, args...)
		}
	}
	gauge := func(name, help string, v int64) {
		p("# HELP symbolserve_%s %s\n# TYPE symbolserve_%s gauge\nsymbolserve_%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		p("# HELP symbolserve_%s %s\n# TYPE symbolserve_%s counter\nsymbolserve_%s %d\n", name, help, name, name, v)
	}
	gauge("queue_depth", "Requests waiting for admission.", s.QueueDepth)
	counter("queued_total", "Requests that entered the admission queue.", s.QueuedTotal)
	counter("admitted_total", "Requests granted an execution slot.", s.Admitted)
	gauge("in_flight", "Admitted requests currently executing.", s.InFlight)
	p("# HELP symbolserve_shed_total Requests refused before execution, by reason.\n# TYPE symbolserve_shed_total counter\n")
	for r := ShedReason(0); r < NumShedReasons; r++ {
		p("symbolserve_shed_total{reason=%q} %d\n", r.String(), s.Shed[r.String()])
	}
	counter("panics_total", "Handler panics contained by the isolation guard.", s.Panics)
	counter("client_gone_total", "Requests whose client disconnected first.", s.ClientGone)
	drain := int64(0)
	if s.Draining {
		drain = 1
	}
	gauge("draining", "1 while the server is draining.", drain)
	gauge("cursors_open", "Suspended solution streams parked behind resume cursors.", s.CursorsOpen)
	counter("cursors_opened_total", "Resume cursors ever issued.", s.CursorsOpened)
	counter("cursors_expired_total", "Resume cursors reclaimed by TTL expiry.", s.CursorsExpired)
	counter("pressure_histogram_regressions_total", "Observations clamped by non-monotone pressure-window subtraction.", s.HistogramRegressions)
	p("# HELP symbolserve_responses_total Responses sent, by status class.\n# TYPE symbolserve_responses_total counter\n")
	for _, c := range []string{"2xx", "3xx", "4xx", "5xx"} {
		p("symbolserve_responses_total{class=%q} %d\n", c, s.Responses[c])
	}
	counter("batches_total", "Coalesced batches executed.", s.BatchesTotal)
	counter("batch_members_total", "Admitted requests carried by coalesced batches.", s.BatchMembersTotal)
	counter("batch_runs_total", "Distinct engine runs executed on behalf of batches.", s.BatchRunsTotal)
	p("# HELP symbolserve_batch_size Members per coalesced batch.\n# TYPE symbolserve_batch_size histogram\n")
	var bcum int64
	for i, b := range s.BatchSize.Bounds {
		bcum += s.BatchSize.Counts[i]
		p("symbolserve_batch_size_bucket{le=\"%g\"} %d\n", b, bcum)
	}
	bcum += s.BatchSize.Counts[len(s.BatchSize.Bounds)]
	p("symbolserve_batch_size_bucket{le=\"+Inf\"} %d\n", bcum)
	p("symbolserve_batch_size_count %d\n", bcum)
	p("# HELP symbolserve_queue_wait_seconds Admission-queue wait of dequeued requests.\n# TYPE symbolserve_queue_wait_seconds histogram\n")
	var cum int64
	for i, b := range s.QueueWaitSeconds.Bounds {
		cum += s.QueueWaitSeconds.Counts[i]
		p("symbolserve_queue_wait_seconds_bucket{le=\"%g\"} %d\n", b, cum)
	}
	cum += s.QueueWaitSeconds.Counts[len(s.QueueWaitSeconds.Bounds)]
	p("symbolserve_queue_wait_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	p("symbolserve_queue_wait_seconds_count %d\n", cum)
	return cw.n, cw.err
}

// Quantile estimates the q-quantile (0 < q <= 1) of the observations in h:
// the upper bound of the bucket holding the rank-q observation, +Inf if it
// falls past the last bound, 0 if the histogram is empty. The estimate is
// conservative (an upper bound on the true quantile), which is the safe
// direction for load-shedding decisions.
func (h Histogram) Quantile(q float64) float64 {
	var total int64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			break
		}
	}
	return math.Inf(1)
}

// Sub sets h to the bucket-wise difference h - o, for turning two
// cumulative snapshots of the same histogram into the histogram of the
// interval between them. Buckets where o exceeds h clamp to zero instead
// of going negative; SubCount additionally reports how much mass was
// clamped, which callers should surface — a regression means the two
// snapshots were not really cumulative views of the same population (e.g.
// a contributing source vanished between them) and the window is suspect.
// Mismatched layouts leave h unchanged.
func (h Histogram) Sub(o Histogram) Histogram {
	out, _ := h.SubCount(o)
	return out
}

// SubCount is Sub plus the total count clamped to zero: the sum over all
// buckets of max(0, o[i]-h[i]). A non-zero second result flags a
// non-monotone snapshot pair.
func (h Histogram) SubCount(o Histogram) (Histogram, int64) {
	if len(h.Counts) != len(o.Counts) {
		return h, 0
	}
	out := Histogram{Bounds: h.Bounds, Counts: make([]int64, len(h.Counts))}
	var clamped int64
	for i := range h.Counts {
		if d := h.Counts[i] - o.Counts[i]; d > 0 {
			out.Counts[i] = d
		} else {
			clamped -= d
		}
	}
	return out, clamped
}

// Total sums the histogram's counts.
func (h Histogram) Total() int64 {
	var n int64
	for _, c := range h.Counts {
		n += c
	}
	return n
}
