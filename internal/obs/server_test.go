package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestHistogramQuantile(t *testing.T) {
	h := Histogram{
		Bounds: []float64{1, 2, 4, 8},
		Counts: []int64{0, 0, 0, 0, 0},
	}
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	// 10 observations <= 2, 1 observation <= 8.
	h.Counts = []int64{0, 10, 0, 1, 0}
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("p50 = %v, want 2", got)
	}
	if got := h.Quantile(0.99); got != 8 {
		t.Errorf("p99 = %v, want 8", got)
	}
	// An observation past the last bound pushes the top quantile to +Inf.
	h.Counts = []int64{0, 10, 0, 0, 1}
	if got := h.Quantile(1.0); !math.IsInf(got, 1) {
		t.Errorf("p100 = %v, want +Inf", got)
	}
}

func TestHistogramSubTotal(t *testing.T) {
	a := Histogram{Bounds: []float64{1, 2}, Counts: []int64{5, 7, 2}}
	b := Histogram{Bounds: []float64{1, 2}, Counts: []int64{1, 7, 0}}
	d := a.Sub(b)
	if d.Counts[0] != 4 || d.Counts[1] != 0 || d.Counts[2] != 2 {
		t.Errorf("Sub = %v", d.Counts)
	}
	if d.Total() != 6 {
		t.Errorf("Total = %d, want 6", d.Total())
	}
	if got := a.Sub(Histogram{}); got.Total() != a.Total() {
		t.Errorf("mismatched Sub should leave h unchanged, got %v", got.Counts)
	}
}

// TestHistogramSubCountClamps: a regressing bucket (later snapshot below
// the earlier one, as when a metrics source vanishes between cuts) must be
// clamped to zero in the window AND reported as clamped mass, never
// produce a negative count.
func TestHistogramSubCountClamps(t *testing.T) {
	a := Histogram{Bounds: []float64{1, 2}, Counts: []int64{3, 0, 5}}
	b := Histogram{Bounds: []float64{1, 2}, Counts: []int64{1, 4, 9}}
	d, clamped := a.SubCount(b)
	if d.Counts[0] != 2 || d.Counts[1] != 0 || d.Counts[2] != 0 {
		t.Errorf("SubCount window = %v, want [2 0 0]", d.Counts)
	}
	if clamped != 8 { // 4 from bucket 1, 4 from bucket 2
		t.Errorf("clamped mass = %d, want 8", clamped)
	}
	if _, c := b.SubCount(a); c != 2 { // only bucket 0 regresses this way
		t.Errorf("reverse clamp = %d, want 2", c)
	}
	if _, c := a.SubCount(a); c != 0 {
		t.Errorf("self SubCount clamped %d", c)
	}
	// Length mismatch is a no-op with zero clamp (first window after boot).
	if d, c := a.SubCount(Histogram{}); c != 0 || d.Total() != a.Total() {
		t.Errorf("mismatched SubCount: clamp %d window %v", c, d.Counts)
	}
}

func TestSnapshotMerge(t *testing.T) {
	var a, b Metrics
	a.RecordStart()
	s := Stats{Steps: 10, MemOps: 10, HeapHigh: 100, Wall: time.Millisecond}
	a.RecordDone(&s, true)
	b.RecordStart()
	b.RecordFailed(0, 0) // fault.None bucket, no run attempted
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Started != 2 || sa.Succeeded != 1 {
		t.Errorf("merged started=%d succeeded=%d", sa.Started, sa.Succeeded)
	}
	if sa.Totals.Steps != 10 || sa.Totals.HeapHigh != 100 {
		t.Errorf("merged totals %+v", sa.Totals)
	}
	if sa.LatencySeconds.Total() != 1 {
		t.Errorf("merged latency count = %d", sa.LatencySeconds.Total())
	}
}

func TestServerMetricsSnapshot(t *testing.T) {
	var m ServerMetrics
	if d := m.RecordEnqueue(); d != 1 {
		t.Fatalf("enqueue depth = %d", d)
	}
	m.RecordDequeue(3 * time.Millisecond)
	m.RecordAdmitted()
	m.RecordStatus(200)
	m.RecordReleased()
	m.RecordShed(ShedQueueFull)
	m.RecordShed(ShedDraining)
	m.RecordStatus(503)
	m.RecordPanic()
	m.SetDraining(true)
	s := m.Snapshot()
	if s.QueueDepth != 0 || s.QueuedTotal != 1 || s.Admitted != 1 || s.InFlight != 0 {
		t.Errorf("queue accounting: %+v", s)
	}
	if s.Shed["queue_full"] != 1 || s.Shed["draining"] != 1 || s.ShedTotal() != 2 {
		t.Errorf("shed accounting: %v", s.Shed)
	}
	if s.Responses["2xx"] != 1 || s.Responses["5xx"] != 1 {
		t.Errorf("responses: %v", s.Responses)
	}
	if !s.Draining || s.Panics != 1 {
		t.Errorf("draining=%v panics=%d", s.Draining, s.Panics)
	}
	if s.QueueWaitSeconds.Total() != 1 {
		t.Errorf("queue wait count = %d", s.QueueWaitSeconds.Total())
	}
	var b strings.Builder
	if _, err := s.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"symbolserve_queue_depth 0",
		`symbolserve_shed_total{reason="queue_full"} 1`,
		"symbolserve_draining 1",
		`symbolserve_responses_total{class="5xx"} 1`,
		"symbolserve_queue_wait_seconds_count 1",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestShedReasonStrings(t *testing.T) {
	seen := map[string]bool{}
	for r := ShedReason(0); r < NumShedReasons; r++ {
		name := r.String()
		if name == "" || name == "shed(?)" || seen[name] {
			t.Errorf("reason %d has bad or duplicate name %q", r, name)
		}
		seen[name] = true
	}
}
