package obs

import (
	"strings"
	"testing"
	"time"

	"symbol/internal/fault"
)

func TestTraceRing(t *testing.T) {
	tr := NewTrace(3)
	for i := 0; i < 5; i++ {
		tr.Add(Event{Step: int64(i), Kind: EvCall})
	}
	if tr.Total() != 5 || tr.Dropped() != 2 {
		t.Fatalf("total=%d dropped=%d, want 5/2", tr.Total(), tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("len=%d, want 3", len(evs))
	}
	for i, e := range evs {
		if e.Step != int64(i+2) {
			t.Errorf("event %d has step %d, want %d (chronological order)", i, e.Step, i+2)
		}
	}
}

func TestTraceMinCapacity(t *testing.T) {
	tr := NewTrace(0)
	tr.Add(Event{Step: 1})
	tr.Add(Event{Step: 2})
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Step != 2 {
		t.Fatalf("events=%v, want just the newest", evs)
	}
}

func TestStatsAddAndMix(t *testing.T) {
	a := Stats{Steps: 10, MemOps: 4, ALUOps: 1, MoveOps: 2, ControlOps: 2, SysOps: 1,
		HeapHigh: 100, ChoicePoints: 1, Wall: time.Millisecond}
	b := Stats{Steps: 5, MemOps: 5, HeapHigh: 50, EnvHigh: 70, Wall: time.Millisecond}
	a.Add(&b)
	if a.Steps != 15 || a.MemOps != 9 {
		t.Errorf("sum wrong: %+v", a)
	}
	if a.HeapHigh != 100 || a.EnvHigh != 70 {
		t.Errorf("high-water marks must take max: %+v", a)
	}
	if a.Wall != 2*time.Millisecond {
		t.Errorf("wall=%v", a.Wall)
	}
	table := a.MixTable()
	for _, row := range []string{"memory", "alu", "move", "control", "sys", "total"} {
		if !strings.Contains(table, row) {
			t.Errorf("mix table missing %q:\n%s", row, table)
		}
	}
}

func TestBuckets(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {1024, 10}, {1 << 19, 19}, {1 << 20, latencyBuckets},
	}
	for _, c := range cases {
		if got := bucketPow2(c.v, latencyBuckets); got != c.want {
			t.Errorf("bucketPow2(%d)=%d, want %d", c.v, got, c.want)
		}
	}
	if got := bucketPow4(5, stepBuckets); got != 2 {
		t.Errorf("bucketPow4(5)=%d, want 2 (bound 16)", got)
	}
	if got := bucketPow4(1<<40, stepBuckets); got != stepBuckets {
		t.Errorf("bucketPow4(2^40)=%d, want overflow slot %d", got, stepBuckets)
	}
}

func TestMetricsSnapshotHistograms(t *testing.T) {
	var m Metrics
	m.RecordStart()
	m.RecordDone(&Stats{Steps: 100, Wall: 3 * time.Microsecond}, true)
	m.RecordStart()
	m.RecordFailed(fault.StepLimit, 5*time.Microsecond)
	s := m.Snapshot()
	if s.Started != 2 || s.Succeeded != 1 || s.InFlight != 0 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.Faults[fault.StepLimit.String()] != 1 {
		t.Errorf("faults=%v", s.Faults)
	}
	var n int64
	for _, c := range s.LatencySeconds.Counts {
		n += c
	}
	// Both the completed and the faulted run contribute a latency sample.
	if n != 2 {
		t.Errorf("latency histogram holds %d, want 2", n)
	}
	if len(s.LatencySeconds.Counts) != len(s.LatencySeconds.Bounds)+1 {
		t.Errorf("counts/bounds shape: %d vs %d", len(s.LatencySeconds.Counts), len(s.LatencySeconds.Bounds))
	}
}
