package obs

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"symbol/internal/fault"
)

// Histogram bucket layouts. Both are fixed at compile time so recording is
// a loop-free index computation on atomics, with no allocation and no lock.
// Latency buckets are powers of two in microseconds up to ~0.5 s; step
// buckets are powers of four up to ~10^9 ICIs. The last (implicit) bucket
// of each catches everything beyond the top bound.
const (
	latencyBuckets = 20 // 1µs, 2µs, ... 2^19µs
	stepBuckets    = 16 // 1, 4, 16, ... 4^15
)

// Metrics is the engine-wide aggregation: lock-free atomic counters updated
// by concurrently completing runs, read via Snapshot. The zero value is
// ready to use.
type Metrics struct {
	started    atomic.Int64
	succeeded  atomic.Int64
	noSolution atomic.Int64
	rejected   atomic.Int64
	inFlight   atomic.Int64

	faults [fault.NumKinds]atomic.Int64

	poolGets        atomic.Int64
	poolMisses      atomic.Int64
	dirtyPagesReset atomic.Int64

	totals  statsAtomic
	latency [latencyBuckets + 1]atomic.Int64
	steps   [stepBuckets + 1]atomic.Int64
}

// statsAtomic mirrors Stats field by field so completed runs can be folded
// in without a lock, with the same Add semantics (sums, max for the
// high-water marks).
type statsAtomic struct {
	steps, cycles                                 atomic.Int64
	mem, alu, move, control, sys                  atomic.Int64
	heapHigh, envHigh, cpHigh, trailHigh, pdlHigh atomic.Int64
	choicePoints, trailUndos                      atomic.Int64
	faultsRaised, faultsCaught                    atomic.Int64
	wall                                          atomic.Int64
}

func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

func (t *statsAtomic) add(s *Stats) {
	t.steps.Add(s.Steps)
	t.cycles.Add(s.Cycles)
	t.mem.Add(s.MemOps)
	t.alu.Add(s.ALUOps)
	t.move.Add(s.MoveOps)
	t.control.Add(s.ControlOps)
	t.sys.Add(s.SysOps)
	atomicMax(&t.heapHigh, s.HeapHigh)
	atomicMax(&t.envHigh, s.EnvHigh)
	atomicMax(&t.cpHigh, s.CPHigh)
	atomicMax(&t.trailHigh, s.TrailHigh)
	atomicMax(&t.pdlHigh, s.PDLHigh)
	t.choicePoints.Add(s.ChoicePoints)
	t.trailUndos.Add(s.TrailUndos)
	t.faultsRaised.Add(s.FaultsRaised)
	t.faultsCaught.Add(s.FaultsCaught)
	t.wall.Add(int64(s.Wall))
}

func (t *statsAtomic) load() Stats {
	return Stats{
		Steps: t.steps.Load(), Cycles: t.cycles.Load(),
		MemOps: t.mem.Load(), ALUOps: t.alu.Load(), MoveOps: t.move.Load(),
		ControlOps: t.control.Load(), SysOps: t.sys.Load(),
		HeapHigh: t.heapHigh.Load(), EnvHigh: t.envHigh.Load(),
		CPHigh: t.cpHigh.Load(), TrailHigh: t.trailHigh.Load(),
		PDLHigh:      t.pdlHigh.Load(),
		ChoicePoints: t.choicePoints.Load(), TrailUndos: t.trailUndos.Load(),
		FaultsRaised: t.faultsRaised.Load(), FaultsCaught: t.faultsCaught.Load(),
		Wall: time.Duration(t.wall.Load()),
	}
}

// RecordStart notes a run entering the executor. Balanced by exactly one
// RecordDone or RecordFailed.
func (m *Metrics) RecordStart() {
	m.started.Add(1)
	m.inFlight.Add(1)
}

// RecordDone folds a completed run's stats in. succeeded distinguishes a
// proven goal from a clean no-solution halt.
func (m *Metrics) RecordDone(s *Stats, succeeded bool) {
	m.inFlight.Add(-1)
	if succeeded {
		m.succeeded.Add(1)
	} else {
		m.noSolution.Add(1)
	}
	m.totals.add(s)
	m.latency[bucketPow2(int64(s.Wall)/int64(time.Microsecond), latencyBuckets)].Add(1)
	m.steps[bucketPow4(s.Steps, stepBuckets)].Add(1)
}

// RecordFailed notes a run that ended in an error, bucketed by fault kind
// (fault.None for non-fault errors). wall is how long the run took before
// failing; a positive value lands in the latency histogram so that load
// monitors still see the backend's pace when every query is faulting —
// pass 0 when no run was attempted.
func (m *Metrics) RecordFailed(k fault.Kind, wall time.Duration) {
	m.inFlight.Add(-1)
	m.faults[k].Add(1)
	if wall > 0 {
		m.latency[bucketPow2(int64(wall)/int64(time.Microsecond), latencyBuckets)].Add(1)
	}
}

// RecordRejected notes a run refused before it started (invalid options).
func (m *Metrics) RecordRejected() { m.rejected.Add(1) }

// RecordPoolGet notes a machine-state checkout from the pool.
func (m *Metrics) RecordPoolGet() { m.poolGets.Add(1) }

// RecordPoolMiss notes a checkout that had to allocate a fresh
// multi-megaword state (the pool's New hook fired). A miss is always also a
// get, so PoolMisses <= PoolGets.
func (m *Metrics) RecordPoolMiss() { m.poolMisses.Add(1) }

// RecordReset notes pages zeroed while recycling a state into the pool.
func (m *Metrics) RecordReset(pages int) { m.dirtyPagesReset.Add(int64(pages)) }

// bucketPow2 returns the histogram slot for v under power-of-two bounds
// 1, 2, 4, ...: slot i holds v <= 2^i, the last slot holds the rest.
func bucketPow2(v int64, n int) int {
	for i := 0; i < n; i++ {
		if v <= 1<<uint(i) {
			return i
		}
	}
	return n
}

func bucketPow4(v int64, n int) int {
	for i := 0; i < n; i++ {
		if v <= 1<<uint(2*i) {
			return i
		}
	}
	return n
}

// Histogram is a fixed-bound counting histogram. Counts has one more entry
// than Bounds: Counts[i] is the number of observations <= Bounds[i], and
// the final entry counts observations beyond the last bound.
type Histogram struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Snapshot is a point-in-time copy of engine metrics, JSON-serializable
// (for expvar) and renderable as Prometheus text (WriteTo). Totals follows
// the Stats.Add rule, so it matches the Add-sum of every per-run Stats the
// engine has recorded.
type Snapshot struct {
	Started    int64 `json:"started"`
	Succeeded  int64 `json:"succeeded"`
	NoSolution int64 `json:"no_solution"`
	Rejected   int64 `json:"rejected"`
	InFlight   int64 `json:"in_flight"`

	Faults map[string]int64 `json:"faults,omitempty"` // by fault-kind name, error-terminated runs

	PoolGets        int64 `json:"pool_gets"`
	PoolMisses      int64 `json:"pool_misses"`
	DirtyPagesReset int64 `json:"dirty_pages_reset"`

	Totals Stats `json:"totals"`

	LatencySeconds Histogram `json:"latency_seconds"`
	StepsPerRun    Histogram `json:"steps_per_run"`
}

// Snapshot copies the current counter values. Individual counters are read
// atomically; the snapshot as a whole is not a single consistent cut while
// runs are completing concurrently, but any quiescent moment yields exact
// totals.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Started:    m.started.Load(),
		Succeeded:  m.succeeded.Load(),
		NoSolution: m.noSolution.Load(),
		Rejected:   m.rejected.Load(),
		InFlight:   m.inFlight.Load(),

		PoolGets:        m.poolGets.Load(),
		PoolMisses:      m.poolMisses.Load(),
		DirtyPagesReset: m.dirtyPagesReset.Load(),

		Totals: m.totals.load(),
	}
	for k := fault.Kind(0); k < fault.NumKinds; k++ {
		if n := m.faults[k].Load(); n > 0 {
			if s.Faults == nil {
				s.Faults = map[string]int64{}
			}
			s.Faults[k.String()] = n
		}
	}
	s.LatencySeconds.Bounds = make([]float64, latencyBuckets)
	s.LatencySeconds.Counts = make([]int64, latencyBuckets+1)
	for i := 0; i < latencyBuckets; i++ {
		s.LatencySeconds.Bounds[i] = float64(int64(1)<<uint(i)) / 1e6
	}
	for i := range m.latency {
		s.LatencySeconds.Counts[i] = m.latency[i].Load()
	}
	s.StepsPerRun.Bounds = make([]float64, stepBuckets)
	s.StepsPerRun.Counts = make([]int64, stepBuckets+1)
	for i := 0; i < stepBuckets; i++ {
		s.StepsPerRun.Bounds[i] = float64(int64(1) << uint(2*i))
	}
	for i := range m.steps {
		s.StepsPerRun.Counts[i] = m.steps[i].Load()
	}
	return s
}

// Merge folds o into s: counters and histogram buckets add, Totals follows
// the Stats.Add rule (sums, max for high-water marks). It lets a server
// expose one combined symbol_* metric family across several engines (one
// per knowledge base) without duplicate series.
func (s *Snapshot) Merge(o Snapshot) {
	s.Started += o.Started
	s.Succeeded += o.Succeeded
	s.NoSolution += o.NoSolution
	s.Rejected += o.Rejected
	s.InFlight += o.InFlight
	for name, v := range o.Faults {
		if s.Faults == nil {
			s.Faults = map[string]int64{}
		}
		s.Faults[name] += v
	}
	s.PoolGets += o.PoolGets
	s.PoolMisses += o.PoolMisses
	s.DirtyPagesReset += o.DirtyPagesReset
	s.Totals.Add(&o.Totals)
	mergeHist := func(dst *Histogram, src Histogram) {
		if len(dst.Counts) == 0 {
			dst.Bounds = append([]float64(nil), src.Bounds...)
			dst.Counts = append([]int64(nil), src.Counts...)
			return
		}
		if len(dst.Counts) != len(src.Counts) {
			return
		}
		for i := range src.Counts {
			dst.Counts[i] += src.Counts[i]
		}
	}
	mergeHist(&s.LatencySeconds, o.LatencySeconds)
	mergeHist(&s.StepsPerRun, o.StepsPerRun)
}

// Pressure is a cheap point-in-time load signal for admission control: a
// few atomic loads, no histogram copying, safe to read on every request.
type Pressure struct {
	InFlight   int64 `json:"in_flight"`   // runs currently executing
	Started    int64 `json:"started"`     // runs ever admitted to an executor
	PoolMisses int64 `json:"pool_misses"` // machine-state allocations (pool cold or over-subscribed)
}

// Pressure reads the current load signal.
func (m *Metrics) Pressure() Pressure {
	return Pressure{
		InFlight:   m.inFlight.Load(),
		Started:    m.started.Load(),
		PoolMisses: m.poolMisses.Load(),
	}
}

// promName sanitizes a label value-ish name fragment into a metric-name
// safe token (fault kinds contain spaces and hyphens).
func promName(s string) string {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			out[i] = c
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// WriteTo renders the snapshot in the Prometheus text exposition format
// (counters, gauges and two cumulative histograms under the symbol_
// prefix), so an embedder can mount it on any HTTP mux.
func (s Snapshot) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	p := func(format string, args ...any) {
		if cw.err == nil {
			fmt.Fprintf(cw, format, args...)
		}
	}
	counter := func(name, help string, v int64) {
		p("# HELP symbol_%s %s\n# TYPE symbol_%s counter\nsymbol_%s %d\n", name, help, name, name, v)
	}
	counter("queries_started_total", "Runs entering an executor.", s.Started)
	counter("queries_succeeded_total", "Runs halting with a proven goal.", s.Succeeded)
	counter("queries_no_solution_total", "Runs halting cleanly without a solution.", s.NoSolution)
	counter("queries_rejected_total", "Runs refused before starting (invalid options).", s.Rejected)
	p("# HELP symbol_queries_in_flight Runs currently executing.\n# TYPE symbol_queries_in_flight gauge\nsymbol_queries_in_flight %d\n", s.InFlight)

	p("# HELP symbol_queries_failed_total Runs terminated by an error, by fault kind.\n# TYPE symbol_queries_failed_total counter\n")
	for name, v := range s.Faults {
		p("symbol_queries_failed_total{kind=%q} %d\n", promName(name), v)
	}

	counter("pool_gets_total", "Machine-state checkouts from the pool.", s.PoolGets)
	counter("pool_misses_total", "Checkouts that allocated a fresh state.", s.PoolMisses)
	counter("dirty_pages_reset_total", "Memory pages zeroed while recycling states.", s.DirtyPagesReset)

	counter("steps_total", "Executed ICIs across all completed runs.", s.Totals.Steps)
	counter("cycles_total", "VLIW cycles across all completed runs.", s.Totals.Cycles)
	counter("ops_memory_total", "Memory-class ICIs executed.", s.Totals.MemOps)
	counter("ops_alu_total", "ALU-class ICIs executed.", s.Totals.ALUOps)
	counter("ops_move_total", "Move-class ICIs executed.", s.Totals.MoveOps)
	counter("ops_control_total", "Control-class ICIs executed.", s.Totals.ControlOps)
	counter("ops_sys_total", "Sys-class ICIs executed.", s.Totals.SysOps)
	counter("choice_points_total", "Choice points created.", s.Totals.ChoicePoints)
	counter("trail_undos_total", "Trail entries undone on backtrack.", s.Totals.TrailUndos)
	counter("faults_raised_total", "Machine faults raised inside runs.", s.Totals.FaultsRaised)
	counter("faults_caught_total", "Faults converted to catchable balls.", s.Totals.FaultsCaught)

	hist := func(name, help string, h Histogram) {
		p("# HELP symbol_%s %s\n# TYPE symbol_%s histogram\n", name, help, name)
		var cum int64
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			p("symbol_%s_bucket{le=\"%g\"} %d\n", name, b, cum)
		}
		cum += h.Counts[len(h.Bounds)]
		p("symbol_%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		p("symbol_%s_count %d\n", name, cum)
	}
	hist("run_latency_seconds", "Wall-clock latency of finished runs, faulted included.", s.LatencySeconds)
	hist("run_steps", "Executed ICIs per completed run.", s.StepsPerRun)
	return cw.n, cw.err
}

type countWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}
