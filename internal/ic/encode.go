package ic

import (
	"fmt"
	"sort"

	"symbol/internal/term"
	"symbol/internal/wire"
	"symbol/internal/word"
)

// MaxSnapshotReg caps the register numbers a decoded program may name.
// Executors size their register files from Program.MaxReg, so an untrusted
// snapshot naming register 2^40 would translate directly into a giant
// allocation; real compiled programs stay far below this.
const MaxSnapshotReg Reg = 1 << 20

// Per-instruction field-presence bits. Most ICIs use two or three fields,
// so a varint mask plus only the live fields beats a fixed record layout by
// ~3x on the benchmark corpus.
const (
	instHasD = 1 << iota
	instHasA
	instHasB
	instHasImm
	instImmFlag
	instHasWord
	instHasTag
	instHasCond
	instHasTarget
	instHasSys
	instHasRegion
	instHasMark
)

// AppendInst encodes one ICI at pc (targets are stored pc-relative).
func AppendInst(w *wire.Writer, in *Inst, pc int) {
	w.Byte(byte(in.Op))
	var mask uint64
	if in.D != None {
		mask |= instHasD
	}
	if in.A != None {
		mask |= instHasA
	}
	if in.B != None {
		mask |= instHasB
	}
	if in.Imm != 0 {
		mask |= instHasImm
	}
	if in.HasImm {
		mask |= instImmFlag
	}
	if in.Word != 0 {
		mask |= instHasWord
	}
	if in.Tag != 0 {
		mask |= instHasTag
	}
	if in.Cond != 0 {
		mask |= instHasCond
	}
	if in.Target != 0 {
		mask |= instHasTarget
	}
	if in.Sys != SysNone {
		mask |= instHasSys
	}
	if in.Reg != RegionUnknown {
		mask |= instHasRegion
	}
	if in.Mark != MarkNone {
		mask |= instHasMark
	}
	w.U64(mask)
	if mask&instHasD != 0 {
		w.I64(int64(in.D))
	}
	if mask&instHasA != 0 {
		w.I64(int64(in.A))
	}
	if mask&instHasB != 0 {
		w.I64(int64(in.B))
	}
	if mask&instHasImm != 0 {
		w.I64(in.Imm)
	}
	// Tagged words carry tag bits in the high byte, so as varints they
	// would always cost ten bytes and a ten-iteration decode loop; fixed
	// width is both smaller and faster.
	if mask&instHasWord != 0 {
		w.Bytes64(uint64(in.Word))
	}
	if mask&instHasTag != 0 {
		w.Byte(byte(in.Tag))
	}
	if mask&instHasCond != 0 {
		w.Byte(byte(in.Cond))
	}
	// Branch targets cluster near the branch itself, so they are encoded
	// relative to the instruction's own pc: the zigzag delta is usually a
	// single byte where the absolute pc would take two or three.
	if mask&instHasTarget != 0 {
		w.I64(int64(in.Target) - int64(pc))
	}
	if mask&instHasSys != 0 {
		w.Byte(byte(in.Sys))
	}
	if mask&instHasRegion != 0 {
		w.Byte(byte(in.Reg))
	}
	if mask&instHasMark != 0 {
		w.Byte(byte(in.Mark))
	}
}

// readInst decodes one ICI. Structural only — semantic validation happens
// in ValidateProgram once the whole code array and its length are known.
func readInst(r *wire.Reader, in *Inst, pc int) {
	in.Op = Op(r.Byte())
	mask := r.U64()
	in.D, in.A, in.B = None, None, None
	if mask&instHasD != 0 {
		in.D = Reg(r.I64())
	}
	if mask&instHasA != 0 {
		in.A = Reg(r.I64())
	}
	if mask&instHasB != 0 {
		in.B = Reg(r.I64())
	}
	if mask&instHasImm != 0 {
		in.Imm = r.I64()
	}
	in.HasImm = mask&instImmFlag != 0
	if mask&instHasWord != 0 {
		in.Word = word.W(r.Bytes64())
	}
	if mask&instHasTag != 0 {
		in.Tag = word.Tag(r.Byte())
	}
	if mask&instHasCond != 0 {
		in.Cond = Cond(r.Byte())
	}
	if mask&instHasTarget != 0 {
		t := r.I64() + int64(pc)
		r.Expect(int64(int(t)) == t)
		in.Target = int(t)
	}
	if mask&instHasSys != 0 {
		in.Sys = SysID(r.Byte())
	}
	if mask&instHasRegion != 0 {
		in.Reg = Region(r.Byte())
	}
	if mask&instHasMark != 0 {
		in.Mark = Mark(r.Byte())
	}
	r.Expect(mask < 1<<12)
}

// AppendProgram encodes the program image: code, atom table (in intern
// order — indices are baked into code immediates), entry points and symbol
// maps. Map sections are sorted so the encoding is deterministic; the
// snapshot cache keys on content hashes and byte-identical re-encodes are
// what make that sound.
func AppendProgram(w *wire.Writer, p *Program) {
	w.Count(len(p.Code))
	for i := range p.Code {
		AppendInst(w, &p.Code[i], i)
	}

	atoms := p.Atoms.Ordered()
	w.Count(len(atoms))
	for _, name := range atoms {
		w.String(name)
	}

	w.Int(p.Entry)
	w.Int(p.FailPC)
	w.Int(p.ThrowPC)

	procs := make([]string, 0, len(p.Procs))
	for k := range p.Procs {
		procs = append(procs, k)
	}
	sort.Strings(procs)
	w.Count(len(procs))
	for _, k := range procs {
		w.String(k)
		w.Int(p.Procs[k])
	}

	namePCs := make([]int, 0, len(p.Names))
	for pc := range p.Names {
		namePCs = append(namePCs, pc)
	}
	sort.Ints(namePCs)
	w.Count(len(namePCs))
	for _, pc := range namePCs {
		w.Int(pc)
		w.String(p.Names[pc])
	}

	entryPCs := make([]int, 0, len(p.Entries))
	for pc := range p.Entries {
		entryPCs = append(entryPCs, pc)
	}
	sort.Ints(entryPCs)
	w.Count(len(entryPCs))
	for _, pc := range entryPCs {
		w.Int(pc)
	}
}

// DecodeProgram decodes and validates a program image. The returned
// program is safe to hand to the executors: every register the code can
// dereference is in range, every branch target and region annotation is in
// bounds, and the atom table reproduces the encoder's intern order. On any
// structural or semantic violation it returns an error and never panics.
func DecodeProgram(r *wire.Reader) (*Program, error) {
	p := &Program{}
	n := r.Len(2) // op byte + mask byte minimum per inst
	p.Code = make([]Inst, n)
	for i := range p.Code {
		readInst(r, &p.Code[i], i)
	}

	atomCount := r.Len(1)
	p.Atoms = term.NewTable()
	for i := 0; i < atomCount; i++ {
		name := r.String()
		if r.Err() != nil {
			break
		}
		// Interning must reproduce index i exactly: the pre-seeded atoms
		// ("[]", ".") must lead the stream and duplicates are impossible in
		// a faithful encoding, so a mismatch means corruption.
		if got := p.Atoms.Intern(name); int(got) != i {
			return nil, fmt.Errorf("ic: atom table order violated at %d (%q): %w", i, name, wire.ErrMalformed)
		}
	}

	p.Entry = r.Int()
	p.FailPC = r.Int()
	p.ThrowPC = r.Int()

	procCount := r.Len(2)
	p.Procs = make(map[string]int, procCount)
	for i := 0; i < procCount; i++ {
		k := r.String()
		p.Procs[k] = r.Int()
	}

	nameCount := r.Len(2)
	p.Names = make(map[int]string, nameCount)
	for i := 0; i < nameCount; i++ {
		pc := r.Int()
		p.Names[pc] = r.String()
	}

	entryCount := r.Len(1)
	p.Entries = make(map[int]bool, entryCount)
	for i := 0; i < entryCount; i++ {
		p.Entries[r.Int()] = true
	}

	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("ic: decode program: %w", err)
	}
	if err := ValidateProgram(p); err != nil {
		return nil, err
	}
	return p, nil
}

// ValidateProgram checks the executor-safety invariants of a decoded
// program. The emulator dereferences operand registers without bounds
// checks (the register file is sized from MaxReg), indexes its per-region
// limit array directly by the Region annotation, and jumps to Target
// without range checks — so everything those paths touch is proven in
// range here, once, at load time.
func ValidateProgram(p *Program) error {
	n := len(p.Code)
	if n == 0 {
		return fmt.Errorf("ic: empty code array: %w", wire.ErrMalformed)
	}
	bad := func(pc int, f string, args ...any) error {
		return fmt.Errorf("ic: inst %d: %s: %w", pc, fmt.Sprintf(f, args...), wire.ErrMalformed)
	}
	regOK := func(r Reg) bool { return r >= 0 && r <= MaxSnapshotReg }
	pcOK := func(pc int) bool { return pc >= 0 && pc < n }

	for pc := range p.Code {
		in := &p.Code[pc]
		if in.Op > SysOp {
			return bad(pc, "unknown opcode %d", in.Op)
		}
		if in.Tag >= word.NumTags {
			return bad(pc, "tag %d out of range", in.Tag)
		}
		if in.Cond > CondGe {
			return bad(pc, "cond %d out of range", in.Cond)
		}
		if in.Reg > RegionBall {
			return bad(pc, "region %d out of range", in.Reg)
		}
		if in.Mark > MarkTrailUndo {
			return bad(pc, "mark %d out of range", in.Mark)
		}
		switch in.Op {
		case Nop, Halt:
			// no operands
		case Ld:
			if !regOK(in.D) || !regOK(in.A) {
				return bad(pc, "ld regs d=%d a=%d", in.D, in.A)
			}
		case St:
			if !regOK(in.A) || !regOK(in.B) {
				return bad(pc, "st regs a=%d b=%d", in.A, in.B)
			}
		case Add, Sub, Mul, Div, Mod, And, Or, Xor, Shl, Shr:
			if !regOK(in.D) || !regOK(in.A) {
				return bad(pc, "alu regs d=%d a=%d", in.D, in.A)
			}
			if !in.HasImm && !regOK(in.B) {
				return bad(pc, "alu reg b=%d", in.B)
			}
		case MkTag, GetTag, Lea, Mov:
			if !regOK(in.D) || !regOK(in.A) {
				return bad(pc, "regs d=%d a=%d", in.D, in.A)
			}
		case MovI:
			if !regOK(in.D) {
				return bad(pc, "movi reg d=%d", in.D)
			}
		case BrTag:
			if !regOK(in.A) {
				return bad(pc, "brtag reg a=%d", in.A)
			}
			if !pcOK(in.Target) {
				return bad(pc, "brtag target %d", in.Target)
			}
		case BrCmp:
			if !regOK(in.A) {
				return bad(pc, "brcmp reg a=%d", in.A)
			}
			if !in.HasImm && !regOK(in.B) {
				return bad(pc, "brcmp reg b=%d", in.B)
			}
			if !pcOK(in.Target) {
				return bad(pc, "brcmp target %d", in.Target)
			}
		case Jmp:
			if !pcOK(in.Target) {
				return bad(pc, "jmp target %d", in.Target)
			}
		case JmpR:
			if !regOK(in.A) {
				return bad(pc, "jmpr reg a=%d", in.A)
			}
		case Jsr:
			if !regOK(in.D) {
				return bad(pc, "jsr reg d=%d", in.D)
			}
			if !pcOK(in.Target) {
				return bad(pc, "jsr target %d", in.Target)
			}
		case SysOp:
			if in.Sys > SysFault {
				return bad(pc, "sys id %d out of range", in.Sys)
			}
			switch in.Sys {
			case SysWrite, SysWriteCode, SysBallPut:
				if !regOK(in.A) {
					return bad(pc, "sys %s reg a=%d", in.Sys, in.A)
				}
			case SysCompare:
				if !regOK(in.A) || !regOK(in.B) {
					return bad(pc, "sys compare regs a=%d b=%d", in.A, in.B)
				}
			}
		}
	}
	if !pcOK(p.Entry) {
		return fmt.Errorf("ic: entry pc %d out of range: %w", p.Entry, wire.ErrMalformed)
	}
	if !pcOK(p.FailPC) {
		return fmt.Errorf("ic: fail pc %d out of range: %w", p.FailPC, wire.ErrMalformed)
	}
	if !pcOK(p.ThrowPC) {
		return fmt.Errorf("ic: throw pc %d out of range: %w", p.ThrowPC, wire.ErrMalformed)
	}
	for k, pc := range p.Procs {
		if !pcOK(pc) {
			return fmt.Errorf("ic: proc %q pc %d out of range: %w", k, pc, wire.ErrMalformed)
		}
	}
	for pc := range p.Names {
		if !pcOK(pc) {
			return fmt.Errorf("ic: name pc %d out of range: %w", pc, wire.ErrMalformed)
		}
	}
	for pc := range p.Entries {
		if !pcOK(pc) {
			return fmt.Errorf("ic: entry-point pc %d out of range: %w", pc, wire.ErrMalformed)
		}
	}
	return nil
}
