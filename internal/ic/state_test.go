package ic

import (
	"testing"

	"symbol/internal/word"
)

func TestStateResetRestoresZero(t *testing.T) {
	s := NewState()
	mem := s.Mem()
	if len(mem) != MemWords {
		t.Fatalf("mem len %d, want %d", len(mem), MemWords)
	}
	addrs := []uint64{0, HeapBase, HeapBase + 12345, EnvBase + 7, TrailBase, MemWords - 1}
	for i, a := range addrs {
		mem[a] = word.MakeInt(int64(i + 1))
		s.Touch(a)
	}
	if got := s.DirtyPages(); got == 0 || got > len(addrs) {
		t.Fatalf("DirtyPages=%d, want 1..%d", got, len(addrs))
	}
	regs := s.Regs(16)
	regs[3] = word.MakeInt(99)
	ready := s.Ready(16)
	ready[5] = 42

	s.Reset()
	for _, a := range addrs {
		if mem[a] != 0 {
			t.Fatalf("mem[%#x]=%v after Reset, want 0", a, mem[a])
		}
	}
	if s.DirtyPages() != 0 {
		t.Fatalf("DirtyPages=%d after Reset", s.DirtyPages())
	}
	// The next run's register file reuses the backing array but sees zeros.
	regs = s.Regs(8)
	for i, r := range regs {
		if r != 0 {
			t.Fatalf("regs[%d]=%v after Reset, want 0", i, r)
		}
	}
	ready = s.Ready(8)
	for i, r := range ready {
		if r != 0 {
			t.Fatalf("ready[%d]=%v after Reset, want 0", i, r)
		}
	}
}

func TestStateTouchRange(t *testing.T) {
	s := NewState()
	mem := s.Mem()
	lo, hi := uint64(BallBase), uint64(BallBase+BallSize)
	for a := lo; a < hi; a += PageWords / 2 {
		mem[a] = word.MakeInt(7)
	}
	s.TouchRange(lo, hi)
	s.Reset()
	for a := lo; a < hi; a += PageWords / 2 {
		if mem[a] != 0 {
			t.Fatalf("mem[%#x] dirty after Reset", a)
		}
	}
	// Degenerate and clamped ranges must not panic or mark anything.
	s.TouchRange(5, 5)
	s.TouchRange(MemWords+100, MemWords+200)
	if s.DirtyPages() != 0 {
		t.Fatalf("empty ranges dirtied %d pages", s.DirtyPages())
	}
}

func TestStateTouchOutOfImage(t *testing.T) {
	s := NewState()
	s.Touch(MemWords + 12345) // ignored, not a panic
	if s.DirtyPages() != 0 {
		t.Fatalf("out-of-image touch dirtied a page")
	}
}

func TestStateRegsGrowAndShrink(t *testing.T) {
	s := NewState()
	big := s.Regs(256)
	big[200] = word.MakeInt(5)
	s.Reset()
	small := s.Regs(4)
	if len(small) != 4 {
		t.Fatalf("Regs(4) len %d", len(small))
	}
	// Growing again must still expose zeroed high registers.
	big = s.Regs(256)
	if big[200] != 0 {
		t.Fatalf("regs[200]=%v after Reset, want 0", big[200])
	}
}

func TestProgramMaxReg(t *testing.T) {
	p := &Program{Code: []Inst{
		{Op: Mov, D: FirstTemp + 9, A: FirstArg},
		{Op: Add, D: RegRV, A: FirstTemp + 3, B: FirstTemp + 7},
	}}
	if got := p.MaxReg(); got != FirstTemp+9 {
		t.Fatalf("MaxReg=%d, want %d", got, FirstTemp+9)
	}
	// Cached: a second call returns the same value.
	if got := p.MaxReg(); got != FirstTemp+9 {
		t.Fatalf("cached MaxReg=%d", got)
	}
}
