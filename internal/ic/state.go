package ic

import "symbol/internal/word"

// Dirty-page tracking granularity. Every store into the simulated memory
// marks its page; Reset zeroes only the marked pages, so recycling a State
// across runs costs O(words actually written), not O(MemWords). 4096 words
// (one 32 KiB span) keeps the page table tiny (~4700 entries) while making
// the per-store bookkeeping a shift, a byte load and a rarely-taken branch.
const (
	PageShift = 12
	PageWords = 1 << PageShift
	numPages  = (MemWords + PageWords - 1) / PageWords
)

// State is one executor's worth of mutable machine state: the simulated
// tagged memory image and the (virtual) register file, plus the VLIW
// simulator's per-register ready cycles. It exists so that an embedding
// process serving many queries can recycle the multi-megaword memory image
// through a pool instead of allocating and faulting it in from scratch on
// every run.
//
// A State is NOT safe for concurrent use; it represents one machine. The
// contract with the executors:
//
//   - a fresh State is all zeroes, exactly like a freshly made slice;
//   - the executor calls Touch (or TouchRange) for every memory word it
//     writes;
//   - Reset restores the all-zero state in time proportional to the pages
//     dirtied since the previous Reset.
type State struct {
	mem   []word.W
	regs  []word.W
	ready []int64

	dirty    []int32 // indices of dirtied pages, in first-touch order
	dirtyBit []bool  // per-page dirty flag
}

// NewState allocates a zeroed machine state sized for the compile-time
// memory layout.
func NewState() *State {
	return &State{
		mem:      make([]word.W, MemWords),
		dirtyBit: make([]bool, numPages),
	}
}

// Mem returns the simulated memory image (always MemWords long).
func (s *State) Mem() []word.W { return s.mem }

// StateBytes estimates the resident size of one State in bytes: the full
// memory image (the dominant term, ~19M words), the per-page dirty table,
// and a nominal allowance for the register and ready arrays. Budget-aware
// caches use it to convert "engines × pooled states" into a byte figure
// they can evict against; it is an estimate of steady-state residency, not
// an exact accounting (a fresh State's image is untouched zero pages until
// a run faults them in).
func StateBytes() int64 {
	const wordBytes = 8 // word.W is a uint64
	return int64(MemWords)*wordBytes + numPages + 4096
}

// Regs returns a zeroed register file of at least n registers, reusing the
// previous run's backing array when it is large enough. (Reset already
// zeroed it; growth allocates fresh, which is zero by construction.)
func (s *State) Regs(n int) []word.W {
	if cap(s.regs) < n {
		s.regs = make([]word.W, n)
	} else {
		s.regs = s.regs[:n]
	}
	return s.regs
}

// Ready returns a zeroed ready-cycle array of at least n entries for the
// VLIW simulator's latency bookkeeping, with the same reuse contract as
// Regs.
func (s *State) Ready(n int) []int64 {
	if cap(s.ready) < n {
		s.ready = make([]int64, n)
	} else {
		s.ready = s.ready[:n]
	}
	return s.ready
}

// Touch marks the page holding addr dirty. Callers must Touch every memory
// word they write, or Reset will miss it. Out-of-image addresses are
// ignored (the executors bounds-check stores before writing).
func (s *State) Touch(addr uint64) {
	pg := addr >> PageShift
	if pg < uint64(len(s.dirtyBit)) && !s.dirtyBit[pg] {
		s.dirtyBit[pg] = true
		s.dirty = append(s.dirty, int32(pg))
	}
}

// TouchRange marks every page intersecting [lo, hi) dirty. Used for bulk
// writers (the ball-copy routines) whose exact extent is inconvenient to
// track store by store.
func (s *State) TouchRange(lo, hi uint64) {
	if hi > uint64(len(s.mem)) {
		hi = uint64(len(s.mem))
	}
	if lo >= hi {
		return
	}
	for pg := lo >> PageShift; pg <= (hi-1)>>PageShift; pg++ {
		if !s.dirtyBit[pg] {
			s.dirtyBit[pg] = true
			s.dirty = append(s.dirty, int32(pg))
		}
	}
}

// DirtyPages reports how many memory pages have been written since the last
// Reset (observability for pool tuning and tests).
func (s *State) DirtyPages() int { return len(s.dirty) }

// MaxDirty returns the exclusive upper bound of the addresses dirtied in
// [lo, hi) since the last Reset, rounded up to a page boundary (and clamped
// to hi), or lo when no page in the range was written. The executors derive
// the per-area high-water marks from it after a run: the dirty set is
// page-granular, so the marks are too, but reading it costs one scan of the
// (short) dirty list instead of a compare on every store.
func (s *State) MaxDirty(lo, hi uint64) uint64 {
	top := lo
	for _, pg := range s.dirty {
		base := uint64(pg) << PageShift
		if base >= hi || base+PageWords <= lo {
			continue
		}
		end := base + PageWords
		if end > hi {
			end = hi
		}
		if end > top {
			top = end
		}
	}
	return top
}

// Reset restores the all-zero state: it zeroes exactly the dirtied memory
// pages, the register file and the ready array, then clears the dirty set.
func (s *State) Reset() {
	for _, pg := range s.dirty {
		lo := int(pg) << PageShift
		hi := lo + PageWords
		if hi > len(s.mem) {
			hi = len(s.mem)
		}
		clear(s.mem[lo:hi])
		s.dirtyBit[pg] = false
	}
	s.dirty = s.dirty[:0]
	clear(s.regs[:cap(s.regs)])
	clear(s.ready[:cap(s.ready)])
}
