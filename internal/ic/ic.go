// Package ic defines the machine-independent Intermediate Code (ICI) of the
// SYMBOL evaluation system (paper §3.1). Each ICI expresses one primitive
// hardware functionality: a load, a store, an ALU operation on tagged words,
// a register move, or a control transfer. ICIs name an unbounded set of
// virtual registers — they carry no register allocation or functional-unit
// information; that is the back-end's job.
//
// Instruction classes follow the paper's Figure 2 taxonomy: memory, ALU,
// move (data movement) and control, plus a small "sys" escape class for
// builtins with observable side effects (write/1, nl/0).
package ic

import (
	"fmt"
	"sync"
	"sync/atomic"

	"symbol/internal/term"
	"symbol/internal/word"
)

// Reg is a virtual register number. Negative means "no operand".
type Reg int32

// None marks an absent register operand.
const None Reg = -1

// Global machine-state registers. Registers below FirstArg are the abstract
// machine's state; FirstArg..FirstArg+NumArgRegs-1 are argument registers;
// FirstTemp and above are single-assignment-ish temporaries minted freely by
// the translator (variable renaming, §3.1, eliminates reuse of temporaries
// so that only true data dependencies remain).
const (
	RegH   Reg = iota // heap top
	RegESP            // environment-stack top
	RegE              // current environment frame
	RegB              // most recent choice point
	RegTR             // trail top
	RegCP             // continuation (return) code pointer
	RegRV             // runtime-routine return value / scratch link
	RegEB             // environment barrier: frames below are protected by
	// live choice points and may not be reused by allocate (the separate-
	// stack equivalent of the WAM's max(E,B) allocation rule)

	FirstArg   Reg = 8
	NumArgRegs     = 16
	FirstTemp  Reg = FirstArg + NumArgRegs
)

// ArgReg returns the i-th argument register.
func ArgReg(i int) Reg { return FirstArg + Reg(i) }

// Class is the paper's instruction-class taxonomy.
type Class uint8

const (
	ClassALU Class = iota
	ClassMemory
	ClassMove
	ClassControl
	ClassSys
	NumClasses
)

var classNames = [NumClasses]string{"alu", "memory", "move", "control", "sys"}

func (c Class) String() string { return classNames[c] }

// Op is an ICI opcode.
type Op uint8

const (
	Nop Op = iota
	// Memory. Only explicit loads and stores touch memory; direct and
	// immediate addressing only (base register + constant offset).
	Ld // D = mem[val(A) + Imm]
	St // mem[val(A) + Imm] = B

	// ALU on tagged words: the value fields are combined, the tag of the
	// first operand is preserved (the datapath's independently addressable
	// fields, §5.2). The second operand is B, or Imm when HasImm.
	Add
	Sub
	Mul
	Div
	Mod
	And
	Or
	Xor
	Shl
	Shr
	MkTag  // D = A with tag replaced by Tag
	GetTag // D = int word holding tag(A)
	Lea    // D = word(Tag, val(A)+Imm): tagged pointer arithmetic in one op

	// Moves.
	Mov  // D = A
	MovI // D = Word (full tagged-word immediate)

	// Control. Branches resolve in the second pipeline stage: a taken
	// branch costs one bubble on pipelined machines, 2 cycles sequentially.
	//
	// BrCmp's immediate form is split by condition: the ordered conditions
	// (Lt/Le/Gt/Ge) compare signed *value fields* and take the immediate
	// from Imm; the full-word conditions (Eq/Ne) compare complete tagged
	// words and take the immediate from Word, so the intended tag is always
	// explicit at the construction site (never an int64 reinterpreted as a
	// word).
	BrTag // if tag(A) ~ Tag (Cond Eq/Ne) jump Target
	BrCmp // if A ~ (B | Imm | Word) (Cond) jump Target
	Jmp   // jump Target
	JmpR  // jump val(A)
	Jsr   // D = code(next pc); jump Target
	Halt  // stop; Imm is the exit status (0 success, 1 fail)

	// Sys escapes.
	SysOp // builtin identified by Sys, operands in A (and B)
)

// Cond is a branch/compare condition.
type Cond uint8

const (
	CondEq Cond = iota // full-word equality
	CondNe             // full-word inequality
	CondLt             // signed value comparison
	CondLe
	CondGt
	CondGe
)

var condNames = []string{"eq", "ne", "lt", "le", "gt", "ge"}

func (c Cond) String() string { return condNames[c] }

// Invert returns the negation of the condition, used by the trace scheduler
// to lay the predicted path out as fall-through.
func (c Cond) Invert() Cond {
	switch c {
	case CondEq:
		return CondNe
	case CondNe:
		return CondEq
	case CondLt:
		return CondGe
	case CondLe:
		return CondGt
	case CondGt:
		return CondLe
	default:
		return CondLt
	}
}

// SysID identifies a builtin escape.
type SysID uint8

const (
	SysNone      SysID = iota
	SysWrite           // write(term at A)
	SysNl              // newline
	SysCompare         // RV = int(-1/0/1) from structural compare of A, B
	SysWriteCode       // write integer val(A) as a character (put_char-ish)
	SysBallPut         // copy term at A into the ball area and arm the ball flag
	SysFault           // raise the machine fault whose fault.Kind is Imm
)

var sysNames = []string{"none", "write", "nl", "compare", "write_code", "ball_put", "fault"}

func (s SysID) String() string { return sysNames[s] }

// Region is an optional static memory-region annotation used by the
// ablation study on memory disambiguation. The paper argues stack and heap
// references cannot be disambiguated because they flow through pointers
// (§4.1); the default scheduler therefore ignores this hint unless the
// machine model explicitly enables region-based disambiguation.
type Region uint8

const (
	RegionUnknown Region = iota
	RegionHeap
	RegionEnv
	RegionCP
	RegionTrail
	RegionPDL
	RegionBall
)

var regionNames = []string{"?", "heap", "env", "cp", "trail", "pdl", "ball"}

func (r Region) String() string { return regionNames[r] }

// Mark is an optional semantic annotation placed by the code generator on
// the single ICI that commits a Prolog-level machine event the observability
// layer wants to count: choice-point creation (the Mov that installs the new
// frame pointer into B — it cannot fault, so a partially written frame is
// never counted), choice-point disposal (the Ld that follows the B chain in
// Trust), and trail unwinding (the Ld that fetches a trail entry in $fail).
// Marks never change execution semantics; they only make the events cheap to
// observe. Predecoding gives CPPush and TrailUndo their own opcodes, so the
// hot loops count them through the ordinary per-opcode dispatch counters.
type Mark uint8

const (
	MarkNone      Mark = iota
	MarkCPPush         // Mov B, nb — a fully written choice point became live
	MarkCPPop          // Ld B, [B+prevB] — the top choice point was discarded
	MarkTrailUndo      // Ld v, [TR+0] — one trail entry is about to be unbound
)

// Inst is one Intermediate Code Instruction.
type Inst struct {
	Op     Op
	D      Reg    // destination register
	A, B   Reg    // source registers
	Imm    int64  // ALU/ordered-branch immediate, load/store offset, halt status
	HasImm bool   // B-or-immediate selector for ALU and BrCmp
	Word   word.W // MovI immediate; BrCmp Eq/Ne full-word immediate
	Tag    word.Tag
	Cond   Cond
	Target int // branch target pc (instruction index)
	Sys    SysID
	Reg    Region // memory-region annotation for Ld/St
	Mark   Mark   // observability annotation (see Mark)
}

// Class returns the paper's instruction class for the ICI.
func (in *Inst) Class() Class {
	switch in.Op {
	case Ld, St:
		return ClassMemory
	case Mov, MovI:
		return ClassMove
	case BrTag, BrCmp, Jmp, JmpR, Jsr, Halt:
		return ClassControl
	case SysOp:
		return ClassSys
	default:
		return ClassALU
	}
}

// IsBranch reports whether the ICI is a control transfer.
func (in *Inst) IsBranch() bool { return in.Class() == ClassControl }

// IsCondBranch reports whether the ICI is a conditional branch (has both a
// taken target and a fall-through successor).
func (in *Inst) IsCondBranch() bool { return in.Op == BrTag || in.Op == BrCmp }

// Uses appends the registers read by the ICI to dst.
func (in *Inst) Uses(dst []Reg) []Reg {
	switch in.Op {
	case Nop, MovI, Jmp, Jsr, Halt:
	case Ld, GetTag, MkTag, Lea, Mov, BrTag, JmpR:
		dst = append(dst, in.A)
	case St:
		dst = append(dst, in.A, in.B)
	case SysOp:
		if in.A != None {
			dst = append(dst, in.A)
		}
		if in.B != None {
			dst = append(dst, in.B)
		}
	default: // ALU, BrCmp
		dst = append(dst, in.A)
		if !in.HasImm && in.B != None {
			dst = append(dst, in.B)
		}
	}
	return dst
}

// Def returns the register written by the ICI, or None.
func (in *Inst) Def() Reg {
	switch in.Op {
	case Ld, Add, Sub, Mul, Div, Mod, And, Or, Xor, Shl, Shr,
		MkTag, GetTag, Lea, Mov, MovI, Jsr:
		return in.D
	case SysOp:
		if in.Sys == SysCompare {
			return RegRV
		}
		return None
	default:
		return None
	}
}

// Program is an assembled IC program plus its symbol information.
type Program struct {
	Code   []Inst
	Atoms  *term.Table
	Entry  int            // entry pc
	FailPC int            // pc of the shared $fail routine
	Procs  map[string]int // "name/arity" → entry pc
	Names  map[int]string // pc → label, for listings
	// Entries marks pcs reachable through indirect control flow (procedure
	// entries, return points after Jsr, and retry addresses stored in
	// choice points). The back end must keep these addressable: they start
	// traces and are never scheduled into the middle of one.
	Entries map[int]bool
	// ThrowPC is the entry of the $throwunwind runtime routine, where
	// control lands when throw/1 runs or when the machine converts a
	// resource fault into a catchable ball (0 for programs without the
	// runtime routines, e.g. hand-assembled tests).
	ThrowPC int

	maxRegOnce sync.Once
	maxReg     Reg

	execOnce  sync.Once
	execCache any
	execBuilt atomic.Bool
}

// ExecCache returns the program's predecoded execution image, building it
// with build on the first call and caching it for the life of the Program.
// The cache lives here (rather than in a global map keyed by *Program) so a
// program and its predecoded form are reclaimed together; the value is
// opaque to this package because the predecoder (internal/exec) sits above
// ic in the import graph. Code must not be mutated after the first call.
func (p *Program) ExecCache(build func() any) any {
	p.execOnce.Do(func() {
		p.execCache = build()
		p.execBuilt.Store(true)
	})
	return p.execCache
}

// ExecCached returns the predecoded execution image if one has been built,
// without forcing the build (nil otherwise). Size estimators use it to
// account for the image only when a run has actually paid for it.
func (p *Program) ExecCached() any {
	if p.execBuilt.Load() {
		return p.execCache
	}
	return nil
}

// MaxReg returns the highest register number named anywhere in the program,
// computed once and cached: executors size their register files from it, and
// a pooled engine must not rescan the whole code array on every query. Code
// must not be mutated after the first call.
func (p *Program) MaxReg() Reg {
	p.maxRegOnce.Do(func() {
		var buf [4]Reg
		for i := range p.Code {
			in := &p.Code[i]
			if d := in.Def(); d > p.maxReg {
				p.maxReg = d
			}
			for _, u := range in.Uses(buf[:0]) {
				if u > p.maxReg {
					p.maxReg = u
				}
			}
		}
	})
	return p.maxReg
}

// Simulated memory layout: distinct stack areas per the WAM/BAM model
// (§4.1), plus a small ball buffer for catch/throw. Word addresses. The
// base addresses are fixed (they are baked into the entry stub as
// immediates); per-run Layout values shrink the usable *size* of each
// area below these defaults, never move the bases.
const (
	HeapBase  = 1 << 20
	HeapSize  = 12 << 20
	EnvBase   = HeapBase + HeapSize
	EnvSize   = 2 << 20
	CPBase    = EnvBase + EnvSize
	CPSize    = 2 << 20
	TrailBase = CPBase + CPSize
	TrailSize = 2 << 20
	PDLBase   = TrailBase + TrailSize
	PDLSize   = 1 << 16
	// BallBase holds the exception state: [BallBase] is the ball-pending
	// flag, [BallBase+1] the ball root word, and the copied ball term
	// follows. Its size is fixed; it is not a growable stack.
	BallBase = PDLBase + PDLSize
	BallSize = 1 << 16
	MemWords = BallBase + BallSize
)

// Layout configures the usable number of words per memory area for one
// run. A zero field means the compile-time default; values are clamped to
// the defaults (bases are fixed, areas can only shrink).
type Layout struct {
	HeapWords  int64
	EnvWords   int64
	CPWords    int64
	TrailWords int64
	PDLWords   int64
}

func clampWords(v, def int64) int64 {
	if v <= 0 || v > def {
		return def
	}
	return v
}

// Limit returns the first word address past the usable part of region r
// under the layout (0 for unknown regions).
func (l Layout) Limit(r Region) uint64 {
	switch r {
	case RegionHeap:
		return HeapBase + uint64(clampWords(l.HeapWords, HeapSize))
	case RegionEnv:
		return EnvBase + uint64(clampWords(l.EnvWords, EnvSize))
	case RegionCP:
		return CPBase + uint64(clampWords(l.CPWords, CPSize))
	case RegionTrail:
		return TrailBase + uint64(clampWords(l.TrailWords, TrailSize))
	case RegionPDL:
		return PDLBase + uint64(clampWords(l.PDLWords, PDLSize))
	case RegionBall:
		return BallBase + BallSize
	}
	return 0
}

// Base returns the first word address of region r (0 for unknown).
func (l Layout) Base(r Region) uint64 {
	switch r {
	case RegionHeap:
		return HeapBase
	case RegionEnv:
		return EnvBase
	case RegionCP:
		return CPBase
	case RegionTrail:
		return TrailBase
	case RegionPDL:
		return PDLBase
	case RegionBall:
		return BallBase
	}
	return 0
}

// RegionOf classifies a word address under the layout: addresses beyond
// an area's configured limit but below its compile-time bound classify as
// unknown, which is what makes shrunken-area stores detectable.
func (l Layout) RegionOf(addr uint64) Region {
	for _, r := range []Region{RegionHeap, RegionEnv, RegionCP, RegionTrail, RegionPDL, RegionBall} {
		if addr >= l.Base(r) && addr < l.Limit(r) {
			return r
		}
	}
	return RegionUnknown
}

// RegionOf classifies a word address under the default layout.
func RegionOf(addr uint64) Region {
	return Layout{}.RegionOf(addr)
}

func regName(r Reg) string {
	switch r {
	case None:
		return "_"
	case RegH:
		return "h"
	case RegESP:
		return "esp"
	case RegE:
		return "e"
	case RegB:
		return "b"
	case RegTR:
		return "tr"
	case RegCP:
		return "cp"
	case RegRV:
		return "rv"
	case RegEB:
		return "eb"
	}
	if r >= FirstArg && r < FirstArg+NumArgRegs {
		return fmt.Sprintf("a%d", r-FirstArg)
	}
	return fmt.Sprintf("t%d", r-FirstTemp)
}

var opNames = map[Op]string{
	Nop: "nop", Ld: "ld", St: "st", Add: "add", Sub: "sub", Mul: "mul",
	Div: "div", Mod: "mod", And: "and", Or: "or", Xor: "xor", Shl: "shl",
	Shr: "shr", MkTag: "mktag", GetTag: "gettag", Lea: "lea", Mov: "mov", MovI: "movi",
	BrTag: "brtag", BrCmp: "brcmp", Jmp: "jmp", JmpR: "jmpr", Jsr: "jsr",
	Halt: "halt", SysOp: "sys",
}

// String disassembles the ICI.
func (in *Inst) String() string {
	n := opNames[in.Op]
	switch in.Op {
	case Nop:
		return n
	case Ld:
		return fmt.Sprintf("ld    %s, [%s%+d]", regName(in.D), regName(in.A), in.Imm)
	case St:
		return fmt.Sprintf("st    [%s%+d], %s", regName(in.A), in.Imm, regName(in.B))
	case MkTag:
		return fmt.Sprintf("mktag %s, %s, %s", regName(in.D), regName(in.A), in.Tag)
	case Lea:
		return fmt.Sprintf("lea   %s, %s[%s%+d]", regName(in.D), in.Tag, regName(in.A), in.Imm)
	case GetTag:
		return fmt.Sprintf("gettag %s, %s", regName(in.D), regName(in.A))
	case Mov:
		return fmt.Sprintf("mov   %s, %s", regName(in.D), regName(in.A))
	case MovI:
		return fmt.Sprintf("movi  %s, %s", regName(in.D), in.Word)
	case BrTag:
		return fmt.Sprintf("brtag %s %s %s, @%d", regName(in.A), in.Cond, in.Tag, in.Target)
	case BrCmp:
		if in.HasImm {
			if in.Cond == CondEq || in.Cond == CondNe {
				return fmt.Sprintf("brcmp %s %s %s, @%d", regName(in.A), in.Cond, in.Word, in.Target)
			}
			return fmt.Sprintf("brcmp %s %s %d, @%d", regName(in.A), in.Cond, in.Imm, in.Target)
		}
		return fmt.Sprintf("brcmp %s %s %s, @%d", regName(in.A), in.Cond, regName(in.B), in.Target)
	case Jmp:
		return fmt.Sprintf("jmp   @%d", in.Target)
	case JmpR:
		return fmt.Sprintf("jmpr  %s", regName(in.A))
	case Jsr:
		return fmt.Sprintf("jsr   %s, @%d", regName(in.D), in.Target)
	case Halt:
		return fmt.Sprintf("halt  %d", in.Imm)
	case SysOp:
		return fmt.Sprintf("sys   %s %s", in.Sys, regName(in.A))
	default:
		if in.HasImm {
			return fmt.Sprintf("%-5s %s, %s, %d", n, regName(in.D), regName(in.A), in.Imm)
		}
		return fmt.Sprintf("%-5s %s, %s, %s", n, regName(in.D), regName(in.A), regName(in.B))
	}
}

// Listing renders the whole program with labels.
func (p *Program) Listing() string {
	out := ""
	for pc := range p.Code {
		if lbl, ok := p.Names[pc]; ok {
			out += lbl + ":\n"
		}
		out += fmt.Sprintf("  %4d  %s\n", pc, p.Code[pc].String())
	}
	return out
}
