package ic

import (
	"strings"
	"testing"
	"testing/quick"

	"symbol/internal/word"
)

func TestCondInvertInvolution(t *testing.T) {
	f := func(c uint8) bool {
		cond := Cond(c % 6)
		return cond.Invert().Invert() == cond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCondInvertPartition(t *testing.T) {
	// For every condition and every pair of comparands, exactly one of
	// cond/invert(cond) holds.
	eval := func(c Cond, a, b int64) bool {
		switch c {
		case CondEq:
			return a == b
		case CondNe:
			return a != b
		case CondLt:
			return a < b
		case CondLe:
			return a <= b
		case CondGt:
			return a > b
		default:
			return a >= b
		}
	}
	f := func(c uint8, a, b int64) bool {
		cond := Cond(c % 6)
		return eval(cond, a, b) != eval(cond.Invert(), a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClasses(t *testing.T) {
	cases := map[Op]Class{
		Ld: ClassMemory, St: ClassMemory,
		Add: ClassALU, MkTag: ClassALU, Lea: ClassALU, GetTag: ClassALU,
		Mov: ClassMove, MovI: ClassMove,
		BrTag: ClassControl, BrCmp: ClassControl, Jmp: ClassControl,
		JmpR: ClassControl, Jsr: ClassControl, Halt: ClassControl,
		SysOp: ClassSys,
	}
	for op, want := range cases {
		in := Inst{Op: op}
		if got := in.Class(); got != want {
			t.Errorf("%v: class %v, want %v", op, got, want)
		}
	}
}

func TestUsesAndDef(t *testing.T) {
	type tc struct {
		in   Inst
		uses []Reg
		def  Reg
	}
	cases := []tc{
		{Inst{Op: Ld, D: 5, A: 1}, []Reg{1}, 5},
		{Inst{Op: St, A: 1, B: 2}, []Reg{1, 2}, None},
		{Inst{Op: Add, D: 3, A: 1, B: 2}, []Reg{1, 2}, 3},
		{Inst{Op: Add, D: 3, A: 1, HasImm: true}, []Reg{1}, 3},
		{Inst{Op: Mov, D: 3, A: 1}, []Reg{1}, 3},
		{Inst{Op: MovI, D: 3}, nil, 3},
		{Inst{Op: BrCmp, A: 1, B: 2}, []Reg{1, 2}, None},
		{Inst{Op: BrTag, A: 1}, []Reg{1}, None},
		{Inst{Op: Jmp}, nil, None},
		{Inst{Op: Jsr, D: RegCP}, nil, RegCP},
		{Inst{Op: JmpR, A: RegCP}, []Reg{RegCP}, None},
		{Inst{Op: SysOp, Sys: SysCompare, A: 1, B: 2}, []Reg{1, 2}, RegRV},
		{Inst{Op: SysOp, Sys: SysNl, A: None, B: None}, nil, None},
	}
	for _, c := range cases {
		got := c.in.Uses(nil)
		if len(got) != len(c.uses) {
			t.Errorf("%s: uses %v, want %v", c.in.String(), got, c.uses)
			continue
		}
		for i := range got {
			if got[i] != c.uses[i] {
				t.Errorf("%s: uses %v, want %v", c.in.String(), got, c.uses)
			}
		}
		if d := c.in.Def(); d != c.def {
			t.Errorf("%s: def %v, want %v", c.in.String(), d, c.def)
		}
	}
}

func TestRegionOf(t *testing.T) {
	cases := map[uint64]Region{
		HeapBase:      RegionHeap,
		HeapBase + 10: RegionHeap,
		EnvBase:       RegionEnv,
		CPBase:        RegionCP,
		TrailBase:     RegionTrail,
		PDLBase:       RegionPDL,
		0:             RegionUnknown,
	}
	for addr, want := range cases {
		if got := RegionOf(addr); got != want {
			t.Errorf("RegionOf(%#x) = %v, want %v", addr, got, want)
		}
	}
}

func TestRegionsDisjoint(t *testing.T) {
	// Region boundaries must not overlap.
	bounds := [][2]uint64{
		{HeapBase, HeapBase + HeapSize},
		{EnvBase, EnvBase + EnvSize},
		{CPBase, CPBase + CPSize},
		{TrailBase, TrailBase + TrailSize},
		{PDLBase, PDLBase + PDLSize},
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i][0] < bounds[i-1][1] {
			t.Errorf("region %d overlaps region %d", i, i-1)
		}
	}
	if MemWords < PDLBase+PDLSize {
		t.Error("MemWords must cover all regions")
	}
}

func TestDisassembly(t *testing.T) {
	cases := map[string]Inst{
		"ld    t0, [h+2]":     {Op: Ld, D: FirstTemp, A: RegH, Imm: 2},
		"st    [e+3], a0":     {Op: St, A: RegE, Imm: 3, B: FirstArg},
		"brtag a1 eq lst, @7": {Op: BrTag, A: FirstArg + 1, Cond: CondEq, Tag: word.Lst, Target: 7},
		"jmp   @3":            {Op: Jmp, Target: 3},
		"jsr   cp, @9":        {Op: Jsr, D: RegCP, Target: 9},
		"halt  1":             {Op: Halt, Imm: 1},
		"lea   t0, lst[h+0]":  {Op: Lea, D: FirstTemp, A: RegH, Tag: word.Lst},
		"add   t0, t0, 4":     {Op: Add, D: FirstTemp, A: FirstTemp, HasImm: true, Imm: 4},
		"brcmp tr le t1, @0":  {Op: BrCmp, A: RegTR, Cond: CondLe, B: FirstTemp + 1},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("got %q, want %q", got, want)
		}
	}
}

func TestProgramListing(t *testing.T) {
	p := &Program{
		Code: []Inst{
			{Op: MovI, D: RegH},
			{Op: Halt},
		},
		Names: map[int]string{0: "$start"},
	}
	l := p.Listing()
	if !strings.Contains(l, "$start:") || !strings.Contains(l, "halt") {
		t.Errorf("listing incomplete:\n%s", l)
	}
}
