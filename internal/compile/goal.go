package compile

import (
	"fmt"

	"symbol/internal/bam"
	"symbol/internal/fault"
	"symbol/internal/ic"
	"symbol/internal/term"
	"symbol/internal/word"
)

// compileGoal emits code for one flat body goal. last reports whether this
// is the final goal (enabling last-call optimization); cutY is the
// environment slot holding the cut barrier for deep cuts (-1 if none).
func (ctx *cctx) compileGoal(g term.Term, last bool, cutY int) error {
	c := ctx.c
	switch x := g.(type) {
	case term.Atom:
		switch x {
		case "true":
			return nil
		case "fail", "false":
			c.emit(bam.Instr{Op: bam.FailI})
			return nil
		case "!":
			return ctx.compileCut(cutY)
		case "nl":
			c.emit(bam.Instr{Op: bam.Sys, Sys: ic.SysNl, Reg1: ic.None, Reg2: ic.None})
			return nil
		case "halt":
			c.emit(bam.Instr{Op: bam.HaltI, N: 0})
			return nil
		}
		return ctx.compileCall(term.Indicator{Name: string(x)}, nil, last)
	case term.Int:
		return fmt.Errorf("integer %d cannot be called", int64(x))
	case *term.Compound:
		pi := term.Indicator{Name: x.Functor, Arity: len(x.Args)}
		switch pi {
		case term.Indicator{Name: "=", Arity: 2}:
			return ctx.compileUnifyGoal(x.Args[0], x.Args[1])
		case term.Indicator{Name: "is", Arity: 2}:
			return ctx.compileIs(x.Args[0], x.Args[1])
		case term.Indicator{Name: "<", Arity: 2}:
			return ctx.compileArithCmp(x.Args[0], x.Args[1], ic.CondLt)
		case term.Indicator{Name: ">", Arity: 2}:
			return ctx.compileArithCmp(x.Args[0], x.Args[1], ic.CondGt)
		case term.Indicator{Name: "=<", Arity: 2}:
			return ctx.compileArithCmp(x.Args[0], x.Args[1], ic.CondLe)
		case term.Indicator{Name: ">=", Arity: 2}:
			return ctx.compileArithCmp(x.Args[0], x.Args[1], ic.CondGe)
		case term.Indicator{Name: "=:=", Arity: 2}:
			return ctx.compileArithCmp(x.Args[0], x.Args[1], ic.CondEq)
		case term.Indicator{Name: "=\\=", Arity: 2}:
			return ctx.compileArithCmp(x.Args[0], x.Args[1], ic.CondNe)
		case term.Indicator{Name: "==", Arity: 2}:
			return ctx.compileStructEq(x.Args[0], x.Args[1], true)
		case term.Indicator{Name: "\\==", Arity: 2}:
			return ctx.compileStructEq(x.Args[0], x.Args[1], false)
		case term.Indicator{Name: "var", Arity: 1}:
			return ctx.compileTypeTest(x.Args[0], word.Ref, true)
		case term.Indicator{Name: "nonvar", Arity: 1}:
			return ctx.compileTypeTest(x.Args[0], word.Ref, false)
		case term.Indicator{Name: "atom", Arity: 1}:
			return ctx.compileTypeTest(x.Args[0], word.Atom, true)
		case term.Indicator{Name: "integer", Arity: 1}:
			return ctx.compileTypeTest(x.Args[0], word.Int, true)
		case term.Indicator{Name: "atomic", Arity: 1}:
			return ctx.compileAtomic(x.Args[0])
		case term.Indicator{Name: "write", Arity: 1}:
			r := ctx.putReg(x.Args[0])
			c.emit(bam.Instr{Op: bam.Sys, Sys: ic.SysWrite, Reg1: r, Reg2: ic.None})
			return nil
		case term.Indicator{Name: "arg", Arity: 3}:
			return ctx.compileArg(x.Args[0], x.Args[1], x.Args[2])
		case term.Indicator{Name: "functor", Arity: 3}:
			return ctx.compileFunctor(x.Args[0], x.Args[1], x.Args[2])
		case term.Indicator{Name: "=..", Arity: 2}:
			return ctx.compileUniv(x.Args[0], x.Args[1])
		case term.Indicator{Name: "call", Arity: 1}:
			return ctx.compileMetaCall(x.Args[0], last)
		case term.Indicator{Name: "catch", Arity: 3}:
			return ctx.compileCatch(x.Args[0], x.Args[1], x.Args[2], last)
		case term.Indicator{Name: "throw", Arity: 1}:
			return ctx.compileThrow(x.Args[0])
		}
		return ctx.compileCall(pi, x.Args, last)
	}
	return fmt.Errorf("cannot compile goal %s", g)
}

func (ctx *cctx) compileCut(cutY int) error {
	c := ctx.c
	if ctx.p.cutReg == 0 {
		return fmt.Errorf("cut without barrier register")
	}
	if cutY >= 0 {
		// Deep cut: barrier lives in the environment.
		t := c.newTemp()
		c.emit(bam.Instr{Op: bam.GetY, Dst: t, N: int64(cutY)})
		c.emit(bam.Instr{Op: bam.CutTo, Src: bam.Reg(t)})
		return nil
	}
	c.emit(bam.Instr{Op: bam.CutTo, Src: bam.Reg(ctx.p.cutReg)})
	return nil
}

// compileCall loads argument registers and emits call or execute.
func (ctx *cctx) compileCall(pi term.Indicator, args []term.Term, last bool) error {
	c := ctx.c
	if pi.Arity > 12 {
		return fmt.Errorf("%s: arity above 12 is not supported", pi)
	}
	if _, ok := c.preds[pi]; !ok {
		c.undefined[pi] = true
		c.emit(bam.Instr{Op: bam.FailI})
		return nil
	}
	vals := make([]bam.Val, len(args))
	for i, a := range args {
		vals[i] = ctx.compilePut(a)
	}
	// Argument registers may appear as sources (head variables); copy them
	// to temporaries so the assignment below is a safe parallel move.
	for i, v := range vals {
		if v.K == bam.VReg && v.R >= ic.FirstArg && v.R < ic.FirstArg+ic.NumArgRegs {
			t := c.newTemp()
			c.emit(bam.Instr{Op: bam.Move, Dst: t, Src: v})
			vals[i] = bam.Reg(t)
		}
	}
	for i, v := range vals {
		c.emit(bam.Instr{Op: bam.Move, Dst: ic.ArgReg(i), Src: v})
	}
	if last {
		if ctx.hasEnv {
			c.emit(bam.Instr{Op: bam.Deallocate})
		}
		c.emit(bam.Instr{Op: bam.Exec, Name: pi.Name, Arity: pi.Arity})
	} else {
		c.emit(bam.Instr{Op: bam.Call, Name: pi.Name, Arity: pi.Arity})
		ctx.invalidateTemps()
	}
	return nil
}

// compileUnifyGoal compiles X = Y, specializing the common cases where one
// side is a first-occurrence variable (pure assignment).
func (ctx *cctx) compileUnifyGoal(a, b term.Term) error {
	c := ctx.c
	if v, ok := a.(*term.Var); ok && !ctx.loc(v).init {
		ctx.record(v, ctx.putReg(b))
		return nil
	}
	if v, ok := b.(*term.Var); ok && !ctx.loc(v).init {
		ctx.record(v, ctx.putReg(a))
		return nil
	}
	// If one side is already held in a register, reuse the specialized
	// head-unification code generator against the other side.
	if v, ok := a.(*term.Var); ok {
		return ctx.compileGet(ctx.getVal(v), b)
	}
	if v, ok := b.(*term.Var); ok {
		return ctx.compileGet(ctx.getVal(v), a)
	}
	r1 := ctx.putReg(a)
	r2 := ctx.putReg(b)
	c.emit(bam.Instr{Op: bam.UnifyCall, Reg1: r1, Reg2: r2})
	ctx.afterUnifyCall()
	return nil
}

// evalArith compiles an arithmetic expression to a register holding an
// integer word, with optional runtime tag checks on variable operands.
func (ctx *cctx) evalArith(t term.Term) (bam.Val, error) {
	c := ctx.c
	switch x := t.(type) {
	case term.Int:
		return bam.IntV(int64(x)), nil
	case *term.Var:
		d := ctx.derefVar(x)
		if c.opts.ArithChecks {
			c.emit(bam.Instr{Op: bam.BrTagI, Reg1: d, Cond: ic.CondNe, Tag: word.Int, L: 0})
		}
		return bam.Reg(d), nil
	case *term.Compound:
		var op bam.AOp
		switch {
		case x.Functor == "-" && len(x.Args) == 1:
			v, err := ctx.evalArith(x.Args[0])
			if err != nil {
				return bam.Val{}, err
			}
			r := c.newTemp()
			c.emit(bam.Instr{Op: bam.Arith, Dst: r, AOp: bam.ASub, V1: bam.IntV(0), V2: v})
			return bam.Reg(r), nil
		case x.Functor == "+" && len(x.Args) == 1:
			return ctx.evalArith(x.Args[0])
		case len(x.Args) == 2:
			switch x.Functor {
			case "+":
				op = bam.AAdd
			case "-":
				op = bam.ASub
			case "*":
				op = bam.AMul
			case "//", "/":
				op = bam.ADiv
			case "mod":
				op = bam.AMod
			case "/\\":
				op = bam.AAnd
			case "\\/":
				op = bam.AOr
			case "xor":
				op = bam.AXor
			case "<<":
				op = bam.AShl
			case ">>":
				op = bam.AShr
			default:
				return bam.Val{}, fmt.Errorf("unknown arithmetic functor %s/2", x.Functor)
			}
			v1, err := ctx.evalArith(x.Args[0])
			if err != nil {
				return bam.Val{}, err
			}
			v2, err := ctx.evalArith(x.Args[1])
			if err != nil {
				return bam.Val{}, err
			}
			if (op == bam.ADiv || op == bam.AMod) && c.opts.ArithChecks {
				// A zero divisor is a typed machine fault, catchable as the
				// zero_divisor ball; the raw Div/Mod ICIs never trap, so the
				// check must happen here, in architectural code.
				if v2.K == bam.VInt {
					if v2.N == 0 {
						c.emit(bam.Instr{Op: bam.RaiseFault, N: int64(fault.ZeroDivide)})
					}
				} else {
					lok := c.newLabel()
					c.emit(bam.Instr{Op: bam.BrEq, V1: v2, Cond: ic.CondNe, V2: bam.IntV(0), L: lok})
					c.emit(bam.Instr{Op: bam.RaiseFault, N: int64(fault.ZeroDivide)})
					c.emit(bam.Instr{Op: bam.Lbl, L: lok})
				}
			}
			r := c.newTemp()
			c.emit(bam.Instr{Op: bam.Arith, Dst: r, AOp: op, V1: v1, V2: v2})
			return bam.Reg(r), nil
		}
	}
	return bam.Val{}, fmt.Errorf("cannot evaluate %s arithmetically", t)
}

// compileIs compiles Lhs is Rhs.
func (ctx *cctx) compileIs(lhs, rhs term.Term) error {
	c := ctx.c
	v, err := ctx.evalArith(rhs)
	if err != nil {
		return err
	}
	reg := func() ic.Reg {
		if v.K == bam.VReg {
			return v.R
		}
		r := c.newTemp()
		c.emit(bam.Instr{Op: bam.Move, Dst: r, Src: v})
		return r
	}
	if x, ok := lhs.(*term.Var); ok {
		l := ctx.loc(x)
		if !l.init {
			ctx.record(x, reg())
			return nil
		}
		// Bound or aliased: dereference; bind if unbound, else compare.
		d := ctx.derefVar(x)
		lBind, lNext := c.newLabel(), c.newLabel()
		c.emit(bam.Instr{Op: bam.BrTagI, Reg1: d, Cond: ic.CondEq, Tag: word.Ref, L: lBind})
		c.emit(bam.Instr{Op: bam.BrEq, V1: bam.Reg(d), Cond: ic.CondNe, V2: v, L: 0})
		c.emit(bam.Instr{Op: bam.Jump, L: lNext})
		c.emit(bam.Instr{Op: bam.Lbl, L: lBind})
		c.emit(bam.Instr{Op: bam.Bind, Reg1: d, Src: v})
		c.emit(bam.Instr{Op: bam.Lbl, L: lNext})
		return nil
	}
	if n, ok := lhs.(term.Int); ok {
		c.emit(bam.Instr{Op: bam.BrEq, V1: v, Cond: ic.CondNe, V2: bam.IntV(int64(n)), L: 0})
		return nil
	}
	return fmt.Errorf("invalid left side of is/2: %s", lhs)
}

// compileArithCmp compiles an arithmetic comparison; the goal fails unless
// lhs cond rhs holds.
func (ctx *cctx) compileArithCmp(lhs, rhs term.Term, cond ic.Cond) error {
	c := ctx.c
	v1, err := ctx.evalArith(lhs)
	if err != nil {
		return err
	}
	v2, err := ctx.evalArith(rhs)
	if err != nil {
		return err
	}
	c.emit(bam.Instr{Op: bam.BrEq, V1: v1, Cond: cond.Invert(), V2: v2, L: 0})
	return nil
}

// compileStructEq compiles ==/2 (wantEqual) and \==/2 via the compare
// runtime escape.
func (ctx *cctx) compileStructEq(a, b term.Term, wantEqual bool) error {
	c := ctx.c
	r1 := ctx.putReg(a)
	r2 := ctx.putReg(b)
	c.emit(bam.Instr{Op: bam.Sys, Sys: ic.SysCompare, Reg1: r1, Reg2: r2})
	cond := ic.CondNe // == : fail when compare != 0
	if !wantEqual {
		cond = ic.CondEq
	}
	c.emit(bam.Instr{Op: bam.BrEq, V1: bam.Reg(ic.RegRV), Cond: cond, V2: bam.IntV(0), L: 0})
	return nil
}

// compileTypeTest compiles var/nonvar/atom/integer tests. want reports
// whether the tag must match (true) or must not match (false).
func (ctx *cctx) compileTypeTest(t term.Term, tag word.Tag, want bool) error {
	c := ctx.c
	v, ok := t.(*term.Var)
	if !ok {
		// Constant argument: decide statically.
		static := false
		switch t.(type) {
		case term.Atom:
			static = tag == word.Atom
		case term.Int:
			static = tag == word.Int
		case *term.Compound:
			static = false
		}
		if static != want {
			c.emit(bam.Instr{Op: bam.FailI})
		}
		return nil
	}
	d := ctx.derefVar(v)
	cond := ic.CondNe // fail if tag differs
	if !want {
		cond = ic.CondEq
	}
	c.emit(bam.Instr{Op: bam.BrTagI, Reg1: d, Cond: cond, Tag: tag, L: 0})
	return nil
}

// compileAtomic compiles atomic/1: succeeds for atoms and integers.
func (ctx *cctx) compileAtomic(t term.Term) error {
	c := ctx.c
	v, ok := t.(*term.Var)
	if !ok {
		switch t.(type) {
		case term.Atom, term.Int:
			return nil
		}
		c.emit(bam.Instr{Op: bam.FailI})
		return nil
	}
	d := ctx.derefVar(v)
	ok1 := c.newLabel()
	c.emit(bam.Instr{Op: bam.BrTagI, Reg1: d, Cond: ic.CondEq, Tag: word.Atom, L: ok1})
	c.emit(bam.Instr{Op: bam.BrTagI, Reg1: d, Cond: ic.CondNe, Tag: word.Int, L: 0})
	c.emit(bam.Instr{Op: bam.Lbl, L: ok1})
	return nil
}
