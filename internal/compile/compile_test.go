package compile

import (
	"strings"
	"testing"

	"symbol/internal/parse"
)

func compileSrc(t *testing.T, src string) string {
	t.Helper()
	clauses, err := parse.All(src)
	if err != nil {
		t.Fatal(err)
	}
	c := New(DefaultOptions())
	if err := c.AddProgram(clauses); err != nil {
		t.Fatal(err)
	}
	u, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return u.Listing()
}

func countOccurrences(s, sub string) int { return strings.Count(s, sub) }

func TestIndexingAvoidsChoicePoints(t *testing.T) {
	// Distinct atom selectors: the dispatch must use switch + compares and
	// no try instruction at all.
	l := compileSrc(t, `
color(red, 1). color(green, 2). color(blue, 3).
main :- color(green, _).
`)
	sec := section(l, "procedure color/2")
	if !strings.Contains(sec, "switch") {
		t.Error("first-argument switch missing")
	}
	// Exactly one try chain may exist: the unbound-argument entry. The
	// three constant-selector entries must dispatch with direct jumps.
	if n := countOccurrences(sec, "\ttry "); n != 1 {
		t.Errorf("expected one try (var entry only), got %d:\n%s", n, sec)
	}
}

func TestVarHeadsUseTryChain(t *testing.T) {
	l := compileSrc(t, `
p(X) :- X = 1.
p(X) :- X = 2.
p(X) :- X = 3.
main :- p(_).
`)
	sec := section(l, "procedure p/1")
	if countOccurrences(sec, "\ttry ") != 1 {
		t.Errorf("expected one try:\n%s", sec)
	}
	if countOccurrences(sec, "\tretry ") != 1 || countOccurrences(sec, "\ttrust") != 1 {
		t.Errorf("expected retry+trust chain:\n%s", sec)
	}
}

func TestMixedIndexSharesVarClauses(t *testing.T) {
	// A var-headed clause is a candidate in every selector class.
	l := compileSrc(t, `
p(a, 1).
p(_, 2).
p(b, 3).
main :- p(a, _).
`)
	sec := section(l, "procedure p/2")
	// The atom 'a' chain must include the var clause: a try chain of 2.
	if !strings.Contains(sec, "try ") {
		t.Errorf("selector sharing lost:\n%s", sec)
	}
}

func TestCutEmitsBarrier(t *testing.T) {
	l := compileSrc(t, `
f(X) :- X > 0, !.
f(_).
main :- f(1).
`)
	sec := section(l, "procedure f/1")
	if !strings.Contains(sec, "save_b") {
		t.Errorf("cut barrier not captured:\n%s", sec)
	}
	if !strings.Contains(sec, "cut ") {
		t.Errorf("cut not emitted:\n%s", sec)
	}
}

func TestDeepCutUsesEnvironment(t *testing.T) {
	l := compileSrc(t, `
p(1).
g(X) :- p(X), !, p(X).
main :- g(_).
`)
	sec := section(l, "procedure g/1")
	if !strings.Contains(sec, "allocate") {
		t.Errorf("deep cut needs an environment:\n%s", sec)
	}
	if !strings.Contains(sec, "puty") || !strings.Contains(sec, "gety") {
		t.Errorf("deep cut barrier must live in a permanent slot:\n%s", sec)
	}
}

func TestLastCallOptimization(t *testing.T) {
	l := compileSrc(t, `
loop(0).
loop(N) :- M is N-1, loop(M).
main :- loop(3).
`)
	sec := section(l, "procedure loop/1")
	if !strings.Contains(sec, "execute loop/1") {
		t.Errorf("tail call must use execute:\n%s", sec)
	}
	if strings.Contains(sec, "call loop/1") {
		t.Errorf("tail call compiled as call:\n%s", sec)
	}
}

func TestEnvironmentOnlyWhenNeeded(t *testing.T) {
	l := compileSrc(t, `
q(1).
chain(X) :- q(X).
main :- chain(_).
`)
	sec := section(l, "procedure chain/1")
	if strings.Contains(sec, "allocate") {
		t.Errorf("single tail call needs no environment:\n%s", sec)
	}
}

func TestControlConstructsBecomeAux(t *testing.T) {
	l := compileSrc(t, `
p(1).
main :- ( p(X) -> X = 1 ; true ).
`)
	if !strings.Contains(l, "procedure $aux1") {
		t.Errorf("if-then-else must compile to an auxiliary predicate:\n%s", l)
	}
}

func TestAuxArgumentsAreSharedVars(t *testing.T) {
	clauses, err := parse.All(`
p(1).
main :- p(X), \+ p(X), p(X).
`)
	if err != nil {
		t.Fatal(err)
	}
	c := New(DefaultOptions())
	if err := c.AddProgram(clauses); err != nil {
		t.Fatal(err)
	}
	u, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(u.Listing(), "procedure $aux1/1") {
		t.Errorf("negation over a shared variable must pass it:\n%s", u.Listing())
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		`main :- foo(A,B,C,D,E,F,G,H,I,J,K,L,M).`, // arity > 12 (also undefined, but arity checked first)
		`main :- 3.`,           // integer goal
		`main :- X is a+1.`,    // non-numeric arithmetic
		`main :- Y is 1 ** 2.`, // unsupported functor
	}
	for _, src := range cases {
		clauses, err := parse.All(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		c := New(DefaultOptions())
		err = c.AddProgram(clauses)
		if err == nil {
			_, err = c.Compile()
		}
		if err == nil {
			t.Errorf("expected compile error for %q", src)
		}
	}
	// Missing main/0.
	c := New(DefaultOptions())
	if _, err := c.Compile(); err == nil {
		t.Error("expected error for missing main/0")
	}
	// Builtin redefinition.
	clauses, _ := parse.All(`is(X, X).`)
	c = New(DefaultOptions())
	if err := c.AddProgram(clauses); err == nil {
		t.Error("expected error redefining is/2")
	}
}

func TestUndefinedTracking(t *testing.T) {
	clauses, _ := parse.All(`main :- ghost(1), phantom.`)
	c := New(DefaultOptions())
	if err := c.AddProgram(clauses); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Compile(); err != nil {
		t.Fatal(err)
	}
	u := c.Undefined()
	if len(u) != 2 || u[0].String() != "ghost/1" && u[1].String() != "ghost/1" {
		t.Errorf("undefined = %v", u)
	}
}

// section extracts one procedure's listing.
func section(listing, header string) string {
	i := strings.Index(listing, header)
	if i < 0 {
		return ""
	}
	rest := listing[i+len(header):]
	j := strings.Index(rest, "procedure ")
	if j < 0 {
		return rest
	}
	return rest[:j]
}
