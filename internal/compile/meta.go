package compile

import (
	"sort"

	"symbol/internal/bam"
	"symbol/internal/ic"
	"symbol/internal/term"
)

// metaName is the synthesized dispatcher behind call/1.
const metaName = "$meta"

// emitMetaDispatcher generates $meta/1: dereference the goal, dispatch on
// its functor over every predicate defined in the program, load the
// argument registers from the structure, and tail-call the predicate. It is
// the runtime half of call/1 — a plain compare ladder plus loads, in the
// same primitive-operation style as the rest of the BAM code.
func (c *Compiler) emitMetaDispatcher() {
	c.emit(bam.Instr{Op: bam.Proc, Name: metaName, Arity: 1})
	d0 := c.newTemp()
	c.emit(bam.Instr{Op: bam.Deref, Dst: d0, Src: bam.Reg(ic.ArgReg(0))})

	lAtm, lStr := c.newLabel(), c.newLabel()
	c.emit(bam.Instr{Op: bam.SwitchTag, Reg1: d0,
		LVar: 0, LInt: 0, LAtm: lAtm, LLst: 0, LStr: lStr})

	// Deterministic dispatch order.
	pis := make([]term.Indicator, len(c.order))
	copy(pis, c.order)
	sort.Slice(pis, func(i, j int) bool {
		if pis[i].Name != pis[j].Name {
			return pis[i].Name < pis[j].Name
		}
		return pis[i].Arity < pis[j].Arity
	})

	// Zero-arity goals: compare the atom, tail-call.
	c.emit(bam.Instr{Op: bam.Lbl, L: lAtm})
	for _, pi := range pis {
		if pi.Arity != 0 || pi.Name == metaName {
			continue
		}
		miss := c.newLabel()
		c.emit(bam.Instr{Op: bam.BrEq, V1: bam.Reg(d0), Cond: ic.CondNe,
			V2: bam.AtomV(pi.Name), L: miss})
		c.emit(bam.Instr{Op: bam.Exec, Name: pi.Name, Arity: 0})
		c.emit(bam.Instr{Op: bam.Lbl, L: miss})
	}
	c.emit(bam.Instr{Op: bam.FailI})

	// Compound goals: compare the functor cell, load arguments, tail-call.
	c.emit(bam.Instr{Op: bam.Lbl, L: lStr})
	f := c.newTemp()
	c.emit(bam.Instr{Op: bam.LoadM, Dst: f, Reg1: d0, N: 0})
	for _, pi := range pis {
		if pi.Arity == 0 || pi.Arity > 12 || pi.Name == metaName {
			continue
		}
		miss := c.newLabel()
		c.atoms.Intern(pi.Name)
		c.emit(bam.Instr{Op: bam.BrEq, V1: bam.Reg(f), Cond: ic.CondNe,
			V2: bam.FunV(pi.Name, pi.Arity), L: miss})
		for i := 0; i < pi.Arity; i++ {
			c.emit(bam.Instr{Op: bam.LoadM, Dst: ic.ArgReg(i), Reg1: d0, N: int64(i + 1)})
		}
		c.emit(bam.Instr{Op: bam.Exec, Name: pi.Name, Arity: pi.Arity})
		c.emit(bam.Instr{Op: bam.Lbl, L: miss})
	}
	// catch/3 and throw/1 are runtime routines, not compiled predicates, but
	// remain callable as metacall goals.
	for _, b := range []struct {
		name  string
		rt    string
		arity int
	}{{"catch", "$catch", 3}, {"throw", "$throw", 1}} {
		miss := c.newLabel()
		c.atoms.Intern(b.name)
		c.emit(bam.Instr{Op: bam.BrEq, V1: bam.Reg(f), Cond: ic.CondNe,
			V2: bam.FunV(b.name, b.arity), L: miss})
		for i := 0; i < b.arity; i++ {
			c.emit(bam.Instr{Op: bam.LoadM, Dst: ic.ArgReg(i), Reg1: d0, N: int64(i + 1)})
		}
		c.emit(bam.Instr{Op: bam.Exec, Name: b.rt, Arity: b.arity})
		c.emit(bam.Instr{Op: bam.Lbl, L: miss})
	}
	c.emit(bam.Instr{Op: bam.FailI})
}

// compileMetaCall compiles call(G): load the goal term and invoke the
// dispatcher. Ends a chunk like any user call.
func (ctx *cctx) compileMetaCall(g term.Term, last bool) error {
	c := ctx.c
	c.usedMeta = true
	v := ctx.compilePut(g)
	r := ctx.valReg(v)
	// Avoid reading a clobbered argument register during the move.
	if r >= ic.FirstArg && r < ic.FirstArg+ic.NumArgRegs {
		t := c.newTemp()
		c.emit(bam.Instr{Op: bam.Move, Dst: t, Src: bam.Reg(r)})
		r = t
	}
	c.emit(bam.Instr{Op: bam.Move, Dst: ic.ArgReg(0), Src: bam.Reg(r)})
	if last {
		if ctx.hasEnv {
			c.emit(bam.Instr{Op: bam.Deallocate})
		}
		c.emit(bam.Instr{Op: bam.Exec, Name: metaName, Arity: 1})
	} else {
		c.emit(bam.Instr{Op: bam.Call, Name: metaName, Arity: 1})
		ctx.invalidateTemps()
	}
	return nil
}
