package compile

import (
	"symbol/internal/bam"
	"symbol/internal/ic"
	"symbol/internal/term"
)

// compileCatch compiles catch(Goal, Catcher, Recovery) into a call to the
// $catch/3 runtime routine, which pushes a handler choice point and runs
// Goal (and, after a matching throw, Recovery) through the metacall
// dispatcher. Both Goal and Recovery therefore require $meta/1.
func (ctx *cctx) compileCatch(goal, catcher, recovery term.Term, last bool) error {
	c := ctx.c
	c.usedMeta = true
	vals := []bam.Val{ctx.compilePut(goal), ctx.compilePut(catcher), ctx.compilePut(recovery)}
	// Argument registers may appear as sources; copy them to temporaries so
	// the assignment below is a safe parallel move (same as compileCall).
	for i, v := range vals {
		if v.K == bam.VReg && v.R >= ic.FirstArg && v.R < ic.FirstArg+ic.NumArgRegs {
			t := c.newTemp()
			c.emit(bam.Instr{Op: bam.Move, Dst: t, Src: v})
			vals[i] = bam.Reg(t)
		}
	}
	for i, v := range vals {
		c.emit(bam.Instr{Op: bam.Move, Dst: ic.ArgReg(i), Src: v})
	}
	if last {
		if ctx.hasEnv {
			c.emit(bam.Instr{Op: bam.Deallocate})
		}
		c.emit(bam.Instr{Op: bam.Exec, Name: "$catch", Arity: 3})
	} else {
		c.emit(bam.Instr{Op: bam.Call, Name: "$catch", Arity: 3})
		ctx.invalidateTemps()
	}
	return nil
}

// compileThrow compiles throw(Ball). $throw/1 never returns, so the call is
// always a tail transfer; code after it in the clause is unreachable.
func (ctx *cctx) compileThrow(ball term.Term) error {
	c := ctx.c
	v := ctx.compilePut(ball)
	r := ctx.valReg(v)
	if r >= ic.FirstArg && r < ic.FirstArg+ic.NumArgRegs {
		t := c.newTemp()
		c.emit(bam.Instr{Op: bam.Move, Dst: t, Src: bam.Reg(r)})
		r = t
	}
	c.emit(bam.Instr{Op: bam.Move, Dst: ic.ArgReg(0), Src: bam.Reg(r)})
	c.emit(bam.Instr{Op: bam.Exec, Name: "$throw", Arity: 1})
	return nil
}
