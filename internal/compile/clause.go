package compile

import (
	"fmt"

	"symbol/internal/bam"
	"symbol/internal/ic"
	"symbol/internal/term"
	"symbol/internal/word"
)

// varLoc tracks where a clause variable currently lives.
type varLoc struct {
	temp  ic.Reg // register valid within the current chunk (None if not)
	deref ic.Reg // cached dereferenced value (None if not)
	y     int    // permanent slot index, -1 for temporaries
	init  bool   // true once the variable has a runtime location
}

// cctx is the per-clause code-generation context.
type cctx struct {
	c       *Compiler
	p       *npred
	locs    map[*term.Var]*varLoc
	perms   map[*term.Var]int
	envSize int
	hasEnv  bool
}

func (c *Compiler) compileClause(p *npred, cl *nclause) error {
	ctx := &cctx{c: c, p: p, locs: map[*term.Var]*varLoc{}}
	ctx.analyzePerms(cl)

	if ctx.hasEnv {
		c.emit(bam.Instr{Op: bam.Allocate, N: int64(ctx.envSize)})
	}
	// The cut barrier captured in the predicate header must survive into
	// later chunks if a cut appears there.
	cutY, cutDeep := ctx.cutSlot(cl)
	if cutDeep {
		c.emit(bam.Instr{Op: bam.PutY, N: int64(cutY), Src: bam.Reg(p.cutReg)})
	}

	// Head unification.
	if h, ok := cl.head.(*term.Compound); ok {
		for i, arg := range h.Args {
			if err := ctx.compileGet(ic.ArgReg(i), arg); err != nil {
				return err
			}
		}
	}

	// Body.
	for gi, g := range cl.goals {
		last := gi == len(cl.goals)-1
		if err := ctx.compileGoal(g, last, cutY); err != nil {
			return err
		}
		if last && isUserCall(g) {
			return nil // tail call emitted; no return needed
		}
	}
	if ctx.hasEnv {
		c.emit(bam.Instr{Op: bam.Deallocate})
	}
	c.emit(bam.Instr{Op: bam.Ret})
	return nil
}

// cutSlot returns the permanent slot reserved for the cut barrier and
// whether the clause needs it (a cut occurring after the first call).
func (ctx *cctx) cutSlot(cl *nclause) (int, bool) {
	chunk := 0
	for _, g := range cl.goals {
		if g == term.Atom("!") && chunk > 0 {
			return ctx.envSize - 1, true
		}
		if isUserCall(g) {
			chunk++
		}
	}
	return -1, false
}

// analyzePerms performs WAM-style permanent-variable analysis: a variable
// that occurs in more than one chunk (chunks are separated by user calls)
// must live in the environment. A cut after the first call also reserves a
// slot for the barrier.
func (ctx *cctx) analyzePerms(cl *nclause) {
	ctx.perms = map[*term.Var]int{}
	first := map[*term.Var]int{} // var → chunk of first occurrence
	perm := map[*term.Var]bool{}
	chunk := 0
	see := func(t term.Term) {
		for _, v := range term.Vars(t, nil) {
			if f, ok := first[v]; ok {
				if f != chunk {
					perm[v] = true
				}
			} else {
				first[v] = chunk
			}
		}
	}
	see(cl.head)
	needCutSlot := false
	calls := 0
	for _, g := range cl.goals {
		see(g)
		if g == term.Atom("!") && chunk > 0 {
			needCutSlot = true
		}
		if isUserCall(g) {
			chunk++
			calls++
		}
	}
	i := 0
	// Deterministic slot order: first occurrence order over head+goals.
	var order []*term.Var
	order = term.Vars(cl.head, order)
	for _, g := range cl.goals {
		order = term.Vars(g, order)
	}
	for _, v := range order {
		if perm[v] {
			ctx.perms[v] = i
			i++
		}
	}
	if needCutSlot {
		i++ // last slot holds the cut barrier
	}
	ctx.envSize = i
	// An environment is needed if there are permanent variables or more
	// than one call (CP must be saved across non-final calls).
	ctx.hasEnv = i > 0 || calls > 1 || (calls == 1 && !lastGoalIsCall(cl))
}

func lastGoalIsCall(cl *nclause) bool {
	return len(cl.goals) > 0 && isUserCall(cl.goals[len(cl.goals)-1])
}

func isUserCall(g term.Term) bool {
	pi, ok := term.IndicatorOf(g)
	if !ok {
		return false
	}
	// catch/3 compiles to a real call into the runtime ($catch/3), so it is
	// a chunk boundary: variables live across it need environment slots and
	// the continuation pointer must be preserved.
	if pi == (term.Indicator{Name: "catch", Arity: 3}) {
		return true
	}
	return !builtinGoal(pi)
}

func builtinGoal(pi term.Indicator) bool {
	switch pi {
	case term.Indicator{Name: "true"}, term.Indicator{Name: "fail"},
		term.Indicator{Name: "false"}, term.Indicator{Name: "!"},
		term.Indicator{Name: "=", Arity: 2}, term.Indicator{Name: "is", Arity: 2},
		term.Indicator{Name: "<", Arity: 2}, term.Indicator{Name: ">", Arity: 2},
		term.Indicator{Name: "=<", Arity: 2}, term.Indicator{Name: ">=", Arity: 2},
		term.Indicator{Name: "=:=", Arity: 2}, term.Indicator{Name: "=\\=", Arity: 2},
		term.Indicator{Name: "==", Arity: 2}, term.Indicator{Name: "\\==", Arity: 2},
		term.Indicator{Name: "var", Arity: 1}, term.Indicator{Name: "nonvar", Arity: 1},
		term.Indicator{Name: "atom", Arity: 1}, term.Indicator{Name: "integer", Arity: 1},
		term.Indicator{Name: "atomic", Arity: 1},
		term.Indicator{Name: "write", Arity: 1}, term.Indicator{Name: "nl"},
		term.Indicator{Name: "arg", Arity: 3}, term.Indicator{Name: "functor", Arity: 3},
		term.Indicator{Name: "=..", Arity: 2},
		term.Indicator{Name: "catch", Arity: 3}, term.Indicator{Name: "throw", Arity: 1},
		term.Indicator{Name: "halt"}:
		return true
	}
	return false
}

// --- locations ------------------------------------------------------------

func (ctx *cctx) loc(v *term.Var) *varLoc {
	l, ok := ctx.locs[v]
	if !ok {
		y := -1
		if s, ok := ctx.perms[v]; ok {
			y = s
		}
		l = &varLoc{temp: ic.None, deref: ic.None, y: y}
		ctx.locs[v] = l
	}
	return l
}

// invalidateTemps kills every register cached across a call boundary.
func (ctx *cctx) invalidateTemps() {
	for _, l := range ctx.locs {
		l.temp = ic.None
		l.deref = ic.None
	}
}

// record notes that v now lives in r (its first runtime location).
func (ctx *cctx) record(v *term.Var, r ic.Reg) {
	l := ctx.loc(v)
	l.temp = r
	l.deref = ic.None
	l.init = true
	if l.y >= 0 {
		ctx.c.emit(bam.Instr{Op: bam.PutY, N: int64(l.y), Src: bam.Reg(r)})
	}
}

// getVal returns a register holding v's value, materializing a fresh
// unbound heap cell on first occurrence.
func (ctx *cctx) getVal(v *term.Var) ic.Reg {
	l := ctx.loc(v)
	if l.temp != ic.None {
		return l.temp
	}
	if l.init {
		if l.y < 0 {
			panic(fmt.Sprintf("compile: variable %s dead across call boundary", v))
		}
		t := ctx.c.newTemp()
		ctx.c.emit(bam.Instr{Op: bam.GetY, Dst: t, N: int64(l.y)})
		l.temp = t
		return t
	}
	// First occurrence in a construction context: new unbound heap cell.
	r := ctx.c.newTemp()
	ctx.c.emit(bam.Instr{Op: bam.LeaH, Dst: r, Tag: word.Ref, N: 0})
	ctx.c.emit(bam.Instr{Op: bam.StoreH, N: 0, Src: bam.Reg(r)})
	ctx.c.emit(bam.Instr{Op: bam.AddH, N: 1})
	ctx.record(v, r)
	return r
}

// derefVal returns a register holding the dereferenced value of r.
func (ctx *cctx) derefReg(r ic.Reg) ic.Reg {
	d := ctx.c.newTemp()
	ctx.c.emit(bam.Instr{Op: bam.Deref, Dst: d, Src: bam.Reg(r)})
	return d
}

// derefVar returns (and caches) the dereferenced value of a variable.
func (ctx *cctx) derefVar(v *term.Var) ic.Reg {
	l := ctx.loc(v)
	if l.deref != ic.None {
		return l.deref
	}
	d := ctx.derefReg(ctx.getVal(v))
	l.deref = d
	return d
}

// --- head unification (get) ------------------------------------------------

func immOf(c *Compiler, t term.Term) (bam.Val, bool) {
	switch x := t.(type) {
	case term.Atom:
		c.atoms.Intern(string(x))
		return bam.AtomV(string(x)), true
	case term.Int:
		return bam.IntV(int64(x)), true
	}
	return bam.Val{}, false
}

// compileGet emits specialized unification of register reg against head
// term t, with separate read and write paths joined by reconciliation moves
// for variables first bound inside t.
func (ctx *cctx) compileGet(reg ic.Reg, t term.Term) error {
	c := ctx.c
	switch x := t.(type) {
	case *term.Var:
		l := ctx.loc(x)
		if !l.init {
			ctx.record(x, reg)
			return nil
		}
		u := ctx.getVal(x)
		c.emit(bam.Instr{Op: bam.UnifyCall, Reg1: reg, Reg2: u})
		ctx.afterUnifyCall()
		return nil
	case term.Atom, term.Int:
		imm, _ := immOf(c, t)
		d := ctx.derefReg(reg)
		lWrite, lNext := c.newLabel(), c.newLabel()
		c.emit(bam.Instr{Op: bam.BrTagI, Reg1: d, Cond: ic.CondEq, Tag: word.Ref, L: lWrite})
		c.emit(bam.Instr{Op: bam.BrEq, V1: bam.Reg(d), Cond: ic.CondNe, V2: imm, L: 0})
		c.emit(bam.Instr{Op: bam.Jump, L: lNext})
		c.emit(bam.Instr{Op: bam.Lbl, L: lWrite})
		c.emit(bam.Instr{Op: bam.Bind, Reg1: d, Src: imm})
		c.emit(bam.Instr{Op: bam.Lbl, L: lNext})
		return nil
	case *term.Compound:
		return ctx.compileGetCompound(reg, x)
	}
	return fmt.Errorf("cannot unify against %s", t)
}

func (ctx *cctx) compileGetCompound(reg ic.Reg, x *term.Compound) error {
	c := ctx.c
	isList := x.Functor == term.ConsName && len(x.Args) == 2

	// Variables receiving their first binding inside this term need a
	// single post-join location ("phi" temps), because the read and write
	// paths bind them differently.
	var newVars []*term.Var
	for _, v := range term.Vars(x, nil) {
		if !ctx.loc(v).init {
			newVars = append(newVars, v)
		}
	}
	phi := make(map[*term.Var]ic.Reg, len(newVars))
	for _, v := range newVars {
		phi[v] = c.newTemp()
	}
	reconcile := func() {
		for _, v := range newVars {
			c.emit(bam.Instr{Op: bam.Move, Dst: phi[v], Src: bam.Reg(ctx.getVal(v))})
		}
		// Forget the per-path locations.
		for _, v := range newVars {
			l := ctx.loc(v)
			l.init = false
			l.temp = ic.None
			l.deref = ic.None
		}
	}

	d := ctx.derefReg(reg)
	lWrite, lNext := c.newLabel(), c.newLabel()
	c.emit(bam.Instr{Op: bam.BrTagI, Reg1: d, Cond: ic.CondEq, Tag: word.Ref, L: lWrite})

	// Read path.
	if isList {
		c.emit(bam.Instr{Op: bam.BrTagI, Reg1: d, Cond: ic.CondNe, Tag: word.Lst, L: 0})
		h, t := c.newTemp(), c.newTemp()
		c.emit(bam.Instr{Op: bam.LoadM, Dst: h, Reg1: d, N: 0})
		c.emit(bam.Instr{Op: bam.LoadM, Dst: t, Reg1: d, N: 1})
		if err := ctx.compileGet(h, x.Args[0]); err != nil {
			return err
		}
		if err := ctx.compileGet(t, x.Args[1]); err != nil {
			return err
		}
	} else {
		c.emit(bam.Instr{Op: bam.BrTagI, Reg1: d, Cond: ic.CondNe, Tag: word.Str, L: 0})
		f := c.newTemp()
		c.emit(bam.Instr{Op: bam.LoadM, Dst: f, Reg1: d, N: 0})
		c.atoms.Intern(x.Functor)
		c.emit(bam.Instr{Op: bam.BrEq, V1: bam.Reg(f), Cond: ic.CondNe,
			V2: bam.FunV(x.Functor, len(x.Args)), L: 0})
		args := make([]ic.Reg, len(x.Args))
		for i := range x.Args {
			args[i] = c.newTemp()
			c.emit(bam.Instr{Op: bam.LoadM, Dst: args[i], Reg1: d, N: int64(i + 1)})
		}
		for i, a := range x.Args {
			if err := ctx.compileGet(args[i], a); err != nil {
				return err
			}
		}
	}
	reconcile()
	c.emit(bam.Instr{Op: bam.Jump, L: lNext})

	// Write path: construct the term on the heap and bind.
	c.emit(bam.Instr{Op: bam.Lbl, L: lWrite})
	v := ctx.compilePut(x)
	c.emit(bam.Instr{Op: bam.Bind, Reg1: d, Src: v})
	reconcile()

	c.emit(bam.Instr{Op: bam.Lbl, L: lNext})
	// Install the joined locations.
	for _, v := range newVars {
		ctx.record(v, phi[v])
	}
	return nil
}

// afterUnifyCall invalidates cached dereferences: general unification may
// have bound variables whose dereferenced values were cached.
func (ctx *cctx) afterUnifyCall() {
	for _, l := range ctx.locs {
		l.deref = ic.None
	}
}

// --- construction (put) ----------------------------------------------------

// compilePut returns a Val holding term t, building compound terms bottom-up
// on the heap.
func (ctx *cctx) compilePut(t term.Term) bam.Val {
	c := ctx.c
	switch x := t.(type) {
	case term.Atom, term.Int:
		imm, _ := immOf(c, t)
		return imm
	case *term.Var:
		return bam.Reg(ctx.getVal(x))
	case *term.Compound:
		isList := x.Functor == term.ConsName && len(x.Args) == 2
		args := make([]bam.Val, len(x.Args))
		for i, a := range x.Args {
			args[i] = ctx.compilePut(a)
		}
		r := c.newTemp()
		if isList {
			c.emit(bam.Instr{Op: bam.StoreH, N: 0, Src: args[0]})
			c.emit(bam.Instr{Op: bam.StoreH, N: 1, Src: args[1]})
			c.emit(bam.Instr{Op: bam.LeaH, Dst: r, Tag: word.Lst, N: 0})
			c.emit(bam.Instr{Op: bam.AddH, N: 2})
		} else {
			c.atoms.Intern(x.Functor)
			c.emit(bam.Instr{Op: bam.StoreH, N: 0, Src: bam.FunV(x.Functor, len(x.Args))})
			for i := range args {
				c.emit(bam.Instr{Op: bam.StoreH, N: int64(i + 1), Src: args[i]})
			}
			c.emit(bam.Instr{Op: bam.LeaH, Dst: r, Tag: word.Str, N: 0})
			c.emit(bam.Instr{Op: bam.AddH, N: int64(len(x.Args) + 1)})
		}
		return bam.Reg(r)
	}
	panic("unreachable")
}

// putReg is compilePut forced into a register.
func (ctx *cctx) putReg(t term.Term) ic.Reg {
	v := ctx.compilePut(t)
	if v.K == bam.VReg {
		return v.R
	}
	r := ctx.c.newTemp()
	ctx.c.emit(bam.Instr{Op: bam.Move, Dst: r, Src: v})
	return r
}
