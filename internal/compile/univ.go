package compile

import (
	"symbol/internal/bam"
	"symbol/internal/ic"
	"symbol/internal/term"
	"symbol/internal/word"
)

// compileUniv compiles T =.. L ("univ"): decomposition of a bound term into
// [Functor|Args], or construction of a term from such a list. Like
// functor/3 and arg/3 it expands to explicit tag dispatch and heap loops —
// the BAM philosophy of building complex builtins from primitive operations.
func (ctx *cctx) compileUniv(tArg, lArg term.Term) error {
	c := ctx.c
	tReg := ctx.putReg(tArg)
	lReg := ctx.putReg(lArg)
	dT := ctx.derefReg(tReg)

	out := c.newTemp() // the decomposition list (phi across analysis paths)
	lVar, lStr, lLst, lAtomic, lJoin, lEnd := c.newLabel(), c.newLabel(), c.newLabel(), c.newLabel(), c.newLabel(), c.newLabel()

	c.emit(bam.Instr{Op: bam.SwitchTag, Reg1: dT,
		LVar: lVar, LInt: lAtomic, LAtm: lAtomic, LLst: lLst, LStr: lStr})

	// Atomic: T =.. [T].
	c.emit(bam.Instr{Op: bam.Lbl, L: lAtomic})
	c.emit(bam.Instr{Op: bam.StoreH, N: 0, Src: bam.Reg(dT)})
	c.emit(bam.Instr{Op: bam.StoreH, N: 1, Src: bam.AtomV("[]")})
	c.emit(bam.Instr{Op: bam.LeaH, Dst: out, Tag: word.Lst, N: 0})
	c.emit(bam.Instr{Op: bam.AddH, N: 2})
	c.emit(bam.Instr{Op: bam.Jump, L: lJoin})

	// Lists: [H|T0] =.. ['.', H, T0].
	c.emit(bam.Instr{Op: bam.Lbl, L: lLst})
	h := c.newTemp()
	t0 := c.newTemp()
	c.emit(bam.Instr{Op: bam.LoadM, Dst: h, Reg1: dT, N: 0})
	c.emit(bam.Instr{Op: bam.LoadM, Dst: t0, Reg1: dT, N: 1})
	cell2 := c.newTemp()
	c.emit(bam.Instr{Op: bam.StoreH, N: 0, Src: bam.Reg(t0)})
	c.emit(bam.Instr{Op: bam.StoreH, N: 1, Src: bam.AtomV("[]")})
	c.emit(bam.Instr{Op: bam.LeaH, Dst: cell2, Tag: word.Lst, N: 0})
	c.emit(bam.Instr{Op: bam.StoreH, N: 2, Src: bam.Reg(h)})
	c.emit(bam.Instr{Op: bam.StoreH, N: 3, Src: bam.Reg(cell2)})
	cell1 := c.newTemp()
	c.emit(bam.Instr{Op: bam.LeaH, Dst: cell1, Tag: word.Lst, N: 2})
	c.emit(bam.Instr{Op: bam.StoreH, N: 4, Src: bam.AtomV(".")})
	c.emit(bam.Instr{Op: bam.StoreH, N: 5, Src: bam.Reg(cell1)})
	c.emit(bam.Instr{Op: bam.LeaH, Dst: out, Tag: word.Lst, N: 4})
	c.emit(bam.Instr{Op: bam.AddH, N: 6})
	c.emit(bam.Instr{Op: bam.Jump, L: lJoin})

	// Structures: walk the arguments backwards building [F|Args].
	c.emit(bam.Instr{Op: bam.Lbl, L: lStr})
	f := c.newTemp()
	c.emit(bam.Instr{Op: bam.LoadM, Dst: f, Reg1: dT, N: 0})
	fa := c.newTemp()
	c.emit(bam.Instr{Op: bam.Arith, Dst: fa, AOp: bam.AShr, V1: bam.Reg(f), V2: bam.IntV(16)})
	fAtom := c.newTemp()
	c.emit(bam.Instr{Op: bam.MkTagI, Dst: fAtom, Reg1: fa, Tag: word.Atom})
	n := c.newTemp()
	c.emit(bam.Instr{Op: bam.Arith, Dst: n, AOp: bam.AAnd, V1: bam.Reg(f), V2: bam.IntV(0xffff)})
	acc := c.newTemp()
	c.emit(bam.Instr{Op: bam.Move, Dst: acc, Src: bam.AtomV("[]")})
	i := c.newTemp()
	c.emit(bam.Instr{Op: bam.Move, Dst: i, Src: bam.Reg(n)})
	lLoop, lDone := c.newLabel(), c.newLabel()
	c.emit(bam.Instr{Op: bam.Lbl, L: lLoop})
	c.emit(bam.Instr{Op: bam.BrEq, V1: bam.Reg(i), Cond: ic.CondLe, V2: bam.IntV(0), L: lDone})
	addr := c.newTemp()
	c.emit(bam.Instr{Op: bam.Arith, Dst: addr, AOp: bam.AAdd, V1: bam.Reg(dT), V2: bam.Reg(i)})
	elem := c.newTemp()
	c.emit(bam.Instr{Op: bam.LoadM, Dst: elem, Reg1: addr, N: 0})
	c.emit(bam.Instr{Op: bam.StoreH, N: 0, Src: bam.Reg(elem)})
	c.emit(bam.Instr{Op: bam.StoreH, N: 1, Src: bam.Reg(acc)})
	c.emit(bam.Instr{Op: bam.LeaH, Dst: acc, Tag: word.Lst, N: 0})
	c.emit(bam.Instr{Op: bam.AddH, N: 2})
	c.emit(bam.Instr{Op: bam.Arith, Dst: i, AOp: bam.ASub, V1: bam.Reg(i), V2: bam.IntV(1)})
	c.emit(bam.Instr{Op: bam.Jump, L: lLoop})
	c.emit(bam.Instr{Op: bam.Lbl, L: lDone})
	c.emit(bam.Instr{Op: bam.StoreH, N: 0, Src: bam.Reg(fAtom)})
	c.emit(bam.Instr{Op: bam.StoreH, N: 1, Src: bam.Reg(acc)})
	c.emit(bam.Instr{Op: bam.LeaH, Dst: out, Tag: word.Lst, N: 0})
	c.emit(bam.Instr{Op: bam.AddH, N: 2})
	c.emit(bam.Instr{Op: bam.Jump, L: lJoin})

	// Construction: T unbound, L must be a proper list [F|Args].
	c.emit(bam.Instr{Op: bam.Lbl, L: lVar})
	dL := ctx.derefReg(lReg)
	c.emit(bam.Instr{Op: bam.BrTagI, Reg1: dL, Cond: ic.CondNe, Tag: word.Lst, L: 0})
	fr := c.newTemp()
	c.emit(bam.Instr{Op: bam.LoadM, Dst: fr, Reg1: dL, N: 0})
	dF := ctx.derefReg(fr)
	rest := c.newTemp()
	c.emit(bam.Instr{Op: bam.LoadM, Dst: rest, Reg1: dL, N: 1})
	dRest := ctx.derefReg(rest)

	// Count the arguments (dereferencing each tail).
	cnt := c.newTemp()
	cur := c.newTemp()
	c.emit(bam.Instr{Op: bam.Move, Dst: cnt, Src: bam.IntV(0)})
	c.emit(bam.Instr{Op: bam.Move, Dst: cur, Src: bam.Reg(dRest)})
	lCnt, lCntDone := c.newLabel(), c.newLabel()
	c.emit(bam.Instr{Op: bam.Lbl, L: lCnt})
	c.emit(bam.Instr{Op: bam.BrEq, V1: bam.Reg(cur), Cond: ic.CondEq, V2: bam.AtomV("[]"), L: lCntDone})
	c.emit(bam.Instr{Op: bam.BrTagI, Reg1: cur, Cond: ic.CondNe, Tag: word.Lst, L: 0})
	nx := c.newTemp()
	c.emit(bam.Instr{Op: bam.LoadM, Dst: nx, Reg1: cur, N: 1})
	dnx := ctx.derefReg(nx)
	c.emit(bam.Instr{Op: bam.Move, Dst: cur, Src: bam.Reg(dnx)})
	c.emit(bam.Instr{Op: bam.Arith, Dst: cnt, AOp: bam.AAdd, V1: bam.Reg(cnt), V2: bam.IntV(1)})
	c.emit(bam.Instr{Op: bam.Jump, L: lCnt})
	c.emit(bam.Instr{Op: bam.Lbl, L: lCntDone})

	// Zero arguments: T = F (atomic); otherwise build the structure.
	lBuild := c.newLabel()
	c.emit(bam.Instr{Op: bam.BrEq, V1: bam.Reg(cnt), Cond: ic.CondGt, V2: bam.IntV(0), L: lBuild})
	lOK := c.newLabel()
	c.emit(bam.Instr{Op: bam.BrTagI, Reg1: dF, Cond: ic.CondEq, Tag: word.Atom, L: lOK})
	c.emit(bam.Instr{Op: bam.BrTagI, Reg1: dF, Cond: ic.CondNe, Tag: word.Int, L: 0})
	c.emit(bam.Instr{Op: bam.Lbl, L: lOK})
	c.emit(bam.Instr{Op: bam.Bind, Reg1: dT, Src: bam.Reg(dF)})
	c.emit(bam.Instr{Op: bam.Jump, L: lEnd})

	c.emit(bam.Instr{Op: bam.Lbl, L: lBuild})
	c.emit(bam.Instr{Op: bam.BrTagI, Reg1: dF, Cond: ic.CondNe, Tag: word.Atom, L: 0})
	// '.'/2 must construct a genuine list cell.
	lGeneric := c.newLabel()
	c.emit(bam.Instr{Op: bam.BrEq, V1: bam.Reg(dF), Cond: ic.CondNe, V2: bam.AtomV("."), L: lGeneric})
	c.emit(bam.Instr{Op: bam.BrEq, V1: bam.Reg(cnt), Cond: ic.CondNe, V2: bam.IntV(2), L: lGeneric})
	a1 := c.newTemp()
	c.emit(bam.Instr{Op: bam.LoadM, Dst: a1, Reg1: dRest, N: 0})
	tl := c.newTemp()
	c.emit(bam.Instr{Op: bam.LoadM, Dst: tl, Reg1: dRest, N: 1})
	dTl := ctx.derefReg(tl)
	a2 := c.newTemp()
	c.emit(bam.Instr{Op: bam.LoadM, Dst: a2, Reg1: dTl, N: 0})
	c.emit(bam.Instr{Op: bam.StoreH, N: 0, Src: bam.Reg(a1)})
	c.emit(bam.Instr{Op: bam.StoreH, N: 1, Src: bam.Reg(a2)})
	consCell := c.newTemp()
	c.emit(bam.Instr{Op: bam.LeaH, Dst: consCell, Tag: word.Lst, N: 0})
	c.emit(bam.Instr{Op: bam.AddH, N: 2})
	c.emit(bam.Instr{Op: bam.Bind, Reg1: dT, Src: bam.Reg(consCell)})
	c.emit(bam.Instr{Op: bam.Jump, L: lEnd})

	c.emit(bam.Instr{Op: bam.Lbl, L: lGeneric})
	sh := c.newTemp()
	c.emit(bam.Instr{Op: bam.Arith, Dst: sh, AOp: bam.AShl, V1: bam.Reg(dF), V2: bam.IntV(16)})
	fw := c.newTemp()
	c.emit(bam.Instr{Op: bam.Arith, Dst: fw, AOp: bam.AOr, V1: bam.Reg(sh), V2: bam.Reg(cnt)})
	funW := c.newTemp()
	c.emit(bam.Instr{Op: bam.MkTagI, Dst: funW, Reg1: fw, Tag: word.Fun})
	c.emit(bam.Instr{Op: bam.StoreH, N: 0, Src: bam.Reg(funW)})
	cellS := c.newTemp()
	c.emit(bam.Instr{Op: bam.LeaH, Dst: cellS, Tag: word.Str, N: 0})
	// Copy the argument values into the structure.
	dst := c.newTemp()
	c.emit(bam.Instr{Op: bam.LeaH, Dst: dst, Tag: word.Ref, N: 1})
	c.emit(bam.Instr{Op: bam.Move, Dst: cur, Src: bam.Reg(dRest)})
	lCp, lCpDone := c.newLabel(), c.newLabel()
	c.emit(bam.Instr{Op: bam.Lbl, L: lCp})
	c.emit(bam.Instr{Op: bam.BrTagI, Reg1: cur, Cond: ic.CondNe, Tag: word.Lst, L: lCpDone})
	ev := c.newTemp()
	c.emit(bam.Instr{Op: bam.LoadM, Dst: ev, Reg1: cur, N: 0})
	c.emit(bam.Instr{Op: bam.StoreM, Reg1: dst, N: 0, Src: bam.Reg(ev)})
	c.emit(bam.Instr{Op: bam.Arith, Dst: dst, AOp: bam.AAdd, V1: bam.Reg(dst), V2: bam.IntV(1)})
	nxt := c.newTemp()
	c.emit(bam.Instr{Op: bam.LoadM, Dst: nxt, Reg1: cur, N: 1})
	dnxt := ctx.derefReg(nxt)
	c.emit(bam.Instr{Op: bam.Move, Dst: cur, Src: bam.Reg(dnxt)})
	c.emit(bam.Instr{Op: bam.Jump, L: lCp})
	c.emit(bam.Instr{Op: bam.Lbl, L: lCpDone})
	c.emit(bam.Instr{Op: bam.Arith, Dst: ic.RegH, AOp: bam.AAdd, V1: bam.Reg(ic.RegH), V2: bam.Reg(cnt)})
	c.emit(bam.Instr{Op: bam.AddH, N: 1})
	c.emit(bam.Instr{Op: bam.Bind, Reg1: dT, Src: bam.Reg(cellS)})
	c.emit(bam.Instr{Op: bam.Jump, L: lEnd})

	// Analysis join: unify the decomposition with L.
	c.emit(bam.Instr{Op: bam.Lbl, L: lJoin})
	c.emit(bam.Instr{Op: bam.UnifyCall, Reg1: out, Reg2: lReg})
	ctx.afterUnifyCall()
	c.emit(bam.Instr{Op: bam.Lbl, L: lEnd})
	return nil
}
