package compile

import (
	"fmt"

	"symbol/internal/parse"
	"symbol/internal/term"
)

// library holds the embedded standard predicates. A predicate is linked in
// only when the program calls it without defining it, so user definitions
// always win; library predicates may depend on each other (resolution
// iterates to a fixed point).
var library = map[term.Indicator]string{
	{Name: "append", Arity: 3}: `
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).
`,
	{Name: "member", Arity: 2}: `
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
`,
	{Name: "memberchk", Arity: 2}: `
memberchk(X, [X|_]) :- !.
memberchk(X, [_|T]) :- memberchk(X, T).
`,
	{Name: "select", Arity: 3}: `
select(X, [X|T], T).
select(X, [H|T], [H|R]) :- select(X, T, R).
`,
	{Name: "reverse", Arity: 2}: `
reverse(L, R) :- reverse(L, [], R).
`,
	{Name: "reverse", Arity: 3}: `
reverse([], A, A).
reverse([H|T], A, R) :- reverse(T, [H|A], R).
`,
	{Name: "length", Arity: 2}: `
length([], 0).
length([_|T], N) :- length(T, M), N is M+1.
`,
	{Name: "nth0", Arity: 3}: `
nth0(0, [X|_], X) :- !.
nth0(N, [_|T], X) :- N > 0, M is N-1, nth0(M, T, X).
`,
	{Name: "nth1", Arity: 3}: `
nth1(N, L, X) :- M is N-1, nth0(M, L, X).
`,
	{Name: "last", Arity: 2}: `
last([X], X) :- !.
last([_|T], X) :- last(T, X).
`,
	{Name: "sum_list", Arity: 2}: `
sum_list(L, S) :- sum_list(L, 0, S).
`,
	{Name: "sum_list", Arity: 3}: `
sum_list([], S, S).
sum_list([X|T], A, S) :- A1 is A+X, sum_list(T, A1, S).
`,
	{Name: "max_list", Arity: 2}: `
max_list([X|T], M) :- max_list(T, X, M).
`,
	{Name: "max_list", Arity: 3}: `
max_list([], M, M).
max_list([X|T], A, M) :- ( X > A -> max_list(T, X, M) ; max_list(T, A, M) ).
`,
	{Name: "min_list", Arity: 2}: `
min_list([X|T], M) :- min_list(T, X, M).
`,
	{Name: "min_list", Arity: 3}: `
min_list([], M, M).
min_list([X|T], A, M) :- ( X < A -> min_list(T, X, M) ; min_list(T, A, M) ).
`,
	{Name: "between", Arity: 3}: `
between(L, H, L) :- L =< H.
between(L, H, X) :- L < H, L1 is L+1, between(L1, H, X).
`,
	{Name: "numlist", Arity: 3}: `
numlist(L, H, [L]) :- L =:= H, !.
numlist(L, H, [L|T]) :- L < H, L1 is L+1, numlist(L1, H, T).
`,
	{Name: "succ", Arity: 2}: `
succ(X, Y) :- nonvar(X), !, Y is X+1.
succ(X, Y) :- X is Y-1, X >= 0.
`,
	{Name: "msort", Arity: 2}: `
msort([], []) :- !.
msort([X], [X]) :- !.
msort(L, S) :-
    msplit(L, A, B),
    msort(A, SA), msort(B, SB),
    mmerge(SA, SB, S).
`,
	{Name: "msplit", Arity: 3}: `
msplit([], [], []).
msplit([X], [X], []).
msplit([X,Y|T], [X|A], [Y|B]) :- msplit(T, A, B).
`,
	{Name: "mmerge", Arity: 3}: `
mmerge([], L, L) :- !.
mmerge(L, [], L) :- !.
mmerge([X|Xs], [Y|Ys], [X|R]) :- leqt(X, Y), !, mmerge(Xs, [Y|Ys], R).
mmerge(Xs, [Y|Ys], [Y|R]) :- mmerge(Xs, Ys, R).
`,
	{Name: "leqt", Arity: 2}: `
leqt(X, Y) :- X =< Y.
`,
	{Name: "maplist", Arity: 2}: `
maplist(_, []).
maplist(P, [X|Xs]) :- extend_goal(P, [X], G), call(G), maplist(P, Xs).
`,
	{Name: "maplist", Arity: 3}: `
maplist(_, [], []).
maplist(P, [X|Xs], [Y|Ys]) :- extend_goal(P, [X, Y], G), call(G), maplist(P, Xs, Ys).
`,
	{Name: "extend_goal", Arity: 3}: `
extend_goal(P, Extra, G) :- P =.. L0, append(L0, Extra, L1), G =.. L1.
`,
	{Name: "forall", Arity: 2}: `
forall(C, A) :- \+ (call(C), \+ call(A)).
`,
	{Name: "ignore", Arity: 1}: `
ignore(G) :- ( call(G) -> true ; true ).
`,
}

// calledIndicators collects every user-call indicator in the program.
func (c *Compiler) calledIndicators() map[term.Indicator]bool {
	out := map[term.Indicator]bool{}
	for _, pi := range c.order {
		for _, cl := range c.preds[pi].clauses {
			for _, g := range cl.goals {
				gpi, ok := term.IndicatorOf(g)
				if ok && !builtinGoal(gpi) {
					out[gpi] = true
				}
			}
		}
	}
	return out
}

// resolveLibrary links embedded library predicates for called-but-undefined
// indicators, iterating until no new predicate is added (library predicates
// call each other, and aux predicates created while compiling library
// clauses may introduce further calls).
func (c *Compiler) resolveLibrary() error {
	for round := 0; round < 16; round++ {
		added := false
		for pi := range c.calledIndicators() {
			if _, defined := c.preds[pi]; defined {
				continue
			}
			src, ok := library[pi]
			if !ok {
				continue
			}
			clauses, err := parse.All(src)
			if err != nil {
				return fmt.Errorf("library %s: %w", pi, err)
			}
			for _, cl := range clauses {
				if err := c.AddClause(cl); err != nil {
					return fmt.Errorf("library %s: %w", pi, err)
				}
			}
			added = true
		}
		if !added {
			return nil
		}
	}
	return fmt.Errorf("library resolution did not converge")
}
