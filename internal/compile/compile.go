// Package compile translates Prolog clauses into BAM code (paper §2, §3.1).
//
// The compiler follows the BAM design guidelines: determinism is exploited
// through first-argument indexing (deterministic predicates create no choice
// points), unification is specialized into explicit dereference / tag-test /
// compare / bind sequences with separate read and write paths, and
// arithmetic is compiled inline. Control constructs (;/2, ->/2, \+/1) are
// normalized into auxiliary predicates with local cut, so the code generator
// only ever sees flat conjunctions of calls and builtins.
package compile

import (
	"fmt"
	"sort"

	"symbol/internal/bam"
	"symbol/internal/ic"
	"symbol/internal/term"
)

// Options control compilation.
type Options struct {
	// ArithChecks emits dereference and integer tag checks on arithmetic
	// operands (default true). Disabling models perfect mode analysis.
	ArithChecks bool
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options { return Options{ArithChecks: true} }

// Compiler holds program-wide compilation state.
type Compiler struct {
	opts      Options
	atoms     *term.Table
	preds     map[term.Indicator]*npred
	order     []term.Indicator
	code      []bam.Instr
	nextLabel int
	nextTemp  ic.Reg
	auxN      int
	usedMeta  bool
	undefined map[term.Indicator]bool
}

type nclause struct {
	head  term.Term
	goals []term.Term
}

type npred struct {
	pi      term.Indicator
	clauses []*nclause
	hasCut  bool
	cutReg  ic.Reg // temp holding B at predicate entry, when hasCut
}

// New returns a compiler with the given options.
func New(opts Options) *Compiler {
	return &Compiler{
		opts:      opts,
		atoms:     term.NewTable(),
		preds:     map[term.Indicator]*npred{},
		nextLabel: 1, // label 0 is reserved for "fail"
		nextTemp:  ic.FirstTemp,
		undefined: map[term.Indicator]bool{},
	}
}

// Atoms exposes the atom table (shared with the rest of the pipeline).
func (c *Compiler) Atoms() *term.Table { return c.atoms }

// Undefined lists predicates that are called but never defined; calls to
// them compile to fail.
func (c *Compiler) Undefined() []term.Indicator {
	var out []term.Indicator
	for pi := range c.undefined {
		out = append(out, pi)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Arity < out[j].Arity
	})
	return out
}

func (c *Compiler) newLabel() int {
	l := c.nextLabel
	c.nextLabel++
	return l
}

func (c *Compiler) newTemp() ic.Reg {
	r := c.nextTemp
	c.nextTemp++
	return r
}

func (c *Compiler) emit(in bam.Instr) { c.code = append(c.code, in) }

// AddClause adds one program clause (a fact or H :- B term).
func (c *Compiler) AddClause(t term.Term) error {
	var head, body term.Term
	if x, ok := t.(*term.Compound); ok && x.Functor == ":-" && len(x.Args) == 2 {
		head, body = x.Args[0], x.Args[1]
	} else {
		head, body = t, term.TrueAtom
	}
	pi, ok := term.IndicatorOf(head)
	if !ok {
		return fmt.Errorf("invalid clause head %s", head)
	}
	if builtinGoal(pi) {
		return fmt.Errorf("cannot redefine builtin %s", pi)
	}
	goals, err := c.normalizeBody(body, head)
	if err != nil {
		return err
	}
	nc := &nclause{head: head, goals: goals}
	p := c.preds[pi]
	if p == nil {
		p = &npred{pi: pi}
		c.preds[pi] = p
		c.order = append(c.order, pi)
	}
	p.clauses = append(p.clauses, nc)
	for _, g := range goals {
		if g == term.Atom("!") {
			p.hasCut = true
		}
	}
	return nil
}

// AddProgram parses and adds every clause in src.
func (c *Compiler) AddProgram(clauses []term.Term) error {
	for _, t := range clauses {
		if err := c.AddClause(t); err != nil {
			return err
		}
	}
	return nil
}

// normalizeBody flattens a body term into a list of simple goals, then
// rewrites control constructs into auxiliary predicates. Rewriting happens
// after flattening so a construct's free variables are computed against the
// whole clause — head, earlier goals AND later goals.
func (c *Compiler) normalizeBody(body, head term.Term) ([]term.Term, error) {
	var flat []term.Term
	var walk func(t term.Term) error
	walk = func(t term.Term) error {
		switch x := t.(type) {
		case *term.Var:
			// A variable goal is an implicit metacall.
			flat = append(flat, &term.Compound{Functor: "call", Args: []term.Term{x}})
			return nil
		case *term.Compound:
			if x.Functor == "," && len(x.Args) == 2 {
				if err := walk(x.Args[0]); err != nil {
					return err
				}
				return walk(x.Args[1])
			}
		}
		flat = append(flat, t)
		return nil
	}
	if err := walk(body); err != nil {
		return nil, err
	}
	goals := make([]term.Term, len(flat))
	for i, g := range flat {
		if x, ok := g.(*term.Compound); ok &&
			(x.Functor == ";" && len(x.Args) == 2 ||
				x.Functor == "->" && len(x.Args) == 2 ||
				x.Functor == "\\+" && len(x.Args) == 1) {
			rest := append([]term.Term{head}, flat[:i]...)
			rest = append(rest, flat[i+1:]...)
			aux, err := c.makeAux(x, rest)
			if err != nil {
				return nil, err
			}
			goals[i] = aux
			continue
		}
		if x, ok := g.(*term.Compound); ok && x.Functor == "catch" && len(x.Args) == 3 {
			rest := append([]term.Term{head}, flat[:i]...)
			rest = append(rest, flat[i+1:]...)
			aux, err := c.liftCatch(x, rest)
			if err != nil {
				return nil, err
			}
			goals[i] = aux
			continue
		}
		goals[i] = g
	}
	return goals, nil
}

// liftCatch rewrites catch(G, C, R): statically known goal and recovery
// arguments are lambda-lifted into fresh auxiliary predicates closed over
// their shared variables, so the runtime metacall ($meta/1) only ever sees
// plain predicate calls. This also gives the ISO call/1 semantics for free:
// a cut inside G or R is local to it. Variable arguments are left alone and
// dispatch at run time.
func (c *Compiler) liftCatch(x *term.Compound, rest []term.Term) (term.Term, error) {
	out := &term.Compound{Functor: x.Functor, Args: append([]term.Term(nil), x.Args...)}
	for _, ai := range []int{0, 2} {
		switch x.Args[ai].(type) {
		case term.Atom, *term.Compound:
		default:
			continue // variables (runtime dispatch) and integers (fail)
		}
		// The lifted goal's context is everything else in the clause plus
		// the other two catch arguments.
		ctx := append([]term.Term(nil), rest...)
		for j, a := range x.Args {
			if j != ai {
				ctx = append(ctx, a)
			}
		}
		call, addAux := c.liftTarget(x.Args[ai], ctx)
		if err := addAux(x.Args[ai]); err != nil {
			return nil, err
		}
		out.Args[ai] = call
	}
	return out, nil
}

// liftTarget mints a fresh auxiliary predicate head closed over the
// variables x shares with context, returning the replacement call goal and
// a function that adds one clause to the new predicate.
func (c *Compiler) liftTarget(x term.Term, context []term.Term) (term.Term, func(term.Term) error) {
	inner := term.Vars(x, nil)
	var outside []*term.Var
	for _, g := range context {
		outside = term.Vars(g, outside)
	}
	var args []term.Term
	for _, v := range inner {
		for _, o := range outside {
			if v == o {
				args = append(args, v)
				break
			}
		}
	}
	c.auxN++
	name := fmt.Sprintf("$aux%d", c.auxN)
	var call term.Term
	if len(args) == 0 {
		call = term.Atom(name)
	} else {
		call = &term.Compound{Functor: name, Args: args}
	}
	addAux := func(body term.Term) error {
		var cl term.Term = &term.Compound{Functor: ":-", Args: []term.Term{call, body}}
		return c.AddClause(cl)
	}
	return call, addAux
}

// makeAux creates an auxiliary predicate for a control construct and returns
// the replacement call goal. Free variables shared with the rest of the
// clause become arguments.
func (c *Compiler) makeAux(x *term.Compound, context []term.Term) (term.Term, error) {
	call, addAux := c.liftTarget(x, context)
	cut := term.Atom("!")
	switch x.Functor {
	case ";":
		if ite, ok := x.Args[0].(*term.Compound); ok && ite.Functor == "->" && len(ite.Args) == 2 {
			// (C -> T ; E): local cut after the condition.
			if err := addAux(term.Comma(ite.Args[0], term.Comma(cut, ite.Args[1]))); err != nil {
				return nil, err
			}
			if err := addAux(x.Args[1]); err != nil {
				return nil, err
			}
			return call, nil
		}
		if err := addAux(x.Args[0]); err != nil {
			return nil, err
		}
		if err := addAux(x.Args[1]); err != nil {
			return nil, err
		}
		return call, nil
	case "->":
		if err := addAux(term.Comma(x.Args[0], term.Comma(cut, x.Args[1]))); err != nil {
			return nil, err
		}
		return call, nil
	case "\\+":
		if err := addAux(term.Comma(x.Args[0], term.Comma(cut, term.Atom("fail")))); err != nil {
			return nil, err
		}
		if err := addAux(term.TrueAtom); err != nil {
			return nil, err
		}
		return call, nil
	}
	return nil, fmt.Errorf("unsupported control construct %s", x.Functor)
}

// Compile generates BAM code for every predicate added so far. The returned
// unit contains one procedure per predicate; the caller (internal/expand)
// adds the entry stub and runtime routines.
func (c *Compiler) Compile() (*bam.Unit, error) {
	if _, ok := c.preds[term.Indicator{Name: "main"}]; !ok {
		return nil, fmt.Errorf("program must define main/0")
	}
	if err := c.resolveLibrary(); err != nil {
		return nil, err
	}
	for _, pi := range c.order {
		if err := c.compilePred(c.preds[pi]); err != nil {
			return nil, fmt.Errorf("%s: %w", pi, err)
		}
	}
	if c.usedMeta {
		c.emitMetaDispatcher()
	}
	return &bam.Unit{Code: c.code, NumLabels: c.nextLabel, NextTemp: c.nextTemp}, nil
}

// --- first-argument indexing ---------------------------------------------

// selKind classifies a clause's first head argument.
type selKind uint8

const (
	selVar selKind = iota
	selInt
	selAtom
	selList
	selStruct
)

type selector struct {
	kind  selKind
	atom  string
	n     int64
	arity int
}

func selectorOf(head term.Term, arity int) selector {
	if arity == 0 {
		return selector{kind: selVar}
	}
	h := head.(*term.Compound)
	switch a := h.Args[0].(type) {
	case *term.Var:
		return selector{kind: selVar}
	case term.Int:
		return selector{kind: selInt, n: int64(a)}
	case term.Atom:
		if a == term.NilAtom {
			return selector{kind: selAtom, atom: "[]"}
		}
		return selector{kind: selAtom, atom: string(a)}
	case *term.Compound:
		if a.Functor == term.ConsName && len(a.Args) == 2 {
			return selector{kind: selList}
		}
		return selector{kind: selStruct, atom: a.Functor, arity: len(a.Args)}
	}
	return selector{kind: selVar}
}

// compilePred emits the indexing header, try chains and clause bodies.
func (c *Compiler) compilePred(p *npred) error {
	pi := p.pi
	c.emit(bam.Instr{Op: bam.Proc, Name: pi.Name, Arity: pi.Arity})
	c.atoms.Intern(pi.Name)
	if p.hasCut {
		p.cutReg = c.newTemp()
		c.emit(bam.Instr{Op: bam.SaveB, Dst: p.cutReg})
	}

	// Clause entry labels.
	labels := make([]int, len(p.clauses))
	for i := range labels {
		labels[i] = c.newLabel()
	}

	sels := make([]selector, len(p.clauses))
	allVar := true
	for i, cl := range p.clauses {
		sels[i] = selectorOf(cl.head, pi.Arity)
		if sels[i].kind != selVar {
			allVar = false
		}
	}

	all := make([]int, len(p.clauses))
	for i := range all {
		all[i] = i
	}

	chains := map[string]int{} // subset key → chain entry label
	emitChain := func(subset []int) int {
		if len(subset) == 0 {
			return 0 // fail
		}
		key := fmt.Sprint(subset)
		if l, ok := chains[key]; ok {
			return l
		}
		entry := c.newLabel()
		chains[key] = entry
		c.emit(bam.Instr{Op: bam.Lbl, L: entry})
		if len(subset) == 1 {
			c.emit(bam.Instr{Op: bam.Jump, L: labels[subset[0]]})
			return entry
		}
		n := int64(pi.Arity)
		stubs := make([]int, len(subset))
		for i := 1; i < len(subset); i++ {
			stubs[i] = c.newLabel()
		}
		c.emit(bam.Instr{Op: bam.Try, L: stubs[1], N: n})
		c.emit(bam.Instr{Op: bam.Jump, L: labels[subset[0]]})
		for i := 1; i < len(subset); i++ {
			c.emit(bam.Instr{Op: bam.Lbl, L: stubs[i]})
			c.emit(bam.Instr{Op: bam.RestoreArgs, N: n})
			if i == len(subset)-1 {
				c.emit(bam.Instr{Op: bam.Trust})
			} else {
				c.emit(bam.Instr{Op: bam.Retry, L: stubs[i+1]})
			}
			c.emit(bam.Instr{Op: bam.Jump, L: labels[subset[i]]})
		}
		return entry
	}

	if pi.Arity == 0 || allVar || len(p.clauses) == 1 {
		// No useful index: a single chain over all clauses.
		if len(p.clauses) > 1 {
			l := emitChain(all)
			_ = l // chain emitted in-line right here; fall through is wrong,
			// so make the entry jump explicit below.
		}
		if len(p.clauses) == 1 {
			c.emit(bam.Instr{Op: bam.Jump, L: labels[0]})
		}
	} else {
		c.emitIndex(p, sels, labels, emitChain)
	}

	for i, cl := range p.clauses {
		c.emit(bam.Instr{Op: bam.Lbl, L: labels[i]})
		if err := c.compileClause(p, cl); err != nil {
			return err
		}
	}
	return nil
}

// emitIndex emits the first-argument dispatch: dereference A0, switch on its
// tag, and within the int/atom/struct classes compare against the distinct
// selector constants.
func (c *Compiler) emitIndex(p *npred, sels []selector, labels []int, emitChain func([]int) int) {
	// Candidate subsets per class, preserving clause order.
	subset := func(pred func(selector) bool) []int {
		var out []int
		for i, s := range sels {
			if s.kind == selVar || pred(s) {
				out = append(out, i)
			}
		}
		return out
	}
	varOnly := subset(func(s selector) bool { return false })

	d0 := c.newTemp()
	c.emit(bam.Instr{Op: bam.Deref, Dst: d0, Src: bam.Reg(ic.ArgReg(0))})
	c.emit(bam.Instr{Op: bam.Move, Dst: ic.ArgReg(0), Src: bam.Reg(d0)})

	// Gather distinct constants per class.
	type constCase struct {
		v     bam.Val
		items []int
	}
	var intCases, atomCases, strCases []constCase
	addCase := func(cases *[]constCase, v bam.Val, match func(selector) bool) {
		for _, cc := range *cases {
			if cc.v == v {
				return
			}
		}
		*cases = append(*cases, constCase{v: v, items: subset(match)})
	}
	for _, s := range sels {
		s := s
		switch s.kind {
		case selInt:
			addCase(&intCases, bam.IntV(s.n), func(x selector) bool { return x.kind == selInt && x.n == s.n })
		case selAtom:
			c.atoms.Intern(s.atom)
			addCase(&atomCases, bam.AtomV(s.atom), func(x selector) bool { return x.kind == selAtom && x.atom == s.atom })
		case selStruct:
			c.atoms.Intern(s.atom)
			addCase(&strCases, bam.FunV(s.atom, s.arity), func(x selector) bool {
				return x.kind == selStruct && x.atom == s.atom && x.arity == s.arity
			})
		}
	}
	listSubset := subset(func(s selector) bool { return s.kind == selList })

	// Emit the selection bodies after the switch so the switch itself is a
	// compact dispatch. Plan labels first.
	needInt := len(intCases) > 0
	needAtom := len(atomCases) > 0
	needStr := len(strCases) > 0

	lblOrFail := func(need bool) int {
		if need {
			return c.newLabel()
		}
		// No clause can match this class unless a var-headed clause exists.
		if len(varOnly) == 0 {
			return 0
		}
		return c.newLabel()
	}
	lInt := lblOrFail(needInt)
	lAtm := lblOrFail(needAtom)
	lStr := lblOrFail(needStr)
	lVar := c.newLabel()
	var lLst int
	if len(listSubset) > 0 {
		lLst = c.newLabel()
	}

	c.emit(bam.Instr{Op: bam.SwitchTag, Reg1: d0,
		LVar: lVar, LInt: lInt, LAtm: lAtm, LLst: lLst, LStr: lStr})

	// Var entry: try everything.
	c.emit(bam.Instr{Op: bam.Lbl, L: lVar})
	allIdx := make([]int, len(sels))
	for i := range allIdx {
		allIdx[i] = i
	}
	c.emit(bam.Instr{Op: bam.Jump, L: emitChain(allIdx)})

	emitConstClass := func(entry int, cases []constCase, loadFun bool) {
		if entry == 0 {
			return
		}
		c.emit(bam.Instr{Op: bam.Lbl, L: entry})
		key := d0
		if loadFun {
			f := c.newTemp()
			c.emit(bam.Instr{Op: bam.LoadM, Dst: f, Reg1: d0, N: 0})
			key = f
		}
		for _, cc := range cases {
			hit := c.newLabel()
			c.emit(bam.Instr{Op: bam.BrEq, V1: bam.Reg(key), Cond: ic.CondEq, V2: cc.v, L: hit})
			// Defer the chain; record to emit after the compare ladder.
			defer func(hit int, items []int) {
				c.emit(bam.Instr{Op: bam.Lbl, L: hit})
				c.emit(bam.Instr{Op: bam.Jump, L: emitChain(items)})
			}(hit, cc.items)
		}
		// No constant matched: only var-headed clauses remain.
		c.emit(bam.Instr{Op: bam.Jump, L: emitChain(varOnly)})
	}
	emitConstClass(lInt, intCases, false)
	emitConstClass(lAtm, atomCases, false)
	emitConstClass(lStr, strCases, true)
	if lLst != 0 {
		c.emit(bam.Instr{Op: bam.Lbl, L: lLst})
		c.emit(bam.Instr{Op: bam.Jump, L: emitChain(listSubset)})
	}
}
