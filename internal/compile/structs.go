package compile

import (
	"symbol/internal/bam"
	"symbol/internal/ic"
	"symbol/internal/term"
	"symbol/internal/word"
)

// compileArg compiles arg(N, T, A): A unifies with the N-th argument of
// compound term T (1-based); fails if N is out of range or T is not
// compound. N and T must be sufficiently instantiated.
func (ctx *cctx) compileArg(nArg, tArg, aArg term.Term) error {
	c := ctx.c
	nv, err := ctx.evalArith(nArg)
	if err != nil {
		return err
	}
	nReg := ctx.valReg(nv)
	tReg := ctx.putReg(tArg)
	dT := ctx.derefReg(tReg)

	elem := c.newTemp() // the selected argument (phi across paths)
	lLst, lStr, lNext := c.newLabel(), c.newLabel(), c.newLabel()

	c.emit(bam.Instr{Op: bam.BrTagI, Reg1: dT, Cond: ic.CondEq, Tag: word.Lst, L: lLst})
	c.emit(bam.Instr{Op: bam.BrTagI, Reg1: dT, Cond: ic.CondEq, Tag: word.Str, L: lStr})
	c.emit(bam.Instr{Op: bam.FailI})

	// Lists: argument 1 is the head, 2 the tail.
	c.emit(bam.Instr{Op: bam.Lbl, L: lLst})
	lTail := c.newLabel()
	c.emit(bam.Instr{Op: bam.BrEq, V1: bam.Reg(nReg), Cond: ic.CondNe, V2: bam.IntV(1), L: lTail})
	c.emit(bam.Instr{Op: bam.LoadM, Dst: elem, Reg1: dT, N: 0})
	c.emit(bam.Instr{Op: bam.Jump, L: lNext})
	c.emit(bam.Instr{Op: bam.Lbl, L: lTail})
	c.emit(bam.Instr{Op: bam.BrEq, V1: bam.Reg(nReg), Cond: ic.CondNe, V2: bam.IntV(2), L: 0})
	c.emit(bam.Instr{Op: bam.LoadM, Dst: elem, Reg1: dT, N: 1})
	c.emit(bam.Instr{Op: bam.Jump, L: lNext})

	// Structures: bounds-check against the functor cell's arity, then an
	// indexed load through value arithmetic.
	c.emit(bam.Instr{Op: bam.Lbl, L: lStr})
	f := c.newTemp()
	c.emit(bam.Instr{Op: bam.LoadM, Dst: f, Reg1: dT, N: 0})
	arity := c.newTemp()
	c.emit(bam.Instr{Op: bam.Arith, Dst: arity, AOp: bam.AAnd, V1: bam.Reg(f), V2: bam.IntV(0xffff)})
	c.emit(bam.Instr{Op: bam.BrEq, V1: bam.Reg(nReg), Cond: ic.CondLt, V2: bam.IntV(1), L: 0})
	c.emit(bam.Instr{Op: bam.BrEq, V1: bam.Reg(nReg), Cond: ic.CondGt, V2: bam.Reg(arity), L: 0})
	addr := c.newTemp()
	c.emit(bam.Instr{Op: bam.Arith, Dst: addr, AOp: bam.AAdd, V1: bam.Reg(dT), V2: bam.Reg(nReg)})
	c.emit(bam.Instr{Op: bam.LoadM, Dst: elem, Reg1: addr, N: 0})
	c.emit(bam.Instr{Op: bam.Lbl, L: lNext})

	return ctx.unifyWithReg(aArg, elem)
}

// compileFunctor compiles functor(T, F, N): analysis when T is bound,
// construction of a fresh term with unbound arguments when T is a variable.
func (ctx *cctx) compileFunctor(tArg, fArg, nArg term.Term) error {
	c := ctx.c
	// Materialize every argument before the dispatch: both the analysis
	// and the construction paths must see the same variable locations
	// (first-occurrence cells may not be created inside only one branch).
	tReg := ctx.putReg(tArg)
	fReg := ctx.putReg(fArg)
	nReg := ctx.putReg(nArg)
	dT := ctx.derefReg(tReg)

	fOut := c.newTemp()
	nOut := c.newTemp()
	lVar, lStr, lLst, lAtomic, lJoin, lEnd := c.newLabel(), c.newLabel(), c.newLabel(), c.newLabel(), c.newLabel(), c.newLabel()

	c.emit(bam.Instr{Op: bam.SwitchTag, Reg1: dT,
		LVar: lVar, LInt: lAtomic, LAtm: lAtomic, LLst: lLst, LStr: lStr})

	// Atomic: functor(T, T, 0).
	c.emit(bam.Instr{Op: bam.Lbl, L: lAtomic})
	c.emit(bam.Instr{Op: bam.Move, Dst: fOut, Src: bam.Reg(dT)})
	c.emit(bam.Instr{Op: bam.Move, Dst: nOut, Src: bam.IntV(0)})
	c.emit(bam.Instr{Op: bam.Jump, L: lJoin})

	// Lists: '.'/2.
	c.emit(bam.Instr{Op: bam.Lbl, L: lLst})
	c.emit(bam.Instr{Op: bam.Move, Dst: fOut, Src: bam.AtomV(".")})
	c.emit(bam.Instr{Op: bam.Move, Dst: nOut, Src: bam.IntV(2)})
	c.emit(bam.Instr{Op: bam.Jump, L: lJoin})

	// Structures: split the functor cell (atom<<16 | arity).
	c.emit(bam.Instr{Op: bam.Lbl, L: lStr})
	f := c.newTemp()
	c.emit(bam.Instr{Op: bam.LoadM, Dst: f, Reg1: dT, N: 0})
	fr := c.newTemp()
	c.emit(bam.Instr{Op: bam.Arith, Dst: fr, AOp: bam.AShr, V1: bam.Reg(f), V2: bam.IntV(16)})
	c.emit(bam.Instr{Op: bam.MkTagI, Dst: fOut, Reg1: fr, Tag: word.Atom})
	ar := c.newTemp()
	c.emit(bam.Instr{Op: bam.Arith, Dst: ar, AOp: bam.AAnd, V1: bam.Reg(f), V2: bam.IntV(0xffff)})
	c.emit(bam.Instr{Op: bam.MkTagI, Dst: nOut, Reg1: ar, Tag: word.Int})
	c.emit(bam.Instr{Op: bam.Jump, L: lJoin})

	// Construction: T is unbound; F and N must be instantiated.
	c.emit(bam.Instr{Op: bam.Lbl, L: lVar})
	dF := ctx.derefReg(fReg)
	dN := ctx.derefReg(nReg)
	c.emit(bam.Instr{Op: bam.BrTagI, Reg1: dN, Cond: ic.CondNe, Tag: word.Int, L: 0})
	lBuild := c.newLabel()
	c.emit(bam.Instr{Op: bam.BrEq, V1: bam.Reg(dN), Cond: ic.CondGt, V2: bam.IntV(0), L: lBuild})
	c.emit(bam.Instr{Op: bam.BrEq, V1: bam.Reg(dN), Cond: ic.CondLt, V2: bam.IntV(0), L: 0})
	// N = 0: T = F, which must be atomic.
	lFOK := c.newLabel()
	c.emit(bam.Instr{Op: bam.BrTagI, Reg1: dF, Cond: ic.CondEq, Tag: word.Atom, L: lFOK})
	c.emit(bam.Instr{Op: bam.BrTagI, Reg1: dF, Cond: ic.CondNe, Tag: word.Int, L: 0})
	c.emit(bam.Instr{Op: bam.Lbl, L: lFOK})
	c.emit(bam.Instr{Op: bam.Bind, Reg1: dT, Src: bam.Reg(dF)})
	c.emit(bam.Instr{Op: bam.Jump, L: lEnd})

	// N > 0: F must be an atom ('.'/2 builds a list cell like any other
	// structure here; the reader prints it identically).
	c.emit(bam.Instr{Op: bam.Lbl, L: lBuild})
	c.emit(bam.Instr{Op: bam.BrTagI, Reg1: dF, Cond: ic.CondNe, Tag: word.Atom, L: 0})
	fun := c.newTemp()
	c.emit(bam.Instr{Op: bam.Arith, Dst: fun, AOp: bam.AShl, V1: bam.Reg(dF), V2: bam.IntV(16)})
	fun2 := c.newTemp()
	c.emit(bam.Instr{Op: bam.Arith, Dst: fun2, AOp: bam.AOr, V1: bam.Reg(fun), V2: bam.Reg(dN)})
	funW := c.newTemp()
	c.emit(bam.Instr{Op: bam.MkTagI, Dst: funW, Reg1: fun2, Tag: word.Fun})
	c.emit(bam.Instr{Op: bam.StoreH, N: 0, Src: bam.Reg(funW)})
	cell := c.newTemp()
	c.emit(bam.Instr{Op: bam.LeaH, Dst: cell, Tag: word.Str, N: 0})
	// Fill N fresh unbound cells with a pointer-walking loop.
	ptr := c.newTemp()
	c.emit(bam.Instr{Op: bam.LeaH, Dst: ptr, Tag: word.Ref, N: 1})
	i := c.newTemp()
	c.emit(bam.Instr{Op: bam.Move, Dst: i, Src: bam.Reg(dN)})
	lLoop, lDone := c.newLabel(), c.newLabel()
	c.emit(bam.Instr{Op: bam.Lbl, L: lLoop})
	c.emit(bam.Instr{Op: bam.BrEq, V1: bam.Reg(i), Cond: ic.CondLe, V2: bam.IntV(0), L: lDone})
	c.emit(bam.Instr{Op: bam.StoreM, Reg1: ptr, N: 0, Src: bam.Reg(ptr)})
	c.emit(bam.Instr{Op: bam.Arith, Dst: ptr, AOp: bam.AAdd, V1: bam.Reg(ptr), V2: bam.IntV(1)})
	c.emit(bam.Instr{Op: bam.Arith, Dst: i, AOp: bam.ASub, V1: bam.Reg(i), V2: bam.IntV(1)})
	c.emit(bam.Instr{Op: bam.Jump, L: lLoop})
	c.emit(bam.Instr{Op: bam.Lbl, L: lDone})
	// H += N + 1.
	c.emit(bam.Instr{Op: bam.Arith, Dst: ic.RegH, AOp: bam.AAdd, V1: bam.Reg(ic.RegH), V2: bam.Reg(dN)})
	c.emit(bam.Instr{Op: bam.AddH, N: 1})
	c.emit(bam.Instr{Op: bam.Bind, Reg1: dT, Src: bam.Reg(cell)})
	c.emit(bam.Instr{Op: bam.Jump, L: lEnd})

	// Analysis join: unify the extracted functor and arity.
	c.emit(bam.Instr{Op: bam.Lbl, L: lJoin})
	c.emit(bam.Instr{Op: bam.UnifyCall, Reg1: fOut, Reg2: fReg})
	c.emit(bam.Instr{Op: bam.UnifyCall, Reg1: nOut, Reg2: nReg})
	ctx.afterUnifyCall()
	c.emit(bam.Instr{Op: bam.Lbl, L: lEnd})
	return nil
}

// unifyWithReg unifies a source-level argument with a register value,
// specializing the fresh-variable case to a plain assignment.
func (ctx *cctx) unifyWithReg(a term.Term, r ic.Reg) error {
	if v, ok := a.(*term.Var); ok && !ctx.loc(v).init {
		ctx.record(v, r)
		return nil
	}
	other := ctx.putReg(a)
	ctx.c.emit(bam.Instr{Op: bam.UnifyCall, Reg1: r, Reg2: other})
	ctx.afterUnifyCall()
	return nil
}

// valReg forces a bam.Val into a register.
func (ctx *cctx) valReg(v bam.Val) ic.Reg {
	if v.K == bam.VReg {
		return v.R
	}
	r := ctx.c.newTemp()
	ctx.c.emit(bam.Instr{Op: bam.Move, Dst: r, Src: v})
	return r
}
