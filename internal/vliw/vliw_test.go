package vliw

import (
	"strings"
	"testing"

	"symbol/internal/ic"
	"symbol/internal/machine"
	"symbol/internal/term"
	"symbol/internal/word"
)

var (
	rA = ic.ArgReg(0)
)

const (
	t0 = ic.FirstTemp
	t1 = ic.FirstTemp + 1
)

func mkIC() *ic.Program {
	return &ic.Program{Atoms: term.NewTable(), Names: map[int]string{}}
}

func mk(words []Word, entry int) *Program {
	return &Program{
		Words:  words,
		Entry:  entry,
		IC:     mkIC(),
		WordOf: map[int]int{},
		Config: machine.Default(2),
	}
}

func TestSimpleHalt(t *testing.T) {
	p := mk([]Word{
		{{Inst: ic.Inst{Op: ic.MovI, D: t0, Word: word.MakeInt(7)}}},
		{{Inst: ic.Inst{Op: ic.Halt, Imm: 0}}},
	}, 0)
	r, err := Sim(p, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != 0 || r.Cycles != 2 || r.Words != 2 {
		t.Errorf("got %+v", r)
	}
}

func TestParallelWordSemantics(t *testing.T) {
	// A word computing t0,t1 from each other must swap (reads see the
	// state at the start of the word).
	p := mk([]Word{
		{{Inst: ic.Inst{Op: ic.MovI, D: t0, Word: word.MakeInt(1)}},
			{Inst: ic.Inst{Op: ic.MovI, D: t1, Word: word.MakeInt(2)}}},
		{{Inst: ic.Inst{Op: ic.Mov, D: t0, A: t1}},
			{Inst: ic.Inst{Op: ic.Mov, D: t1, A: t0}}},
		{{Inst: ic.Inst{Op: ic.BrCmp, A: t0, Cond: ic.CondNe, HasImm: true, Word: word.MakeInt(2), Target: 4}}},
		{{Inst: ic.Inst{Op: ic.BrCmp, A: t1, Cond: ic.CondNe, HasImm: true, Word: word.MakeInt(1), Target: 4}},
			{Inst: ic.Inst{Op: ic.Halt, Imm: 0}}},
		{{Inst: ic.Inst{Op: ic.Halt, Imm: 1}}},
	}, 0)
	r, err := Sim(p, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != 0 {
		t.Error("parallel swap semantics broken")
	}
}

func TestTakenBranchBubble(t *testing.T) {
	p := mk([]Word{
		{{Inst: ic.Inst{Op: ic.Jmp, Target: 1}}},
		{{Inst: ic.Inst{Op: ic.Halt}}},
	}, 0)
	r, err := Sim(p, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// word0 (1 cycle) + bubble (1) + word1 (1) = 3 cycles.
	if r.Cycles != 3 || r.Bubble != 1 {
		t.Errorf("cycles=%d bubble=%d", r.Cycles, r.Bubble)
	}
}

func TestLatencyViolationDetected(t *testing.T) {
	// A load consumed in the next word violates the 2-cycle memory latency.
	p := mk([]Word{
		{{Inst: ic.Inst{Op: ic.MovI, D: t1, Word: word.MakeRef(ic.HeapBase)}}},
		{{Inst: ic.Inst{Op: ic.Ld, D: t0, A: t1}}},
		{{Inst: ic.Inst{Op: ic.Mov, D: t1, A: t0}}},
		{{Inst: ic.Inst{Op: ic.Halt}}},
	}, 0)
	_, err := Sim(p, SimOptions{})
	if err == nil || !strings.Contains(err.Error(), "latency violation") {
		t.Fatalf("expected latency violation, got %v", err)
	}
}

func TestMultiwayBranchPriority(t *testing.T) {
	// Two taken branches in one word: the first (higher priority) wins.
	p := mk([]Word{
		{{Inst: ic.Inst{Op: ic.MovI, D: t0, Word: word.MakeInt(5)}}},
		{{Inst: ic.Inst{Op: ic.BrCmp, A: t0, Cond: ic.CondEq, HasImm: true, Word: word.MakeInt(5), Target: 2}},
			{Inst: ic.Inst{Op: ic.BrCmp, A: t0, Cond: ic.CondEq, HasImm: true, Word: word.MakeInt(5), Target: 3}}},
		{{Inst: ic.Inst{Op: ic.Halt, Imm: 0}}},
		{{Inst: ic.Inst{Op: ic.Halt, Imm: 1}}},
	}, 0)
	r, err := Sim(p, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != 0 {
		t.Error("first branch in slot order must win")
	}
}

func TestSpeculativeLoadNonFaulting(t *testing.T) {
	// Loading through an integer "address" out of range yields 0 instead
	// of faulting (dismissible loads).
	p := mk([]Word{
		{{Inst: ic.Inst{Op: ic.MovI, D: t1, Word: word.MakeInt(-12345)}}},
		{{Inst: ic.Inst{Op: ic.Ld, D: t0, A: t1}}},
		{},
		{{Inst: ic.Inst{Op: ic.BrCmp, A: t0, Cond: ic.CondNe, HasImm: true, Imm: 0, Target: 4}},
			{Inst: ic.Inst{Op: ic.Halt, Imm: 0}}},
		{{Inst: ic.Inst{Op: ic.Halt, Imm: 1}}},
	}, 0)
	r, err := Sim(p, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != 0 {
		t.Error("speculative load must dismiss to 0")
	}
}

func TestJmpRTranslation(t *testing.T) {
	p := mk([]Word{
		{{Inst: ic.Inst{Op: ic.MovI, D: t0, Word: word.Make(word.Code, 77)}}},
		{{Inst: ic.Inst{Op: ic.JmpR, A: t0}}},
		{{Inst: ic.Inst{Op: ic.Halt, Imm: 1}}},
		{{Inst: ic.Inst{Op: ic.Halt, Imm: 0}}},
	}, 0)
	p.WordOf[77] = 3
	r, err := Sim(p, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != 0 {
		t.Error("indirect jump must translate original pc 77 to word 3")
	}

	p.WordOf = map[int]int{}
	if _, err := Sim(p, SimOptions{}); err == nil {
		t.Error("unaddressable indirect target must fail")
	}
}

func TestJsrReturnAddressIsOriginalPC(t *testing.T) {
	p := mk([]Word{
		{{Inst: ic.Inst{Op: ic.Jsr, D: ic.RegCP, Target: 2}, PC: 40}},
		{{Inst: ic.Inst{Op: ic.Halt, Imm: 0}}}, // return lands here
		{{Inst: ic.Inst{Op: ic.JmpR, A: ic.RegCP}}},
	}, 0)
	p.WordOf[41] = 1 // original pc 40+1 maps to word 1
	r, err := Sim(p, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != 0 {
		t.Error("call/return through original pc space broken")
	}
}

func TestValidateCatchesOversubscription(t *testing.T) {
	big := Word{}
	for i := 0; i < 5; i++ {
		big = append(big, Op{Inst: ic.Inst{Op: ic.Add, D: t0, A: rA, HasImm: true}})
	}
	p := mk([]Word{big, {{Inst: ic.Inst{Op: ic.Halt}}}}, 0)
	if err := p.Validate(); err == nil {
		t.Error("expected resource oversubscription error")
	}
	p2 := mk([]Word{{{Inst: ic.Inst{Op: ic.Jmp, Target: 99}}}}, 0)
	if err := p2.Validate(); err == nil {
		t.Error("expected bad-target error")
	}
}

func TestListing(t *testing.T) {
	p := mk([]Word{
		{{Inst: ic.Inst{Op: ic.MovI, D: t0, Word: word.MakeInt(1)}}},
		{},
		{{Inst: ic.Inst{Op: ic.Halt}}},
	}, 0)
	p.TraceBounds = []int{0}
	l := p.Listing()
	if !strings.Contains(l, "trace") || !strings.Contains(l, "nop") {
		t.Errorf("listing incomplete:\n%s", l)
	}
	if p.OpCount() != 2 {
		t.Errorf("op count = %d", p.OpCount())
	}
}

func TestCycleLimit(t *testing.T) {
	p := mk([]Word{
		{{Inst: ic.Inst{Op: ic.Jmp, Target: 0}}},
	}, 0)
	if _, err := Sim(p, SimOptions{MaxCycles: 100}); err == nil {
		t.Error("expected cycle-limit error on infinite loop")
	}
}
